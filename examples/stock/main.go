// Stock analytics: multidimensional range queries over (stock id, price,
// day) quote records — the paper's stock.3d workload. The id×price plane is
// a series of per-stock hot spots (each stock trades in its own band),
// which is exactly the correlation structure that separates minimax from
// the index-based schemes. This example compares HCAM/D and minimax across
// query sizes, reproducing the Figure 7 trend: minimax's advantage grows as
// queries shrink.
//
// Run with: go run ./examples/stock
package main

import (
	"fmt"
	"log"

	"pgridfile/internal/core"
	"pgridfile/internal/geom"
	"pgridfile/internal/sim"
	"pgridfile/internal/synth"
	"pgridfile/internal/workload"
)

func main() {
	// 383 stocks x 120 trading days (the paper's span is ~332 days).
	ds := synth.Stock3D(synth.Stock3DStocks, 120, 1996)
	file, err := ds.Build()
	if err != nil {
		log.Fatal(err)
	}
	st := file.Stats()
	fmt.Printf("stock.3d: %d quotes, grid %v, %d buckets (%d merged)\n\n",
		st.Records, st.CellsPerDim, st.Buckets, st.MergedBuckets)

	// Analytical queries a user would run: "all quotes of stocks 100-120
	// priced 20-40 in the first quarter".
	q := geom.NewRect([]float64{100, 20, 0}, []float64{120, 40, 60})
	fmt.Printf("ad-hoc query %v:\n  %d quotes from %d buckets\n\n",
		q, file.RangeCount(q), len(file.BucketsInRange(q)))

	grid := core.FromGridFile(file)
	hcam, err := core.NewIndexBased("HCAM", "D", 1)
	if err != nil {
		log.Fatal(err)
	}
	minimax := &core.Minimax{Seed: 1}

	const disks = 16
	fmt.Printf("declustering over %d disks, 1000 queries per size:\n\n", disks)
	fmt.Printf("%-8s %-12s %-12s %-12s %-10s\n", "r", "HCAM/D", "MiniMax", "optimal", "advantage")
	for _, r := range []float64{0.01, 0.05, 0.1} {
		queries := workload.SquareRange(file.Domain(), r, 1000, 7)
		var rts [2]float64
		var optimal float64
		for i, alg := range []core.Allocator{hcam, minimax} {
			alloc, err := alg.Decluster(grid, disks)
			if err != nil {
				log.Fatal(err)
			}
			res, err := sim.Replay(file, alloc, file.IndexByID(), queries)
			if err != nil {
				log.Fatal(err)
			}
			rts[i] = res.MeanResponseTime
			optimal = res.MeanOptimal
		}
		fmt.Printf("%-8.2f %-12.3f %-12.3f %-12.3f %.1f%%\n",
			r, rts[0], rts[1], optimal, 100*(rts[0]-rts[1])/rts[0])
	}
	fmt.Println("\nadvantage = response-time reduction of minimax over HCAM/D;")
	fmt.Println("the paper observes it grows as the query ratio r shrinks")
}
