// Quickstart: build a grid file over 2-D points, decluster it with the
// paper's minimax algorithm, and compare its parallel response time against
// disk modulo on a batch of range queries.
//
// Run with: go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"

	"pgridfile/internal/core"
	"pgridfile/internal/geom"
	"pgridfile/internal/gridfile"
	"pgridfile/internal/sim"
	"pgridfile/internal/synth"
	"pgridfile/internal/workload"
)

func main() {
	// 1. Generate a skewed dataset (a central hot spot over uniform
	// background) and load it into a grid file with 4 KB buckets.
	ds := synth.Hotspot2D(10000, 42)
	file, err := ds.Build()
	if err != nil {
		log.Fatal(err)
	}
	st := file.Stats()
	fmt.Printf("grid file: %d records in %d buckets over a %v grid (%d merged buckets)\n",
		st.Records, st.Buckets, st.CellsPerDim, st.MergedBuckets)

	// 2. A point lookup and a range query through the sequential API.
	q := geom.NewRect([]float64{900, 900}, []float64{1100, 1100})
	fmt.Printf("range %v: %d records in %d buckets\n",
		q, file.RangeCount(q), len(file.BucketsInRange(q)))

	// 3. Decluster the buckets over 16 disks two ways.
	grid := core.FromGridFile(file)
	const disks = 16
	algorithms := []core.Allocator{
		&core.Minimax{Seed: 1}, // the paper's algorithm
		mustDM(),               // the classic baseline
	}

	// 4. Replay 1000 square range queries (5% of the domain volume each)
	// and report the paper's metrics.
	queries := workload.SquareRange(file.Domain(), 0.05, 1000, 7)
	fmt.Printf("\n%-10s %-18s %-14s %-14s\n", "method", "mean response", "balance", "closest pairs")
	for _, alg := range algorithms {
		alloc, err := alg.Decluster(grid, disks)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Replay(file, alloc, file.IndexByID(), queries)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %-18.3f %-14.3f %-14d\n",
			alg.Name(), res.MeanResponseTime,
			sim.DataBalanceDegree(alloc),
			sim.ClosestPairsSameDisk(grid, alloc, nil))
	}
	fmt.Println("\n(lower response time is better; balance 1.0 is perfect;")
	fmt.Println(" closest pairs counts neighbouring buckets stuck on one disk)")

	// 5. Persist the grid file and read it back.
	var buf bytes.Buffer
	n, err := file.WriteTo(&buf)
	if err != nil {
		log.Fatal(err)
	}
	reloaded, err := gridfile.Read(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nserialized to %d bytes and reloaded: %d records\n", n, reloaded.Len())
}

func mustDM() core.Allocator {
	alg, err := core.NewIndexBased("DM", "D", 1)
	if err != nil {
		log.Fatal(err)
	}
	return alg
}
