// Declustering gallery: renders the hot.2d grid file as SVG once per
// declustering algorithm, colouring every bucket by its disk. Looking at
// the pictures makes the paper's story immediate — DM paints diagonal
// stripes (the collision pattern behind its saturation), HCAM paints curve
// segments, and minimax scatters colours so no two neighbouring regions
// match. Also prints each algorithm's conflict and quality numbers.
//
// Run with: go run ./examples/gallery   (writes gallery_*.svg + .txt)
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"pgridfile/internal/core"
	"pgridfile/internal/render"
	"pgridfile/internal/sim"
	"pgridfile/internal/synth"
	"pgridfile/internal/workload"
)

func main() {
	file, err := synth.Hotspot2D(10000, 42).Build()
	if err != nil {
		log.Fatal(err)
	}
	grid := core.FromGridFile(file)
	const disks = 8

	// Conflict pressure per scheme (why grid files need resolution at all).
	fmt.Println("conflict statistics (merged buckets force a choice of disk):")
	for _, s := range []core.Scheme{core.DM{}, core.FX{}, core.HCAM()} {
		st := core.Conflicts(grid, s, disks)
		fmt.Printf("  %-5s %d of %d buckets conflicted (mean %.2f candidate disks)\n",
			s.Name(), st.Conflicted, st.Buckets, st.MeanCandidates)
	}
	fmt.Println()

	algorithms := []core.Allocator{
		mustAlg("DM", "D"),
		mustAlg("FX", "D"),
		mustAlg("HCAM", "D"),
		&core.SSP{Seed: 1},
		&core.Minimax{Seed: 1},
	}
	queries := workload.SquareRange(file.Domain(), 0.05, 1000, 7)
	nn := sim.NearestCompanions(grid, nil)

	fmt.Printf("%-8s %-14s %-10s %-14s %s\n", "method", "mean response", "balance", "closest pairs", "svg")
	for _, alg := range algorithms {
		alloc, err := alg.Decluster(grid, disks)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Replay(file, alloc, file.IndexByID(), queries)
		if err != nil {
			log.Fatal(err)
		}
		svg, err := render.SVG(file, render.SVGOptions{Width: 480, Allocation: &alloc})
		if err != nil {
			log.Fatal(err)
		}
		name := sanitize(alg.Name())
		path := fmt.Sprintf("gallery_%s.svg", name)
		if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %-14.3f %-10.3f %-14d %s\n",
			alg.Name(), res.MeanResponseTime,
			sim.DataBalanceDegree(alloc), sim.CountSameDisk(nn, alloc), path)
	}

	// An ASCII sketch of the directory for terminal-only sessions.
	sketch, err := render.ASCII(file, 60)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile("gallery_directory.txt", []byte(sketch), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndirectory sketch written to gallery_directory.txt")
}

func mustAlg(scheme, resolver string) core.Allocator {
	alg, err := core.NewIndexBased(scheme, resolver, 1)
	if err != nil {
		log.Fatal(err)
	}
	return alg
}

func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		default:
			return '_'
		}
	}, name)
}
