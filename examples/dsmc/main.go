// DSMC snapshot animation: the workload that motivates the paper. A
// time-dependent particle simulation periodically dumps snapshots into a
// 4-D (t, x, y, z) grid file; visualizing the simulation replays range
// queries that sweep each snapshot's volume. This example declusters the
// grid file with minimax, runs the animation sweep on the shared-nothing
// SPMD engine at several node counts, and prints the paper's Table 4
// metrics — including the cache effects from consecutive snapshots sharing
// temporal grid partitions.
//
// Run with: go run ./examples/dsmc
package main

import (
	"fmt"
	"log"

	"pgridfile/internal/core"
	"pgridfile/internal/diskmodel"
	"pgridfile/internal/parallel"
	"pgridfile/internal/synth"
	"pgridfile/internal/workload"
)

func main() {
	// A reduced DSMC series: 24 snapshots of 6000 particles (the paper's
	// full run is 59 x ~51k; scale up for the real numbers).
	const snapshots, particles = 24, 6000
	fmt.Printf("generating %d DSMC snapshots x %d particles...\n", snapshots, particles)
	ds := synth.DSMC4D(snapshots, particles, 1996)
	file, err := ds.Build()
	if err != nil {
		log.Fatal(err)
	}
	st := file.Stats()
	fmt.Printf("grid file: %d records, grid %v, %d buckets of %d records\n\n",
		st.Records, st.CellsPerDim, st.Buckets, ds.BucketCapacity())

	grid := core.FromGridFile(file)
	queries := workload.AnimationSweep(grid.Domain, 0.1, snapshots)
	fmt.Printf("animation sweep: %d queries (10 slabs per snapshot, r=0.1)\n\n", len(queries))

	fmt.Printf("%-6s %-22s %-10s %-12s %-10s\n",
		"nodes", "response (blocks)", "comm (s)", "elapsed (s)", "hit rate")
	for _, workers := range []int{4, 8, 16} {
		alloc, err := (&core.Minimax{Seed: 1}).Decluster(grid, workers)
		if err != nil {
			log.Fatal(err)
		}
		disk := diskmodel.DefaultParams()
		disk.BlockBytes = ds.PageBytes
		cost := parallel.DefaultCostModel()
		cost.RecordBytes = ds.RecordBytes
		eng, err := parallel.New(file, alloc, parallel.Config{
			Workers: workers, Disk: disk, Cost: cost,
		})
		if err != nil {
			log.Fatal(err)
		}
		tot, err := eng.Run(queries)
		eng.Close()
		if err != nil {
			log.Fatal(err)
		}
		hitRate := float64(tot.CacheHits) / float64(tot.Blocks)
		fmt.Printf("%-6d %-22d %-10.2f %-12.2f %-10.2f\n",
			workers, tot.ResponseBlocks, tot.Comm.Seconds(), tot.Elapsed.Seconds(), hitRate)
	}
	fmt.Println("\nresponse blocks halve as nodes double (minimax balance);")
	fmt.Println("cache hits come from consecutive snapshots sharing temporal partitions")
}
