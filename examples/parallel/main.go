// Parallel grid file walkthrough: stand up the SPMD coordinator/worker
// engine on a 4-D dataset, run individual queries, and inspect the
// per-query execution profile — block fan-out across workers, simulated
// disk and communication components, and cache behaviour. This is the
// engine behind Tables 4 and 5; the example shows its moving parts at
// query granularity.
//
// Run with: go run ./examples/parallel
package main

import (
	"fmt"
	"log"

	"pgridfile/internal/core"
	"pgridfile/internal/diskmodel"
	"pgridfile/internal/parallel"
	"pgridfile/internal/synth"
	"pgridfile/internal/workload"
)

func main() {
	ds := synth.DSMC4D(12, 4000, 7)
	file, err := ds.Build()
	if err != nil {
		log.Fatal(err)
	}
	grid := core.FromGridFile(file)
	fmt.Printf("dataset: %d records, %d buckets\n", file.Len(), file.NumBuckets())

	const workers = 8
	alloc, err := (&core.Minimax{Seed: 1}).Decluster(grid, workers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("minimax declustering over %d workers; buckets per worker: ", workers)

	disk := diskmodel.DefaultParams()
	disk.BlockBytes = ds.PageBytes
	cost := parallel.DefaultCostModel()
	cost.RecordBytes = ds.RecordBytes
	eng, err := parallel.New(file, alloc, parallel.Config{
		Workers: workers, Disk: disk, Cost: cost,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	fmt.Println(eng.BucketsPerWorker())

	queries := workload.RandomRange4D(grid.Domain, 0.15, 5, 9)
	fmt.Printf("\n%-4s %-8s %-18s %-8s %-10s %-10s %-8s\n",
		"q#", "blocks", "response (blocks)", "records", "comm (ms)", "total (ms)", "hits")
	for i, q := range queries {
		res, err := eng.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4d %-8d %-18d %-8d %-10.2f %-10.2f %-8d\n",
			i, res.Blocks, res.ResponseBlocks, res.Records,
			float64(res.Comm.Microseconds())/1000,
			float64(res.Elapsed.Microseconds())/1000,
			res.CacheHits)
	}

	// Re-run the same queries: worker caches now hold the blocks.
	fmt.Println("\nsecond pass over the same queries (warm caches):")
	for i, q := range queries {
		res, err := eng.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("q%-3d total %.2f ms, %d/%d fetches cached\n",
			i, float64(res.Elapsed.Microseconds())/1000, res.CacheHits, res.Blocks)
	}

	fmt.Println("\nper-worker disk statistics:")
	for w, st := range eng.DiskStats() {
		fmt.Printf("worker %d: %4d reads, %5.1f%% cache hits, %8.2f ms busy\n",
			w, st.Reads, 100*st.HitRate(), float64(st.BusyTime.Microseconds())/1000)
	}
}
