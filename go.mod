module pgridfile

go 1.22
