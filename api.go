package pgridfile

// This file is the library's public facade: the types and constructors a
// downstream user needs, re-exported from the internal packages. Everything
// here is a thin alias or wrapper — the implementations, and the full
// low-level API, live in internal/* (see README.md for the package map).

import (
	"io"

	"pgridfile/internal/core"
	"pgridfile/internal/geom"
	"pgridfile/internal/gridfile"
	"pgridfile/internal/sim"
	"pgridfile/internal/synth"
	"pgridfile/internal/workload"
)

// Geometry.
type (
	// Point is a d-dimensional key.
	Point = geom.Point
	// Interval is a closed interval on one axis.
	Interval = geom.Interval
	// Rect is an axis-aligned box: one interval per dimension.
	Rect = geom.Rect
)

// NewRect builds a Rect from lo/hi corner slices.
func NewRect(lo, hi []float64) Rect { return geom.NewRect(lo, hi) }

// Proximity is the Kamel–Faloutsos proximity index of two boxes within a
// domain: the edge weight of the minimax algorithm.
func Proximity(r, s, domain Rect) float64 { return geom.Proximity(r, s, domain) }

// Grid file storage.
type (
	// GridFile is the multidimensional storage structure.
	GridFile = gridfile.File
	// GridConfig configures a new grid file.
	GridConfig = gridfile.Config
	// Record is a key plus optional payload.
	Record = gridfile.Record
	// Neighbor is one k-NN result.
	Neighbor = gridfile.Neighbor
	// CartesianFile is the one-bucket-per-cell structure of the analytic
	// study.
	CartesianFile = gridfile.CartesianFile
)

// NewGridFile creates an empty grid file.
func NewGridFile(cfg GridConfig) (*GridFile, error) { return gridfile.New(cfg) }

// BulkLoad builds a grid file from a batch, inserting in Hilbert order.
func BulkLoad(cfg GridConfig, recs []Record) (*GridFile, error) {
	return gridfile.BulkLoad(cfg, recs)
}

// ReadGridFile deserializes a grid file written with GridFile.WriteTo.
func ReadGridFile(r io.Reader) (*GridFile, error) { return gridfile.Read(r) }

// NewCartesian creates a Cartesian product file.
func NewCartesian(sizes []int, domain Rect) (*CartesianFile, error) {
	return gridfile.NewCartesian(sizes, domain)
}

// Declustering.
type (
	// Allocator is a declustering algorithm.
	Allocator = core.Allocator
	// Allocation maps buckets to disks.
	Allocation = core.Allocation
	// DeclusterView is the bucket-level view algorithms consume.
	DeclusterView = core.Grid
	// Minimax is the paper's minimax spanning tree algorithm.
	Minimax = core.Minimax
	// SSP is the short-spanning-path algorithm of Fang et al.
	SSP = core.SSP
	// MST is the minimal-spanning-tree algorithm of Fang et al.
	MST = core.MST
	// Refine is the workload-driven refinement extension.
	Refine = core.Refine
)

// ViewOf captures the declustering view of a grid file.
func ViewOf(f *GridFile) DeclusterView { return core.FromGridFile(f) }

// ViewOfCartesian captures the declustering view of a Cartesian file.
func ViewOfCartesian(c *CartesianFile) DeclusterView { return core.FromCartesian(c) }

// NewIndexBased builds an index-based algorithm from a scheme code
// (DM, GDM, FX, HCAM, ZCAM, GrayCAM) and a conflict-resolution code
// (R random, F most frequent, D data balance, A area balance).
func NewIndexBased(scheme, resolver string, seed int64) (Allocator, error) {
	return core.NewIndexBased(scheme, resolver, seed)
}

// Evaluation.
type (
	// ReplayResult aggregates a workload replay.
	ReplayResult = sim.Result
)

// Replay runs a range-query workload against a declustered grid file and
// returns the paper's metrics (response time in bucket fetches, optimal
// reference, distribution percentiles).
func Replay(f *GridFile, alloc Allocation, queries []Rect) (ReplayResult, error) {
	return sim.Replay(f, alloc, f.IndexByID(), queries)
}

// DataBalanceDegree is the paper's fairness metric: B_max × M / B_sum.
func DataBalanceDegree(alloc Allocation) float64 { return sim.DataBalanceDegree(alloc) }

// ClosestPairsSameDisk counts buckets co-located with their most likely
// co-accessed companion (Tables 2–3 of the paper).
func ClosestPairsSameDisk(v DeclusterView, alloc Allocation) int {
	return sim.ClosestPairsSameDisk(v, alloc, nil)
}

// Workloads.

// SquareRangeQueries generates n random square range queries covering the
// fraction r of the domain volume each.
func SquareRangeQueries(domain Rect, r float64, n int, seed int64) []Rect {
	return workload.SquareRange(domain, r, n, seed)
}

// Datasets.
type (
	// Dataset is a generated point set plus grid parameters.
	Dataset = synth.Dataset
)

// Dataset generators from the paper's evaluation (and substitutes for its
// real datasets); see internal/synth for the full set.
var (
	Uniform2D = synth.Uniform2D
	Hotspot2D = synth.Hotspot2D
	Correl2D  = synth.Correl2D
	DSMC3D    = synth.DSMC3D
	Stock3D   = synth.Stock3D
	DSMC4D    = synth.DSMC4D
	MHD4D     = synth.MHD4D
)
