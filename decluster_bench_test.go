package pgridfile

// BenchmarkDecluster tracks the declustering *build* path the way
// BenchmarkServerThroughput tracks the serving path: serial (the pre-engine
// reference: a Weight closure over geom.Proximity per edge) versus parallel
// (the flattened pairwise-weight engine at Workers=GOMAXPROCS) across grid
// and disk sizes. scripts/bench.sh parses the output into
// BENCH_decluster.json.
//
// Every parallel variant also re-runs the serial reference once outside the
// timed loop and asserts the engine assignment is byte-identical — the
// determinism contract that makes the parallel path safe to enable by
// default.
//
// Run: go test -bench='^BenchmarkDecluster$' -benchtime 1x .

import (
	"strconv"
	"testing"

	"pgridfile/internal/core"
	"pgridfile/internal/geom"
	"pgridfile/internal/gridfile"
)

// declusterBenchGrid builds a side×side Cartesian grid over the synthetic
// datasets' [0,2000]² domain: exact bucket counts (1024/4096/16384) without
// the cost of inserting records.
func declusterBenchGrid(tb testing.TB, side int) core.Grid {
	tb.Helper()
	dom := geom.Rect{{Lo: 0, Hi: 2000}, {Lo: 0, Hi: 2000}}
	cf, err := gridfile.NewCartesian([]int{side, side}, dom)
	if err != nil {
		tb.Fatal(err)
	}
	return core.FromCartesian(cf)
}

// legacyProximity is ProximityWeight hidden behind a closure so the engine's
// built-in weight detection does not fire: allocators fall back to the
// serial reference path, giving the pre-engine baseline.
func legacyProximity(a, b gridfile.BucketView, dom geom.Rect) float64 {
	return geom.Proximity(a.Region, b.Region, dom)
}

// declusterBenchAlloc returns the allocator under test. Serial mode uses the
// legacy closure path; parallel mode uses the engine with Workers=GOMAXPROCS
// (Workers: 0).
func declusterBenchAlloc(alg string, serial bool) core.Allocator {
	var w core.Weight
	if serial {
		w = func(a, b gridfile.BucketView, dom geom.Rect) float64 {
			return legacyProximity(a, b, dom)
		}
	}
	switch alg {
	case "minimax":
		return &core.Minimax{Weight: w, Seed: 1}
	case "ssp":
		return &core.SSP{Weight: w, Seed: 1}
	case "mst":
		return &core.MST{Weight: w, Seed: 1}
	}
	panic("unknown algorithm " + alg)
}

func BenchmarkDecluster(b *testing.B) {
	type cfg struct {
		alg   string
		side  int // N = side²
		disks int
	}
	var cfgs []cfg
	for _, side := range []int{32, 64, 128} {
		for _, disks := range []int{16, 64} {
			cfgs = append(cfgs, cfg{"minimax", side, disks})
		}
	}
	// SSP walks one path (no per-tree state) and serial MST's global scan is
	// O(N·M) per step; one mid-size point each tracks them without
	// dominating the suite.
	cfgs = append(cfgs, cfg{"ssp", 64, 16}, cfg{"mst", 64, 16})

	for _, c := range cfgs {
		n := c.side * c.side
		g := declusterBenchGrid(b, c.side)
		name := c.alg + "/N=" + strconv.Itoa(n) + "/M=" + strconv.Itoa(c.disks)
		b.Run(name+"/serial", func(b *testing.B) {
			alloc := declusterBenchAlloc(c.alg, true)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := alloc.Decluster(g, c.disks); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(n), "buckets")
		})
		b.Run(name+"/parallel", func(b *testing.B) {
			alloc := declusterBenchAlloc(c.alg, false)
			var got core.Allocation
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				if got, err = alloc.Decluster(g, c.disks); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(n), "buckets")
			want, err := declusterBenchAlloc(c.alg, true).Decluster(g, c.disks)
			if err != nil {
				b.Fatal(err)
			}
			for x := range want.Assign {
				if got.Assign[x] != want.Assign[x] {
					b.Fatalf("engine assignment diverges from serial reference at bucket %d: got disk %d, want %d",
						x, got.Assign[x], want.Assign[x])
				}
			}
		})
	}
}
