# Development targets. `make check` is the full local gate (see
# scripts/check.sh); `make test` is the quick tier-1 pass.

GO ?= go
FUZZTIME ?= 5s
BENCHTIME ?= 2000x

.PHONY: all build test race check fmt vet fuzz chaos replica write trace campaign bench bench-alloc bench-open bench-decluster bench-all clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzCodec -fuzztime=$(FUZZTIME) ./internal/server
	$(GO) test -run='^$$' -fuzz=FuzzDegradedCodec -fuzztime=$(FUZZTIME) ./internal/server
	$(GO) test -run='^$$' -fuzz=FuzzRead -fuzztime=$(FUZZTIME) ./internal/gridfile

# Deterministic fault-injection smoke: bench run under the chaos profile
# must finish with zero errors and nonzero degraded answers; the replicated
# phase must finish with zero degraded answers and nonzero failovers.
chaos:
	sh scripts/chaos.sh

# Deterministic replication smoke: r=2 layout with one disk hard-killed must
# serve every query completely (0 errors, 0 degraded, failovers > 0).
replica:
	sh scripts/replica.sh

# Online-write durability smoke: ingest at r=2 with one disk's page writes
# killed, crash without a checkpoint, replay the journals; zero lost acks,
# bucket splits observed, scrub clean.
write:
	sh scripts/write.sh

# Observability smoke: traced bench run must emit a complete per-stage
# breakdown in the bench JSON and one slow-query log line per query.
trace:
	sh scripts/trace.sh

# Scenario-campaign regression gate: the deterministic fault × scheme ×
# workload × replication matrix must reproduce byte-identically and match
# the committed CAMPAIGN.json baseline exactly.
campaign:
	sh scripts/campaign.sh

check:
	sh scripts/check.sh $(FUZZTIME)

# The serving-path suite: server throughput (baseline vs tuned vs pipelined),
# the open-loop offered-vs-achieved rows, plus the translation
# micro-benchmarks, parsed into BENCH_server.json.
bench:
	sh scripts/bench.sh $(BENCHTIME)

# Allocation regression gate: the tuned and tuned-pipelined throughput rows
# with -benchmem, checked against the committed allocs/op budget (see
# ALLOC_BUDGET in scripts/bench.sh).
bench-alloc:
	BENCH_SUITE=alloc sh scripts/bench.sh $(BENCHTIME)

# Open-loop load smoke: drive a fixed offered rate on a deterministic Poisson
# schedule; the server must sustain it (0 errors, achieved >= 95% of offered)
# with latency measured from intended send times.
bench-open:
	sh scripts/openloop.sh $(OPENLOOP_RATE)

OPENLOOP_RATE ?= 2000

# The build-path suite: BenchmarkDecluster serial vs parallel, parsed into
# BENCH_decluster.json. One iteration per variant by default (the N=16k
# serial points dominate the runtime); override with DECL_BENCHTIME.
DECL_BENCHTIME ?= 1x
bench-decluster:
	BENCH_SUITE=decluster sh scripts/bench.sh $(DECL_BENCHTIME)

# Everything, one iteration each: a smoke pass over the full benchmark set.
bench-all:
	$(GO) test -bench=. -benchtime=1x .

clean:
	$(GO) clean ./...
