# Development targets. `make check` is the full local gate (see
# scripts/check.sh); `make test` is the quick tier-1 pass.

GO ?= go
FUZZTIME ?= 5s

.PHONY: all build test race check fmt vet fuzz bench clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzCodec -fuzztime=$(FUZZTIME) ./internal/server
	$(GO) test -run='^$$' -fuzz=FuzzRead -fuzztime=$(FUZZTIME) ./internal/gridfile

check:
	sh scripts/check.sh $(FUZZTIME)

bench:
	$(GO) test -bench=. -benchtime=1x .

clean:
	$(GO) clean ./...
