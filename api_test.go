package pgridfile_test

import (
	"bytes"
	"testing"

	pgridfile "pgridfile"
)

// TestFacadeEndToEnd drives the whole public surface: generate, load,
// decluster (two algorithms), replay, inspect metrics, persist, reload.
func TestFacadeEndToEnd(t *testing.T) {
	ds := pgridfile.Hotspot2D(3000, 42)
	file, err := ds.Build()
	if err != nil {
		t.Fatal(err)
	}
	if file.Len() != 3000 {
		t.Fatalf("Len = %d", file.Len())
	}

	view := pgridfile.ViewOf(file)
	queries := pgridfile.SquareRangeQueries(file.Domain(), 0.05, 300, 7)

	mm, err := (&pgridfile.Minimax{Seed: 1}).Decluster(view, 16)
	if err != nil {
		t.Fatal(err)
	}
	dm, err := pgridfile.NewIndexBased("DM", "D", 1)
	if err != nil {
		t.Fatal(err)
	}
	dmAlloc, err := dm.Decluster(view, 16)
	if err != nil {
		t.Fatal(err)
	}

	mmRes, err := pgridfile.Replay(file, mm, queries)
	if err != nil {
		t.Fatal(err)
	}
	dmRes, err := pgridfile.Replay(file, dmAlloc, queries)
	if err != nil {
		t.Fatal(err)
	}
	if mmRes.MeanResponseTime > dmRes.MeanResponseTime {
		t.Errorf("minimax %.3f worse than DM %.3f", mmRes.MeanResponseTime, dmRes.MeanResponseTime)
	}
	if pgridfile.DataBalanceDegree(mm) > pgridfile.DataBalanceDegree(dmAlloc)+1e-9 {
		t.Error("minimax balance worse than DM")
	}
	if mmPairs, dmPairs := pgridfile.ClosestPairsSameDisk(view, mm),
		pgridfile.ClosestPairsSameDisk(view, dmAlloc); mmPairs > dmPairs {
		t.Errorf("minimax closest pairs %d above DM %d", mmPairs, dmPairs)
	}

	var buf bytes.Buffer
	if _, err := file.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	reloaded, err := pgridfile.ReadGridFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if reloaded.Len() != file.Len() {
		t.Fatal("reload lost records")
	}
}

func TestFacadeGridFileBasics(t *testing.T) {
	f, err := pgridfile.NewGridFile(pgridfile.GridConfig{
		Dims:           2,
		Domain:         pgridfile.NewRect([]float64{0, 0}, []float64{10, 10}),
		BucketCapacity: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Insert(pgridfile.Record{Key: pgridfile.Point{3, 3}}); err != nil {
		t.Fatal(err)
	}
	q := pgridfile.NewRect([]float64{0, 0}, []float64{5, 5})
	if n := f.RangeCount(q); n != 1 {
		t.Fatalf("RangeCount = %d", n)
	}
	nns := f.NearestNeighbors(pgridfile.Point{4, 4}, 1)
	if len(nns) != 1 {
		t.Fatalf("%d neighbours", len(nns))
	}
}

func TestFacadeBulkLoadAndCartesian(t *testing.T) {
	cfg := pgridfile.GridConfig{
		Dims:           2,
		Domain:         pgridfile.NewRect([]float64{0, 0}, []float64{100, 100}),
		BucketCapacity: 4,
	}
	recs := []pgridfile.Record{
		{Key: pgridfile.Point{1, 1}}, {Key: pgridfile.Point{99, 99}},
		{Key: pgridfile.Point{50, 50}},
	}
	f, err := pgridfile.BulkLoad(cfg, recs)
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 3 {
		t.Fatalf("Len = %d", f.Len())
	}

	c, err := pgridfile.NewCartesian([]int{4, 4}, cfg.Domain)
	if err != nil {
		t.Fatal(err)
	}
	view := pgridfile.ViewOfCartesian(c)
	alloc, err := (&pgridfile.SSP{Seed: 1}).Decluster(view, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := alloc.Validate(16); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeProximity(t *testing.T) {
	dom := pgridfile.NewRect([]float64{0, 0}, []float64{10, 10})
	a := pgridfile.NewRect([]float64{0, 0}, []float64{10, 10})
	if got := pgridfile.Proximity(a, a, dom); got != 1 {
		t.Errorf("self proximity of the domain = %v", got)
	}
}
