// Package fault is a deterministic, seedable failpoint registry for chaos
// testing the declustered serving stack. A failpoint ("site") is a named
// location in the code — a store pread, a transport send — that consults
// the registry on every pass; when a rule armed on that site fires, the
// site injects the configured fault: an error, added latency, or a torn
// (truncated) read.
//
// Rules fire probabilistically (`p=0.05`), on every nth call (`n=40`), or
// unconditionally when neither trigger is given. Probability draws come
// from a per-rule PRNG seeded from the registry seed and the site name, so
// a fixed seed replays the same fault schedule byte-for-byte under a
// single-threaded call sequence (concurrent callers interleave their draws,
// but the draw sequence itself — and therefore the injected-fault density —
// is still reproducible).
//
// The hot path is cheap when faults are off: Eval on a disarmed (or nil)
// registry is one atomic load. Sites pay the mutex + map lookup only while
// at least one rule is armed.
//
// Spec grammar (CLI flags, the FAULT admin verb, scripts/chaos.sh):
//
//	spec      := rule { ";" rule }
//	rule      := site ":" directive { ":" directive }
//	directive := "err" | "torn" | "delay=<duration>" | "p=<float>" | "n=<int>"
//
// Examples:
//
//	store.read:err:p=0.05                    5% of preads fail
//	store.read:delay=10ms:p=0.1              10% of preads stall 10ms
//	store.read.disk2:err                     every read of disk 2 fails
//	parallel.send:err:n=40                   every 40th message is dropped
//
// Well-known site names are declared as constants here so the layers and
// their tests agree on spelling; registering rules for unknown sites is
// allowed (they simply never fire).
package fault

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Failpoint site naming convention: <package>.<operation>[.<instance>].
const (
	// SiteStoreRead guards every positioned page read in internal/store
	// (both ReadBucket and the coalesced ReadBuckets runs).
	SiteStoreRead = "store.read"
	// SiteStoreReadDisk is the per-disk variant: SiteStoreReadDisk + "3"
	// guards only reads against disk 3. StoreReadDiskSite builds the name.
	SiteStoreReadDisk = "store.read.disk"
	// SiteParallelSend guards coordinator→worker request messages in
	// internal/parallel (an injected error models a dropped request).
	SiteParallelSend = "parallel.send"
	// SiteParallelRecv guards worker→coordinator reply messages (an
	// injected error models a dropped reply).
	SiteParallelRecv = "parallel.recv"
	// SiteServerFailover guards the server's replica-failover redirect: it
	// is evaluated once per batch rerouted to a surviving owner disk, so
	// chaos runs can stall the failover path or fail it outright (forcing
	// the degraded fallback even on a replicated layout).
	SiteServerFailover = "server.failover"
	// SiteStoreWAL guards every journal append on the store's write path
	// (one evaluation per owner-disk journal, before the fsync). An injected
	// error aborts the mutation before it is acknowledged.
	SiteStoreWAL = "store.wal"
	// SiteStoreWALDisk is the per-disk journal-append variant; see
	// StoreWALDiskSite.
	SiteStoreWALDisk = "store.wal.disk"
	// SiteStoreWrite guards every shadow page write of a mutated bucket
	// copy. Because the journal is already committed when pages are written,
	// an injected error does NOT un-acknowledge the mutation: the stale copy
	// is healed by replay on the next open (or by the scrubber).
	SiteStoreWrite = "store.write"
	// SiteStoreWriteDisk is the per-disk page-write variant; see
	// StoreWriteDiskSite.
	SiteStoreWriteDisk = "store.write.disk"
)

// StoreReadDiskSite names the per-disk store read failpoint for one disk.
func StoreReadDiskSite(disk int) string {
	return SiteStoreReadDisk + strconv.Itoa(disk)
}

// StoreWALDiskSite names the per-disk journal-append failpoint for one disk.
func StoreWALDiskSite(disk int) string {
	return SiteStoreWALDisk + strconv.Itoa(disk)
}

// StoreWriteDiskSite names the per-disk page-write failpoint for one disk.
func StoreWriteDiskSite(disk int) string {
	return SiteStoreWriteDisk + strconv.Itoa(disk)
}

// ErrInjected is the sentinel every injected error wraps. Injected errors
// model transient faults (a failed read that would succeed if retried), so
// retry policies test against it with IsInjected.
var ErrInjected = errors.New("injected fault")

// IsInjected reports whether err originates from a fired failpoint.
func IsInjected(err error) bool { return errors.Is(err, ErrInjected) }

// Kind selects what a rule injects when it fires.
type Kind uint8

const (
	// KindError makes the site return an injected transient error.
	KindError Kind = iota
	// KindDelay makes the site stall for Rule.Delay before proceeding.
	KindDelay
	// KindTorn makes a read site deliver a torn buffer: the tail of the
	// read is lost, which the store's page validation must catch.
	KindTorn
)

func (k Kind) String() string {
	switch k {
	case KindError:
		return "err"
	case KindDelay:
		return "delay"
	case KindTorn:
		return "torn"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Rule arms one fault on one site. The zero trigger (Prob == 0 && Nth == 0)
// fires on every call; Nth takes precedence over Prob when both are set.
type Rule struct {
	Site  string
	Kind  Kind
	Delay time.Duration // KindDelay: how long to stall
	Prob  float64       // fire with this probability per call
	Nth   int           // fire on every Nth call (1-based)
}

// String renders the rule in the spec grammar Parse accepts.
func (r Rule) String() string {
	var b strings.Builder
	b.WriteString(r.Site)
	b.WriteByte(':')
	if r.Kind == KindDelay {
		fmt.Fprintf(&b, "delay=%s", r.Delay)
	} else {
		b.WriteString(r.Kind.String())
	}
	if r.Nth > 0 {
		fmt.Fprintf(&b, ":n=%d", r.Nth)
	} else if r.Prob > 0 {
		fmt.Fprintf(&b, ":p=%g", r.Prob)
	}
	return b.String()
}

// Parse decodes a fault spec (see the package comment for the grammar).
// An empty spec yields no rules.
func Parse(spec string) ([]Rule, error) {
	var rules []Rule
	for _, raw := range strings.Split(spec, ";") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		parts := strings.Split(raw, ":")
		if len(parts) < 2 {
			return nil, fmt.Errorf("fault: rule %q needs site:directive", raw)
		}
		r := Rule{Site: strings.TrimSpace(parts[0]), Kind: 255}
		if r.Site == "" {
			return nil, fmt.Errorf("fault: rule %q has an empty site", raw)
		}
		for _, d := range parts[1:] {
			d = strings.TrimSpace(d)
			key, val, hasVal := strings.Cut(d, "=")
			switch {
			case d == "err":
				r.Kind = KindError
			case d == "torn":
				r.Kind = KindTorn
			case key == "delay" && hasVal:
				dur, err := time.ParseDuration(val)
				if err != nil || dur < 0 {
					return nil, fmt.Errorf("fault: rule %q: bad delay %q", raw, val)
				}
				r.Kind = KindDelay
				r.Delay = dur
			case key == "p" && hasVal:
				p, err := strconv.ParseFloat(val, 64)
				if err != nil || p < 0 || p > 1 {
					return nil, fmt.Errorf("fault: rule %q: bad probability %q", raw, val)
				}
				r.Prob = p
			case key == "n" && hasVal:
				n, err := strconv.Atoi(val)
				if err != nil || n < 1 {
					return nil, fmt.Errorf("fault: rule %q: bad nth %q", raw, val)
				}
				r.Nth = n
			default:
				return nil, fmt.Errorf("fault: rule %q: unknown directive %q", raw, d)
			}
		}
		if r.Kind == 255 {
			return nil, fmt.Errorf("fault: rule %q selects no fault kind (err, torn or delay=)", raw)
		}
		rules = append(rules, r)
	}
	return rules, nil
}

// MustParse is Parse for compile-time-constant specs in tests.
func MustParse(spec string) []Rule {
	rules, err := Parse(spec)
	if err != nil {
		panic(err)
	}
	return rules
}

// armedRule is one rule plus its firing state. The registry mutex guards
// calls/fired and the PRNG.
type armedRule struct {
	rule  Rule
	rng   *rand.Rand
	calls int64
	fired int64
}

// Registry holds the armed rules and their counters. All methods are safe
// for concurrent use, and every method is safe on a nil *Registry (a nil
// registry is permanently disarmed), so call sites need no nil checks.
type Registry struct {
	seed  int64
	armed atomic.Bool
	total atomic.Int64

	mu    sync.Mutex
	sites map[string][]*armedRule
}

// NewRegistry creates an empty (disarmed) registry with the given seed.
func NewRegistry(seed int64) *Registry {
	return &Registry{seed: seed, sites: make(map[string][]*armedRule)}
}

// Seed returns the registry's seed.
func (r *Registry) Seed() int64 {
	if r == nil {
		return 0
	}
	return r.seed
}

// Enabled reports whether any rule is armed; the disabled fast path is one
// atomic load.
func (r *Registry) Enabled() bool { return r != nil && r.armed.Load() }

// Total returns how many faults have fired across all sites.
func (r *Registry) Total() int64 {
	if r == nil {
		return 0
	}
	return r.total.Load()
}

// Set arms the given rules in addition to whatever is already armed. Each
// rule's PRNG is seeded from the registry seed, the site name and the
// rule's arming position, so the schedule is independent of map iteration
// order and of rules armed on other sites.
func (r *Registry) Set(rules ...Rule) {
	if r == nil || len(rules) == 0 {
		return
	}
	r.mu.Lock()
	for _, rule := range rules {
		h := fnv.New64a()
		h.Write([]byte(rule.Site))
		h.Write([]byte{byte(len(r.sites[rule.Site]))})
		r.sites[rule.Site] = append(r.sites[rule.Site], &armedRule{
			rule: rule,
			rng:  rand.New(rand.NewSource(r.seed ^ int64(h.Sum64()))),
		})
	}
	r.mu.Unlock()
	r.armed.Store(true)
}

// SetSpec parses spec and arms its rules.
func (r *Registry) SetSpec(spec string) error {
	rules, err := Parse(spec)
	if err != nil {
		return err
	}
	r.Set(rules...)
	return nil
}

// Clear disarms every rule. Fired totals are kept (they count injections
// over the registry's lifetime).
func (r *Registry) Clear() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.sites = make(map[string][]*armedRule)
	r.mu.Unlock()
	r.armed.Store(false)
}

// SiteStatus reports one armed rule's configuration and counters.
type SiteStatus struct {
	Site  string `json:"site"`
	Rule  string `json:"rule"`
	Calls int64  `json:"calls"`
	Fired int64  `json:"fired"`
}

// Status returns every armed rule with its counters, sorted by site then
// arming order, for the FAULT admin verb and operator tooling.
func (r *Registry) Status() []SiteStatus {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []SiteStatus
	names := make([]string, 0, len(r.sites))
	for name := range r.sites {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		for _, ar := range r.sites[name] {
			out = append(out, SiteStatus{
				Site:  name,
				Rule:  ar.rule.String(),
				Calls: ar.calls,
				Fired: ar.fired,
			})
		}
	}
	return out
}

// Injection is what a site must do after consulting the registry: stall for
// Delay, then fail with Err, then (for reads that got this far) deliver a
// torn buffer if Torn is set. Multiple armed rules compose: delays add,
// the first error wins, torn is sticky.
type Injection struct {
	Err   error
	Delay time.Duration
	Torn  bool
}

// Eval records one pass through a site and returns the composed injection
// of every rule that fired. It returns a zero Injection and false when
// nothing fired — including on a nil or disarmed registry.
func (r *Registry) Eval(site string) (Injection, bool) {
	if r == nil || !r.armed.Load() {
		return Injection{}, false
	}
	r.mu.Lock()
	rules := r.sites[site]
	if len(rules) == 0 {
		r.mu.Unlock()
		return Injection{}, false
	}
	var inj Injection
	hit := false
	for _, ar := range rules {
		ar.calls++
		fire := true
		switch {
		case ar.rule.Nth > 0:
			fire = ar.calls%int64(ar.rule.Nth) == 0
		case ar.rule.Prob > 0:
			fire = ar.rng.Float64() < ar.rule.Prob
		}
		if !fire {
			continue
		}
		ar.fired++
		hit = true
		switch ar.rule.Kind {
		case KindError:
			if inj.Err == nil {
				inj.Err = fmt.Errorf("fault: site %s: %w", site, ErrInjected)
			}
		case KindDelay:
			inj.Delay += ar.rule.Delay
		case KindTorn:
			inj.Torn = true
		}
	}
	r.mu.Unlock()
	if hit {
		r.total.Add(1)
	}
	return inj, hit
}

// Sleep pauses for d, returning early with ctx's error if the context is
// cancelled first. Injected stalls must sleep through this so a per-disk
// fetch deadline can bound a stalled read instead of wedging the disk's
// I/O goroutine.
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
