package fault

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestParseRoundTrips(t *testing.T) {
	specs := []string{
		"store.read:err",
		"store.read:err:p=0.05",
		"store.read:delay=10ms:p=0.1",
		"store.read.disk2:err",
		"parallel.send:err:n=40",
		"store.read:torn:p=0.25",
	}
	for _, spec := range specs {
		rules, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if len(rules) != 1 {
			t.Fatalf("Parse(%q): got %d rules, want 1", spec, len(rules))
		}
		if got := rules[0].String(); got != spec {
			t.Errorf("Parse(%q).String() = %q", spec, got)
		}
	}
}

func TestParseMultiRule(t *testing.T) {
	rules, err := Parse("store.read:err:p=0.05; store.read:delay=10ms:p=0.05;")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("got %d rules, want 2", len(rules))
	}
	if rules[0].Kind != KindError || rules[0].Prob != 0.05 {
		t.Errorf("rule 0 = %+v", rules[0])
	}
	if rules[1].Kind != KindDelay || rules[1].Delay != 10*time.Millisecond {
		t.Errorf("rule 1 = %+v", rules[1])
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	bad := []string{
		"store.read",            // no directive
		":err",                  // empty site
		"store.read:p=0.5",      // trigger without a kind
		"store.read:err:p=1.5",  // probability out of range
		"store.read:err:p=x",    // probability not a float
		"store.read:err:n=0",    // nth below 1
		"store.read:delay=-1s",  // negative delay
		"store.read:delay=zzz",  // unparsable duration
		"store.read:frobnicate", // unknown directive
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q): expected error", spec)
		}
	}
}

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Error("nil registry reports enabled")
	}
	if inj, hit := r.Eval("store.read"); hit || inj.Err != nil {
		t.Errorf("nil Eval = %+v, %v", inj, hit)
	}
	r.Set(Rule{Site: "x", Kind: KindError}) // must not panic
	r.Clear()
	if r.Total() != 0 || r.Status() != nil || r.Seed() != 0 {
		t.Error("nil registry leaked state")
	}
}

func TestUnconditionalAndNthTriggers(t *testing.T) {
	r := NewRegistry(1)
	r.Set(MustParse("a:err; b:err:n=3")...)
	for i := 1; i <= 6; i++ {
		if _, hit := r.Eval("a"); !hit {
			t.Fatalf("call %d on a: no hit", i)
		}
		_, hitB := r.Eval("b")
		if want := i%3 == 0; hitB != want {
			t.Fatalf("call %d on b: hit=%v want %v", i, hitB, want)
		}
	}
	if _, hit := r.Eval("unknown.site"); hit {
		t.Error("unknown site fired")
	}
}

func TestProbabilityIsDeterministicAndCalibrated(t *testing.T) {
	const n = 10000
	run := func(seed int64) int64 {
		r := NewRegistry(seed)
		r.Set(Rule{Site: "s", Kind: KindError, Prob: 0.05})
		for i := 0; i < n; i++ {
			r.Eval("s")
		}
		return r.Total()
	}
	a, b := run(42), run(42)
	if a != b {
		t.Fatalf("same seed diverged: %d vs %d", a, b)
	}
	// 5% of 10000 is 500; allow a generous ±40% band.
	if a < 300 || a > 700 {
		t.Errorf("5%% rule fired %d/%d times", a, n)
	}
	if c := run(43); c == a {
		t.Logf("different seeds gave identical counts (%d); unlikely but not fatal", c)
	}
}

func TestInjectionComposes(t *testing.T) {
	r := NewRegistry(1)
	r.Set(MustParse("s:delay=5ms; s:delay=7ms; s:torn; s:err")...)
	inj, hit := r.Eval("s")
	if !hit {
		t.Fatal("no hit")
	}
	if inj.Delay != 12*time.Millisecond {
		t.Errorf("Delay = %v, want 12ms", inj.Delay)
	}
	if !inj.Torn {
		t.Error("Torn not set")
	}
	if !IsInjected(inj.Err) {
		t.Errorf("Err = %v, want injected", inj.Err)
	}
	// Composed site passes count once toward the total.
	if r.Total() != 1 {
		t.Errorf("Total = %d, want 1", r.Total())
	}
}

func TestIsInjectedDistinguishesWrapping(t *testing.T) {
	wrapped := fmt.Errorf("outer: %w", ErrInjected)
	if !IsInjected(wrapped) {
		t.Error("wrapped injected error not recognised")
	}
	if IsInjected(errors.New("injected fault")) {
		t.Error("textual lookalike recognised as injected")
	}
	if IsInjected(nil) {
		t.Error("nil recognised as injected")
	}
}

func TestClearAndStatus(t *testing.T) {
	r := NewRegistry(1)
	r.Set(MustParse("b:err; a:err:n=2")...)
	r.Eval("a")
	r.Eval("a")
	r.Eval("b")
	st := r.Status()
	if len(st) != 2 || st[0].Site != "a" || st[1].Site != "b" {
		t.Fatalf("Status = %+v", st)
	}
	if st[0].Calls != 2 || st[0].Fired != 1 || st[1].Fired != 1 {
		t.Errorf("counters: %+v", st)
	}
	total := r.Total()
	r.Clear()
	if r.Enabled() || len(r.Status()) != 0 {
		t.Error("Clear left rules armed")
	}
	if r.Total() != total {
		t.Errorf("Clear reset Total: %d -> %d", total, r.Total())
	}
	if _, hit := r.Eval("a"); hit {
		t.Error("cleared registry fired")
	}
}

func TestEvalConcurrent(t *testing.T) {
	r := NewRegistry(7)
	r.Set(MustParse("s:err:p=0.5; s:delay=1ns:n=10")...)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				r.Eval("s")
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	st := r.Status()
	if st[0].Calls != 8000 || st[1].Calls != 8000 {
		t.Errorf("lost calls under concurrency: %+v", st)
	}
}

func TestSleepHonoursCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := Sleep(ctx, 10*time.Second)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Sleep = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Sleep took %v after cancellation", elapsed)
	}
	if err := Sleep(context.Background(), time.Microsecond); err != nil {
		t.Fatalf("uncancelled Sleep = %v", err)
	}
	if err := Sleep(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("zero-duration Sleep on cancelled ctx = %v", err)
	}
}
