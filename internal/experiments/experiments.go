// Package experiments reproduces every table and figure of the paper's
// evaluation (and the ablations listed in DESIGN.md) as programmatic
// drivers. Each driver returns text tables in the style of the paper; the
// cmd/gridbench binary and the repository's bench_test.go both dispatch
// through Run.
//
// Experiment ids: fig2 fig3 fig4 tab1 thm1 thm2 fig5 fig6 tab2 tab3 fig7
// tab4 tab5 ablation-sfc ablation-mst ablation-weight.
package experiments

import (
	"fmt"
	"sort"

	"pgridfile/internal/core"
	"pgridfile/internal/geom"
	"pgridfile/internal/gridfile"
	"pgridfile/internal/stats"
	"pgridfile/internal/synth"
)

// Options scales and seeds an experiment run.
type Options struct {
	// Seed drives every generator and randomized heuristic.
	Seed int64
	// Queries is the number of random range queries per workload
	// (the paper uses 1000).
	Queries int
	// Scale multiplies dataset sizes; 1.0 reproduces the paper's sizes.
	// The experiment shapes are stable down to about 0.1, which the
	// benchmarks use to keep iterations fast.
	Scale float64
	// Disks lists the disk counts swept; default is the paper's 4..32.
	Disks []int
}

// DefaultOptions returns the paper-scale configuration.
func DefaultOptions() Options {
	return Options{Seed: 1996, Queries: 1000, Scale: 1.0, Disks: evens(4, 32)}
}

// BenchOptions returns a reduced configuration for benchmarks and smoke
// tests: ~1/8-scale datasets, 150 queries, four disk counts.
func BenchOptions() Options {
	return Options{Seed: 1996, Queries: 150, Scale: 0.125, Disks: []int{4, 8, 16, 32}}
}

func evens(lo, hi int) []int {
	var out []int
	for m := lo; m <= hi; m += 2 {
		out = append(out, m)
	}
	return out
}

func (o Options) normalize() Options {
	if o.Queries <= 0 {
		o.Queries = 1000
	}
	if o.Scale <= 0 {
		o.Scale = 1.0
	}
	if len(o.Disks) == 0 {
		o.Disks = evens(4, 32)
	}
	return o
}

// scaled returns n scaled by the option factor, with a sane floor.
func (o Options) scaled(n int) int {
	v := int(float64(n) * o.Scale)
	if v < 100 {
		v = 100
	}
	return v
}

// built is a dataset loaded into a grid file plus its declustering view.
type built struct {
	ds        *synth.Dataset
	file      *gridfile.File
	grid      core.Grid
	indexByID []int
}

// Lab memoizes datasets and grid files across the experiments of one run.
type Lab struct {
	opts   Options
	cache  map[string]*built
	nnMemo map[string][]int
}

// NewLab creates a lab with the given options.
func NewLab(opts Options) *Lab {
	return &Lab{
		opts:   opts.normalize(),
		cache:  map[string]*built{},
		nnMemo: map[string][]int{},
	}
}

// Options returns the lab's normalized options.
func (l *Lab) Options() Options { return l.opts }

// dataset builds (or returns the memoized) named dataset.
func (l *Lab) dataset(name string) (*built, error) {
	if b, ok := l.cache[name]; ok {
		return b, nil
	}
	var ds *synth.Dataset
	o := l.opts
	switch name {
	case "uniform.2d":
		ds = synth.Uniform2D(o.scaled(10000), o.Seed)
	case "hot.2d":
		ds = synth.Hotspot2D(o.scaled(10000), o.Seed+1)
	case "correl.2d":
		ds = synth.Correl2D(o.scaled(10000), o.Seed+2)
	case "DSMC.3d":
		ds = synth.DSMC3D(o.scaled(synth.DSMC3DSize), o.Seed+3)
	case "stock.3d":
		days := int(float64(synth.Stock3DDays) * o.Scale)
		if days < 20 {
			days = 20
		}
		ds = synth.Stock3D(synth.Stock3DStocks, days, o.Seed+4)
	case "DSMC.4d":
		snaps := int(59 * o.Scale)
		if snaps < 8 {
			snaps = 8
		}
		per := int(51000 * o.Scale)
		if per < 500 {
			per = 500
		}
		ds = synth.DSMC4D(snaps, per, o.Seed+5)
	case "MHD.4d":
		snaps := int(59 * o.Scale)
		if snaps < 8 {
			snaps = 8
		}
		per := int(51000 * o.Scale)
		if per < 500 {
			per = 500
		}
		ds = synth.MHD4D(snaps, per, o.Seed+6)
	default:
		return nil, fmt.Errorf("experiments: unknown dataset %q", name)
	}
	f, err := ds.Build()
	if err != nil {
		return nil, err
	}
	b := &built{ds: ds, file: f, grid: core.FromGridFile(f), indexByID: f.IndexByID()}
	l.cache[name] = b
	return b, nil
}

// Run dispatches an experiment by id.
func (l *Lab) Run(id string) ([]*stats.Table, error) {
	switch id {
	case "fig2":
		return l.Figure2()
	case "fig3":
		return l.Figure3()
	case "fig4":
		return l.Figure4()
	case "tab1":
		return l.Table1()
	case "thm1":
		return l.Theorem1()
	case "thm2":
		return l.Theorem2()
	case "hcam-scaling":
		return l.HCAMScaling()
	case "fig5":
		return l.Figure5()
	case "fig6":
		return l.Figure6()
	case "tab2":
		return l.Table2()
	case "tab3":
		return l.Table3()
	case "fig7":
		return l.Figure7()
	case "tab4":
		return l.Table4()
	case "tab5":
		return l.Table5()
	case "pm":
		return l.PartialMatch()
	case "thm1-kd":
		return l.TheoremKD()
	case "tab6":
		return l.Table6()
	case "trace":
		return l.Trace()
	case "rtree":
		return l.RTree()
	case "quadtree":
		return l.Quadtree()
	case "utilization":
		return l.Utilization()
	case "optimality":
		return l.Optimality()
	case "ablation-sfc":
		return l.AblationCurves()
	case "ablation-mst":
		return l.AblationMinimaxVsMST()
	case "ablation-weight":
		return l.AblationEdgeWeight()
	case "ablation-gdm":
		return l.AblationGDM()
	case "ablation-refine":
		return l.AblationRefine()
	case "ablation-seqio":
		return l.AblationSeqIO()
	case "ablation-split":
		return l.AblationSplit()
	case "dirio":
		return l.DirIO()
	default:
		return nil, fmt.Errorf("experiments: unknown experiment %q (see ListExperiments)", id)
	}
}

// ListExperiments returns the experiment ids in presentation order.
func ListExperiments() []string {
	return []string{
		"fig2", "fig3", "fig4", "tab1", "thm1", "thm1-kd", "thm2",
		"hcam-scaling", "fig5",
		"fig6", "tab2", "tab3", "fig7", "tab4", "tab5", "tab6", "pm", "trace",
		"rtree", "quadtree", "utilization", "optimality",
		"ablation-sfc", "ablation-mst", "ablation-weight", "ablation-gdm",
		"ablation-refine", "ablation-seqio", "ablation-split", "dirio",
	}
}

// RunAll executes every experiment in order.
func (l *Lab) RunAll() ([]*stats.Table, error) {
	var out []*stats.Table
	for _, id := range ListExperiments() {
		ts, err := l.Run(id)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", id, err)
		}
		out = append(out, ts...)
	}
	return out, nil
}

// fmtDisks renders a disks column header list in ascending order.
func fmtDisks(disks []int) []string {
	sorted := append([]int(nil), disks...)
	sort.Ints(sorted)
	out := make([]string, len(sorted))
	for i, m := range sorted {
		out[i] = fmt.Sprintf("%d", m)
	}
	return out
}

// queriesFor builds the standard square-range workload for a dataset.
func (l *Lab) queriesFor(dom geom.Rect, r float64) []geom.Rect {
	return squareQueries(dom, r, l.opts.Queries, l.opts.Seed+100)
}
