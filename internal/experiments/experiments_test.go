package experiments

import (
	"strconv"
	"strings"
	"testing"

	"pgridfile/internal/core"
	"pgridfile/internal/sim"
	"pgridfile/internal/stats"
)

// testOptions keeps unit-test runs fast while preserving the shapes.
func testOptions() Options {
	return Options{Seed: 7, Queries: 80, Scale: 0.08, Disks: []int{4, 16, 32}}
}

func TestRunAllExperimentsProduceTables(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	lab := NewLab(testOptions())
	for _, id := range ListExperiments() {
		ts, err := lab.Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(ts) == 0 {
			t.Fatalf("%s: no tables", id)
		}
		for _, tb := range ts {
			if tb.NumRows() == 0 {
				t.Errorf("%s: empty table %q", id, tb.Title)
			}
			if out := tb.Render(); len(out) == 0 {
				t.Errorf("%s: empty render", id)
			}
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	lab := NewLab(testOptions())
	if _, err := lab.Run("fig99"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestOptionsNormalization(t *testing.T) {
	lab := NewLab(Options{})
	o := lab.Options()
	if o.Queries != 1000 || o.Scale != 1.0 || len(o.Disks) != 15 {
		t.Errorf("normalized options = %+v", o)
	}
	if o.Disks[0] != 4 || o.Disks[len(o.Disks)-1] != 32 {
		t.Errorf("disk sweep = %v", o.Disks)
	}
}

func TestDatasetMemoization(t *testing.T) {
	lab := NewLab(testOptions())
	a, err := lab.dataset("hot.2d")
	if err != nil {
		t.Fatal(err)
	}
	b, err := lab.dataset("hot.2d")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("dataset not memoized")
	}
	if _, err := lab.dataset("nope"); err == nil {
		t.Error("unknown dataset accepted")
	}
}

// parseSeries extracts the float series of the row whose first cell matches
// label from a rendered table.
func parseSeries(t *testing.T, tb *stats.Table, label string) []float64 {
	t.Helper()
	for _, line := range strings.Split(tb.Render(), "\n") {
		if !strings.HasPrefix(line, label+" ") && !strings.HasPrefix(line, label+"  ") {
			continue
		}
		rest := strings.TrimSpace(strings.TrimPrefix(line, label))
		fields := strings.Fields(rest)
		out := make([]float64, 0, len(fields))
		for _, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				t.Fatalf("row %q: bad cell %q", label, f)
			}
			out = append(out, v)
		}
		return out
	}
	t.Fatalf("row %q not found in table %q", label, tb.Title)
	return nil
}

func TestFigure4Shapes(t *testing.T) {
	lab := NewLab(testOptions())
	tables, err := lab.Figure4()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("%d tables", len(tables))
	}
	// On every dataset: response times never fall below the optimal curve,
	// and DM/FX saturate — their response at 32 disks stays well above
	// optimal while HCAM tracks closer.
	for _, tb := range tables {
		dm := parseSeries(t, tb, "DM/D")
		fx := parseSeries(t, tb, "FX/D")
		hcam := parseSeries(t, tb, "HCAM/D")
		opt := parseSeries(t, tb, "optimal")
		for i := range opt {
			for _, s := range [][]float64{dm, fx, hcam} {
				if s[i] < opt[i]-1e-9 {
					t.Errorf("%s: series below optimal at disks idx %d", tb.Title, i)
				}
			}
		}
		last := len(opt) - 1
		if hcam[last] > dm[last]+0.5 {
			t.Errorf("%s: HCAM (%.2f) clearly worse than DM (%.2f) at 32 disks",
				tb.Title, hcam[last], dm[last])
		}
	}
}

func TestFigure6MinimaxWins(t *testing.T) {
	lab := NewLab(testOptions())
	tables, err := lab.Figure6()
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range tables {
		mm := parseSeries(t, tb, "MiniMax")
		dm := parseSeries(t, tb, "DM/D")
		fx := parseSeries(t, tb, "FX/D")
		last := len(mm) - 1
		// Paper: minimax consistently beats the others at scale (allowing
		// the small-M exceptions it notes). Compare at the largest M.
		if mm[last] > dm[last]+1e-9 {
			t.Errorf("%s: MiniMax %.3f worse than DM %.3f at 32 disks", tb.Title, mm[last], dm[last])
		}
		if mm[last] > fx[last]+1e-9 {
			t.Errorf("%s: MiniMax %.3f worse than FX %.3f at 32 disks", tb.Title, mm[last], fx[last])
		}
	}
}

func TestTable1BalanceBounds(t *testing.T) {
	lab := NewLab(testOptions())
	tables, err := lab.Table1()
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	for _, label := range []string{"DM/D", "FX/D", "HCAM/D", "MiniMax"} {
		series := parseSeries(t, tb, label)
		for i, v := range series {
			if v < 1.0-1e-9 {
				t.Errorf("%s at idx %d: balance degree %.3f below 1", label, i, v)
			}
		}
	}
	// MiniMax must achieve the ceiling bound exactly.
	b, _ := lab.dataset("hot.2d")
	n := len(b.grid.Buckets)
	mm := parseSeries(t, tb, "MiniMax")
	for i, m := range lab.Options().Disks {
		ceil := (n + m - 1) / m
		bound := float64(ceil) * float64(m) / float64(n)
		if mm[i] > bound+1e-6 {
			t.Errorf("MiniMax balance %.4f exceeds ceiling bound %.4f at M=%d", mm[i], bound, m)
		}
	}
}

func TestTables23MinimaxNearZero(t *testing.T) {
	lab := NewLab(testOptions())
	for _, id := range []string{"tab2", "tab3"} {
		tables, err := lab.Run(id)
		if err != nil {
			t.Fatal(err)
		}
		tb := tables[0]
		mm := parseSeries(t, tb, "MiniMax")
		dm := parseSeries(t, tb, "DM/D")
		b, _ := lab.dataset(map[string]string{"tab2": "DSMC.3d", "tab3": "stock.3d"}[id])
		n := float64(len(b.grid.Buckets))
		last := len(mm) - 1
		if mm[last] > n/20 {
			t.Errorf("%s: MiniMax closest pairs %.0f out of %.0f buckets", id, mm[last], n)
		}
		if dm[last] < mm[last] {
			t.Errorf("%s: DM (%0.f) below MiniMax (%.0f) on closest pairs", id, dm[last], mm[last])
		}
	}
}

func TestTable4ElapsedDecreases(t *testing.T) {
	lab := NewLab(testOptions())
	tables, err := lab.Table4()
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	var resp, elapsed []float64
	for _, line := range strings.Split(tb.Render(), "\n")[2:] {
		fields := strings.Fields(line)
		if len(fields) < 6 {
			continue
		}
		r, err1 := strconv.ParseFloat(fields[2], 64)
		e, err2 := strconv.ParseFloat(fields[4], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("bad row %q", line)
		}
		resp = append(resp, r)
		elapsed = append(elapsed, e)
	}
	if len(resp) != 3 {
		t.Fatalf("%d rows", len(resp))
	}
	for i := 1; i < 3; i++ {
		if resp[i] >= resp[i-1] {
			t.Errorf("response blocks not decreasing: %v", resp)
		}
	}
	// At test scale fixed per-query costs blur adjacent worker counts, so
	// assert the endpoint comparison the paper's table guarantees.
	if elapsed[2] >= elapsed[0] {
		t.Errorf("elapsed with 16 workers (%v) not below 4 workers (%v)", elapsed[2], elapsed[0])
	}
}

func TestFigure7SpeedupNormalized(t *testing.T) {
	lab := NewLab(testOptions())
	tables, err := lab.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	sp := tables[1]
	for _, label := range []string{"HCAM/D, r=0.01", "MiniMax, r=0.10"} {
		series := parseSeries(t, sp, label)
		if series[0] != 1.0 {
			t.Errorf("%s: speedup at 4 disks = %.3f, want 1", label, series[0])
		}
	}
}

func TestMeanResponseRowAgainstDirectReplay(t *testing.T) {
	lab := NewLab(testOptions())
	b, err := lab.dataset("hot.2d")
	if err != nil {
		t.Fatal(err)
	}
	queries := lab.queriesFor(b.grid.Domain, 0.05)
	alg := &core.Minimax{Seed: lab.Options().Seed}
	rts, _, err := lab.meanResponseRow(b, alg, queries)
	if err != nil {
		t.Fatal(err)
	}
	alloc, _ := alg.Decluster(b.grid, lab.Options().Disks[0])
	res, err := sim.Replay(b.file, alloc, b.indexByID, queries)
	if err != nil {
		t.Fatal(err)
	}
	if rts[0] != res.MeanResponseTime {
		t.Errorf("row %.4f != direct replay %.4f", rts[0], res.MeanResponseTime)
	}
}

func TestHCAMScalingShapes(t *testing.T) {
	lab := NewLab(testOptions())
	tables, err := lab.HCAMScaling()
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range tables {
		var dm, fx, hcam []float64
		for _, line := range strings.Split(tb.Render(), "\n")[2:] {
			fields := strings.Fields(line)
			if len(fields) < 5 {
				continue
			}
			parse := func(s string) float64 {
				v, err := strconv.ParseFloat(s, 64)
				if err != nil {
					t.Fatalf("bad cell %q", s)
				}
				return v
			}
			dm = append(dm, parse(fields[1]))
			fx = append(fx, parse(fields[2]))
			hcam = append(hcam, parse(fields[3]))
		}
		if len(dm) != 6 {
			t.Fatalf("%d rows", len(dm))
		}
		last := len(dm) - 1
		// The Faloutsos–Bhagwat result: HCAM wins for many disks.
		if hcam[last] >= fx[last] || hcam[last] >= dm[last] {
			t.Errorf("%s: HCAM %.2f not below DM %.2f / FX %.2f at 64 disks",
				tb.Title, hcam[last], dm[last], fx[last])
		}
		// DM saturates: its last three rows are identical.
		if dm[3] != dm[4] || dm[4] != dm[5] {
			t.Errorf("%s: DM did not saturate: %v", tb.Title, dm[3:])
		}
		// HCAM keeps strictly improving across the sweep's second half.
		if !(hcam[5] < hcam[4] && hcam[4] < hcam[3]) {
			t.Errorf("%s: HCAM not strictly improving: %v", tb.Title, hcam[3:])
		}
	}
}

func TestRTreeExperimentShapes(t *testing.T) {
	lab := NewLab(testOptions())
	tables, err := lab.RTree()
	if err != nil {
		t.Fatal(err)
	}
	rt, cp := tables[0], tables[1]
	mm := parseSeries(t, rt, "MiniMax")
	cc := parseSeries(t, rt, "CentroidCurve(hilbert)")
	opt := parseSeries(t, rt, "optimal")
	last := len(mm) - 1
	if mm[last] > cc[last]+1e-9 {
		t.Errorf("MiniMax %.3f above CentroidCurve %.3f at 32 disks", mm[last], cc[last])
	}
	for i := range opt {
		if mm[i] < opt[i]-1e-9 {
			t.Errorf("MiniMax below optimal at idx %d", i)
		}
	}
	mmPairs := parseSeries(t, cp, "MiniMax")
	if mmPairs[last] > 3 {
		t.Errorf("MiniMax closest leaf pairs %.0f at 32 disks", mmPairs[last])
	}
}

func TestPartialMatchDMNearOptimal(t *testing.T) {
	lab := NewLab(testOptions())
	tables, err := lab.PartialMatch()
	if err != nil {
		t.Fatal(err)
	}
	uniform := tables[0]
	dm := parseSeries(t, uniform, "DM/D")
	mm := parseSeries(t, uniform, "MiniMax")
	last := len(dm) - 1
	// On the near-Cartesian uniform grid, DM is the partial-match
	// specialist: it must not lose to minimax at the largest disk count.
	if dm[last] > mm[last]+0.25 {
		t.Errorf("DM %.3f clearly worse than MiniMax %.3f on partial match", dm[last], mm[last])
	}
}

func TestAblationGDMDeSaturates(t *testing.T) {
	lab := NewLab(testOptions())
	tables, err := lab.AblationGDM()
	if err != nil {
		t.Fatal(err)
	}
	dm := parseSeries(t, tables[0], "DM/D")
	gdm := parseSeries(t, tables[0], "GDM/D")
	last := len(dm) - 1
	if gdm[last] > dm[last] {
		t.Errorf("GDM %.3f above DM %.3f at the largest disk count", gdm[last], dm[last])
	}
}

func TestTraceLocalityBeatsRandom(t *testing.T) {
	lab := NewLab(testOptions())
	tables, err := lab.Trace()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(tables[0].Render(), "\n")
	hit := func(line string) float64 {
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[4], 64)
		if err != nil {
			t.Fatalf("bad row %q", line)
		}
		return v
	}
	// lines: 0 title, 1 header, 2 separator, then the four data rows:
	// DSMC trace, DSMC random, MHD trace, MHD random.
	if hit(lines[3]) <= hit(lines[4]) {
		t.Errorf("DSMC trace hit rate %.2f not above random %.2f", hit(lines[3]), hit(lines[4]))
	}
	if hit(lines[5]) <= hit(lines[6]) {
		t.Errorf("MHD trace hit rate %.2f not above random %.2f", hit(lines[5]), hit(lines[6]))
	}
}

func TestAblationSeqIOHelps(t *testing.T) {
	lab := NewLab(testOptions())
	tables, err := lab.AblationSeqIO()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(tables[0].Render(), "\n")
	field := func(line string, idx int) float64 {
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[idx], 64)
		if err != nil {
			t.Fatalf("bad row %q", line)
		}
		return v
	}
	// Rows 3 (false) and 4 (true): same blocks, elevator no slower and some
	// reads served sequentially.
	if field(lines[3], 1) != field(lines[4], 1) {
		t.Error("block counts differ between modes")
	}
	if field(lines[4], 3) > field(lines[3], 3) {
		t.Errorf("elevator elapsed %.2f above random %.2f", field(lines[4], 3), field(lines[3], 3))
	}
	if field(lines[4], 2) <= 0 {
		t.Error("no sequentially-served reads with elevator scheduling")
	}
}

func TestDirIOPageTradeoff(t *testing.T) {
	lab := NewLab(testOptions())
	tables, err := lab.DirIO()
	if err != nil {
		t.Fatal(err)
	}
	var accesses []float64
	for _, line := range strings.Split(tables[0].Render(), "\n")[3:] {
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		v, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			t.Fatalf("bad row %q", line)
		}
		accesses = append(accesses, v)
	}
	if len(accesses) != 4 {
		t.Fatalf("%d rows", len(accesses))
	}
	// Larger pages -> fewer page accesses per query. Tile-shape rounding
	// can wobble adjacent sizes on tiny grids, so assert the endpoints
	// plus a small tolerance on the interior.
	if accesses[len(accesses)-1] > accesses[0] {
		t.Errorf("largest page size costs more than smallest: %v", accesses)
	}
	for i := 1; i < len(accesses); i++ {
		if accesses[i] > accesses[i-1]*1.15 {
			t.Errorf("page accesses clearly non-monotone: %v", accesses)
		}
	}
	for _, v := range accesses {
		if v < 1 {
			t.Errorf("per-query accesses below 1: %v", accesses)
		}
	}
}
