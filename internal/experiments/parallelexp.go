package experiments

import (
	"fmt"
	"time"

	"pgridfile/internal/core"
	"pgridfile/internal/diskmodel"
	"pgridfile/internal/parallel"
	"pgridfile/internal/stats"
	"pgridfile/internal/workload"
)

// spWorkers are the SP-2 node counts of the paper's Section 3.5.
var spWorkers = []int{4, 8, 16}

// buildEngine declusters the 4-D dataset with minimax (the paper's choice
// for the SP-2 experiments) and starts an engine.
func (l *Lab) buildEngine(workers int) (*parallel.Engine, *built, error) {
	b, err := l.dataset("DSMC.4d")
	if err != nil {
		return nil, nil, err
	}
	alloc, err := (&core.Minimax{Seed: l.opts.Seed}).Decluster(b.grid, workers)
	if err != nil {
		return nil, nil, err
	}
	disk := diskmodel.DefaultParams()
	disk.BlockBytes = b.ds.PageBytes
	cost := parallel.DefaultCostModel()
	cost.RecordBytes = b.ds.RecordBytes
	eng, err := parallel.New(b.file, alloc, parallel.Config{
		Workers: workers, Disk: disk, Cost: cost,
	})
	if err != nil {
		return nil, nil, err
	}
	return eng, b, nil
}

func seconds(d time.Duration) float64 { return d.Seconds() }

// Table4 reproduces the animation-query experiment: for each node count, a
// sweep of r=0.1 slab queries per snapshot covering the whole volume.
// Caching effects appear because the temporal dimension has far fewer grid
// partitions than snapshots, so consecutive snapshots reuse blocks.
func (l *Lab) Table4() ([]*stats.Table, error) {
	t := stats.NewTable(
		"Table 4 — animation queries on the SPMD engine (minimax declustering)",
		"processors", "queries", "response (blocks fetched)", "comm (s)", "elapsed (s)", "cache hit rate")
	for _, workers := range spWorkers {
		eng, b, err := l.buildEngine(workers)
		if err != nil {
			return nil, err
		}
		steps := int(b.grid.Domain[0].Length())
		queries := workload.AnimationSweep(b.grid.Domain, 0.1, steps)
		tot, err := eng.Run(queries)
		eng.Close()
		if err != nil {
			return nil, err
		}
		hitRate := 0.0
		if tot.Blocks > 0 {
			hitRate = float64(tot.CacheHits) / float64(tot.Blocks)
		}
		t.AddRow(workers, tot.Queries, tot.ResponseBlocks,
			seconds(tot.Comm), seconds(tot.Elapsed), hitRate)
	}
	return []*stats.Table{t}, nil
}

// Table5 reproduces the random range-query experiment: 100 random 4-D
// queries per configuration with r ∈ {0.01, 0.05, 0.1}, cold caches.
func (l *Lab) Table5() ([]*stats.Table, error) {
	t := stats.NewTable(
		"Table 5 — random range queries on the SPMD engine (minimax declustering)",
		"processors", "query ratio", "response (blocks fetched)", "comm (s)", "elapsed (s)")
	nQueries := 100
	for _, workers := range spWorkers {
		eng, b, err := l.buildEngine(workers)
		if err != nil {
			return nil, err
		}
		for _, r := range []float64{0.01, 0.05, 0.1} {
			eng.DropCaches()
			queries := workload.RandomRange4D(b.grid.Domain, r, nQueries, l.opts.Seed+int64(1000*r))
			tot, err := eng.Run(queries)
			if err != nil {
				eng.Close()
				return nil, err
			}
			t.AddRow(workers, fmt.Sprintf("%.2f", r), tot.ResponseBlocks,
				seconds(tot.Comm), seconds(tot.Elapsed))
		}
		eng.Close()
	}
	return []*stats.Table{t}, nil
}
