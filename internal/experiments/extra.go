package experiments

import (
	"fmt"
	"math"

	"pgridfile/internal/core"
	"pgridfile/internal/diskmodel"
	"pgridfile/internal/geom"
	"pgridfile/internal/gridfile"
	"pgridfile/internal/parallel"
	"pgridfile/internal/quadtree"
	"pgridfile/internal/rtree"
	"pgridfile/internal/sim"
	"pgridfile/internal/stats"
	"pgridfile/internal/synth"
	"pgridfile/internal/workload"
)

// PartialMatch (experiment id "pm") evaluates the declustering algorithms on
// partial-match workloads — the query class for which disk modulo was
// proven strictly optimal on Cartesian product files (Du and Sobolewski;
// discussed in Section 2). Each query specifies all attributes but one, so
// it touches a one-cell-wide slab of the grid. On the near-Cartesian
// uniform.2d grid file DM should track the optimal curve closely even at
// disk counts where it has long saturated for square range queries.
func (l *Lab) PartialMatch() ([]*stats.Table, error) {
	var out []*stats.Table
	for _, name := range []string{"uniform.2d", "hot.2d"} {
		b, err := l.dataset(name)
		if err != nil {
			return nil, err
		}
		pm := workload.PartialMatch(b.grid.Domain, 1, l.opts.Queries, l.opts.Seed+200)
		queries := make([]geom.Rect, len(pm))
		for i, vals := range pm {
			q := make(geom.Rect, len(vals))
			for d, v := range vals {
				if math.IsNaN(v) {
					q[d] = b.grid.Domain[d]
				} else {
					q[d] = geom.Interval{Lo: v, Hi: v}
				}
			}
			queries[i] = q
		}
		t := stats.NewTable(
			fmt.Sprintf("Partial match — one unspecified attribute on %s (mean response time in buckets)", name),
			append([]string{"method"}, fmtDisks(l.opts.Disks)...)...)
		var optimal []float64
		for _, alg := range core.Figure6Lineup(l.opts.Seed) {
			rts, opts, err := l.meanResponseRow(b, alg, queries)
			if err != nil {
				return nil, err
			}
			addSeriesRow(t, alg.Name(), rts)
			optimal = opts
		}
		addSeriesRow(t, "optimal", optimal)
		out = append(out, t)
	}
	return out, nil
}

// AblationGDM (experiment id "ablation-gdm") compares plain disk modulo
// against the generalized disk modulo family with golden-ratio coefficients
// on uniform.2d square range queries: skewed coefficients break the
// anti-diagonal collisions that pin DM's response at the query side length,
// pushing the saturation threshold out.
func (l *Lab) AblationGDM() ([]*stats.Table, error) {
	b, err := l.dataset("uniform.2d")
	if err != nil {
		return nil, err
	}
	queries := l.queriesFor(b.grid.Domain, 0.05)
	t := stats.NewTable(
		"Ablation A4 — DM vs generalized DM (golden-ratio coefficients) on uniform.2d (r=0.05)",
		append([]string{"method"}, fmtDisks(l.opts.Disks)...)...)
	var optimal []float64
	for _, scheme := range []string{"DM", "GDM"} {
		alg, err := core.NewIndexBased(scheme, "D", l.opts.Seed)
		if err != nil {
			return nil, err
		}
		rts, opts, err := l.meanResponseRow(b, alg, queries)
		if err != nil {
			return nil, err
		}
		addSeriesRow(t, alg.Name(), rts)
		optimal = opts
	}
	addSeriesRow(t, "optimal", optimal)
	return []*stats.Table{t}, nil
}

// Table6 (experiment id "tab6") extends the SP-2 experiments toward the
// configuration the paper's conclusion describes — 16 processors with seven
// disks each — by sweeping disks-per-node at a fixed node count on the
// random range-query workload (cold caches, r = 0.05).
func (l *Lab) Table6() ([]*stats.Table, error) {
	b, err := l.dataset("DSMC.4d")
	if err != nil {
		return nil, err
	}
	const workers = 16
	alloc, err := (&core.Minimax{Seed: l.opts.Seed}).Decluster(b.grid, workers)
	if err != nil {
		return nil, err
	}
	queries := workload.RandomRange4D(b.grid.Domain, 0.05, 100, l.opts.Seed+300)

	t := stats.NewTable(
		"Table 6 (extension) — disks per node at 16 nodes, random queries r=0.05, cold caches",
		"disks/node", "response (blocks fetched)", "comm (s)", "elapsed (s)")
	for _, dpn := range []int{1, 2, 4, 7} {
		disk := diskmodel.DefaultParams()
		disk.BlockBytes = b.ds.PageBytes
		disk.CacheBlocks = 0
		cost := parallel.DefaultCostModel()
		cost.RecordBytes = b.ds.RecordBytes
		eng, err := parallel.New(b.file, alloc, parallel.Config{
			Workers: workers, DisksPerWorker: dpn, Disk: disk, Cost: cost,
		})
		if err != nil {
			return nil, err
		}
		tot, err := eng.Run(queries)
		eng.Close()
		if err != nil {
			return nil, err
		}
		t.AddRow(dpn, tot.ResponseBlocks, seconds(tot.Comm), seconds(tot.Elapsed))
	}
	return []*stats.Table{t}, nil
}

// Trace (experiment id "trace") runs the particle-tracing access pattern
// named in the paper's future work on the SPMD engine: a probe follows a
// drifting trajectory through the snapshot series, so consecutive queries
// overlap heavily. Compared against the same number of random queries of
// the same size, tracing should show far higher cache hit rates and lower
// elapsed time per block. Run on both DSMC.4d and the MHD.4d substitute
// (the two time-dependent simulations the paper's conclusion names).
func (l *Lab) Trace() ([]*stats.Table, error) {
	t := stats.NewTable(
		"Trace (extension) — particle tracing vs random queries on the SPMD engine (16 nodes)",
		"dataset", "workload", "queries", "blocks", "hit rate", "elapsed (s)")
	const workers = 16
	for _, name := range []string{"DSMC.4d", "MHD.4d"} {
		b, err := l.dataset(name)
		if err != nil {
			return nil, err
		}
		alloc, err := (&core.Minimax{Seed: l.opts.Seed}).Decluster(b.grid, workers)
		if err != nil {
			return nil, err
		}
		disk := diskmodel.DefaultParams()
		disk.BlockBytes = b.ds.PageBytes
		cost := parallel.DefaultCostModel()
		cost.RecordBytes = b.ds.RecordBytes
		eng, err := parallel.New(b.file, alloc, parallel.Config{
			Workers: workers, Disk: disk, Cost: cost,
		})
		if err != nil {
			return nil, err
		}
		steps := 4 * int(b.grid.Domain[0].Length())
		workloads := []struct {
			label   string
			queries []geom.Rect
		}{
			{"trace", workload.ParticleTrace(b.grid.Domain, 0.05, steps, l.opts.Seed+500)},
			{"random", workload.RandomRange4D(b.grid.Domain, 0.05, steps, l.opts.Seed+501)},
		}
		for _, w := range workloads {
			eng.DropCaches()
			tot, err := eng.Run(w.queries)
			if err != nil {
				eng.Close()
				return nil, err
			}
			hitRate := 0.0
			if tot.Blocks > 0 {
				hitRate = float64(tot.CacheHits) / float64(tot.Blocks)
			}
			t.AddRow(name, w.label, tot.Queries, tot.Blocks, hitRate, seconds(tot.Elapsed))
		}
		eng.Close()
	}
	return []*stats.Table{t}, nil
}

// RTree (experiment id "rtree") declusters the leaf pages of an STR-packed
// R-tree over stock.3d — the setting of Kamel and Faloutsos's parallel
// R-trees, from which the paper takes its proximity index — with the
// region-based algorithms (grid-based DM/FX/HCAM do not apply to a tree).
// The paper's grid-file ranking should carry over: minimax lowest response
// time and near-zero co-located closest pairs; the Hilbert-centroid
// round-robin (Kamel–Faloutsos's own scheme) competitive but behind.
func (l *Lab) RTree() ([]*stats.Table, error) {
	b, err := l.dataset("stock.3d")
	if err != nil {
		return nil, err
	}
	pts := make([]geom.Point, len(b.ds.Records))
	for i, r := range b.ds.Records {
		pts[i] = r.Key
	}
	tr, err := rtree.BulkLoad(pts, rtree.Config{
		LeafCapacity: b.ds.BucketCapacity(),
		Domain:       b.ds.Domain,
	})
	if err != nil {
		return nil, err
	}
	g := core.Grid{Sizes: ones(tr.Dims()), Domain: tr.Domain(), Buckets: tr.Leaves()}
	queries := l.queriesFor(tr.Domain(), 0.01)
	nn := sim.NearestCompanions(g, nil)

	algs := []core.Allocator{
		&core.CentroidCurve{},
		&core.SSP{Seed: l.opts.Seed},
		&core.Minimax{Seed: l.opts.Seed},
	}
	rt := stats.NewTable(
		fmt.Sprintf("R-tree (extension) — declustering %d STR leaf pages of stock.3d (r=0.01): mean response time", tr.NumLeaves()),
		append([]string{"method"}, fmtDisks(l.opts.Disks)...)...)
	cp := stats.NewTable(
		"R-tree (extension) — closest leaf pairs on the same disk",
		append([]string{"method"}, fmtDisks(l.opts.Disks)...)...)
	var optimal []float64
	for _, alg := range algs {
		rts := make([]float64, len(l.opts.Disks))
		opts := make([]float64, len(l.opts.Disks))
		pairs := make([]any, 0, len(l.opts.Disks)+1)
		pairs = append(pairs, alg.Name())
		for i, m := range l.opts.Disks {
			alloc, err := alg.Decluster(g, m)
			if err != nil {
				return nil, err
			}
			res, err := sim.ReplaySource(tr, alloc, tr.IndexByID(), queries)
			if err != nil {
				return nil, err
			}
			rts[i] = res.MeanResponseTime
			opts[i] = res.MeanOptimal
			pairs = append(pairs, sim.CountSameDisk(nn, alloc))
		}
		addSeriesRow(rt, alg.Name(), rts)
		cp.AddRow(pairs...)
		optimal = opts
	}
	addSeriesRow(rt, "optimal", optimal)
	return []*stats.Table{rt, cp}, nil
}

func ones(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = 1
	}
	return out
}

// AblationSplit (experiment id "ablation-split") compares the grid file's
// split-dimension policies on the skewed correl.2d dataset: the default
// largest-extent policy against the literature's simple cyclic rotation.
// Structure statistics and minimax response time are reported for both;
// the correlated diagonal punishes cyclic splitting with more elongated
// cells and a larger directory.
func (l *Lab) AblationSplit() ([]*stats.Table, error) {
	ds := synth.Correl2D(l.opts.scaled(10000), l.opts.Seed+2)
	t := stats.NewTable(
		"Ablation A7 — grid-file split policy on correl.2d",
		"policy", "cells", "buckets", "merged", "minimax rt@16 (r=0.05)")
	for _, pol := range []struct {
		name string
		p    gridfile.SplitPolicy
	}{
		{"largest-extent", gridfile.SplitLargestExtent},
		{"cyclic", gridfile.SplitCyclic},
	} {
		f, err := gridfile.New(gridfile.Config{
			Dims:           2,
			Domain:         ds.Domain,
			BucketCapacity: ds.BucketCapacity(),
			Split:          pol.p,
		})
		if err != nil {
			return nil, err
		}
		if err := f.InsertAll(ds.Records); err != nil {
			return nil, err
		}
		g := core.FromGridFile(f)
		alloc, err := (&core.Minimax{Seed: l.opts.Seed}).Decluster(g, 16)
		if err != nil {
			return nil, err
		}
		res, err := sim.Replay(f, alloc, f.IndexByID(), l.queriesFor(g.Domain, 0.05))
		if err != nil {
			return nil, err
		}
		st := f.Stats()
		t.AddRow(pol.name, st.Cells, st.Buckets, st.MergedBuckets, res.MeanResponseTime)
	}
	return []*stats.Table{t}, nil
}

// Optimality (experiment id "optimality") measures the heuristics' exact
// optimality gap on instances small enough for branch-and-bound: tiny
// Cartesian grids where the Exhaustive allocator finds the true
// workload-optimal assignment. The paper can only conjecture that minimax
// is "probably quite close to the optimal distribution"; here the gap is
// computed exactly (as total response over the workload, optimum = 100%).
func (l *Lab) Optimality() ([]*stats.Table, error) {
	t := stats.NewTable(
		"Optimality gap (extension) — exact optimum via branch-and-bound on small Cartesian grids",
		"grid", "disks", "optimum", "MiniMax", "SSP", "HCAM/D", "DM/D", "MiniMax gap")
	hcam, err := core.NewIndexBased("HCAM", "D", l.opts.Seed)
	if err != nil {
		return nil, err
	}
	dm, err := core.NewIndexBased("DM", "D", l.opts.Seed)
	if err != nil {
		return nil, err
	}
	for _, cfg := range []struct {
		sizes []int
		disks int
	}{
		{[]int{3, 4}, 3}, {[]int{4, 4}, 4}, {[]int{2, 7}, 3}, {[]int{4, 3}, 2},
	} {
		lo := make([]float64, len(cfg.sizes))
		hi := make([]float64, len(cfg.sizes))
		for i, s := range cfg.sizes {
			hi[i] = float64(s) * 10
		}
		c, err := gridfile.NewCartesian(cfg.sizes, geom.NewRect(lo, hi))
		if err != nil {
			return nil, err
		}
		g := core.FromCartesian(c)
		queries := squareQueries(g.Domain, 0.2, 80, l.opts.Seed+600)

		objective := func(a core.Allocation) int64 {
			var total int64
			counts := make([]int, a.Disks)
			for _, q := range queries {
				for i := range counts {
					counts[i] = 0
				}
				for i := range g.Buckets {
					if g.Buckets[i].Region.Intersects(q) {
						counts[a.Assign[i]]++
					}
				}
				max := 0
				for _, n := range counts {
					if n > max {
						max = n
					}
				}
				total += int64(max)
			}
			return total
		}

		algs := []core.Allocator{
			&core.Exhaustive{Queries: queries},
			&core.Minimax{Seed: l.opts.Seed},
			&core.SSP{Seed: l.opts.Seed},
			hcam,
			dm,
		}
		vals := make([]int64, len(algs))
		for i, alg := range algs {
			alloc, err := alg.Decluster(g, cfg.disks)
			if err != nil {
				return nil, err
			}
			vals[i] = objective(alloc)
		}
		gap := 100 * float64(vals[1]-vals[0]) / float64(vals[0])
		t.AddRow(fmt.Sprintf("%v", cfg.sizes), cfg.disks,
			vals[0], vals[1], vals[2], vals[3], vals[4],
			fmt.Sprintf("+%.1f%%", gap))
	}
	return []*stats.Table{t}, nil
}

// Utilization (experiment id "utilization") reports the mean number of
// disks each query draws from — the disk parallelism the paper's
// introduction sets out to maximize — side by side with the response time,
// for the Figure 6 lineup on DSMC.3d at 16 disks. High parallelism with a
// low response time is the goal; an algorithm can also reach high
// parallelism with poor balance (many disks active, one overloaded), which
// the response column exposes.
func (l *Lab) Utilization() ([]*stats.Table, error) {
	b, err := l.dataset("DSMC.3d")
	if err != nil {
		return nil, err
	}
	queries := l.queriesFor(b.grid.Domain, 0.05)
	const disks = 16
	t := stats.NewTable(
		"Disk utilization (extension) — DSMC.3d, r=0.05, 16 disks",
		"method", "mean active disks", "mean buckets/query", "mean response", "optimal")
	for _, alg := range core.Figure6Lineup(l.opts.Seed) {
		alloc, err := alg.Decluster(b.grid, disks)
		if err != nil {
			return nil, err
		}
		res, err := sim.Replay(b.file, alloc, b.indexByID, queries)
		if err != nil {
			return nil, err
		}
		t.AddRow(alg.Name(), res.MeanActiveDisks, res.MeanBuckets,
			res.MeanResponseTime, res.MeanOptimal)
	}
	return []*stats.Table{t}, nil
}

// Quadtree (experiment id "quadtree") repeats the structure-generality check
// on the second tree class the paper's introduction cites: a PR quadtree
// over hot.2d, leaves declustered by the region-based algorithms.
func (l *Lab) Quadtree() ([]*stats.Table, error) {
	b, err := l.dataset("hot.2d")
	if err != nil {
		return nil, err
	}
	tr, err := quadtree.New(quadtree.Config{
		Dims:         2,
		Domain:       b.ds.Domain,
		LeafCapacity: b.ds.BucketCapacity(),
	})
	if err != nil {
		return nil, err
	}
	for _, r := range b.ds.Records {
		if err := tr.Insert(r.Key); err != nil {
			return nil, err
		}
	}
	g := core.Grid{Sizes: ones(2), Domain: tr.Domain(), Buckets: tr.Leaves()}
	queries := l.queriesFor(tr.Domain(), 0.05)
	nn := sim.NearestCompanions(g, nil)

	algs := []core.Allocator{
		&core.CentroidCurve{},
		&core.SSP{Seed: l.opts.Seed},
		&core.Minimax{Seed: l.opts.Seed},
	}
	rt := stats.NewTable(
		fmt.Sprintf("Quadtree (extension) — declustering %d PR-quadtree leaves of hot.2d (r=0.05): mean response time", len(g.Buckets)),
		append([]string{"method"}, fmtDisks(l.opts.Disks)...)...)
	cp := stats.NewTable(
		"Quadtree (extension) — closest leaf pairs on the same disk",
		append([]string{"method"}, fmtDisks(l.opts.Disks)...)...)
	var optimal []float64
	for _, alg := range algs {
		rts := make([]float64, len(l.opts.Disks))
		opts := make([]float64, len(l.opts.Disks))
		pairs := make([]any, 0, len(l.opts.Disks)+1)
		pairs = append(pairs, alg.Name())
		for i, m := range l.opts.Disks {
			alloc, err := alg.Decluster(g, m)
			if err != nil {
				return nil, err
			}
			res, err := sim.ReplaySource(tr, alloc, tr.IndexByID(), queries)
			if err != nil {
				return nil, err
			}
			rts[i] = res.MeanResponseTime
			opts[i] = res.MeanOptimal
			pairs = append(pairs, sim.CountSameDisk(nn, alloc))
		}
		addSeriesRow(rt, alg.Name(), rts)
		cp.AddRow(pairs...)
		optimal = opts
	}
	addSeriesRow(rt, "optimal", optimal)
	return []*stats.Table{rt, cp}, nil
}

// AblationSeqIO (experiment id "ablation-seqio") toggles elevator
// scheduling in the disk model on the animation workload: worker batches
// arrive in ascending bucket-id order, so runs of consecutively-placed
// buckets are read at transfer speed instead of paying a seek each. The
// gap between the two rows bounds what physical placement policies could
// save on this workload.
func (l *Lab) AblationSeqIO() ([]*stats.Table, error) {
	b, err := l.dataset("DSMC.4d")
	if err != nil {
		return nil, err
	}
	const workers = 8
	alloc, err := (&core.Minimax{Seed: l.opts.Seed}).Decluster(b.grid, workers)
	if err != nil {
		return nil, err
	}
	steps := int(b.grid.Domain[0].Length())
	queries := workload.AnimationSweep(b.grid.Domain, 0.1, steps)

	t := stats.NewTable(
		"Ablation A6 — elevator scheduling on the animation workload (8 nodes, minimax)",
		"sequential reads", "blocks", "seq-served", "elapsed (s)")
	for _, seq := range []bool{false, true} {
		disk := diskmodel.DefaultParams()
		disk.BlockBytes = b.ds.PageBytes
		disk.SequentialReads = seq
		cost := parallel.DefaultCostModel()
		cost.RecordBytes = b.ds.RecordBytes
		eng, err := parallel.New(b.file, alloc, parallel.Config{
			Workers: workers, Disk: disk, Cost: cost,
		})
		if err != nil {
			return nil, err
		}
		tot, err := eng.Run(queries)
		if err != nil {
			eng.Close()
			return nil, err
		}
		seqServed := 0
		for _, st := range eng.DiskStats() {
			seqServed += st.SeqReads
		}
		eng.Close()
		t.AddRow(seq, tot.Blocks, seqServed, seconds(tot.Elapsed))
	}
	return []*stats.Table{t}, nil
}

// DirIO (experiment id "dirio") measures the directory-page I/O of the
// two-level (paged) grid directory — the coordinator-side cost the paper's
// SPMD design keeps on one node — across directory page sizes, on the
// stock.3d workload.
func (l *Lab) DirIO() ([]*stats.Table, error) {
	b, err := l.dataset("stock.3d")
	if err != nil {
		return nil, err
	}
	queries := l.queriesFor(b.grid.Domain, 0.05)
	t := stats.NewTable(
		"Directory paging (extension) — two-level directory page accesses per query, stock.3d (r=0.05)",
		"page size (cells)", "directory pages", "mean page accesses/query", "flat-scan equivalent")
	for _, pageCells := range []int{64, 256, 1024, 4096} {
		d, err := gridfile.NewTwoLevelDirectory(b.file, pageCells)
		if err != nil {
			return nil, err
		}
		d.ResetCounters()
		for _, q := range queries {
			d.BucketsInRange(b.file, q)
		}
		t.AddRow(pageCells, d.NumPages(),
			float64(d.PageAccesses)/float64(len(queries)),
			float64(b.file.NumCells())/float64(pageCells))
	}
	return []*stats.Table{t}, nil
}

// AblationRefine (experiment id "ablation-refine") measures how much a
// direct workload-driven local search can still improve on minimax: Refine
// hill-climbs on a training workload, and both allocations are evaluated on
// an independently drawn workload of the same distribution. A small
// generalization gain supports the paper's closing claim that minimax's
// distributions are already close to optimal.
func (l *Lab) AblationRefine() ([]*stats.Table, error) {
	b, err := l.dataset("hot.2d")
	if err != nil {
		return nil, err
	}
	train := squareQueries(b.grid.Domain, 0.05, l.opts.Queries, l.opts.Seed+400)
	eval := l.queriesFor(b.grid.Domain, 0.05) // independent draw

	base := &core.Minimax{Seed: l.opts.Seed}
	refined := &core.Refine{Base: base, Queries: train, Seed: l.opts.Seed}

	t := stats.NewTable(
		"Ablation A5 — workload-driven refinement of minimax on hot.2d (r=0.05, held-out workload)",
		append([]string{"method"}, fmtDisks(l.opts.Disks)...)...)
	var optimal []float64
	for _, alg := range []core.Allocator{base, refined} {
		rts, opts, err := l.meanResponseRow(b, alg, eval)
		if err != nil {
			return nil, err
		}
		addSeriesRow(t, alg.Name(), rts)
		optimal = opts
	}
	addSeriesRow(t, "optimal", optimal)
	return []*stats.Table{t}, nil
}

// TheoremKD (experiment id "thm1-kd") tabulates the d-dimensional extension
// of the DM analysis: exact response, optimal and saturation for 3-D and
// 4-D windows, the shapes of the paper's DSMC workloads.
func (l *Lab) TheoremKD() ([]*stats.Table, error) {
	t := stats.NewTable(
		"Theorem 1 extension — exact DM response for d-dimensional windows",
		"window", "disks", "DM response", "optimal", "saturated at")
	windows := [][]int{
		{4, 4, 4}, {6, 6, 6}, {3, 5, 7}, {2, 4, 4, 4},
	}
	for _, w := range windows {
		sat := saturationDisks(w)
		for _, m := range []int{4, 8, 16, 32, 64} {
			t.AddRow(fmt.Sprintf("%v", w), m,
				analyticKD(w, m), optimalKD(w, m), sat)
		}
	}
	return []*stats.Table{t}, nil
}
