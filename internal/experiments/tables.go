package experiments

import (
	"pgridfile/internal/core"
	"pgridfile/internal/sim"
	"pgridfile/internal/stats"
)

// Table1 reports the degree of data balance (B_max × M / B_sum) achieved by
// DM/D, FX/D and HCAM/D on hot.2d across the disk sweep.
func (l *Lab) Table1() ([]*stats.Table, error) {
	b, err := l.dataset("hot.2d")
	if err != nil {
		return nil, err
	}
	t := stats.NewTable(
		"Table 1 — degree of data balance on hot.2d (1.00 = perfect)",
		append([]string{"method"}, fmtDisks(l.opts.Disks)...)...)
	for _, alg := range core.Figure4Lineup(l.opts.Seed) {
		row := make([]float64, len(l.opts.Disks))
		for i, m := range l.opts.Disks {
			alloc, err := alg.Decluster(b.grid, m)
			if err != nil {
				return nil, err
			}
			row[i] = sim.DataBalanceDegree(alloc)
		}
		addSeriesRow(t, alg.Name(), row)
	}
	// MiniMax achieves the ⌈N/M⌉ bound by construction; include it as the
	// reference floor.
	mm := &core.Minimax{Seed: l.opts.Seed}
	row := make([]float64, len(l.opts.Disks))
	for i, m := range l.opts.Disks {
		alloc, err := mm.Decluster(b.grid, m)
		if err != nil {
			return nil, err
		}
		row[i] = sim.DataBalanceDegree(alloc)
	}
	addSeriesRow(t, mm.Name(), row)
	return []*stats.Table{t}, nil
}

// closestPairsTable builds Tables 2/3: the number of closest bucket pairs
// mapped to the same disk, per algorithm and disk count.
func (l *Lab) closestPairsTable(dataset, title string) ([]*stats.Table, error) {
	b, err := l.dataset(dataset)
	if err != nil {
		return nil, err
	}
	nn, ok := l.nnMemo[dataset]
	if !ok {
		nn = sim.NearestCompanions(b.grid, nil)
		l.nnMemo[dataset] = nn
	}
	t := stats.NewTable(title,
		append([]string{"method"}, fmtDisks(l.opts.Disks)...)...)
	for _, alg := range core.Figure6Lineup(l.opts.Seed) {
		cells := make([]any, 0, len(l.opts.Disks)+1)
		cells = append(cells, alg.Name())
		for _, m := range l.opts.Disks {
			alloc, err := alg.Decluster(b.grid, m)
			if err != nil {
				return nil, err
			}
			cells = append(cells, sim.CountSameDisk(nn, alloc))
		}
		t.AddRow(cells...)
	}
	return []*stats.Table{t}, nil
}

// Table2 is the closest-pairs table for DSMC.3d.
func (l *Lab) Table2() ([]*stats.Table, error) {
	return l.closestPairsTable("DSMC.3d",
		"Table 2 — closest pairs assigned to the same disk: DSMC.3d")
}

// Table3 is the closest-pairs table for stock.3d.
func (l *Lab) Table3() ([]*stats.Table, error) {
	return l.closestPairsTable("stock.3d",
		"Table 3 — closest pairs assigned to the same disk: stock.3d")
}

// AblationCurves (A1) swaps the Hilbert curve for Z-order and Gray-code
// linearizations inside curve allocation on hot.2d, isolating how much of
// HCAM's quality comes from the Hilbert curve's clustering.
func (l *Lab) AblationCurves() ([]*stats.Table, error) {
	b, err := l.dataset("hot.2d")
	if err != nil {
		return nil, err
	}
	queries := l.queriesFor(b.grid.Domain, 0.05)
	t := stats.NewTable(
		"Ablation A1 — linearization curve inside curve allocation, hot.2d (r=0.05)",
		append([]string{"method"}, fmtDisks(l.opts.Disks)...)...)
	var optimal []float64
	for _, scheme := range []string{"HCAM", "ZCAM", "GrayCAM"} {
		alg, err := core.NewIndexBased(scheme, "D", l.opts.Seed)
		if err != nil {
			return nil, err
		}
		rts, opts, err := l.meanResponseRow(b, alg, queries)
		if err != nil {
			return nil, err
		}
		addSeriesRow(t, alg.Name(), rts)
		optimal = opts
	}
	addSeriesRow(t, "optimal", optimal)
	return []*stats.Table{t}, nil
}

// AblationMinimaxVsMST (A2) contrasts minimax's round-robin min-of-max
// growth with MST's greedy min-of-min growth on DSMC.3d: response time and
// balance degree side by side.
func (l *Lab) AblationMinimaxVsMST() ([]*stats.Table, error) {
	b, err := l.dataset("DSMC.3d")
	if err != nil {
		return nil, err
	}
	queries := l.queriesFor(b.grid.Domain, 0.01)
	algs := []core.Allocator{
		&core.Minimax{Seed: l.opts.Seed},
		&core.MST{Seed: l.opts.Seed},
		&core.SSP{Seed: l.opts.Seed},
	}
	rt := stats.NewTable(
		"Ablation A2 — tree-growth policy on DSMC.3d (r=0.01): mean response time",
		append([]string{"method"}, fmtDisks(l.opts.Disks)...)...)
	bal := stats.NewTable(
		"Ablation A2 — tree-growth policy on DSMC.3d: degree of data balance",
		append([]string{"method"}, fmtDisks(l.opts.Disks)...)...)
	for _, alg := range algs {
		rts, _, err := l.meanResponseRow(b, alg, queries)
		if err != nil {
			return nil, err
		}
		addSeriesRow(rt, alg.Name(), rts)
		degs := make([]float64, len(l.opts.Disks))
		for i, m := range l.opts.Disks {
			alloc, err := alg.Decluster(b.grid, m)
			if err != nil {
				return nil, err
			}
			degs[i] = sim.DataBalanceDegree(alloc)
		}
		addSeriesRow(bal, alg.Name(), degs)
	}
	return []*stats.Table{rt, bal}, nil
}

// AblationEdgeWeight (A3) compares the proximity index against normalized
// Euclidean center distance as minimax's edge weight on stock.3d.
func (l *Lab) AblationEdgeWeight() ([]*stats.Table, error) {
	b, err := l.dataset("stock.3d")
	if err != nil {
		return nil, err
	}
	queries := l.queriesFor(b.grid.Domain, 0.01)
	nn, ok := l.nnMemo["stock.3d"]
	if !ok {
		nn = sim.NearestCompanions(b.grid, nil)
		l.nnMemo["stock.3d"] = nn
	}
	algs := []core.Allocator{
		&core.Minimax{Seed: l.opts.Seed},
		&core.Minimax{Weight: core.EuclideanWeight, WeightName: "euclid", Seed: l.opts.Seed},
	}
	rt := stats.NewTable(
		"Ablation A3 — minimax edge weight on stock.3d (r=0.01): mean response time",
		append([]string{"method"}, fmtDisks(l.opts.Disks)...)...)
	cp := stats.NewTable(
		"Ablation A3 — minimax edge weight on stock.3d: closest pairs on same disk",
		append([]string{"method"}, fmtDisks(l.opts.Disks)...)...)
	for _, alg := range algs {
		rts, _, err := l.meanResponseRow(b, alg, queries)
		if err != nil {
			return nil, err
		}
		addSeriesRow(rt, alg.Name(), rts)
		cells := make([]any, 0, len(l.opts.Disks)+1)
		cells = append(cells, alg.Name())
		for _, m := range l.opts.Disks {
			alloc, err := alg.Decluster(b.grid, m)
			if err != nil {
				return nil, err
			}
			cells = append(cells, sim.CountSameDisk(nn, alloc))
		}
		cp.AddRow(cells...)
	}
	return []*stats.Table{rt, cp}, nil
}
