package experiments

import (
	"fmt"

	"pgridfile/internal/analytic"
	"pgridfile/internal/core"
	"pgridfile/internal/stats"
)

// Thin wrappers keep extra.go free of a direct analytic import cycle risk
// and give the KD table short names.
func analyticKD(sides []int, m int) int { return analytic.DMResponseKD(sides, m) }
func optimalKD(sides []int, m int) int  { return analytic.OptimalResponseKD(sides, m) }

// saturationDisks returns the sum spread: the M beyond which DM's response
// for the window cannot improve.
func saturationDisks(sides []int) int {
	spread := 1
	for _, w := range sides {
		spread += w - 1
	}
	return spread
}

// Theorem1 tabulates disk modulo's closed-form response time against the
// brute-force enumeration and the optimal curve for an l×l query,
// demonstrating the saturation behaviour the theorem proves: beyond M = l
// the response time is pinned at l.
func (l *Lab) Theorem1() ([]*stats.Table, error) {
	// The paper's r=0.05 queries on the uniform 2-D grid span roughly
	// 22% of each axis; with a ~16-cell axis that is a 4-cell window.
	// Present several l values to show the threshold moving with query
	// size ("the position of the threshold depended on the size of the
	// query").
	var out []*stats.Table
	for _, side := range []int{4, 6, 10} {
		t := stats.NewTable(
			fmt.Sprintf("Theorem 1 — DM response time for a %dx%d query", side, side),
			"disks", "closed form", "brute force", "optimal ceil(l^2/M)", "strictly optimal")
		for m := 2; m <= 3*side; m += 2 {
			t.AddRow(m,
				analytic.DMResponse(side, m),
				analytic.DMBruteForce(side, m),
				analytic.OptimalResponse(side, m),
				analytic.DMStrictlyOptimal(side, m))
		}
		out = append(out, t)
	}
	thr := stats.NewTable(
		"Theorem 1 — DM saturation threshold by query side",
		"query side l", "saturation threshold M*", "saturated response")
	for side := 2; side <= 16; side += 2 {
		m := analytic.DMSaturationThreshold(side)
		thr.AddRow(side, m, analytic.DMResponse(side, m))
	}
	out = append(out, thr)
	return out, nil
}

// HCAMScaling (experiment id "hcam-scaling") is the empirical counterpart
// of the analysis the paper reports as open: HCAM's expected response time
// on complete Cartesian grids as the number of disks grows, side by side
// with DM's and FX's closed-form/measured curves and the optimal. Two
// window sides are used — a power of two (FX's best case) and a prime.
func (l *Lab) HCAMScaling() ([]*stats.Table, error) {
	const gridSize = 64
	var out []*stats.Table
	for _, side := range []int{8, 13} {
		t := stats.NewTable(
			fmt.Sprintf("HCAM scaling (open analysis) — expected response, %dx%d windows on a %dx%d Cartesian grid",
				side, side, gridSize, gridSize),
			"disks", "DM", "FX", "HCAM", "optimal")
		for _, m := range []int{2, 4, 8, 16, 32, 64} {
			dm := float64(analytic.DMResponse(side, m))
			fx := analytic.WindowExpectedResponse(
				core.FX{}.CellDisks([]int{gridSize, gridSize}, m), gridSize, side, m)
			hcam := analytic.WindowExpectedResponse(
				core.HCAM().CellDisks([]int{gridSize, gridSize}, m), gridSize, side, m)
			t.AddRow(m, dm, fx, hcam, float64(side*side)/float64(m))
		}
		out = append(out, t)
	}
	return out, nil
}

// Theorem2 tabulates fieldwise xor's measured expected response time against
// the theorem's bounds for 2^m × 2^m queries over 2^n disks, including the
// 3/4 scaling floor of part (iii).
func (l *Lab) Theorem2() ([]*stats.Table, error) {
	t := stats.NewTable(
		"Theorem 2 — FX expected response time vs bounds (2^m x 2^m query, M=2^n)",
		"m (query 2^m)", "n (disks 2^n)", "measured", "lower 2^(2m-n)", "upper 2^m", "ratio to prev n")
	for _, m := range []int{2, 3} {
		side := 1 << m
		prev := -1.0
		for n := 0; n <= m+3; n++ {
			disks := 1 << n
			grid := 4 * side * disks
			if grid > 256 {
				grid = 256
			}
			got := analytic.FXExpectedResponse(side, disks, grid)
			lo, hi := analytic.FXBounds(m, n)
			ratio := 0.0
			if prev > 0 {
				ratio = got / prev
			}
			t.AddRow(m, n, got, lo, hi, ratio)
			prev = got
		}
	}
	return []*stats.Table{t}, nil
}
