package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"pgridfile/internal/core"
	"pgridfile/internal/geom"
	"pgridfile/internal/sim"
	"pgridfile/internal/stats"
	"pgridfile/internal/workload"
)

// squareQueries wraps the workload generator (kept here so every experiment
// builds queries identically).
func squareQueries(dom geom.Rect, r float64, n int, seed int64) []geom.Rect {
	return workload.SquareRange(dom, r, n, seed)
}

// meanResponseRow replays the workload for one allocator across all disk
// counts and returns the mean response times (and, once, the optimal curve).
// The disk counts are independent, so each (decluster, replay) pair runs in
// its own goroutine. Declustering — the dominant cost for the O(N²)
// algorithms — parallelizes freely (allocators only read the Grid); the
// replay serializes on a mutex because the grid file's range search shares
// scratch state. Results are deterministic and identical to a serial sweep.
func (l *Lab) meanResponseRow(b *built, alg core.Allocator, queries []geom.Rect) ([]float64, []float64, error) {
	n := len(l.opts.Disks)
	rts := make([]float64, n)
	opts := make([]float64, n)
	errs := make([]error, n)
	var fileMu sync.Mutex

	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, m := range l.opts.Disks {
		wg.Add(1)
		go func(i, m int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			alloc, err := alg.Decluster(b.grid, m)
			if err != nil {
				errs[i] = fmt.Errorf("%s on %s, M=%d: %w", alg.Name(), b.ds.Name, m, err)
				return
			}
			fileMu.Lock()
			res, err := sim.Replay(b.file, alloc, b.indexByID, queries)
			fileMu.Unlock()
			if err != nil {
				errs[i] = err
				return
			}
			rts[i] = res.MeanResponseTime
			opts[i] = res.MeanOptimal
		}(i, m)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	return rts, opts, nil
}

// addSeriesRow appends a labelled series of float values to a table.
func addSeriesRow(t *stats.Table, label string, series []float64) {
	cells := make([]any, 0, len(series)+1)
	cells = append(cells, label)
	for _, v := range series {
		cells = append(cells, v)
	}
	t.AddRow(cells...)
}

// Figure2 reports the structure of the three 2-D sample grid files: total
// subspaces, buckets and how many buckets consist of merged subspaces
// (the paper's Figure 2 shows the grids; the quoted statistics are the
// reproducible content).
func (l *Lab) Figure2() ([]*stats.Table, error) {
	t := stats.NewTable(
		"Figure 2 — sample grid files (structure statistics)",
		"dataset", "records", "subspaces", "buckets", "merged buckets", "grid")
	for _, name := range []string{"uniform.2d", "hot.2d", "correl.2d"} {
		b, err := l.dataset(name)
		if err != nil {
			return nil, err
		}
		st := b.file.Stats()
		t.AddRow(name, st.Records, st.Cells, st.Buckets, st.MergedBuckets,
			fmt.Sprintf("%v", st.CellsPerDim))
	}
	return []*stats.Table{t}, nil
}

// Figure3 compares the four conflict-resolution heuristics on hot.2d with
// r = 0.05, for HCAM (insensitive to the heuristic) and FX (the most
// sensitive scheme), as in the paper's two panels.
func (l *Lab) Figure3() ([]*stats.Table, error) {
	b, err := l.dataset("hot.2d")
	if err != nil {
		return nil, err
	}
	queries := l.queriesFor(b.grid.Domain, 0.05)

	var out []*stats.Table
	for _, scheme := range []string{"HCAM", "FX"} {
		t := stats.NewTable(
			fmt.Sprintf("Figure 3 — conflict resolution for %s on hot.2d (r=0.05, mean response time in buckets)", scheme),
			append([]string{"heuristic"}, fmtDisks(l.opts.Disks)...)...)
		lineup, err := core.ResolverLineup(scheme, l.opts.Seed)
		if err != nil {
			return nil, err
		}
		var optimal []float64
		for _, alg := range lineup {
			rts, opts, err := l.meanResponseRow(b, alg, queries)
			if err != nil {
				return nil, err
			}
			addSeriesRow(t, alg.Name(), rts)
			optimal = opts
		}
		addSeriesRow(t, "optimal", optimal)
		out = append(out, t)
	}
	return out, nil
}

// Figure4 compares DM/D, FX/D and HCAM/D against the optimal response time
// on the three 2-D datasets with r = 0.05.
func (l *Lab) Figure4() ([]*stats.Table, error) {
	var out []*stats.Table
	for _, name := range []string{"uniform.2d", "hot.2d", "correl.2d"} {
		b, err := l.dataset(name)
		if err != nil {
			return nil, err
		}
		queries := l.queriesFor(b.grid.Domain, 0.05)
		t := stats.NewTable(
			fmt.Sprintf("Figure 4 — declustering algorithms on %s (r=0.05, mean response time in buckets)", name),
			append([]string{"method"}, fmtDisks(l.opts.Disks)...)...)
		var optimal []float64
		for _, alg := range core.Figure4Lineup(l.opts.Seed) {
			rts, opts, err := l.meanResponseRow(b, alg, queries)
			if err != nil {
				return nil, err
			}
			addSeriesRow(t, alg.Name(), rts)
			optimal = opts
		}
		addSeriesRow(t, "optimal", optimal)
		out = append(out, t)
	}
	return out, nil
}

// Figure5 summarizes the spatial distribution of the two 3-D datasets: a
// histogram of particle population per coarse spatial slab for DSMC.3d, and
// the per-stock price-band structure for stock.3d.
func (l *Lab) Figure5() ([]*stats.Table, error) {
	dsmc, err := l.dataset("DSMC.3d")
	if err != nil {
		return nil, err
	}
	t1 := stats.NewTable(
		"Figure 5 (left) — DSMC.3d particle population per x-slab (16 slabs)",
		"slab", "x-range", "particles", "bar")
	xs := make([]float64, 0, len(dsmc.ds.Records))
	for _, r := range dsmc.ds.Records {
		xs = append(xs, r.Key[0])
	}
	h := stats.NewHistogram(xs, dsmc.grid.Domain[0].Lo, dsmc.grid.Domain[0].Hi, 16)
	maxC := 0
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	step := (h.Hi - h.Lo) / 16
	for i, c := range h.Counts {
		bar := ""
		if maxC > 0 {
			for k := 0; k < c*40/maxC; k++ {
				bar += "#"
			}
		}
		t1.AddRow(i, fmt.Sprintf("[%.0f,%.0f)", h.Lo+float64(i)*step, h.Lo+float64(i+1)*step), c, bar)
	}

	stock, err := l.dataset("stock.3d")
	if err != nil {
		return nil, err
	}
	t2 := stats.NewTable(
		"Figure 5 (right) — stock.3d id×price structure (sampled stocks)",
		"stock id", "min price", "max price", "band width", "global price range")
	// Sample every 48th stock to keep the table small while showing that
	// each stock occupies a narrow band of the global price range.
	perStock := map[int][2]float64{}
	globalLo, globalHi := stock.grid.Domain[1].Hi, stock.grid.Domain[1].Lo
	for _, r := range stock.ds.Records {
		id := int(r.Key[0])
		p := r.Key[1]
		band, ok := perStock[id]
		if !ok {
			band = [2]float64{p, p}
		}
		if p < band[0] {
			band[0] = p
		}
		if p > band[1] {
			band[1] = p
		}
		perStock[id] = band
		if p < globalLo {
			globalLo = p
		}
		if p > globalHi {
			globalHi = p
		}
	}
	for id := 0; id < len(perStock); id += 48 {
		band, ok := perStock[id]
		if !ok {
			continue
		}
		t2.AddRow(id, band[0], band[1], band[1]-band[0],
			fmt.Sprintf("[%.1f,%.1f]", globalLo, globalHi))
	}
	return []*stats.Table{t1, t2}, nil
}

// Figure6 compares all five algorithms (DM/D, FX/D, HCAM/D, SSP, MiniMax)
// on hot.2d, DSMC.3d and stock.3d with r = 0.01.
func (l *Lab) Figure6() ([]*stats.Table, error) {
	var out []*stats.Table
	for _, name := range []string{"hot.2d", "DSMC.3d", "stock.3d"} {
		b, err := l.dataset(name)
		if err != nil {
			return nil, err
		}
		queries := l.queriesFor(b.grid.Domain, 0.01)
		t := stats.NewTable(
			fmt.Sprintf("Figure 6 — all algorithms on %s (r=0.01, mean response time in buckets)", name),
			append([]string{"method"}, fmtDisks(l.opts.Disks)...)...)
		var optimal []float64
		for _, alg := range core.Figure6Lineup(l.opts.Seed) {
			rts, opts, err := l.meanResponseRow(b, alg, queries)
			if err != nil {
				return nil, err
			}
			addSeriesRow(t, alg.Name(), rts)
			optimal = opts
		}
		addSeriesRow(t, "optimal", optimal)
		out = append(out, t)
	}
	return out, nil
}

// Figure7 shows the effect of query size on stock.3d: response time and
// speedup (normalized to four disks) for HCAM/D and MiniMax across
// r ∈ {0.01, 0.05, 0.1}.
func (l *Lab) Figure7() ([]*stats.Table, error) {
	b, err := l.dataset("stock.3d")
	if err != nil {
		return nil, err
	}
	hcam, err := core.NewIndexBased("HCAM", "D", l.opts.Seed)
	if err != nil {
		return nil, err
	}
	algs := []core.Allocator{hcam, &core.Minimax{Seed: l.opts.Seed}}

	rt := stats.NewTable(
		"Figure 7 (left) — response time vs query size on stock.3d",
		append([]string{"method, r"}, fmtDisks(l.opts.Disks)...)...)
	sp := stats.NewTable(
		"Figure 7 (right) — speedup over 4 disks vs query size on stock.3d",
		append([]string{"method, r"}, fmtDisks(l.opts.Disks)...)...)

	for _, r := range []float64{0.01, 0.05, 0.1} {
		queries := l.queriesFor(b.grid.Domain, r)
		for _, alg := range algs {
			rts, _, err := l.meanResponseRow(b, alg, queries)
			if err != nil {
				return nil, err
			}
			label := fmt.Sprintf("%s, r=%.2f", alg.Name(), r)
			addSeriesRow(rt, label, rts)
			base := rts[0]
			speedups := make([]float64, len(rts))
			for i, v := range rts {
				speedups[i] = sim.Speedup(base, v)
			}
			addSeriesRow(sp, label, speedups)
		}
	}
	return []*stats.Table{rt, sp}, nil
}
