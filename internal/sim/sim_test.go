package sim

import (
	"math"
	"testing"

	"pgridfile/internal/core"
	"pgridfile/internal/geom"
	"pgridfile/internal/gridfile"
	"pgridfile/internal/synth"
	"pgridfile/internal/workload"
)

func buildHot(t *testing.T) (*gridfile.File, core.Grid) {
	t.Helper()
	f, err := synth.Hotspot2D(3000, 5).Build()
	if err != nil {
		t.Fatal(err)
	}
	return f, core.FromGridFile(f)
}

func TestReplayBasics(t *testing.T) {
	f, g := buildHot(t)
	alloc, err := (&core.Minimax{Seed: 1}).Decluster(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	queries := workload.SquareRange(f.Domain(), 0.05, 200, 7)
	res, err := Replay(f, alloc, f.IndexByID(), queries)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries != 200 {
		t.Errorf("Queries = %d", res.Queries)
	}
	if res.MeanResponseTime < res.MeanOptimal {
		t.Errorf("response time %.3f below optimal %.3f", res.MeanResponseTime, res.MeanOptimal)
	}
	if res.MeanResponseTime > res.MeanBuckets {
		t.Errorf("response time %.3f above total buckets %.3f", res.MeanResponseTime, res.MeanBuckets)
	}
	if res.MeanBuckets <= 0 {
		t.Error("no buckets accessed")
	}
	if res.MaxResponseTime < int(math.Ceil(res.MeanResponseTime)) {
		t.Error("max below mean")
	}
}

func TestReplaySingleDiskEqualsBucketCount(t *testing.T) {
	f, g := buildHot(t)
	alloc, err := (&core.Minimax{Seed: 1}).Decluster(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	queries := workload.SquareRange(f.Domain(), 0.05, 50, 9)
	res, err := Replay(f, alloc, f.IndexByID(), queries)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanResponseTime != res.MeanBuckets {
		t.Errorf("1 disk: response %.3f != buckets %.3f", res.MeanResponseTime, res.MeanBuckets)
	}
	if res.MeanOptimal != res.MeanBuckets {
		t.Errorf("1 disk: optimal %.3f != buckets %.3f", res.MeanOptimal, res.MeanBuckets)
	}
}

func TestReplayEmptyWorkloadErrors(t *testing.T) {
	f, g := buildHot(t)
	alloc, _ := (&core.Minimax{Seed: 1}).Decluster(g, 4)
	if _, err := Replay(f, alloc, f.IndexByID(), nil); err == nil {
		t.Error("empty workload accepted")
	}
}

func TestMoreDisksNeverHurtMinimax(t *testing.T) {
	f, g := buildHot(t)
	queries := workload.SquareRange(f.Domain(), 0.05, 300, 11)
	prev := math.Inf(1)
	for _, m := range []int{4, 8, 16, 32} {
		alloc, err := (&core.Minimax{Seed: 1}).Decluster(g, m)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Replay(f, alloc, f.IndexByID(), queries)
		if err != nil {
			t.Fatal(err)
		}
		// Allow a little noise but the trend must be non-increasing.
		if res.MeanResponseTime > prev*1.05 {
			t.Errorf("m=%d: response %.3f noticeably above previous %.3f", m, res.MeanResponseTime, prev)
		}
		prev = res.MeanResponseTime
	}
}

func TestDataBalanceDegree(t *testing.T) {
	perfect := core.Allocation{Disks: 4, Assign: []int{0, 1, 2, 3, 0, 1, 2, 3}}
	if got := DataBalanceDegree(perfect); got != 1 {
		t.Errorf("perfect balance degree = %v, want 1", got)
	}
	skewed := core.Allocation{Disks: 4, Assign: []int{0, 0, 0, 0, 0, 0, 1, 2}}
	// loads 6,1,1,0: Bmax*M/Bsum = 6*4/8 = 3.
	if got := DataBalanceDegree(skewed); got != 3 {
		t.Errorf("skewed balance degree = %v, want 3", got)
	}
	if got := DataBalanceDegree(core.Allocation{Disks: 2}); got != 0 {
		t.Errorf("empty allocation degree = %v, want 0", got)
	}
}

func TestClosestPairsSameDisk(t *testing.T) {
	// 1-D line of 8 cells: closest companion of each cell is a neighbour.
	dom := geom.NewRect([]float64{0}, []float64{8})
	c, err := gridfile.NewCartesian([]int{8}, dom)
	if err != nil {
		t.Fatal(err)
	}
	g := core.FromCartesian(c)
	// Round-robin over 2 disks: neighbours always on different disks.
	rr := core.Allocation{Disks: 2, Assign: []int{0, 1, 0, 1, 0, 1, 0, 1}}
	if got := ClosestPairsSameDisk(g, rr, nil); got != 0 {
		t.Errorf("round-robin closest pairs = %d, want 0", got)
	}
	// Blocked: first half disk 0, second half disk 1 -> every bucket's
	// neighbour shares the disk except at the boundary.
	blocked := core.Allocation{Disks: 2, Assign: []int{0, 0, 0, 0, 1, 1, 1, 1}}
	got := ClosestPairsSameDisk(g, blocked, nil)
	if got < 6 {
		t.Errorf("blocked closest pairs = %d, want >= 6", got)
	}
}

func TestMinimaxBeatsBlockedOnClosestPairs(t *testing.T) {
	_, g := buildHot(t)
	alloc, err := (&core.Minimax{Seed: 1}).Decluster(g, 16)
	if err != nil {
		t.Fatal(err)
	}
	mm := ClosestPairsSameDisk(g, alloc, nil)
	// Paper: minimax keeps this near zero even for hundreds of buckets.
	if mm > len(g.Buckets)/20 {
		t.Errorf("minimax closest pairs %d of %d buckets", mm, len(g.Buckets))
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(100, 25); got != 4 {
		t.Errorf("Speedup = %v", got)
	}
	if got := Speedup(100, 0); got != 0 {
		t.Errorf("Speedup by zero = %v", got)
	}
}

func TestPercentiles(t *testing.T) {
	f, g := buildHot(t)
	alloc, err := (&core.Minimax{Seed: 1}).Decluster(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	queries := workload.SquareRange(f.Domain(), 0.05, 200, 7)
	res, err := Replay(f, alloc, f.IndexByID(), queries)
	if err != nil {
		t.Fatal(err)
	}
	p50 := res.Percentile(50)
	p95 := res.Percentile(95)
	p100 := res.Percentile(100)
	if p50 > p95 || p95 > p100 {
		t.Errorf("percentiles not monotone: p50=%d p95=%d p100=%d", p50, p95, p100)
	}
	if p100 != res.MaxResponseTime {
		t.Errorf("p100 = %d, max = %d", p100, res.MaxResponseTime)
	}
	if float64(p50) > res.MeanBuckets+1 && res.MeanBuckets > 0 {
		t.Errorf("median %d implausible vs mean buckets %.2f", p50, res.MeanBuckets)
	}
	// Degenerate arguments.
	if res.Percentile(0) != 0 {
		t.Error("p0 should be 0")
	}
	if res.Percentile(150) != res.MaxResponseTime {
		t.Error("p>100 should clamp to the max")
	}
	if (Result{}).Percentile(50) != 0 {
		t.Error("empty result percentile nonzero")
	}
}

func TestTailIsWorseForUnbalancedAllocations(t *testing.T) {
	f, g := buildHot(t)
	queries := workload.SquareRange(f.Domain(), 0.05, 300, 13)
	mm, err := (&core.Minimax{Seed: 1}).Decluster(g, 16)
	if err != nil {
		t.Fatal(err)
	}
	mst, err := (&core.MST{Seed: 1}).Decluster(g, 16)
	if err != nil {
		t.Fatal(err)
	}
	rMM, err := Replay(f, mm, f.IndexByID(), queries)
	if err != nil {
		t.Fatal(err)
	}
	rMST, err := Replay(f, mst, f.IndexByID(), queries)
	if err != nil {
		t.Fatal(err)
	}
	if rMST.Percentile(95) < rMM.Percentile(95) {
		t.Errorf("MST p95 %d below minimax p95 %d despite unbalanced partitions",
			rMST.Percentile(95), rMM.Percentile(95))
	}
}

func TestMeanActiveDisks(t *testing.T) {
	f, g := buildHot(t)
	queries := workload.SquareRange(f.Domain(), 0.05, 200, 7)
	for _, m := range []int{4, 16} {
		mm, err := (&core.Minimax{Seed: 1}).Decluster(g, m)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Replay(f, mm, f.IndexByID(), queries)
		if err != nil {
			t.Fatal(err)
		}
		if res.MeanActiveDisks <= 0 {
			t.Fatalf("m=%d: MeanActiveDisks = %v", m, res.MeanActiveDisks)
		}
		if res.MeanActiveDisks > float64(m)+1e-9 {
			t.Fatalf("m=%d: MeanActiveDisks %v above disk count", m, res.MeanActiveDisks)
		}
		if res.MeanActiveDisks > res.MeanBuckets+1e-9 {
			t.Fatalf("m=%d: MeanActiveDisks %v above MeanBuckets %v",
				m, res.MeanActiveDisks, res.MeanBuckets)
		}
		// Parallelism x response >= total work (max >= mean per disk).
		if res.MeanActiveDisks*res.MeanResponseTime < res.MeanBuckets-1e-9 {
			t.Fatalf("m=%d: active %.2f x response %.2f below buckets %.2f",
				m, res.MeanActiveDisks, res.MeanResponseTime, res.MeanBuckets)
		}
	}
	// Minimax spreads better than a degenerate one-disk pile.
	pile := core.Allocation{Disks: 16, Assign: make([]int, len(g.Buckets))}
	res, err := Replay(f, pile, f.IndexByID(), queries)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanActiveDisks != 1 {
		t.Errorf("all-on-one-disk MeanActiveDisks = %v, want 1", res.MeanActiveDisks)
	}
}

// serialNearestCompanions is the pre-engine reference scan, kept in the test
// to pin NearestCompanions' parallel output against.
func serialNearestCompanions(g core.Grid, w core.Weight) []int {
	if w == nil {
		w = core.ProximityWeight
	}
	n := len(g.Buckets)
	nn := make([]int, n)
	for i := 0; i < n; i++ {
		best, bestVal := -1, -1.0
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			if v := w(g.Buckets[i], g.Buckets[j], g.Domain); v > bestVal {
				best, bestVal = j, v
			}
		}
		nn[i] = best
	}
	return nn
}

// TestNearestCompanionsParallelMatchesSerial is the regression test for the
// engine-backed NearestCompanions: on the paper's uniform.2d and hot.2d
// grids, every worker count must reproduce the serial reference exactly.
func TestNearestCompanionsParallelMatchesSerial(t *testing.T) {
	datasets := map[string]*synth.Dataset{
		"uniform.2d": synth.Uniform2D(3000, 5),
		"hot.2d":     synth.Hotspot2D(3000, 5),
	}
	for name, ds := range datasets {
		f, err := ds.Build()
		if err != nil {
			t.Fatal(err)
		}
		g := core.FromGridFile(f)
		for _, w := range []core.Weight{nil, core.EuclideanWeight} {
			want := serialNearestCompanions(g, w)
			for _, workers := range []int{0, 1, 2, 8} {
				got := NearestCompanionsWorkers(g, w, workers)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s workers=%d: companion[%d] = %d, want %d",
							name, workers, i, got[i], want[i])
					}
				}
			}
		}
	}
}
