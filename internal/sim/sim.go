// Package sim implements the paper's declustering simulator (Section 2.2):
// it replays range-query workloads against a declustered grid file and
// reports the paper's metrics. The simulator's assumptions follow the paper:
// raw disk I/O (no caching), no temporal locality, and identical bucket read
// time on every disk — so the response time of a query is simply the largest
// number of buckets any one disk must fetch.
package sim

import (
	"fmt"
	"sort"

	"pgridfile/internal/core"
	"pgridfile/internal/geom"
	"pgridfile/internal/gridfile"
)

// Result aggregates a workload replay.
type Result struct {
	// Queries is the number of queries replayed.
	Queries int
	// MeanResponseTime is the average over queries of max_i N_i(q), the
	// paper's primary metric (in bucket fetches).
	MeanResponseTime float64
	// MeanOptimal is the average of N(q)/M: the paper's "optimal response
	// time" reference curve (not necessarily achievable).
	MeanOptimal float64
	// MeanBuckets is the average number of distinct buckets per query.
	MeanBuckets float64
	// MaxResponseTime is the worst single-query response time observed.
	MaxResponseTime int
	// TotalBuckets is the total number of bucket fetches.
	TotalBuckets int
	// MeanActiveDisks is the average number of disks a query draws from —
	// the "disk parallelism" declustering maximizes. Its ceiling is
	// min(disks, MeanBuckets).
	MeanActiveDisks float64
	// perQuery records each query's response time for the distribution
	// accessors; kept unexported to keep Result comparable by its summary
	// fields in tests.
	perQuery []int
}

// Percentile returns the p-th percentile (0 < p <= 100) of the per-query
// response-time distribution, using nearest-rank. Mean response time hides
// tail behaviour — a declustering can look fine on average while a few
// queries hammer one disk — so experiments that care about worst-case
// latency should report P95/P99 too.
func (r Result) Percentile(p float64) int {
	if len(r.perQuery) == 0 || p <= 0 {
		return 0
	}
	if p > 100 {
		p = 100
	}
	sorted := append([]int(nil), r.perQuery...)
	sort.Ints(sorted)
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Source is anything that can answer "which buckets must a range query
// fetch" — a grid file, a Cartesian product file wrapper, or an R-tree.
// The returned ids must be translatable by the indexByID table passed to
// ReplaySource.
type Source interface {
	BucketsInRange(q geom.Rect) []int32
}

// Replay runs the workload against the file under the given allocation and
// returns the aggregate metrics. indexByID translates stable bucket ids into
// the dense indices the allocation uses (see gridfile.File.IndexByID).
func Replay(f *gridfile.File, alloc core.Allocation, indexByID []int, queries []geom.Rect) (Result, error) {
	return ReplaySource(f, alloc, indexByID, queries)
}

// ReplaySource is Replay generalized over any Source.
func ReplaySource(src Source, alloc core.Allocation, indexByID []int, queries []geom.Rect) (Result, error) {
	if len(queries) == 0 {
		return Result{}, fmt.Errorf("sim: empty workload")
	}
	perDisk := make([]int, alloc.Disks)
	var res Result
	res.Queries = len(queries)
	for _, q := range queries {
		ids := src.BucketsInRange(q)
		for i := range perDisk {
			perDisk[i] = 0
		}
		for _, id := range ids {
			dense := indexByID[id]
			if dense < 0 || dense >= len(alloc.Assign) {
				return Result{}, fmt.Errorf("sim: bucket id %d has no allocation", id)
			}
			perDisk[alloc.Assign[dense]]++
		}
		rt := 0
		active := 0
		for _, n := range perDisk {
			if n > rt {
				rt = n
			}
			if n > 0 {
				active++
			}
		}
		res.MeanActiveDisks += float64(active)
		res.MeanResponseTime += float64(rt)
		res.MeanOptimal += float64(len(ids)) / float64(alloc.Disks)
		res.MeanBuckets += float64(len(ids))
		res.TotalBuckets += len(ids)
		res.perQuery = append(res.perQuery, rt)
		if rt > res.MaxResponseTime {
			res.MaxResponseTime = rt
		}
	}
	n := float64(len(queries))
	res.MeanResponseTime /= n
	res.MeanOptimal /= n
	res.MeanBuckets /= n
	res.MeanActiveDisks /= n
	return res, nil
}

// DataBalanceDegree is the paper's secondary metric: B_max × M / B_sum,
// where B(i) is the number of buckets on disk i. Its minimum (perfect
// balance) is 1.0; larger values mean more skew.
func DataBalanceDegree(alloc core.Allocation) float64 {
	loads := alloc.DiskLoads()
	sum, max := 0, 0
	for _, l := range loads {
		sum += l
		if l > max {
			max = l
		}
	}
	if sum == 0 {
		return 0
	}
	return float64(max) * float64(alloc.Disks) / float64(sum)
}

// NearestCompanions returns, for every bucket, the index of its closest
// companion: the bucket with the highest edge weight (ties broken by lower
// index), or -1 for a single-bucket grid. Cost is O(N²) weight evaluations;
// the result is allocation-independent, so Tables 2 and 3 compute it once
// per dataset and reuse it across disk counts and algorithms. Built-in
// weights run on core's pairwise-weight engine at GOMAXPROCS workers; use
// NearestCompanionsWorkers to bound the parallelism.
func NearestCompanions(g core.Grid, w core.Weight) []int {
	return NearestCompanionsWorkers(g, w, 0)
}

// NearestCompanionsWorkers is NearestCompanions with an explicit worker
// bound (0 or negative means GOMAXPROCS, 1 forces the single-threaded
// sweep). The result is identical for every worker count: rows are
// independent and each row's arg-max matches the serial scan's tie-breaking.
// Custom weights take the serial reference loop regardless of workers.
func NearestCompanionsWorkers(g core.Grid, w core.Weight, workers int) []int {
	if e := core.NewPairEngine(g, w, workers); e != nil {
		defer e.Close()
		return e.NearestCompanions()
	}
	if w == nil {
		w = core.ProximityWeight
	}
	n := len(g.Buckets)
	nn := make([]int, n)
	for i := 0; i < n; i++ {
		best, bestVal := -1, -1.0
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			if v := w(g.Buckets[i], g.Buckets[j], g.Domain); v > bestVal {
				best, bestVal = j, v
			}
		}
		nn[i] = best
	}
	return nn
}

// CountSameDisk counts buckets co-located with their nearest companion.
func CountSameDisk(nn []int, alloc core.Allocation) int {
	count := 0
	for i, j := range nn {
		if j >= 0 && alloc.Assign[i] == alloc.Assign[j] {
			count++
		}
	}
	return count
}

// ClosestPairsSameDisk counts the buckets whose closest companion — the
// bucket with the highest edge weight, ties broken by lower index — shares
// their disk (Tables 2 and 3). Cost is O(N²) weight evaluations; use
// NearestCompanions + CountSameDisk to amortize over many allocations.
func ClosestPairsSameDisk(g core.Grid, alloc core.Allocation, w core.Weight) int {
	return CountSameDisk(NearestCompanions(g, w), alloc)
}

// Speedup returns base/rt: how much faster a configuration answers the
// workload than the reference configuration (the paper normalizes to the
// 4-disk response time in Figure 7).
func Speedup(base, rt float64) float64 {
	if rt == 0 {
		return 0
	}
	return base / rt
}
