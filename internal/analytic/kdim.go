package analytic

import "fmt"

// DMResponseKD computes disk modulo's exact response time for an arbitrary
// d-dimensional w1×...×wd window over m disks, extending the 2-D analysis
// of Theorem 1. DM's response is position independent: a window's multiset
// of coordinate sums is the convolution of uniform distributions over
// [0..w_i-1], shifted by the window origin — and shifting rotates residues
// without changing the maximum. The response is the largest total count over
// the m residue classes.
//
// Cost is O(Σw · Πw / max w) for the convolution — effectively linear in the
// window volume, but evaluated once per (sides, m), not per query.
func DMResponseKD(sides []int, m int) int {
	if len(sides) == 0 {
		panic("analytic: DMResponseKD with no dimensions")
	}
	if m < 1 {
		panic(fmt.Sprintf("analytic: DMResponseKD with %d disks", m))
	}
	for _, w := range sides {
		if w < 1 {
			panic(fmt.Sprintf("analytic: window side %d", w))
		}
	}
	// counts[s] = number of cells with coordinate sum s.
	counts := []int64{1}
	for _, w := range sides {
		next := make([]int64, len(counts)+w-1)
		for s, c := range counts {
			if c == 0 {
				continue
			}
			for j := 0; j < w; j++ {
				next[s+j] += c
			}
		}
		counts = next
	}
	perDisk := make([]int64, m)
	for s, c := range counts {
		perDisk[s%m] += c
	}
	var max int64
	for _, c := range perDisk {
		if c > max {
			max = c
		}
	}
	return int(max)
}

// OptimalResponseKD returns ⌈Πw / M⌉, the ideal response for a window of the
// given sides.
func OptimalResponseKD(sides []int, m int) int {
	vol := 1
	for _, w := range sides {
		vol *= w
	}
	return CeilDiv(vol, m)
}

// DMSaturationKD returns DM's asymptotic (large-M) response for a window:
// the size of the largest constant-sum "anti-diagonal slice". Once M exceeds
// the window's sum spread (Σ(w_i−1)+1), every sum class is its own disk and
// adding disks stops helping — the d-dimensional generalization of
// Theorem 1's R = l regime.
func DMSaturationKD(sides []int) int {
	spread := 1
	for _, w := range sides {
		spread += w - 1
	}
	return DMResponseKD(sides, spread)
}
