// Package analytic implements the paper's analytic study of DM and FX on
// Cartesian product files (Section 2.3): the closed-form response time and
// strict-optimality condition of Theorem 1 for disk modulo, the bounds of
// Theorem 2 for fieldwise xor, and brute-force evaluators used to
// cross-validate the theorems and to plot the saturation behaviour.
//
// Throughout, queries are 2-D l×l square windows in cell units on a complete
// Cartesian grid, and M is the number of disks.
package analytic

import (
	"fmt"
	"math"
)

// CeilDiv returns ⌈a/b⌉ for positive b.
func CeilDiv(a, b int) int { return (a + b - 1) / b }

// OptimalResponse returns the ideal response time ⌈l²/M⌉ of an l×l query
// over M disks: every disk fetches an equal share of the l² buckets.
func OptimalResponse(l, m int) int { return CeilDiv(l*l, m) }

// DMTheorem1Condition is the paper's strict-optimality predicate for disk
// modulo on l×l queries (Theorem 1(i)):
//
//	M ≤ l ∧ (β = 0 ∨ β > M(1 − 1/β)),  β = l mod M.
//
// This is strictly more general than Theorem 3 of Li et al. (1992), which
// covers only the β = 0 clause. The predicate characterizes optimality in
// the regime M ≤ l it is stated for; see DMStrictlyOptimal for the full
// semantic check (at exactly M = l+1 the saturated response l coincides
// with ⌈l²/M⌉ even though the window spans fewer cells than disks).
func DMTheorem1Condition(l, m int) bool {
	if m > l {
		return false
	}
	beta := l % m
	if beta == 0 {
		return true
	}
	return float64(beta) > float64(m)*(1-1/float64(beta))
}

// DMStrictlyOptimal reports whether disk modulo achieves the feasible
// optimal response time ⌈l²/M⌉ for l×l queries.
func DMStrictlyOptimal(l, m int) bool {
	return DMResponse(l, m) == OptimalResponse(l, m)
}

// DMResponse returns the exact response time of disk modulo for any l×l
// query (Theorem 1(ii)):
//
//	R = R_opt + β − ⌈β²/M⌉  if M ≤ l ∧ β ≠ 0 ∧ β ≤ M(1 − 1/β)
//	R = l                   if M > l
//	R = R_opt               otherwise (the strictly optimal cases).
//
// DM's response is independent of the window position, so this is both the
// expected and the worst case.
func DMResponse(l, m int) int {
	if m > l {
		return l
	}
	beta := l % m
	if beta == 0 {
		return l * l / m
	}
	if float64(beta) > float64(m)*(1-1/float64(beta)) {
		return OptimalResponse(l, m)
	}
	return OptimalResponse(l, m) + beta - CeilDiv(beta*beta, m)
}

// DMBruteForce computes disk modulo's response time for an l×l window by
// direct enumeration. The multiset of coordinate sums in an l×l window is
// the triangular distribution 1,2,...,l,...,2,1 over 2l−1 consecutive sums
// regardless of position, so one window suffices.
func DMBruteForce(l, m int) int {
	perDisk := make([]int, m)
	for s := 0; s <= 2*(l-1); s++ {
		tri := s + 1
		if tri > l {
			tri = l
		}
		if rem := 2*l - 1 - s; rem < tri {
			tri = rem
		}
		perDisk[s%m] += tri
	}
	max := 0
	for _, n := range perDisk {
		if n > max {
			max = n
		}
	}
	return max
}

// DMSaturationThreshold returns the number of disks beyond which adding
// disks no longer reduces DM's response time for l×l queries: the smallest
// M* such that DMResponse(l, M) == DMResponse(l, M*) for all M ≥ M*.
// Theorem 1 caps DM's response at l once M > l, so the search is bounded.
func DMSaturationThreshold(l int) int {
	floor := DMResponse(l, l+1) // = l, the asymptotic response
	for m := 1; m <= l+1; m++ {
		if DMResponse(l, m) <= floor {
			// Verify no later M does better (response is not monotone).
			better := false
			for k := m + 1; k <= l+1; k++ {
				if DMResponse(l, k) < DMResponse(l, m) {
					better = true
					break
				}
			}
			if !better {
				return m
			}
		}
	}
	return l + 1
}

// FXBounds returns Theorem 2's bounds on fieldwise xor's expected response
// time for a 2^m × 2^m query over M = 2^n disks:
//
//	(i)  n ≤ m: R = 2^(2m−n) exactly (strictly optimal);
//	(ii) n > m: 2^(2m−n) ≤ R ≤ 2^m.
func FXBounds(m, n int) (lo, hi float64) {
	if m < 0 || n < 0 {
		panic(fmt.Sprintf("analytic: FXBounds(%d, %d) with negative exponent", m, n))
	}
	exact := math.Exp2(float64(2*m - n))
	if n <= m {
		return exact, exact
	}
	return exact, math.Exp2(float64(m))
}

// FXScalingFloor is Theorem 2(iii): for n > m, doubling the disks can shrink
// FX's expected response by at most a factor 3/4, far from the ideal 1/2.
// It returns the guaranteed lower bound on R(2^(n+1)) given R(2^n).
func FXScalingFloor(prev float64) float64 { return 0.75 * prev }

// FXExpectedResponse computes fieldwise xor's expected response time for an
// l×l window over m disks by enumerating all window positions on a grid of
// gridSize×gridSize cells (positions wrap the xor pattern, which has period
// lcm(2^ceil(log2 l), m) per axis, so a gridSize of a few multiples of l·m
// is exact in practice). Cost is O(gridSize² · l²/m) amortized via sliding
// sums — implemented directly as O(positions · l²) here because the
// experiment sizes are small.
func FXExpectedResponse(l, m, gridSize int) float64 {
	if gridSize < l {
		panic(fmt.Sprintf("analytic: grid %d smaller than query %d", gridSize, l))
	}
	perDisk := make([]int, m)
	total := 0.0
	positions := 0
	for x0 := 0; x0+l <= gridSize; x0++ {
		for y0 := 0; y0+l <= gridSize; y0++ {
			for i := range perDisk {
				perDisk[i] = 0
			}
			for i := x0; i < x0+l; i++ {
				for j := y0; j < y0+l; j++ {
					perDisk[(i^j)%m]++
				}
			}
			max := 0
			for _, n := range perDisk {
				if n > max {
					max = n
				}
			}
			total += float64(max)
			positions++
		}
	}
	return total / float64(positions)
}

// WindowExpectedResponse computes the expected response time of an
// arbitrary cell-to-disk mapping for l×l windows by enumerating every
// window position on a gridSize×gridSize grid. cellDisks is row-major
// (cell (i,j) at index i*gridSize+j). This is the tool behind the empirical
// study of HCAM's scalability — the analysis the paper reports as open
// ("We are currently working on the analysis of the scalability of HCAM").
func WindowExpectedResponse(cellDisks []int, gridSize, l, m int) float64 {
	if len(cellDisks) != gridSize*gridSize {
		panic(fmt.Sprintf("analytic: %d cell disks for a %d-cell grid",
			len(cellDisks), gridSize*gridSize))
	}
	if gridSize < l {
		panic(fmt.Sprintf("analytic: grid %d smaller than query %d", gridSize, l))
	}
	perDisk := make([]int, m)
	total := 0.0
	positions := 0
	for x0 := 0; x0+l <= gridSize; x0++ {
		for y0 := 0; y0+l <= gridSize; y0++ {
			for i := range perDisk {
				perDisk[i] = 0
			}
			for i := x0; i < x0+l; i++ {
				row := i * gridSize
				for j := y0; j < y0+l; j++ {
					d := cellDisks[row+j]
					if d < 0 || d >= m {
						panic(fmt.Sprintf("analytic: cell disk %d out of range [0,%d)", d, m))
					}
					perDisk[d]++
				}
			}
			max := 0
			for _, n := range perDisk {
				if n > max {
					max = n
				}
			}
			total += float64(max)
			positions++
		}
	}
	return total / float64(positions)
}

// DMExpectedResponseGeneral computes DM's expected response for arbitrary
// (possibly non-square) wl×wh windows by enumeration, used to cross-check
// the closed form and to explore beyond Theorem 1's square-query scope.
func DMExpectedResponseGeneral(wl, wh, m, gridSize int) float64 {
	perDisk := make([]int, m)
	total := 0.0
	positions := 0
	for x0 := 0; x0+wl <= gridSize; x0++ {
		for y0 := 0; y0+wh <= gridSize; y0++ {
			for i := range perDisk {
				perDisk[i] = 0
			}
			for i := x0; i < x0+wl; i++ {
				for j := y0; j < y0+wh; j++ {
					perDisk[(i+j)%m]++
				}
			}
			max := 0
			for _, n := range perDisk {
				if n > max {
					max = n
				}
			}
			total += float64(max)
			positions++
		}
	}
	return total / float64(positions)
}
