package analytic_test

import (
	"fmt"

	"pgridfile/internal/analytic"
)

// ExampleDMResponse shows Theorem 1's saturation: a 6x6 query over disk
// modulo never responds faster than 6 bucket fetches, no matter how many
// disks are added, while the optimal keeps shrinking.
func ExampleDMResponse() {
	for _, m := range []int{2, 6, 12, 24, 48} {
		fmt.Printf("M=%-2d  DM=%-2d  optimal=%d\n",
			m, analytic.DMResponse(6, m), analytic.OptimalResponse(6, m))
	}
	// Output:
	// M=2   DM=18  optimal=18
	// M=6   DM=6   optimal=6
	// M=12  DM=6   optimal=3
	// M=24  DM=6   optimal=2
	// M=48  DM=6   optimal=1
}

// ExampleFXBounds prints Theorem 2's bounds for a 4x4 query: exact below
// M=16, then a widening band whose floor shows FX cannot halve its response
// per disk doubling.
func ExampleFXBounds() {
	const m = 2 // 2^2 x 2^2 query
	for n := 1; n <= 4; n++ {
		lo, hi := analytic.FXBounds(m, n)
		fmt.Printf("M=%-2d  bounds [%g, %g]\n", 1<<n, lo, hi)
	}
	// Output:
	// M=2   bounds [8, 8]
	// M=4   bounds [4, 4]
	// M=8   bounds [2, 4]
	// M=16  bounds [1, 4]
}
