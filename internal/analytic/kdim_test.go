package analytic

import "testing"

func TestDMResponseKDMatches2DClosedForm(t *testing.T) {
	for l := 1; l <= 25; l++ {
		for m := 1; m <= 25; m++ {
			got := DMResponseKD([]int{l, l}, m)
			want := DMResponse(l, m)
			if got != want {
				t.Errorf("KD(l=%d,M=%d) = %d, closed form %d", l, m, got, want)
			}
		}
	}
}

// literalKD enumerates a window at the origin directly.
func literalKD(sides []int, m int) int {
	perDisk := make([]int, m)
	cell := make([]int, len(sides))
	for {
		sum := 0
		for _, c := range cell {
			sum += c
		}
		perDisk[sum%m]++
		d := len(cell) - 1
		for d >= 0 {
			cell[d]++
			if cell[d] < sides[d] {
				break
			}
			cell[d] = 0
			d--
		}
		if d < 0 {
			break
		}
	}
	max := 0
	for _, c := range perDisk {
		if c > max {
			max = c
		}
	}
	return max
}

func TestDMResponseKDMatchesLiteral3D4D(t *testing.T) {
	cases := [][]int{
		{3, 4, 5}, {2, 2, 2}, {5, 5, 5}, {4, 1, 6},
		{2, 3, 4, 5}, {3, 3, 3, 3},
	}
	for _, sides := range cases {
		for m := 1; m <= 20; m++ {
			got := DMResponseKD(sides, m)
			want := literalKD(sides, m)
			if got != want {
				t.Errorf("sides=%v M=%d: convolution %d, literal %d", sides, m, got, want)
			}
		}
	}
}

func TestDMResponseKDNonSquareWindows(t *testing.T) {
	// A 1×w window (partial-match-like) is strictly optimal under DM for
	// any M: consecutive sums hit distinct disks round-robin.
	for w := 1; w <= 20; w++ {
		for m := 1; m <= 20; m++ {
			got := DMResponseKD([]int{1, w}, m)
			want := OptimalResponseKD([]int{1, w}, m)
			if got != want {
				t.Errorf("1x%d window over %d disks: %d, optimal %d", w, m, got, want)
			}
		}
	}
}

func TestDMSaturationKD(t *testing.T) {
	// Saturation value is the largest anti-diagonal slice; for an l×l
	// square that is l (Theorem 1's R = l regime).
	for l := 1; l <= 12; l++ {
		if got := DMSaturationKD([]int{l, l}); got != l {
			t.Errorf("saturation of %dx%d = %d, want %d", l, l, got, l)
		}
	}
	// Beyond the sum spread, adding disks cannot help.
	sides := []int{4, 5, 6}
	sat := DMSaturationKD(sides)
	spread := 1 + 3 + 4 + 5
	for m := spread; m < spread+20; m++ {
		if got := DMResponseKD(sides, m); got != sat {
			t.Errorf("M=%d: response %d, want saturated %d", m, got, sat)
		}
	}
}

func TestDMResponseKDPanics(t *testing.T) {
	for _, f := range []func(){
		func() { DMResponseKD(nil, 4) },
		func() { DMResponseKD([]int{3}, 0) },
		func() { DMResponseKD([]int{0}, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			f()
		}()
	}
}
