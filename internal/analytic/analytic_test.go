package analytic

import (
	"math"
	"testing"
)

func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{0, 3, 0}, {1, 3, 1}, {3, 3, 1}, {4, 3, 2}, {25, 4, 7},
	}
	for _, c := range cases {
		if got := CeilDiv(c.a, c.b); got != c.want {
			t.Errorf("CeilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// TestTheorem1MatchesBruteForce is the core verification of Theorem 1: the
// closed-form DMResponse must equal direct enumeration for every (l, M) in a
// broad sweep.
func TestTheorem1MatchesBruteForce(t *testing.T) {
	for l := 1; l <= 40; l++ {
		for m := 1; m <= 40; m++ {
			want := DMBruteForce(l, m)
			got := DMResponse(l, m)
			if got != want {
				t.Errorf("DMResponse(l=%d, M=%d) = %d, brute force %d", l, m, got, want)
			}
		}
	}
}

// TestTheorem1OptimalityCondition verifies that DMStrictlyOptimal agrees
// with the definition "response equals ⌈l²/M⌉", and that the paper's stated
// predicate characterizes optimality throughout its M ≤ l regime.
func TestTheorem1OptimalityCondition(t *testing.T) {
	for l := 1; l <= 40; l++ {
		for m := 1; m <= 40; m++ {
			want := DMBruteForce(l, m) == OptimalResponse(l, m)
			if got := DMStrictlyOptimal(l, m); got != want {
				t.Errorf("DMStrictlyOptimal(l=%d, M=%d) = %v, brute force says %v (R=%d, opt=%d)",
					l, m, got, want, DMBruteForce(l, m), OptimalResponse(l, m))
			}
			if m <= l {
				if got := DMTheorem1Condition(l, m); got != want {
					t.Errorf("DMTheorem1Condition(l=%d, M=%d) = %v, brute force says %v",
						l, m, got, want)
				}
			}
		}
	}
}

func TestDMBruteForceAgainstFullEnumeration(t *testing.T) {
	// DMBruteForce uses the triangular-sum shortcut; validate it against a
	// literal window enumeration at several positions (DM is position
	// independent, so all positions must agree).
	literal := func(l, m, x0, y0 int) int {
		perDisk := make([]int, m)
		for i := x0; i < x0+l; i++ {
			for j := y0; j < y0+l; j++ {
				perDisk[(i+j)%m]++
			}
		}
		max := 0
		for _, n := range perDisk {
			if n > max {
				max = n
			}
		}
		return max
	}
	for _, c := range []struct{ l, m int }{{3, 2}, {5, 3}, {7, 5}, {8, 5}, {10, 16}} {
		want := DMBruteForce(c.l, c.m)
		for _, pos := range [][2]int{{0, 0}, {1, 3}, {7, 2}, {13, 13}} {
			if got := literal(c.l, c.m, pos[0], pos[1]); got != want {
				t.Errorf("l=%d M=%d at %v: literal %d, shortcut %d", c.l, c.m, pos, got, want)
			}
		}
	}
}

func TestDMSaturation(t *testing.T) {
	// Theorem 1: for M > l the response is pinned at l, so DM cannot use
	// more than ~l disks for an l×l query.
	const l = 9
	asymptote := DMResponse(l, l+1)
	if asymptote != l {
		t.Fatalf("DMResponse(l, l+1) = %d, want %d", asymptote, l)
	}
	for m := l + 1; m <= 4*l; m++ {
		if got := DMResponse(l, m); got != l {
			t.Errorf("DMResponse(%d, %d) = %d, want saturation at %d", l, m, got, l)
		}
	}
	thr := DMSaturationThreshold(l)
	if thr > l+1 {
		t.Errorf("saturation threshold %d beyond l+1", thr)
	}
	// At the threshold the response equals the asymptote and never
	// improves later.
	rt := DMResponse(l, thr)
	for m := thr; m <= 4*l; m++ {
		if DMResponse(l, m) < rt {
			t.Errorf("response improves after threshold: M=%d", m)
		}
	}
}

func TestFXBoundsTheorem2i(t *testing.T) {
	// n <= m: exact optimality, verified against enumeration. Power-of-two
	// everything; the xor pattern has period 2^ceil(log2(l*m)) per axis, so
	// a grid of 4·l·m covers all distinct alignments.
	for _, c := range []struct{ m, n int }{{1, 0}, {1, 1}, {2, 1}, {2, 2}, {3, 2}} {
		l := 1 << c.m
		M := 1 << c.n
		lo, hi := FXBounds(c.m, c.n)
		if lo != hi {
			t.Fatalf("m=%d n=%d: bounds not tight for n<=m", c.m, c.n)
		}
		got := FXExpectedResponse(l, M, 4*l*M)
		if math.Abs(got-lo) > 1e-9 {
			t.Errorf("FX expected response l=%d M=%d: %v, theorem says %v", l, M, got, lo)
		}
	}
}

func TestFXBoundsTheorem2ii(t *testing.T) {
	// n > m: expected response must lie within [2^(2m-n), 2^m].
	for _, c := range []struct{ m, n int }{{1, 2}, {1, 3}, {2, 3}, {2, 4}, {3, 4}, {3, 5}} {
		l := 1 << c.m
		M := 1 << c.n
		lo, hi := FXBounds(c.m, c.n)
		got := FXExpectedResponse(l, M, 4*l*M)
		if got < lo-1e-9 || got > hi+1e-9 {
			t.Errorf("FX l=%d M=%d: expected response %v outside [%v,%v]", l, M, got, lo, hi)
		}
	}
}

func TestFXScalingTheorem2iii(t *testing.T) {
	// Doubling disks beyond M = l shrinks the expected response by at most
	// 4/3 — far from halving. Verify on a chain of n values.
	const m = 2 // 4x4 queries
	l := 1 << m
	prev := FXExpectedResponse(l, 1<<(m+1), 4*l*(1<<(m+1)))
	for n := m + 2; n <= m+4; n++ {
		cur := FXExpectedResponse(l, 1<<n, 4*l*(1<<n))
		if cur < FXScalingFloor(prev)-1e-9 {
			t.Errorf("n=%d: response %v fell below the 3/4 floor %v of previous %v",
				n, cur, FXScalingFloor(prev), prev)
		}
		prev = cur
	}
}

func TestFXSaturatesBelowDM(t *testing.T) {
	// The paper observes FX saturates at a lower response time than DM for
	// the uniform dataset. Check on an 8x8 query with many disks: FX's
	// asymptotic response (l) is hit by DM at M>l too, but FX stays below
	// DM for intermediate M in expectation.
	const l = 8
	foundBelow := false
	for m := l + 1; m <= 3*l; m++ {
		fx := FXExpectedResponse(l, m, 6*l)
		dm := float64(DMResponse(l, m))
		if fx < dm {
			foundBelow = true
			break
		}
	}
	if !foundBelow {
		t.Error("FX never beat DM past saturation; expected lower saturation level")
	}
}

func TestDMExpectedResponseGeneralMatchesClosedFormOnSquares(t *testing.T) {
	for _, c := range []struct{ l, m int }{{4, 3}, {6, 4}, {7, 5}} {
		got := DMExpectedResponseGeneral(c.l, c.l, c.m, 4*c.l)
		want := float64(DMResponse(c.l, c.m))
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("l=%d M=%d: general enumeration %v, closed form %v", c.l, c.m, got, want)
		}
	}
}

func TestFXBoundsPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	FXBounds(-1, 2)
}

func TestWindowExpectedResponseMatchesDM(t *testing.T) {
	// The generic evaluator with a DM mapping must reproduce the closed form.
	const gridSize = 24
	for _, c := range []struct{ l, m int }{{4, 3}, {6, 4}, {7, 5}} {
		cellDisks := make([]int, gridSize*gridSize)
		for i := 0; i < gridSize; i++ {
			for j := 0; j < gridSize; j++ {
				cellDisks[i*gridSize+j] = (i + j) % c.m
			}
		}
		got := WindowExpectedResponse(cellDisks, gridSize, c.l, c.m)
		want := float64(DMResponse(c.l, c.m))
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("l=%d m=%d: generic %v, closed form %v", c.l, c.m, got, want)
		}
	}
}

func TestWindowExpectedResponsePanics(t *testing.T) {
	for _, f := range []func(){
		func() { WindowExpectedResponse(make([]int, 3), 2, 1, 1) },    // size mismatch
		func() { WindowExpectedResponse(make([]int, 4), 2, 3, 1) },    // window > grid
		func() { WindowExpectedResponse([]int{0, 0, 0, 9}, 2, 2, 2) }, // disk out of range
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			f()
		}()
	}
}
