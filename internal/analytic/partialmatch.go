package analytic

import "fmt"

// Partial-match analysis (Du and Sobolewski 1982, the results Section 2 of
// the paper builds on): a partial-match query pins every attribute except a
// set U of unspecified ones, so on a complete Cartesian grid it retrieves
// the |U|-dimensional slab of cells obtained by freeing those axes.
//
// For disk modulo the cells of a 1-unspecified-attribute slab have
// coordinate sums i_u + const for i_u = 0..n_u-1 — consecutive residues —
// so the per-disk maximum is exactly ⌈n_u/M⌉: DM is strictly optimal for
// every partial-match query with one unspecified attribute, on any grid and
// any number of disks. With more unspecified attributes the slab sums form
// a convolution of uniform ranges, the same structure as range queries, and
// optimality holds only under Theorem 1-like conditions.

// DMPartialMatchResponse returns disk modulo's exact response time for a
// partial-match query on a complete grid with the given per-dimension cell
// counts, where unspecified marks the freed attributes. The response is
// position independent (the specified attributes only shift the residues).
func DMPartialMatchResponse(sides []int, unspecified []bool, m int) int {
	if len(sides) != len(unspecified) {
		panic(fmt.Sprintf("analytic: %d sides, %d flags", len(sides), len(unspecified)))
	}
	if m < 1 {
		panic("analytic: no disks")
	}
	// The retrieved slab has extent sides[d] along unspecified axes and 1
	// along specified ones; DM's response is the KD window response.
	window := make([]int, 0, len(sides))
	for d, s := range sides {
		if s < 1 {
			panic(fmt.Sprintf("analytic: side %d = %d", d, s))
		}
		if unspecified[d] {
			window = append(window, s)
		} else {
			window = append(window, 1)
		}
	}
	return DMResponseKD(window, m)
}

// DMPartialMatchOptimal reports whether disk modulo achieves ⌈cells/M⌉ for
// the given partial-match query class.
func DMPartialMatchOptimal(sides []int, unspecified []bool, m int) bool {
	window := make([]int, 0, len(sides))
	cells := 1
	for d, s := range sides {
		if unspecified[d] {
			window = append(window, s)
			cells *= s
		} else {
			window = append(window, 1)
		}
	}
	return DMResponseKD(window, m) == CeilDiv(cells, m)
}

// OneUnspecifiedAlwaysOptimal is the Du–Sobolewski guarantee: DM is
// strictly optimal for every partial-match query with exactly one
// unspecified attribute, regardless of grid shape and disk count. Returns
// the (always true) verdict after verifying it for the given configuration;
// tests sweep this against enumeration.
func OneUnspecifiedAlwaysOptimal(sides []int, m int) bool {
	for u := range sides {
		unspec := make([]bool, len(sides))
		unspec[u] = true
		if !DMPartialMatchOptimal(sides, unspec, m) {
			return false
		}
	}
	return true
}
