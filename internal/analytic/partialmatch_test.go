package analytic

import "testing"

func TestDMPartialMatchOneUnspecifiedAlwaysOptimal(t *testing.T) {
	// The Du–Sobolewski guarantee across many grids and disk counts.
	grids := [][]int{
		{5, 7}, {8, 8}, {16, 12, 8}, {3, 4, 5, 6}, {32, 22, 9},
	}
	for _, sides := range grids {
		for m := 1; m <= 40; m++ {
			if !OneUnspecifiedAlwaysOptimal(sides, m) {
				t.Errorf("grid %v, M=%d: DM not optimal for a one-unspecified query", sides, m)
			}
		}
	}
}

func TestDMPartialMatchResponseMatchesEnumeration(t *testing.T) {
	// Literal enumeration of the slab for a 3-D grid with two unspecified
	// attributes at several query positions (position independence).
	sides := []int{6, 5, 7}
	unspec := []bool{true, false, true}
	for m := 1; m <= 15; m++ {
		want := DMPartialMatchResponse(sides, unspec, m)
		for _, pin := range []int{0, 2, 4} { // the specified attribute's value
			perDisk := make([]int, m)
			for i := 0; i < sides[0]; i++ {
				for k := 0; k < sides[2]; k++ {
					perDisk[(i+pin+k)%m]++
				}
			}
			max := 0
			for _, c := range perDisk {
				if c > max {
					max = c
				}
			}
			if max != want {
				t.Errorf("M=%d pin=%d: enumeration %d, closed form %d", m, pin, max, want)
			}
		}
	}
}

func TestDMPartialMatchMultipleUnspecifiedCanBeSuboptimal(t *testing.T) {
	// With two unspecified attributes the slab behaves like a range query
	// and DM saturates: find a configuration where it is suboptimal.
	sides := []int{8, 8}
	unspec := []bool{true, true}
	found := false
	for m := 2; m <= 32; m++ {
		if !DMPartialMatchOptimal(sides, unspec, m) {
			found = true
			break
		}
	}
	if !found {
		t.Error("DM optimal for all M with two unspecified attributes on an 8x8 grid; expected saturation")
	}
}

func TestDMPartialMatchPanics(t *testing.T) {
	for _, f := range []func(){
		func() { DMPartialMatchResponse([]int{3}, []bool{true, false}, 4) },
		func() { DMPartialMatchResponse([]int{3}, []bool{true}, 0) },
		func() { DMPartialMatchResponse([]int{0}, []bool{true}, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			f()
		}()
	}
}
