package cache

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pgridfile/internal/geom"
)

// makeFlat builds an arena of n 2-D points; each entry costs
// entryOverhead + n*16 bytes in the cache's accounting.
func makeFlat(n int) geom.Flat {
	return geom.Flat{Dims: 2, Coords: make([]float64, 2*n)}
}

func loadOf(rec geom.Flat, pages int) func() (geom.Flat, int, error) {
	return func() (geom.Flat, int, error) { return rec, pages, nil }
}

func TestGetHitMiss(t *testing.T) {
	c := New(1<<20, 4)
	ctx := context.Background()
	rec := makeFlat(10)

	got, pages, err := c.Get(ctx, 1, loadOf(rec, 3))
	if err != nil || got.Len() != 10 || pages != 3 {
		t.Fatalf("first get: %v %d %v", got, pages, err)
	}
	calls := 0
	got, pages, err = c.Get(ctx, 1, func() (geom.Flat, int, error) {
		calls++
		return geom.Flat{}, 0, errors.New("should not be called")
	})
	if err != nil || calls != 0 || got.Len() != 10 || pages != 3 {
		t.Fatalf("hit ran the loader: calls=%d err=%v", calls, err)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}
}

func TestByteBoundAndEviction(t *testing.T) {
	// One shard so the budget arithmetic is exact; each 100-point 2-D entry
	// costs 128 + 100*16 = 1728 bytes, so an 8000-byte shard fits 4.
	const entryBytes = entryOverhead + 100*16
	c := New(8000, 1)
	ctx := context.Background()
	for id := int32(0); id < 50; id++ {
		if _, _, err := c.Get(ctx, id, loadOf(makeFlat(100), 1)); err != nil {
			t.Fatal(err)
		}
		if got := c.Stats().Bytes; got > 8000 {
			t.Fatalf("after insert %d: resident bytes %d exceed bound 8000", id, got)
		}
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Error("no evictions despite 50 inserts into a 4-entry budget")
	}
	if want := int64(8000 / entryBytes); st.Entries != want {
		t.Errorf("resident entries = %d, want %d", st.Entries, want)
	}
	if st.Bytes != st.Entries*entryBytes {
		t.Errorf("bytes = %d, want %d", st.Bytes, st.Entries*entryBytes)
	}
}

func TestLRUOrder(t *testing.T) {
	// Budget of 3 entries in one shard; touching id 0 between inserts must
	// keep it resident while colder ids rotate out.
	const entryBytes = entryOverhead + 10*16
	c := New(3*entryBytes, 1)
	ctx := context.Background()
	for id := int32(0); id < 3; id++ {
		c.Get(ctx, id, loadOf(makeFlat(10), 1))
	}
	for id := int32(3); id < 10; id++ {
		// Touch 0, then insert a new id: the eviction victim must never be 0.
		if _, _, err := c.Get(ctx, 0, func() (geom.Flat, int, error) {
			return geom.Flat{}, 0, errors.New("id 0 evicted despite being hot")
		}); err != nil {
			t.Fatal(err)
		}
		c.Get(ctx, id, loadOf(makeFlat(10), 1))
	}
	if c.Len() != 3 {
		t.Errorf("resident entries = %d, want 3", c.Len())
	}
}

func TestOversizeEntryNotCached(t *testing.T) {
	c := New(1000, 1) // below one 100-point entry (1728 bytes)
	ctx := context.Background()
	calls := 0
	load := func() (geom.Flat, int, error) { calls++; return makeFlat(100), 1, nil }
	if _, _, err := c.Get(ctx, 7, load); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 || c.Stats().Bytes != 0 {
		t.Errorf("oversize entry cached: %+v", c.Stats())
	}
	c.Get(ctx, 7, load)
	if calls != 2 {
		t.Errorf("loader ran %d times, want 2 (oversize entries are never cached)", calls)
	}
}

func TestErrorNotCached(t *testing.T) {
	c := New(1<<20, 2)
	ctx := context.Background()
	boom := errors.New("disk gone")
	if _, _, err := c.Get(ctx, 3, func() (geom.Flat, int, error) { return geom.Flat{}, 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("load error not surfaced: %v", err)
	}
	if c.Len() != 0 {
		t.Error("failed load left a cache entry")
	}
	rec, _, err := c.Get(ctx, 3, loadOf(makeFlat(5), 1))
	if err != nil || rec.Len() != 5 {
		t.Fatalf("retry after failed load: %v %v", rec, err)
	}
}

// TestSingleflight hammers one cold id from many goroutines: the loader
// must run exactly once, everyone must get its result, and the joiner count
// must cover the rest.
func TestSingleflight(t *testing.T) {
	c := New(1<<20, 4)
	ctx := context.Background()
	const readers = 32
	var calls atomic.Int64
	release := make(chan struct{})
	rec := makeFlat(8)

	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, pages, err := c.Get(ctx, 42, func() (geom.Flat, int, error) {
				calls.Add(1)
				<-release // hold the load open so everyone else joins it
				return rec, 2, nil
			})
			if err != nil {
				errs <- err
				return
			}
			if got.Len() != 8 || pages != 2 {
				errs <- fmt.Errorf("joiner got %d recs / %d pages", got.Len(), pages)
			}
		}()
	}
	// Let every goroutine reach Acquire before releasing the leader. The
	// shared counter converges to readers-1 only once all have joined; poll
	// briefly rather than syncing on internals.
	for c.Stats().Shared < readers-1 {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("loader ran %d times, want 1", n)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Shared != readers-1 {
		t.Errorf("stats = %+v, want 1 miss and %d shared", st, readers-1)
	}
}

// TestPanickingLeaderDoesNotWedge is the regression test for the inflight
// leak: a leader whose loader panicked never called Complete, so every later
// Acquire of the id joined a Pending that could not finish. The fixed Get
// completes with an error before rethrowing, so a waiter blocked on the
// doomed load gets that error and a fresh Get can re-load the bucket.
func TestPanickingLeaderDoesNotWedge(t *testing.T) {
	c := New(1<<20, 1)
	ctx := context.Background()

	// The panic must still escape Get — completion is a side effect of the
	// unwind, not a swallow.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Get swallowed the loader's panic")
			}
		}()
		c.Get(ctx, 5, func() (geom.Flat, int, error) { panic("torn header") })
	}()

	// Before the fix this Get joined the leaked Pending and hung forever;
	// after it, the id is free and a fresh load succeeds.
	done := make(chan error, 1)
	go func() {
		rec, _, err := c.Get(ctx, 5, loadOf(makeFlat(4), 1))
		if err == nil && rec.Len() != 4 {
			err = fmt.Errorf("reload got %d records, want 4", rec.Len())
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("bucket wedged: reload after panicking leader never finished")
	}

	// A waiter already parked on the doomed load must be released with an
	// error rather than waiting out its own ctx.
	entered := make(chan struct{})
	release := make(chan struct{})
	go func() {
		defer func() { recover() }()
		c.Get(ctx, 6, func() (geom.Flat, int, error) {
			close(entered)
			<-release
			panic("torn header")
		})
	}()
	<-entered
	join := c.Acquire(6)
	if join.Pending == nil {
		t.Fatalf("expected to join the in-flight load, got %+v", join)
	}
	close(release)
	waitErr := make(chan error, 1)
	go func() {
		_, _, err := join.Pending.Wait(ctx)
		waitErr <- err
	}()
	select {
	case err := <-waitErr:
		if err == nil {
			t.Error("waiter behind panicking leader got a nil error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter wedged behind panicking leader")
	}
	if c.Len() != 1 { // only id 5's reload should be resident
		t.Errorf("resident entries = %d, want 1 (panicked loads must not cache)", c.Len())
	}
}

func TestWaitRespectsContext(t *testing.T) {
	c := New(1<<20, 1)
	r := c.Acquire(9)
	if !r.Leader {
		t.Fatal("first acquire not leader")
	}
	join := c.Acquire(9)
	if join.Pending == nil {
		t.Fatal("second acquire did not join")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := join.Pending.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("wait returned %v, want context.Canceled", err)
	}
	// The leader must still be able to complete and unblock future readers.
	c.Complete(9, makeFlat(3), 1, nil)
	rec, _, err := c.Get(context.Background(), 9, nil)
	if err != nil || rec.Len() != 3 {
		t.Fatalf("completion after abandoned waiter: %v %v", rec, err)
	}
}

// TestConcurrentMixed drives many goroutines over a small working set with
// a tight byte budget under -race: hits, misses, joins and evictions all
// interleave, the bound must hold throughout, and the counters must
// reconcile with the number of operations issued.
func TestConcurrentMixed(t *testing.T) {
	const entryBytes = entryOverhead + 20*16
	c := New(8*entryBytes, 4)
	ctx := context.Background()
	const (
		readers = 16
		rounds  = 200
		idSpace = 32
	)
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				id := int32((r*7 + i) % idSpace)
				rec, _, err := c.Get(ctx, id, loadOf(makeFlat(20), 1))
				if err != nil {
					errs <- err
					return
				}
				if rec.Len() != 20 {
					errs <- fmt.Errorf("id %d: %d records", id, rec.Len())
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := c.Stats()
	if st.Bytes > 8*entryBytes {
		t.Errorf("resident bytes %d exceed bound %d", st.Bytes, 8*entryBytes)
	}
	if st.Hits+st.Misses+st.Shared != readers*rounds {
		t.Errorf("ops accounted = %d, want %d (%+v)",
			st.Hits+st.Misses+st.Shared, readers*rounds, st)
	}
}

func TestInvalidateDropsResidentEntry(t *testing.T) {
	c := New(1<<20, 4)
	ctx := context.Background()
	if _, _, err := c.Get(ctx, 7, loadOf(makeFlat(10), 1)); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Fatalf("entries = %d, want 1", c.Len())
	}
	c.Invalidate(7, 8) // 8 is absent: must still be a safe no-op drop
	if c.Len() != 0 || c.Stats().Bytes != 0 {
		t.Fatalf("after invalidate: %d entries, %d bytes", c.Len(), c.Stats().Bytes)
	}
	if got := c.Stats().Invalidations; got != 2 {
		t.Fatalf("invalidations = %d, want 2", got)
	}
	calls := 0
	if _, _, err := c.Get(ctx, 7, func() (geom.Flat, int, error) {
		calls++
		return makeFlat(5), 1, nil
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("read after invalidate did not reload (calls=%d)", calls)
	}
}

// TestInvalidateRacingLeader pins the stale-reinsert race: a leader elected
// before an Invalidate must not cache the result it loaded from the old
// pages, though its waiters still receive that value.
func TestInvalidateRacingLeader(t *testing.T) {
	c := New(1<<20, 4)
	ctx := context.Background()

	r := c.Acquire(3)
	if !r.Leader {
		t.Fatal("expected leadership on empty cache")
	}
	// A waiter joins the in-flight load.
	w := c.Acquire(3)
	if w.Pending == nil {
		t.Fatal("expected second acquire to join the in-flight load")
	}
	// The bucket mutates while the leader's disk read is in flight.
	c.Invalidate(3)

	stale := makeFlat(9)
	c.Complete(3, stale, 2, nil)

	rec, pages, err := w.Pending.Wait(ctx)
	if err != nil || rec.Len() != 9 || pages != 2 {
		t.Fatalf("waiter result: %d recs, %d pages, %v", rec.Len(), pages, err)
	}
	if c.Len() != 0 {
		t.Fatalf("stale leader result was cached (%d entries)", c.Len())
	}
	// The next read re-elects a leader and its (fresh) result does cache.
	r2 := c.Acquire(3)
	if !r2.Leader {
		t.Fatal("expected fresh leadership after invalidate")
	}
	c.Complete(3, makeFlat(4), 1, nil)
	if c.Len() != 1 {
		t.Fatalf("fresh result not cached (%d entries)", c.Len())
	}
}

// TestArenaPinnedAcrossInvalidate is the arena-lifetime property the
// zero-copy serving path depends on: a reader that acquired a bucket's Flat
// keeps a stable old snapshot while Invalidate + a rewrite land and later
// readers see the new data — old-or-new, never freed or torn. Concurrent
// re-reads of the pinned arena run against the writer under -race, so a
// buffer-recycling bug here would be a report, not a flake.
func TestArenaPinnedAcrossInvalidate(t *testing.T) {
	c := New(1<<20, 1)
	ctx := context.Background()

	old := makeFlat(64)
	for i := range old.Coords {
		old.Coords[i] = 1.0
	}
	pinned, _, err := c.Get(ctx, 11, loadOf(old, 1))
	if err != nil {
		t.Fatal(err)
	}

	// The reader holds its snapshot open while the write path churns the
	// bucket through many invalidate+rewrite cycles.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for i := 0; i < pinned.Len(); i++ {
				row := pinned.Row(i)
				for _, v := range row {
					if v != 1.0 {
						t.Errorf("pinned arena mutated: saw %v, want 1.0", v)
						return
					}
				}
			}
		}
	}()

	for round := 0; round < 100; round++ {
		c.Invalidate(11)
		fresh := makeFlat(64)
		for i := range fresh.Coords {
			fresh.Coords[i] = float64(round + 2)
		}
		if _, _, err := c.Get(ctx, 11, loadOf(fresh, 1)); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	// A fresh acquire sees the last rewrite, not the pinned snapshot.
	got, _, err := c.Get(ctx, 11, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 64 || got.Coords[0] != 101 {
		t.Fatalf("post-rewrite read got len=%d first=%v, want 64/101", got.Len(), got.Coords[0])
	}
	// And the pinned snapshot still reads old.
	if pinned.Coords[0] != 1.0 {
		t.Fatalf("pinned snapshot changed: %v", pinned.Coords[0])
	}
}
