// Package cache provides the byte-bounded, sharded LRU bucket cache that
// fronts the page store on the network server's hot path. The cached unit
// is a decoded bucket in arena form: one geom.Flat — a contiguous []float64
// coordinate array plus a dimension header — keyed by bucket id. Three
// properties matter for the serving path:
//
//   - Sharding: the id space is hashed over independently locked shards, so
//     concurrent queries rarely contend on one mutex.
//   - Byte bound: each shard owns an equal slice of the configured budget
//     and evicts from the cold end of its LRU list whenever an insert
//     pushes it over; the whole cache never holds more than MaxBytes of
//     decoded records (plus bounded per-entry overhead accounted with
//     them).
//   - Singleflight: when several queries miss on the same bucket at once,
//     exactly one (the leader) performs the disk read; the rest wait for
//     its result instead of duplicating the I/O. The Acquire/Complete pair
//     exposes this to callers that batch their disk reads (the server
//     groups leader misses per disk before reading), and Get wraps it for
//     callers with a simple loader function.
//
// Cached arenas are shared between all readers and must be treated as
// immutable. Lifetime under writes is version-pinned, not refcounted:
// Invalidate unlinks the entry and stamps the id, but never frees or
// reuses the arena — a reader that acquired the Flat before the
// invalidation keeps a consistent old snapshot for as long as it holds the
// slice (the garbage collector pins the arena), while readers arriving
// after see the rewritten bucket. Old-or-new, never torn.
package cache

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"pgridfile/internal/geom"
)

// entryOverhead approximates the bookkeeping bytes an entry costs beyond
// its decoded records: map slot, LRU links, entry struct.
const entryOverhead = 128

// Cache is a sharded, byte-bounded LRU over decoded buckets with
// singleflight loading. All methods are safe for concurrent use. The zero
// value is not usable; call New.
type Cache struct {
	shards []shard
	mask   uint32

	hits          atomic.Int64
	misses        atomic.Int64
	shared        atomic.Int64 // singleflight joins: misses served by a leader's read
	evictions     atomic.Int64
	invalidations atomic.Int64 // write-path drops (distinct from budget evictions)
	bytes         atomic.Int64
	entries       atomic.Int64
	maxBytes      int64
}

type entry struct {
	key        int32
	rec        geom.Flat
	pages      int
	bytes      int64
	prev, next *entry
}

type shard struct {
	mu       sync.Mutex
	m        map[int32]*entry
	sentinel entry // circular LRU list; sentinel.next is hottest
	bytes    int64
	max      int64
	inflight map[int32]*Pending

	// versions stamps ids that have been invalidated at least once. A
	// leader records the stamp at Acquire; Complete caches its result only
	// if the stamp is unchanged, so a load that raced with an Invalidate
	// (read the old pages, completed after the write) can never park stale
	// data in the cache. Waiters still receive the leader's (possibly old)
	// result — their reads began before the write completed, so that is
	// linearizable.
	versions map[int32]uint64
}

// Pending is an in-progress load another query is performing. Wait blocks
// until the leader Completes it or ctx expires.
type Pending struct {
	done    chan struct{}
	rec     geom.Flat
	pages   int
	err     error
	version uint64 // invalidation stamp observed when the leader was elected
}

// Wait returns the leader's result, or ctx's error if the caller's own
// deadline expires first.
func (p *Pending) Wait(ctx context.Context) (geom.Flat, int, error) {
	select {
	case <-p.done:
		return p.rec, p.pages, p.err
	case <-ctx.Done():
		return geom.Flat{}, 0, ctx.Err()
	}
}

// New creates a cache bounded by maxBytes of decoded bucket data spread
// over the given number of shards (rounded up to a power of two; <= 0
// selects 16). maxBytes must be positive.
func New(maxBytes int64, shards int) *Cache {
	if shards <= 0 {
		shards = 16
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	c := &Cache{shards: make([]shard, n), mask: uint32(n - 1), maxBytes: maxBytes}
	per := maxBytes / int64(n)
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.m = make(map[int32]*entry)
		s.inflight = make(map[int32]*Pending)
		s.versions = make(map[int32]uint64)
		s.sentinel.prev = &s.sentinel
		s.sentinel.next = &s.sentinel
		s.max = per
	}
	return c
}

// shardFor hashes a bucket id onto its shard (Fibonacci hashing; bucket ids
// are small dense integers, so multiply-shift spreads adjacent ids well).
func (c *Cache) shardFor(id int32) *shard {
	h := uint32(id) * 2654435761
	return &c.shards[(h>>16)&c.mask]
}

// AcquireResult reports how an Acquire was satisfied. Exactly one of three
// shapes comes back: a hit (Hit true, Rec/Pages valid), leadership (Leader
// true: the caller MUST load the bucket and call Complete exactly once), or
// a pending join (Pending non-nil: call Wait).
type AcquireResult struct {
	Rec     geom.Flat
	Pages   int
	Hit     bool
	Leader  bool
	Pending *Pending
}

// Acquire looks id up, joining an in-flight load when one exists and
// electing the caller leader otherwise.
func (c *Cache) Acquire(id int32) AcquireResult {
	s := c.shardFor(id)
	s.mu.Lock()
	if e, ok := s.m[id]; ok {
		s.moveToFront(e)
		s.mu.Unlock()
		c.hits.Add(1)
		return AcquireResult{Rec: e.rec, Pages: e.pages, Hit: true}
	}
	if p, ok := s.inflight[id]; ok {
		s.mu.Unlock()
		c.shared.Add(1)
		return AcquireResult{Pending: p}
	}
	p := &Pending{done: make(chan struct{}), version: s.versions[id]}
	s.inflight[id] = p
	s.mu.Unlock()
	c.misses.Add(1)
	return AcquireResult{Leader: true}
}

// Invalidate drops the given buckets from the cache and stamps their ids so
// any in-flight leader load started before this call completes without
// caching its (now stale) result. The write path calls this after swapping
// a mutated bucket's placement, making reads-after-write see fresh pages.
// The dropped entries' arenas are never recycled — readers that acquired
// them stay safe — only unlinked, so the collector reclaims each arena when
// its last reader lets go.
func (c *Cache) Invalidate(ids ...int32) {
	for _, id := range ids {
		s := c.shardFor(id)
		s.mu.Lock()
		s.versions[id]++
		if e, ok := s.m[id]; ok {
			s.unlink(e)
			delete(s.m, id)
			s.bytes -= e.bytes
			c.bytes.Add(-e.bytes)
			c.entries.Add(-1)
		}
		s.mu.Unlock()
		c.invalidations.Add(1)
	}
}

// Complete finishes a load this caller leads: the result is published to
// every waiter and, on success, inserted into the cache (evicting cold
// entries past the shard's byte budget). An entry too large for its shard's
// entire budget is returned to waiters but not cached.
func (c *Cache) Complete(id int32, rec geom.Flat, pages int, err error) {
	s := c.shardFor(id)
	s.mu.Lock()
	p, ok := s.inflight[id]
	if ok {
		delete(s.inflight, id)
	}
	stale := ok && p.version != s.versions[id]
	if err == nil && !stale {
		if _, dup := s.m[id]; !dup {
			e := &entry{key: id, rec: rec, pages: pages, bytes: cost(rec)}
			if e.bytes <= s.max {
				s.m[id] = e
				s.pushFront(e)
				s.bytes += e.bytes
				c.bytes.Add(e.bytes)
				c.entries.Add(1)
				c.evictLocked(s)
			}
		}
	}
	s.mu.Unlock()
	if ok {
		p.rec, p.pages, p.err = rec, pages, err
		close(p.done)
	}
}

// Get is the one-call form: a hit returns immediately, a join waits for the
// in-flight leader, and a miss elects this caller to run load and publish
// its result. ctx bounds only the waiting; the load itself is the caller's.
// A load that panics still Completes the entry (with an error) before the
// panic propagates, so waiters and later acquirers of the id are not wedged
// behind an inflight entry that can never finish.
func (c *Cache) Get(ctx context.Context, id int32, load func() (geom.Flat, int, error)) (geom.Flat, int, error) {
	r := c.Acquire(id)
	switch {
	case r.Hit:
		return r.Rec, r.Pages, nil
	case r.Pending != nil:
		return r.Pending.Wait(ctx)
	}
	completed := false
	defer func() {
		if !completed {
			c.Complete(id, geom.Flat{}, 0, fmt.Errorf("cache: leader load for bucket %d panicked", id))
		}
	}()
	rec, pages, err := load()
	completed = true
	c.Complete(id, rec, pages, err)
	return rec, pages, err
}

// cost estimates the resident bytes of one decoded bucket: the arena's
// coordinate array plus fixed per-entry overhead.
func cost(rec geom.Flat) int64 {
	return entryOverhead + 8*int64(len(rec.Coords))
}

// evictLocked drops cold entries until the shard is within budget. Caller
// holds s.mu.
func (c *Cache) evictLocked(s *shard) {
	for s.bytes > s.max {
		cold := s.sentinel.prev
		if cold == &s.sentinel {
			return
		}
		s.unlink(cold)
		delete(s.m, cold.key)
		s.bytes -= cold.bytes
		c.bytes.Add(-cold.bytes)
		c.entries.Add(-1)
		c.evictions.Add(1)
	}
}

func (s *shard) pushFront(e *entry) {
	e.prev = &s.sentinel
	e.next = s.sentinel.next
	e.prev.next = e
	e.next.prev = e
}

func (s *shard) unlink(e *entry) {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
}

func (s *shard) moveToFront(e *entry) {
	if s.sentinel.next == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

// Stats is a point-in-time view of the cache's counters.
type Stats struct {
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Shared        int64 `json:"shared"` // misses absorbed by an in-flight load
	Evictions     int64 `json:"evictions"`
	Invalidations int64 `json:"invalidations"` // write-path drops
	Bytes         int64 `json:"bytes"`
	Entries       int64 `json:"entries"`
	MaxBytes      int64 `json:"max_bytes"`
}

// Stats returns the current counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Shared:        c.shared.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
		Bytes:         c.bytes.Load(),
		Entries:       c.entries.Load(),
		MaxBytes:      c.maxBytes,
	}
}

// Len returns the number of resident entries.
func (c *Cache) Len() int { return int(c.entries.Load()) }
