package store

import (
	"context"
	"testing"
	"time"

	"pgridfile/internal/core"
	"pgridfile/internal/fault"
	"pgridfile/internal/gridfile"
	"pgridfile/internal/synth"
)

// faultAllocators is the scheme matrix the single-disk-failure property is
// proved over: one of each allocator family (heuristic search, index-based).
func faultAllocators(t *testing.T) map[string]core.Allocator {
	t.Helper()
	m := map[string]core.Allocator{
		"minimax": &core.Minimax{Seed: 1},
		"ssp":     &core.SSP{Seed: 1},
		"mst":     &core.MST{Seed: 1},
	}
	for _, name := range []struct{ scheme, resolver string }{
		{"DM", "D"}, {"FX", "R"}, {"HCAM", "F"},
	} {
		a, err := core.NewIndexBased(name.scheme, name.resolver, 1)
		if err != nil {
			t.Fatalf("%s/%s: %v", name.scheme, name.resolver, err)
		}
		m[name.scheme+"/"+name.resolver] = a
	}
	return m
}

// recordCounts is the multiset of record keys in a set of buckets.
func recordCounts(f *gridfile.File, ids []int32) map[[2]float64]int {
	got := map[[2]float64]int{}
	for _, id := range ids {
		f.ForEachRecordInBucket(id, func(key []float64, _ []byte) {
			got[[2]float64{key[0], key[1]}]++
		})
	}
	return got
}

// TestSingleDiskFailureLosesOnlyThatDisk is the declustering fault-isolation
// property: for every scheme and dataset, killing any single disk loses
// exactly the buckets the allocation placed on it — never more — and the
// records readable from the survivors plus the records of the lost buckets
// reconstruct the full dataset. Clearing the fault recovers every lost
// bucket (the failure was transient; nothing was corrupted).
func TestSingleDiskFailureLosesOnlyThatDisk(t *testing.T) {
	const disks = 4
	datasets := map[string]*synth.Dataset{
		"uniform.2d": synth.Uniform2D(1200, 3),
		"hot.2d":     synth.Hotspot2D(1200, 5),
	}
	for dsName, ds := range datasets {
		f, err := ds.Build()
		if err != nil {
			t.Fatal(err)
		}
		g := core.FromGridFile(f)
		full := recordCounts(f, bucketIDs(f))
		for algName, alg := range faultAllocators(t) {
			alloc, err := alg.Decluster(g, disks)
			if err != nil {
				t.Fatalf("%s/%s: %v", dsName, algName, err)
			}
			dir := t.TempDir()
			if _, err := Write(dir, f, alloc, 4096); err != nil {
				t.Fatal(err)
			}
			s, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			for kill := 0; kill < disks; kill++ {
				reg := fault.NewRegistry(1)
				reg.Set(fault.Rule{Site: fault.StoreReadDiskSite(kill), Kind: fault.KindError})
				s.SetFaults(reg)

				var lost []int32
				survived := map[[2]float64]int{}
				for _, v := range f.Buckets() {
					pts, _, err := s.ReadBucket(context.Background(), v.ID)
					if err != nil {
						pl, ok := s.Placement(v.ID)
						if !ok {
							t.Fatalf("%s/%s: failed bucket %d has no placement", dsName, algName, v.ID)
						}
						if pl.Disk != kill {
							t.Fatalf("%s/%s kill=%d: bucket %d on disk %d failed: %v",
								dsName, algName, kill, v.ID, pl.Disk, err)
						}
						if !fault.IsInjected(err) {
							t.Fatalf("%s/%s kill=%d: bucket %d failed with a non-injected error: %v",
								dsName, algName, kill, v.ID, err)
						}
						lost = append(lost, v.ID)
						continue
					}
					for _, p := range pts {
						survived[[2]float64{p[0], p[1]}]++
					}
				}
				if len(lost) == 0 {
					t.Fatalf("%s/%s kill=%d: no bucket lost — disk %d holds nothing?",
						dsName, algName, kill, kill)
				}
				// Survivors must be a strict subset of the dataset...
				for k, n := range survived {
					if n > full[k] {
						t.Fatalf("%s/%s kill=%d: key %v read %d times, dataset holds %d",
							dsName, algName, kill, k, n, full[k])
					}
				}
				// ...and survivors ∪ lost buckets' records == full dataset.
				for k, n := range recordCounts(f, lost) {
					survived[k] += n
				}
				if len(survived) != len(full) {
					t.Fatalf("%s/%s kill=%d: union has %d keys, dataset %d",
						dsName, algName, kill, len(survived), len(full))
				}
				for k, n := range full {
					if survived[k] != n {
						t.Fatalf("%s/%s kill=%d: key %v count %d, want %d",
							dsName, algName, kill, k, survived[k], n)
					}
				}
				// Recovery: clear the fault and replay the lost buckets from
				// the (intact) disk file.
				reg.Clear()
				for _, id := range lost {
					pts, _, err := s.ReadBucket(context.Background(), id)
					if err != nil {
						t.Fatalf("%s/%s kill=%d: bucket %d still failing after Clear: %v",
							dsName, algName, kill, id, err)
					}
					var pl Placement
					pl, _ = s.Placement(id)
					if pl.Recs != len(pts) {
						t.Fatalf("%s/%s kill=%d: bucket %d recovered %d records, want %d",
							dsName, algName, kill, id, len(pts), pl.Recs)
					}
				}
			}
			s.Close()
		}
	}
}

func bucketIDs(f *gridfile.File) []int32 {
	views := f.Buckets()
	ids := make([]int32, len(views))
	for i, v := range views {
		ids[i] = v.ID
	}
	return ids
}

// TestInjectedDelayRespectsContext proves a stalled read is bounded by the
// caller's deadline instead of wedging: the injected 10s stall is abandoned
// as soon as the 20ms context expires.
func TestInjectedDelayRespectsContext(t *testing.T) {
	dir, f, _ := buildLayout(t, 2, 4096)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	reg := fault.NewRegistry(1)
	if err := reg.SetSpec("store.read:delay=10s"); err != nil {
		t.Fatal(err)
	}
	s.SetFaults(reg)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err = s.ReadBucket(ctx, f.Buckets()[0].ID)
	if err == nil {
		t.Fatal("stalled read returned data before its context expired")
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("stalled read held the caller %v; the context should have freed it", el)
	}
}

// TestTornReadIsDetectedNotSilent proves a torn read surfaces as a retryable
// injected error — page validation catches the truncation; it never leaks a
// partial bucket as a successful (silently wrong) result.
func TestTornReadIsDetectedNotSilent(t *testing.T) {
	dir, f, _ := buildLayout(t, 2, 4096)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	reg := fault.NewRegistry(1)
	if err := reg.SetSpec("store.read:torn"); err != nil {
		t.Fatal(err)
	}
	s.SetFaults(reg)

	id := f.Buckets()[0].ID
	if _, _, err := s.ReadBucket(context.Background(), id); !fault.IsInjected(err) {
		t.Fatalf("torn ReadBucket: err=%v, want an injected-fault error", err)
	}
	if _, _, err := s.ReadBuckets(context.Background(), []int32{id}); !fault.IsInjected(err) {
		t.Fatalf("torn ReadBuckets: err=%v, want an injected-fault error", err)
	}
	// Genuine corruption (no fault armed) must stay non-transient: the
	// sentinel separates "retry me" from "your disk is bad".
	reg.Clear()
	if _, _, err := s.ReadBucket(context.Background(), id); err != nil {
		t.Fatalf("read still failing after Clear: %v", err)
	}
}
