package store

import (
	"context"
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"pgridfile/internal/geom"
	"pgridfile/internal/gridfile"
)

// randKeys draws n in-domain keys from a seeded PRNG.
func randKeys(dom geom.Rect, n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	out := make([]geom.Point, n)
	for i := range out {
		p := make(geom.Point, len(dom))
		for d, iv := range dom {
			p[d] = iv.Lo + rng.Float64()*(iv.Hi-iv.Lo)
		}
		out[i] = p
	}
	return out
}

// verifyStoreMatchesGrid proves every live grid bucket is readable from the
// store and holds exactly the grid's records, and that every replica copy
// is byte-identical to the primary with valid checksums.
func verifyStoreMatchesGrid(t *testing.T, s *Store, f *gridfile.File) {
	t.Helper()
	s.SetVerify(true)
	total := 0
	for _, v := range f.Buckets() {
		pts, _, err := s.ReadBucket(context.Background(), v.ID)
		if err != nil {
			t.Fatalf("bucket %d: %v", v.ID, err)
		}
		if len(pts) != v.Records {
			t.Fatalf("bucket %d: read %d records, grid has %d", v.ID, len(pts), v.Records)
		}
		total += len(pts)
		want := map[[2]float64]int{}
		f.ForEachRecordInBucket(v.ID, func(key []float64, _ []byte) {
			want[[2]float64{key[0], key[1]}]++
		})
		for _, p := range pts {
			k := [2]float64{p[0], p[1]}
			if want[k] == 0 {
				t.Fatalf("bucket %d: unexpected key %v", v.ID, p)
			}
			want[k]--
		}
		verifyReplicaIdentity(t, s, v.ID)
	}
	if total != f.Len() {
		t.Fatalf("store holds %d records, grid has %d", total, f.Len())
	}
}

// verifyReplicaIdentity reads every owner copy's raw pages and requires
// byte-identical content with valid CRCs.
func verifyReplicaIdentity(t *testing.T, s *Store, id int32) {
	t.Helper()
	pl, ok := s.Placement(id)
	if !ok {
		t.Fatalf("bucket %d has no placement", id)
	}
	pageBytes := s.Manifest().PageBytes
	var primary []byte
	for i, d := range pl.OwnerDisks {
		buf := make([]byte, pl.Pages*pageBytes)
		if _, err := s.files[d].ReadAt(buf, pl.OwnerPages[i]*int64(pageBytes)); err != nil {
			t.Fatalf("bucket %d copy on disk %d: %v", id, d, err)
		}
		for p := 0; p < pl.Pages; p++ {
			page := buf[p*pageBytes : (p+1)*pageBytes]
			if got, want := binary.LittleEndian.Uint32(page[8:]), pageChecksum(page); got != want {
				t.Fatalf("bucket %d copy on disk %d page %d: checksum %08x, want %08x", id, d, p, got, want)
			}
		}
		if i == 0 {
			primary = buf
			continue
		}
		if string(buf) != string(primary) {
			t.Fatalf("bucket %d: copy on disk %d differs from primary", id, d)
		}
	}
}

func TestWritableInsertSplitReadBack(t *testing.T) {
	dir, f, _ := buildReplicatedLayout(t, 4, 2)
	s, err := OpenWritable(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	grid := s.Grid()
	if grid == nil {
		t.Fatal("writable store has no grid")
	}

	buckets0 := grid.NumBuckets()
	for _, key := range randKeys(s.Domain(), 2000, 7) {
		if _, err := s.Insert(context.Background(), key); err != nil {
			t.Fatalf("insert %v: %v", key, err)
		}
	}
	wc := s.WriteCounters()
	if wc.Inserts != 2000 {
		t.Fatalf("inserts counter %d, want 2000", wc.Inserts)
	}
	if wc.BucketSplits == 0 || grid.NumBuckets() <= buckets0 {
		t.Fatalf("expected splits (counter %d, buckets %d -> %d)", wc.BucketSplits, buckets0, grid.NumBuckets())
	}
	if wc.JournalAppends != 2*2000 {
		t.Fatalf("journal appends %d, want %d (r=2)", wc.JournalAppends, 2*2000)
	}
	if f.Len()+2000 != grid.Len() {
		t.Fatalf("grid holds %d records, want %d", grid.Len(), f.Len()+2000)
	}
	verifyStoreMatchesGrid(t, s, grid)

	// Close checkpoints; a read-only reopen must see the mutated state.
	s.Close()
	ro, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	g2, err := OpenGrid(dir)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Len() != f.Len()+2000 {
		t.Fatalf("reopened grid holds %d records, want %d", g2.Len(), f.Len()+2000)
	}
	if ro.Manifest().CheckpointLSN == 0 {
		t.Fatal("checkpoint LSN not recorded")
	}
	verifyStoreMatchesGrid(t, ro, g2)
	// Checkpoint must have truncated the journals.
	for d := 0; d < ro.Disks(); d++ {
		st, err := os.Stat(filepath.Join(dir, JournalFileName(d)))
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() != 0 {
			t.Fatalf("journal %d holds %d bytes after checkpoint", d, st.Size())
		}
	}
}

func TestWritableDeleteAndMerge(t *testing.T) {
	dir, f, _ := buildReplicatedLayout(t, 4, 2)
	s, err := OpenWritable(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	grid := s.Grid()

	// Delete most of the dataset: forces buddy merges.
	var keys []geom.Point
	for _, v := range f.Buckets() {
		f.ForEachRecordInBucket(v.ID, func(key []float64, _ []byte) {
			keys = append(keys, append(geom.Point(nil), key...))
		})
	}
	removed := 0
	for i, key := range keys {
		if i%5 == 4 {
			continue // keep every fifth record
		}
		res, err := s.Delete(context.Background(), key)
		if err != nil {
			t.Fatalf("delete %v: %v", key, err)
		}
		if !res.Removed {
			t.Fatalf("delete %v: record not found", key)
		}
		removed++
	}
	if got := s.WriteCounters().Deletes; got != int64(removed) {
		t.Fatalf("deletes counter %d, want %d", got, removed)
	}
	if grid.Len() != f.Len()-removed {
		t.Fatalf("grid holds %d records, want %d", grid.Len(), f.Len()-removed)
	}
	if grid.NumBuckets() >= f.NumBuckets() {
		t.Fatalf("expected merges: %d buckets still %d", f.NumBuckets(), grid.NumBuckets())
	}
	verifyStoreMatchesGrid(t, s, grid)

	// Deleting a missing key is a clean no-op.
	res, err := s.Delete(context.Background(), geom.Point{-0.5, -0.5})
	if err == nil && res.Removed {
		t.Fatal("deleting an out-of-domain key removed something")
	}

	// After close + reopen the merged state round-trips.
	s.Close()
	ro, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	g2, err := OpenGrid(dir)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Len() != f.Len()-removed {
		t.Fatalf("reopened grid holds %d records, want %d", g2.Len(), f.Len()-removed)
	}
	verifyStoreMatchesGrid(t, ro, g2)
}

func TestReplayAfterAbandon(t *testing.T) {
	dir, f, _ := buildReplicatedLayout(t, 4, 2)
	s, err := OpenWritable(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.SetCheckpointEvery(0) // keep everything in the journals
	keys := randKeys(s.Domain(), 500, 11)
	for _, key := range keys {
		if _, err := s.Insert(context.Background(), key); err != nil {
			t.Fatal(err)
		}
	}
	s.CloseNoCheckpoint() // crash stand-in: manifest and grid.grd are stale

	// The stale on-disk grid must not see the inserts...
	g, err := OpenGrid(dir)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != f.Len() {
		t.Fatalf("stale grid holds %d records, want %d", g.Len(), f.Len())
	}

	// ...but replay must recover every acknowledged one.
	s2, err := OpenWritable(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.WriteCounters().JournalReplays; got != int64(len(keys)) {
		t.Fatalf("replayed %d ops, want %d", got, len(keys))
	}
	grid := s2.Grid()
	if grid.Len() != f.Len()+len(keys) {
		t.Fatalf("replayed grid holds %d records, want %d", grid.Len(), f.Len()+len(keys))
	}
	for _, key := range keys {
		if len(grid.Lookup(key)) == 0 {
			t.Fatalf("acknowledged insert %v lost after replay", key)
		}
	}
	verifyStoreMatchesGrid(t, s2, grid)

	// Replay checkpointed: a second reopen replays nothing.
	s2.Close()
	s3, err := OpenWritable(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if got := s3.WriteCounters().JournalReplays; got != 0 {
		t.Fatalf("second reopen replayed %d ops, want 0", got)
	}
	if s3.Grid().Len() != f.Len()+len(keys) {
		t.Fatalf("second reopen lost records: %d, want %d", s3.Grid().Len(), f.Len()+len(keys))
	}
}

func TestWritableRejectsLegacyLayout(t *testing.T) {
	dir, _, _ := buildReplicatedLayout(t, 4, 2)
	downgradeLayout(t, dir, "legacy")
	if _, err := OpenWritable(dir); err == nil {
		t.Fatal("legacy layout opened writable")
	}
}
