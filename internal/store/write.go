package store

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"pgridfile/internal/fault"
	"pgridfile/internal/geom"
	"pgridfile/internal/gridfile"
)

// The mutable store. OpenWritable loads a layout directory for serving AND
// mutation: Insert and Delete route through the grid file's split/merge
// machinery and persist the affected buckets to every replica copy, guarded
// by the per-disk write-ahead journal (journal.go). The write protocol is
//
//  1. locate the target bucket and its owner disks (grid translation);
//  2. append the operation to every owner disk's journal, fsyncing each —
//     only now is the operation committed (and acknowledgeable);
//  3. apply the operation to the in-memory grid file (splits, merges and
//     directory refinements happen here), holding the grid write lock so
//     concurrent readers never observe a half-mutated directory;
//  4. rewrite every dirty bucket's pages — to *fresh* extents appended at
//     the end of each owner's page file (shadow paging), never over live
//     pages, so a concurrent reader holding the old placement still reads
//     intact old bytes — then swap the placements.
//
// Data pages are not fsynced per operation; the journal is the durability
// story. A checkpoint (periodic, and on Close) fsyncs the page files,
// atomically rewrites manifest.json and grid.grd, and truncates the
// journals. Dead extents left behind by shadow rewrites are reclaimed only
// by a full layout rebuild — space amplification traded for never blocking
// readers.
//
// Failure semantics: a journal append failure aborts the operation before
// it is acknowledged (partially appended records are discarded by replay's
// all-owner-journals commit rule). A page-write failure after the journal
// committed does NOT un-acknowledge the operation — the stale copy is
// healed by read failover and the scrubber, checkpoints are withheld so the
// journals keep the redo, and replay rewrites every copy on the next open.

// DefaultCheckpointEvery is how many committed mutations a writable store
// absorbs before checkpointing on its own. SetCheckpointEvery overrides it;
// zero disables automatic checkpoints (Close and Checkpoint still flush).
const DefaultCheckpointEvery = 1024

// WriteCounters are the write path's monotonic counters, surfaced in the
// server's STATS verb and /metrics.
type WriteCounters struct {
	Inserts        int64 `json:"inserts"`         // acknowledged inserts
	Deletes        int64 `json:"deletes"`         // acknowledged deletes that removed a record
	JournalAppends int64 `json:"journal_appends"` // per-owner-journal record appends (fsynced)
	JournalReplays int64 `json:"journal_replays"` // journaled operations re-applied by OpenWritable
	BucketSplits   int64 `json:"bucket_splits"`   // bucket splits triggered by inserts
}

// errSimulatedCrash is returned by the crash test hook; the store refuses
// further writes once it fires, modelling a kill -9 at that exact point.
var errSimulatedCrash = errors.New("store: simulated crash")

// writer is the mutable-store state hanging off a Store opened with
// OpenWritable.
type writer struct {
	// mu serializes every mutation and checkpoint end-to-end. Readers
	// never take it.
	mu sync.Mutex

	// gridMu guards the in-memory grid file: queries translate under
	// RLock, the apply step of a mutation (grid mutation + page rewrite +
	// placement swap) runs under Lock. The slow part of a write — the
	// journal fsyncs — happens before this lock is taken, so readers are
	// blocked only for the in-memory apply and buffered page writes.
	gridMu sync.RWMutex
	grid   *gridfile.File

	journals   []*os.File
	walSites   []string // per-disk fault sites for journal appends
	writeSites []string // per-disk fault sites for page writes

	nextPage      []int64 // per-disk end-of-file page cursor (shadow allocation)
	nextLSN       uint64
	checkpointLSN uint64

	pendingOps      int // committed ops since the last checkpoint
	checkpointEvery int

	// failed records that some replica copy write (or data fsync) failed
	// since the last checkpoint; while set, checkpoints are withheld so
	// the journals keep the redo for the stale copies.
	failed bool
	// dead is set when the crash hook fires or a committed operation could
	// not be applied; every subsequent write is refused, forcing recovery
	// through replay.
	dead bool

	// crash, when non-nil, is consulted at every crash point on the write
	// path (before/after each journal fsync and each page write); returning
	// true simulates a kill -9 there. Test hook.
	crash func() bool

	inserts, deletes, appends, replays, splits atomic.Int64
}

// OpenWritable loads a layout directory for serving and mutation. It opens
// the page files read-write, loads the embedded grid file as the mutable
// coordinator state, replays any journaled operations that survived a crash,
// and checkpoints the replayed state. Only checksummed (format-2) layouts
// are writable.
func OpenWritable(dir string) (*Store, error) {
	s, err := open(dir, true)
	if err != nil {
		return nil, err
	}
	if s.manifest.PageFormat != pageFormatChecksum {
		s.Close()
		return nil, fmt.Errorf("store: layout page format %d is not writable (rebuild the layout to get checksummed pages)",
			s.manifest.PageFormat)
	}
	grid, err := OpenGrid(dir)
	if err != nil {
		s.Close()
		return nil, err
	}
	w := &writer{
		grid:            grid,
		checkpointEvery: DefaultCheckpointEvery,
		nextPage:        make([]int64, s.manifest.Disks),
		walSites:        make([]string, s.manifest.Disks),
		writeSites:      make([]string, s.manifest.Disks),
		checkpointLSN:   s.manifest.CheckpointLSN,
		nextLSN:         s.manifest.CheckpointLSN + 1,
		journals:        make([]*os.File, s.manifest.Disks),
	}
	for d := 0; d < s.manifest.Disks; d++ {
		w.walSites[d] = fault.StoreWALDiskSite(d)
		w.writeSites[d] = fault.StoreWriteDiskSite(d)
	}
	for _, pl := range s.manifest.Buckets {
		for i, d := range pl.OwnerDisks {
			if end := pl.OwnerPages[i] + int64(pl.Pages); end > w.nextPage[d] {
				w.nextPage[d] = end
			}
		}
	}
	for d := range w.journals {
		jh, err := os.OpenFile(filepath.Join(dir, JournalFileName(d)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			closeAll(w.journals)
			s.Close()
			return nil, err
		}
		w.journals[d] = jh
	}
	s.w = w
	if err := s.replay(); err != nil {
		s.CloseNoCheckpoint()
		return nil, fmt.Errorf("store: journal replay: %w", err)
	}
	return s, nil
}

// Writable reports whether the store was opened with OpenWritable.
func (s *Store) Writable() bool { return s.w != nil }

// Grid returns the mutable store's in-memory grid file (the coordinator's
// scales, directory and records), or nil for a read-only store. Callers
// translating queries against it must hold the grid read lock (RLockGrid)
// so mutations cannot rewrite the directory mid-translation.
func (s *Store) Grid() *gridfile.File {
	if s.w == nil {
		return nil
	}
	return s.w.grid
}

// RLockGrid takes the grid translation read lock. A no-op on read-only
// stores, whose grid never changes.
func (s *Store) RLockGrid() {
	if s.w != nil {
		s.w.gridMu.RLock()
	}
}

// RUnlockGrid releases RLockGrid.
func (s *Store) RUnlockGrid() {
	if s.w != nil {
		s.w.gridMu.RUnlock()
	}
}

// SetCheckpointEvery sets how many committed mutations may accumulate
// before the store checkpoints on its own; 0 disables automatic
// checkpoints. Call before handing the store to concurrent writers.
func (s *Store) SetCheckpointEvery(n int) {
	if s.w != nil {
		s.w.checkpointEvery = n
	}
}

// WriteCounters returns the write path's counters (zero for a read-only
// store).
func (s *Store) WriteCounters() WriteCounters {
	w := s.w
	if w == nil {
		return WriteCounters{}
	}
	return WriteCounters{
		Inserts:        w.inserts.Load(),
		Deletes:        w.deletes.Load(),
		JournalAppends: w.appends.Load(),
		JournalReplays: w.replays.Load(),
		BucketSplits:   w.splits.Load(),
	}
}

// CloseNoCheckpoint releases every file handle WITHOUT checkpointing, so
// the journals keep every operation since the last checkpoint. This is the
// crash stand-in the recovery tests and the ingest smoke gate reopen from.
func (s *Store) CloseNoCheckpoint() {
	if w := s.w; w != nil {
		closeAll(w.journals)
	}
	closeAll(s.files)
}

// crashPoint fires the crash hook, if armed. Once it fires the store is
// dead: every later write is refused.
func (w *writer) crashPoint() error {
	if w.crash != nil && w.crash() {
		w.dead = true
		return errSimulatedCrash
	}
	return nil
}

// Insert adds one record to the layout: journaled to every owner disk of
// the target bucket, applied through the grid file's split machinery, and
// persisted to every replica copy via shadow page rewrites. On success the
// result lists the buckets whose cached contents are now stale (Dirty) —
// the caller owns invalidating any cache layered above the store. ctx
// bounds injected stalls only; the journal fsyncs themselves are not
// cancellable (aborting between owner journals would leave a committed-on-
// some-disks record that replay must then disambiguate — simpler to finish).
func (s *Store) Insert(ctx context.Context, key geom.Point) (gridfile.InsertResult, error) {
	w := s.w
	if w == nil {
		return gridfile.InsertResult{}, errors.New("store: not opened writable")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.dead {
		return gridfile.InsertResult{}, errSimulatedCrash
	}
	id, err := w.grid.LocateBucket(key)
	if err != nil {
		return gridfile.InsertResult{}, err
	}
	owners := s.ownerDisks(id)
	if owners == nil {
		return gridfile.InsertResult{}, fmt.Errorf("store: bucket %d has no placement", id)
	}
	lsn := w.nextLSN
	w.nextLSN++
	if err := s.journalAppend(ctx, owners, lsn, journalOpInsert, key); err != nil {
		return gridfile.InsertResult{}, err
	}

	// Committed. Apply under the grid write lock: directory mutation, page
	// rewrites to fresh extents, and placement swaps become visible to
	// readers atomically when the lock is released.
	w.gridMu.Lock()
	res, err := w.grid.InsertTracked(gridfile.Record{Key: key})
	if err == nil {
		for _, nid := range res.Created {
			s.addPlacementLocked(nid, owners)
		}
		for _, did := range res.Dirty() {
			if err = s.rewriteBucket(ctx, did); err != nil {
				break
			}
		}
	}
	w.gridMu.Unlock()
	if err != nil {
		// A committed operation failed to apply (simulated crash, or an
		// impossibility): refuse further writes, recover through replay.
		w.dead = true
		return gridfile.InsertResult{}, err
	}
	w.inserts.Add(1)
	w.splits.Add(int64(res.Splits))
	s.noteCommitted()
	return res, nil
}

// Delete removes one record whose key equals key exactly, with the same
// journal/apply/rewrite protocol as Insert. A key with no matching record
// is a no-op (Removed=false) and is not journaled.
func (s *Store) Delete(ctx context.Context, key geom.Point) (gridfile.DeleteResult, error) {
	w := s.w
	if w == nil {
		return gridfile.DeleteResult{}, errors.New("store: not opened writable")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.dead {
		return gridfile.DeleteResult{}, errSimulatedCrash
	}
	id, err := w.grid.LocateBucket(key)
	if err != nil {
		return gridfile.DeleteResult{}, err
	}
	if len(w.grid.Lookup(key)) == 0 {
		return gridfile.DeleteResult{}, nil
	}
	owners := s.ownerDisks(id)
	if owners == nil {
		return gridfile.DeleteResult{}, fmt.Errorf("store: bucket %d has no placement", id)
	}
	lsn := w.nextLSN
	w.nextLSN++
	if err := s.journalAppend(ctx, owners, lsn, journalOpDelete, key); err != nil {
		return gridfile.DeleteResult{}, err
	}

	w.gridMu.Lock()
	res := w.grid.DeleteTracked(key)
	for _, did := range res.Dirty() {
		if err = s.rewriteBucket(ctx, did); err != nil {
			break
		}
	}
	w.gridMu.Unlock()
	if err != nil {
		w.dead = true
		return gridfile.DeleteResult{}, err
	}
	// A merged-away bucket's placement is kept as a tombstone (its old
	// extent is still intact, so a reader that translated before the merge
	// reads a consistent pre-delete copy); checkpoints rebuild the manifest
	// from the grid's live buckets, so tombstones never persist.
	if res.Removed {
		w.deletes.Add(1)
		s.noteCommitted()
	}
	return res, nil
}

// noteCommitted bumps the ops-since-checkpoint counter and runs an
// automatic checkpoint when the threshold is reached (best-effort: a
// withheld checkpoint just means the journals keep growing until the
// condition clears or the store restarts).
func (s *Store) noteCommitted() {
	w := s.w
	w.pendingOps++
	if w.checkpointEvery > 0 && w.pendingOps >= w.checkpointEvery {
		_ = s.checkpointLocked(false)
	}
}

// ownerDisks returns a copy-safe owner list for one bucket (nil if the
// bucket has no placement).
func (s *Store) ownerDisks(id int32) []int {
	pl, ok := s.lookup(id)
	if !ok {
		return nil
	}
	return pl.OwnerDisks
}

// addPlacementLocked registers a placement stub for a split-born bucket; the
// following rewriteBucket assigns its pages. Caller holds w.mu and gridMu.
func (s *Store) addPlacementLocked(id int32, owners []int) {
	pl := Placement{
		ID:         id,
		Disk:       owners[0],
		OwnerDisks: append([]int(nil), owners...),
		OwnerPages: make([]int64, len(owners)),
	}
	s.pmu.Lock()
	s.byID[id] = pl
	s.pmu.Unlock()
}

// journalAppend appends one operation record to every owner disk's journal,
// fsyncing each append. The operation is committed once every append has
// synced; any failure aborts the (unacknowledged) operation, and replay's
// all-owner-journals rule discards the partial appends.
func (s *Store) journalAppend(ctx context.Context, owners []int, lsn uint64, op uint8, key geom.Point) error {
	w := s.w
	rec := appendJournalRec(make([]byte, 0, journalRecSize(len(key))), lsn, op, key)
	for _, d := range owners {
		if s.faults.Enabled() {
			inj, hit := s.faults.Eval(fault.SiteStoreWAL)
			if inj2, hit2 := s.faults.Eval(w.walSites[d]); hit2 {
				hit = true
				inj.Delay += inj2.Delay
				if inj.Err == nil {
					inj.Err = inj2.Err
				}
			}
			if hit {
				if inj.Delay > 0 {
					if err := fault.Sleep(ctx, inj.Delay); err != nil {
						return err
					}
				}
				if inj.Err != nil {
					return fmt.Errorf("store: journal append disk %d: %w", d, inj.Err)
				}
			}
		}
		if err := w.crashPoint(); err != nil {
			return err
		}
		if _, err := w.journals[d].Write(rec); err != nil {
			return fmt.Errorf("store: journal append disk %d: %w", d, err)
		}
		if err := w.journals[d].Sync(); err != nil {
			return fmt.Errorf("store: journal fsync disk %d: %w", d, err)
		}
		w.appends.Add(1)
		if err := w.crashPoint(); err != nil {
			return err
		}
	}
	return nil
}

// rewriteBucket re-encodes one bucket's records from the grid file and
// writes them to fresh extents on every owner disk, then swaps the
// placement. Page-write failures on individual copies are absorbed (the
// journal keeps the redo and checkpoints are withheld); only a simulated
// crash propagates. Caller holds w.mu and, online, gridMu.
func (s *Store) rewriteBucket(ctx context.Context, id int32) error {
	w := s.w
	pl, ok := s.lookup(id)
	if !ok {
		return fmt.Errorf("store: rewrite of unplaced bucket %d", id)
	}
	dims := s.manifest.Dims
	pageBytes := s.manifest.PageBytes
	var keys []float64
	w.grid.ForEachRecordInBucket(id, func(key []float64, _ []byte) {
		keys = append(keys, key...)
	})
	nrec := len(keys) / dims
	perPage := recordsPerPage(pageBytes, dims, pageHeaderV2)
	npages := (nrec + perPage - 1) / perPage
	if npages == 0 {
		npages = 1
	}

	newPages := make([]int64, len(pl.OwnerDisks))
	for i, d := range pl.OwnerDisks {
		newPages[i] = w.nextPage[d]
		w.nextPage[d] += int64(npages)
	}

	page := getBuf(pageBytes)
	defer putBuf(page)
	skip := make([]bool, len(pl.OwnerDisks))
	for p := 0; p < npages; p++ {
		for i := range page {
			page[i] = 0
		}
		start := p * perPage
		end := start + perPage
		if end > nrec {
			end = nrec
		}
		binary.LittleEndian.PutUint32(page[0:], uint32(id))
		binary.LittleEndian.PutUint32(page[4:], uint32(end-start))
		off := pageHeaderV2
		for _, k := range keys[start*dims : end*dims] {
			binary.LittleEndian.PutUint64(page[off:], floatBits(k))
			off += 8
		}
		binary.LittleEndian.PutUint32(page[8:], pageChecksum(page))
		for i, d := range pl.OwnerDisks {
			if skip[i] {
				continue
			}
			err := s.writePage(ctx, d, page, (newPages[i]+int64(p))*int64(pageBytes))
			if errors.Is(err, errSimulatedCrash) {
				return err
			}
			if err != nil {
				// This copy is stale; leave the rest of it unwritten,
				// withhold checkpoints so the journal keeps its redo.
				skip[i] = true
				w.failed = true
			}
		}
	}

	pl.OwnerPages = newPages
	pl.Disk = pl.OwnerDisks[0]
	pl.Page = newPages[0]
	pl.Pages = npages
	pl.Recs = nrec
	s.pmu.Lock()
	s.byID[id] = pl
	s.pmu.Unlock()
	return nil
}

// writePage performs one positioned page write, consulting the failpoint
// registry (fault.SiteStoreWrite and the per-disk site) and the crash hook.
func (s *Store) writePage(ctx context.Context, disk int, buf []byte, off int64) error {
	w := s.w
	if s.faults.Enabled() {
		inj, hit := s.faults.Eval(fault.SiteStoreWrite)
		if inj2, hit2 := s.faults.Eval(w.writeSites[disk]); hit2 {
			hit = true
			inj.Delay += inj2.Delay
			if inj.Err == nil {
				inj.Err = inj2.Err
			}
		}
		if hit {
			if inj.Delay > 0 {
				if err := fault.Sleep(ctx, inj.Delay); err != nil {
					return err
				}
			}
			if inj.Err != nil {
				return inj.Err
			}
		}
	}
	if err := w.crashPoint(); err != nil {
		return err
	}
	if _, err := s.files[disk].WriteAt(buf, off); err != nil {
		return err
	}
	return w.crashPoint()
}

// replay re-applies journaled operations after a crash. An operation is
// committed — and therefore replayed — iff a valid record for its LSN is
// present in the journal of EVERY disk owning its target bucket (located
// against the deterministically replayed grid state). Anything less was
// never acknowledged and is discarded. Replay finishes with a forced
// checkpoint, so a successfully opened store is always clean.
func (s *Store) replay() error {
	w := s.w
	dims := s.manifest.Dims
	type pendOp struct {
		rec  journalRec
		have []bool
		bad  bool
	}
	pending := make(map[uint64]*pendOp)
	journalBytes := false
	for d := 0; d < s.manifest.Disks; d++ {
		recs, err := readJournal(filepath.Join(s.dir, JournalFileName(d)), dims)
		if err != nil {
			return err
		}
		if len(recs) > 0 {
			journalBytes = true
		}
		for _, r := range recs {
			if r.lsn >= w.nextLSN {
				w.nextLSN = r.lsn + 1
			}
			if r.lsn <= w.checkpointLSN {
				continue // already captured by the checkpoint
			}
			p := pending[r.lsn]
			if p == nil {
				p = &pendOp{rec: r, have: make([]bool, s.manifest.Disks)}
				pending[r.lsn] = p
			} else if p.rec.op != r.op || !keysEqual(p.rec.key, r.key) {
				p.bad = true // same LSN, different payloads: never committed
			}
			p.have[d] = true
		}
	}
	if len(pending) == 0 {
		if journalBytes {
			// Stale journals from a crash mid-checkpoint: truncate them.
			return s.checkpointLocked(true)
		}
		return nil
	}

	lsns := make([]uint64, 0, len(pending))
	for lsn := range pending {
		lsns = append(lsns, lsn)
	}
	sort.Slice(lsns, func(i, j int) bool { return lsns[i] < lsns[j] })

	dirty := make(map[int32]bool)
	dead := make(map[int32]bool)
	for _, lsn := range lsns {
		p := pending[lsn]
		if p.bad {
			continue
		}
		key := geom.Point(p.rec.key)
		id, err := w.grid.LocateBucket(key)
		if err != nil {
			continue // key no longer plausible: cannot have been committed
		}
		pl, ok := s.byID[id]
		if !ok {
			continue
		}
		committed := true
		for _, d := range pl.OwnerDisks {
			if !p.have[d] {
				committed = false
				break
			}
		}
		if !committed {
			continue
		}
		switch p.rec.op {
		case journalOpInsert:
			res, err := w.grid.InsertTracked(gridfile.Record{Key: key})
			if err != nil {
				continue
			}
			for _, nid := range res.Created {
				s.addPlacementLocked(nid, pl.OwnerDisks)
				dirty[nid] = true
			}
			dirty[res.Target] = true
			w.splits.Add(int64(res.Splits))
		case journalOpDelete:
			res := w.grid.DeleteTracked(key)
			if !res.Removed {
				continue
			}
			for _, did := range res.Dirty() {
				dirty[did] = true
			}
			if res.Merged {
				dead[res.Dead] = true
			}
		}
		w.replays.Add(1)
		w.pendingOps++
	}

	for id := range dead {
		delete(dirty, id)
		s.pmu.Lock()
		delete(s.byID, id)
		s.pmu.Unlock()
	}
	ids := make([]int32, 0, len(dirty))
	for id := range dirty {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if err := s.rewriteBucket(context.Background(), id); err != nil {
			return err
		}
	}
	return s.checkpointLocked(true)
}

// Checkpoint makes every committed mutation durable in the data files,
// atomically rewrites manifest.json and grid.grd, and truncates the
// journals. It is withheld (with an error) while any replica copy write has
// failed since the last checkpoint — truncating the journals then would
// drop the only redo for the stale copies.
func (s *Store) Checkpoint() error {
	w := s.w
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return s.checkpointLocked(true)
}

// checkpointLocked is Checkpoint with w.mu held; force checkpoints even
// when no operations are pending (used by replay to truncate stale
// journals and refresh the manifest).
func (s *Store) checkpointLocked(force bool) error {
	w := s.w
	if w.pendingOps == 0 && !force {
		return nil
	}
	if w.failed {
		return errors.New("store: checkpoint withheld: a replica copy write failed since the last checkpoint (journals retained for replay)")
	}
	for d, fh := range s.files {
		if err := fh.Sync(); err != nil {
			w.failed = true
			return fmt.Errorf("store: checkpoint fsync disk %d: %w", d, err)
		}
	}

	// grid.grd: the coordinator state every future open replays from.
	if err := s.atomicWriteGrid(); err != nil {
		return err
	}

	// manifest.json: placements for exactly the grid's live buckets
	// (merged-away tombstones drop out here).
	views := w.grid.Buckets()
	bks := make([]Placement, 0, len(views))
	for _, v := range views {
		pl, ok := s.byID[v.ID]
		if !ok {
			return fmt.Errorf("store: checkpoint: live bucket %d has no placement", v.ID)
		}
		bks = append(bks, pl)
	}
	m := s.manifest
	m.Buckets = bks
	m.CheckpointLSN = w.nextLSN - 1
	layout, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return err
	}
	env, err := json.MarshalIndent(manifestVersion{
		Version: manifestVersionCurrent,
		Layout:  layout,
	}, "", "  ")
	if err != nil {
		return err
	}
	if err := atomicWriteFile(s.dir, "manifest.json", env); err != nil {
		return err
	}
	s.pmu.Lock()
	s.manifest = m
	s.pmu.Unlock()

	for d, j := range w.journals {
		if err := j.Truncate(0); err != nil {
			return fmt.Errorf("store: truncating journal %d: %w", d, err)
		}
		if err := j.Sync(); err != nil {
			return fmt.Errorf("store: syncing journal %d: %w", d, err)
		}
	}
	w.checkpointLSN = m.CheckpointLSN
	w.pendingOps = 0
	return nil
}

// atomicWriteGrid rewrites the layout's embedded grid file via tmp+rename.
func (s *Store) atomicWriteGrid() error {
	tmp := filepath.Join(s.dir, "."+gridFileName+".tmp")
	fh, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := s.w.grid.WriteTo(fh); err != nil {
		fh.Close()
		os.Remove(tmp)
		return err
	}
	if err := fh.Sync(); err != nil {
		fh.Close()
		os.Remove(tmp)
		return err
	}
	if err := fh.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, gridFileName)); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(s.dir)
}

// atomicWriteFile writes name under dir via a synced temp file and rename,
// then syncs the directory so the rename itself is durable.
func atomicWriteFile(dir, name string, data []byte) error {
	tmp := filepath.Join(dir, "."+name+".tmp")
	fh, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := fh.Write(data); err != nil {
		fh.Close()
		os.Remove(tmp)
		return err
	}
	if err := fh.Sync(); err != nil {
		fh.Close()
		os.Remove(tmp)
		return err
	}
	if err := fh.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory, making renames within it durable.
func syncDir(dir string) error {
	dh, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = dh.Sync()
	if cerr := dh.Close(); err == nil {
		err = cerr
	}
	return err
}

func keysEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if floatBits(a[i]) != floatBits(b[i]) {
			return false
		}
	}
	return true
}
