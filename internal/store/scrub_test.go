package store

import (
	"context"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
	"time"

	"pgridfile/internal/core"
	"pgridfile/internal/replica"
	"pgridfile/internal/synth"
)

// scrubAllocators is one of each allocator family, mirroring the failure
// matrices elsewhere: the three weight-based engines plus one index-based
// scheme per construction style.
func scrubAllocators(t *testing.T) map[string]core.Allocator {
	t.Helper()
	m := map[string]core.Allocator{
		"minimax": &core.Minimax{Seed: 1},
		"ssp":     &core.SSP{Seed: 1},
		"mst":     &core.MST{Seed: 1},
	}
	for _, name := range []struct{ scheme, resolver string }{
		{"DM", "D"}, {"FX", "R"}, {"HCAM", "F"},
	} {
		a, err := core.NewIndexBased(name.scheme, name.resolver, 1)
		if err != nil {
			t.Fatalf("%s/%s: %v", name.scheme, name.resolver, err)
		}
		m[name.scheme+"/"+name.resolver] = a
	}
	return m
}

// pageCopy addresses one physical copy of one bucket page on disk.
type pageCopy struct {
	bucket int32
	disk   int
	page   int64 // absolute page index within the disk file
}

// layoutPageCopies enumerates every physical page copy in a manifest.
func layoutPageCopies(m Manifest) []pageCopy {
	var out []pageCopy
	for _, pl := range m.Buckets {
		owners, pages := pl.OwnerDisks, pl.OwnerPages
		if len(owners) == 0 {
			owners, pages = []int{pl.Disk}, []int64{pl.Page}
		}
		for i, d := range owners {
			for p := 0; p < pl.Pages; p++ {
				out = append(out, pageCopy{bucket: pl.ID, disk: d, page: pages[i] + int64(p)})
			}
		}
	}
	return out
}

// TestScrubRepairsEveryPage is the scrubber's acceptance property: for every
// allocator family, corrupt each physical page copy of an r=2 layout in turn
// — alternating a mid-page bit flip with a torn (tail-zeroed) write — and
// the scrubber must detect exactly that copy, repair it from the intact
// replica, and leave every disk file byte-identical to its pristine state,
// after which every bucket reads back clean under full checksum
// verification.
func TestScrubRepairsEveryPage(t *testing.T) {
	const disks, r, pageBytes = 4, 2, 1024
	for name, alloc := range scrubAllocators(t) {
		t.Run(name, func(t *testing.T) {
			f, err := synth.Uniform2D(300, 3).Build()
			if err != nil {
				t.Fatal(err)
			}
			g := core.FromGridFile(f)
			a, err := alloc.Decluster(g, disks)
			if err != nil {
				t.Fatal(err)
			}
			rm, err := (&replica.Placer{Replicas: r}).Place(g, a)
			if err != nil {
				t.Fatal(err)
			}
			dir := t.TempDir()
			m, err := WriteReplicated(dir, f, rm, pageBytes)
			if err != nil {
				t.Fatal(err)
			}
			pristine := make(map[int][]byte, disks)
			for d := 0; d < disks; d++ {
				data, err := os.ReadFile(filepath.Join(dir, DiskFileName(d)))
				if err != nil {
					t.Fatal(err)
				}
				pristine[d] = data
			}
			s, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			s.SetVerify(true)

			copies := layoutPageCopies(*m)
			if len(copies) == 0 {
				t.Fatal("layout has no pages")
			}
			total := int64(len(copies))
			ctx := context.Background()
			for i, pc := range copies {
				corruptPage(t, dir, pc, pageBytes, i%2 == 0)
				st, err := s.Scrub(ctx, 0)
				if err != nil {
					t.Fatalf("page copy %v: scrub: %v", pc, err)
				}
				if st.Pages != total {
					t.Fatalf("page copy %v: scrub verified %d copies, want %d", pc, st.Pages, total)
				}
				if st.Corrupt != 1 || st.Repaired != 1 {
					t.Fatalf("page copy %v: corrupt=%d repaired=%d, want 1/1", pc, st.Corrupt, st.Repaired)
				}
				for d := 0; d < disks; d++ {
					got, err := os.ReadFile(filepath.Join(dir, DiskFileName(d)))
					if err != nil {
						t.Fatal(err)
					}
					if string(got) != string(pristine[d]) {
						t.Fatalf("page copy %v: disk %d not byte-identical after repair", pc, d)
					}
				}
				if _, _, err := s.ReadBucket(ctx, pc.bucket); err != nil {
					t.Fatalf("page copy %v: verified read after repair: %v", pc, err)
				}
			}

			// A clean pass over the healed layout finds nothing.
			st, err := s.Scrub(ctx, 0)
			if err != nil {
				t.Fatal(err)
			}
			if st.Corrupt != 0 || st.Repaired != 0 {
				t.Fatalf("clean scrub reported corrupt=%d repaired=%d", st.Corrupt, st.Repaired)
			}
		})
	}
}

// corruptPage damages one physical page copy in place: a one-byte bit flip
// mid-page, or a torn write that zeroes the page's tail.
func corruptPage(t *testing.T, dir string, pc pageCopy, pageBytes int, flip bool) {
	t.Helper()
	fh, err := os.OpenFile(filepath.Join(dir, DiskFileName(pc.disk)), os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer fh.Close()
	off := pc.page * int64(pageBytes)
	if flip {
		var b [1]byte
		if _, err := fh.ReadAt(b[:], off+int64(pageBytes)/2); err != nil {
			t.Fatal(err)
		}
		b[0] ^= 0x40
		if _, err := fh.WriteAt(b[:], off+int64(pageBytes)/2); err != nil {
			t.Fatal(err)
		}
	} else {
		// Torn write: the page's tail holds stale garbage. XOR rather than
		// zero-fill so the damage is guaranteed even in zero-padded tails.
		tail := make([]byte, pageBytes/3)
		if _, err := fh.ReadAt(tail, off+int64(pageBytes-len(tail))); err != nil {
			t.Fatal(err)
		}
		for i := range tail {
			tail[i] ^= 0xA5
		}
		if _, err := fh.WriteAt(tail, off+int64(pageBytes-len(tail))); err != nil {
			t.Fatal(err)
		}
	}
}

// TestScrubWithoutReplicaDetectsButCannotRepair pins r=1 behavior: the
// scrubber still finds the corruption (and keeps finding it) but has no
// intact sibling to heal from, so the damage is counted, not hidden.
func TestScrubWithoutReplicaDetectsButCannotRepair(t *testing.T) {
	dir, f, _ := buildLayout(t, 2, 1024)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	pl, ok := s.Placement(f.Buckets()[0].ID)
	if !ok {
		t.Fatal("placement missing")
	}
	corruptPage(t, dir, pageCopy{bucket: pl.ID, disk: pl.Disk, page: pl.Page}, 1024, true)
	for pass := 0; pass < 2; pass++ {
		st, err := s.Scrub(context.Background(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if st.Corrupt != 1 || st.Repaired != 0 {
			t.Fatalf("pass %d: corrupt=%d repaired=%d, want 1/0", pass, st.Corrupt, st.Repaired)
		}
	}
}

// TestScrubLegacyLayoutRefused pins that a checksum-free layout cannot be
// scrubbed: there is nothing trustworthy to verify against.
func TestScrubLegacyLayoutRefused(t *testing.T) {
	dir, _, _ := buildLayout(t, 2, 4096)
	downgradeLayout(t, dir, "flat")
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Scrub(context.Background(), 0); err == nil {
		t.Fatal("scrub of a checksum-free layout succeeded")
	}
}

// TestScrubPauseHonorsContext pins the low-priority throttle: a scrub with
// a between-bucket pause stops promptly when its context is cancelled.
func TestScrubPauseHonorsContext(t *testing.T) {
	dir, _, _ := buildLayout(t, 2, 1024)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Scrub(ctx, time.Hour); err == nil {
		t.Fatal("cancelled scrub ran to completion")
	}
}

// errAfterCtx is a context whose Err() starts reporting Canceled after the
// first n calls — a deterministic stand-in for "the caller cancelled midway
// through the pass" without racing a timer against the scrubber.
type errAfterCtx struct {
	context.Context
	calls, n int
}

func (c *errAfterCtx) Err() error {
	c.calls++
	if c.calls > c.n {
		return context.Canceled
	}
	return nil
}

// TestScrubCancelledPassSyncsRepairs pins the durability fix: a pass that
// exits early (here: cancellation after the first bucket) must still fsync
// the repairs it already wrote — the sync runs in a deferred block on every
// exit path, not only at the natural end of the pass. The test corrupts one
// copy in the first bucket, cancels before the second, and requires the
// repair to be both counted and intact on disk afterwards.
func TestScrubCancelledPassSyncsRepairs(t *testing.T) {
	dir, _, _ := buildReplicatedLayout(t, 4, 2)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	m := s.Manifest()
	copies := layoutPageCopies(m)
	// Corrupt one copy of the lowest-id bucket (scrubbed first).
	var target pageCopy
	for _, c := range copies {
		if c.bucket == copies[0].bucket {
			target = c
			break
		}
	}
	path := filepath.Join(dir, DiskFileName(target.disk))
	fh, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	off := target.page*int64(m.PageBytes) + 100
	if _, err := fh.WriteAt([]byte{0xAB}, off); err != nil {
		t.Fatal(err)
	}
	fh.Close()

	ctx := &errAfterCtx{Context: context.Background(), n: 1}
	st, serr := s.Scrub(ctx, 0)
	if serr == nil {
		t.Fatal("cancelled pass ran to completion")
	}
	if st.Corrupt != 1 || st.Repaired != 1 {
		t.Fatalf("partial pass: corrupt=%d repaired=%d, want 1/1", st.Corrupt, st.Repaired)
	}
	// The repair must be on disk — reread through a fresh handle.
	buf := make([]byte, m.PageBytes)
	fh, err = os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fh.Close()
	if _, err := fh.ReadAt(buf, target.page*int64(m.PageBytes)); err != nil {
		t.Fatal(err)
	}
	if got, want := binary.LittleEndian.Uint32(buf[8:]), pageChecksum(buf); got != want {
		t.Fatalf("repaired page checksum %08x, want %08x — repair lost on early exit", got, want)
	}
}

// TestScrubHoldsLoadForBucketScan pins the steering fix: while a bucket is
// being scrubbed, EVERY owner disk of that bucket must carry scrub load
// simultaneously (so PickOwner steers replica reads elsewhere for the whole
// scan). The old code registered load only inside each individual pread, so
// at most one disk ever showed load at a time; sampling the load counters
// during an r=2 scrub must now observe >= 2 loaded disks at once.
func TestScrubHoldsLoadForBucketScan(t *testing.T) {
	dir, _, _ := buildReplicatedLayout(t, 4, 2)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	stop := make(chan struct{})
	scrubErr := make(chan error, 1)
	go func() {
		defer close(scrubErr)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := s.Scrub(context.Background(), 0); err != nil {
				scrubErr <- err
				return
			}
		}
	}()

	deadline := time.Now().Add(10 * time.Second)
	seen := false
	for !seen && time.Now().Before(deadline) {
		loaded := 0
		for d := range s.loads {
			if s.loads[d].Load() > 0 {
				loaded++
			}
		}
		seen = loaded >= 2
	}
	close(stop)
	if err := <-scrubErr; err != nil {
		t.Fatal(err)
	}
	if !seen {
		t.Fatal("scrub never held load on both owner disks of a bucket simultaneously")
	}
}
