package store

import (
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"pgridfile/internal/core"
	"pgridfile/internal/geom"
	"pgridfile/internal/gridfile"
	"pgridfile/internal/replica"
	"pgridfile/internal/synth"
)

// buildCrashLayout lays out a small uniform dataset with the given allocator
// at replication r, sized so buckets span multiple pages and inserts split.
func buildCrashLayout(t *testing.T, alloc core.Allocator, disks, r int) (string, *gridfile.File) {
	t.Helper()
	f, err := synth.Uniform2D(300, 3).Build()
	if err != nil {
		t.Fatal(err)
	}
	g := core.FromGridFile(f)
	a, err := alloc.Decluster(g, disks)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := (&replica.Placer{Replicas: r}).Place(g, a)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := WriteReplicated(dir, f, rm, 1024); err != nil {
		t.Fatal(err)
	}
	return dir, f
}

// copyLayout clones a (flat) layout directory so each crash trial starts
// from the identical on-disk state.
func copyLayout(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		in, err := os.Open(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out, err := os.Create(filepath.Join(dst, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(out, in); err != nil {
			t.Fatal(err)
		}
		in.Close()
		if err := out.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// crashOp is one step of the mutation sequence driven against the store.
type crashOp struct {
	del bool
	key geom.Point
}

// crashOps builds the trial sequence: a run of inserts with fresh keys
// followed by deletes of alternating inserted keys, so recovery is checked
// for both op types and for delete-after-insert interleavings.
func crashOps(dom geom.Rect) []crashOp {
	keys := randKeys(dom, 8, 33)
	ops := make([]crashOp, 0, len(keys)+len(keys)/2)
	for _, k := range keys {
		ops = append(ops, crashOp{key: k})
	}
	for i := 1; i < len(keys); i += 2 {
		ops = append(ops, crashOp{del: true, key: keys[i]})
	}
	return ops
}

// applyUntilCrash runs the sequence against an open writable store whose
// crash hook is already armed. It returns the index of the op that observed
// the simulated crash (len(ops) if none did).
func applyUntilCrash(t *testing.T, s *Store, ops []crashOp) int {
	t.Helper()
	for i, op := range ops {
		var err error
		if op.del {
			_, err = s.Delete(context.Background(), op.key)
		} else {
			_, err = s.Insert(context.Background(), op.key)
		}
		if err != nil {
			if !errors.Is(err, errSimulatedCrash) {
				t.Fatalf("op %d failed with a non-crash error: %v", i, err)
			}
			return i
		}
	}
	return len(ops)
}

// TestCrashRecoveryAtEveryFailpoint is the recovery property test: for a
// matrix of allocator families and replication factors, the write path is
// killed at EVERY crash point — before/after each per-disk journal fsync and
// before/after each replica page write — and the store reopened. The
// property: every acknowledged operation is durable, no never-attempted
// operation appears, the single in-flight op is either fully applied or
// fully absent (never half), and every bucket's replica copies come back
// checksum-valid and byte-identical.
func TestCrashRecoveryAtEveryFailpoint(t *testing.T) {
	allocs := scrubAllocators(t)
	if testing.Short() {
		// The full matrix is ~12 configs x ~200 crash trials; -short keeps
		// one weight-based and one index-based family.
		short := map[string]core.Allocator{"minimax": allocs["minimax"], "DM/D": allocs["DM/D"]}
		allocs = short
	}
	for name, alloc := range allocs {
		for _, r := range []int{1, 2} {
			t.Run(name+"/r="+string(rune('0'+r)), func(t *testing.T) {
				t.Parallel()
				testCrashRecovery(t, alloc, r)
			})
		}
	}
}

func testCrashRecovery(t *testing.T, alloc core.Allocator, r int) {
	const disks = 3
	base, f := buildCrashLayout(t, alloc, disks, r)
	ops := crashOps(f.Domain())

	// Dry run: count the crash points the full sequence passes through.
	total := 0
	{
		dir := copyLayout(t, base)
		s, err := OpenWritable(dir)
		if err != nil {
			t.Fatal(err)
		}
		s.SetCheckpointEvery(0)
		s.w.crash = func() bool { total++; return false }
		if got := applyUntilCrash(t, s, ops); got != len(ops) {
			t.Fatalf("dry run crashed at op %d", got)
		}
		s.Close()
	}
	if total == 0 {
		t.Fatal("no crash points traversed")
	}

	for k := 1; k <= total; k++ {
		dir := copyLayout(t, base)
		s, err := OpenWritable(dir)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		s.SetCheckpointEvery(0)
		calls := 0
		s.w.crash = func() bool { calls++; return calls == k }
		crashed := applyUntilCrash(t, s, ops)
		if crashed == len(ops) {
			t.Fatalf("k=%d: hook never fired (%d calls)", k, calls)
		}
		s.CloseNoCheckpoint() // kill -9: no checkpoint, manifest+grid stale

		// Recovery: reopen replays the journals.
		s2, err := OpenWritable(dir)
		if err != nil {
			t.Fatalf("k=%d: recovery failed: %v", k, err)
		}
		grid := s2.Grid()

		// Expected visibility per key. Ops before `crashed` were acked; the
		// op at `crashed` is in flight (either outcome is legal, but never a
		// torn half-state — the full-store verification below catches those);
		// ops after were never attempted.
		for i, op := range ops {
			if i >= crashed {
				break
			}
			// Was this key's final acked state inserted or deleted?
			inserted := false
			ambiguous := false
			for j, other := range ops {
				if !samePoint(other.key, op.key) {
					continue
				}
				switch {
				case j < crashed:
					inserted = !other.del
				case j == crashed:
					ambiguous = true // in-flight op targets this key
				}
			}
			if ambiguous {
				continue
			}
			got := len(grid.Lookup(op.key))
			if inserted && got == 0 {
				t.Fatalf("k=%d: acked insert %v lost after recovery", k, op.key)
			}
			if !inserted && got != 0 {
				t.Fatalf("k=%d: acked delete of %v undone after recovery", k, op.key)
			}
		}
		if crashed < len(ops) {
			// The in-flight op is all-or-nothing: for an insert the key is
			// stored at most once; verifyStoreMatchesGrid proves whatever
			// state won is consistent across grid, store and replicas.
			if op := ops[crashed]; !op.del {
				if n := len(grid.Lookup(op.key)); n > 1 {
					t.Fatalf("k=%d: in-flight insert applied %d times", k, n)
				}
			}
		}
		verifyStoreMatchesGrid(t, s2, grid)
		s2.Close()
	}
}

func samePoint(a, b geom.Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
