package store

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pgridfile/internal/core"
	"pgridfile/internal/gridfile"
	"pgridfile/internal/replica"
	"pgridfile/internal/synth"
)

// buildReplicatedLayout writes an r-way minimax layout of a uniform 2-D
// dataset under t.TempDir.
func buildReplicatedLayout(t *testing.T, disks, r int) (string, *gridfile.File, *replica.Map) {
	t.Helper()
	f, err := synth.Uniform2D(1200, 3).Build()
	if err != nil {
		t.Fatal(err)
	}
	g := core.FromGridFile(f)
	alloc, err := (&core.Minimax{Seed: 1}).Decluster(g, disks)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := (&replica.Placer{Replicas: r}).Place(g, alloc)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := WriteReplicated(dir, f, rm, 4096); err != nil {
		t.Fatal(err)
	}
	return dir, f, rm
}

// TestWriteReplicatedRoundTrip proves every copy of every bucket is
// independently readable and identical to the primary: the layout the
// failover path depends on actually holds r intact copies.
func TestWriteReplicatedRoundTrip(t *testing.T) {
	const disks, r = 4, 2
	dir, f, rm := buildReplicatedLayout(t, disks, r)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Replicas() != r {
		t.Fatalf("Replicas() = %d, want %d", s.Replicas(), r)
	}
	ctx := context.Background()
	for i, v := range f.Buckets() {
		own := s.Owners(v.ID)
		if len(own) != r {
			t.Fatalf("bucket %d: %d owners, want %d", v.ID, len(own), r)
		}
		if want := rm.Owners[i]; own[0] != want[0] || own[1] != want[1] {
			t.Fatalf("bucket %d: owners %v, placer said %v", v.ID, own, want)
		}
		primary, _, err := s.ReadBucket(ctx, v.ID)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range own {
			pts, _, err := s.ReadBucketFrom(ctx, d, v.ID)
			if err != nil {
				t.Fatalf("bucket %d copy on disk %d: %v", v.ID, d, err)
			}
			if len(pts) != len(primary) {
				t.Fatalf("bucket %d copy on disk %d: %d records, primary has %d",
					v.ID, d, len(pts), len(primary))
			}
		}
		// A non-owner disk must refuse, not misread another bucket's pages.
		for d := 0; d < disks; d++ {
			if d == own[0] || d == own[1] {
				continue
			}
			if _, _, err := s.ReadBucketFrom(ctx, d, v.ID); err == nil {
				t.Fatalf("bucket %d read from non-owner disk %d succeeded", v.ID, d)
			}
		}
	}
}

// TestReadBucketsFromCoalesced checks the batched owner-directed read path
// (the one the server's disk goroutines use) against per-bucket reads.
func TestReadBucketsFromCoalesced(t *testing.T) {
	const disks, r = 4, 2
	dir, f, _ := buildReplicatedLayout(t, disks, r)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	for d := 0; d < disks; d++ {
		var ids []int32
		for _, v := range f.Buckets() {
			for _, o := range s.Owners(v.ID) {
				if o == d {
					ids = append(ids, v.ID)
					break
				}
			}
		}
		got, _, err := s.ReadBucketsFrom(ctx, d, ids)
		if err != nil {
			t.Fatalf("disk %d: %v", d, err)
		}
		if len(got) != len(ids) {
			t.Fatalf("disk %d: %d buckets, want %d", d, len(got), len(ids))
		}
		for _, id := range ids {
			want, _, err := s.ReadBucketFrom(ctx, d, id)
			if err != nil {
				t.Fatal(err)
			}
			if len(got[id]) != len(want) {
				t.Fatalf("disk %d bucket %d: batched read %d records, single read %d",
					d, id, len(got[id]), len(want))
			}
		}
		// One foreign id must fail the whole batch with a clear error.
		for _, v := range f.Buckets() {
			owned := false
			for _, o := range s.Owners(v.ID) {
				if o == d {
					owned = true
				}
			}
			if owned {
				continue
			}
			if _, _, err := s.ReadBucketsFrom(ctx, d, []int32{v.ID}); err == nil {
				t.Fatalf("disk %d: batch containing foreign bucket %d succeeded", d, v.ID)
			}
			break
		}
	}
}

// TestManifestVersioning pins the compatibility contract of the manifest
// envelope: every new layout (replicated or not) carries "version": 3 with
// "page_format": 2 and reads as implausible to the flat pre-replication
// schema (so old readers reject it cleanly); a future version is refused by
// name; and both older on-disk vintages — the v2 replicated envelope and
// the flat unversioned r=1 layout, each with checksum-free 8-byte page
// headers — still open and serve correctly.
func TestManifestVersioning(t *testing.T) {
	dir, _, _ := buildReplicatedLayout(t, 4, 2)
	raw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var env struct {
		Version int `json:"version"`
	}
	if err := json.Unmarshal(raw, &env); err != nil || env.Version != 3 {
		t.Fatalf("new manifest version = %d (err %v), want 3", env.Version, err)
	}
	if !strings.Contains(string(raw), `"page_format": 2`) {
		t.Error("new manifest does not declare the checksummed page format")
	}
	// The oldest reader parsed the whole document as a flat Manifest and
	// rejected zero disks/dims/page as implausible; the envelope hides the
	// layout behind an unknown key, so that is exactly what it sees.
	var flat Manifest
	if err := json.Unmarshal(raw, &flat); err == nil {
		if flat.Disks != 0 || flat.PageBytes != 0 {
			t.Fatalf("v3 envelope leaks layout fields into the flat schema: disks=%d page=%d",
				flat.Disks, flat.PageBytes)
		}
	}

	// r=1 layouts carry the same version bump: their pages are checksummed
	// too, so older readers must refuse them rather than misparse records.
	soloDir, _, _ := buildLayout(t, 2, 4096)
	soloRaw, err := os.ReadFile(filepath.Join(soloDir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(soloRaw), `"version": 3`) {
		t.Error("r=1 layout lacks the version-3 envelope; old readers would misread its pages")
	}

	// A version this reader does not know is refused explicitly.
	doctored := []byte(strings.Replace(string(raw), `"version": 3`, `"version": 4`, 1))
	if string(doctored) == string(raw) {
		t.Fatal("could not doctor the manifest version")
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), doctored, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "not supported") {
		t.Fatalf("version 4 manifest opened: err=%v", err)
	}

	// Both pre-checksum vintages still open and read back correctly.
	for _, vintage := range []string{"flat", "v2"} {
		legacyDir, f, _ := buildLayout(t, 2, 4096)
		downgradeLayout(t, legacyDir, vintage)
		s, err := Open(legacyDir)
		if err != nil {
			t.Fatalf("%s legacy layout: %v", vintage, err)
		}
		if s.Replicas() != 1 {
			t.Fatalf("%s legacy layout Replicas() = %d, want 1", vintage, s.Replicas())
		}
		if s.Checksummed() {
			t.Fatalf("%s legacy layout reports checksummed pages", vintage)
		}
		for _, v := range f.Buckets() {
			pts, _, err := s.ReadBucket(context.Background(), v.ID)
			if err != nil {
				t.Fatalf("%s legacy bucket %d: %v", vintage, v.ID, err)
			}
			if len(pts) != v.Records {
				t.Fatalf("%s legacy bucket %d: %d records, want %d", vintage, v.ID, len(pts), v.Records)
			}
		}
		s.Close()
	}
}

// downgradeLayout rewrites a freshly-written checksummed layout into an
// older on-disk vintage: every page's 16-byte format-2 header is squeezed
// to the legacy 8-byte header (records slide forward, checksum dropped) and
// the manifest loses its page_format — emitted either as the flat
// unversioned schema ("flat") or wrapped in the v2 envelope ("v2"),
// producing a valid instance of each pre-checksum on-disk vintage.
func downgradeLayout(t *testing.T, dir, vintage string) {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var env struct {
		Version int             `json:"version"`
		Layout  json.RawMessage `json:"layout"`
	}
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatal(err)
	}
	var m Manifest
	if err := json.Unmarshal(env.Layout, &m); err != nil {
		t.Fatal(err)
	}
	for d := 0; d < m.Disks; d++ {
		path := filepath.Join(dir, "disk"+fmt.Sprintf("%03d", d)+".dat")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for off := 0; off < len(data); off += m.PageBytes {
			page := data[off : off+m.PageBytes]
			body := append([]byte(nil), page[16:]...)
			copy(page[8:], body)
			for i := m.PageBytes - 8; i < m.PageBytes; i++ {
				page[i] = 0
			}
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	m.PageFormat = 0
	flat, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	out := flat
	if vintage == "v2" {
		out, err = json.MarshalIndent(struct {
			Version int             `json:"version"`
			Layout  json.RawMessage `json:"layout"`
		}{Version: 2, Layout: flat}, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), out, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestPickOwnerLoadAware pins read selection: primary wins ties, load shifts
// the pick to the idler owner, and exclusion models dead disks down to the
// no-owner-left case.
func TestPickOwnerLoadAware(t *testing.T) {
	dir, f, _ := buildReplicatedLayout(t, 4, 2)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	id := f.Buckets()[0].ID
	own := s.Owners(id)

	if d, ok := s.PickOwner(id, nil); !ok || d != own[0] {
		t.Fatalf("idle pick = %d/%v, want primary %d", d, ok, own[0])
	}
	s.AddLoad(own[0], 10)
	if d, ok := s.PickOwner(id, nil); !ok || d != own[1] {
		t.Fatalf("pick with loaded primary = %d/%v, want secondary %d", d, ok, own[1])
	}
	s.AddLoad(own[1], 20)
	if d, ok := s.PickOwner(id, nil); !ok || d != own[0] {
		t.Fatalf("pick with both loaded = %d/%v, want lighter primary %d", d, ok, own[0])
	}
	s.AddLoad(own[0], -10)
	s.AddLoad(own[1], -20)

	if d, ok := s.PickOwner(id, func(d int) bool { return d == own[0] }); !ok || d != own[1] {
		t.Fatalf("pick excluding primary = %d/%v, want %d", d, ok, own[1])
	}
	if _, ok := s.PickOwner(id, func(int) bool { return true }); ok {
		t.Fatal("pick with every owner excluded reported a live disk")
	}
}
