package store

import (
	"context"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// ScrubStats summarizes one scrub pass over a layout.
type ScrubStats struct {
	Pages    int64 // page copies whose checksum was verified
	Corrupt  int64 // page copies that failed verification
	Repaired int64 // corrupt copies rewritten from an intact replica and re-verified
}

// Add accumulates another pass's counts.
func (st *ScrubStats) Add(o ScrubStats) {
	st.Pages += o.Pages
	st.Corrupt += o.Corrupt
	st.Repaired += o.Repaired
}

// Scrub verifies every page copy of every bucket against its stored
// CRC-32C and, where a copy is corrupt but another owner holds an intact
// one, rewrites the damaged pages from the good copy in place — the repair
// path that makes r >= 2 replication worth its write amplification. It is
// the background-integrity analogue of the read-time verify flag: reads
// catch corruption on the pages queries happen to touch, the scrubber
// sweeps the rest.
//
// Buckets are visited in ascending id order; pause, when positive, is slept
// between buckets so a background scrub stays low-priority next to live
// queries. Scrub reads the disk files directly (bypassing the failpoint
// registry — it verifies the real bytes on disk, not the fault model) but
// registers per-disk load on every owner disk for the whole of each
// bucket's scan (verification and repair included), so replica read
// selection steers queries away from the disks being scrubbed for the full
// time their heads are busy, not just during each individual pread.
// Concurrent readers are safe: pages are
// fixed-size and repair rewrites a page with its own correct contents, so
// a racing read sees either the torn page (and fails verification or
// header validation the way it already would) or the repaired one.
//
// A copy that cannot be read at all (truncated or missing file regions)
// counts as corrupt in full and is repaired the same way, which also heals
// a disk file that was cut short. Corrupt pages with no intact sibling
// (r=1, or all copies damaged) are counted but left in place.
func (s *Store) Scrub(ctx context.Context, pause time.Duration) (st ScrubStats, err error) {
	s.pmu.RLock()
	format := s.manifest.PageFormat
	pls := make([]Placement, 0, len(s.byID))
	for _, pl := range s.byID {
		pls = append(pls, pl)
	}
	s.pmu.RUnlock()
	if format != pageFormatChecksum {
		return st, fmt.Errorf("store: layout has no page checksums to scrub (format %d)", format)
	}
	sort.Slice(pls, func(i, j int) bool { return pls[i].ID < pls[j].ID })

	// Repair handles are opened lazily, once per disk per pass, and synced
	// in this deferred block so that EVERY exit path — completion, context
	// cancellation between buckets or during a pause, a failed repair write
	// — flushes whatever repairs were already written. A cancelled pass must
	// not leave its repairs sitting unsynced in the page cache, where a
	// crash would silently undo them.
	rw := make(map[int]*os.File)
	defer func() {
		for _, fh := range rw {
			if serr := fh.Sync(); serr != nil && err == nil {
				err = serr
			}
			fh.Close()
		}
	}()
	repairHandle := func(disk int) (*os.File, error) {
		if fh, ok := rw[disk]; ok {
			return fh, nil
		}
		fh, err := os.OpenFile(filepath.Join(s.dir, DiskFileName(disk)), os.O_RDWR, 0)
		if err != nil {
			return nil, err
		}
		rw[disk] = fh
		return fh, nil
	}

	pageBytes := s.manifest.PageBytes
	buf := make([]byte, pageBytes)
	good := make([]byte, pageBytes)

	// scanBucket verifies and repairs one bucket's copies while holding one
	// unit of load on each owner disk — the steering promised in the package
	// comment. The deferred release keeps the load accounting balanced on
	// every exit path, including failed repairs.
	scanBucket := func(pl Placement) error {
		for _, d := range pl.OwnerDisks {
			s.loads[d].Add(1)
		}
		defer func() {
			for _, d := range pl.OwnerDisks {
				s.loads[d].Add(-1)
			}
		}()
		// bad[p] lists the owner indices whose copy of page p failed.
		var bad map[int][]int
		for i, d := range pl.OwnerDisks {
			for p := 0; p < pl.Pages; p++ {
				st.Pages++
				if s.scrubReadPage(d, pl.OwnerPages[i]+int64(p), buf) {
					continue
				}
				st.Corrupt++
				if bad == nil {
					bad = make(map[int][]int)
				}
				bad[p] = append(bad[p], i)
			}
		}
		for p, owners := range bad {
			// Find an intact sibling copy of this page.
			src := -1
			for i, d := range pl.OwnerDisks {
				if containsInt(owners, i) {
					continue
				}
				if s.scrubReadPage(d, pl.OwnerPages[i]+int64(p), good) {
					src = i
					break
				}
			}
			if src < 0 {
				continue // no intact copy to repair from
			}
			for _, i := range owners {
				d := pl.OwnerDisks[i]
				fh, err := repairHandle(d)
				if err != nil {
					return fmt.Errorf("store: opening disk %d for repair: %w", d, err)
				}
				off := (pl.OwnerPages[i] + int64(p)) * int64(pageBytes)
				if _, err := fh.WriteAt(good, off); err != nil {
					return fmt.Errorf("store: repairing bucket %d page %d on disk %d: %w", pl.ID, p, d, err)
				}
				if s.scrubReadPage(d, pl.OwnerPages[i]+int64(p), buf) {
					st.Repaired++
				}
			}
		}
		return nil
	}

	for _, pl := range pls {
		if err := ctx.Err(); err != nil {
			return st, err
		}
		if err := scanBucket(pl); err != nil {
			return st, err
		}
		if pause > 0 {
			t := time.NewTimer(pause)
			select {
			case <-ctx.Done():
				t.Stop()
				return st, ctx.Err()
			case <-t.C:
			}
		}
	}
	return st, nil
}

// scrubReadPage reads one page copy directly from its disk file and reports
// whether it is intact: readable, carrying the expected checksum. Short or
// failed reads report false (the copy is unusable as-is). Load accounting is
// the caller's job — Scrub holds a load unit per owner disk for the whole
// bucket scan rather than per pread.
func (s *Store) scrubReadPage(disk int, page int64, buf []byte) bool {
	if _, err := s.files[disk].ReadAt(buf, page*int64(s.manifest.PageBytes)); err != nil {
		return false
	}
	return binary.LittleEndian.Uint32(buf[8:]) == pageChecksum(buf)
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
