package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"pgridfile/internal/core"
	"pgridfile/internal/geom"
	"pgridfile/internal/gridfile"
	"pgridfile/internal/synth"
)

// buildLayout writes a declustered hot.2d layout into a temp dir.
func buildLayout(t *testing.T, disks, pageBytes int) (string, *gridfile.File, core.Allocation) {
	t.Helper()
	f, err := synth.Hotspot2D(3000, 5).Build()
	if err != nil {
		t.Fatal(err)
	}
	g := core.FromGridFile(f)
	alloc, err := (&core.Minimax{Seed: 1}).Decluster(g, disks)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := Write(dir, f, alloc, pageBytes); err != nil {
		t.Fatal(err)
	}
	return dir, f, alloc
}

func TestWriteAndReadBackAllBuckets(t *testing.T) {
	dir, f, _ := buildLayout(t, 8, 4096)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	totalRecs := 0
	for _, v := range f.Buckets() {
		pts, pages, err := s.ReadBucket(v.ID)
		if err != nil {
			t.Fatalf("bucket %d: %v", v.ID, err)
		}
		if len(pts) != v.Records {
			t.Fatalf("bucket %d: read %d records, want %d", v.ID, len(pts), v.Records)
		}
		if pages < 1 {
			t.Fatalf("bucket %d: %d pages", v.ID, pages)
		}
		totalRecs += len(pts)
		// Every key read back must exist in the in-memory bucket.
		want := map[[2]float64]int{}
		f.ForEachRecordInBucket(v.ID, func(key []float64, _ []byte) {
			want[[2]float64{key[0], key[1]}]++
		})
		for _, p := range pts {
			k := [2]float64{p[0], p[1]}
			if want[k] == 0 {
				t.Fatalf("bucket %d: unexpected key %v", v.ID, p)
			}
			want[k]--
		}
	}
	if totalRecs != f.Len() {
		t.Fatalf("layout holds %d records, file has %d", totalRecs, f.Len())
	}
}

func TestDiskSizesMatchPlacement(t *testing.T) {
	dir, f, alloc := buildLayout(t, 4, 4096)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sizes, err := s.DiskSizes()
	if err != nil {
		t.Fatal(err)
	}
	if len(sizes) != 4 {
		t.Fatalf("%d disks", len(sizes))
	}
	var totalPages int64
	for _, n := range sizes {
		if n == 0 {
			t.Error("a disk file is empty despite balanced declustering")
		}
		totalPages += n
	}
	// Every bucket occupies at least one page.
	if totalPages < int64(f.NumBuckets()) {
		t.Errorf("%d pages for %d buckets", totalPages, f.NumBuckets())
	}
	// Minimax balance should keep per-disk pages within ~2x of each other.
	var min, max int64 = sizes[0], sizes[0]
	for _, n := range sizes {
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if max > 2*min {
		t.Errorf("page counts unbalanced: %v (alloc loads %v)", sizes, alloc.DiskLoads())
	}
}

func TestMultiPageBuckets(t *testing.T) {
	// A tiny page forces every bucket to span multiple pages.
	dir, f, _ := buildLayout(t, 4, 256)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	multi := 0
	for _, v := range f.Buckets() {
		pts, pages, err := s.ReadBucket(v.ID)
		if err != nil {
			t.Fatalf("bucket %d: %v", v.ID, err)
		}
		if len(pts) != v.Records {
			t.Fatalf("bucket %d: %d records, want %d", v.ID, len(pts), v.Records)
		}
		if pages > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Error("no multi-page buckets with a 256-byte page")
	}
}

func TestWriteValidation(t *testing.T) {
	f, err := synth.Hotspot2D(200, 5).Build()
	if err != nil {
		t.Fatal(err)
	}
	g := core.FromGridFile(f)
	alloc, _ := (&core.Minimax{Seed: 1}).Decluster(g, 2)
	if _, err := Write(t.TempDir(), f, alloc, 16); err == nil {
		t.Error("page smaller than one record accepted")
	}
	bad := core.Allocation{Disks: 2, Assign: []int{0}}
	if _, err := Write(t.TempDir(), f, bad, 4096); err == nil {
		t.Error("truncated allocation accepted")
	}
}

func TestOpenRejectsBadLayouts(t *testing.T) {
	if _, err := Open(t.TempDir()); err == nil {
		t.Error("empty dir accepted")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Error("broken manifest accepted")
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"),
		[]byte(`{"disks":2,"dims":2,"page_bytes":4096,"buckets":[{"id":1,"disk":5}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Error("out-of-range disk accepted")
	}
}

func TestReadUnknownBucket(t *testing.T) {
	dir, _, _ := buildLayout(t, 2, 4096)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, _, err := s.ReadBucket(99999); err == nil {
		t.Error("unknown bucket accepted")
	}
}

func TestDomainRoundTrip(t *testing.T) {
	dir, f, _ := buildLayout(t, 2, 4096)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	got := s.Domain()
	want := f.Domain()
	for d := range want {
		if got[d] != want[d] {
			t.Errorf("domain dim %d = %v, want %v", d, got[d], want[d])
		}
	}
	_ = geom.Rect(got)
}

// TestConcurrentReaders hammers ReadBucket from many goroutines at once;
// under -race this is the regression test for the store's documented
// concurrent-reader safety (the server's per-disk I/O goroutines depend
// on it).
func TestConcurrentReaders(t *testing.T) {
	dir, f, _ := buildLayout(t, 4, 4096)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	views := f.Buckets()
	want := make(map[int32]int, len(views))
	for _, v := range views {
		want[v.ID] = v.Records
	}

	const readers = 16
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				for j := range views {
					v := views[(j+r)%len(views)] // stagger the access order
					pts, _, err := s.ReadBucket(v.ID)
					if err != nil {
						errs <- err
						return
					}
					if len(pts) != want[v.ID] {
						errs <- fmt.Errorf("bucket %d: %d records, want %d",
							v.ID, len(pts), want[v.ID])
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestOpenGrid proves the grid file embedded by Write round-trips and its
// bucket ids agree with the manifest placements.
func TestOpenGrid(t *testing.T) {
	dir, f, _ := buildLayout(t, 4, 4096)
	g, err := OpenGrid(dir)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != f.Len() || g.NumBuckets() != f.NumBuckets() {
		t.Fatalf("embedded grid: %d recs / %d buckets, want %d / %d",
			g.Len(), g.NumBuckets(), f.Len(), f.NumBuckets())
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, v := range g.Buckets() {
		pl, ok := s.Placement(v.ID)
		if !ok {
			t.Fatalf("embedded grid bucket %d missing from manifest", v.ID)
		}
		if pl.Recs != v.Records {
			t.Fatalf("bucket %d: manifest has %d records, grid %d", v.ID, pl.Recs, v.Records)
		}
	}
	if _, err := OpenGrid(t.TempDir()); err == nil {
		t.Error("OpenGrid succeeded on a directory without a layout")
	}
}
