package store

import (
	"context"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"pgridfile/internal/core"
	"pgridfile/internal/geom"
	"pgridfile/internal/gridfile"
	"pgridfile/internal/synth"
)

// buildLayout writes a declustered hot.2d layout into a temp dir.
func buildLayout(t *testing.T, disks, pageBytes int) (string, *gridfile.File, core.Allocation) {
	t.Helper()
	f, err := synth.Hotspot2D(3000, 5).Build()
	if err != nil {
		t.Fatal(err)
	}
	g := core.FromGridFile(f)
	alloc, err := (&core.Minimax{Seed: 1}).Decluster(g, disks)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := Write(dir, f, alloc, pageBytes); err != nil {
		t.Fatal(err)
	}
	return dir, f, alloc
}

func TestWriteAndReadBackAllBuckets(t *testing.T) {
	dir, f, _ := buildLayout(t, 8, 4096)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	totalRecs := 0
	for _, v := range f.Buckets() {
		pts, pages, err := s.ReadBucket(context.Background(), v.ID)
		if err != nil {
			t.Fatalf("bucket %d: %v", v.ID, err)
		}
		if len(pts) != v.Records {
			t.Fatalf("bucket %d: read %d records, want %d", v.ID, len(pts), v.Records)
		}
		if pages < 1 {
			t.Fatalf("bucket %d: %d pages", v.ID, pages)
		}
		totalRecs += len(pts)
		// Every key read back must exist in the in-memory bucket.
		want := map[[2]float64]int{}
		f.ForEachRecordInBucket(v.ID, func(key []float64, _ []byte) {
			want[[2]float64{key[0], key[1]}]++
		})
		for _, p := range pts {
			k := [2]float64{p[0], p[1]}
			if want[k] == 0 {
				t.Fatalf("bucket %d: unexpected key %v", v.ID, p)
			}
			want[k]--
		}
	}
	if totalRecs != f.Len() {
		t.Fatalf("layout holds %d records, file has %d", totalRecs, f.Len())
	}
}

func TestDiskSizesMatchPlacement(t *testing.T) {
	dir, f, alloc := buildLayout(t, 4, 4096)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sizes, err := s.DiskSizes()
	if err != nil {
		t.Fatal(err)
	}
	if len(sizes) != 4 {
		t.Fatalf("%d disks", len(sizes))
	}
	var totalPages int64
	for _, n := range sizes {
		if n == 0 {
			t.Error("a disk file is empty despite balanced declustering")
		}
		totalPages += n
	}
	// Every bucket occupies at least one page.
	if totalPages < int64(f.NumBuckets()) {
		t.Errorf("%d pages for %d buckets", totalPages, f.NumBuckets())
	}
	// Minimax balance should keep per-disk pages within ~2x of each other.
	var min, max int64 = sizes[0], sizes[0]
	for _, n := range sizes {
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if max > 2*min {
		t.Errorf("page counts unbalanced: %v (alloc loads %v)", sizes, alloc.DiskLoads())
	}
}

func TestMultiPageBuckets(t *testing.T) {
	// A tiny page forces every bucket to span multiple pages.
	dir, f, _ := buildLayout(t, 4, 256)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	multi := 0
	for _, v := range f.Buckets() {
		pts, pages, err := s.ReadBucket(context.Background(), v.ID)
		if err != nil {
			t.Fatalf("bucket %d: %v", v.ID, err)
		}
		if len(pts) != v.Records {
			t.Fatalf("bucket %d: %d records, want %d", v.ID, len(pts), v.Records)
		}
		if pages > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Error("no multi-page buckets with a 256-byte page")
	}
}

func TestWriteValidation(t *testing.T) {
	f, err := synth.Hotspot2D(200, 5).Build()
	if err != nil {
		t.Fatal(err)
	}
	g := core.FromGridFile(f)
	alloc, _ := (&core.Minimax{Seed: 1}).Decluster(g, 2)
	if _, err := Write(t.TempDir(), f, alloc, 16); err == nil {
		t.Error("page smaller than one record accepted")
	}
	bad := core.Allocation{Disks: 2, Assign: []int{0}}
	if _, err := Write(t.TempDir(), f, bad, 4096); err == nil {
		t.Error("truncated allocation accepted")
	}
}

func TestOpenRejectsBadLayouts(t *testing.T) {
	if _, err := Open(t.TempDir()); err == nil {
		t.Error("empty dir accepted")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Error("broken manifest accepted")
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"),
		[]byte(`{"disks":2,"dims":2,"page_bytes":4096,"buckets":[{"id":1,"disk":5}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Error("out-of-range disk accepted")
	}
}

func TestReadUnknownBucket(t *testing.T) {
	dir, _, _ := buildLayout(t, 2, 4096)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, _, err := s.ReadBucket(context.Background(), 99999); err == nil {
		t.Error("unknown bucket accepted")
	}
}

func TestDomainRoundTrip(t *testing.T) {
	dir, f, _ := buildLayout(t, 2, 4096)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	got := s.Domain()
	want := f.Domain()
	for d := range want {
		if got[d] != want[d] {
			t.Errorf("domain dim %d = %v, want %v", d, got[d], want[d])
		}
	}
	_ = geom.Rect(got)
}

// TestConcurrentReaders hammers ReadBucket from many goroutines at once;
// under -race this is the regression test for the store's documented
// concurrent-reader safety (the server's per-disk I/O goroutines depend
// on it).
func TestConcurrentReaders(t *testing.T) {
	dir, f, _ := buildLayout(t, 4, 4096)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	views := f.Buckets()
	want := make(map[int32]int, len(views))
	for _, v := range views {
		want[v.ID] = v.Records
	}

	const readers = 16
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				for j := range views {
					v := views[(j+r)%len(views)] // stagger the access order
					pts, _, err := s.ReadBucket(context.Background(), v.ID)
					if err != nil {
						errs <- err
						return
					}
					if len(pts) != want[v.ID] {
						errs <- fmt.Errorf("bucket %d: %d records, want %d",
							v.ID, len(pts), want[v.ID])
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestReadBucketsMatchesReadBucket proves the coalesced multi-bucket read
// returns exactly what per-bucket reads do, and charges the same page count.
func TestReadBucketsMatchesReadBucket(t *testing.T) {
	for _, pageBytes := range []int{4096, 256} { // 256 forces multi-page buckets
		dir, f, _ := buildLayout(t, 4, pageBytes)
		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		views := f.Buckets()
		ids := make([]int32, 0, len(views))
		for _, v := range views {
			ids = append(ids, v.ID)
		}
		got, pages, err := s.ReadBuckets(context.Background(), ids)
		if err != nil {
			t.Fatalf("page=%d: %v", pageBytes, err)
		}
		if len(got) != len(ids) {
			t.Fatalf("page=%d: %d buckets decoded, want %d", pageBytes, len(got), len(ids))
		}
		wantPages := 0
		for _, id := range ids {
			want, p, err := s.ReadBucket(context.Background(), id)
			if err != nil {
				t.Fatal(err)
			}
			wantPages += p
			if len(got[id]) != len(want) {
				t.Fatalf("page=%d bucket %d: %d records, want %d",
					pageBytes, id, len(got[id]), len(want))
			}
			for i := range want {
				for d := range want[i] {
					if got[id][i][d] != want[i][d] {
						t.Fatalf("page=%d bucket %d record %d differs", pageBytes, id, i)
					}
				}
			}
		}
		if pages != wantPages {
			t.Errorf("page=%d: coalesced read charged %d pages, per-bucket %d",
				pageBytes, pages, wantPages)
		}
		// Duplicates are fetched once; unknown ids fail.
		dup, pages2, err := s.ReadBuckets(context.Background(), []int32{ids[0], ids[0]})
		if err != nil || len(dup) != 1 {
			t.Errorf("duplicate ids: %d buckets, %v", len(dup), err)
		}
		if _, p0, _ := s.ReadBucket(context.Background(), ids[0]); pages2 != p0 {
			t.Errorf("duplicate ids charged %d pages, want %d", pages2, p0)
		}
		if _, _, err := s.ReadBuckets(context.Background(), []int32{ids[0], 99999}); err == nil {
			t.Error("unknown bucket id accepted")
		}
		s.Close()
	}
}

// TestTruncatedPageFile proves both read paths surface I/O errors instead
// of returning partial data when a disk file has been cut short.
func TestTruncatedPageFile(t *testing.T) {
	dir, f, _ := buildLayout(t, 2, 4096)
	// Truncate disk 0 to one page: any multi-bucket read on it must fail.
	path := filepath.Join(dir, DiskFileName(0))
	if err := os.Truncate(path, 4096); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var onDisk0 []int32
	for _, v := range f.Buckets() {
		if pl, ok := s.Placement(v.ID); ok && pl.Disk == 0 {
			onDisk0 = append(onDisk0, v.ID)
		}
	}
	if len(onDisk0) < 2 {
		t.Fatal("layout put fewer than 2 buckets on disk 0")
	}
	// The bucket past the surviving page must fail in both paths.
	victim := onDisk0[len(onDisk0)-1]
	if _, _, err := s.ReadBucket(context.Background(), victim); err == nil {
		t.Error("ReadBucket returned data from a truncated file")
	}
	if _, _, err := s.ReadBuckets(context.Background(), onDisk0); err == nil {
		t.Error("ReadBuckets returned data from a truncated file")
	}
}

// TestCorruptPageHeader flips a page's bucket-id header on disk and proves
// both read paths detect the mismatch (the defence against a placement map
// that disagrees with the page files).
func TestCorruptPageHeader(t *testing.T) {
	dir, f, _ := buildLayout(t, 2, 4096)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	victim := f.Buckets()[0].ID
	pl, ok := s.Placement(victim)
	if !ok {
		t.Fatal("placement missing")
	}
	s.Close()

	// Overwrite the page's bucket-id header with a different id.
	path := filepath.Join(dir, DiskFileName(pl.Disk))
	fh, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(victim)+100000)
	if _, err := fh.WriteAt(hdr[:], pl.Page*4096); err != nil {
		t.Fatal(err)
	}
	fh.Close()

	s, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, _, err := s.ReadBucket(context.Background(), victim); err == nil {
		t.Error("ReadBucket accepted a page holding another bucket")
	}
	if _, _, err := s.ReadBuckets(context.Background(), []int32{victim}); err == nil {
		t.Error("ReadBuckets accepted a page holding another bucket")
	}

	// An implausible record count must be rejected too.
	fh, err = os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(hdr[:], uint32(victim))
	if _, err := fh.WriteAt(hdr[:], pl.Page*4096); err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(hdr[:], 1<<30)
	if _, err := fh.WriteAt(hdr[:], pl.Page*4096+4); err != nil {
		t.Fatal(err)
	}
	fh.Close()
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, _, err := s2.ReadBucket(context.Background(), victim); err == nil {
		t.Error("ReadBucket accepted an implausible record count")
	}
}

// TestConcurrentBatchReaders hammers ReadBuckets (whose pooled buffers are
// the shared-state risk) from many goroutines under -race, interleaved with
// single-bucket reads.
func TestConcurrentBatchReaders(t *testing.T) {
	dir, f, _ := buildLayout(t, 4, 512) // small pages: multi-page buckets in play
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	views := f.Buckets()
	ids := make([]int32, 0, len(views))
	want := make(map[int32]int, len(views))
	for _, v := range views {
		ids = append(ids, v.ID)
		want[v.ID] = v.Records
	}

	const readers = 12
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				if r%2 == 0 {
					got, _, err := s.ReadBuckets(context.Background(), ids)
					if err != nil {
						errs <- err
						return
					}
					for id, pts := range got {
						if len(pts) != want[id] {
							errs <- fmt.Errorf("bucket %d: %d records, want %d",
								id, len(pts), want[id])
							return
						}
					}
				} else {
					for _, id := range ids {
						pts, _, err := s.ReadBucket(context.Background(), id)
						if err != nil {
							errs <- err
							return
						}
						if len(pts) != want[id] {
							errs <- fmt.Errorf("bucket %d: %d records, want %d",
								id, len(pts), want[id])
							return
						}
					}
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestReadTiming proves the timed read variants split their cost into
// pread and decode, return identical data to the untimed forms, and that a
// nil Timing is accepted everywhere.
func TestReadTiming(t *testing.T) {
	dir, f, _ := buildLayout(t, 4, 4096)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	views := f.Buckets()
	ids := make([]int32, 0, len(views))
	for _, v := range views {
		ids = append(ids, v.ID)
	}

	var tm Timing
	got, pages, err := s.ReadBucketsTimed(context.Background(), ids, &tm)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ids) || pages < len(ids) {
		t.Fatalf("timed batch read: %d buckets / %d pages", len(got), pages)
	}
	if tm.Pread <= 0 || tm.Decode <= 0 {
		t.Errorf("batch Timing not populated: %+v", tm)
	}

	// The single-bucket form accumulates into the same Timing.
	before := tm
	pts, _, err := s.ReadBucketTimed(context.Background(), ids[0], &tm)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(got[ids[0]]) {
		t.Errorf("timed single read returned %d records, batch %d", len(pts), len(got[ids[0]]))
	}
	if tm.Pread <= before.Pread || tm.Decode <= before.Decode {
		t.Errorf("single-read Timing did not accumulate: %+v -> %+v", before, tm)
	}

	// nil Timing: same data, no timing requirement.
	got2, pages2, err := s.ReadBucketsTimed(context.Background(), ids, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got2) != len(got) || pages2 != pages {
		t.Errorf("nil-Timing read diverged: %d buckets / %d pages, want %d / %d",
			len(got2), pages2, len(got), pages)
	}
}

// TestOpenGrid proves the grid file embedded by Write round-trips and its
// bucket ids agree with the manifest placements.
func TestOpenGrid(t *testing.T) {
	dir, f, _ := buildLayout(t, 4, 4096)
	g, err := OpenGrid(dir)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != f.Len() || g.NumBuckets() != f.NumBuckets() {
		t.Fatalf("embedded grid: %d recs / %d buckets, want %d / %d",
			g.Len(), g.NumBuckets(), f.Len(), f.NumBuckets())
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, v := range g.Buckets() {
		pl, ok := s.Placement(v.ID)
		if !ok {
			t.Fatalf("embedded grid bucket %d missing from manifest", v.ID)
		}
		if pl.Recs != v.Records {
			t.Fatalf("bucket %d: manifest has %d records, grid %d", v.ID, pl.Recs, v.Records)
		}
	}
	if _, err := OpenGrid(t.TempDir()); err == nil {
		t.Error("OpenGrid succeeded on a directory without a layout")
	}
}
