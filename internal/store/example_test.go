package store_test

import (
	"context"
	"fmt"
	"os"

	"pgridfile/internal/core"
	"pgridfile/internal/store"
	"pgridfile/internal/synth"
)

// ExampleWrite lays a declustered grid file out as per-disk page files —
// the paper simulator's "separate files corresponding to every disk" — and
// reads a bucket back with real file I/O.
func ExampleWrite() {
	file, err := synth.Hotspot2D(1000, 7).Build()
	if err != nil {
		panic(err)
	}
	grid := core.FromGridFile(file)
	alloc, err := (&core.Minimax{Seed: 1}).Decluster(grid, 4)
	if err != nil {
		panic(err)
	}

	dir, err := os.MkdirTemp("", "layout")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	m, err := store.Write(dir, file, alloc, 4096)
	if err != nil {
		panic(err)
	}
	s, err := store.Open(dir)
	if err != nil {
		panic(err)
	}
	defer s.Close()

	pts, pages, err := s.ReadBucket(context.Background(), m.Buckets[0].ID)
	if err != nil {
		panic(err)
	}
	fmt.Printf("disks: %d, buckets laid out: %d\n", m.Disks, len(m.Buckets))
	fmt.Printf("bucket %d: %d records from %d page(s)\n", m.Buckets[0].ID, len(pts), pages)
	// Output:
	// disks: 4, buckets laid out: 28
	// bucket 0: 35 records from 1 page(s)
}
