// Package store persists a declustered grid file the way the paper's
// simulator does: "reads in the dataset and declusters it to separate files
// corresponding to every disk being simulated". A layout directory holds
//
//	manifest.json   grid metadata, page size and the bucket placement map
//	grid.grd        the grid file's scales and directory (coordinator state)
//	disk000.dat …   one page file per disk; each bucket occupies one or
//	                more consecutive pages on its assigned disk
//
// Pages are fixed-size; a bucket larger than one page (possible only for
// the overfull duplicate-key case) spans consecutive pages. The reader
// serves individual buckets with real file I/O, so experiments can be run
// against actual per-disk files rather than in-memory structures.
//
// A Store is safe for concurrent readers: ReadBucket and ReadBuckets
// address pages with pread-style ReadAt calls on per-disk file handles and
// mutate no shared state, so any number of goroutines may fetch buckets
// simultaneously — the property the network query service (internal/server)
// relies on for its per-disk I/O goroutines. ReadBuckets additionally
// coalesces buckets that are contiguous on disk into single large ReadAt
// calls, cutting the syscall count of a multi-bucket query.
package store

import (
	"cmp"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"pgridfile/internal/core"
	"pgridfile/internal/fault"
	"pgridfile/internal/geom"
	"pgridfile/internal/gridfile"
	"pgridfile/internal/replica"
)

// Per-page header layouts. Format 1 (legacy) carries bucket id (u32) and
// record count (u32). Format 2 extends it with a CRC-32C of the page (u32,
// computed with the crc field itself zeroed) and a reserved word that keeps
// the record array 8-byte aligned. The checksum covers the whole page —
// header, records and padding — so torn writes and bit rot anywhere in the
// page are detectable, not just in the fields decode happens to validate.
const (
	pageHeaderV1 = 8
	pageHeaderV2 = 16

	pageFormatLegacy   = 1 // 8-byte header, no checksum
	pageFormatChecksum = 2 // 16-byte header with CRC-32C
)

// pageChecksum computes the CRC-32C of a format-2 page with the crc field
// (bytes 8..12) treated as zero.
func pageChecksum(page []byte) uint32 {
	var zero [4]byte
	c := crc32.Update(0, crcTable, page[:8])
	c = crc32.Update(c, crcTable, zero[:])
	return crc32.Update(c, crcTable, page[12:])
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrChecksum reports a page whose stored CRC-32C does not match its
// contents. It is wrapped by decode errors so callers can distinguish
// detected corruption (recoverable from another replica) from structural
// manifest/layout disagreements.
var ErrChecksum = errors.New("page checksum mismatch")

// IsChecksum reports whether err stems from a page checksum mismatch.
func IsChecksum(err error) bool { return errors.Is(err, ErrChecksum) }

// Placement locates one bucket in the layout. A replicated layout stores a
// copy of the bucket on every owner disk: OwnerDisks[i] holds a copy whose
// pages start at OwnerPages[i]. Disk and Page always mirror owner 0 (the
// primary copy), so code that predates replication keeps addressing a valid
// copy. Legacy r=1 manifests omit the owner lists; Open normalizes them.
type Placement struct {
	ID         int32   `json:"id"`
	Disk       int     `json:"disk"`
	Page       int64   `json:"page"`  // first page index within the disk file
	Pages      int     `json:"pages"` // consecutive pages occupied
	Recs       int     `json:"recs"`
	OwnerDisks []int   `json:"owner_disks,omitempty"`
	OwnerPages []int64 `json:"owner_pages,omitempty"`
}

// Manifest describes a layout directory. PageFormat selects the per-page
// header layout (0/absent means the legacy checksum-free format 1; new
// layouts are always written with the checksummed format 2).
type Manifest struct {
	Disks      int `json:"disks"`
	Dims       int `json:"dims"`
	PageBytes  int `json:"page_bytes"`
	Replicas   int `json:"replicas,omitempty"`    // copies per bucket; 0/absent means 1
	PageFormat int `json:"page_format,omitempty"` // 0/1 legacy, 2 checksummed
	// CheckpointLSN is the last journaled operation whose effects are
	// captured by this manifest and its grid/page files. Replay skips
	// journal records at or below it, which makes a crash between the
	// checkpoint's manifest rename and its journal truncation harmless
	// (the stale journal records are simply ignored). Zero on read-only
	// layouts that never saw a write.
	CheckpointLSN uint64       `json:"checkpoint_lsn,omitempty"`
	Domain        [][2]float64 `json:"domain"`
	Buckets       []Placement  `json:"buckets"`
}

// headerBytes returns the per-page header size for the manifest's page
// format.
func (m *Manifest) headerBytes() int {
	if m.PageFormat == pageFormatChecksum {
		return pageHeaderV2
	}
	return pageHeaderV1
}

// manifestVersion is the envelope a layout's manifest.json is wrapped in:
// {"version": N, "layout": {…}}. Readers that predate the envelope
// unmarshal it into the flat Manifest shape, find every required field
// zero, and reject the directory with the "implausible manifest" error — a
// clean refusal rather than a silent half-read of a layout they cannot
// serve correctly. Unversioned manifests (no "version" key) are the legacy
// checksum-free r=1 format and stay readable, as are version-2 envelopes
// (replicated, checksum-free). Version 3 marks the checksummed page format;
// every new layout is written at version 3 regardless of replication
// factor, because the page header change alone makes the files unreadable
// to older vintages.
type manifestVersion struct {
	Version int             `json:"version"`
	Layout  json.RawMessage `json:"layout"`
}

// Envelope versions this reader understands. manifestVersionCurrent is what
// the writer emits.
const (
	manifestVersionReplicated = 2
	manifestVersionCurrent    = 3
)

// recordsPerPage returns how many dims-dimensional keys fit in a page with
// the given header size.
func recordsPerPage(pageBytes, dims, header int) int {
	return (pageBytes - header) / (8 * dims)
}

// Write lays out the grid file's buckets over per-disk page files under
// dir, following the allocation. It returns the manifest it wrote. Pages
// are written in the checksummed format and the manifest carries the
// version-3 envelope (see manifestVersion).
func Write(dir string, f *gridfile.File, alloc core.Allocation, pageBytes int) (*Manifest, error) {
	views := f.Buckets()
	if err := alloc.Validate(len(views)); err != nil {
		return nil, err
	}
	owners := make([][]int, len(views))
	backing := make([]int, len(views))
	for i, d := range alloc.Assign {
		backing[i] = d
		owners[i] = backing[i : i+1 : i+1]
	}
	return writeLayout(dir, f, owners, alloc.Disks, 1, pageBytes)
}

// WriteReplicated lays out the grid file with each bucket written to every
// disk in its owner list, following a replica map (see internal/replica).
// The manifest is wrapped in the version-3 envelope so readers that predate
// replication or page checksums reject the directory cleanly instead of
// misreading it.
func WriteReplicated(dir string, f *gridfile.File, rm *replica.Map, pageBytes int) (*Manifest, error) {
	views := f.Buckets()
	if err := rm.Validate(len(views)); err != nil {
		return nil, err
	}
	return writeLayout(dir, f, rm.Owners, rm.Disks, rm.Replicas, pageBytes)
}

// writeLayout is the shared layout writer: owners[i] lists the disks that
// receive a copy of bucket views[i] (the first entry is the primary).
// Every page carries the checksummed format-2 header and the manifest is
// wrapped in the version-3 envelope; replicated layouts additionally record
// per-copy owner page lists.
func writeLayout(dir string, f *gridfile.File, owners [][]int, disks, replicas, pageBytes int) (*Manifest, error) {
	if pageBytes <= pageHeaderV2+8*f.Dims() {
		return nil, fmt.Errorf("store: page size %d too small for %d-D records", pageBytes, f.Dims())
	}
	views := f.Buckets()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}

	dom := f.Domain()
	m := &Manifest{
		Disks:      disks,
		Dims:       f.Dims(),
		PageBytes:  pageBytes,
		PageFormat: pageFormatChecksum,
	}
	if replicas > 1 {
		m.Replicas = replicas
	}
	for _, iv := range dom {
		m.Domain = append(m.Domain, [2]float64{iv.Lo, iv.Hi})
	}

	files := make([]*os.File, disks)
	nextPage := make([]int64, disks)
	for d := range files {
		path := filepath.Join(dir, DiskFileName(d))
		fh, err := os.Create(path)
		if err != nil {
			closeAll(files)
			return nil, err
		}
		files[d] = fh
	}
	defer closeAll(files)

	perPage := recordsPerPage(pageBytes, f.Dims(), pageHeaderV2)
	page := make([]byte, pageBytes)
	for _, v := range views {
		var keys []float64
		f.ForEachRecordInBucket(v.ID, func(key []float64, _ []byte) {
			keys = append(keys, key...)
		})
		nrec := len(keys) / f.Dims()
		npages := (nrec + perPage - 1) / perPage
		if npages == 0 {
			npages = 1 // empty buckets still own a page
		}
		own := owners[v.Index]
		pl := Placement{ID: v.ID, Disk: own[0], Page: nextPage[own[0]], Pages: npages, Recs: nrec}
		if replicas > 1 {
			pl.OwnerDisks = append([]int(nil), own...)
			pl.OwnerPages = make([]int64, len(own))
			for i, d := range own {
				pl.OwnerPages[i] = nextPage[d]
			}
		}
		for p := 0; p < npages; p++ {
			for i := range page {
				page[i] = 0
			}
			start := p * perPage
			end := start + perPage
			if end > nrec {
				end = nrec
			}
			binary.LittleEndian.PutUint32(page[0:], uint32(v.ID))
			binary.LittleEndian.PutUint32(page[4:], uint32(end-start))
			off := pageHeaderV2
			for _, k := range keys[start*f.Dims() : end*f.Dims()] {
				binary.LittleEndian.PutUint64(page[off:], floatBits(k))
				off += 8
			}
			binary.LittleEndian.PutUint32(page[8:], pageChecksum(page))
			for _, d := range own {
				if _, err := files[d].Write(page); err != nil {
					return nil, err
				}
			}
		}
		for _, d := range own {
			nextPage[d] += int64(npages)
		}
		m.Buckets = append(m.Buckets, pl)
	}
	for _, fh := range files {
		if err := fh.Sync(); err != nil {
			return nil, err
		}
	}

	// Embed the grid file itself so the layout is self-contained: a server
	// can reopen the coordinator's scales and directory (whose bucket ids
	// the manifest placements refer to) from the layout directory alone.
	gf, err := os.Create(filepath.Join(dir, gridFileName))
	if err != nil {
		return nil, err
	}
	if _, err := f.WriteTo(gf); err != nil {
		gf.Close()
		return nil, err
	}
	if err := gf.Close(); err != nil {
		return nil, err
	}

	manifest, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	env, err := json.MarshalIndent(manifestVersion{
		Version: manifestVersionCurrent,
		Layout:  manifest,
	}, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), env, 0o644); err != nil {
		return nil, err
	}
	return m, nil
}

// Store reads buckets from a layout directory with real file I/O.
type Store struct {
	manifest Manifest
	dir      string
	files    []*os.File

	// pmu guards byID (and the manifest's bucket list) against the write
	// path's placement swaps. Read-only stores never take the write lock,
	// so the read path pays only an uncontended RLock.
	pmu  sync.RWMutex
	byID map[int32]Placement

	// w holds the mutable-store state (grid, journals, allocation cursors);
	// nil unless the store was opened with OpenWritable.
	w *writer

	// header is the per-page header size for the layout's page format.
	header int

	// verify, when true, checks every page's CRC-32C during decode (only
	// meaningful for checksummed layouts). Set before concurrent use.
	verify bool

	// now is the clock used by the timed read variants; a test hook
	// (SetClock) can replace it.
	now func() time.Time

	// loads counts in-flight reads per disk. readAt maintains a baseline
	// (each positioned read counts while it runs, stalls included) and the
	// server adds queued batch depth via AddLoad, so PickOwner's load-aware
	// replica selection sees pressure before the pread even starts.
	loads []atomic.Int64

	// faults, when non-nil, is consulted before every positioned read at
	// the fault.SiteStoreRead and per-disk sites. diskSites precomputes the
	// per-disk names so the hot path never formats strings.
	faults    *fault.Registry
	diskSites []string
}

// Open loads a layout directory written by Write or WriteReplicated. It
// accepts the legacy unversioned (r=1, checksum-free) manifest, the
// version-2 replicated envelope, and the current version-3 checksummed
// envelope, and rejects versions it does not understand.
func Open(dir string) (*Store, error) { return open(dir, false) }

// open is the shared Open/OpenWritable core; writable selects read-write
// disk file handles.
func open(dir string, writable bool) (*Store, error) {
	raw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, err
	}
	var env manifestVersion
	if err := json.Unmarshal(raw, &env); err != nil {
		return nil, fmt.Errorf("store: parsing manifest: %w", err)
	}
	switch {
	case env.Version == 0 && env.Layout == nil:
		// Legacy unversioned manifest: the whole document is the layout.
		env.Layout = raw
	case env.Version != manifestVersionReplicated && env.Version != manifestVersionCurrent:
		return nil, fmt.Errorf("store: manifest version %d not supported by this reader (want <= %d)",
			env.Version, manifestVersionCurrent)
	case env.Layout == nil:
		return nil, fmt.Errorf("store: version %d manifest has no layout", env.Version)
	}
	var m Manifest
	if err := json.Unmarshal(env.Layout, &m); err != nil {
		return nil, fmt.Errorf("store: parsing manifest: %w", err)
	}
	switch m.PageFormat {
	case 0:
		m.PageFormat = pageFormatLegacy
	case pageFormatLegacy, pageFormatChecksum:
	default:
		return nil, fmt.Errorf("store: page format %d not supported by this reader", m.PageFormat)
	}
	if m.Disks < 1 || m.Dims < 1 || m.PageBytes <= m.headerBytes() {
		return nil, fmt.Errorf("store: implausible manifest (disks=%d dims=%d page=%d)",
			m.Disks, m.Dims, m.PageBytes)
	}
	if m.Replicas == 0 {
		m.Replicas = 1
	}
	if m.Replicas < 1 || m.Replicas > m.Disks {
		return nil, fmt.Errorf("store: manifest has %d replicas on %d disks", m.Replicas, m.Disks)
	}
	s := &Store{
		manifest: m,
		dir:      dir,
		byID:     make(map[int32]Placement, len(m.Buckets)),
		header:   m.headerBytes(),
		now:      time.Now,
	}
	for i := range m.Buckets {
		pl := &m.Buckets[i]
		if len(pl.OwnerDisks) == 0 {
			// Legacy placement: the primary is the only owner.
			pl.OwnerDisks = []int{pl.Disk}
			pl.OwnerPages = []int64{pl.Page}
		}
		if err := validatePlacement(*pl, m.Disks, m.Replicas); err != nil {
			return nil, err
		}
		s.byID[pl.ID] = *pl
	}
	s.loads = make([]atomic.Int64, m.Disks)
	s.files = make([]*os.File, m.Disks)
	flags := os.O_RDONLY
	if writable {
		flags = os.O_RDWR
	}
	for d := range s.files {
		fh, err := os.OpenFile(filepath.Join(dir, DiskFileName(d)), flags, 0)
		if err != nil {
			s.Close()
			return nil, err
		}
		s.files[d] = fh
	}
	return s, nil
}

// validatePlacement checks one placement's owner lists against the manifest:
// exactly replicas distinct in-range owner disks, one copy page per owner,
// and a primary that mirrors owner 0.
func validatePlacement(pl Placement, disks, replicas int) error {
	if len(pl.OwnerDisks) != replicas || len(pl.OwnerPages) != replicas {
		return fmt.Errorf("store: bucket %d has %d/%d owner disks/pages, want %d",
			pl.ID, len(pl.OwnerDisks), len(pl.OwnerPages), replicas)
	}
	if pl.OwnerDisks[0] != pl.Disk || pl.OwnerPages[0] != pl.Page {
		return fmt.Errorf("store: bucket %d primary disagrees with owner 0", pl.ID)
	}
	for i, d := range pl.OwnerDisks {
		if d < 0 || d >= disks {
			return fmt.Errorf("store: bucket %d on disk %d of %d", pl.ID, d, disks)
		}
		for j := 0; j < i; j++ {
			if pl.OwnerDisks[j] == d {
				return fmt.Errorf("store: bucket %d owns disk %d twice", pl.ID, d)
			}
		}
	}
	return nil
}

// OpenGrid loads the grid file embedded in a layout directory by Write.
// Its bucket ids are the ones the manifest placements (and ReadBucket)
// address.
func OpenGrid(dir string) (*gridfile.File, error) {
	fh, err := os.Open(filepath.Join(dir, gridFileName))
	if err != nil {
		return nil, fmt.Errorf("store: layout has no embedded grid file: %w", err)
	}
	defer fh.Close()
	return gridfile.Read(fh)
}

// Manifest returns the layout description.
func (s *Store) Manifest() Manifest {
	s.pmu.RLock()
	defer s.pmu.RUnlock()
	return s.manifest
}

// lookup fetches one placement under the read lock. Placement values are
// copied out and their owner slices are copy-on-write (the write path
// builds fresh slices instead of mutating), so the copy stays valid after
// the lock is released even while mutations land.
func (s *Store) lookup(id int32) (Placement, bool) {
	s.pmu.RLock()
	pl, ok := s.byID[id]
	s.pmu.RUnlock()
	return pl, ok
}

// Placement reports where one bucket lives, and whether it exists.
func (s *Store) Placement(id int32) (Placement, bool) {
	return s.lookup(id)
}

// Disks returns the number of disk files in the layout.
func (s *Store) Disks() int { return s.manifest.Disks }

// Replicas returns the number of copies of each bucket in the layout
// (1 for an unreplicated layout).
func (s *Store) Replicas() int { return s.manifest.Replicas }

// Owners returns one bucket's ordered owner-disk list (primary first), or
// nil for an unknown bucket. The returned slice must not be modified.
func (s *Store) Owners(id int32) []int {
	pl, ok := s.lookup(id)
	if !ok {
		return nil
	}
	return pl.OwnerDisks
}

// PickOwner returns the least-loaded owner disk for one bucket, skipping
// disks for which exclude returns true (nil excludes nothing). Load is the
// in-flight read count maintained by readAt plus whatever queue depth the
// caller registered with AddLoad; ties prefer the earlier replica level, so
// an idle store reads primaries. ok is false when the bucket is unknown or
// every owner is excluded.
func (s *Store) PickOwner(id int32, exclude func(disk int) bool) (disk int, ok bool) {
	pl, found := s.lookup(id)
	if !found {
		return 0, false
	}
	best, bestLoad := -1, int64(0)
	for _, d := range pl.OwnerDisks {
		if exclude != nil && exclude(d) {
			continue
		}
		if l := s.loads[d].Load(); best < 0 || l < bestLoad {
			best, bestLoad = d, l
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// AddLoad adjusts one disk's in-flight load counter by delta. The server
// registers queued batch depth here so replica selection reacts to pressure
// that has not reached the pread yet; calls must be balanced.
func (s *Store) AddLoad(disk int, delta int64) { s.loads[disk].Add(delta) }

// DiskLoad reports one disk's current in-flight load counter.
func (s *Store) DiskLoad(disk int) int64 { return s.loads[disk].Load() }

// Domain reconstructs the grid file's domain.
func (s *Store) Domain() geom.Rect {
	r := make(geom.Rect, len(s.manifest.Domain))
	for i, iv := range s.manifest.Domain {
		r[i] = geom.Interval{Lo: iv[0], Hi: iv[1]}
	}
	return r
}

// bufPool recycles page read buffers between bucket fetches so the serving
// hot path does not allocate one buffer per read. Buffers are sized to the
// largest request seen and reused across coalesced runs.
var bufPool sync.Pool

func getBuf(n int) []byte {
	if v := bufPool.Get(); v != nil {
		b := *(v.(*[]byte))
		if cap(b) >= n {
			return b[:n]
		}
	}
	return make([]byte, n)
}

func putBuf(b []byte) { bufPool.Put(&b) }

// decodeBucketFlat validates and decodes one bucket's pages from data
// (exactly pl.Pages consecutive pages) into arena form: one freshly
// allocated flat coordinate array — a single allocation regardless of
// record count. The result always carries the manifest's dimensionality,
// even for an empty bucket, so callers can distinguish "decoded empty"
// from the zero Flat.
func (s *Store) decodeBucketFlat(data []byte, pl Placement) (geom.Flat, error) {
	dims := s.manifest.Dims
	pageBytes := s.manifest.PageBytes
	flat := make([]float64, 0, pl.Recs*dims)
	for p := 0; p < pl.Pages; p++ {
		page := data[p*pageBytes : (p+1)*pageBytes]
		if s.verify && s.manifest.PageFormat == pageFormatChecksum {
			if got, want := binary.LittleEndian.Uint32(page[8:]), pageChecksum(page); got != want {
				return geom.Flat{}, fmt.Errorf("store: bucket %d page %d: %w (stored %08x, computed %08x)",
					pl.ID, p, ErrChecksum, got, want)
			}
		}
		gotID := int32(binary.LittleEndian.Uint32(page[0:]))
		if gotID != pl.ID {
			return geom.Flat{}, fmt.Errorf("store: page %d of bucket %d holds bucket %d", p, pl.ID, gotID)
		}
		n := int(binary.LittleEndian.Uint32(page[4:]))
		if n < 0 || s.header+n*8*dims > pageBytes {
			return geom.Flat{}, fmt.Errorf("store: bucket %d page %d has implausible count %d", pl.ID, p, n)
		}
		o := s.header
		for i := 0; i < n*dims; i++ {
			flat = append(flat, bitsFloat(binary.LittleEndian.Uint64(page[o:])))
			o += 8
		}
	}
	if len(flat) != pl.Recs*dims {
		return geom.Flat{}, fmt.Errorf("store: bucket %d holds %d records, manifest says %d",
			pl.ID, len(flat)/dims, pl.Recs)
	}
	return geom.Flat{Dims: dims, Coords: flat}, nil
}

// decodeBucket is the conventional-view decoder: the flat arena plus one
// subslice header per point (two allocations per bucket).
func (s *Store) decodeBucket(data []byte, pl Placement) ([]geom.Point, error) {
	fl, err := s.decodeBucketFlat(data, pl)
	if err != nil {
		return nil, err
	}
	return fl.Points(), nil
}

// SetFaults attaches a failpoint registry consulted before every positioned
// read, at both fault.SiteStoreRead and the per-disk site for the disk being
// read. A nil registry (the default) disables injection entirely. Call this
// before handing the Store to concurrent readers.
func (s *Store) SetFaults(reg *fault.Registry) {
	s.faults = reg
	s.diskSites = make([]string, s.manifest.Disks)
	for d := range s.diskSites {
		s.diskSites[d] = fault.StoreReadDiskSite(d)
	}
}

// Faults returns the registry attached with SetFaults, or nil.
func (s *Store) Faults() *fault.Registry { return s.faults }

// SetVerify enables (or disables) CRC-32C validation of every page during
// decode. It only has an effect on checksummed layouts. Call before handing
// the Store to concurrent readers.
func (s *Store) SetVerify(on bool) { s.verify = on }

// Checksummed reports whether the layout's pages carry CRC-32C checksums
// (the format every new layout is written in).
func (s *Store) Checksummed() bool { return s.manifest.PageFormat == pageFormatChecksum }

// SetClock replaces the clock used by the timed read variants. Test hook:
// a deterministic step clock makes pread/decode timings exact. Call before
// handing the Store to concurrent readers.
func (s *Store) SetClock(now func() time.Time) { s.now = now }

// readAt performs one positioned read against a disk file, first consulting
// the failpoint registry. An injected delay stalls (bounded by ctx), an
// injected error aborts the read, and a torn injection lets the read
// complete but destroys the last page's header so decode validation fails —
// modelling a partial write/read that delivered garbage past some point.
// It reports whether the buffer was torn so callers can classify the decode
// failure as transient.
func (s *Store) readAt(ctx context.Context, disk int, buf []byte, off int64) (torn bool, err error) {
	s.loads[disk].Add(1)
	defer s.loads[disk].Add(-1)
	if s.faults.Enabled() {
		inj, hit := s.faults.Eval(fault.SiteStoreRead)
		if inj2, hit2 := s.faults.Eval(s.diskSites[disk]); hit2 {
			hit = true
			inj.Delay += inj2.Delay
			inj.Torn = inj.Torn || inj2.Torn
			if inj.Err == nil {
				inj.Err = inj2.Err
			}
		}
		if hit {
			if inj.Delay > 0 {
				if err := fault.Sleep(ctx, inj.Delay); err != nil {
					return false, err
				}
			}
			if inj.Err != nil {
				return false, inj.Err
			}
			torn = inj.Torn
		}
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return false, err
		}
	}
	if _, err := s.files[disk].ReadAt(buf, off); err != nil {
		return false, err
	}
	if torn && len(buf) >= s.manifest.PageBytes {
		// Stamp an impossible bucket id into the final page header; the
		// decode pass rejects it the way it rejects real corruption.
		binary.LittleEndian.PutUint32(buf[len(buf)-s.manifest.PageBytes:], ^uint32(0))
	}
	return torn, nil
}

// Timing splits a read's cost between raw positioned I/O (including injected
// stalls) and page validation/decoding. The timed read variants accumulate
// into it, so one Timing can cover a whole batch of calls. Callers that pass
// nil pay no clock reads at all.
type Timing struct {
	Pread  time.Duration
	Decode time.Duration
}

// ReadBucket fetches one bucket's keys from its disk file. The returned
// slice is freshly allocated. It also reports the number of pages read
// (the I/O the paper's response-time metric charges). ReadBucket is safe
// for concurrent use: it reads with positioned ReadAt calls (pread) and
// touches no mutable Store state. A bucket's pages are consecutive, so the
// read is a single ReadAt regardless of bucket size. ctx bounds injected
// stalls; a nil ctx is treated as background.
func (s *Store) ReadBucket(ctx context.Context, id int32) ([]geom.Point, int, error) {
	return s.ReadBucketTimed(ctx, id, nil)
}

// ReadBucketTimed is ReadBucket with an optional pread/decode time split
// accumulated into tm (nil disables timing).
func (s *Store) ReadBucketTimed(ctx context.Context, id int32, tm *Timing) ([]geom.Point, int, error) {
	pl, ok := s.lookup(id)
	if !ok {
		return nil, 0, fmt.Errorf("store: unknown bucket %d", id)
	}
	return s.readOne(ctx, pl, tm)
}

// readOne reads and decodes a single placement (whichever copy pl points
// at).
func (s *Store) readOne(ctx context.Context, pl Placement, tm *Timing) ([]geom.Point, int, error) {
	fl, pages, err := s.readOneFlat(ctx, pl, tm)
	if err != nil {
		return nil, 0, err
	}
	return fl.Points(), pages, nil
}

// readOneFlat is readOne in arena form: one allocation for the record data.
func (s *Store) readOneFlat(ctx context.Context, pl Placement, tm *Timing) (geom.Flat, int, error) {
	buf := getBuf(pl.Pages * s.manifest.PageBytes)
	defer putBuf(buf)
	var t0 time.Time
	if tm != nil {
		t0 = s.now()
	}
	torn, err := s.readAt(ctx, pl.Disk, buf, pl.Page*int64(s.manifest.PageBytes))
	if tm != nil {
		now := s.now()
		tm.Pread += now.Sub(t0)
		t0 = now
	}
	if err != nil {
		return geom.Flat{}, 0, fmt.Errorf("store: reading bucket %d: %w", pl.ID, err)
	}
	fl, err := s.decodeBucketFlat(buf, pl)
	if tm != nil {
		tm.Decode += s.now().Sub(t0)
	}
	if err != nil {
		if torn {
			return geom.Flat{}, 0, fmt.Errorf("store: torn read of bucket %d: %w (%v)", pl.ID, fault.ErrInjected, err)
		}
		return geom.Flat{}, 0, err
	}
	return fl, pl.Pages, nil
}

// maxCoalesceBytes bounds one coalesced ReadAt so the pooled buffers stay a
// sane size even when many large buckets are adjacent on disk.
const maxCoalesceBytes = 1 << 20

// ReadBuckets fetches a set of buckets with coalesced I/O: placements are
// grouped per disk, sorted by page offset, and every run of contiguous
// pages is read with a single ReadAt into a pooled buffer — the
// disk-directed trick that turns a query's scattered per-bucket reads into
// a few large sequential requests. It returns each bucket's decoded records
// and the total number of pages read. Like ReadBucket it is safe for
// concurrent use. Duplicate ids are fetched once. ctx bounds injected
// stalls; a nil ctx is treated as background.
func (s *Store) ReadBuckets(ctx context.Context, ids []int32) (map[int32][]geom.Point, int, error) {
	return s.ReadBucketsTimed(ctx, ids, nil)
}

// ReadBucketsTimed is ReadBuckets with an optional pread/decode time split
// accumulated into tm (nil disables timing).
func (s *Store) ReadBucketsTimed(ctx context.Context, ids []int32, tm *Timing) (map[int32][]geom.Point, int, error) {
	out := make(map[int32][]geom.Point, len(ids))
	pls := make([]Placement, 0, len(ids))
	for _, id := range ids {
		pl, ok := s.lookup(id)
		if !ok {
			return nil, 0, fmt.Errorf("store: unknown bucket %d", id)
		}
		if _, dup := out[id]; dup {
			continue
		}
		out[id] = nil
		pls = append(pls, pl)
	}
	pages, err := s.readPlacements(ctx, pls, out, tm)
	if err != nil {
		return nil, 0, err
	}
	return out, pages, nil
}

// ReadBucketsFrom fetches a set of buckets from ONE specific owner disk with
// the same coalescing as ReadBuckets. Every id must have a copy on that
// disk; a replicated layout's secondary copies are addressed by their own
// page offsets. This is the read path the server's per-disk I/O goroutines
// use, so a failover retry against a surviving owner reads that owner's
// copy rather than re-touching the failed disk.
func (s *Store) ReadBucketsFrom(ctx context.Context, disk int, ids []int32) (map[int32][]geom.Point, int, error) {
	return s.ReadBucketsFromTimed(ctx, disk, ids, nil)
}

// ReadBucketsFromTimed is ReadBucketsFrom with an optional pread/decode time
// split accumulated into tm (nil disables timing).
func (s *Store) ReadBucketsFromTimed(ctx context.Context, disk int, ids []int32, tm *Timing) (map[int32][]geom.Point, int, error) {
	out := make(map[int32][]geom.Point, len(ids))
	pls := make([]Placement, 0, len(ids))
	for _, id := range ids {
		pl, ok := s.lookup(id)
		if !ok {
			return nil, 0, fmt.Errorf("store: unknown bucket %d", id)
		}
		pl, ok = placementOn(pl, disk)
		if !ok {
			return nil, 0, fmt.Errorf("store: bucket %d has no copy on disk %d", id, disk)
		}
		if _, dup := out[id]; dup {
			continue
		}
		out[id] = nil
		pls = append(pls, pl)
	}
	pages, err := s.readPlacements(ctx, pls, out, tm)
	if err != nil {
		return nil, 0, err
	}
	return out, pages, nil
}

// ReadBucketFrom fetches one bucket's keys from a specific owner disk.
func (s *Store) ReadBucketFrom(ctx context.Context, disk int, id int32) ([]geom.Point, int, error) {
	return s.ReadBucketFromTimed(ctx, disk, id, nil)
}

// ReadBucketFromTimed fetches one bucket's keys from a specific owner disk,
// with the same contract as ReadBucketTimed.
func (s *Store) ReadBucketFromTimed(ctx context.Context, disk int, id int32, tm *Timing) ([]geom.Point, int, error) {
	pl, ok := s.lookup(id)
	if !ok {
		return nil, 0, fmt.Errorf("store: unknown bucket %d", id)
	}
	pl, ok = placementOn(pl, disk)
	if !ok {
		return nil, 0, fmt.Errorf("store: bucket %d has no copy on disk %d", id, disk)
	}
	return s.readOne(ctx, pl, tm)
}

// placementOn rebinds a placement to the copy held by one specific owner
// disk, reporting whether that disk owns the bucket at all.
func placementOn(pl Placement, disk int) (Placement, bool) {
	for i, d := range pl.OwnerDisks {
		if d == disk {
			pl.Disk = disk
			pl.Page = pl.OwnerPages[i]
			return pl, true
		}
	}
	return pl, false
}

// plIdx pairs one placement with the caller's result slot, so the coalescing
// core can sort placements into disk order while landing each decode in the
// position the caller asked for. The scratch slices are pooled: a serving
// path batch allocates nothing here.
type plIdx struct {
	pl  Placement
	idx int
}

var plScratchPool = sync.Pool{New: func() any {
	s := make([]plIdx, 0, 32)
	return &s
}}

// ReadFlatsFrom fetches a batch of buckets from ONE specific owner disk in
// arena form: out[i] receives ids[i]'s records as a geom.Flat (one
// allocation per bucket), with the same run coalescing as ReadBucketsFrom.
// out must have at least len(ids) entries; ids must be distinct (the server
// submits per-disk lead batches, which are). The return value is the total
// number of pages read.
func (s *Store) ReadFlatsFrom(ctx context.Context, disk int, ids []int32, out []geom.Flat) (int, error) {
	return s.ReadFlatsFromTimed(ctx, disk, ids, out, nil)
}

// ReadFlatsFromTimed is ReadFlatsFrom with an optional pread/decode time
// split accumulated into tm (nil disables timing).
func (s *Store) ReadFlatsFromTimed(ctx context.Context, disk int, ids []int32, out []geom.Flat, tm *Timing) (int, error) {
	sp := plScratchPool.Get().(*[]plIdx)
	pls := (*sp)[:0]
	for i, id := range ids {
		pl, ok := s.lookup(id)
		if !ok {
			*sp = pls[:0]
			plScratchPool.Put(sp)
			return 0, fmt.Errorf("store: unknown bucket %d", id)
		}
		pl, ok = placementOn(pl, disk)
		if !ok {
			*sp = pls[:0]
			plScratchPool.Put(sp)
			return 0, fmt.Errorf("store: bucket %d has no copy on disk %d", id, disk)
		}
		pls = append(pls, plIdx{pl, i})
	}
	pages, err := s.readPlacementsFlat(ctx, pls, out, tm)
	*sp = pls[:0]
	plScratchPool.Put(sp)
	return pages, err
}

// ReadFlatFromTimed fetches one bucket's records from a specific owner disk
// in arena form.
func (s *Store) ReadFlatFromTimed(ctx context.Context, disk int, id int32, tm *Timing) (geom.Flat, int, error) {
	pl, ok := s.lookup(id)
	if !ok {
		return geom.Flat{}, 0, fmt.Errorf("store: unknown bucket %d", id)
	}
	pl, ok = placementOn(pl, disk)
	if !ok {
		return geom.Flat{}, 0, fmt.Errorf("store: bucket %d has no copy on disk %d", id, disk)
	}
	return s.readOneFlat(ctx, pl, tm)
}

// readPlacements is the map-keyed compatibility form of the coalescing read
// core; results land in out keyed by bucket id.
func (s *Store) readPlacements(ctx context.Context, pls []Placement, out map[int32][]geom.Point, tm *Timing) (int, error) {
	pidx := make([]plIdx, len(pls))
	flats := make([]geom.Flat, len(pls))
	for i, pl := range pls {
		pidx[i] = plIdx{pl, i}
	}
	pages, err := s.readPlacementsFlat(ctx, pidx, flats, tm)
	if err != nil {
		return 0, err
	}
	for i, pl := range pls {
		out[pl.ID] = flats[i].Points()
	}
	return pages, nil
}

// readPlacementsFlat is the shared coalescing read core: placements are
// grouped per disk, sorted by page offset, and contiguous runs are read with
// single ReadAt calls into a pooled scatter buffer. Each placement decodes
// into out[its idx] in arena form. The sort order — and therefore the
// sequence of positioned reads and failpoint evaluations — is identical to
// the pre-flat implementation, which the deterministic campaign gate relies
// on. The return value is the total number of pages read.
func (s *Store) readPlacementsFlat(ctx context.Context, pls []plIdx, out []geom.Flat, tm *Timing) (int, error) {
	// slices.SortFunc rather than sort.Slice: no closure/Swapper allocations
	// on the per-batch hot path. The comparison key (disk, then page) is a
	// total order over distinct placements, so the two sorts agree.
	slices.SortFunc(pls, func(a, b plIdx) int {
		if a.pl.Disk != b.pl.Disk {
			return a.pl.Disk - b.pl.Disk
		}
		return cmp.Compare(a.pl.Page, b.pl.Page)
	})

	pageBytes := int64(s.manifest.PageBytes)
	pages := 0
	for lo := 0; lo < len(pls); {
		// Grow the run while the next bucket starts exactly where this one
		// ends on the same disk and the run stays within the buffer cap.
		hi := lo + 1
		runPages := pls[lo].pl.Pages
		for hi < len(pls) &&
			pls[hi].pl.Disk == pls[lo].pl.Disk &&
			pls[hi].pl.Page == pls[hi-1].pl.Page+int64(pls[hi-1].pl.Pages) &&
			int64(runPages+pls[hi].pl.Pages)*pageBytes <= maxCoalesceBytes {
			runPages += pls[hi].pl.Pages
			hi++
		}
		buf := getBuf(runPages * s.manifest.PageBytes)
		var t0 time.Time
		if tm != nil {
			t0 = s.now()
		}
		torn, err := s.readAt(ctx, pls[lo].pl.Disk, buf, pls[lo].pl.Page*pageBytes)
		if tm != nil {
			now := s.now()
			tm.Pread += now.Sub(t0)
			t0 = now
		}
		if err != nil {
			putBuf(buf)
			return 0, fmt.Errorf("store: reading buckets %d..%d: %w",
				pls[lo].pl.ID, pls[hi-1].pl.ID, err)
		}
		off := 0
		for _, pi := range pls[lo:hi] {
			fl, err := s.decodeBucketFlat(buf[off:off+pi.pl.Pages*s.manifest.PageBytes], pi.pl)
			if err != nil {
				putBuf(buf)
				if torn {
					return 0, fmt.Errorf("store: torn read of bucket %d: %w (%v)",
						pi.pl.ID, fault.ErrInjected, err)
				}
				return 0, err
			}
			out[pi.idx] = fl
			off += pi.pl.Pages * s.manifest.PageBytes
		}
		putBuf(buf)
		if tm != nil {
			tm.Decode += s.now().Sub(t0)
		}
		pages += runPages
		lo = hi
	}
	return pages, nil
}

// DiskSizes returns every disk file's size in pages.
func (s *Store) DiskSizes() ([]int64, error) {
	out := make([]int64, len(s.files))
	for d, fh := range s.files {
		st, err := fh.Stat()
		if err != nil {
			return nil, err
		}
		out[d] = st.Size() / int64(s.manifest.PageBytes)
	}
	return out, nil
}

// Close releases the disk file handles. A writable store first attempts a
// final checkpoint (best-effort — replay covers whatever it could not
// flush) and closes its journals; use Checkpoint directly when the caller
// needs the error.
func (s *Store) Close() {
	if w := s.w; w != nil {
		w.mu.Lock()
		_ = s.checkpointLocked(false)
		for _, j := range w.journals {
			if j != nil {
				j.Close()
			}
		}
		w.mu.Unlock()
	}
	for _, fh := range s.files {
		if fh != nil {
			fh.Close()
		}
	}
}

// DiskFileName names disk d's page file within a layout directory. Exported
// so tooling that manipulates layouts physically (fault campaigns, tests)
// agrees with the writer on spelling.
func DiskFileName(d int) string { return fmt.Sprintf("disk%03d.dat", d) }

// gridFileName is the embedded grid file within a layout directory.
const gridFileName = "grid.grd"

func floatBits(v float64) uint64 { return math.Float64bits(v) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }

func closeAll(files []*os.File) {
	for _, fh := range files {
		if fh != nil {
			fh.Close()
		}
	}
}
