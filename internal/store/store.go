// Package store persists a declustered grid file the way the paper's
// simulator does: "reads in the dataset and declusters it to separate files
// corresponding to every disk being simulated". A layout directory holds
//
//	manifest.json   grid metadata, page size and the bucket placement map
//	grid.grd        the grid file's scales and directory (coordinator state)
//	disk000.dat …   one page file per disk; each bucket occupies one or
//	                more consecutive pages on its assigned disk
//
// Pages are fixed-size; a bucket larger than one page (possible only for
// the overfull duplicate-key case) spans consecutive pages. The reader
// serves individual buckets with real file I/O, so experiments can be run
// against actual per-disk files rather than in-memory structures.
//
// A Store is safe for concurrent readers: ReadBucket addresses pages with
// pread-style ReadAt calls on per-disk file handles and mutates no shared
// state, so any number of goroutines may fetch buckets simultaneously —
// the property the network query service (internal/server) relies on for
// its per-disk I/O goroutines.
package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"pgridfile/internal/core"
	"pgridfile/internal/geom"
	"pgridfile/internal/gridfile"
)

// pageHeaderBytes is the per-page header: bucket id (u32), record count in
// this page (u32).
const pageHeaderBytes = 8

// Placement locates one bucket in the layout.
type Placement struct {
	ID    int32 `json:"id"`
	Disk  int   `json:"disk"`
	Page  int64 `json:"page"`  // first page index within the disk file
	Pages int   `json:"pages"` // consecutive pages occupied
	Recs  int   `json:"recs"`
}

// Manifest describes a layout directory.
type Manifest struct {
	Disks     int          `json:"disks"`
	Dims      int          `json:"dims"`
	PageBytes int          `json:"page_bytes"`
	Domain    [][2]float64 `json:"domain"`
	Buckets   []Placement  `json:"buckets"`
}

// recordsPerPage returns how many dims-dimensional keys fit in a page.
func recordsPerPage(pageBytes, dims int) int {
	return (pageBytes - pageHeaderBytes) / (8 * dims)
}

// Write lays out the grid file's buckets over per-disk page files under
// dir, following the allocation. It returns the manifest it wrote.
func Write(dir string, f *gridfile.File, alloc core.Allocation, pageBytes int) (*Manifest, error) {
	if pageBytes <= pageHeaderBytes+8*f.Dims() {
		return nil, fmt.Errorf("store: page size %d too small for %d-D records", pageBytes, f.Dims())
	}
	views := f.Buckets()
	if err := alloc.Validate(len(views)); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}

	dom := f.Domain()
	m := &Manifest{
		Disks:     alloc.Disks,
		Dims:      f.Dims(),
		PageBytes: pageBytes,
	}
	for _, iv := range dom {
		m.Domain = append(m.Domain, [2]float64{iv.Lo, iv.Hi})
	}

	files := make([]*os.File, alloc.Disks)
	nextPage := make([]int64, alloc.Disks)
	for d := range files {
		path := filepath.Join(dir, diskFileName(d))
		fh, err := os.Create(path)
		if err != nil {
			closeAll(files)
			return nil, err
		}
		files[d] = fh
	}
	defer closeAll(files)

	perPage := recordsPerPage(pageBytes, f.Dims())
	page := make([]byte, pageBytes)
	for _, v := range views {
		disk := alloc.Assign[v.Index]
		var keys []float64
		f.ForEachRecordInBucket(v.ID, func(key []float64, _ []byte) {
			keys = append(keys, key...)
		})
		nrec := len(keys) / f.Dims()
		npages := (nrec + perPage - 1) / perPage
		if npages == 0 {
			npages = 1 // empty buckets still own a page
		}
		pl := Placement{ID: v.ID, Disk: disk, Page: nextPage[disk], Pages: npages, Recs: nrec}
		for p := 0; p < npages; p++ {
			for i := range page {
				page[i] = 0
			}
			start := p * perPage
			end := start + perPage
			if end > nrec {
				end = nrec
			}
			binary.LittleEndian.PutUint32(page[0:], uint32(v.ID))
			binary.LittleEndian.PutUint32(page[4:], uint32(end-start))
			off := pageHeaderBytes
			for _, k := range keys[start*f.Dims() : end*f.Dims()] {
				binary.LittleEndian.PutUint64(page[off:], floatBits(k))
				off += 8
			}
			if _, err := files[disk].Write(page); err != nil {
				return nil, err
			}
		}
		nextPage[disk] += int64(npages)
		m.Buckets = append(m.Buckets, pl)
	}
	for _, fh := range files {
		if err := fh.Sync(); err != nil {
			return nil, err
		}
	}

	// Embed the grid file itself so the layout is self-contained: a server
	// can reopen the coordinator's scales and directory (whose bucket ids
	// the manifest placements refer to) from the layout directory alone.
	gf, err := os.Create(filepath.Join(dir, gridFileName))
	if err != nil {
		return nil, err
	}
	if _, err := f.WriteTo(gf); err != nil {
		gf.Close()
		return nil, err
	}
	if err := gf.Close(); err != nil {
		return nil, err
	}

	manifest, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), manifest, 0o644); err != nil {
		return nil, err
	}
	return m, nil
}

// Store reads buckets from a layout directory with real file I/O.
type Store struct {
	manifest Manifest
	files    []*os.File
	byID     map[int32]Placement
}

// Open loads a layout directory written by Write.
func Open(dir string) (*Store, error) {
	raw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("store: parsing manifest: %w", err)
	}
	if m.Disks < 1 || m.Dims < 1 || m.PageBytes <= pageHeaderBytes {
		return nil, fmt.Errorf("store: implausible manifest (disks=%d dims=%d page=%d)",
			m.Disks, m.Dims, m.PageBytes)
	}
	s := &Store{manifest: m, byID: make(map[int32]Placement, len(m.Buckets))}
	for _, pl := range m.Buckets {
		if pl.Disk < 0 || pl.Disk >= m.Disks {
			return nil, fmt.Errorf("store: bucket %d on disk %d of %d", pl.ID, pl.Disk, m.Disks)
		}
		s.byID[pl.ID] = pl
	}
	s.files = make([]*os.File, m.Disks)
	for d := range s.files {
		fh, err := os.Open(filepath.Join(dir, diskFileName(d)))
		if err != nil {
			s.Close()
			return nil, err
		}
		s.files[d] = fh
	}
	return s, nil
}

// OpenGrid loads the grid file embedded in a layout directory by Write.
// Its bucket ids are the ones the manifest placements (and ReadBucket)
// address.
func OpenGrid(dir string) (*gridfile.File, error) {
	fh, err := os.Open(filepath.Join(dir, gridFileName))
	if err != nil {
		return nil, fmt.Errorf("store: layout has no embedded grid file: %w", err)
	}
	defer fh.Close()
	return gridfile.Read(fh)
}

// Manifest returns the layout description.
func (s *Store) Manifest() Manifest { return s.manifest }

// Placement reports where one bucket lives, and whether it exists.
func (s *Store) Placement(id int32) (Placement, bool) {
	pl, ok := s.byID[id]
	return pl, ok
}

// Disks returns the number of disk files in the layout.
func (s *Store) Disks() int { return s.manifest.Disks }

// Domain reconstructs the grid file's domain.
func (s *Store) Domain() geom.Rect {
	r := make(geom.Rect, len(s.manifest.Domain))
	for i, iv := range s.manifest.Domain {
		r[i] = geom.Interval{Lo: iv[0], Hi: iv[1]}
	}
	return r
}

// ReadBucket fetches one bucket's keys from its disk file. The returned
// slice is freshly allocated. It also reports the number of pages read
// (the I/O the paper's response-time metric charges). ReadBucket is safe
// for concurrent use: it reads pages with positioned ReadAt calls (pread)
// and touches no mutable Store state.
func (s *Store) ReadBucket(id int32) ([]geom.Point, int, error) {
	pl, ok := s.byID[id]
	if !ok {
		return nil, 0, fmt.Errorf("store: unknown bucket %d", id)
	}
	dims := s.manifest.Dims
	page := make([]byte, s.manifest.PageBytes)
	out := make([]geom.Point, 0, pl.Recs)
	for p := 0; p < pl.Pages; p++ {
		off := (pl.Page + int64(p)) * int64(s.manifest.PageBytes)
		if _, err := s.files[pl.Disk].ReadAt(page, off); err != nil {
			return nil, 0, fmt.Errorf("store: reading bucket %d page %d: %w", id, p, err)
		}
		gotID := int32(binary.LittleEndian.Uint32(page[0:]))
		if gotID != id {
			return nil, 0, fmt.Errorf("store: page %d of bucket %d holds bucket %d", p, id, gotID)
		}
		n := int(binary.LittleEndian.Uint32(page[4:]))
		if n < 0 || pageHeaderBytes+n*8*dims > s.manifest.PageBytes {
			return nil, 0, fmt.Errorf("store: bucket %d page %d has implausible count %d", id, p, n)
		}
		o := pageHeaderBytes
		for i := 0; i < n; i++ {
			pt := make(geom.Point, dims)
			for d := 0; d < dims; d++ {
				pt[d] = bitsFloat(binary.LittleEndian.Uint64(page[o:]))
				o += 8
			}
			out = append(out, pt)
		}
	}
	if len(out) != pl.Recs {
		return nil, 0, fmt.Errorf("store: bucket %d holds %d records, manifest says %d",
			id, len(out), pl.Recs)
	}
	return out, pl.Pages, nil
}

// DiskSizes returns every disk file's size in pages.
func (s *Store) DiskSizes() ([]int64, error) {
	out := make([]int64, len(s.files))
	for d, fh := range s.files {
		st, err := fh.Stat()
		if err != nil {
			return nil, err
		}
		out[d] = st.Size() / int64(s.manifest.PageBytes)
	}
	return out, nil
}

// Close releases the disk file handles.
func (s *Store) Close() {
	for _, fh := range s.files {
		if fh != nil {
			fh.Close()
		}
	}
}

func diskFileName(d int) string { return fmt.Sprintf("disk%03d.dat", d) }

// gridFileName is the embedded grid file within a layout directory.
const gridFileName = "grid.grd"

func floatBits(v float64) uint64 { return math.Float64bits(v) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }

func closeAll(files []*os.File) {
	for _, fh := range files {
		if fh != nil {
			fh.Close()
		}
	}
}
