package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"

	"pgridfile/internal/geom"
)

// Per-disk write-ahead journal. Every mutation is appended (and fsynced) to
// the journal of every disk owning a copy of the target bucket *before* any
// data page is touched, and the mutation is acknowledged only once all owner
// journals hold it. OpenWritable replays the journals through the grid
// file's deterministic insert/delete machinery, so a crash at any point
// between the last journal fsync and the last replica page write loses
// nothing — and a crash before the last journal fsync loses only
// never-acknowledged operations.
//
// The journal is logical (it records the operation and key, not page
// images): bucket splits, scale refinements and buddy merges are re-derived
// during replay by re-running the op, which is deterministic given the
// checkpointed grid state. A record is laid out as
//
//	size u32 | lsn u64 | op u8 | pad u8×3 | key f64×dims | crc u32
//
// size counts the bytes after the size field; crc is the CRC-32C of
// everything before it (size included). Reading stops at the first short,
// implausible or checksum-failing record, which discards a torn tail —
// exactly the records whose fsync never completed, and therefore exactly
// the operations that were never acknowledged.
const (
	journalOpInsert = 1
	journalOpDelete = 2

	journalHdr = 4 + 8 + 4 // size + lsn + op/pad
	journalCRC = 4
)

// JournalFileName names disk d's write-ahead journal within a layout
// directory. Exported for the same reason as DiskFileName.
func JournalFileName(d int) string { return fmt.Sprintf("journal%03d.wal", d) }

// journalRecSize returns the encoded size of one record for a layout with
// the given dimensionality.
func journalRecSize(dims int) int { return journalHdr + 8*dims + journalCRC }

// appendJournalRec encodes one journal record into dst.
func appendJournalRec(dst []byte, lsn uint64, op uint8, key geom.Point) []byte {
	start := len(dst)
	size := uint32(8 + 4 + 8*len(key) + journalCRC)
	dst = binary.LittleEndian.AppendUint32(dst, size)
	dst = binary.LittleEndian.AppendUint64(dst, lsn)
	dst = append(dst, op, 0, 0, 0)
	for _, k := range key {
		dst = binary.LittleEndian.AppendUint64(dst, floatBits(k))
	}
	crc := crc32.Checksum(dst[start:], crcTable)
	return binary.LittleEndian.AppendUint32(dst, crc)
}

// journalRec is one decoded journal record.
type journalRec struct {
	lsn uint64
	op  uint8
	key []float64
}

// readJournal decodes every valid record from one journal file, stopping at
// the first torn or corrupt entry (see the package comment above — the tail
// past that point holds only unacknowledged writes).
func readJournal(path string, dims int) ([]journalRec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	want := journalRecSize(dims)
	var out []journalRec
	for off := 0; off+want <= len(data); off += want {
		rec := data[off : off+want]
		if binary.LittleEndian.Uint32(rec[0:]) != uint32(want-4) {
			break
		}
		stored := binary.LittleEndian.Uint32(rec[want-journalCRC:])
		if stored != crc32.Checksum(rec[:want-journalCRC], crcTable) {
			break
		}
		r := journalRec{
			lsn: binary.LittleEndian.Uint64(rec[4:]),
			op:  rec[12],
			key: make([]float64, dims),
		}
		if r.op != journalOpInsert && r.op != journalOpDelete {
			break
		}
		for d := 0; d < dims; d++ {
			r.key[d] = bitsFloat(binary.LittleEndian.Uint64(rec[journalHdr+8*d:]))
		}
		out = append(out, r)
	}
	return out, nil
}
