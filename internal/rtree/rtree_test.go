package rtree

import (
	"math/rand"
	"testing"

	"pgridfile/internal/core"
	"pgridfile/internal/geom"
	"pgridfile/internal/sim"
	"pgridfile/internal/synth"
	"pgridfile/internal/workload"
)

func randomPoints(n, dims int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, dims)
		for d := range p {
			p[d] = rng.Float64() * 2000
		}
		pts[i] = p
	}
	return pts
}

func TestBulkLoadValidation(t *testing.T) {
	if _, err := BulkLoad(nil, Config{LeafCapacity: 4}); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := BulkLoad(randomPoints(10, 2, 1), Config{LeafCapacity: 1}); err == nil {
		t.Error("capacity 1 accepted")
	}
	if _, err := BulkLoad(randomPoints(10, 2, 1), Config{LeafCapacity: 4, Fanout: 1}); err == nil {
		t.Error("fanout 1 accepted")
	}
	mixed := []geom.Point{{1, 2}, {3}}
	if _, err := BulkLoad(mixed, Config{LeafCapacity: 4}); err == nil {
		t.Error("mixed dimensionality accepted")
	}
	if _, err := BulkLoad(randomPoints(10, 2, 1), Config{
		LeafCapacity: 4, Domain: geom.NewRect([]float64{0}, []float64{1}),
	}); err == nil {
		t.Error("domain dimensionality mismatch accepted")
	}
}

func TestLeafCapacityAndCoverage(t *testing.T) {
	for _, dims := range []int{1, 2, 3} {
		pts := randomPoints(2000, dims, int64(dims))
		tr, err := BulkLoad(pts, Config{LeafCapacity: 16})
		if err != nil {
			t.Fatal(err)
		}
		if tr.Len() != 2000 {
			t.Fatalf("Len = %d", tr.Len())
		}
		total := 0
		for _, v := range tr.Leaves() {
			if v.Records > 16 {
				t.Fatalf("leaf %d holds %d points, capacity 16", v.ID, v.Records)
			}
			total += v.Records
		}
		if total != 2000 {
			t.Fatalf("leaves hold %d points", total)
		}
		// A full-domain query touches all leaves and counts all points.
		if got := tr.RangeCount(tr.Domain()); got != 2000 {
			t.Fatalf("full-domain RangeCount = %d", got)
		}
		if got := len(tr.BucketsInRange(tr.Domain())); got != tr.NumLeaves() {
			t.Fatalf("full-domain query hit %d of %d leaves", got, tr.NumLeaves())
		}
	}
}

func TestRangeCountMatchesBruteForce(t *testing.T) {
	pts := randomPoints(3000, 2, 7)
	tr, err := BulkLoad(pts, Config{LeafCapacity: 24})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 60; trial++ {
		q := make(geom.Rect, 2)
		for d := range q {
			a := rng.Float64() * 2000
			b := a + rng.Float64()*600
			q[d] = geom.Interval{Lo: a, Hi: b}
		}
		want := 0
		for _, p := range pts {
			if q.ContainsPoint(p) {
				want++
			}
		}
		if got := tr.RangeCount(q); got != want {
			t.Fatalf("trial %d: RangeCount = %d, brute force %d", trial, got, want)
		}
	}
}

func TestSTRTilesAreLocal(t *testing.T) {
	// STR packing should produce leaves whose MBR area is tiny relative to
	// the domain (tight tiles, not slivers spanning the space).
	pts := randomPoints(4000, 2, 9)
	tr, err := BulkLoad(pts, Config{LeafCapacity: 32})
	if err != nil {
		t.Fatal(err)
	}
	domainArea := tr.Domain().Volume()
	leaves := tr.Leaves()
	var totalArea float64
	for _, v := range leaves {
		totalArea += v.Region.Volume()
	}
	// Perfect tiling sums to the domain area; STR should stay within ~2x.
	if totalArea > 2*domainArea {
		t.Errorf("leaf MBRs sum to %.0f, domain area %.0f: tiles overlap heavily",
			totalArea, domainArea)
	}
	if tr.Height() < 2 {
		t.Errorf("tree of %d leaves has height %d", tr.NumLeaves(), tr.Height())
	}
}

func TestDeclusterRTreeLeaves(t *testing.T) {
	// The paper's proximity-based algorithms apply to R-tree leaves
	// unchanged; minimax must beat the centroid-curve baseline on closest
	// pairs, mirroring the grid-file result.
	ds := synth.Stock3D(60, 80, 11)
	pts := make([]geom.Point, len(ds.Records))
	for i, r := range ds.Records {
		pts[i] = r.Key
	}
	tr, err := BulkLoad(pts, Config{LeafCapacity: 64, Domain: ds.Domain})
	if err != nil {
		t.Fatal(err)
	}
	g := core.Grid{
		Sizes:   make([]int, tr.Dims()), // no grid: cells unused
		Domain:  tr.Domain(),
		Buckets: tr.Leaves(),
	}
	for i := range g.Sizes {
		g.Sizes[i] = 1
	}

	const disks = 16
	mm, err := (&core.Minimax{Seed: 1}).Decluster(g, disks)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := (&core.CentroidCurve{}).Decluster(g, disks)
	if err != nil {
		t.Fatal(err)
	}
	nn := sim.NearestCompanions(g, nil)
	mmPairs := sim.CountSameDisk(nn, mm)
	ccPairs := sim.CountSameDisk(nn, cc)
	if mmPairs > ccPairs {
		t.Errorf("minimax closest pairs %d above centroid-curve %d", mmPairs, ccPairs)
	}

	// Replay a workload through the generalized simulator.
	queries := workload.SquareRange(tr.Domain(), 0.01, 300, 13)
	resMM, err := sim.ReplaySource(tr, mm, tr.IndexByID(), queries)
	if err != nil {
		t.Fatal(err)
	}
	resCC, err := sim.ReplaySource(tr, cc, tr.IndexByID(), queries)
	if err != nil {
		t.Fatal(err)
	}
	if resMM.MeanResponseTime > resCC.MeanResponseTime*1.1 {
		t.Errorf("minimax response %.3f clearly above centroid-curve %.3f",
			resMM.MeanResponseTime, resCC.MeanResponseTime)
	}
}

func TestCentroidCurveBalanced(t *testing.T) {
	pts := randomPoints(1500, 2, 21)
	tr, err := BulkLoad(pts, Config{LeafCapacity: 20})
	if err != nil {
		t.Fatal(err)
	}
	g := core.Grid{Sizes: []int{1, 1}, Domain: tr.Domain(), Buckets: tr.Leaves()}
	alloc, err := (&core.CentroidCurve{}).Decluster(g, 7)
	if err != nil {
		t.Fatal(err)
	}
	loads := alloc.DiskLoads()
	max, min := loads[0], loads[0]
	for _, l := range loads {
		if l > max {
			max = l
		}
		if l < min {
			min = l
		}
	}
	if max-min > 1 {
		t.Errorf("round-robin loads uneven: %v", loads)
	}
}

func TestQueryDimensionMismatch(t *testing.T) {
	tr, err := BulkLoad(randomPoints(100, 2, 31), Config{LeafCapacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	if ids := tr.BucketsInRange(geom.Rect{{Lo: 0, Hi: 1}}); ids != nil {
		t.Error("1-D query on 2-D tree returned leaves")
	}
}

func TestPropertySTRInvariantsAcrossConfigs(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 15; trial++ {
		dims := 1 + rng.Intn(3)
		n := 100 + rng.Intn(3000)
		capacity := 2 + rng.Intn(60)
		pts := randomPoints(n, dims, int64(trial))
		tr, err := BulkLoad(pts, Config{LeafCapacity: capacity})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		total := 0
		for _, v := range tr.Leaves() {
			if v.Records > capacity {
				t.Fatalf("trial %d: leaf over capacity", trial)
			}
			if v.Records == 0 {
				t.Fatalf("trial %d: empty leaf", trial)
			}
			total += v.Records
			// Every leaf MBR must lie inside the inferred domain.
			if !tr.Domain().Intersects(v.Region) {
				t.Fatalf("trial %d: leaf MBR outside domain", trial)
			}
		}
		if total != n {
			t.Fatalf("trial %d: leaves hold %d of %d points", trial, total, n)
		}
		// Random point queries: a degenerate box at an indexed point finds it.
		for probe := 0; probe < 10; probe++ {
			p := pts[rng.Intn(len(pts))]
			q := make(geom.Rect, dims)
			for d := range q {
				q[d] = geom.Interval{Lo: p[d], Hi: p[d]}
			}
			if tr.RangeCount(q) < 1 {
				t.Fatalf("trial %d: indexed point not found", trial)
			}
		}
	}
}
