package rtree_test

import (
	"fmt"

	"pgridfile/internal/geom"
	"pgridfile/internal/rtree"
)

// ExampleBulkLoad packs points into an STR R-tree and runs a range query
// over the leaf pages.
func ExampleBulkLoad() {
	var pts []geom.Point
	for x := 0.0; x < 10; x++ {
		for y := 0.0; y < 10; y++ {
			pts = append(pts, geom.Point{x, y})
		}
	}
	tr, err := rtree.BulkLoad(pts, rtree.Config{LeafCapacity: 10})
	if err != nil {
		panic(err)
	}
	q := geom.NewRect([]float64{0, 0}, []float64{4, 4})
	fmt.Printf("points: %d in %d leaves (height %d)\n", tr.Len(), tr.NumLeaves(), tr.Height())
	fmt.Printf("range [0,4]^2: %d points from %d leaves\n",
		tr.RangeCount(q), len(tr.BucketsInRange(q)))
	// Output:
	// points: 100 in 12 leaves (height 3)
	// range [0,4]^2: 25 points from 3 leaves
}
