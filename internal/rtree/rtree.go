// Package rtree implements an R-tree bulk-loaded with the Sort-Tile-
// Recursive (STR) method, with leaf pages as the unit of declustering. The
// paper's minimax algorithm takes its edge weight — the proximity index —
// from Kamel and Faloutsos's *Parallel R-trees*, whose setting is exactly
// this: distribute R-tree leaf pages over disks so that spatially close
// pages land apart. This package lets the repository demonstrate that the
// declustering algorithms generalize from grid files to the tree-based
// structure class the paper's introduction discusses.
//
// The tree is static (bulk-loaded); range search descends from the root
// pruning by minimum bounding rectangles. Leaves expose the same BucketView
// shape as grid-file buckets, so the proximity-based algorithms (minimax,
// SSP, MST) and the centroid-curve allocator apply unchanged.
package rtree

import (
	"fmt"
	"sort"

	"pgridfile/internal/geom"
	"pgridfile/internal/gridfile"
)

// Tree is a static, STR-bulk-loaded R-tree over point data.
type Tree struct {
	dims     int
	domain   geom.Rect
	root     *node
	leaves   []*node // leaf id = index
	capacity int
	fanout   int
	height   int
	count    int
}

// node is either a leaf holding points or an internal node holding children.
type node struct {
	mbr      geom.Rect
	children []*node
	keys     []float64 // leaf only, flat dims-wide records
	leafID   int32     // leaf only
}

// Config controls bulk loading.
type Config struct {
	// LeafCapacity is the maximum number of points per leaf page
	// (the paper's bucket capacity; >= 2).
	LeafCapacity int
	// Fanout is the maximum children per internal node (>= 2); defaults
	// to LeafCapacity when zero.
	Fanout int
	// Domain is the data domain used for proximity computations; inferred
	// from the data when empty.
	Domain geom.Rect
}

// BulkLoad builds the tree with Sort-Tile-Recursive packing: points are
// recursively sorted along each dimension and cut into equal slabs so that
// leaves are square-ish tiles of at most LeafCapacity points.
func BulkLoad(points []geom.Point, cfg Config) (*Tree, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("rtree: no points")
	}
	if cfg.LeafCapacity < 2 {
		return nil, fmt.Errorf("rtree: LeafCapacity %d < 2", cfg.LeafCapacity)
	}
	dims := len(points[0])
	if dims == 0 {
		return nil, fmt.Errorf("rtree: zero-dimensional points")
	}
	for i, p := range points {
		if len(p) != dims {
			return nil, fmt.Errorf("rtree: point %d has %d dims, want %d", i, len(p), dims)
		}
	}
	fanout := cfg.Fanout
	if fanout == 0 {
		fanout = cfg.LeafCapacity
	}
	if fanout < 2 {
		return nil, fmt.Errorf("rtree: Fanout %d < 2", fanout)
	}

	domain := cfg.Domain
	if len(domain) == 0 {
		domain = inferDomain(points, dims)
	} else if len(domain) != dims {
		return nil, fmt.Errorf("rtree: domain has %d dims, data has %d", len(domain), dims)
	}

	t := &Tree{dims: dims, domain: domain.Clone(), capacity: cfg.LeafCapacity, fanout: fanout, count: len(points)}

	// Copy the points so sorting does not disturb the caller's slice.
	pts := make([]geom.Point, len(points))
	copy(pts, points)
	leaves := t.strTile(pts, 0)
	for _, l := range leaves {
		l.leafID = int32(len(t.leaves))
		t.leaves = append(t.leaves, l)
	}

	// Pack internal levels bottom-up by the same tiling on MBR centroids.
	level := leaves
	t.height = 1
	for len(level) > 1 {
		level = t.packLevel(level)
		t.height++
	}
	t.root = level[0]
	return t, nil
}

func inferDomain(points []geom.Point, dims int) geom.Rect {
	r := make(geom.Rect, dims)
	for d := 0; d < dims; d++ {
		lo, hi := points[0][d], points[0][d]
		for _, p := range points[1:] {
			if p[d] < lo {
				lo = p[d]
			}
			if p[d] > hi {
				hi = p[d]
			}
		}
		r[d] = geom.Interval{Lo: lo, Hi: hi}
	}
	return r
}

// strTile recursively sorts points along dimension d and cuts them into
// slabs sized so that the final tiles hold at most capacity points.
func (t *Tree) strTile(pts []geom.Point, d int) []*node {
	if len(pts) <= t.capacity {
		return []*node{t.newLeaf(pts)}
	}
	if d == t.dims-1 {
		// Last dimension: cut into capacity-sized runs.
		sort.Slice(pts, func(i, j int) bool { return pts[i][d] < pts[j][d] })
		var out []*node
		for start := 0; start < len(pts); start += t.capacity {
			end := start + t.capacity
			if end > len(pts) {
				end = len(pts)
			}
			out = append(out, t.newLeaf(pts[start:end]))
		}
		return out
	}

	// Number of leaves this subset needs, tiled into ~equal slabs along d:
	// the STR rule uses ceil(P^((D-d-1)/(D-d))) slabs of equal size... in
	// practice slabs = ceil(nLeaves^(1/(remaining dims))) balances tiles.
	nLeaves := (len(pts) + t.capacity - 1) / t.capacity
	remaining := t.dims - d
	slabs := ceilRoot(nLeaves, remaining)
	sort.Slice(pts, func(i, j int) bool { return pts[i][d] < pts[j][d] })
	per := (len(pts) + slabs - 1) / slabs
	var out []*node
	for start := 0; start < len(pts); start += per {
		end := start + per
		if end > len(pts) {
			end = len(pts)
		}
		out = append(out, t.strTile(pts[start:end], d+1)...)
	}
	return out
}

// ceilRoot returns ceil(n^(1/k)).
func ceilRoot(n, k int) int {
	if n <= 1 || k <= 1 {
		return n
	}
	r := 1
	for pow(r, k) < n {
		r++
	}
	return r
}

func pow(b, e int) int {
	out := 1
	for i := 0; i < e; i++ {
		out *= b
		if out < 0 { // overflow guard; never hit at our sizes
			return 1 << 62
		}
	}
	return out
}

func (t *Tree) newLeaf(pts []geom.Point) *node {
	n := &node{mbr: mbrOfPoints(pts)}
	n.keys = make([]float64, 0, len(pts)*t.dims)
	for _, p := range pts {
		n.keys = append(n.keys, p...)
	}
	return n
}

func mbrOfPoints(pts []geom.Point) geom.Rect {
	r := make(geom.Rect, len(pts[0]))
	for d := range r {
		r[d] = geom.Interval{Lo: pts[0][d], Hi: pts[0][d]}
	}
	for _, p := range pts[1:] {
		for d := range r {
			if p[d] < r[d].Lo {
				r[d].Lo = p[d]
			}
			if p[d] > r[d].Hi {
				r[d].Hi = p[d]
			}
		}
	}
	return r
}

// packLevel tiles a level of nodes into parents by centroid ordering.
func (t *Tree) packLevel(level []*node) []*node {
	// Sort by centroid along the first dimension, tile into slabs, then
	// sort each slab by the next dimension, and group fanout-at-a-time
	// (simple 2-pass STR over node centroids; adequate for static trees).
	nParents := (len(level) + t.fanout - 1) / t.fanout
	slabs := ceilRoot(nParents, t.dims)
	sort.Slice(level, func(i, j int) bool {
		return level[i].mbr.Center()[0] < level[j].mbr.Center()[0]
	})
	per := (len(level) + slabs - 1) / slabs
	var parents []*node
	for start := 0; start < len(level); start += per {
		end := start + per
		if end > len(level) {
			end = len(level)
		}
		slab := level[start:end]
		if t.dims > 1 {
			sort.Slice(slab, func(i, j int) bool {
				return slab[i].mbr.Center()[1] < slab[j].mbr.Center()[1]
			})
		}
		for s := 0; s < len(slab); s += t.fanout {
			e := s + t.fanout
			if e > len(slab) {
				e = len(slab)
			}
			children := append([]*node(nil), slab[s:e]...)
			mbr := children[0].mbr.Clone()
			for _, c := range children[1:] {
				mbr = mbr.Union(c.mbr)
			}
			parents = append(parents, &node{mbr: mbr, children: children})
		}
	}
	return parents
}

// Dims returns the dimensionality.
func (t *Tree) Dims() int { return t.dims }

// Domain returns the tree's domain.
func (t *Tree) Domain() geom.Rect { return t.domain.Clone() }

// Len returns the number of indexed points.
func (t *Tree) Len() int { return t.count }

// NumLeaves returns the number of leaf pages.
func (t *Tree) NumLeaves() int { return len(t.leaves) }

// Height returns the number of levels (1 = root is a leaf).
func (t *Tree) Height() int { return t.height }

// BucketsInRange returns the ids of the leaf pages whose MBR intersects q,
// in ascending id order — the I/O a range query must perform. It satisfies
// sim.Source.
func (t *Tree) BucketsInRange(q geom.Rect) []int32 {
	if len(q) != t.dims {
		return nil
	}
	var ids []int32
	var walk func(n *node)
	walk = func(n *node) {
		if !n.mbr.Intersects(q) {
			return
		}
		if n.children == nil {
			ids = append(ids, n.leafID)
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// RangeCount returns the number of points inside the closed box q.
func (t *Tree) RangeCount(q geom.Rect) int {
	count := 0
	for _, id := range t.BucketsInRange(q) {
		l := t.leaves[id]
		n := len(l.keys) / t.dims
		for i := 0; i < n; i++ {
			inside := true
			for d := 0; d < t.dims; d++ {
				v := l.keys[i*t.dims+d]
				if v < q[d].Lo || v > q[d].Hi {
					inside = false
					break
				}
			}
			if inside {
				count++
			}
		}
	}
	return count
}

// Leaves returns the declustering view of the leaf pages: one BucketView
// per leaf with its MBR as the region. Cell bounds are zeroed — R-trees
// have no grid, so only region-based (proximity/centroid) algorithms apply.
func (t *Tree) Leaves() []gridfile.BucketView {
	views := make([]gridfile.BucketView, len(t.leaves))
	for i, l := range t.leaves {
		views[i] = gridfile.BucketView{
			Index:   i,
			ID:      l.leafID,
			CellLo:  make([]int32, t.dims),
			CellHi:  make([]int32, t.dims),
			Region:  l.mbr.Clone(),
			Records: len(l.keys) / t.dims,
		}
	}
	return views
}

// IndexByID returns the identity table (leaf ids are already dense).
func (t *Tree) IndexByID() []int {
	out := make([]int, len(t.leaves))
	for i := range out {
		out[i] = i
	}
	return out
}
