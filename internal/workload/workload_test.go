package workload

import (
	"math"
	"testing"

	"pgridfile/internal/geom"
)

func dom2() geom.Rect { return geom.NewRect([]float64{0, 0}, []float64{2000, 2000}) }
func dom4() geom.Rect { return geom.NewRect([]float64{0, 0, 0, 0}, []float64{59, 2000, 2000, 2000}) }

func TestSquareRangeSizing(t *testing.T) {
	dom := dom2()
	const r = 0.05
	qs := SquareRange(dom, r, 500, 1)
	if len(qs) != 500 {
		t.Fatalf("generated %d queries", len(qs))
	}
	wantSide := math.Sqrt(r) * 2000
	for i, q := range qs {
		for k := range q {
			if q[k].Lo < dom[k].Lo || q[k].Hi > dom[k].Hi {
				t.Fatalf("query %d dim %d escapes domain: %v", i, k, q[k])
			}
			if q[k].Length() > wantSide+1e-9 {
				t.Fatalf("query %d dim %d side %.2f exceeds %.2f", i, k, q[k].Length(), wantSide)
			}
		}
	}
	// Unclipped queries must have exactly the target side; verify at least
	// half the queries are unclipped and exact.
	exact := 0
	for _, q := range qs {
		ok := true
		for k := range q {
			if math.Abs(q[k].Length()-wantSide) > 1e-9 {
				ok = false
			}
		}
		if ok {
			exact++
		}
	}
	if exact < len(qs)/2 {
		t.Errorf("only %d of %d queries have the exact target side", exact, len(qs))
	}
}

func TestSquareRangeVolumeFraction(t *testing.T) {
	// In 3-D with r=0.1 each side is 0.1^(1/3) of the domain, so the
	// unclipped volume fraction is exactly r.
	dom := geom.NewRect([]float64{0, 0, 0}, []float64{10, 20, 30})
	qs := SquareRange(dom, 0.1, 200, 2)
	domVol := dom.Volume()
	found := false
	for _, q := range qs {
		frac := q.Volume() / domVol
		if frac > 0.1+1e-9 {
			t.Fatalf("query volume fraction %.4f exceeds r", frac)
		}
		if math.Abs(frac-0.1) < 1e-9 {
			found = true
		}
	}
	if !found {
		t.Error("no unclipped query achieved the exact volume fraction")
	}
}

func TestSquareRangeDeterministic(t *testing.T) {
	a := SquareRange(dom2(), 0.01, 50, 7)
	b := SquareRange(dom2(), 0.01, 50, 7)
	for i := range a {
		for k := range a[i] {
			if a[i][k] != b[i][k] {
				t.Fatal("same seed produced different queries")
			}
		}
	}
}

func TestPartialMatch(t *testing.T) {
	dom := geom.NewRect([]float64{0, 0, 0}, []float64{10, 10, 10})
	qs := PartialMatch(dom, 1, 100, 3)
	for i, q := range qs {
		nan := 0
		for _, v := range q {
			if math.IsNaN(v) {
				nan++
			} else if v < 0 || v > 10 {
				t.Fatalf("query %d has out-of-domain value %v", i, v)
			}
		}
		if nan != 1 {
			t.Fatalf("query %d has %d unspecified attrs, want 1", i, nan)
		}
	}
	// Clamping of the unspecified count.
	qs = PartialMatch(dom, 99, 10, 4)
	for _, q := range qs {
		for _, v := range q {
			if !math.IsNaN(v) {
				t.Fatal("unspecified=99 should leave all attributes unspecified")
			}
		}
	}
	qs = PartialMatch(dom, 0, 10, 5)
	for _, q := range qs {
		nan := 0
		for _, v := range q {
			if math.IsNaN(v) {
				nan++
			}
		}
		if nan != 1 {
			t.Fatal("unspecified=0 must be raised to 1 (partial match needs >= 1)")
		}
	}
}

func TestAnimationSweepCoversVolume(t *testing.T) {
	dom := dom4()
	qs := AnimationSweep(dom, 0.1, 59)
	if len(qs) != 590 {
		t.Fatalf("sweep generated %d queries, want 590", len(qs))
	}
	// Per time step, the x slabs must tile [0,2000] and cover full y,z.
	for s := 0; s < 10; s++ {
		q := qs[s]
		if q[0].Lo != 0 || q[0].Hi != 1 {
			t.Fatalf("slab %d temporal interval %v", s, q[0])
		}
		if q[2] != dom[2] || q[3] != dom[3] {
			t.Fatalf("slab %d does not cover full y/z", s)
		}
		wantLo := float64(s) * 200
		if math.Abs(q[1].Lo-wantLo) > 1e-9 {
			t.Fatalf("slab %d x starts at %v, want %v", s, q[1].Lo, wantLo)
		}
	}
	// Last step uses the right time interval.
	last := qs[len(qs)-1]
	if last[0].Lo != 58 || last[0].Hi != 59 {
		t.Fatalf("last query temporal interval %v", last[0])
	}
}

func TestAnimationSweepPanicsOnWrongDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 2-D domain")
		}
	}()
	AnimationSweep(dom2(), 0.1, 5)
}

func TestRandomRange4D(t *testing.T) {
	dom := dom4()
	qs := RandomRange4D(dom, 0.05, 100, 9)
	if len(qs) != 100 {
		t.Fatalf("generated %d queries", len(qs))
	}
	for i, q := range qs {
		if q[0].Length() > 1+1e-9 {
			t.Fatalf("query %d temporal extent %v exceeds one snapshot", i, q[0])
		}
		for k := 1; k < 4; k++ {
			if q[k].Length() > 0.05*2000+1e-9 {
				t.Fatalf("query %d dim %d side %v too large", i, k, q[k].Length())
			}
			if q[k].Lo < dom[k].Lo || q[k].Hi > dom[k].Hi {
				t.Fatalf("query %d escapes domain", i)
			}
		}
	}
}

func TestParticleTrace(t *testing.T) {
	dom := dom4()
	qs := ParticleTrace(dom, 0.05, 200, 7)
	if len(qs) != 200 {
		t.Fatalf("generated %d queries", len(qs))
	}
	for i, q := range qs {
		if q[0].Length() > 1+1e-9 {
			t.Fatalf("query %d temporal extent %v", i, q[0])
		}
		for d := 1; d < 4; d++ {
			if q[d].Lo < dom[d].Lo || q[d].Hi > dom[d].Hi {
				t.Fatalf("query %d escapes the domain", i)
			}
			if q[d].Length() > 0.05*dom[d].Length()+1e-9 {
				t.Fatalf("query %d side too large", i)
			}
		}
	}
	// Temporal wrap: with 59 snapshots in the domain, step 59 reuses
	// snapshot 0 so long traces stay within the series.
	if qs[59][0].Lo != 0 {
		t.Errorf("step 59 should wrap to snapshot 0, got %v", qs[59][0])
	}
	// Locality: consecutive queries overlap spatially most of the time.
	overlaps := 0
	for i := 1; i < len(qs); i++ {
		if qs[i][1].Intersects(qs[i-1][1]) && qs[i][2].Intersects(qs[i-1][2]) && qs[i][3].Intersects(qs[i-1][3]) {
			overlaps++
		}
	}
	if overlaps < len(qs)/2 {
		t.Errorf("only %d of %d consecutive trace queries overlap spatially", overlaps, len(qs)-1)
	}
}

func TestParticleTraceDeterministicAndDims(t *testing.T) {
	a := ParticleTrace(dom4(), 0.1, 50, 3)
	b := ParticleTrace(dom4(), 0.1, 50, 3)
	for i := range a {
		for d := range a[i] {
			if a[i][d] != b[i][d] {
				t.Fatal("trace not deterministic")
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 2-D domain")
		}
	}()
	ParticleTrace(dom2(), 0.1, 5, 1)
}
