// Package workload generates the query workloads of the paper's evaluation:
// square range queries whose volume is a fixed ratio r of the data domain
// (Sections 2.2 and 3.2), partial-match queries (the class for which DM is
// provably optimal), and the animation sweeps of the SP-2 experiments
// (Section 3.5).
package workload

import (
	"math"
	"math/rand"

	"pgridfile/internal/geom"
)

// SquareRange generates n random square range queries over the domain. The
// side length along dimension k is l_k = r^(1/d) · L_k where L_k is the
// domain extent, so the query covers a fraction r of the domain volume; the
// centres are uniformly distributed over the entire domain (queries are
// clipped to the domain boundary, as in the paper's simulator).
func SquareRange(dom geom.Rect, r float64, n int, seed int64) []geom.Rect {
	rng := rand.New(rand.NewSource(seed))
	d := float64(dom.Dim())
	frac := math.Pow(r, 1/d)
	queries := make([]geom.Rect, n)
	for i := range queries {
		q := make(geom.Rect, dom.Dim())
		for k := range dom {
			side := frac * dom[k].Length()
			c := dom[k].Lo + rng.Float64()*dom[k].Length()
			q[k] = geom.Interval{
				Lo: math.Max(c-side/2, dom[k].Lo),
				Hi: math.Min(c+side/2, dom[k].Hi),
			}
		}
		queries[i] = q
	}
	return queries
}

// PartialMatch generates n partial-match queries with the given number of
// unspecified attributes (>= 1, as the paper requires). Specified attributes
// take uniformly random values in their domain; unspecified ones are NaN.
func PartialMatch(dom geom.Rect, unspecified, n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	d := dom.Dim()
	if unspecified < 1 {
		unspecified = 1
	}
	if unspecified > d {
		unspecified = d
	}
	queries := make([][]float64, n)
	for i := range queries {
		vals := make([]float64, d)
		for k := range vals {
			vals[k] = dom[k].Lo + rng.Float64()*dom[k].Length()
		}
		// Choose the unspecified attributes without replacement.
		perm := rng.Perm(d)
		for _, k := range perm[:unspecified] {
			vals[k] = math.NaN()
		}
		queries[i] = vals
	}
	return queries
}

// AnimationSweep generates the Section 3.5 animation workload over a
// (t, x, y, z) domain: for each of the steps time steps, a series of spatial
// range queries of per-dimension ratio r that in aggregate covers the whole
// 3-D volume at that time step. Each query is r·L wide per spatial dimension
// and one time step deep, so ~(1/r)^3 queries tile each snapshot; the paper
// uses r = 0.1 for roughly 10×59 ≈ 590 queries with a 1/r grid per axis
// collapsed to a sweep of 10 slabs (the paper reports ~10 queries per step).
//
// Following the paper's count, the sweep advances one slab per query along
// x, covering the full y and z extents.
func AnimationSweep(dom geom.Rect, r float64, steps int) []geom.Rect {
	if dom.Dim() != 4 {
		panic("workload: AnimationSweep requires a (t,x,y,z) domain")
	}
	slabs := int(math.Round(1 / r))
	queries := make([]geom.Rect, 0, steps*slabs)
	for t := 0; t < steps; t++ {
		tIv := geom.Interval{Lo: float64(t), Hi: float64(t + 1)}
		for s := 0; s < slabs; s++ {
			xLo := dom[1].Lo + float64(s)*r*dom[1].Length()
			q := geom.Rect{
				tIv,
				{Lo: xLo, Hi: math.Min(xLo+r*dom[1].Length(), dom[1].Hi)},
				dom[2],
				dom[3],
			}
			queries = append(queries, q)
		}
	}
	return queries
}

// ParticleTrace generates the access pattern named in the paper's future
// work: following a particle (or a small probe volume) through a snapshot
// series. Starting from a seed position, the probe drifts with a velocity
// that slowly rotates, and at every time step a small box of per-dimension
// ratio r is read around the current position. Consecutive queries overlap
// heavily in space and differ by one time step, producing the strong
// spatio-temporal locality that distinguishes tracing from random range
// queries.
func ParticleTrace(dom geom.Rect, r float64, steps int, seed int64) []geom.Rect {
	if dom.Dim() != 4 {
		panic("workload: ParticleTrace requires a (t,x,y,z) domain")
	}
	rng := rand.New(rand.NewSource(seed))
	pos := make([]float64, 3)
	vel := make([]float64, 3)
	for d := 0; d < 3; d++ {
		ext := dom[d+1].Length()
		pos[d] = dom[d+1].Lo + ext*(0.3+0.4*rng.Float64())
		vel[d] = ext / float64(steps) * (rng.Float64()*2 - 1)
	}
	queries := make([]geom.Rect, 0, steps)
	maxT := int(dom[0].Length())
	for t := 0; t < steps; t++ {
		ts := t % maxT // wrap around the snapshot series for long traces
		q := make(geom.Rect, 4)
		q[0] = geom.Interval{Lo: float64(ts), Hi: math.Min(float64(ts+1), dom[0].Hi)}
		for d := 0; d < 3; d++ {
			side := r * dom[d+1].Length()
			q[d+1] = geom.Interval{
				Lo: math.Max(pos[d]-side/2, dom[d+1].Lo),
				Hi: math.Min(pos[d]+side/2, dom[d+1].Hi),
			}
		}
		queries = append(queries, q)
		// Drift and gently rotate the velocity; bounce at the walls.
		for d := 0; d < 3; d++ {
			vel[d] += dom[d+1].Length() / float64(steps) * 0.2 * (rng.Float64()*2 - 1)
			pos[d] += vel[d]
			if pos[d] < dom[d+1].Lo {
				pos[d] = dom[d+1].Lo
				vel[d] = -vel[d]
			}
			if pos[d] > dom[d+1].Hi {
				pos[d] = dom[d+1].Hi
				vel[d] = -vel[d]
			}
		}
	}
	return queries
}

// RandomRange4D generates the Section 3.5 random 4-D range queries: n
// queries whose spatial sides are governed by ratio r per dimension
// (side = r·L_k, the paper's "size of each query was rLx × rLy × rLz × 1")
// and whose temporal extent is a single random snapshot.
func RandomRange4D(dom geom.Rect, r float64, n int, seed int64) []geom.Rect {
	if dom.Dim() != 4 {
		panic("workload: RandomRange4D requires a (t,x,y,z) domain")
	}
	rng := rand.New(rand.NewSource(seed))
	queries := make([]geom.Rect, n)
	for i := range queries {
		t := math.Floor(dom[0].Lo + rng.Float64()*dom[0].Length())
		q := make(geom.Rect, 4)
		q[0] = geom.Interval{Lo: t, Hi: math.Min(t+1, dom[0].Hi)}
		for k := 1; k < 4; k++ {
			side := r * dom[k].Length()
			c := dom[k].Lo + rng.Float64()*dom[k].Length()
			q[k] = geom.Interval{
				Lo: math.Max(c-side/2, dom[k].Lo),
				Hi: math.Min(c+side/2, dom[k].Hi),
			}
		}
		queries[i] = q
	}
	return queries
}
