package workload_test

import (
	"fmt"
	"math"

	"pgridfile/internal/geom"
	"pgridfile/internal/workload"
)

// ExampleSquareRange shows the paper's query construction: a ratio r = 0.04
// in 2-D gives side lengths of sqrt(0.04) = 20% of each axis, so an
// unclipped query covers 4% of the domain area; queries whose centres fall
// near the boundary are clipped, as in the paper's simulator.
func ExampleSquareRange() {
	dom := geom.NewRect([]float64{0, 0}, []float64{1000, 1000})
	qs := workload.SquareRange(dom, 0.04, 3, 42)
	for _, q := range qs {
		fmt.Printf("sides %.0f x %.0f (%.1f%% of the domain)\n",
			q[0].Length(), q[1].Length(), 100*q.Volume()/dom.Volume())
	}
	// Output:
	// sides 200 x 166 (3.3% of the domain)
	// sides 200 x 200 (4.0% of the domain)
	// sides 144 x 200 (2.9% of the domain)
}

// ExamplePartialMatch shows a partial-match query: every attribute pinned
// except one (NaN marks the unspecified attribute).
func ExamplePartialMatch() {
	dom := geom.NewRect([]float64{0, 0, 0}, []float64{10, 10, 10})
	q := workload.PartialMatch(dom, 1, 1, 7)[0]
	unspecified := 0
	for _, v := range q {
		if math.IsNaN(v) {
			unspecified++
		}
	}
	fmt.Printf("attributes: %d, unspecified: %d\n", len(q), unspecified)
	// Output:
	// attributes: 3, unspecified: 1
}
