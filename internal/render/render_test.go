package render

import (
	"strings"
	"testing"

	"pgridfile/internal/core"
	"pgridfile/internal/synth"
)

func TestSVGBasics(t *testing.T) {
	f, err := synth.Hotspot2D(2000, 5).Build()
	if err != nil {
		t.Fatal(err)
	}
	out, err := SVG(f, SVGOptions{Width: 400, Points: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Error("not a complete SVG document")
	}
	// One rect per bucket plus the background.
	rects := strings.Count(out, "<rect")
	if rects != f.NumBuckets()+1 {
		t.Errorf("%d rects for %d buckets", rects, f.NumBuckets())
	}
	// One circle per record.
	if circles := strings.Count(out, "<circle"); circles != f.Len() {
		t.Errorf("%d circles for %d records", circles, f.Len())
	}
	// Scale lines present.
	if lines := strings.Count(out, "<line"); lines != len(f.Scales(0))+len(f.Scales(1)) {
		t.Errorf("%d scale lines, want %d", lines, len(f.Scales(0))+len(f.Scales(1)))
	}
}

func TestSVGWithAllocation(t *testing.T) {
	f, err := synth.Hotspot2D(1500, 5).Build()
	if err != nil {
		t.Fatal(err)
	}
	g := core.FromGridFile(f)
	alloc, err := (&core.Minimax{Seed: 1}).Decluster(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	out, err := SVG(f, SVGOptions{Allocation: &alloc})
	if err != nil {
		t.Fatal(err)
	}
	// Disk fills appear; at least several palette colours used.
	used := 0
	for _, c := range diskPalette[:8] {
		if strings.Contains(out, c) {
			used++
		}
	}
	if used < 4 {
		t.Errorf("only %d disk colours appear in the allocation view", used)
	}
}

func TestSVGRejectsNon2D(t *testing.T) {
	f, err := synth.DSMC3D(500, 1).Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SVG(f, SVGOptions{}); err == nil {
		t.Error("3-D file accepted")
	}
	if _, err := ASCII(f, 40); err == nil {
		t.Error("3-D file accepted by ASCII")
	}
}

func TestASCII(t *testing.T) {
	f, err := synth.Hotspot2D(2000, 5).Build()
	if err != nil {
		t.Fatal(err)
	}
	out, err := ASCII(f, 80)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	sizes := f.CellSizes()
	if len(lines) != sizes[1] {
		t.Errorf("%d rows for %d y-cells", len(lines), sizes[1])
	}
	for i, line := range lines {
		if len(line) != sizes[0] {
			t.Errorf("row %d has %d cells, want %d", i, len(line), sizes[0])
		}
		if strings.Contains(line, "?") {
			t.Errorf("row %d contains an unresolvable cell", i)
		}
	}
	// Merged regions show as repeated letters somewhere (hot.2d has many).
	repeated := false
	for _, line := range lines {
		for j := 1; j < len(line); j++ {
			if line[j] == line[j-1] {
				repeated = true
			}
		}
	}
	if !repeated {
		t.Error("no adjacent cells share a bucket; expected merged regions")
	}
}

func TestASCIISamplesLargeGrids(t *testing.T) {
	f, err := synth.Correl2D(10000, 3).Build()
	if err != nil {
		t.Fatal(err)
	}
	out, err := ASCII(f, 20)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) > 40 {
		t.Errorf("sampling failed: %d rows for cols=20", len(lines))
	}
}

func TestASCIIAllocation(t *testing.T) {
	f, err := synth.Hotspot2D(2000, 5).Build()
	if err != nil {
		t.Fatal(err)
	}
	g := core.FromGridFile(f)
	alloc, err := (&core.Minimax{Seed: 1}).Decluster(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ASCIIAllocation(f, alloc, 80)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	sizes := f.CellSizes()
	if len(lines) != sizes[1] {
		t.Errorf("%d rows for %d y-cells", len(lines), sizes[1])
	}
	// Only digits 0-7 appear for 8 disks.
	for _, line := range lines {
		for _, ch := range line {
			if ch < '0' || ch > '7' {
				t.Fatalf("unexpected character %q", ch)
			}
		}
	}
	// Bad allocation rejected.
	if _, err := ASCIIAllocation(f, core.Allocation{Disks: 2, Assign: []int{0}}, 40); err == nil {
		t.Error("truncated allocation accepted")
	}
	// Non-2D rejected.
	f3, err := synth.DSMC3D(500, 1).Build()
	if err != nil {
		t.Fatal(err)
	}
	g3 := core.FromGridFile(f3)
	a3, _ := (&core.Minimax{Seed: 1}).Decluster(g3, 4)
	if _, err := ASCIIAllocation(f3, a3, 40); err == nil {
		t.Error("3-D file accepted")
	}
}
