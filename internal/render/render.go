// Package render draws 2-D grid files — the pictures of the paper's
// Figure 2 — as SVG or ASCII. The SVG view shows the linear scales, the
// bucket regions (merged regions spanning several cells are visible as
// larger boxes) and optionally the data points and a disk-coloured
// declustering; the ASCII view is a quick terminal sketch of the directory.
package render

import (
	"fmt"
	"strings"

	"pgridfile/internal/core"
	"pgridfile/internal/geom"
	"pgridfile/internal/gridfile"
)

// SVGOptions controls the SVG rendering.
type SVGOptions struct {
	// Width is the drawing width in pixels (height follows the domain's
	// aspect ratio). Default 640.
	Width int
	// Points draws every record as a small dot.
	Points bool
	// Allocation, when non-nil, fills each bucket with a colour keyed by
	// its disk so a declustering can be inspected visually.
	Allocation *core.Allocation
}

// diskPalette cycles distinct fills for the allocation view.
var diskPalette = []string{
	"#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f", "#edc948",
	"#b07aa1", "#ff9da7", "#9c755f", "#bab0ac", "#86bcb6", "#d37295",
	"#fabfd2", "#b6992d", "#499894", "#79706e",
}

// SVG renders a 2-dimensional grid file. It returns an error for other
// dimensionalities.
func SVG(f *gridfile.File, opts SVGOptions) (string, error) {
	if f.Dims() != 2 {
		return "", fmt.Errorf("render: SVG needs a 2-D grid file, got %d-D", f.Dims())
	}
	width := opts.Width
	if width <= 0 {
		width = 640
	}
	dom := f.Domain()
	scaleX := float64(width) / dom[0].Length()
	height := int(dom[1].Length() * scaleX)
	scaleY := float64(height) / dom[1].Length()

	x := func(v float64) float64 { return (v - dom[0].Lo) * scaleX }
	// SVG y grows downward; flip so the domain's y grows upward.
	y := func(v float64) float64 { return float64(height) - (v-dom[1].Lo)*scaleY }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)

	// Bucket regions: fill by disk when an allocation is supplied, and
	// outline every region so merged buckets are visible.
	views := f.Buckets()
	for _, v := range views {
		fill := "none"
		if opts.Allocation != nil {
			d := opts.Allocation.Assign[v.Index]
			fill = diskPalette[d%len(diskPalette)]
		}
		rx, ry := x(v.Region[0].Lo), y(v.Region[1].Hi)
		rw := (v.Region[0].Hi - v.Region[0].Lo) * scaleX
		rh := (v.Region[1].Hi - v.Region[1].Lo) * scaleY
		fmt.Fprintf(&b,
			`<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" fill-opacity="0.45" stroke="#333" stroke-width="1.2"/>`+"\n",
			rx, ry, rw, rh, fill)
	}

	// Linear scales as light lines.
	for _, s := range f.Scales(0) {
		fmt.Fprintf(&b, `<line x1="%.1f" y1="0" x2="%.1f" y2="%d" stroke="#bbb" stroke-width="0.5"/>`+"\n",
			x(s), x(s), height)
	}
	for _, s := range f.Scales(1) {
		fmt.Fprintf(&b, `<line x1="0" y1="%.1f" x2="%d" y2="%.1f" stroke="#bbb" stroke-width="0.5"/>`+"\n",
			y(s), width, y(s))
	}

	if opts.Points {
		f.Scan(func(key []float64, _ []byte) bool {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="1.1" fill="#1a1a1a" fill-opacity="0.6"/>`+"\n",
				x(key[0]), y(key[1]))
			return true
		})
	}
	b.WriteString("</svg>\n")
	return b.String(), nil
}

// ASCII sketches the grid directory of a 2-D grid file: each cell prints a
// letter identifying its bucket (cycling a-z then A-Z), so merged regions
// appear as runs of the same letter. Rows are y-descending so the sketch
// matches the SVG orientation. cols bounds the number of cells drawn per
// axis (larger grids are sampled).
func ASCII(f *gridfile.File, cols int) (string, error) {
	if f.Dims() != 2 {
		return "", fmt.Errorf("render: ASCII needs a 2-D grid file, got %d-D", f.Dims())
	}
	if cols <= 0 {
		cols = 64
	}
	sizes := f.CellSizes()
	nx, ny := sizes[0], sizes[1]
	stepX, stepY := 1, 1
	if nx > cols {
		stepX = (nx + cols - 1) / cols
	}
	if ny > cols {
		stepY = (ny + cols - 1) / cols
	}

	letter := func(id int32) byte {
		const alpha = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
		return alpha[int(id)%len(alpha)]
	}
	var b strings.Builder
	for cy := ny - 1; cy >= 0; cy -= stepY {
		for cx := 0; cx < nx; cx += stepX {
			// Probe the cell's centre point to find its bucket.
			px := cellCenter(f, 0, cx)
			py := cellCenter(f, 1, cy)
			q := geom.Rect{{Lo: px, Hi: px}, {Lo: py, Hi: py}}
			ids := f.BucketsInRange(q)
			if len(ids) == 0 {
				b.WriteByte('?')
				continue
			}
			b.WriteByte(letter(ids[0]))
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// ASCIIAllocation sketches a declustered 2-D grid file: each cell prints
// the disk (0-9, then a-z, then A-Z, cycling) of the bucket owning it, so
// stripes and clusters of a poor declustering are visible in a terminal —
// DM paints diagonals, minimax speckle. cols bounds the cells per axis.
func ASCIIAllocation(f *gridfile.File, alloc core.Allocation, cols int) (string, error) {
	if f.Dims() != 2 {
		return "", fmt.Errorf("render: ASCIIAllocation needs a 2-D grid file, got %d-D", f.Dims())
	}
	if err := alloc.Validate(f.NumBuckets()); err != nil {
		return "", err
	}
	if cols <= 0 {
		cols = 64
	}
	table := f.IndexByID()
	sizes := f.CellSizes()
	nx, ny := sizes[0], sizes[1]
	stepX, stepY := 1, 1
	if nx > cols {
		stepX = (nx + cols - 1) / cols
	}
	if ny > cols {
		stepY = (ny + cols - 1) / cols
	}
	const alpha = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
	var b strings.Builder
	for cy := ny - 1; cy >= 0; cy -= stepY {
		for cx := 0; cx < nx; cx += stepX {
			px := cellCenter(f, 0, cx)
			py := cellCenter(f, 1, cy)
			ids := f.BucketsInRange(geom.Rect{{Lo: px, Hi: px}, {Lo: py, Hi: py}})
			if len(ids) == 0 {
				b.WriteByte('?')
				continue
			}
			disk := alloc.Assign[table[ids[0]]]
			b.WriteByte(alpha[disk%len(alpha)])
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// cellCenter returns the domain-space midpoint of cell index `cell` along
// the given dimension.
func cellCenter(f *gridfile.File, dim, cell int) float64 {
	s := f.Scales(dim)
	dom := f.Domain()
	cLo, cHi := dom[dim].Lo, dom[dim].Hi
	if cell > 0 {
		cLo = s[cell-1]
	}
	if cell < len(s) {
		cHi = s[cell]
	}
	return (cLo + cHi) / 2
}
