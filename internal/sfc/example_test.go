package sfc_test

import (
	"fmt"

	"pgridfile/internal/sfc"
)

// ExampleHilbert walks the first-order 2-D Hilbert curve: four cells
// visited by unit steps, the property HCAM's round-robin assignment relies
// on.
func ExampleHilbert() {
	h := sfc.NewHilbert(2, 1)
	coords := make([]uint32, 2)
	for key := uint64(0); key < 4; key++ {
		h.Coords(key, coords)
		fmt.Printf("key %d -> cell (%d,%d)\n", key, coords[0], coords[1])
	}
	// Output:
	// key 0 -> cell (0,0)
	// key 1 -> cell (0,1)
	// key 2 -> cell (1,1)
	// key 3 -> cell (1,0)
}

// ExampleBitsFor shows the per-dimension bit budget needed to address a
// grid side.
func ExampleBitsFor() {
	fmt.Println(sfc.BitsFor(7), sfc.BitsFor(8), sfc.BitsFor(255))
	// Output:
	// 3 4 8
}
