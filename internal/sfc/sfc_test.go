package sfc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// curves under test, constructed fresh for given dims/bits.
func allCurves(dims, bits int) []Curve {
	return []Curve{NewHilbert(dims, bits), NewZOrder(dims, bits), NewGray(dims, bits)}
}

func TestBitsFor(t *testing.T) {
	cases := []struct {
		max  uint32
		want int
	}{
		{0, 1}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4}, {255, 8}, {256, 9},
	}
	for _, c := range cases {
		if got := BitsFor(c.max); got != c.want {
			t.Errorf("BitsFor(%d) = %d, want %d", c.max, got, c.want)
		}
	}
}

func TestHilbert2DOrder4(t *testing.T) {
	// The 2-D Hilbert curve on a 2x2 grid visits (0,0),(0,1),(1,1),(1,0)
	// (up to a fixed orientation). Verify the exact order produced by the
	// Skilling transform: it must be a Hamiltonian path of unit steps
	// starting at the origin.
	h := NewHilbert(2, 1)
	var prev []uint32
	for key := uint64(0); key < 4; key++ {
		out := make([]uint32, 2)
		h.Coords(key, out)
		if key == 0 {
			if out[0] != 0 || out[1] != 0 {
				t.Fatalf("curve does not start at origin: %v", out)
			}
		} else {
			if dist := manhattan(prev, out); dist != 1 {
				t.Fatalf("step %d is not a unit step: %v -> %v", key, prev, out)
			}
		}
		prev = out
	}
}

func manhattan(a, b []uint32) int {
	d := 0
	for i := range a {
		if a[i] > b[i] {
			d += int(a[i] - b[i])
		} else {
			d += int(b[i] - a[i])
		}
	}
	return d
}

// TestBijectivity checks Key∘Coords = id and Coords∘Key = id exhaustively
// for small spaces across all curves and several (dims,bits) combinations.
func TestBijectivity(t *testing.T) {
	configs := []struct{ dims, bits int }{
		{1, 4}, {2, 3}, {2, 4}, {3, 2}, {3, 3}, {4, 2}, {5, 2},
	}
	for _, cfg := range configs {
		for _, c := range allCurves(cfg.dims, cfg.bits) {
			total := uint64(1) << (cfg.dims * cfg.bits)
			seen := make(map[uint64]bool, total)
			coords := make([]uint32, cfg.dims)
			for key := uint64(0); key < total; key++ {
				c.Coords(key, coords)
				back := c.Key(coords)
				if back != key {
					t.Fatalf("%s d=%d b=%d: Key(Coords(%d)) = %d", c.Name(), cfg.dims, cfg.bits, key, back)
				}
				if seen[back] {
					t.Fatalf("%s d=%d b=%d: duplicate key %d", c.Name(), cfg.dims, cfg.bits, back)
				}
				seen[back] = true
			}
			if uint64(len(seen)) != total {
				t.Fatalf("%s: only %d of %d keys visited", c.Name(), len(seen), total)
			}
		}
	}
}

// TestHilbertAdjacency checks the defining Hilbert property: consecutive
// positions along the curve are grid neighbours (Manhattan distance exactly
// one). Z-order and Gray do NOT have this property, which is exactly why
// HCAM uses Hilbert.
func TestHilbertAdjacency(t *testing.T) {
	configs := []struct{ dims, bits int }{
		{2, 5}, {3, 3}, {4, 2},
	}
	for _, cfg := range configs {
		h := NewHilbert(cfg.dims, cfg.bits)
		total := uint64(1) << (cfg.dims * cfg.bits)
		prev := make([]uint32, cfg.dims)
		cur := make([]uint32, cfg.dims)
		h.Coords(0, prev)
		for key := uint64(1); key < total; key++ {
			h.Coords(key, cur)
			if manhattan(prev, cur) != 1 {
				t.Fatalf("hilbert d=%d b=%d: non-unit step at key %d: %v -> %v",
					cfg.dims, cfg.bits, key, prev, cur)
			}
			copy(prev, cur)
		}
	}
}

// TestZOrderKnownValues pins the Morton interleaving.
func TestZOrderKnownValues(t *testing.T) {
	z := NewZOrder(2, 2)
	cases := []struct {
		coords []uint32
		want   uint64
	}{
		{[]uint32{0, 0}, 0},
		{[]uint32{0, 1}, 1}, // y contributes the low bit of each pair
		{[]uint32{1, 0}, 2},
		{[]uint32{1, 1}, 3},
		{[]uint32{2, 0}, 8},
		{[]uint32{3, 3}, 15},
	}
	for _, c := range cases {
		if got := z.Key(c.coords); got != c.want {
			t.Errorf("ZOrder.Key(%v) = %d, want %d", c.coords, got, c.want)
		}
	}
}

func TestGrayCodeRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		return grayDecode(grayEncode(v)) == v && grayEncode(grayDecode(v)) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestGraySuccessiveKeysDifferInOneBit(t *testing.T) {
	// Along the Gray curve, interleaved codes of successive positions
	// differ in exactly one bit.
	g := NewGray(2, 4)
	z := NewZOrder(2, 4)
	total := uint64(1 << 8)
	coords := make([]uint32, 2)
	var prevCode uint64
	for key := uint64(0); key < total; key++ {
		g.Coords(key, coords)
		code := z.Key(coords)
		if key > 0 {
			diff := code ^ prevCode
			if diff == 0 || diff&(diff-1) != 0 {
				t.Fatalf("gray codes at %d and %d differ in != 1 bit: %b vs %b",
					key-1, key, prevCode, code)
			}
		}
		prevCode = code
	}
}

// TestRandomRoundTrip64Bit exercises large keys near the 64-bit budget.
func TestRandomRoundTrip64Bit(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	configs := []struct{ dims, bits int }{
		{2, 32}, {3, 21}, {4, 16}, {8, 8},
	}
	for _, cfg := range configs {
		for _, c := range allCurves(cfg.dims, cfg.bits) {
			for trial := 0; trial < 200; trial++ {
				coords := make([]uint32, cfg.dims)
				for i := range coords {
					coords[i] = uint32(rng.Uint64() & ((1 << cfg.bits) - 1))
				}
				key := c.Key(coords)
				out := make([]uint32, cfg.dims)
				c.Coords(key, out)
				for i := range coords {
					if coords[i] != out[i] {
						t.Fatalf("%s d=%d b=%d: round trip %v -> %d -> %v",
							c.Name(), cfg.dims, cfg.bits, coords, key, out)
					}
				}
			}
		}
	}
}

func TestHilbertClusteringBeatsZOrder(t *testing.T) {
	// The clustering property HCAM relies on (Faloutsos & Roseman): a range
	// query's cells form fewer contiguous runs ("clusters") along the
	// Hilbert curve than along Z-order. Count clusters for every 4x4 query
	// window on a 64x64 grid and compare totals.
	const dims, bits = 2, 6
	const q = 4
	h := NewHilbert(dims, bits)
	z := NewZOrder(dims, bits)
	side := uint32(1) << bits
	clusters := func(c Curve, x0, y0 uint32) int {
		keys := make([]uint64, 0, q*q)
		for x := x0; x < x0+q; x++ {
			for y := y0; y < y0+q; y++ {
				keys = append(keys, c.Key([]uint32{x, y}))
			}
		}
		sortUint64(keys)
		n := 1
		for i := 1; i < len(keys); i++ {
			if keys[i] != keys[i-1]+1 {
				n++
			}
		}
		return n
	}
	// Slide by 1 so most windows are unaligned: aligned power-of-two
	// windows are single clusters under both curves and would mask the
	// difference.
	var hTotal, zTotal int
	for x0 := uint32(0); x0+q <= side; x0++ {
		for y0 := uint32(0); y0+q <= side; y0++ {
			hTotal += clusters(h, x0, y0)
			zTotal += clusters(z, x0, y0)
		}
	}
	if hTotal >= zTotal {
		t.Errorf("hilbert total clusters %d not below zorder %d", hTotal, zTotal)
	}
}

func sortUint64(s []uint64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func TestParamValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("dims=0", func() { NewHilbert(0, 4) })
	mustPanic("bits=0", func() { NewZOrder(2, 0) })
	mustPanic("overflow", func() { NewGray(9, 8) })
	mustPanic("coord too large", func() { NewHilbert(2, 2).Key([]uint32{4, 0}) })
	mustPanic("wrong length", func() { NewHilbert(2, 2).Key([]uint32{1}) })
	mustPanic("wrong out length", func() { NewHilbert(2, 2).Coords(0, make([]uint32, 3)) })
}

func BenchmarkHilbertKey2D(b *testing.B) {
	h := NewHilbert(2, 16)
	coords := []uint32{12345, 54321}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = h.Key(coords)
	}
}

func BenchmarkHilbertKey4D(b *testing.B) {
	h := NewHilbert(4, 16)
	coords := []uint32{1, 2000, 30000, 444}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = h.Key(coords)
	}
}
