// Package sfc implements the space-filling curves used for linearizing grid
// cells: the d-dimensional Hilbert curve (the basis of the HCAM declustering
// scheme), and the Z-order (bit interleaving) and Gray-coded curves, which
// the paper cites as the weaker alternatives Hilbert is known to beat. All
// three map a cell coordinate vector to a one-dimensional key such that
// sorting cells by key produces the curve's visiting order.
//
// The Hilbert implementation follows John Skilling's "Programming the
// Hilbert curve" (AIP Conf. Proc. 707, 2004): coordinates are converted to
// and from the "transpose" form of the Hilbert index with O(d·bits) bit
// operations and no recursion.
package sfc

import "fmt"

// Curve linearizes d-dimensional cell coordinates. Implementations must be
// bijections from [0,2^bits)^d onto [0, 2^(d·bits)).
type Curve interface {
	// Key maps a coordinate vector to its position along the curve.
	Key(coords []uint32) uint64
	// Coords inverts Key, filling out with the coordinate vector of key.
	Coords(key uint64, out []uint32)
	// Dims returns the dimensionality d.
	Dims() int
	// Bits returns the number of bits per dimension.
	Bits() int
	// Name identifies the curve in experiment output.
	Name() string
}

func checkParams(dims, bits int) {
	if dims < 1 {
		panic(fmt.Sprintf("sfc: dims must be >= 1, got %d", dims))
	}
	if bits < 1 {
		panic(fmt.Sprintf("sfc: bits must be >= 1, got %d", bits))
	}
	if dims*bits > 64 {
		panic(fmt.Sprintf("sfc: dims*bits = %d exceeds 64-bit key space", dims*bits))
	}
}

// BitsFor returns the minimum number of bits needed to address max+1 values,
// i.e. the smallest b with 2^b > max. It returns at least 1.
func BitsFor(max uint32) int {
	b := 1
	for (uint64(1) << b) <= uint64(max) {
		b++
	}
	return b
}

// Hilbert is the d-dimensional Hilbert curve over a 2^bits-sided grid.
type Hilbert struct {
	dims, bits int
}

// NewHilbert returns a Hilbert curve over [0,2^bits)^dims. It panics when
// dims*bits exceeds 64, since keys are uint64.
func NewHilbert(dims, bits int) *Hilbert {
	checkParams(dims, bits)
	return &Hilbert{dims: dims, bits: bits}
}

func (h *Hilbert) Dims() int    { return h.dims }
func (h *Hilbert) Bits() int    { return h.bits }
func (h *Hilbert) Name() string { return "hilbert" }

// Key maps coords to the Hilbert index. It panics if len(coords) != Dims()
// or any coordinate overflows the per-dimension bit budget.
func (h *Hilbert) Key(coords []uint32) uint64 {
	x := h.checkedCopy(coords)
	axesToTranspose(x, h.bits)
	return interleaveTranspose(x, h.bits)
}

// Coords fills out with the coordinates of the cell at position key.
func (h *Hilbert) Coords(key uint64, out []uint32) {
	if len(out) != h.dims {
		panic(fmt.Sprintf("sfc: Coords output length %d, want %d", len(out), h.dims))
	}
	deinterleaveTranspose(key, out, h.bits)
	transposeToAxes(out, h.bits)
}

func (h *Hilbert) checkedCopy(coords []uint32) []uint32 {
	if len(coords) != h.dims {
		panic(fmt.Sprintf("sfc: coordinate length %d, want %d", len(coords), h.dims))
	}
	limit := uint64(1) << h.bits
	x := make([]uint32, h.dims)
	for i, c := range coords {
		if uint64(c) >= limit {
			panic(fmt.Sprintf("sfc: coordinate %d = %d exceeds %d bits", i, c, h.bits))
		}
		x[i] = c
	}
	return x
}

// axesToTranspose converts coordinates in place into the transposed form of
// the Hilbert index (Skilling's AxestoTranspose).
func axesToTranspose(x []uint32, bits int) {
	n := len(x)
	m := uint32(1) << (bits - 1)

	// Inverse undo of the Gray-code/rotation recursion.
	for q := m; q > 1; q >>= 1 {
		p := q - 1
		for i := 0; i < n; i++ {
			if x[i]&q != 0 {
				x[0] ^= p // invert low bits of x[0]
			} else {
				t := (x[0] ^ x[i]) & p // exchange low bits of x[0] and x[i]
				x[0] ^= t
				x[i] ^= t
			}
		}
	}

	// Gray encode.
	for i := 1; i < n; i++ {
		x[i] ^= x[i-1]
	}
	var t uint32
	for q := m; q > 1; q >>= 1 {
		if x[n-1]&q != 0 {
			t ^= q - 1
		}
	}
	for i := 0; i < n; i++ {
		x[i] ^= t
	}
}

// transposeToAxes inverts axesToTranspose (Skilling's TransposetoAxes).
func transposeToAxes(x []uint32, bits int) {
	n := len(x)
	m := uint32(2) << (bits - 1)

	// Gray decode.
	t := x[n-1] >> 1
	for i := n - 1; i > 0; i-- {
		x[i] ^= x[i-1]
	}
	x[0] ^= t

	// Undo the excess work.
	for q := uint32(2); q != m; q <<= 1 {
		p := q - 1
		for i := n - 1; i >= 0; i-- {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
}

// interleaveTranspose packs the transpose form into a single integer key.
// Bit j (counting from the most significant of each coordinate) of x[i]
// becomes bit position (bits-1-j)*n + (n-1-i) of the key, i.e. the key reads
// x[0]'s top bit first, then x[1]'s top bit, and so on.
func interleaveTranspose(x []uint32, bits int) uint64 {
	n := len(x)
	var key uint64
	for j := bits - 1; j >= 0; j-- {
		for i := 0; i < n; i++ {
			key = (key << 1) | uint64((x[i]>>j)&1)
		}
	}
	return key
}

// deinterleaveTranspose unpacks a key into transpose form.
func deinterleaveTranspose(key uint64, x []uint32, bits int) {
	n := len(x)
	for i := range x {
		x[i] = 0
	}
	pos := n*bits - 1
	for j := bits - 1; j >= 0; j-- {
		for i := 0; i < n; i++ {
			bit := (key >> pos) & 1
			x[i] |= uint32(bit) << j
			pos--
		}
	}
}

// ZOrder is the Morton (bit-interleaving) curve.
type ZOrder struct {
	dims, bits int
}

// NewZOrder returns a Z-order curve over [0,2^bits)^dims.
func NewZOrder(dims, bits int) *ZOrder {
	checkParams(dims, bits)
	return &ZOrder{dims: dims, bits: bits}
}

func (z *ZOrder) Dims() int    { return z.dims }
func (z *ZOrder) Bits() int    { return z.bits }
func (z *ZOrder) Name() string { return "zorder" }

// Key interleaves coordinate bits most-significant first.
func (z *ZOrder) Key(coords []uint32) uint64 {
	if len(coords) != z.dims {
		panic(fmt.Sprintf("sfc: coordinate length %d, want %d", len(coords), z.dims))
	}
	var key uint64
	for j := z.bits - 1; j >= 0; j-- {
		for i := 0; i < z.dims; i++ {
			key = (key << 1) | uint64((coords[i]>>j)&1)
		}
	}
	return key
}

// Coords inverts Key.
func (z *ZOrder) Coords(key uint64, out []uint32) {
	if len(out) != z.dims {
		panic(fmt.Sprintf("sfc: Coords output length %d, want %d", len(out), z.dims))
	}
	for i := range out {
		out[i] = 0
	}
	pos := z.dims*z.bits - 1
	for j := z.bits - 1; j >= 0; j-- {
		for i := 0; i < z.dims; i++ {
			out[i] |= uint32((key>>pos)&1) << j
			pos--
		}
	}
}

// Gray is the Gray-coded curve: the Z-order key is interpreted as a
// binary-reflected Gray code, so the curve position is its Gray decode.
// Successive positions along this curve differ in exactly one interleaved
// bit, which gives it mildly better locality than plain Z-order.
type Gray struct {
	z ZOrder
}

// NewGray returns a Gray-coded curve over [0,2^bits)^dims.
func NewGray(dims, bits int) *Gray {
	checkParams(dims, bits)
	return &Gray{z: ZOrder{dims: dims, bits: bits}}
}

func (g *Gray) Dims() int    { return g.z.dims }
func (g *Gray) Bits() int    { return g.z.bits }
func (g *Gray) Name() string { return "gray" }

// Key returns the position of coords along the Gray-coded curve.
func (g *Gray) Key(coords []uint32) uint64 {
	return grayDecode(g.z.Key(coords))
}

// Coords inverts Key.
func (g *Gray) Coords(key uint64, out []uint32) {
	g.z.Coords(grayEncode(key), out)
}

// grayEncode returns the binary-reflected Gray code of v.
func grayEncode(v uint64) uint64 { return v ^ (v >> 1) }

// grayDecode inverts grayEncode.
func grayDecode(g uint64) uint64 {
	v := g
	for shift := 1; shift < 64; shift <<= 1 {
		v ^= v >> shift
	}
	return v
}
