package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"pgridfile/internal/geom"
)

// TestScheduleDeterminism is the ISSUE's reproducibility requirement: the
// same (kind, rate, n, seed) must yield the identical schedule, and a
// different seed a different one.
func TestScheduleDeterminism(t *testing.T) {
	for _, kind := range []Arrivals{Poisson, Fixed} {
		a := Schedule(kind, 5000, 1000, 42)
		b := Schedule(kind, 5000, 1000, 42)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%v: same seed produced different schedules", kind)
		}
		if len(a) != 1000 {
			t.Fatalf("%v: schedule has %d entries, want 1000", kind, len(a))
		}
		for i := 1; i < len(a); i++ {
			if a[i] < a[i-1] {
				t.Fatalf("%v: schedule not monotone at %d: %v < %v", kind, i, a[i], a[i-1])
			}
		}
	}
	a := Schedule(Poisson, 5000, 1000, 42)
	c := Schedule(Poisson, 5000, 1000, 43)
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical Poisson schedules")
	}
}

// TestScheduleRates checks both processes actually offer the configured
// rate: n arrivals should span about n/rate seconds.
func TestScheduleRates(t *testing.T) {
	const rate, n = 10000.0, 20000
	for _, kind := range []Arrivals{Poisson, Fixed} {
		s := Schedule(kind, rate, n, 7)
		span := s[n-1].Seconds()
		want := float64(n) / rate
		if math.Abs(span-want) > 0.1*want {
			t.Errorf("%v: %d arrivals span %.3fs, want ≈%.3fs", kind, n, span, want)
		}
	}
	// Fixed is exactly a metronome.
	s := Schedule(Fixed, 1000, 10, 0)
	for i, off := range s {
		if want := time.Duration(i) * time.Millisecond; off != want {
			t.Errorf("fixed[%d] = %v, want %v", i, off, want)
		}
	}
}

func TestParseArrivals(t *testing.T) {
	for _, tc := range []struct {
		s    string
		want Arrivals
	}{{"poisson", Poisson}, {"fixed", Fixed}} {
		got, err := ParseArrivals(tc.s)
		if err != nil || got != tc.want {
			t.Errorf("ParseArrivals(%q) = %v, %v", tc.s, got, err)
		}
		if got.String() != tc.s {
			t.Errorf("%v.String() = %q, want %q", got, got.String(), tc.s)
		}
	}
	if _, err := ParseArrivals("bursty"); err == nil {
		t.Error("ParseArrivals accepted unknown process")
	}
}

// TestRecorderQuantiles feeds a known distribution and checks the log-linear
// buckets resolve quantiles within their ~1.6% design error.
func TestRecorderQuantiles(t *testing.T) {
	r := NewRecorder()
	// 1..10000 µs uniformly: p50 ≈ 5000µs, p99 ≈ 9900µs, p999 ≈ 9990µs.
	for i := 1; i <= 10000; i++ {
		r.Record(time.Duration(i) * time.Microsecond)
	}
	s := r.Summary()
	if s.Count != 10000 {
		t.Fatalf("count = %d, want 10000", s.Count)
	}
	checks := []struct {
		name string
		got  time.Duration
		want time.Duration
	}{
		{"p50", s.P50, 5000 * time.Microsecond},
		{"p95", s.P95, 9500 * time.Microsecond},
		{"p99", s.P99, 9900 * time.Microsecond},
		{"p999", s.P999, 9990 * time.Microsecond},
		{"mean", s.Mean, 5000 * time.Microsecond},
	}
	for _, c := range checks {
		if relErr := math.Abs(float64(c.got-c.want)) / float64(c.want); relErr > 0.02 {
			t.Errorf("%s = %v, want %v ±2%% (err %.2f%%)", c.name, c.got, c.want, 100*relErr)
		}
	}
	if s.Max != 10000*time.Microsecond {
		t.Errorf("max = %v, want 10ms", s.Max)
	}
}

// TestRecorderBucketRoundTrip: for any value, the bucket midpoint must be
// within 1/64 relative error (values ≥ 64) or exact (values < 64).
func TestRecorderBucketRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		v := int64(rng.Uint64() >> uint(1+rng.Intn(40)))
		idx := bucketOf(v)
		mid := int64(bucketMid(idx))
		if v < subBuckets {
			if mid != v {
				t.Fatalf("value %d: midpoint %d, want exact", v, mid)
			}
			continue
		}
		if relErr := math.Abs(float64(mid-v)) / float64(v); relErr > 1.0/subBuckets {
			t.Fatalf("value %d → bucket %d midpoint %d: rel err %.4f > 1/%d", v, idx, mid, relErr, subBuckets)
		}
	}
	if r := NewRecorder(); r.Quantile(50) != 0 || r.Summary().Count != 0 {
		t.Error("empty recorder must report zeros")
	}
	r := NewRecorder()
	r.Record(-time.Second) // clamps, never panics
	if got := r.Summary().Max; got != 0 {
		t.Errorf("negative observation recorded max %v, want 0", got)
	}
}

// TestRunOpenLoop drives a fast fake server and checks the harness meters
// the offered rate and counts errors.
func TestRunOpenLoop(t *testing.T) {
	var calls atomic.Int64
	res, err := Run(context.Background(), Options{Rate: 20000, N: 2000, Seed: 1},
		func(ctx context.Context, i int) error {
			calls.Add(1)
			if i%100 == 17 {
				return errors.New("boom")
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 2000 {
		t.Errorf("do invoked %d times, want 2000", got)
	}
	if res.Sent != 2000 || res.Errors != 20 {
		t.Errorf("sent=%d errors=%d, want 2000/20", res.Sent, res.Errors)
	}
	// A no-op server trivially keeps up: achieved ≈ offered.
	if res.Achieved < 0.5*res.Offered {
		t.Errorf("achieved %.0f qps vs offered %.0f: harness could not keep up with a no-op", res.Achieved, res.Offered)
	}
	if res.Latency.Count != 2000 {
		t.Errorf("latency count = %d, want 2000", res.Latency.Count)
	}
}

// TestRunMeasuresFromIntendedSend is the coordinated-omission guard: one
// early request stalls the (single-slot) pipeline, and every request
// scheduled behind the stall must absorb the queueing delay in its measured
// latency even though its handler was instant.
func TestRunMeasuresFromIntendedSend(t *testing.T) {
	const stall = 80 * time.Millisecond
	res, err := Run(context.Background(), Options{Rate: 1000, N: 50, Seed: 2, MaxInFlight: 1},
		func(ctx context.Context, i int) error {
			if i == 0 {
				time.Sleep(stall)
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	// With 50 arrivals in ~50ms all scheduled during the stall, the median
	// latency must reflect the stall, not the instant handlers.
	if res.Latency.P50 < stall/4 {
		t.Errorf("p50 = %v after a %v stall: latencies are not measured from intended send time", res.Latency.P50, stall)
	}
}

func TestRunCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	go func() {
		for calls.Load() == 0 {
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()
	res, err := Run(ctx, Options{Rate: 100, N: 1000, Seed: 3},
		func(ctx context.Context, i int) error { calls.Add(1); return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Sent >= 1000 {
		t.Errorf("cancel did not abandon the schedule: sent %d", res.Sent)
	}
}

// TestSweepFindsKnee: a fake server whose capacity is bounded by slow
// handlers must yield a knee at the last rate it could sustain. With 8
// in-flight slots and a 5ms handler the capacity is ~1600 qps, so 1000
// sustains and 2000 must fail the 95% criterion.
func TestSweepFindsKnee(t *testing.T) {
	do := func(ctx context.Context, i int) error {
		time.Sleep(5 * time.Millisecond)
		return nil
	}
	sopts := SweepOptions{Start: 1000, Factor: 2, MaxSteps: 4, StepDuration: 400 * time.Millisecond}
	base := Options{Seed: 4, MaxInFlight: 8}
	results, knee, err := Sweep(context.Background(), sopts, base, do)
	if err != nil {
		t.Fatal(err)
	}
	if knee != 0 {
		t.Errorf("knee at step %d, want 0 (1000 qps sustained, 2000 not)", knee)
	}
	// The sweep stops at the first unsustained step: exactly knee+2 results.
	if len(results) != 2 {
		t.Errorf("sweep ran %d steps, want 2", len(results))
	}
	if r := results[0]; r.Offered != 1000 || r.Achieved < 950 {
		t.Errorf("step 0: offered %.0f achieved %.0f, want sustained 1000", r.Offered, r.Achieved)
	}
	if r := results[1]; r.Offered != 2000 || r.Achieved >= 0.95*2000 {
		t.Errorf("step 1: offered %.0f achieved %.0f, want collapse below 1900", r.Offered, r.Achieved)
	}
}

// TestSweepKneeDetection exercises the real knee logic with a do that reads
// the offered rate from the closed-over step counter.
func TestSweepKneeDetection(t *testing.T) {
	var offered atomic.Int64
	do := func(ctx context.Context, i int) error {
		if offered.Load() > 2500 {
			time.Sleep(20 * time.Millisecond)
		}
		return nil
	}
	sopts := SweepOptions{Start: 1000, Factor: 2, MaxSteps: 4, StepDuration: 200 * time.Millisecond, MinAchieved: 0.95}
	// Run the sweep manually so each step can publish its rate first.
	rate := sopts.Start
	knee := -1
	for step := 0; step < sopts.MaxSteps; step++ {
		offered.Store(int64(rate))
		opts := Options{Rate: rate, N: int(rate * sopts.StepDuration.Seconds()), Seed: 5, MaxInFlight: 16}
		r, err := Run(context.Background(), opts, do)
		if err != nil {
			t.Fatal(err)
		}
		if !sopts.Sustained(r) {
			break
		}
		knee = step
		rate *= sopts.Factor
	}
	// 1000 and 2000 sustained; 4000 exceeds the 2500 capacity (16 slots ×
	// 20ms ≈ 800 qps max) and must fail the 95% criterion.
	if knee != 1 {
		t.Errorf("knee at step %d, want 1 (last sustained rate 2000)", knee)
	}
}

func TestSustainedCriteria(t *testing.T) {
	o := SweepOptions{SLO: 10 * time.Millisecond}
	good := Result{Offered: 1000, Achieved: 990, Latency: LatencySummary{P99: 5 * time.Millisecond}}
	if !o.Sustained(good) {
		t.Error("healthy step not sustained")
	}
	for name, r := range map[string]Result{
		"errors":   {Offered: 1000, Achieved: 990, Errors: 1, Latency: LatencySummary{P99: time.Millisecond}},
		"achieved": {Offered: 1000, Achieved: 900, Latency: LatencySummary{P99: time.Millisecond}},
		"slo":      {Offered: 1000, Achieved: 990, Latency: LatencySummary{P99: 50 * time.Millisecond}},
	} {
		if o.Sustained(r) {
			t.Errorf("%s violation still counted as sustained", name)
		}
	}
}

// TestSynthesizeDeterministicMix: the op stream is seed-deterministic and
// respects the mix weights and the hot-spot skew.
func TestSynthesizeDeterministicMix(t *testing.T) {
	dom := geom.Rect{{Lo: 0, Hi: 100}, {Lo: 0, Hi: 100}}
	opts := SynthOptions{Skew: Skew{Hot: 0.5, HotFrac: 0.1}, RangeRatio: 0.01}
	a := Synthesize(dom, opts, 4000, 9)
	b := Synthesize(dom, opts, 4000, 9)
	// DeepEqual can't compare the NaN markers in partial-match keys, so
	// compare through a NaN-preserving rendering.
	if fmt.Sprintf("%v", a) != fmt.Sprintf("%v", b) {
		t.Fatal("same seed produced different op streams")
	}
	counts := map[OpKind]int{}
	hotPoints, points := 0, 0
	hot := hotRegion(dom, 0.1)
	for _, op := range a {
		counts[op.Kind]++
		switch op.Kind {
		case OpPoint:
			points++
			if hot.ContainsPoint(op.Key) {
				hotPoints++
			}
			if len(op.Key) != 2 {
				t.Fatalf("point key has %d dims, want 2", len(op.Key))
			}
		case OpRange, OpRangeCount:
			if op.Rect.Dim() != 2 {
				t.Fatalf("range rect has %d dims", op.Rect.Dim())
			}
			for k := range op.Rect {
				if op.Rect[k].Lo < dom[k].Lo || op.Rect[k].Hi > dom[k].Hi {
					t.Fatalf("range %v escapes domain", op.Rect)
				}
			}
		case OpPartialMatch:
			nan := 0
			for _, v := range op.Key {
				if math.IsNaN(v) {
					nan++
				}
			}
			if nan != 1 {
				t.Fatalf("partial-match has %d unspecified attrs, want 1", nan)
			}
		case OpKNN:
			if op.K != 8 {
				t.Fatalf("knn k = %d, want default 8", op.K)
			}
		}
	}
	// Every kind of the default mix appears, in roughly its weighted share.
	want := map[OpKind]float64{OpPoint: 0.2, OpRange: 0.3, OpRangeCount: 0.3, OpPartialMatch: 0.1, OpKNN: 0.1}
	for kind, frac := range want {
		got := float64(counts[kind]) / 4000
		if math.Abs(got-frac) > 0.05 {
			t.Errorf("kind %v: %.3f of ops, want ≈%.2f", kind, got, frac)
		}
	}
	// The hot spot covers 1% of the domain area; with Hot=0.5 about half the
	// point centres must land in it — orders of magnitude above uniform.
	if frac := float64(hotPoints) / float64(points); frac < 0.3 {
		t.Errorf("only %.2f of points hit the hot region, want ≈0.5", frac)
	}
	// Uniform (zero Skew) stays uniform: ≈1% of points in that region.
	uni := Synthesize(dom, SynthOptions{}, 4000, 9)
	hotUni := 0
	for _, op := range uni {
		if op.Kind == OpPoint && hot.ContainsPoint(op.Key) {
			hotUni++
		}
	}
	if frac := float64(hotUni) / float64(counts[OpPoint]); frac > 0.1 {
		t.Errorf("uniform synthesis put %.2f of points in the hot region", frac)
	}
}
