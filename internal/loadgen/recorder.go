package loadgen

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// The latency recorder is HDR-histogram shaped: log-linear buckets with
// subBits sub-buckets per power of two, so every recorded value is resolved
// to within 1/2^subBits ≈ 1.6% relative error across the full range from
// 1ns to hours. That resolution is what the server's log2 `hist` (factor-√2
// error, and a flat 0.5 for anything below the unit) cannot deliver, and
// tail quantiles like p999 need it. Recording is one atomic add — safe for
// the many concurrent in-flight goroutines an open-loop run spawns — and
// costs no allocation.
const (
	subBits    = 6
	subBuckets = 1 << subBits // 64
	// numBuckets covers values up to 2^62 ns (≈146 years), comfortably any
	// latency a run can produce.
	numBuckets = (63 - subBits + 1) * subBuckets
)

// Recorder is a concurrent log-linear latency histogram.
type Recorder struct {
	counts [numBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return new(Recorder) }

// bucketOf maps a non-negative nanosecond value to its bucket index.
func bucketOf(v int64) int {
	if v < subBuckets {
		return int(v)
	}
	msb := bits.Len64(uint64(v)) - 1 // ≥ subBits here
	shift := msb - subBits
	idx := (shift+1)*subBuckets + int(v>>shift) - subBuckets
	if idx >= numBuckets {
		idx = numBuckets - 1
	}
	return idx
}

// bucketMid returns the midpoint latency represented by bucket idx.
func bucketMid(idx int) time.Duration {
	if idx < subBuckets {
		return time.Duration(idx)
	}
	shift := idx/subBuckets - 1
	mantissa := int64(idx%subBuckets + subBuckets)
	lo := mantissa << shift
	width := int64(1) << shift
	return time.Duration(lo + width/2)
}

// Record adds one latency observation. Negative values clamp to zero.
func (r *Recorder) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	r.counts[bucketOf(v)].Add(1)
	r.count.Add(1)
	r.sum.Add(v)
	for {
		cur := r.max.Load()
		if v <= cur || r.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of recorded observations.
func (r *Recorder) Count() int64 { return r.count.Load() }

// Quantile estimates the p-th percentile (0 < p ≤ 100). The estimate is the
// midpoint of the bucket holding the target rank — within ~1.6% of the true
// value for anything over 64ns.
func (r *Recorder) Quantile(p float64) time.Duration {
	total := r.count.Load()
	if total == 0 {
		return 0
	}
	target := int64(p / 100 * float64(total))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := range r.counts {
		c := r.counts[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		if cum >= target {
			return bucketMid(i)
		}
	}
	return time.Duration(r.max.Load())
}

// LatencySummary reports an open-loop run's latency distribution, measured
// from intended send times.
type LatencySummary struct {
	Count int64         `json:"count"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P95   time.Duration `json:"p95_ns"`
	P99   time.Duration `json:"p99_ns"`
	P999  time.Duration `json:"p999_ns"`
	Max   time.Duration `json:"max_ns"`
}

// Summary snapshots the recorder. Call after the run has drained; a
// concurrent snapshot is approximate (counts race benignly).
func (r *Recorder) Summary() LatencySummary {
	s := LatencySummary{
		Count: r.count.Load(),
		P50:   r.Quantile(50),
		P95:   r.Quantile(95),
		P99:   r.Quantile(99),
		P999:  r.Quantile(99.9),
		Max:   time.Duration(r.max.Load()),
	}
	if s.Count > 0 {
		s.Mean = time.Duration(r.sum.Load() / s.Count)
	}
	return s
}
