package loadgen

import (
	"context"
	"errors"
	"testing"
	"time"
)

// Knee edge cases for Sweep. The interesting boundaries are the ones the
// happy-path tests never hit: a server that is down from the first step, a
// sweep that never finds the knee because every step holds, the SLO
// comparison exactly at the boundary, and a one-step sweep.

// TestSweepKneeFirstStepFails: a do that always errors yields zero achieved
// throughput, so even the starting rate is unsustained — knee must be -1 and
// the sweep must stop after that single step.
func TestSweepKneeFirstStepFails(t *testing.T) {
	do := func(ctx context.Context, i int) error { return errors.New("down") }
	sopts := SweepOptions{Start: 1000, MaxSteps: 4, StepDuration: 20 * time.Millisecond}
	results, knee, err := Sweep(context.Background(), sopts, Options{Seed: 9}, do)
	if err != nil {
		t.Fatal(err)
	}
	if knee != -1 {
		t.Errorf("knee = %d, want -1 (no rate sustained)", knee)
	}
	if len(results) != 1 {
		t.Errorf("sweep ran %d steps, want 1 (stop at first failure)", len(results))
	}
	if r := results[0]; r.Errors == 0 || r.Achieved != 0 {
		t.Errorf("step 0: errors %d achieved %.0f, want all-error zero throughput", r.Errors, r.Achieved)
	}
}

// TestSweepAllStepsSustained: when every step holds, the sweep must run to
// MaxSteps and report the last step as the knee rather than -1 or an index
// past the end.
func TestSweepAllStepsSustained(t *testing.T) {
	do := func(ctx context.Context, i int) error { return nil }
	// MinAchieved is relaxed: pacer timer overshoot on tiny steps is noise
	// here, the subject is the knee index when nothing collapses.
	sopts := SweepOptions{Start: 1000, Factor: 2, MaxSteps: 3, StepDuration: 50 * time.Millisecond, MinAchieved: 0.5}
	results, knee, err := Sweep(context.Background(), sopts, Options{Seed: 9}, do)
	if err != nil {
		t.Fatal(err)
	}
	if knee != sopts.MaxSteps-1 {
		t.Errorf("knee = %d, want %d (every step sustained)", knee, sopts.MaxSteps-1)
	}
	if len(results) != sopts.MaxSteps {
		t.Fatalf("sweep ran %d steps, want %d", len(results), sopts.MaxSteps)
	}
	// The rate escalation must be geometric in Factor from Start.
	for i, want := 0, sopts.Start; i < len(results); i, want = i+1, want*sopts.Factor {
		if results[i].Offered != want {
			t.Errorf("step %d offered %.0f, want %.0f", i, results[i].Offered, want)
		}
	}
}

// TestSustainedSLOBoundary: the SLO criterion is strict — a p99 exactly at
// the SLO still counts as sustained; one nanosecond over does not.
func TestSustainedSLOBoundary(t *testing.T) {
	o := SweepOptions{SLO: 10 * time.Millisecond}.withDefaults()
	at := Result{Offered: 1000, Achieved: 1000, Latency: LatencySummary{P99: 10 * time.Millisecond}}
	if !o.Sustained(at) {
		t.Error("p99 exactly at the SLO counted as a violation")
	}
	over := at
	over.Latency.P99 = 10*time.Millisecond + time.Nanosecond
	if o.Sustained(over) {
		t.Error("p99 over the SLO counted as sustained")
	}
	// And with SLO unset, latency must not gate at all.
	free := SweepOptions{}.withDefaults()
	slow := at
	slow.Latency.P99 = time.Hour
	if !free.Sustained(slow) {
		t.Error("latency gated a sweep with no SLO configured")
	}
}

// TestSweepSingleStep: MaxSteps=1 is the degenerate sweep — knee is 0 when
// that lone step holds and -1 when it does not, never anything else.
func TestSweepSingleStep(t *testing.T) {
	sopts := SweepOptions{Start: 1000, MaxSteps: 1, StepDuration: 50 * time.Millisecond, MinAchieved: 0.5}

	ok := func(ctx context.Context, i int) error { return nil }
	results, knee, err := Sweep(context.Background(), sopts, Options{Seed: 9}, ok)
	if err != nil {
		t.Fatal(err)
	}
	if knee != 0 || len(results) != 1 {
		t.Errorf("sustained single step: knee %d with %d results, want 0 with 1", knee, len(results))
	}

	bad := func(ctx context.Context, i int) error { return errors.New("down") }
	results, knee, err = Sweep(context.Background(), sopts, Options{Seed: 9}, bad)
	if err != nil {
		t.Fatal(err)
	}
	if knee != -1 || len(results) != 1 {
		t.Errorf("failed single step: knee %d with %d results, want -1 with 1", knee, len(results))
	}
}

// TestSweepRejectsBadStart: a non-positive starting rate is a caller bug and
// must be an error, not an empty sweep.
func TestSweepRejectsBadStart(t *testing.T) {
	for _, start := range []float64{0, -100} {
		_, _, err := Sweep(context.Background(), SweepOptions{Start: start}, Options{}, func(ctx context.Context, i int) error { return nil })
		if err == nil {
			t.Errorf("Start=%g accepted, want error", start)
		}
	}
}
