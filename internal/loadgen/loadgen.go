// Package loadgen is the open-loop load harness (DESIGN S26): it offers
// requests to a server at a configured arrival rate on a deterministic,
// seeded schedule, instead of waiting for each response before sending the
// next request the way a closed-loop bench does.
//
// The distinction matters for honesty. A closed-loop generator self-throttles
// — when the server stalls, the generator stops offering load, so the stall
// barely registers in the recorded latencies (coordinated omission). Here
// every request has an *intended* send time fixed before the run starts, and
// its latency is measured from that intended time regardless of when the
// pacer actually got it onto the wire; a stall therefore penalizes every
// request scheduled behind it, exactly as it would penalize real clients.
package loadgen

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Arrivals selects the arrival process of the schedule.
type Arrivals uint8

const (
	// Poisson arrivals: exponential inter-arrival gaps with mean 1/rate —
	// the memoryless open-system model, and the one that actually exercises
	// queueing (bursts arrive with the full burstiness of independence).
	Poisson Arrivals = iota
	// Fixed arrivals: a metronome at exactly 1/rate intervals. Useful as a
	// best-case comparison — no burst ever exceeds the offered rate.
	Fixed
)

func (a Arrivals) String() string {
	switch a {
	case Poisson:
		return "poisson"
	case Fixed:
		return "fixed"
	}
	return fmt.Sprintf("arrivals(%d)", uint8(a))
}

// ParseArrivals parses "poisson" or "fixed".
func ParseArrivals(s string) (Arrivals, error) {
	switch s {
	case "poisson":
		return Poisson, nil
	case "fixed":
		return Fixed, nil
	}
	return 0, fmt.Errorf("loadgen: unknown arrival process %q (want poisson or fixed)", s)
}

// Schedule returns n arrival offsets from the start of the run, at the given
// offered rate (arrivals per second). The schedule is fully determined by
// (kind, rate, n, seed): the same inputs yield the identical schedule, so a
// run can be reproduced bit-for-bit.
func Schedule(kind Arrivals, rate float64, n int, seed int64) []time.Duration {
	if rate <= 0 || n <= 0 {
		return nil
	}
	out := make([]time.Duration, n)
	switch kind {
	case Fixed:
		per := float64(time.Second) / rate
		for i := range out {
			out[i] = time.Duration(float64(i) * per)
		}
	default: // Poisson
		rng := rand.New(rand.NewSource(seed))
		t := 0.0
		for i := range out {
			t += rng.ExpFloat64() / rate * float64(time.Second)
			out[i] = time.Duration(t)
		}
	}
	return out
}

// Options configures one open-loop run.
type Options struct {
	// Rate is the offered arrival rate in requests per second (required).
	Rate float64
	// N is the number of requests in the run (required).
	N int
	// Arrivals selects the arrival process; default Poisson.
	Arrivals Arrivals
	// Seed determines the schedule (and nothing else); same seed, same
	// schedule.
	Seed int64
	// MaxInFlight bounds concurrently outstanding requests so a collapsed
	// server cannot make the harness spawn unbounded goroutines. The bound
	// is accounted honestly: a request that waits for a slot is still
	// measured from its intended send time. Default 4096.
	MaxInFlight int
}

func (o Options) withDefaults() Options {
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 4096
	}
	return o
}

// Result summarizes one open-loop run.
type Result struct {
	// Offered is the configured arrival rate; Achieved is completions per
	// second of wall clock, the throughput the server actually sustained.
	// Achieved falling visibly below Offered is the signature of
	// saturation — the knee the rate sweep looks for.
	Offered  float64       `json:"offered_qps"`
	Achieved float64       `json:"achieved_qps"`
	Sent     int           `json:"sent"`
	Errors   int           `json:"errors"`
	Elapsed  time.Duration `json:"elapsed_ns"`
	// Latency is measured from each request's intended send time — pacer
	// lag and in-flight queueing count against the server, never for it.
	Latency LatencySummary `json:"latency"`
	// MaxLag is the worst pacer lateness (intended vs actual dispatch):
	// small lag means the generator itself kept up and the latencies are
	// trustworthy; lag commensurate with the latencies means the harness —
	// not the server — was the bottleneck.
	MaxLag time.Duration `json:"max_lag_ns"`
}

// Run executes one open-loop run: do(ctx, i) is invoked once per scheduled
// arrival i (concurrently, up to MaxInFlight at once), and its latency is
// recorded from the arrival's intended time. A do error counts toward
// Errors; cancelling ctx abandons the remaining schedule.
func Run(ctx context.Context, opts Options, do func(ctx context.Context, i int) error) (Result, error) {
	opts = opts.withDefaults()
	if opts.Rate <= 0 {
		return Result{}, fmt.Errorf("loadgen: offered rate %g must be positive", opts.Rate)
	}
	if opts.N <= 0 {
		return Result{}, fmt.Errorf("loadgen: request count %d must be positive", opts.N)
	}
	sched := Schedule(opts.Arrivals, opts.Rate, opts.N, opts.Seed)
	rec := NewRecorder()
	slots := make(chan struct{}, opts.MaxInFlight)
	var wg sync.WaitGroup
	var errs atomic.Int64
	var maxLag time.Duration

	start := time.Now()
	sent := 0
pace:
	for i, off := range sched {
		target := start.Add(off)
		if d := time.Until(target); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				break pace
			}
		} else if lag := -d; lag > maxLag {
			maxLag = lag
		}
		select {
		case slots <- struct{}{}:
		case <-ctx.Done():
			break pace
		}
		sent++
		wg.Add(1)
		go func(i int, target time.Time) {
			defer wg.Done()
			err := do(ctx, i)
			rec.Record(time.Since(target))
			if err != nil {
				errs.Add(1)
			}
			<-slots
		}(i, target)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := Result{
		Offered: opts.Rate,
		Sent:    sent,
		Errors:  int(errs.Load()),
		Elapsed: elapsed,
		Latency: rec.Summary(),
		MaxLag:  maxLag,
	}
	if elapsed > 0 {
		res.Achieved = float64(sent-res.Errors) / elapsed.Seconds()
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	return res, nil
}

// SweepOptions configures a rate sweep.
type SweepOptions struct {
	// Start is the first offered rate; each step multiplies by Factor
	// (default 2) for up to MaxSteps steps (default 8).
	Start    float64
	Factor   float64
	MaxSteps int
	// StepDuration sizes each step's request count as rate×duration.
	// Default 2s.
	StepDuration time.Duration
	// SLO is the p99 bound (from intended send time) a step must meet to
	// count as sustained; 0 disables the latency criterion.
	SLO time.Duration
	// MinAchieved is the fraction of the offered rate a step must complete
	// to count as sustained. Default 0.95.
	MinAchieved float64
}

func (o SweepOptions) withDefaults() SweepOptions {
	if o.Factor <= 1 {
		o.Factor = 2
	}
	if o.MaxSteps <= 0 {
		o.MaxSteps = 8
	}
	if o.StepDuration <= 0 {
		o.StepDuration = 2 * time.Second
	}
	if o.MinAchieved <= 0 || o.MinAchieved > 1 {
		o.MinAchieved = 0.95
	}
	return o
}

// Sustained reports whether r met the sweep's acceptance criteria.
func (o SweepOptions) Sustained(r Result) bool {
	o = o.withDefaults()
	if r.Errors > 0 {
		return false
	}
	if r.Achieved < o.MinAchieved*r.Offered {
		return false
	}
	if o.SLO > 0 && r.Latency.P99 > o.SLO {
		return false
	}
	return true
}

// Sweep escalates the offered rate geometrically until a step fails the
// acceptance criteria (the knee) or MaxSteps is exhausted. It returns every
// step's result and the index of the last sustained step, or -1 if even the
// first rate was not sustained.
func Sweep(ctx context.Context, sopts SweepOptions, base Options,
	do func(ctx context.Context, i int) error) ([]Result, int, error) {
	sopts = sopts.withDefaults()
	if sopts.Start <= 0 {
		return nil, -1, fmt.Errorf("loadgen: sweep start rate %g must be positive", sopts.Start)
	}
	var results []Result
	knee := -1
	rate := sopts.Start
	for step := 0; step < sopts.MaxSteps; step++ {
		opts := base
		opts.Rate = rate
		opts.N = int(math.Ceil(rate * sopts.StepDuration.Seconds()))
		// Each step gets a distinct schedule stream, still deterministic.
		opts.Seed = base.Seed + int64(step)
		r, err := Run(ctx, opts, do)
		results = append(results, r)
		if err != nil {
			return results, knee, err
		}
		if !sopts.Sustained(r) {
			break
		}
		knee = step
		rate *= sopts.Factor
	}
	return results, knee, nil
}
