package loadgen

import (
	"fmt"
	"math"
	"math/rand"

	"pgridfile/internal/geom"
)

// OpKind enumerates the query types the harness can offer.
type OpKind uint8

const (
	OpPoint OpKind = iota
	OpRange
	OpRangeCount
	OpPartialMatch
	OpKNN
)

func (k OpKind) String() string {
	switch k {
	case OpPoint:
		return "point"
	case OpRange:
		return "range"
	case OpRangeCount:
		return "range-count"
	case OpPartialMatch:
		return "partial-match"
	case OpKNN:
		return "knn"
	}
	return fmt.Sprintf("op(%d)", uint8(k))
}

// Op is one synthesized query, protocol-agnostic: the caller maps it onto
// whatever client API it drives.
type Op struct {
	Kind OpKind
	// Key is the point / kNN centre / partial-match pattern (NaN marks an
	// unspecified attribute). Nil for range ops.
	Key []float64
	// Rect is the query rectangle for range and range-count ops.
	Rect geom.Rect
	// K is the neighbour count for kNN ops.
	K int
}

// Mix weighs the op kinds in a synthesized workload. Weights are relative;
// they need not sum to anything in particular. The zero Mix means
// DefaultMix.
type Mix struct {
	Point        int
	Range        int
	RangeCount   int
	PartialMatch int
	KNN          int
}

// DefaultMix is a read-mostly analytical mix: dominated by range scans with
// a tail of point lookups and the exotic query types.
var DefaultMix = Mix{Point: 20, Range: 30, RangeCount: 30, PartialMatch: 10, KNN: 10}

func (m Mix) total() int {
	return m.Point + m.Range + m.RangeCount + m.PartialMatch + m.KNN
}

// Skew adds a hot spot to the key distribution: a Hot fraction of ops target
// a sub-region covering HotFrac of each dimension's extent, centred at the
// domain midpoint. The zero Skew is uniform.
type Skew struct {
	// Hot is the fraction of ops (0..1) whose centre falls in the hot region.
	Hot float64
	// HotFrac is the hot region's extent per dimension as a fraction of the
	// domain (default 0.1 when Hot > 0).
	HotFrac float64
}

// SynthOptions configures Synthesize.
type SynthOptions struct {
	Mix  Mix
	Skew Skew
	// RangeRatio is the volume fraction of the domain each range query
	// covers, as in the paper's square-range workload (default 0.01).
	RangeRatio float64
	// Unspecified is the number of unspecified attributes in partial-match
	// ops (default 1).
	Unspecified int
	// K is the neighbour count for kNN ops (default 8).
	K int
}

func (o SynthOptions) withDefaults() SynthOptions {
	if o.Mix.total() <= 0 {
		o.Mix = DefaultMix
	}
	if o.Skew.Hot > 0 && o.Skew.HotFrac <= 0 {
		o.Skew.HotFrac = 0.1
	}
	if o.RangeRatio <= 0 {
		o.RangeRatio = 0.01
	}
	if o.Unspecified < 1 {
		o.Unspecified = 1
	}
	if o.K <= 0 {
		o.K = 8
	}
	return o
}

// hotRegion returns the skewed sub-domain: HotFrac of each extent, centred
// at the domain midpoint.
func hotRegion(dom geom.Rect, frac float64) geom.Rect {
	hot := make(geom.Rect, dom.Dim())
	for k := range dom {
		mid := (dom[k].Lo + dom[k].Hi) / 2
		half := frac * dom[k].Length() / 2
		hot[k] = geom.Interval{Lo: mid - half, Hi: mid + half}
	}
	return hot
}

// Synthesize generates n ops over the domain, fully determined by
// (dom, opts, n, seed): the same inputs yield the identical op sequence, so
// an open-loop run replays exactly.
func Synthesize(dom geom.Rect, opts SynthOptions, n int, seed int64) []Op {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	d := dom.Dim()
	total := opts.Mix.total()
	hot := dom
	if opts.Skew.Hot > 0 {
		hot = hotRegion(dom, opts.Skew.HotFrac)
	}
	// Centres are drawn from the hot region with probability Skew.Hot, the
	// full domain otherwise; range extents are always sized off the full
	// domain so a hot range query still covers RangeRatio of total volume.
	centre := func(buf []float64) []float64 {
		src := dom
		if opts.Skew.Hot > 0 && rng.Float64() < opts.Skew.Hot {
			src = hot
		}
		for k := range src {
			buf[k] = src[k].Lo + rng.Float64()*src[k].Length()
		}
		return buf
	}
	side := math.Pow(opts.RangeRatio, 1/float64(d))

	ops := make([]Op, n)
	for i := range ops {
		w := rng.Intn(total)
		var op Op
		switch {
		case w < opts.Mix.Point:
			op = Op{Kind: OpPoint, Key: centre(make([]float64, d))}
		case w < opts.Mix.Point+opts.Mix.Range+opts.Mix.RangeCount:
			kind := OpRange
			if w >= opts.Mix.Point+opts.Mix.Range {
				kind = OpRangeCount
			}
			c := centre(make([]float64, d))
			q := make(geom.Rect, d)
			for k := range dom {
				half := side * dom[k].Length() / 2
				q[k] = geom.Interval{
					Lo: math.Max(c[k]-half, dom[k].Lo),
					Hi: math.Min(c[k]+half, dom[k].Hi),
				}
			}
			op = Op{Kind: kind, Rect: q}
		case w < opts.Mix.Point+opts.Mix.Range+opts.Mix.RangeCount+opts.Mix.PartialMatch:
			key := centre(make([]float64, d))
			uns := opts.Unspecified
			if uns > d {
				uns = d
			}
			for _, k := range rng.Perm(d)[:uns] {
				key[k] = math.NaN()
			}
			op = Op{Kind: OpPartialMatch, Key: key}
		default:
			op = Op{Kind: OpKNN, Key: centre(make([]float64, d)), K: opts.K}
		}
		ops[i] = op
	}
	return ops
}
