package replica

import (
	"bytes"
	"testing"

	"pgridfile/internal/core"
	"pgridfile/internal/synth"
)

func placeFixture(t *testing.T, disks int) (core.Grid, core.Allocation) {
	t.Helper()
	f, err := synth.Hotspot2D(2000, 5).Build()
	if err != nil {
		t.Fatal(err)
	}
	g := core.FromGridFile(f)
	base, err := (&core.Minimax{Seed: 1}).Decluster(g, disks)
	if err != nil {
		t.Fatal(err)
	}
	return g, base
}

// TestPlacerDeterministicAcrossWorkers is the acceptance-criteria pin: the
// replica map is byte-identical at any worker count, so a layout built on a
// 32-core build box equals one built single-threaded.
func TestPlacerDeterministicAcrossWorkers(t *testing.T) {
	g, base := placeFixture(t, 4)
	var ref []byte
	for _, w := range []int{1, 2, 4, 8} {
		m, err := (&Placer{Replicas: 2, Workers: w}).Place(g, base)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		enc := m.Encode()
		if ref == nil {
			ref = enc
			continue
		}
		if !bytes.Equal(ref, enc) {
			t.Fatalf("workers=%d produced a different replica map than workers=1", w)
		}
	}
}

// TestPlaceOwnersDistinct proves the structural invariants at r=3 over 4
// disks: owner 0 is the base assignment, all owners are distinct and in
// range, and every disk's total load stays near n*r/disks.
func TestPlaceOwnersDistinct(t *testing.T) {
	const disks, r = 4, 3
	g, base := placeFixture(t, disks)
	m, err := (&Placer{Replicas: r}).Place(g, base)
	if err != nil {
		t.Fatal(err)
	}
	n := len(base.Assign)
	if err := m.Validate(n); err != nil {
		t.Fatal(err)
	}
	if m.Disks != disks || m.Replicas != r {
		t.Fatalf("map is %d disks × %d replicas, want %d × %d", m.Disks, m.Replicas, disks, r)
	}
	for x, own := range m.Owners {
		if own[0] != base.Assign[x] {
			t.Fatalf("bucket %d: primary %d, base assigned %d", x, own[0], base.Assign[x])
		}
	}
	quota := (n + disks - 1) / disks
	for d, l := range m.DiskLoads() {
		if l > r*quota+disks {
			t.Fatalf("disk %d holds %d copies, per-level quota %d × %d levels", d, l, quota, r)
		}
	}
}

// TestPlaceSingleReplicaMirrorsBase: r=1 must reproduce the base allocation
// exactly — replication off is not a special case for callers.
func TestPlaceSingleReplicaMirrorsBase(t *testing.T) {
	g, base := placeFixture(t, 4)
	m, err := (&Placer{Replicas: 1}).Place(g, base)
	if err != nil {
		t.Fatal(err)
	}
	for x, own := range m.Owners {
		if len(own) != 1 || own[0] != base.Assign[x] {
			t.Fatalf("bucket %d: owners %v, want [%d]", x, own, base.Assign[x])
		}
	}
}

// TestPlaceRejectsBadReplicas pins the argument contract: r must be in
// [1, disks].
func TestPlaceRejectsBadReplicas(t *testing.T) {
	g, base := placeFixture(t, 4)
	if _, err := (&Placer{Replicas: 0}).Place(g, base); err == nil {
		t.Error("r=0 accepted")
	}
	if _, err := (&Placer{Replicas: 5}).Place(g, base); err == nil {
		t.Error("r=5 over 4 disks accepted — cannot place distinct copies")
	}
}
