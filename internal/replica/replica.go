// Package replica places each bucket of a declustered grid file on r
// distinct disks. The primary copy comes from any registered allocator; each
// further level is chosen by re-running allocation on the residual problem
// (core.ResidualAssign), so secondary copies decluster well against
// everything already placed instead of merely landing on a different disk.
//
// Placement is deterministic: given the same grid, base allocation and
// replica count, the map is byte-identical for any Workers value — the
// property the layout tool and its tests rely on.
package replica

import (
	"encoding/binary"
	"fmt"

	"pgridfile/internal/core"
)

// Placer chooses r-way replica placements on top of a base allocation.
type Placer struct {
	// Replicas is the number of copies per bucket, r >= 1. 1 means no
	// replication: the map echoes the base allocation.
	Replicas int
	// Weight scores the residual allocation; nil means ProximityWeight.
	// Custom weights take the serial path, built-ins run on the engine.
	Weight core.Weight
	// Workers bounds the engine's sweep parallelism (0 = GOMAXPROCS). The
	// placement does not depend on it.
	Workers int
}

// Map is an r-way replica placement: every bucket's ordered owner list.
// Owners[x][0] is the primary (the base allocation's disk); levels 1..r-1
// are the residual assignments, in placement order.
type Map struct {
	Disks    int
	Replicas int
	Owners   [][]int
}

// Place builds the replica map for g given a base allocation. Each level
// beyond the first is a residual allocation against all previously placed
// levels, so the distinct-disk constraint holds by construction.
func (p *Placer) Place(g core.Grid, base core.Allocation) (*Map, error) {
	r := p.Replicas
	if r < 1 {
		return nil, fmt.Errorf("replica: replicas must be >= 1, got %d", r)
	}
	if r > base.Disks {
		return nil, fmt.Errorf("replica: %d replicas need at least that many disks, got %d", r, base.Disks)
	}
	n := len(g.Buckets)
	if err := base.Validate(n); err != nil {
		return nil, err
	}

	owners := make([][]int, n)
	backing := make([]int, n*r)
	for x := range owners {
		owners[x] = backing[x*r : x*r+1 : x*r+r]
		owners[x][0] = base.Assign[x]
	}
	for level := 1; level < r; level++ {
		next, err := core.ResidualAssign(g, base.Disks, owners, p.Weight, p.Workers)
		if err != nil {
			return nil, fmt.Errorf("replica: level %d: %w", level, err)
		}
		for x := range owners {
			owners[x] = append(owners[x], next[x])
		}
	}
	return &Map{Disks: base.Disks, Replicas: r, Owners: owners}, nil
}

// Validate checks the map covers nBuckets buckets with r distinct in-range
// owners each.
func (m *Map) Validate(nBuckets int) error {
	if m.Disks < 1 {
		return fmt.Errorf("replica: map has %d disks", m.Disks)
	}
	if m.Replicas < 1 || m.Replicas > m.Disks {
		return fmt.Errorf("replica: map has %d replicas on %d disks", m.Replicas, m.Disks)
	}
	if len(m.Owners) != nBuckets {
		return fmt.Errorf("replica: map covers %d buckets, want %d", len(m.Owners), nBuckets)
	}
	for x, own := range m.Owners {
		if len(own) != m.Replicas {
			return fmt.Errorf("replica: bucket %d has %d owners, want %d", x, len(own), m.Replicas)
		}
		for i, k := range own {
			if k < 0 || k >= m.Disks {
				return fmt.Errorf("replica: bucket %d owner %d is disk %d of %d", x, i, k, m.Disks)
			}
			for j := 0; j < i; j++ {
				if own[j] == k {
					return fmt.Errorf("replica: bucket %d has disk %d twice", x, k)
				}
			}
		}
	}
	return nil
}

// DiskLoads returns the number of bucket copies per disk across all levels.
func (m *Map) DiskLoads() []int {
	loads := make([]int, m.Disks)
	for _, own := range m.Owners {
		for _, k := range own {
			loads[k]++
		}
	}
	return loads
}

// Encode serializes the map into a canonical byte string: disks, replicas,
// bucket count, then each bucket's owner list, all little-endian uint32.
// Two maps are equal iff their encodings are byte-identical — the form the
// determinism tests compare.
func (m *Map) Encode() []byte {
	buf := make([]byte, 0, 12+4*len(m.Owners)*m.Replicas)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Disks))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Replicas))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Owners)))
	for _, own := range m.Owners {
		for _, k := range own {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(k))
		}
	}
	return buf
}
