package server

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The observability layer (DESIGN S23): a per-query stage trace threaded
// through the whole hot path. Stage indices name where a traced query's
// nanoseconds went; stageNames is their order in STATS, /metrics and the
// slow-query log.
//
// The stages partition the path a data query takes:
//
//	admission   waiting for an admission-control slot
//	translate   grid-directory translation (BucketAt / BucketsInRange)
//	cache       bucket-cache acquire plus waiting on joined in-flight loads
//	fetch_wait  batches queued behind other work on their disk goroutine
//	pread       positioned disk reads, including injected stalls
//	decode      page validation and record decoding
//	backoff     sleeps between disk-batch retry attempts
//	encode      result encoding to the wire frame
//
// Disk-side stages (fetch_wait, pread, decode, backoff) sum over the disks a
// query touched, which run in parallel — their sum can legitimately exceed
// the query's elapsed wall clock.
const (
	stageAdmission = iota
	stageTranslate
	stageCache
	stageFetchWait
	stagePread
	stageDecode
	stageBackoff
	stageEncode
	numStages
)

var stageNames = [numStages]string{
	stageAdmission: "admission",
	stageTranslate: "translate",
	stageCache:     "cache",
	stageFetchWait: "fetch_wait",
	stagePread:     "pread",
	stageDecode:    "decode",
	stageBackoff:   "backoff",
	stageEncode:    "encode",
}

// Trace accumulates one query's per-stage durations. Stage cells are atomic
// because disk goroutines record their share (fetch_wait, pread, decode,
// backoff) concurrently with the query goroutine; the cache-outcome counters
// are touched by the query goroutine only. fetchBuckets gathers every
// submitted batch before returning, so all disk-side writes happen before
// the trace is read and released.
//
// Traces are pooled: a query that isn't sampled carries a nil *Trace, and
// every recording helper is nil-safe, so the disabled path costs one nil
// check and allocates nothing.
type Trace struct {
	stages [numStages]atomic.Int64 // nanoseconds per stage

	// Cache outcome of the query's bucket set.
	hits  int32 // served from the bucket cache
	joins int32 // waited on another query's in-flight load
	leads int32 // loaded by this query via a disk batch
}

var tracePool = sync.Pool{New: func() any { return new(Trace) }}

// acquireTrace returns a pooled Trace when this query is sampled, nil
// otherwise. TraceSample n traces every n-th data query; 0 disables.
func (s *Server) acquireTrace() *Trace {
	n := s.cfg.TraceSample
	if n <= 0 {
		return nil
	}
	if n > 1 && s.traceSeq.Add(1)%uint64(n) != 0 {
		return nil
	}
	return tracePool.Get().(*Trace)
}

// releaseTrace resets t and returns it to the pool; nil-safe.
func releaseTrace(t *Trace) {
	if t == nil {
		return
	}
	for i := range t.stages {
		t.stages[i].Store(0)
	}
	t.hits, t.joins, t.leads = 0, 0, 0
	tracePool.Put(t)
}

// traceNow reads the server clock only when a trace is attached, so
// untraced queries skip the call entirely. Pairs with traceSince. Going
// through cfg.clock keeps every stage measurement on the same (injectable)
// time source as the end-to-end latency.
func (s *Server) traceNow(t *Trace) time.Time {
	if t == nil {
		return time.Time{}
	}
	return s.cfg.clock()
}

// add records d on a stage; nil-safe, negative durations are dropped.
func (t *Trace) add(stage int, d time.Duration) {
	if t == nil || d <= 0 {
		return
	}
	t.stages[stage].Add(int64(d))
}

// traceSince records the time since a traceNow mark; nil-safe on both ends.
func (s *Server) traceSince(t *Trace, stage int, start time.Time) {
	if t == nil || start.IsZero() {
		return
	}
	t.stages[stage].Add(int64(s.cfg.clock().Sub(start)))
}

// noteCache accumulates the cache outcome of one fetchBuckets pass (k-NN
// runs several per query).
func (t *Trace) noteCache(hits, joins, leads int) {
	if t == nil {
		return
	}
	t.hits += int32(hits)
	t.joins += int32(joins)
	t.leads += int32(leads)
}

// verbName names a verb for labels and the slow-query log.
func verbName(v Verb) string {
	if i := verbIndex(v); i >= 0 {
		return verbNames[i]
	}
	return fmt.Sprintf("0x%02x", uint8(v))
}

// finishTrace folds a completed query's trace into the per-stage histograms,
// emits the slow-query log line when the query qualifies, and returns the
// trace to the pool. Must be called exactly once per acquired trace, after
// every disk batch has been gathered.
func (s *Server) finishTrace(t *Trace, verb Verb, elapsed time.Duration, info QueryInfo, qerr error) {
	if t == nil {
		return
	}
	s.met.traced.Add(1)
	for i := range t.stages {
		// Raw nanoseconds: most stages are sub-µs on a warm cache, and a µs
		// histogram would clamp them all into bin 0 (every quantile 0.5).
		s.met.stageLat[i].observe(float64(t.stages[i].Load()))
	}
	if s.cfg.TraceSlowLog && elapsed >= s.cfg.TraceSlow {
		var b strings.Builder
		fmt.Fprintf(&b, "gridserver trace verb=%s elapsed=%s", verbName(verb), elapsed)
		for i := range t.stages {
			fmt.Fprintf(&b, " %s=%s", stageNames[i], time.Duration(t.stages[i].Load()))
		}
		fmt.Fprintf(&b, " buckets=%d pages=%d hits=%d joins=%d leads=%d degraded=%v",
			info.Buckets, info.Pages, t.hits, t.joins, t.leads, info.Degraded)
		if qerr != nil {
			fmt.Fprintf(&b, " err=%q", qerr.Error())
		}
		b.WriteByte('\n')
		s.traceMu.Lock()
		io.WriteString(s.cfg.TraceLog, b.String())
		s.traceMu.Unlock()
	}
	releaseTrace(t)
}
