package server

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"pgridfile/internal/geom"
)

// TestGenFuzzCorpus regenerates the committed seed corpora under
// testdata/fuzz/. The files are checked in so plain `go test` (and the fuzz
// smoke in scripts/check.sh) replays them as regression inputs alongside the
// in-code f.Add seeds; set GEN_FUZZ_CORPUS=1 to rebuild them after a protocol
// change. Every entry is produced by the package's own encoders, so the
// corpus never drifts from the wire format.
func TestGenFuzzCorpus(t *testing.T) {
	if os.Getenv("GEN_FUZZ_CORPUS") == "" {
		t.Skip("set GEN_FUZZ_CORPUS=1 to regenerate testdata/fuzz")
	}

	// FuzzCodec: whole request frames, well-formed and broken.
	point := frameBytes(t, Request{Verb: VerbPoint, Key: geom.Point{3.25, -7.5, 11}})
	knn := frameBytes(t, Request{Verb: VerbKNN, Key: geom.Point{0.5, 0.5}, K: 9})
	writeCorpus(t, "FuzzCodec", map[string][]byte{
		"point-3d":       point,
		"knn":            knn,
		"range-count":    frameBytes(t, Request{Verb: VerbRange, Query: geom.Rect{{Lo: -1, Hi: 1}, {Lo: 0, Hi: 0}}, CountOnly: true}),
		"partial-nan":    frameBytes(t, Request{Verb: VerbPartial, Vals: []float64{math.NaN(), math.Inf(1), 2}}),
		"fault-spec":     frameBytes(t, Request{Verb: VerbFault, FaultCmd: "store.read.disk0:torn:n=3;store.read:delay=1ms"}),
		"tagged-point":   taggedBytes(t, 0xDEADBEEF, Request{Verb: VerbPoint, Key: geom.Point{1, 2}}),
		"truncated":      point[:len(point)/2],
		"length-bomb":    {0xFF, 0xFF, 0xFF, 0x7F, byte(VerbPoint)},
		"payload-mutant": mutate(knn, len(knn)-1),
		// A result frame on the request path: the decoder must reject it
		// cleanly, and the frame reader gets a head start on the streamed
		// AppendResult layout (dims header, patched count, info trailer).
		"points-result": resultFrameBytes(t, false, 0,
			Result{Points: []geom.Point{{1.5, 2.5}}, Count: 1, Info: QueryInfo{Buckets: 1, Pages: 1}}),
	})

	// FuzzBatchFraming: concatenated frame sequences as connWriter emits them.
	var batch []byte
	for i, req := range []Request{
		{Verb: VerbStats},
		{Verb: VerbPoint, Key: geom.Point{1.5, -2.5}},
		{Verb: VerbKNN, Key: geom.Point{0, 0}, K: 2},
		{Verb: VerbRange, Query: geom.Rect{{Lo: 0, Hi: 10}}},
		{Verb: VerbFault, FaultCmd: "status"},
	} {
		var err error
		if batch, err = AppendRequestFrame(batch, req, uint32(i), i%2 == 1); err != nil {
			t.Fatal(err)
		}
	}
	var many []byte
	for i := 0; i < 70; i++ { // past the 64-frame batch cap in the target
		var err error
		if many, err = AppendRequestFrame(many, Request{Verb: VerbStats}, uint32(i), true); err != nil {
			t.Fatal(err)
		}
	}
	// Response batches as the pipelined worker emits them: every reply of a
	// batch AppendResult-encoded into one buffer — tagged envelopes, streamed
	// rows, the dims>0/zero-row empty-points shape, count and write acks.
	respBatch := resultFrameBytes(t, true, 7, Result{
		Points: []geom.Point{{1, 2, 3}, {4, 5, 6}}, Count: 2,
		Info: QueryInfo{Buckets: 1, Pages: 1}})
	respBatch = append(respBatch, emptyPointsFrameBytes(t, 3)...)
	respBatch = append(respBatch, resultFrameBytes(t, true, 8,
		Result{Count: 42, Info: QueryInfo{Buckets: 2, Pages: 2}})...)
	writeCorpus(t, "FuzzBatchFraming", map[string][]byte{
		"mixed-batch":    batch,
		"trailing-junk":  append(append([]byte(nil), batch...), 0x01, 0x00, 0x00),
		"oversize-batch": many,
		"mid-corrupt":    mutate(batch, len(batch)/2),
		"response-batch": respBatch,
	})

	// FuzzDegradedCodec: (verb byte, result payload) pairs around the
	// degraded-trailer invariant.
	clean := resultPayload(t, VerbCount, Result{Count: 7, Info: QueryInfo{Buckets: 2, Pages: 3, Elapsed: 900}})
	degraded := resultPayload(t, VerbPoints, Result{
		Points: []geom.Point{{1, 2}, {3, 4}, {5, 6}}, Count: 3,
		Info: QueryInfo{Buckets: 2, Pages: 2, Degraded: true, MissedDisks: 2},
	})
	badFlag := append([]byte(nil), clean...)
	badFlag[len(badFlag)-3] = 0x80 // unknown flag bit: must be rejected
	writeCorpusPairs(t, "FuzzDegradedCodec", map[string]struct {
		verb    byte
		payload []byte
	}{
		"count-clean":     {byte(VerbCount), clean},
		"points-degraded": {byte(VerbPoints), degraded},
		"flag-unknown":    {byte(VerbCount), badFlag},
		"trailer-cut":     {byte(VerbPoints), degraded[:len(degraded)-2]},
		"verb-mismatch":   {byte(VerbPoints), clean},
		// dims>0 with zero rows: only the serving path's streaming encoder
		// produces this layout.
		"points-empty-streamed": {byte(VerbPoints), emptyStreamedPayload(t, 3)},
	})
}

func frameBytes(t *testing.T, req Request) []byte {
	t.Helper()
	fr, err := EncodeRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, fr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func taggedBytes(t *testing.T, id uint32, req Request) []byte {
	t.Helper()
	fr, err := EncodeRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	w, err := WrapTagged(id, fr)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, w); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// resultFrameBytes encodes a VerbPoints or VerbCount answer as whole frame
// bytes, optionally wrapped in a tagged envelope — the shape connWriter puts
// on the wire.
func resultFrameBytes(t *testing.T, tagged bool, id uint32, res Result) []byte {
	t.Helper()
	verb := VerbCount
	if res.Points != nil {
		verb = VerbPoints
	}
	fr, err := EncodeResult(verb, res)
	if err != nil {
		t.Fatal(err)
	}
	if tagged {
		if fr, err = WrapTagged(id, fr); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, fr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// emptyStreamedPayload is the dims-wide, zero-row points payload only the
// incremental result encoder emits.
func emptyStreamedPayload(t *testing.T, dims int) []byte {
	t.Helper()
	e := newResultEncoder(nil, dims)
	payload, err := e.finish(QueryInfo{Buckets: 1, Pages: 1})
	if err != nil {
		t.Fatal(err)
	}
	return payload
}

func emptyPointsFrameBytes(t *testing.T, dims int) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Frame{Verb: VerbPoints, Payload: emptyStreamedPayload(t, dims)}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func resultPayload(t *testing.T, verb Verb, res Result) []byte {
	t.Helper()
	fr, err := EncodeResult(verb, res)
	if err != nil {
		t.Fatal(err)
	}
	return fr.Payload
}

// mutate flips one bit at position i, returning a copy.
func mutate(b []byte, i int) []byte {
	out := append([]byte(nil), b...)
	out[i] ^= 0x40
	return out
}

// writeCorpus writes one-argument ([]byte) seed files in the
// `go test fuzz v1` encoding.
func writeCorpus(t *testing.T, target string, entries map[string][]byte) {
	t.Helper()
	for name, data := range entries {
		writeCorpusFile(t, target, name, fmt.Sprintf("[]byte(%q)", data))
	}
}

// writeCorpusPairs writes (byte, []byte) seed files for FuzzDegradedCodec.
func writeCorpusPairs(t *testing.T, target string, entries map[string]struct {
	verb    byte
	payload []byte
}) {
	t.Helper()
	for name, e := range entries {
		writeCorpusFile(t, target, name,
			fmt.Sprintf("byte(%q)", e.verb), fmt.Sprintf("[]byte(%q)", e.payload))
	}
}

func writeCorpusFile(t *testing.T, target, name string, lines ...string) {
	t.Helper()
	dir := filepath.Join("testdata", "fuzz", target)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	content := "go test fuzz v1\n"
	for _, l := range lines {
		content += l + "\n"
	}
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
