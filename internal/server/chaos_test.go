package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"pgridfile/internal/fault"
	"pgridfile/internal/workload"
)

// httpGet fetches one path from the server's HTTP listener over a raw
// HTTP/1.0 exchange (no net/http client dependency in tests).
func httpGet(t *testing.T, addr, path string) string {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "GET %s HTTP/1.0\r\n\r\n", path)
	var b strings.Builder
	buf := make([]byte, 4096)
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	for {
		n, err := conn.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return b.String()
}

// chaosProfile is the satellite chaos schedule: 5% of preads fail, 5% stall
// 10ms, 2% deliver torn pages. All three are transient, so the retry policy
// absorbs most of them and degraded mode the rest.
const chaosProfile = "store.read:err:p=0.05;store.read:delay=10ms:p=0.05;store.read:torn:p=0.02"

// TestChaosRangeQueriesNeverErrorOut drives 1000 concurrent range queries
// into a server whose store randomly fails, stalls and tears reads. The
// contract under chaos: no query hangs, no query errors out — every answer
// is either complete (and exactly correct) or explicitly degraded (and a
// strict subset of the correct answer). Run under -race by scripts/check.sh.
func TestChaosRangeQueriesNeverErrorOut(t *testing.T) {
	const (
		clients   = 8
		perClient = 125
		total     = clients * perClient // 1000
		disks     = 4
	)
	reg := fault.NewRegistry(7)
	if err := reg.SetSpec(chaosProfile); err != nil {
		t.Fatal(err)
	}
	s, f := newTestServer(t, 900, disks, Config{
		Faults:       reg,
		Degraded:     true,
		FetchRetries: 1,
		CacheBytes:   -1, // every query does real injected I/O
	})
	dom := f.Domain()
	ranges := workload.SquareRange(dom, 0.05, total, 11)
	want := make([]int, total)
	for i, q := range ranges {
		want[i] = f.RangeCount(q)
	}
	// Membership oracle for the strict-subset check on point-returning
	// queries: a degraded answer may miss records but must never invent one.
	inFile := map[[2]float64]int{}
	f.Scan(func(key []float64, _ []byte) bool {
		inFile[[2]float64{key[0], key[1]}]++
		return true
	})

	var wg sync.WaitGroup
	var degraded, complete int64
	var mu sync.Mutex
	errCh := make(chan error, total)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := NewClientMust(t, s)
			defer cl.Close()
			for j := 0; j < perClient; j++ {
				i := c*perClient + j
				if i%2 == 0 {
					n, info, err := cl.RangeCount(ranges[i])
					if err != nil {
						errCh <- fmt.Errorf("count %d errored under chaos: %w", i, err)
						return
					}
					if info.Degraded {
						if info.MissedDisks < 1 || info.MissedDisks > disks {
							errCh <- fmt.Errorf("count %d: degraded with missed=%d", i, info.MissedDisks)
							return
						}
						if n > want[i] {
							errCh <- fmt.Errorf("count %d: degraded answer %d exceeds truth %d", i, n, want[i])
							return
						}
						mu.Lock()
						degraded++
						mu.Unlock()
					} else {
						if info.MissedDisks != 0 {
							errCh <- fmt.Errorf("count %d: missed=%d without degraded flag", i, info.MissedDisks)
							return
						}
						if n != want[i] {
							errCh <- fmt.Errorf("count %d: non-degraded answer %d, want %d", i, n, want[i])
							return
						}
						mu.Lock()
						complete++
						mu.Unlock()
					}
				} else {
					pts, info, err := cl.Range(ranges[i])
					if err != nil {
						errCh <- fmt.Errorf("range %d errored under chaos: %w", i, err)
						return
					}
					if len(pts) > want[i] || (!info.Degraded && len(pts) != want[i]) {
						errCh <- fmt.Errorf("range %d: %d points, want %d (degraded=%v)",
							i, len(pts), want[i], info.Degraded)
						return
					}
					mu.Lock()
					if info.Degraded {
						degraded++
					} else {
						complete++
					}
					mu.Unlock()
					for _, p := range pts {
						if !ranges[i].ContainsPoint(p) || inFile[[2]float64{p[0], p[1]}] == 0 {
							errCh <- fmt.Errorf("range %d: invented point %v", i, p)
							return
						}
					}
				}
			}
		}(c)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		t.Fatal("chaos workload hung")
	}
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}
	if complete == 0 {
		t.Error("every query degraded — the retry policy absorbed nothing")
	}

	snap := s.Snapshot()
	if snap.FaultInjected == 0 {
		t.Error("chaos run injected zero faults")
	}
	if snap.DiskRetries == 0 {
		t.Error("chaos run retried zero disk batches")
	}
	if snap.Degraded != degraded {
		t.Errorf("server counted %d degraded queries, clients saw %d", snap.Degraded, degraded)
	}
	if snap.Errors != 0 {
		t.Errorf("%d queries errored out under chaos; all failures must degrade", snap.Errors)
	}
}

// TestDegradedDiskKill kills one whole disk via the FAULT admin verb and
// proves: every full-domain answer is flagged degraded with exactly one
// missed disk and exactly the surviving disks' records; clearing the fault
// restores complete answers; and the /metrics endpoint exports nonzero
// fault/degraded/retry counters.
func TestDegradedDiskKill(t *testing.T) {
	const disks = 4
	reg := fault.NewRegistry(3)
	s, f := newTestServer(t, 700, disks, Config{
		Faults:       reg,
		Degraded:     true,
		FetchRetries: 1,
		FetchBackoff: time.Millisecond,
		CacheBytes:   -1,
		HTTPAddr:     "127.0.0.1:0",
	})
	cl := newTestClient(t, s, ClientConfig{})

	// Arm the kill through the admin verb, as an operator would.
	const kill = 1
	st, err := cl.Fault(context.Background(), fault.StoreReadDiskSite(kill)+":err")
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Sites) != 1 || st.Sites[0].Site != fault.StoreReadDiskSite(kill) {
		t.Fatalf("armed sites = %+v", st.Sites)
	}

	// Count the records the dead disk holds; the degraded answer must be
	// everything else.
	lost := 0
	for _, v := range f.Buckets() {
		if pl, ok := s.st.Placement(v.ID); ok && pl.Disk == kill {
			lost += pl.Recs
		}
	}
	if lost == 0 {
		t.Fatalf("disk %d holds no records; kill test is vacuous", kill)
	}

	for i := 0; i < 5; i++ {
		n, info, err := cl.RangeCount(f.Domain())
		if err != nil {
			t.Fatalf("full-domain count with a dead disk errored: %v", err)
		}
		if !info.Degraded || info.MissedDisks != 1 {
			t.Fatalf("degraded=%v missed=%d, want true/1", info.Degraded, info.MissedDisks)
		}
		if n != f.Len()-lost {
			t.Fatalf("degraded count = %d, want %d (%d total - %d on disk %d)",
				n, f.Len()-lost, f.Len(), lost, kill)
		}
	}

	// Status shows the rule firing; clear restores complete service.
	st, err = cl.Fault(context.Background(), "status")
	if err != nil {
		t.Fatal(err)
	}
	if st.Injected == 0 || len(st.Sites) != 1 || st.Sites[0].Fired == 0 {
		t.Fatalf("status after kill: %+v", st)
	}
	if _, err := cl.Fault(context.Background(), "clear"); err != nil {
		t.Fatal(err)
	}
	n, info, err := cl.RangeCount(f.Domain())
	if err != nil || info.Degraded || n != f.Len() {
		t.Fatalf("after clear: n=%d degraded=%v err=%v, want %d/false/nil", n, info.Degraded, err, f.Len())
	}

	// A malformed spec is answered with a server error, not a hang.
	if _, err := cl.Fault(context.Background(), "store.read:bogus"); err == nil {
		t.Error("malformed fault spec accepted")
	} else {
		var se *ServerError
		if !errors.As(err, &se) {
			t.Errorf("malformed spec drew a transport error: %v", err)
		}
	}

	// The Prometheus endpoint must export the chaos counters, nonzero.
	metrics := httpGet(t, s.HTTPAddr().String(), "/metrics")
	for _, name := range []string{
		"gridserver_fault_injected_total",
		"gridserver_queries_degraded_total",
		"gridserver_disk_retries_total",
	} {
		if !strings.Contains(metrics, name) {
			t.Errorf("/metrics missing %s:\n%s", name, metrics)
		}
		if strings.Contains(metrics, name+" 0\n") {
			t.Errorf("/metrics reports %s = 0 after the kill", name)
		}
	}
}

// TestDegradedOffFailsFast proves the zero-value Config keeps the original
// fail-fast contract: with degradation off, a dead disk turns into a query
// error, never a silent partial answer.
func TestDegradedOffFailsFast(t *testing.T) {
	reg := fault.NewRegistry(5)
	reg.Set(fault.Rule{Site: fault.StoreReadDiskSite(0), Kind: fault.KindError})
	s, f := newTestServer(t, 400, 2, Config{
		Faults:       reg,
		FetchRetries: -1,
		CacheBytes:   -1,
	})
	cl := newTestClient(t, s, ClientConfig{Retries: -1})
	_, info, err := cl.RangeCount(f.Domain())
	var se *ServerError
	if !errors.As(err, &se) {
		t.Fatalf("dead disk with Degraded=false: err=%v, want a server error", err)
	}
	if info.Degraded {
		t.Error("error path carried a degraded flag")
	}
}

// TestClientCancelDuringBackoff is the client regression test: a context
// cancelled while the client sleeps between retry attempts must abort the
// request promptly with the context's error, not ride out the backoff.
func TestClientCancelDuringBackoff(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { // hang up on everyone: every attempt fails, forcing backoff
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	defer ln.Close()

	cl, err := NewClient(ClientConfig{
		Addr:           ln.Addr().String(),
		Retries:        5,
		Backoff:        10 * time.Second, // without cancellation this blocks for minutes
		RequestTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(150 * time.Millisecond) // first attempt fails, then mid-backoff
		cancel()
	}()
	start := time.Now()
	err = cl.exchange(ctx, Request{Verb: VerbStats}, func(Frame) error { return nil })
	if err == nil {
		t.Fatal("request against hang-up server succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cancellation not surfaced: %v", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Errorf("cancel mid-backoff took %v; the 10s backoff was not interrupted", el)
	}
}

// TestFaultCommandNotRetried proves the FAULT verb gets exactly one attempt:
// re-sending an arm command after a lost reply could double-arm the rules,
// so a transport failure must surface instead of being retried.
func TestFaultCommandNotRetried(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	dials := 0
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			dials++
			mu.Unlock()
			c.Close()
		}
	}()
	defer ln.Close()

	cl, err := NewClient(ClientConfig{
		Addr: ln.Addr().String(), Retries: 3,
		Backoff: time.Millisecond, RequestTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if _, err := cl.Fault(context.Background(), "status"); err == nil {
		t.Fatal("FAULT against hang-up server succeeded")
	}
	mu.Lock()
	faultDials := dials
	dials = 0
	mu.Unlock()
	if faultDials != 1 {
		t.Errorf("non-idempotent FAULT used %d connection attempts, want 1", faultDials)
	}

	// Sanity: an idempotent request on the same client does retry.
	if _, err := cl.Stats(); err == nil {
		t.Fatal("STATS against hang-up server succeeded")
	}
	mu.Lock()
	statsDials := dials
	mu.Unlock()
	if statsDials != 4 {
		t.Errorf("idempotent STATS used %d connection attempts, want 4", statsDials)
	}
}
