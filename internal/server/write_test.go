package server

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"pgridfile/internal/core"
	"pgridfile/internal/geom"
	"pgridfile/internal/replica"
	"pgridfile/internal/store"
	"pgridfile/internal/synth"
)

// newWritableServer lays out a uniform 2-D dataset at replication factor r
// and serves it writable.
func newWritableServer(t *testing.T, records, disks, r int, cfg Config) *Server {
	t.Helper()
	f, err := synth.Uniform2D(records, 3).Build()
	if err != nil {
		t.Fatal(err)
	}
	g := core.FromGridFile(f)
	alloc, err := (&core.Minimax{Seed: 1}).Decluster(g, disks)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := (&replica.Placer{Replicas: r}).Place(g, alloc)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := store.WriteReplicated(dir, f, rm, 4096); err != nil {
		t.Fatal(err)
	}
	cfg.Writable = true
	s, err := OpenDir(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// testKeys draws n in-domain keys distinct from the synthetic dataset (which
// only generates coordinates in [0,1) from its own seed).
func testKeys(dom geom.Rect, n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	out := make([]geom.Point, n)
	for i := range out {
		p := make(geom.Point, len(dom))
		for d, iv := range dom {
			p[d] = iv.Lo + rng.Float64()*(iv.Hi-iv.Lo)
		}
		out[i] = p
	}
	return out
}

// TestServerOnlineWrites drives INSERT and DELETE over the network: every
// acknowledged insert is immediately visible to a point query (read-after-
// write through the cache invalidation path), deletes remove exactly the
// written records, and the STATS snapshot carries the write counters.
func TestServerOnlineWrites(t *testing.T) {
	s := newWritableServer(t, 800, 4, 2, Config{})
	cl := newTestClient(t, s, ClientConfig{Pipeline: 8})

	snap, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	dom := make(geom.Rect, len(snap.Domain))
	for d, iv := range snap.Domain {
		dom[d] = geom.Interval{Lo: iv[0], Hi: iv[1]}
	}

	keys := testKeys(dom, 300, 21)
	splits := 0
	for _, key := range keys {
		res, err := cl.Insert(key)
		if err != nil {
			t.Fatalf("insert %v: %v", key, err)
		}
		if !res.Applied {
			t.Fatalf("insert %v not applied", key)
		}
		splits += res.Splits
		// Read-after-write: the ack means the record is queryable NOW.
		pts, _, err := cl.Point(key)
		if err != nil {
			t.Fatalf("point after insert %v: %v", key, err)
		}
		if len(pts) == 0 {
			t.Fatalf("acknowledged insert %v invisible to a point query", key)
		}
	}

	snap, err = cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Writes == nil {
		t.Fatal("writable server reports no write counters")
	}
	if snap.Writes.Inserts != int64(len(keys)) {
		t.Errorf("inserts counter %d, want %d", snap.Writes.Inserts, len(keys))
	}
	if snap.Writes.JournalAppends != int64(2*len(keys)) {
		t.Errorf("journal appends %d, want %d (r=2)", snap.Writes.JournalAppends, 2*len(keys))
	}
	if splits > 0 && snap.Writes.BucketSplits != int64(splits) {
		t.Errorf("split counter %d, acks reported %d", snap.Writes.BucketSplits, splits)
	}
	if snap.Cache != nil && snap.Cache.Invalidations == 0 {
		t.Error("writes invalidated nothing in the cache")
	}

	for _, key := range keys {
		res, err := cl.Delete(key)
		if err != nil {
			t.Fatalf("delete %v: %v", key, err)
		}
		if !res.Applied {
			t.Fatalf("delete %v found nothing", key)
		}
		pts, _, err := cl.Point(key)
		if err != nil {
			t.Fatalf("point after delete %v: %v", key, err)
		}
		if len(pts) != 0 {
			t.Fatalf("deleted key %v still answered by a point query", key)
		}
	}
	// Deleting an absent key acks with Applied=false.
	res, err := cl.Delete(keys[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied {
		t.Error("second delete of the same key applied")
	}
}

// TestReadOnlyServerRejectsWrites pins the compatibility contract: a server
// opened without Writable answers INSERT with a protocol error, not a hang
// or a crash, and the connection survives for further queries.
func TestReadOnlyServerRejectsWrites(t *testing.T) {
	s, f := newTestServer(t, 300, 4, Config{})
	cl := newTestClient(t, s, ClientConfig{})
	_, err := cl.Insert(geom.Point{0.5, 0.5})
	var se *ServerError
	if !errors.As(err, &se) {
		t.Fatalf("expected a server error, got %v", err)
	}
	// The connection is still serviceable.
	if _, _, err := cl.Range(f.Domain()); err != nil {
		t.Fatalf("query after rejected write: %v", err)
	}
}

// TestConcurrentWritesAndReads hammers a writable server with parallel
// writers and readers; under -race this doubles as the locking proof for the
// grid translation / mutation split.
func TestConcurrentWritesAndReads(t *testing.T) {
	s := newWritableServer(t, 600, 4, 2, Config{})
	cl := newTestClient(t, s, ClientConfig{Pipeline: 16})
	snap, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	dom := make(geom.Rect, len(snap.Domain))
	for d, iv := range snap.Domain {
		dom[d] = geom.Interval{Lo: iv[0], Hi: iv[1]}
	}

	const writers, readers, per = 4, 4, 120
	var wg sync.WaitGroup
	errCh := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, key := range testKeys(dom, per, int64(100+w)) {
				if _, err := cl.Insert(key); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				q := geom.Rect{
					{Lo: 0.1 * float64(r), Hi: 0.1*float64(r) + 0.2},
					{Lo: 0.3, Hi: 0.6},
				}
				if _, _, err := cl.Range(q); err != nil {
					errCh <- err
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	snap, err = cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Writes == nil || snap.Writes.Inserts != writers*per {
		t.Fatalf("write counters after concurrent load: %+v", snap.Writes)
	}
}

// tornProxy forwards client bytes to the backend but cuts both connections
// the moment the backend produces its reply, so the client observes a torn
// connection on every request: sent, possibly applied, never acknowledged.
func tornProxy(t *testing.T, backend string) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				b, err := net.Dial("tcp", backend)
				if err != nil {
					return
				}
				defer b.Close()
				go io.Copy(b, c) // requests flow through
				// Swallow the first reply byte, then hang up: the request
				// reached (and was executed by) the server, the ack did not
				// reach the client.
				var one [1]byte
				io.ReadFull(b, one[:])
			}(c)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln
}

// TestTornConnectionNeverDoubleAppliesWrite is the retry-safety regression
// test for the idempotent() allowlist: a write whose connection dies before
// the ack arrives must NOT be re-sent by the client. With the old denylist
// (everything but FAULT retried) the insert below would be applied up to
// Retries+1 times; the allowlist caps it at exactly one server-side apply.
func TestTornConnectionNeverDoubleAppliesWrite(t *testing.T) {
	s := newWritableServer(t, 400, 4, 2, Config{})
	proxy := tornProxy(t, s.Addr().String())
	cl, err := NewClient(ClientConfig{
		Addr:           proxy.Addr().String(),
		Retries:        3,
		Backoff:        time.Millisecond,
		RequestTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	key := geom.Point{0.123456, 0.654321}
	if _, err := cl.Insert(key); err == nil {
		t.Fatal("insert through the torn proxy reported success")
	}

	// Give the server a beat to finish executing the request it received.
	deadline := time.Now().Add(2 * time.Second)
	var applied int64
	for {
		applied = s.st.WriteCounters().Inserts
		if applied > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if applied != 1 {
		t.Fatalf("torn-connection insert applied %d times, want exactly 1", applied)
	}
	// Exactly one copy of the record exists — ask the server directly.
	direct := newTestClient(t, s, ClientConfig{})
	pts, _, err := direct.Point(key)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 {
		t.Fatalf("%d copies of the record stored, want 1", len(pts))
	}

	// Sanity: a read-only query through the same torn proxy IS retried —
	// every attempt fails here, but each one opens a fresh connection.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, _, err := cl.PointCtx(ctx, key); err == nil {
		t.Fatal("query through the torn proxy reported success")
	}
}
