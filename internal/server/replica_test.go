package server

import (
	"strings"
	"testing"
	"time"

	"pgridfile/internal/core"
	"pgridfile/internal/fault"
	"pgridfile/internal/gridfile"
	"pgridfile/internal/replica"
	"pgridfile/internal/store"
	"pgridfile/internal/synth"
)

// replicaAllocators mirrors the store package's single-disk-failure matrix:
// one of each allocator family.
func replicaAllocators(t *testing.T) map[string]core.Allocator {
	t.Helper()
	m := map[string]core.Allocator{
		"minimax": &core.Minimax{Seed: 1},
		"ssp":     &core.SSP{Seed: 1},
		"mst":     &core.MST{Seed: 1},
	}
	for _, name := range []struct{ scheme, resolver string }{
		{"DM", "D"}, {"FX", "R"}, {"HCAM", "F"},
	} {
		a, err := core.NewIndexBased(name.scheme, name.resolver, 1)
		if err != nil {
			t.Fatalf("%s/%s: %v", name.scheme, name.resolver, err)
		}
		m[name.scheme+"/"+name.resolver] = a
	}
	return m
}

// newReplicatedServer lays out f with alloc at replication factor r and
// serves it with the given config.
func newReplicatedServer(t *testing.T, f *gridfile.File, g core.Grid, alloc core.Allocation, r int, cfg Config) *Server {
	t.Helper()
	rm, err := (&replica.Placer{Replicas: r}).Place(g, alloc)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := store.WriteReplicated(dir, f, rm, 4096); err != nil {
		t.Fatal(err)
	}
	s, err := OpenDir(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestReplicatedKillAnyDiskFullAnswers is the acceptance property of the
// replication subsystem: for every allocator family, both workload shapes
// and EVERY single killed disk, an r=2 layout keeps serving 100% complete
// (non-degraded) answers — the failover path reroutes every batch that hits
// the dead disk to the surviving owner. Degraded mode is ON, so a partial
// answer would be a silent pass for the old behavior; the test demands the
// stronger outcome.
func TestReplicatedKillAnyDiskFullAnswers(t *testing.T) {
	const disks = 4
	datasets := map[string]*synth.Dataset{
		"uniform.2d": synth.Uniform2D(1200, 3),
		"hot.2d":     synth.Hotspot2D(1200, 5),
	}
	for dsName, ds := range datasets {
		f, err := ds.Build()
		if err != nil {
			t.Fatal(err)
		}
		g := core.FromGridFile(f)
		want := f.Len()
		for algName, alg := range replicaAllocators(t) {
			alloc, err := alg.Decluster(g, disks)
			if err != nil {
				t.Fatalf("%s/%s: %v", dsName, algName, err)
			}
			reg := fault.NewRegistry(1)
			s := newReplicatedServer(t, f, g, alloc, 2, Config{
				Faults:       reg,
				Degraded:     true,
				FetchRetries: 1,
				FetchBackoff: time.Millisecond,
				CacheBytes:   -1, // every query does real injected I/O
			})
			cl := newTestClient(t, s, ClientConfig{})
			for kill := 0; kill < disks; kill++ {
				reg.Clear()
				reg.Set(fault.Rule{Site: fault.StoreReadDiskSite(kill), Kind: fault.KindError})
				for i := 0; i < 3; i++ {
					n, info, err := cl.RangeCount(f.Domain())
					if err != nil {
						t.Fatalf("%s/%s kill=%d: full-domain count errored: %v",
							dsName, algName, kill, err)
					}
					if info.Degraded || info.MissedDisks != 0 {
						t.Fatalf("%s/%s kill=%d: degraded=%v missed=%d — failover did not cover the dead disk",
							dsName, algName, kill, info.Degraded, info.MissedDisks)
					}
					if n != want {
						t.Fatalf("%s/%s kill=%d: count = %d, want %d",
							dsName, algName, kill, n, want)
					}
				}
			}
			reg.Clear()
			snap := s.Snapshot()
			if snap.Replicas != 2 {
				t.Errorf("%s/%s: snapshot replicas = %d, want 2", dsName, algName, snap.Replicas)
			}
			if snap.ReplicaFailover == 0 {
				t.Errorf("%s/%s: zero failovers across %d disk kills — did the faults fire?",
					dsName, algName, disks)
			}
			if snap.Degraded != 0 || snap.Errors != 0 {
				t.Errorf("%s/%s: degraded=%d errors=%d, want 0/0",
					dsName, algName, snap.Degraded, snap.Errors)
			}
			if snap.WriteAmp != 2 {
				t.Errorf("%s/%s: write amplification %g, want 2", dsName, algName, snap.WriteAmp)
			}
		}
	}
}

// TestReplicatedFailoverWithoutDegradedMode proves failover is not a feature
// of degraded serving: with Degraded off, a dead disk in an r=2 layout still
// yields complete answers instead of hard errors.
func TestReplicatedFailoverWithoutDegradedMode(t *testing.T) {
	const disks = 4
	f, err := synth.Uniform2D(900, 3).Build()
	if err != nil {
		t.Fatal(err)
	}
	g := core.FromGridFile(f)
	alloc, err := (&core.Minimax{Seed: 1}).Decluster(g, disks)
	if err != nil {
		t.Fatal(err)
	}
	reg := fault.NewRegistry(1)
	reg.Set(fault.Rule{Site: fault.StoreReadDiskSite(2), Kind: fault.KindError})
	s := newReplicatedServer(t, f, g, alloc, 2, Config{
		Faults:       reg,
		FetchRetries: 1,
		FetchBackoff: time.Millisecond,
		CacheBytes:   -1,
	})
	cl := newTestClient(t, s, ClientConfig{})
	n, info, err := cl.RangeCount(f.Domain())
	if err != nil {
		t.Fatalf("full-domain count with Degraded=false errored: %v", err)
	}
	if info.Degraded || n != f.Len() {
		t.Fatalf("count = %d degraded=%v, want %d/false", n, info.Degraded, f.Len())
	}
	if snap := s.Snapshot(); snap.ReplicaFailover == 0 {
		t.Error("no failovers recorded")
	}
}

// TestReplicaMetricsExposition checks the new counters reach both the STATS
// snapshot and the Prometheus endpoint with plausible values, including the
// replica-overhead gauges.
func TestReplicaMetricsExposition(t *testing.T) {
	const disks = 4
	f, err := synth.Uniform2D(900, 3).Build()
	if err != nil {
		t.Fatal(err)
	}
	g := core.FromGridFile(f)
	alloc, err := (&core.Minimax{Seed: 1}).Decluster(g, disks)
	if err != nil {
		t.Fatal(err)
	}
	reg := fault.NewRegistry(1)
	reg.Set(fault.Rule{Site: fault.StoreReadDiskSite(0), Kind: fault.KindError})
	s := newReplicatedServer(t, f, g, alloc, 2, Config{
		Faults:       reg,
		Degraded:     true,
		FetchRetries: 1,
		FetchBackoff: time.Millisecond,
		CacheBytes:   -1,
		HTTPAddr:     "127.0.0.1:0",
	})
	cl := newTestClient(t, s, ClientConfig{})
	if _, _, err := cl.RangeCount(f.Domain()); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if snap.ReplicaFailover == 0 || snap.ReplicaPrimary == 0 {
		t.Fatalf("failover=%d primary=%d, want both nonzero", snap.ReplicaFailover, snap.ReplicaPrimary)
	}
	if snap.DiskBytes == 0 || snap.WriteAmp != 2 {
		t.Fatalf("disk_bytes=%d write_amp=%g, want nonzero/2", snap.DiskBytes, snap.WriteAmp)
	}
	metrics := httpGet(t, s.HTTPAddr().String(), "/metrics")
	for _, line := range []string{
		"gridserver_replicas 2",
		"gridserver_replica_failover_total",
		`gridserver_replica_reads_total{copy="primary"}`,
		`gridserver_replica_reads_total{copy="secondary"}`,
		"gridserver_write_amplification 2",
	} {
		if !strings.Contains(metrics, line) {
			t.Errorf("/metrics missing %q", line)
		}
	}
	if strings.Contains(metrics, "gridserver_replica_failover_total 0\n") {
		t.Error("/metrics reports zero failovers after a disk kill")
	}
}
