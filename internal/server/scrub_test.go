package server

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"pgridfile/internal/core"
	"pgridfile/internal/gridfile"
	"pgridfile/internal/replica"
	"pgridfile/internal/store"
	"pgridfile/internal/synth"
)

// writeReplicatedDir lays out f at replication factor r and returns the
// layout directory plus the manifest (whose placements locate every page
// copy on disk).
func writeReplicatedDir(t *testing.T, f *gridfile.File, r int) (string, *store.Manifest) {
	t.Helper()
	g := core.FromGridFile(f)
	alloc, err := (&core.Minimax{Seed: 1}).Decluster(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if r == 1 {
		m, err := store.Write(dir, f, alloc, 4096)
		if err != nil {
			t.Fatal(err)
		}
		return dir, m
	}
	rm, err := (&replica.Placer{Replicas: r}).Place(g, alloc)
	if err != nil {
		t.Fatal(err)
	}
	m, err := store.WriteReplicated(dir, f, rm, 4096)
	if err != nil {
		t.Fatal(err)
	}
	return dir, m
}

// flipPage XOR-damages one byte in the middle of a page file's page.
func flipPage(t *testing.T, dir string, disk int, page int64, pageBytes int) {
	t.Helper()
	path := filepath.Join(dir, fmt.Sprintf("disk%03d.dat", disk))
	fh, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer fh.Close()
	off := page*int64(pageBytes) + int64(pageBytes)/2
	var b [1]byte
	if _, err := fh.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x08
	if _, err := fh.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}

// TestChecksumFailoverAndScrubRepair is the end-to-end integrity story on a
// replicated layout: with read-time verification on, a query that hits a
// corrupt primary copy fails over to the intact replica and still serves a
// complete (non-degraded) answer; a scrub pass then detects and repairs the
// corruption, the counters surface all of it, and a second pass finds the
// layout clean.
func TestChecksumFailoverAndScrubRepair(t *testing.T) {
	f, err := synth.Uniform2D(900, 3).Build()
	if err != nil {
		t.Fatal(err)
	}
	dir, m := writeReplicatedDir(t, f, 2)

	// Corrupt the primary copy of the first bucket: an idle server's
	// load-aware read selection prefers primaries, so queries will hit it.
	victim := m.Buckets[0]
	flipPage(t, dir, victim.OwnerDisks[0], victim.OwnerPages[0], m.PageBytes)

	s, err := OpenDir(dir, Config{
		Degraded:        true,
		VerifyChecksums: true,
		CacheBytes:      -1,
		FetchBackoff:    time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cl := newTestClient(t, s, ClientConfig{})

	for i := 0; i < 3; i++ {
		n, info, err := cl.RangeCount(f.Domain())
		if err != nil {
			t.Fatalf("query %d over corrupt primary: %v", i, err)
		}
		if info.Degraded {
			t.Fatalf("query %d degraded despite an intact replica", i)
		}
		if n != f.Len() {
			t.Fatalf("query %d count = %d, want %d", i, n, f.Len())
		}
	}
	snap := s.Snapshot()
	if snap.ReplicaFailover == 0 {
		t.Error("no failovers recorded — did verification miss the corrupt copy?")
	}
	if snap.Errors != 0 || snap.Degraded != 0 {
		t.Errorf("errors=%d degraded=%d, want 0/0", snap.Errors, snap.Degraded)
	}

	st, err := s.ScrubNow(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Corrupt != 1 || st.Repaired != 1 {
		t.Fatalf("scrub corrupt=%d repaired=%d, want 1/1", st.Corrupt, st.Repaired)
	}
	snap = s.Snapshot()
	if snap.ScrubPages == 0 || snap.ScrubCorrupt != 1 || snap.ScrubRepaired != 1 {
		t.Fatalf("snapshot scrub counters pages=%d corrupt=%d repaired=%d, want >0/1/1",
			snap.ScrubPages, snap.ScrubCorrupt, snap.ScrubRepaired)
	}

	st, err = s.ScrubNow(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Corrupt != 0 {
		t.Fatalf("layout still corrupt after repair: %+v", st)
	}
	// The repaired primary serves again without failover or degradation.
	if n, info, err := cl.RangeCount(f.Domain()); err != nil || info.Degraded || n != f.Len() {
		t.Fatalf("post-repair query: n=%d degraded=%v err=%v", n, info.Degraded, err)
	}
}

// TestChecksumCorruptionDegradesUnreplicated pins the r=1 contract: a
// corrupt page cannot be healed or rerouted, so with degraded mode on the
// answer is partial — never an error, never silently wrong records.
func TestChecksumCorruptionDegradesUnreplicated(t *testing.T) {
	f, err := synth.Uniform2D(900, 3).Build()
	if err != nil {
		t.Fatal(err)
	}
	dir, m := writeReplicatedDir(t, f, 1)
	victim := m.Buckets[0]
	flipPage(t, dir, victim.Disk, victim.Page, m.PageBytes)

	s, err := OpenDir(dir, Config{
		Degraded:        true,
		VerifyChecksums: true,
		CacheBytes:      -1,
		FetchBackoff:    time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cl := newTestClient(t, s, ClientConfig{})
	n, info, err := cl.RangeCount(f.Domain())
	if err != nil {
		t.Fatalf("query over corrupt page errored despite degraded mode: %v", err)
	}
	if !info.Degraded {
		t.Fatal("corrupt page served without the degraded flag")
	}
	if n >= f.Len() {
		t.Fatalf("degraded count %d not a strict subset of %d", n, f.Len())
	}
	// Detection without replication: counted, not hidden — and not repaired.
	st, err := s.ScrubNow(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Corrupt != 1 || st.Repaired != 0 {
		t.Fatalf("scrub corrupt=%d repaired=%d, want 1/0", st.Corrupt, st.Repaired)
	}
}

// TestBackgroundScrubLoopRepairs proves the ScrubInterval loop heals
// corruption without any explicit call: arm a fast interval, damage a page,
// and the counters show detection and repair shortly after.
func TestBackgroundScrubLoopRepairs(t *testing.T) {
	f, err := synth.Uniform2D(600, 3).Build()
	if err != nil {
		t.Fatal(err)
	}
	dir, m := writeReplicatedDir(t, f, 2)
	victim := m.Buckets[0]
	flipPage(t, dir, victim.OwnerDisks[0], victim.OwnerPages[0], m.PageBytes)

	s, err := OpenDir(dir, Config{
		VerifyChecksums: true,
		ScrubInterval:   5 * time.Millisecond,
		CacheBytes:      -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap := s.Snapshot()
		if snap.ScrubRepaired >= 1 {
			if snap.ScrubCorrupt < 1 || snap.ScrubPages == 0 {
				t.Fatalf("inconsistent scrub counters: %+v", snap)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("background scrub never repaired the page: %+v", s.Snapshot())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestVerifyRequiresChecksummedLayout pins the config cross-check: asking
// for verification or scrubbing on a checksum-free layout is refused at
// startup instead of silently doing nothing.
func TestVerifyRequiresChecksummedLayout(t *testing.T) {
	f, err := synth.Uniform2D(300, 3).Build()
	if err != nil {
		t.Fatal(err)
	}
	dir, m := writeReplicatedDir(t, f, 1)
	stripChecksums(t, dir, m)
	if _, err := OpenDir(dir, Config{VerifyChecksums: true}); err == nil {
		t.Error("VerifyChecksums accepted on a checksum-free layout")
	}
	if _, err := OpenDir(dir, Config{ScrubInterval: time.Second}); err == nil {
		t.Error("ScrubInterval accepted on a checksum-free layout")
	}
	if s, err := OpenDir(dir, Config{}); err != nil {
		t.Errorf("plain serving of a legacy layout refused: %v", err)
	} else {
		s.Close()
	}
}

// stripChecksums downgrades a layout to the legacy page format the way old
// writers produced it: 8-byte headers, flat unversioned manifest.
func stripChecksums(t *testing.T, dir string, m *store.Manifest) {
	t.Helper()
	for d := 0; d < m.Disks; d++ {
		path := filepath.Join(dir, fmt.Sprintf("disk%03d.dat", d))
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for off := 0; off < len(data); off += m.PageBytes {
			page := data[off : off+m.PageBytes]
			body := append([]byte(nil), page[16:]...)
			copy(page[8:], body)
			for i := m.PageBytes - 8; i < m.PageBytes; i++ {
				page[i] = 0
			}
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	legacy := *m
	legacy.PageFormat = 0
	// Re-marshal as the flat legacy schema (no envelope, no page_format).
	raw, err := json.MarshalIndent(legacy, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), raw, 0o644); err != nil {
		t.Fatal(err)
	}
}
