package server

import (
	"fmt"
	"math"
	"math/bits"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"pgridfile/internal/cache"
	"pgridfile/internal/store"
)

// verbIndex maps request verbs to dense counter slots.
var verbNames = []string{"point", "range", "partial", "knn", "stats", "fault", "insert", "delete"}

func verbIndex(v Verb) int {
	switch v {
	case VerbPoint:
		return 0
	case VerbRange:
		return 1
	case VerbPartial:
		return 2
	case VerbKNN:
		return 3
	case VerbStats:
		return 4
	case VerbFault:
		return 5
	case VerbInsert:
		return 6
	case VerbDelete:
		return 7
	}
	return -1
}

// hist is a log2-bucketed histogram of non-negative values: bin i holds
// values in [2^(i-1), 2^i). Log bins keep observation O(1) and lock-light
// while still answering the percentile questions the bench cares about
// (p50/p95/p99 within a factor of two).
type hist struct {
	mu     sync.Mutex
	counts [64]int64
	total  int64
	max    float64
}

func (h *hist) observe(v float64) {
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	// float64→uint64 conversion is undefined for values ≥ 2^63; clamp into
	// the top bin explicitly rather than trusting the conversion result.
	var bin int
	if v >= math.Exp2(63) {
		bin = len(h.counts) - 1
	} else {
		bin = bits.Len64(uint64(v))
		if bin >= len(h.counts) {
			bin = len(h.counts) - 1
		}
	}
	h.mu.Lock()
	h.counts[bin]++
	h.total++
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// quantile estimates the p-th percentile (0..100) as the geometric midpoint
// lo*√2 of the bin [lo, 2*lo) holding the target rank; the true value lies
// within a factor of √2 either way. Bin 0 holds [0, 1) and has no geometric
// midpoint, so it reports the arithmetic one, 0.5, rather than collapsing
// every sub-unit observation to 0.
func (h *hist) quantile(p float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	target := int64(math.Ceil(p / 100 * float64(h.total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			if i == 0 {
				return 0.5
			}
			lo := math.Exp2(float64(i - 1))
			return lo * math.Sqrt2
		}
	}
	return h.max
}

func (h *hist) snapshot() QuantileSummary {
	s := QuantileSummary{
		P50: h.quantile(50),
		P90: h.quantile(90),
		P95: h.quantile(95),
		P99: h.quantile(99),
	}
	h.mu.Lock()
	s.Count = h.total
	s.Max = h.max
	h.mu.Unlock()
	return s
}

// QuantileSummary reports a histogram's percentiles.
type QuantileSummary struct {
	Count int64   `json:"count"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// scaled returns the summary with every quantile multiplied by f — used to
// derive the µs stage view from the ns histograms.
func (q QuantileSummary) scaled(f float64) QuantileSummary {
	q.P50 *= f
	q.P90 *= f
	q.P95 *= f
	q.P99 *= f
	q.Max *= f
	return q
}

// Metrics aggregates the server's observability counters. All methods are
// safe for concurrent use.
type Metrics struct {
	start            time.Time
	queries          [8]atomic.Int64 // by verb
	errors           atomic.Int64    // protocol/decode/execution errors answered
	rejected         atomic.Int64    // admission-control rejections (never admitted)
	deadlineExceeded atomic.Int64    // admitted queries that expired mid-flight
	degraded         atomic.Int64    // queries answered partially (missed disks)
	diskRetries      atomic.Int64    // disk-batch retry attempts
	pagesRead        atomic.Int64
	mergedFetches    atomic.Int64 // fetch requests served by a merged window read
	// Replica serving counters: buckets rerouted to a surviving owner after
	// a transient disk failure, and buckets read from primary vs secondary
	// copies (replicated layouts only; an unreplicated server leaves all
	// three at zero).
	replicaFailover       atomic.Int64
	replicaReadsPrimary   atomic.Int64
	replicaReadsSecondary atomic.Int64
	// Integrity-scrub counters (ScrubNow / the ScrubInterval loop): page
	// copies verified, copies that failed their checksum, and copies
	// rewritten from an intact replica.
	scrubPages    atomic.Int64
	scrubCorrupt  atomic.Int64
	scrubRepaired atomic.Int64
	traced        atomic.Int64    // queries that carried a stage trace
	writeBatches  atomic.Int64    // writev submissions by connection writers
	writeFrames   atomic.Int64    // response frames carried by those writes
	diskFetches   []atomic.Int64  // bucket fetches per disk
	latency       hist            // service time, microseconds
	fetches       hist            // distinct buckets fetched per data query
	stageLat      [numStages]hist // per-stage time of traced queries, nanoseconds
}

func newMetrics(disks int) *Metrics {
	return &Metrics{start: time.Now(), diskFetches: make([]atomic.Int64, disks)}
}

// Snapshot is the exported statistics view, served by the STATS verb as
// JSON and rendered by the HTTP endpoint. It also describes the layout
// (dims, disks, domain) so clients can generate workloads without
// out-of-band knowledge of the dataset.
type Snapshot struct {
	UptimeSeconds    float64          `json:"uptime_seconds"`
	Dims             int              `json:"dims"`
	Disks            int              `json:"disks"`
	Domain           [][2]float64     `json:"domain"`
	Queries          map[string]int64 `json:"queries"`
	QueriesTotal     int64            `json:"queries_total"`
	Errors           int64            `json:"errors"`
	Rejected         int64            `json:"rejected"`
	DeadlineExceeded int64            `json:"deadline_exceeded"`
	Degraded         int64            `json:"queries_degraded"`
	DiskRetries      int64            `json:"disk_retries"`
	Replicas         int              `json:"replicas,omitempty"`
	ReplicaFailover  int64            `json:"replica_failover"`
	ReplicaPrimary   int64            `json:"replica_reads_primary"`
	ReplicaSecondary int64            `json:"replica_reads_secondary"`
	ScrubPages       int64            `json:"scrub_pages"`
	ScrubCorrupt     int64            `json:"scrub_corrupt"`
	ScrubRepaired    int64            `json:"scrub_repaired"`
	DiskBytes        int64            `json:"disk_bytes,omitempty"`
	WriteAmp         float64          `json:"write_amplification,omitempty"`
	FaultInjected    int64            `json:"fault_injected"`
	InFlight         int              `json:"in_flight"`
	DiskFetches      []int64          `json:"disk_bucket_fetches"`
	PagesRead        int64            `json:"pages_read"`
	MergedFetches    int64            `json:"merged_fetches"`
	LatencyMicros    QuantileSummary  `json:"latency_micros"`
	FetchesPerQry    QuantileSummary  `json:"buckets_per_query"`
	WriteBatches     int64            `json:"write_batches"`
	WriteFrames      int64            `json:"write_frames"`
	Traced           int64            `json:"queries_traced,omitempty"`
	// Stages holds the per-stage histograms in nanoseconds — the stages are
	// sub-microsecond on a warm cache, so recording in µs collapsed every
	// quantile into bin 0 (a flat 0.5). StagesMicros is the same summary
	// divided down to µs, kept as a derived column for dashboards and older
	// tooling keyed on "stage_micros".
	Stages       map[string]QuantileSummary `json:"stage_nanos,omitempty"`
	StagesMicros map[string]QuantileSummary `json:"stage_micros,omitempty"`
	Cache        *cache.Stats               `json:"cache,omitempty"`
	// Writes reports the store's mutation counters on writable servers
	// (absent on read-only ones).
	Writes *store.WriteCounters `json:"writes,omitempty"`
}

func (m *Metrics) snapshot(inflight int) Snapshot {
	s := Snapshot{
		UptimeSeconds:    time.Since(m.start).Seconds(),
		Queries:          make(map[string]int64, len(verbNames)),
		Errors:           m.errors.Load(),
		Rejected:         m.rejected.Load(),
		DeadlineExceeded: m.deadlineExceeded.Load(),
		Degraded:         m.degraded.Load(),
		DiskRetries:      m.diskRetries.Load(),
		ReplicaFailover:  m.replicaFailover.Load(),
		ReplicaPrimary:   m.replicaReadsPrimary.Load(),
		ReplicaSecondary: m.replicaReadsSecondary.Load(),
		ScrubPages:       m.scrubPages.Load(),
		ScrubCorrupt:     m.scrubCorrupt.Load(),
		ScrubRepaired:    m.scrubRepaired.Load(),
		InFlight:         inflight,
		PagesRead:        m.pagesRead.Load(),
		MergedFetches:    m.mergedFetches.Load(),
		LatencyMicros:    m.latency.snapshot(),
		FetchesPerQry:    m.fetches.snapshot(),
		WriteBatches:     m.writeBatches.Load(),
		WriteFrames:      m.writeFrames.Load(),
		Traced:           m.traced.Load(),
	}
	if s.Traced > 0 {
		s.Stages = make(map[string]QuantileSummary, numStages)
		s.StagesMicros = make(map[string]QuantileSummary, numStages)
		for i := range m.stageLat {
			q := m.stageLat[i].snapshot()
			s.Stages[stageNames[i]] = q
			s.StagesMicros[stageNames[i]] = q.scaled(1e-3)
		}
	}
	for i, name := range verbNames {
		n := m.queries[i].Load()
		s.Queries[name] = n
		s.QueriesTotal += n
	}
	s.DiskFetches = make([]int64, len(m.diskFetches))
	for i := range m.diskFetches {
		s.DiskFetches[i] = m.diskFetches[i].Load()
	}
	return s
}

// writePrometheus renders the snapshot in the Prometheus text exposition
// format for the optional HTTP /metrics endpoint.
func (s Snapshot) writePrometheus(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	for _, name := range verbNames {
		fmt.Fprintf(w, "gridserver_queries_total{verb=%q} %d\n", name, s.Queries[name])
	}
	fmt.Fprintf(w, "gridserver_errors_total %d\n", s.Errors)
	fmt.Fprintf(w, "gridserver_rejected_total %d\n", s.Rejected)
	fmt.Fprintf(w, "gridserver_deadline_exceeded_total %d\n", s.DeadlineExceeded)
	fmt.Fprintf(w, "gridserver_queries_degraded_total %d\n", s.Degraded)
	fmt.Fprintf(w, "gridserver_disk_retries_total %d\n", s.DiskRetries)
	fmt.Fprintf(w, "gridserver_replicas %d\n", s.Replicas)
	fmt.Fprintf(w, "gridserver_replica_failover_total %d\n", s.ReplicaFailover)
	fmt.Fprintf(w, "gridserver_replica_reads_total{copy=\"primary\"} %d\n", s.ReplicaPrimary)
	fmt.Fprintf(w, "gridserver_replica_reads_total{copy=\"secondary\"} %d\n", s.ReplicaSecondary)
	fmt.Fprintf(w, "gridserver_scrub_pages_total %d\n", s.ScrubPages)
	fmt.Fprintf(w, "gridserver_scrub_corrupt_total %d\n", s.ScrubCorrupt)
	fmt.Fprintf(w, "gridserver_scrub_repaired_total %d\n", s.ScrubRepaired)
	fmt.Fprintf(w, "gridserver_disk_bytes %d\n", s.DiskBytes)
	fmt.Fprintf(w, "gridserver_write_amplification %g\n", s.WriteAmp)
	fmt.Fprintf(w, "gridserver_fault_injected_total %d\n", s.FaultInjected)
	fmt.Fprintf(w, "gridserver_in_flight %d\n", s.InFlight)
	fmt.Fprintf(w, "gridserver_pages_read_total %d\n", s.PagesRead)
	fmt.Fprintf(w, "gridserver_merged_fetches_total %d\n", s.MergedFetches)
	for d, n := range s.DiskFetches {
		fmt.Fprintf(w, "gridserver_disk_bucket_fetches_total{disk=\"%d\"} %d\n", d, n)
	}
	for _, q := range []struct {
		q string
		v float64
	}{{"0.5", s.LatencyMicros.P50}, {"0.9", s.LatencyMicros.P90},
		{"0.95", s.LatencyMicros.P95}, {"0.99", s.LatencyMicros.P99}} {
		fmt.Fprintf(w, "gridserver_latency_micros{quantile=%q} %g\n", q.q, q.v)
	}
	fmt.Fprintf(w, "gridserver_latency_observations_total %d\n", s.LatencyMicros.Count)
	fmt.Fprintf(w, "gridserver_write_batches_total %d\n", s.WriteBatches)
	fmt.Fprintf(w, "gridserver_write_frames_total %d\n", s.WriteFrames)
	fmt.Fprintf(w, "gridserver_queries_traced_total %d\n", s.Traced)
	if s.Stages != nil {
		// Iterate stageNames, not the map, for a deterministic exposition.
		// stage_nanos is the measured histogram; stage_micros is the same
		// data scaled down, kept for dashboards built against PR 4.
		for _, name := range stageNames {
			q, ok := s.Stages[name]
			if !ok {
				continue
			}
			for _, pq := range []struct {
				q string
				v float64
			}{{"0.5", q.P50}, {"0.9", q.P90}, {"0.95", q.P95}, {"0.99", q.P99}} {
				fmt.Fprintf(w, "gridserver_stage_nanos{stage=%q,quantile=%q} %g\n",
					name, pq.q, pq.v)
				fmt.Fprintf(w, "gridserver_stage_micros{stage=%q,quantile=%q} %g\n",
					name, pq.q, pq.v/1e3)
			}
			fmt.Fprintf(w, "gridserver_stage_observations_total{stage=%q} %d\n", name, q.Count)
		}
	}
	if c := s.Cache; c != nil {
		fmt.Fprintf(w, "gridserver_cache_hits_total %d\n", c.Hits)
		fmt.Fprintf(w, "gridserver_cache_misses_total %d\n", c.Misses)
		fmt.Fprintf(w, "gridserver_cache_shared_total %d\n", c.Shared)
		fmt.Fprintf(w, "gridserver_cache_evictions_total %d\n", c.Evictions)
		fmt.Fprintf(w, "gridserver_cache_invalidations_total %d\n", c.Invalidations)
		fmt.Fprintf(w, "gridserver_cache_resident_bytes %d\n", c.Bytes)
		fmt.Fprintf(w, "gridserver_cache_resident_entries %d\n", c.Entries)
		fmt.Fprintf(w, "gridserver_cache_max_bytes %d\n", c.MaxBytes)
	}
	if wc := s.Writes; wc != nil {
		fmt.Fprintf(w, "gridserver_inserts_total %d\n", wc.Inserts)
		fmt.Fprintf(w, "gridserver_deletes_total %d\n", wc.Deletes)
		fmt.Fprintf(w, "gridserver_journal_appends_total %d\n", wc.JournalAppends)
		fmt.Fprintf(w, "gridserver_journal_replays_total %d\n", wc.JournalReplays)
		fmt.Fprintf(w, "gridserver_bucket_splits_total %d\n", wc.BucketSplits)
	}
	fmt.Fprintf(w, "gridserver_uptime_seconds %g\n", s.UptimeSeconds)
}
