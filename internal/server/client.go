package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"time"

	"pgridfile/internal/geom"
)

// ClientConfig tunes a Client.
type ClientConfig struct {
	// Addr is the server's TCP address (required).
	Addr string
	// PoolSize bounds pooled idle connections; connections are dialed
	// lazily. Default 4.
	PoolSize int
	// DialTimeout bounds connection establishment. Default 2s.
	DialTimeout time.Duration
	// RequestTimeout bounds one request/response round trip. Default 10s.
	RequestTimeout time.Duration
	// Retries is how many times a transport-level failure is retried on a
	// fresh connection (server-reported errors are never retried).
	// Default 2.
	Retries int
	// Backoff is the initial retry delay, doubling per attempt with full
	// jitter (each sleep is uniform in (0, backoff]) so clients that failed
	// together don't retry in lockstep. Default 25ms.
	Backoff time.Duration
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.PoolSize <= 0 {
		c.PoolSize = 4
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 2
	}
	if c.Backoff <= 0 {
		c.Backoff = 25 * time.Millisecond
	}
	return c
}

// Client talks the gridserver protocol with connection pooling, per-request
// deadlines and retry with exponential backoff. It is safe for concurrent
// use; concurrent requests use distinct connections.
type Client struct {
	cfg    ClientConfig
	mu     sync.Mutex
	idle   []net.Conn
	closed bool
}

// NewClient creates a client for the given server address. No connection is
// made until the first request.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Addr == "" {
		return nil, errors.New("server: client needs an address")
	}
	return &Client{cfg: cfg.withDefaults()}, nil
}

func (c *Client) getConn() (net.Conn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errors.New("server: client closed")
	}
	if n := len(c.idle); n > 0 {
		conn := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return conn, nil
	}
	c.mu.Unlock()
	return net.DialTimeout("tcp", c.cfg.Addr, c.cfg.DialTimeout)
}

func (c *Client) putConn(conn net.Conn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || len(c.idle) >= c.cfg.PoolSize {
		conn.Close()
		return
	}
	c.idle = append(c.idle, conn)
}

// roundTrip sends one frame and reads one reply on conn. The connection
// deadline is the sooner of RequestTimeout and ctx's deadline, so a
// cancelled caller is not held to the full request timeout.
func (c *Client) roundTrip(ctx context.Context, conn net.Conn, req Frame) (Frame, error) {
	deadline := time.Now().Add(c.cfg.RequestTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	if err := conn.SetDeadline(deadline); err != nil {
		return Frame{}, err
	}
	if err := WriteFrame(conn, req); err != nil {
		return Frame{}, err
	}
	return ReadFrame(conn)
}

// idempotent reports whether a request may safely be re-sent when the
// transport failed mid-flight. Queries and STATS are read-only; a FAULT
// command is not — "arm these rules" applied twice arms them twice, and a
// lost reply does not mean the command was lost — so it gets exactly one
// attempt.
func idempotent(v Verb) bool { return v != VerbFault }

// do runs one request with pooling and retry. A *ServerError reply is
// returned as-is (the connection stays usable and pooled); transport
// failures discard the connection and retry idempotent requests on a fresh
// connection with backoff. Cancelling ctx aborts promptly, including
// mid-backoff.
func (c *Client) do(ctx context.Context, req Request) (Frame, error) {
	f, err := EncodeRequest(req)
	if err != nil {
		return Frame{}, err
	}
	retries := c.cfg.Retries
	if !idempotent(req.Verb) {
		retries = 0
	}
	var lastErr error
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 {
			if err := sleepCtx(ctx, retryDelay(c.cfg.Backoff, attempt)); err != nil {
				return Frame{}, fmt.Errorf("server: request cancelled during retry backoff: %w (last error: %v)",
					err, lastErr)
			}
		}
		if err := ctx.Err(); err != nil {
			return Frame{}, err
		}
		conn, err := c.getConn()
		if err != nil {
			lastErr = err
			continue
		}
		resp, err := c.roundTrip(ctx, conn, f)
		if err != nil {
			conn.Close()
			lastErr = err
			continue
		}
		if resp.Verb == VerbError {
			c.putConn(conn)
			return Frame{}, &ServerError{Msg: string(resp.Payload)}
		}
		c.putConn(conn)
		return resp, nil
	}
	return Frame{}, fmt.Errorf("server: request failed after %d attempts: %w",
		retries+1, lastErr)
}

// sleepCtx pauses for d unless ctx is cancelled first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// retryDelay computes the sleep before retry `attempt` (1-based): full
// jitter over an exponentially growing window. A deterministic doubling
// schedule synchronizes every client that failed at the same moment — they
// all hammer the recovering server again in phase; sampling uniformly from
// (0, base<<(attempt-1)] decorrelates them while keeping the same mean
// growth.
func retryDelay(base time.Duration, attempt int) time.Duration {
	window := base << (attempt - 1)
	if window <= 0 { // shift overflow on absurd attempt counts
		window = base
	}
	return time.Duration(rand.Int64N(int64(window))) + 1
}

func (c *Client) doResult(req Request) (Result, error) {
	resp, err := c.do(context.Background(), req)
	if err != nil {
		return Result{}, err
	}
	return DecodeResult(resp)
}

// Point returns all stored records whose key equals key exactly.
func (c *Client) Point(key geom.Point) ([]geom.Point, QueryInfo, error) {
	res, err := c.doResult(Request{Verb: VerbPoint, Key: key})
	return res.Points, res.Info, err
}

// Range returns all stored records inside the closed query box.
func (c *Client) Range(q geom.Rect) ([]geom.Point, QueryInfo, error) {
	res, err := c.doResult(Request{Verb: VerbRange, Query: q})
	return res.Points, res.Info, err
}

// RangeCount returns how many stored records lie inside the closed query
// box, without shipping them.
func (c *Client) RangeCount(q geom.Rect) (int, QueryInfo, error) {
	res, err := c.doResult(Request{Verb: VerbRange, Query: q, CountOnly: true})
	return res.Count, res.Info, err
}

// PartialMatch returns records matching vals on every specified dimension;
// NaN marks an unspecified attribute.
func (c *Client) PartialMatch(vals []float64) ([]geom.Point, QueryInfo, error) {
	res, err := c.doResult(Request{Verb: VerbPartial, Vals: vals})
	return res.Points, res.Info, err
}

// KNN returns the k stored records nearest to key, closest first.
func (c *Client) KNN(key geom.Point, k int) ([]geom.Point, QueryInfo, error) {
	res, err := c.doResult(Request{Verb: VerbKNN, Key: key, K: k})
	return res.Points, res.Info, err
}

// Stats fetches the server's statistics snapshot via the STATS verb.
func (c *Client) Stats() (Snapshot, error) {
	resp, err := c.do(context.Background(), Request{Verb: VerbStats})
	if err != nil {
		return Snapshot{}, err
	}
	if resp.Verb != VerbStatsReply {
		return Snapshot{}, fmt.Errorf("server: unexpected reply verb 0x%02x", uint8(resp.Verb))
	}
	var s Snapshot
	if err := json.Unmarshal(resp.Payload, &s); err != nil {
		return Snapshot{}, fmt.Errorf("server: parsing stats: %w", err)
	}
	return s, nil
}

// Fault runs one FAULT admin command — "status", "clear", or a fault spec
// to arm (see internal/fault for the grammar) — and returns the registry's
// post-command status. FAULT is not idempotent, so transport failures are
// never retried; ctx cancels the round trip.
func (c *Client) Fault(ctx context.Context, cmd string) (FaultStatus, error) {
	resp, err := c.do(ctx, Request{Verb: VerbFault, FaultCmd: cmd})
	if err != nil {
		return FaultStatus{}, err
	}
	if resp.Verb != VerbFaultReply {
		return FaultStatus{}, fmt.Errorf("server: unexpected reply verb 0x%02x", uint8(resp.Verb))
	}
	var st FaultStatus
	if err := json.Unmarshal(resp.Payload, &st); err != nil {
		return FaultStatus{}, fmt.Errorf("server: parsing fault status: %w", err)
	}
	return st, nil
}

// Close releases all pooled connections. In-flight requests on borrowed
// connections complete; their connections are then discarded.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for _, conn := range c.idle {
		conn.Close()
	}
	c.idle = nil
}
