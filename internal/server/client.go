package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"time"

	"pgridfile/internal/geom"
)

// ClientConfig tunes a Client.
type ClientConfig struct {
	// Addr is the server's TCP address (required).
	Addr string
	// PoolSize bounds pooled idle connections (and, when pipelining,
	// the number of pipelined connections requests round-robin over);
	// connections are dialed lazily. Default 4.
	PoolSize int
	// DialTimeout bounds connection establishment. Default 2s.
	DialTimeout time.Duration
	// RequestTimeout bounds one request/response round trip. Default 10s.
	RequestTimeout time.Duration
	// Retries is how many times a transport-level failure is retried on a
	// fresh connection (server-reported errors are never retried).
	// Default 2.
	Retries int
	// Backoff is the initial retry delay, doubling per attempt with full
	// jitter (each sleep is uniform in (0, backoff]) so clients that failed
	// together don't retry in lockstep. Default 25ms.
	Backoff time.Duration
	// Pipeline, when > 1, keeps up to that many requests in flight per
	// connection: requests are wrapped in tagged envelopes (VerbTagged)
	// carrying a request id the server echoes, so responses may complete
	// out of order and one connection carries many concurrent callers.
	// 0 or 1 disables pipelining — the client then speaks the exact PR 1–6
	// protocol, which is what keeps it compatible with older servers.
	Pipeline int
	// DisableNoDelay leaves Nagle's algorithm enabled on client
	// connections. Off by default for the same reason as the server's
	// flag: small latency-sensitive frames (see DESIGN S26).
	DisableNoDelay bool
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.PoolSize <= 0 {
		c.PoolSize = 4
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 2
	}
	if c.Backoff <= 0 {
		c.Backoff = 25 * time.Millisecond
	}
	if c.Pipeline < 1 {
		c.Pipeline = 1
	}
	return c
}

// Client talks the gridserver protocol with connection pooling, per-request
// deadlines and retry with exponential backoff; with Pipeline > 1 it
// multiplexes concurrent requests over tagged connections instead. It is
// safe for concurrent use.
type Client struct {
	cfg     ClientConfig
	mu      sync.Mutex
	idle    []*clientConn   // non-pipelined pool
	pipes   []*pipeConn     // pipelined conns, round-robined; nil slots dial lazily
	dialing []chan struct{} // per-slot dial in flight; closed when the slot settles
	rr      uint64
	closed  bool
}

// NewClient creates a client for the given server address. No connection is
// made until the first request.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Addr == "" {
		return nil, errors.New("server: client needs an address")
	}
	return &Client{cfg: cfg.withDefaults()}, nil
}

// clientConn is one pooled non-pipelined connection with its read/write
// scratch: requests are framed into wbuf and responses read into rbuf, so
// the steady-state transport path allocates nothing and issues one write
// and (typically) one buffered read syscall per round trip.
type clientConn struct {
	c    net.Conn
	br   *bufio.Reader
	wbuf []byte
	rbuf []byte
}

func (c *Client) dial() (net.Conn, error) {
	conn, err := net.DialTimeout("tcp", c.cfg.Addr, c.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(!c.cfg.DisableNoDelay)
	}
	return conn, nil
}

func (c *Client) getConn() (*clientConn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errors.New("server: client closed")
	}
	if n := len(c.idle); n > 0 {
		cc := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return cc, nil
	}
	c.mu.Unlock()
	conn, err := c.dial()
	if err != nil {
		return nil, err
	}
	return &clientConn{c: conn, br: bufio.NewReaderSize(conn, 16<<10)}, nil
}

func (c *Client) putConn(cc *clientConn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || len(c.idle) >= c.cfg.PoolSize {
		cc.c.Close()
		return
	}
	c.idle = append(c.idle, cc)
}

// idempotent reports whether a request may safely be re-sent when the
// transport failed mid-flight. Only the read-only verbs qualify — this is an
// allowlist, not a denylist, so any verb added later defaults to the safe
// single-attempt behaviour. A torn connection leaves the first attempt's fate
// unknown: the server may have applied it and the ack was lost. Re-sending a
// query just re-reads; re-sending INSERT would double-apply it, re-sending
// DELETE could remove a second identical record, and re-sending a FAULT spec
// would arm it twice. Mutations and admin commands get exactly one attempt.
func idempotent(v Verb) bool {
	switch v {
	case VerbPoint, VerbRange, VerbPartial, VerbKNN, VerbStats:
		return true
	}
	return false
}

// encodeError marks a request-validation failure from the encoder: it is
// deterministic, so retrying is pointless and the connection is unharmed.
type encodeError struct{ err error }

func (e *encodeError) Error() string { return e.err.Error() }
func (e *encodeError) Unwrap() error { return e.err }

// exchange runs one request end to end: pooling or pipelining, per-request
// deadline, retry with backoff. On success it calls handle exactly once with
// the response frame (never VerbError — that becomes a *ServerError) while
// the frame is still valid; handle must copy anything it keeps, because on
// pooled connections the payload aliases the connection's read buffer. A
// handle error discards the connection (a malformed response means the
// stream can't be trusted) and is returned without retry.
func (c *Client) exchange(ctx context.Context, req Request, handle func(Frame) error) error {
	retries := c.cfg.Retries
	if !idempotent(req.Verb) {
		retries = 0
	}
	var lastErr error
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 {
			if err := sleepCtx(ctx, retryDelay(c.cfg.Backoff, attempt)); err != nil {
				return fmt.Errorf("server: request cancelled during retry backoff: %w (last error: %v)",
					err, lastErr)
			}
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		var err error
		if c.cfg.Pipeline > 1 {
			err = c.exchangePipelined(ctx, req, handle)
		} else {
			err = c.exchangePooled(ctx, req, handle)
		}
		if err == nil {
			return nil
		}
		var ee *encodeError
		var se *ServerError
		if errors.As(err, &ee) || errors.As(err, &se) || errors.Is(err, context.Canceled) ||
			errors.Is(err, context.DeadlineExceeded) {
			return err // deterministic, server-reported, or caller-aborted: no retry
		}
		lastErr = err
	}
	return fmt.Errorf("server: request failed after %d attempts: %w",
		retries+1, lastErr)
}

// deadlineFor is the sooner of RequestTimeout from now and ctx's deadline,
// so a cancelled caller is not held to the full request timeout.
func (c *Client) deadlineFor(ctx context.Context) time.Time {
	deadline := time.Now().Add(c.cfg.RequestTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	return deadline
}

// exchangePooled is one attempt over a pooled (unpipelined) connection.
func (c *Client) exchangePooled(ctx context.Context, req Request, handle func(Frame) error) error {
	cc, err := c.getConn()
	if err != nil {
		return err
	}
	if err := cc.c.SetDeadline(c.deadlineFor(ctx)); err != nil {
		cc.c.Close()
		return err
	}
	cc.wbuf, err = AppendRequestFrame(cc.wbuf[:0], req, 0, false)
	if err != nil {
		c.putConn(cc) // nothing was written; the connection is fine
		return &encodeError{err}
	}
	if _, err := cc.c.Write(cc.wbuf); err != nil {
		cc.c.Close()
		return err
	}
	resp, err := readFrameBuf(cc.br, &cc.rbuf)
	if err != nil {
		cc.c.Close()
		return err
	}
	if resp.Verb == VerbError {
		err := &ServerError{Msg: string(resp.Payload)}
		c.putConn(cc)
		return err
	}
	if err := handle(resp); err != nil {
		cc.c.Close()
		return err
	}
	c.putConn(cc)
	return nil
}

// waiter carries one pipelined request's reply from the connection's read
// loop to the caller. Waiters — and the buffers backing the reply payloads —
// are pooled: on the happy path both go straight back for the next request,
// so the steady-state pipelined exchange allocates nothing here. The failure
// paths (connection death, timeout, cancellation) deliberately let them leak
// to the collector: a closed channel cannot be reused, and after a caller
// abandons its id a late reply may still race into the waiter.
type waiter struct {
	ch       chan Frame
	buf      *[]byte   // backing store of the delivered frame's payload
	deadline time.Time // reply due by; enforced by the connection watchdog
}

var waiterPool = sync.Pool{New: func() any { return &waiter{ch: make(chan Frame, 1)} }}

// pipeConn is one pipelined connection: callers frame tagged requests into a
// shared pending buffer, a writer goroutine group-commits that buffer — every
// frame queued while the previous write syscall was in flight goes out in the
// next single write — a reader goroutine matches tagged replies to waiting
// callers by request id, and a semaphore bounds requests in flight. Reply
// timeouts are enforced by one per-connection watchdog timer instead of a
// timer per request: on a multiplexed stream a missing reply fails the whole
// connection anyway, so a coarse shared deadline scan detects it just as
// well at a fraction of the cost. Any transport error fails the whole
// connection — every pending caller gets the error and the next request
// dials a replacement.
type pipeConn struct {
	conn     net.Conn
	br       *bufio.Reader
	sem      chan struct{}
	wtimeout time.Duration // per-flush write deadline
	wd       *time.Timer   // watchdog; rearmed until the connection fails
	wdPeriod time.Duration

	mu      sync.Mutex
	pend    map[uint32]*waiter
	nextID  uint32
	err     error         // terminal error; set once, before failing pend
	pending []byte        // frames enqueued for the writer's next group commit
	closed  bool          // tells the parked writer to exit
	wake    chan struct{} // 1-slot; poked when pending goes non-empty

	wbuf []byte // writer-owned; swapped against pending under mu
}

func newPipeConn(conn net.Conn, depth int, timeout time.Duration) *pipeConn {
	pc := &pipeConn{
		conn:     conn,
		br:       bufio.NewReaderSize(conn, 64<<10),
		sem:      make(chan struct{}, depth),
		wtimeout: timeout,
		pend:     make(map[uint32]*waiter),
		wake:     make(chan struct{}, 1),
	}
	// The watchdog granularity trades timeout precision (a timed-out request
	// is detected at most one period late) for never touching a timer on the
	// request path.
	pc.wdPeriod = timeout / 4
	if pc.wdPeriod < 10*time.Millisecond {
		pc.wdPeriod = 10 * time.Millisecond
	}
	pc.wd = time.AfterFunc(pc.wdPeriod, pc.watchdog)
	go pc.readLoop()
	go pc.writeLoop()
	return pc
}

// writeLoop is the connection's group-commit writer: it swaps the shared
// pending buffer against its own and submits everything accumulated there as
// one write syscall. Requests framed while that write was in flight ride the
// next swap, so under concurrent load the per-request write cost amortizes
// toward zero without adding any latency when the connection is idle.
func (pc *pipeConn) writeLoop() {
	for {
		pc.mu.Lock()
		for len(pc.pending) == 0 {
			closed := pc.closed
			pc.mu.Unlock()
			if closed {
				return
			}
			<-pc.wake
			pc.mu.Lock()
		}
		pc.wbuf, pc.pending = pc.pending, pc.wbuf[:0]
		pc.mu.Unlock()
		pc.conn.SetWriteDeadline(time.Now().Add(pc.wtimeout))
		if _, err := pc.conn.Write(pc.wbuf); err != nil {
			// A partial write poisons the stream for everyone, including
			// callers whose frames rode this batch and already returned.
			pc.fail(err)
			return
		}
	}
}

// watchdog fails the connection when any pending request has outlived its
// deadline; otherwise it rearms itself. It stops rearming once the
// connection is dead.
func (pc *pipeConn) watchdog() {
	now := time.Now()
	pc.mu.Lock()
	if pc.err != nil {
		pc.mu.Unlock()
		return
	}
	var expired uint32
	timedOut := false
	for id, w := range pc.pend {
		if now.After(w.deadline) {
			expired, timedOut = id, true
			break
		}
	}
	if !timedOut {
		pc.wd.Reset(pc.wdPeriod)
		pc.mu.Unlock()
		return
	}
	pc.mu.Unlock()
	pc.fail(fmt.Errorf("server: request %d timed out", expired))
}

// readLoop dispatches tagged replies to their waiting callers. Replies for
// ids nobody waits on (caller gave up via ctx) are dropped; any read error
// or protocol violation fails the connection. Each reply is read into a
// pooled buffer whose ownership passes to the caller with the frame; dropped
// replies keep the buffer for the next read.
func (pc *pipeConn) readLoop() {
	buf := getRespBuf()
	defer func() { putRespBuf(buf) }()
	for {
		f, err := readFrameBuf(pc.br, buf)
		if err != nil {
			pc.fail(err)
			return
		}
		id, inner, err := UnwrapTagged(f)
		if err != nil {
			if f.Verb == VerbError {
				// An untagged error reply on a pipelined stream is a
				// stream-level failure (e.g. a hostile frame was read): it
				// answers no particular request, so it fails them all.
				pc.fail(&ServerError{Msg: string(f.Payload)})
				return
			}
			pc.fail(fmt.Errorf("server: unpipelined reply on pipelined connection: %w", err))
			return
		}
		pc.mu.Lock()
		w, ok := pc.pend[id]
		if ok {
			delete(pc.pend, id)
		}
		pc.mu.Unlock()
		if ok {
			w.buf = buf
			w.ch <- inner // buffered; never blocks
			buf = getRespBuf()
		}
	}
}

// fail marks the connection dead, closes it, and unblocks every pending
// caller by closing their channels; pc.err carries the cause. The parked
// writer is woken so it can observe closed and exit, and the watchdog stops
// rearming.
func (pc *pipeConn) fail(err error) {
	pc.mu.Lock()
	if pc.err == nil {
		pc.err = err
		pc.closed = true
		for id, w := range pc.pend {
			delete(pc.pend, id)
			close(w.ch)
		}
	}
	pc.mu.Unlock()
	select {
	case pc.wake <- struct{}{}:
	default:
	}
	pc.wd.Stop()
	pc.conn.Close()
}

// enqueue allocates a request id, registers its reply waiter, and frames the
// request into the connection's pending buffer, all under one lock; the
// writer goroutine group-commits the buffer. An encoding failure leaves the
// buffer and the connection untouched.
func (pc *pipeConn) enqueue(req Request, deadline time.Time) (uint32, *waiter, error) {
	pc.mu.Lock()
	if pc.err != nil {
		err := pc.err
		pc.mu.Unlock()
		return 0, nil, err
	}
	pc.nextID++
	id := pc.nextID
	n := len(pc.pending)
	var err error
	pc.pending, err = AppendRequestFrame(pc.pending, req, id, true)
	if err != nil {
		pc.pending = pc.pending[:n]
		pc.mu.Unlock()
		return 0, nil, &encodeError{err}
	}
	w := waiterPool.Get().(*waiter)
	w.deadline = deadline
	pc.pend[id] = w
	pc.mu.Unlock()
	if n == 0 {
		// The buffer went empty→non-empty, so the writer may be parked;
		// later frames ride the batch the writer will pick up anyway.
		select {
		case pc.wake <- struct{}{}:
		default:
		}
	}
	return id, w, nil
}

// deregister abandons a request (caller cancelled); the eventual reply is
// dropped by readLoop.
func (pc *pipeConn) deregister(id uint32) {
	pc.mu.Lock()
	delete(pc.pend, id)
	pc.mu.Unlock()
}

func (pc *pipeConn) failed() bool {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.err != nil
}

// getPipe returns a live pipelined connection, dialing a replacement for a
// dead or missing round-robin slot. Dials are per-slot singleflight: the
// first caller to find a slot empty dials it while later callers park until
// the slot settles, so a burst of workers starting against a cold pool costs
// PoolSize dials — not one per worker, with the losers' connections (and
// their read buffers, goroutines, and server-side accepts) thrown away.
func (c *Client) getPipe() (*pipeConn, error) {
	c.mu.Lock()
	for {
		if c.closed {
			c.mu.Unlock()
			return nil, errors.New("server: client closed")
		}
		if c.pipes == nil {
			c.pipes = make([]*pipeConn, c.cfg.PoolSize)
			c.dialing = make([]chan struct{}, c.cfg.PoolSize)
		}
		c.rr++
		slot := int(c.rr % uint64(len(c.pipes)))
		if pc := c.pipes[slot]; pc != nil && !pc.failed() {
			c.mu.Unlock()
			return pc, nil
		}
		if ch := c.dialing[slot]; ch != nil {
			// Someone is already dialing this slot; wait for it to settle
			// and retry. The retry re-rolls rr, so waiters spread across
			// whatever slots are live by then.
			c.mu.Unlock()
			<-ch
			c.mu.Lock()
			continue
		}
		ch := make(chan struct{})
		c.dialing[slot] = ch
		c.mu.Unlock()

		conn, err := c.dial()
		var pc *pipeConn
		if err == nil {
			pc = newPipeConn(conn, c.cfg.Pipeline, c.cfg.RequestTimeout)
		}
		c.mu.Lock()
		c.dialing[slot] = nil
		close(ch)
		if err != nil {
			c.mu.Unlock()
			return nil, err
		}
		if c.closed {
			c.mu.Unlock()
			pc.fail(errors.New("server: client closed"))
			return nil, errors.New("server: client closed")
		}
		c.pipes[slot] = pc
		c.mu.Unlock()
		return pc, nil
	}
}

// exchangePipelined is one attempt over a tagged (pipelined) connection. A
// request that outlives its deadline fails the whole connection rather than
// waiting forever: on a multiplexed stream a missing reply cannot be
// distinguished from a desynchronized one, and the retry path dials fresh —
// the connection's watchdog timer detects the overdue reply, so the caller
// parks on nothing but its waiter (and the rare caller context).
func (c *Client) exchangePipelined(ctx context.Context, req Request, handle func(Frame) error) error {
	pc, err := c.getPipe()
	if err != nil {
		return err
	}
	deadline := c.deadlineFor(ctx)
	select {
	case pc.sem <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	defer func() { <-pc.sem }()

	id, w, err := pc.enqueue(req, deadline)
	if err != nil {
		return err
	}
	select {
	case resp, ok := <-w.ch:
		if !ok {
			pc.mu.Lock()
			err := pc.err
			pc.mu.Unlock()
			return fmt.Errorf("server: pipelined connection failed: %w", err)
		}
		var herr error
		if resp.Verb == VerbError {
			herr = &ServerError{Msg: string(resp.Payload)}
		} else {
			herr = handle(resp)
		}
		// The reply is consumed; recycle its buffer and the waiter.
		putRespBuf(w.buf)
		w.buf = nil
		waiterPool.Put(w)
		return herr
	case <-ctx.Done():
		pc.deregister(id)
		return ctx.Err()
	}
}

// sleepCtx pauses for d unless ctx is cancelled first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// retryDelay computes the sleep before retry `attempt` (1-based): full
// jitter over an exponentially growing window. A deterministic doubling
// schedule synchronizes every client that failed at the same moment — they
// all hammer the recovering server again in phase; sampling uniformly from
// (0, base<<(attempt-1)] decorrelates them while keeping the same mean
// growth.
func retryDelay(base time.Duration, attempt int) time.Duration {
	window := base << (attempt - 1)
	if window <= 0 { // shift overflow on absurd attempt counts
		window = base
	}
	return time.Duration(rand.Int64N(int64(window))) + 1
}

func (c *Client) doResult(ctx context.Context, req Request) (Result, error) {
	var res Result
	err := c.exchange(ctx, req, func(f Frame) error {
		r, derr := DecodeResult(f)
		if derr == nil {
			res = r // DecodeResult copies out of the frame payload
		}
		return derr
	})
	return res, err
}

// Point returns all stored records whose key equals key exactly.
func (c *Client) Point(key geom.Point) ([]geom.Point, QueryInfo, error) {
	return c.PointCtx(context.Background(), key)
}

// PointCtx is Point with a caller context: cancellation or a context
// deadline sooner than RequestTimeout bounds the request.
func (c *Client) PointCtx(ctx context.Context, key geom.Point) ([]geom.Point, QueryInfo, error) {
	res, err := c.doResult(ctx, Request{Verb: VerbPoint, Key: key})
	return res.Points, res.Info, err
}

// Range returns all stored records inside the closed query box.
func (c *Client) Range(q geom.Rect) ([]geom.Point, QueryInfo, error) {
	return c.RangeCtx(context.Background(), q)
}

// RangeCtx is Range with a caller context.
func (c *Client) RangeCtx(ctx context.Context, q geom.Rect) ([]geom.Point, QueryInfo, error) {
	res, err := c.doResult(ctx, Request{Verb: VerbRange, Query: q})
	return res.Points, res.Info, err
}

// RangeCount returns how many stored records lie inside the closed query
// box, without shipping them.
func (c *Client) RangeCount(q geom.Rect) (int, QueryInfo, error) {
	return c.RangeCountCtx(context.Background(), q)
}

// RangeCountCtx is RangeCount with a caller context.
func (c *Client) RangeCountCtx(ctx context.Context, q geom.Rect) (int, QueryInfo, error) {
	res, err := c.doResult(ctx, Request{Verb: VerbRange, Query: q, CountOnly: true})
	return res.Count, res.Info, err
}

// PartialMatch returns records matching vals on every specified dimension;
// NaN marks an unspecified attribute.
func (c *Client) PartialMatch(vals []float64) ([]geom.Point, QueryInfo, error) {
	return c.PartialMatchCtx(context.Background(), vals)
}

// PartialMatchCtx is PartialMatch with a caller context.
func (c *Client) PartialMatchCtx(ctx context.Context, vals []float64) ([]geom.Point, QueryInfo, error) {
	res, err := c.doResult(ctx, Request{Verb: VerbPartial, Vals: vals})
	return res.Points, res.Info, err
}

// KNN returns the k stored records nearest to key, closest first.
func (c *Client) KNN(key geom.Point, k int) ([]geom.Point, QueryInfo, error) {
	return c.KNNCtx(context.Background(), key, k)
}

// KNNCtx is KNN with a caller context.
func (c *Client) KNNCtx(ctx context.Context, key geom.Point, k int) ([]geom.Point, QueryInfo, error) {
	res, err := c.doResult(ctx, Request{Verb: VerbKNN, Key: key, K: k})
	return res.Points, res.Info, err
}

// Insert stores one record on a writable server. The returned Splits counts
// bucket splits the insert triggered. Writes are not idempotent, so a
// transport failure is never retried: an error means the insert's fate is
// unknown (it may or may not have been applied and journaled).
func (c *Client) Insert(key geom.Point) (Result, error) {
	return c.InsertCtx(context.Background(), key)
}

// InsertCtx is Insert with a caller context.
func (c *Client) InsertCtx(ctx context.Context, key geom.Point) (Result, error) {
	return c.doWrite(ctx, Request{Verb: VerbInsert, Key: key})
}

// Delete removes one record with exactly the given key from a writable
// server. Applied is false when no matching record existed. Like Insert,
// transport failures are never retried.
func (c *Client) Delete(key geom.Point) (Result, error) {
	return c.DeleteCtx(context.Background(), key)
}

// DeleteCtx is Delete with a caller context.
func (c *Client) DeleteCtx(ctx context.Context, key geom.Point) (Result, error) {
	return c.doWrite(ctx, Request{Verb: VerbDelete, Key: key})
}

func (c *Client) doWrite(ctx context.Context, req Request) (Result, error) {
	var res Result
	err := c.exchange(ctx, req, func(f Frame) error {
		if f.Verb != VerbWriteOK {
			return fmt.Errorf("server: unexpected reply verb 0x%02x", uint8(f.Verb))
		}
		r, derr := DecodeResult(f)
		if derr == nil {
			res = r
		}
		return derr
	})
	return res, err
}

// Stats fetches the server's statistics snapshot via the STATS verb.
func (c *Client) Stats() (Snapshot, error) {
	var s Snapshot
	err := c.exchange(context.Background(), Request{Verb: VerbStats}, func(f Frame) error {
		if f.Verb != VerbStatsReply {
			return fmt.Errorf("server: unexpected reply verb 0x%02x", uint8(f.Verb))
		}
		if err := json.Unmarshal(f.Payload, &s); err != nil {
			return fmt.Errorf("server: parsing stats: %w", err)
		}
		return nil
	})
	if err != nil {
		return Snapshot{}, err
	}
	return s, nil
}

// Fault runs one FAULT admin command — "status", "clear", or a fault spec
// to arm (see internal/fault for the grammar) — and returns the registry's
// post-command status. FAULT is not idempotent, so transport failures are
// never retried; ctx cancels the round trip.
func (c *Client) Fault(ctx context.Context, cmd string) (FaultStatus, error) {
	var st FaultStatus
	err := c.exchange(ctx, Request{Verb: VerbFault, FaultCmd: cmd}, func(f Frame) error {
		if f.Verb != VerbFaultReply {
			return fmt.Errorf("server: unexpected reply verb 0x%02x", uint8(f.Verb))
		}
		if err := json.Unmarshal(f.Payload, &st); err != nil {
			return fmt.Errorf("server: parsing fault status: %w", err)
		}
		return nil
	})
	if err != nil {
		return FaultStatus{}, err
	}
	return st, nil
}

// Close releases all pooled and pipelined connections. In-flight requests
// on borrowed pooled connections complete; pipelined requests fail with a
// closed-client error.
func (c *Client) Close() {
	c.mu.Lock()
	c.closed = true
	idle := c.idle
	pipes := c.pipes
	c.idle, c.pipes = nil, nil
	c.mu.Unlock()
	for _, cc := range idle {
		cc.c.Close()
	}
	for _, pc := range pipes {
		if pc != nil {
			pc.fail(errors.New("server: client closed"))
		}
	}
}
