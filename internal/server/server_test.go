package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"pgridfile/internal/core"
	"pgridfile/internal/geom"
	"pgridfile/internal/gridfile"
	"pgridfile/internal/store"
	"pgridfile/internal/synth"
	"pgridfile/internal/workload"
)

// newTestLayout builds a uniform 2-D grid file, declusters it with minimax
// over disks, and writes the layout under t.TempDir.
func newTestLayout(t *testing.T, records, disks int) (*gridfile.File, string) {
	t.Helper()
	f, err := synth.Uniform2D(records, 3).Build()
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := (&core.Minimax{Seed: 1}).Decluster(core.FromGridFile(f), disks)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := store.Write(dir, f, alloc, 4096); err != nil {
		t.Fatal(err)
	}
	return f, dir
}

func newTestServer(t *testing.T, records, disks int, cfg Config) (*Server, *gridfile.File) {
	t.Helper()
	f, dir := newTestLayout(t, records, disks)
	s, err := OpenDir(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, f
}

func newTestClient(t *testing.T, s *Server, cfg ClientConfig) *Client {
	t.Helper()
	cfg.Addr = s.Addr().String()
	c, err := NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// TestServerEndToEnd is the acceptance demo: 16 concurrent clients issue
// over 1000 mixed point/range/count/k-NN/partial queries against a
// minimax-declustered store, every answer is validated against the
// in-memory grid file, zero errors are tolerated, and the STATS verb must
// report the query counts, per-disk bucket fetches and latency percentiles.
func TestServerEndToEnd(t *testing.T) {
	const (
		clients   = 16
		perClient = 64
		total     = clients * perClient // 1024 >= 1000
		disks     = 4
		k         = 5
	)
	s, f := newTestServer(t, 900, disks, Config{MaxInflight: 32})
	dom := f.Domain()

	// Pre-generate the workload and precompute expected answers against
	// the in-memory grid file, so the concurrent phase only has to compare.
	ranges := workload.SquareRange(dom, 0.05, total, 7)
	partials := workload.PartialMatch(dom, 1, total, 9)
	var keys []geom.Point
	f.Scan(func(key []float64, _ []byte) bool {
		keys = append(keys, geom.Point{key[0], key[1]})
		return len(keys) < total
	})
	if len(keys) == 0 {
		t.Fatal("no records")
	}

	wantRange := make([]int, total)
	wantLookup := make([]int, total)
	wantKNN := make([][]float64, total)
	wantPartial := make([]int, total)
	for i := 0; i < total; i++ {
		wantRange[i] = f.RangeCount(ranges[i])
		p := keys[i%len(keys)]
		wantLookup[i] = len(f.Lookup(p))
		nn := f.NearestNeighbors(p, k)
		dists := make([]float64, len(nn))
		for j, n := range nn {
			dists[j] = n.Distance
		}
		wantKNN[i] = dists
		wantPartial[i] = len(f.PartialMatch(partials[i]))
	}

	errCh := make(chan error, total)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := NewClientMust(t, s)
			defer cl.Close()
			for j := 0; j < perClient; j++ {
				i := c*perClient + j
				var err error
				switch i % 8 {
				case 0, 1: // range returning points
					pts, _, e := cl.Range(ranges[i])
					err = e
					if e == nil && len(pts) != wantRange[i] {
						err = fmt.Errorf("range %d: got %d points, want %d", i, len(pts), wantRange[i])
					}
					for _, p := range pts {
						if err == nil && !ranges[i].ContainsPoint(p) {
							err = fmt.Errorf("range %d: point %v outside query", i, p)
						}
					}
				case 2, 3: // count-only range
					n, info, e := cl.RangeCount(ranges[i])
					err = e
					if e == nil && n != wantRange[i] {
						err = fmt.Errorf("count %d: got %d, want %d", i, n, wantRange[i])
					}
					if e == nil && n > 0 && info.Buckets == 0 {
						err = fmt.Errorf("count %d: %d records from zero bucket fetches", i, n)
					}
				case 4, 5: // exact point lookup of a stored key
					pts, _, e := cl.Point(keys[i%len(keys)])
					err = e
					if e == nil && len(pts) != wantLookup[i] {
						err = fmt.Errorf("point %d: got %d, want %d", i, len(pts), wantLookup[i])
					}
				case 6: // k nearest neighbours
					pts, _, e := cl.KNN(keys[i%len(keys)], k)
					err = e
					if e == nil {
						if len(pts) != len(wantKNN[i]) {
							err = fmt.Errorf("knn %d: got %d, want %d", i, len(pts), len(wantKNN[i]))
						}
						for j, p := range pts {
							if err != nil {
								break
							}
							d := euclid(p, keys[i%len(keys)])
							if math.Abs(d-wantKNN[i][j]) > 1e-9 {
								err = fmt.Errorf("knn %d: distance %d is %v, want %v", i, j, d, wantKNN[i][j])
							}
						}
					}
				case 7: // partial match
					pts, _, e := cl.PartialMatch(partials[i])
					err = e
					if e == nil && len(pts) != wantPartial[i] {
						err = fmt.Errorf("partial %d: got %d, want %d", i, len(pts), wantPartial[i])
					}
				}
				if err != nil {
					errCh <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// The STATS verb must account for everything the clients did.
	cl := NewClientMust(t, s)
	defer cl.Close()
	snap, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Errors != 0 || snap.Rejected != 0 {
		t.Errorf("errors=%d rejected=%d, want 0/0", snap.Errors, snap.Rejected)
	}
	counted := snap.Queries["range"] + snap.Queries["point"] +
		snap.Queries["knn"] + snap.Queries["partial"]
	if counted != total {
		t.Errorf("data queries counted = %d, want %d (%v)", counted, total, snap.Queries)
	}
	if snap.Queries["range"] != total/2 {
		t.Errorf("range queries = %d, want %d", snap.Queries["range"], total/2)
	}
	if len(snap.DiskFetches) != disks {
		t.Fatalf("disk fetch counters = %d, want %d", len(snap.DiskFetches), disks)
	}
	var fetches int64
	for d, n := range snap.DiskFetches {
		if n == 0 {
			t.Errorf("disk %d served zero bucket fetches", d)
		}
		fetches += n
	}
	if fetches == 0 || snap.PagesRead < fetches {
		t.Errorf("fetches=%d pages=%d: pages must cover fetches", fetches, snap.PagesRead)
	}
	lat := snap.LatencyMicros
	if lat.Count != total {
		t.Errorf("latency observations = %d, want %d", lat.Count, total)
	}
	if lat.Max <= 0 || lat.P99 < lat.P50 || lat.P50 < 0 {
		t.Errorf("implausible latency summary: %+v", lat)
	}
	if snap.Dims != 2 || snap.Disks != disks || len(snap.Domain) != 2 {
		t.Errorf("layout description wrong: %+v", snap)
	}
}

// NewClientMust is a shorthand used by concurrent test goroutines.
func NewClientMust(t *testing.T, s *Server) *Client {
	c, err := NewClient(ClientConfig{Addr: s.Addr().String()})
	if err != nil {
		t.Error(err)
		return nil
	}
	return c
}

// TestConcurrentRangeSharedCache drives overlapping range queries from many
// goroutines against one server under -race: every query shares the grid
// file's directory translation (no lock) and the bucket cache (hits, leader
// loads and singleflight joins all interleave), and every answer must match
// the sequential ground truth.
func TestConcurrentRangeSharedCache(t *testing.T) {
	const (
		goroutines = 12
		rounds     = 20
		disks      = 4
	)
	s, f := newTestServer(t, 1200, disks, Config{CacheBytes: 1 << 20})
	dom := f.Domain()
	queries := workload.SquareRange(dom, 0.10, 16, 3)
	want := make([]int, len(queries))
	for i, q := range queries {
		want[i] = f.RangeCount(q)
	}

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cl := NewClientMust(t, s)
			defer cl.Close()
			for r := 0; r < rounds; r++ {
				i := (g + r) % len(queries) // overlap across goroutines
				n, _, err := cl.RangeCount(queries[i])
				if err != nil {
					errs <- err
					return
				}
				if n != want[i] {
					errs <- fmt.Errorf("query %d: got %d, want %d", i, n, want[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	snap := s.Snapshot()
	if snap.Cache == nil {
		t.Fatal("cache stats missing from snapshot")
	}
	c := snap.Cache
	if c.Hits == 0 {
		t.Error("repeated overlapping queries produced zero cache hits")
	}
	if c.Misses == 0 {
		t.Error("cold cache produced zero misses")
	}
	if c.Bytes > c.MaxBytes {
		t.Errorf("resident bytes %d exceed bound %d", c.Bytes, c.MaxBytes)
	}
}

// TestServerCacheDisabled proves CacheBytes < 0 turns caching off entirely:
// queries still work, the snapshot has no cache block, and every repeat
// fetch hits the disks again.
func TestServerCacheDisabled(t *testing.T) {
	s, f := newTestServer(t, 300, 2, Config{CacheBytes: -1})
	cl := newTestClient(t, s, ClientConfig{})
	for i := 0; i < 3; i++ {
		n, _, err := cl.RangeCount(f.Domain())
		if err != nil {
			t.Fatal(err)
		}
		if n != f.Len() {
			t.Fatalf("full-domain count = %d, want %d", n, f.Len())
		}
	}
	snap := s.Snapshot()
	if snap.Cache != nil {
		t.Errorf("cache stats present despite CacheBytes<0: %+v", snap.Cache)
	}
	var fetches int64
	for _, n := range snap.DiskFetches {
		fetches += n
	}
	if want := int64(3 * len(f.Buckets())); fetches != want {
		t.Errorf("disk fetches = %d, want %d (no caching)", fetches, want)
	}
}

// TestServerCoalesceParity proves coalesced and per-bucket reads return the
// same answers and page counts.
func TestServerCoalesceParity(t *testing.T) {
	_, dir := newTestLayout(t, 800, 3)
	for _, disable := range []bool{false, true} {
		s, err := OpenDir(dir, Config{DisableCoalesce: disable, CacheBytes: -1})
		if err != nil {
			t.Fatal(err)
		}
		cl, err := NewClient(ClientConfig{Addr: s.Addr().String()})
		if err != nil {
			s.Close()
			t.Fatal(err)
		}
		grid, _ := store.OpenGrid(dir)
		n, info, err := cl.RangeCount(grid.Domain())
		if err != nil {
			t.Fatal(err)
		}
		if n != grid.Len() {
			t.Errorf("disableCoalesce=%v: count %d, want %d", disable, n, grid.Len())
		}
		if info.Buckets != len(grid.Buckets()) || info.Pages == 0 {
			t.Errorf("disableCoalesce=%v: info %+v", disable, info)
		}
		cl.Close()
		s.Close()
	}
}

// TestServerRejectsMalformedStream sends hostile bytes to a live server:
// the connection must be answered with an error or closed, and the server
// must keep serving well-formed clients afterwards.
func TestServerRejectsMalformedStream(t *testing.T) {
	s, f := newTestServer(t, 200, 2, Config{})

	// An oversized length prefix must draw an error reply, not a crash.
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], MaxFrameBytes+1)
	hdr[4] = byte(VerbPoint)
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	fr, err := ReadFrame(conn)
	if err != nil {
		t.Fatalf("no error reply to oversized frame: %v", err)
	}
	if fr.Verb != VerbError {
		t.Errorf("got verb 0x%02x, want error", uint8(fr.Verb))
	}
	conn.Close()

	// Garbage that parses as a frame but not as a request: error reply,
	// connection stays usable.
	conn2, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if err := WriteFrame(conn2, Frame{Verb: VerbPoint, Payload: []byte{0xDE, 0xAD}}); err != nil {
		t.Fatal(err)
	}
	fr, err = ReadFrame(conn2)
	if err != nil || fr.Verb != VerbError {
		t.Fatalf("malformed request not answered with error: %v %v", fr.Verb, err)
	}

	// The server is still healthy for a real client.
	cl := newTestClient(t, s, ClientConfig{})
	n, _, err := cl.RangeCount(f.Domain())
	if err != nil {
		t.Fatal(err)
	}
	if n != f.Len() {
		t.Errorf("full-domain count = %d, want %d", n, f.Len())
	}
	snap, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Errors < 2 {
		t.Errorf("protocol errors counted = %d, want >= 2", snap.Errors)
	}
}

// TestServerDeadlines slows every bucket fetch down and proves a query
// whose I/O cannot finish within the deadline is answered with an error
// while the server stays healthy.
func TestServerDeadlines(t *testing.T) {
	s, f := newTestServer(t, 600, 2, Config{
		QueryTimeout: 100 * time.Millisecond,
		slowFetch:    25 * time.Millisecond,
	})
	cl := newTestClient(t, s, ClientConfig{Retries: -1})

	// A full-domain range touches every bucket; two disks at 25ms per
	// fetch cannot finish inside 60ms.
	_, _, err := cl.Range(f.Domain())
	var se *ServerError
	if !errors.As(err, &se) {
		t.Fatalf("got %v, want a server error", err)
	}
	if !strings.Contains(se.Msg, "deadline") && !strings.Contains(se.Msg, "busy") {
		t.Errorf("unexpected deadline message: %q", se.Msg)
	}

	// A single-bucket point query fits in the deadline; stats still serve.
	var key geom.Point
	f.Scan(func(k []float64, _ []byte) bool { key = geom.Point{k[0], k[1]}; return false })
	if _, _, err := cl.Point(key); err != nil {
		t.Fatalf("single-bucket query after timeout: %v", err)
	}
	snap, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	// The query above was admitted (the admission queue was empty) and then
	// expired mid-flight: that must land in deadline_exceeded, not in the
	// admission-control rejection counter.
	if snap.DeadlineExceeded == 0 {
		t.Error("mid-flight deadline expiry not counted as deadline_exceeded")
	}
	if snap.Rejected != 0 {
		t.Errorf("mid-flight deadline expiry counted as %d admission rejections", snap.Rejected)
	}
}

// TestServerAdmissionControl saturates a MaxInflight=1 server: with a
// generous deadline everything is served (backpressure, not failure); with
// a tight one the overload is rejected rather than queued forever.
func TestServerAdmissionControl(t *testing.T) {
	s, f := newTestServer(t, 300, 2, Config{
		MaxInflight:  1,
		QueryTimeout: 2 * time.Second,
		slowFetch:    5 * time.Millisecond,
	})
	var key geom.Point
	f.Scan(func(k []float64, _ []byte) bool { key = geom.Point{k[0], k[1]}; return false })

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := NewClientMust(t, s)
			defer cl.Close()
			if _, _, err := cl.Point(key); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("backpressured query failed: %v", err)
	}

	tight, fTight := newTestServer(t, 300, 2, Config{
		MaxInflight:  1,
		QueryTimeout: 30 * time.Millisecond,
		slowFetch:    50 * time.Millisecond,
	})
	var wg2 sync.WaitGroup
	rejected := make(chan struct{}, 4)
	for i := 0; i < 4; i++ {
		wg2.Add(1)
		go func() {
			defer wg2.Done()
			cl, err := NewClient(ClientConfig{Addr: tight.Addr().String(), Retries: -1})
			if err != nil {
				t.Error(err)
				return
			}
			defer cl.Close()
			if _, _, err := cl.RangeCount(fTight.Domain()); err != nil {
				var se *ServerError
				if errors.As(err, &se) {
					rejected <- struct{}{}
				} else {
					t.Errorf("transport error under overload: %v", err)
				}
			}
		}()
	}
	wg2.Wait()
	if len(rejected) == 0 {
		t.Error("overloaded server rejected nothing")
	}
	// Queries that expired while queued for admission are rejections; they
	// must be visible on the admission counter, not only as error replies.
	if snap := tight.Snapshot(); snap.Rejected == 0 {
		t.Errorf("admission-queue expiry not counted as rejected (snapshot %+v)", snap)
	}
}

// TestGracefulShutdown proves Close drains: queries in flight when Close is
// called complete and deliver their replies; new connections are refused
// afterwards.
func TestGracefulShutdown(t *testing.T) {
	s, f := newTestServer(t, 400, 2, Config{
		slowFetch:    10 * time.Millisecond,
		DrainTimeout: 5 * time.Second,
	})

	started := make(chan struct{}, 4)
	results := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			cl, err := NewClient(ClientConfig{Addr: s.Addr().String(), Retries: -1})
			if err != nil {
				results <- err
				return
			}
			defer cl.Close()
			started <- struct{}{}
			n, _, err := cl.RangeCount(f.Domain())
			if err == nil && n != f.Len() {
				err = fmt.Errorf("drained query returned %d of %d records", n, f.Len())
			}
			results <- err
		}()
	}
	for i := 0; i < 4; i++ {
		<-started
	}
	time.Sleep(20 * time.Millisecond) // let the queries reach the disks
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := <-results; err != nil {
			t.Errorf("in-flight query during shutdown: %v", err)
		}
	}

	if _, err := net.DialTimeout("tcp", s.Addr().String(), 200*time.Millisecond); err == nil {
		t.Error("listener still accepting after Close")
	}
	s.Close() // idempotent
}

// TestServerGridStoreMismatch proves New refuses to serve a store written
// from a different grid file.
func TestServerGridStoreMismatch(t *testing.T) {
	_, dir := newTestLayout(t, 300, 2)
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	other, err := synth.Uniform2D(500, 99).Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(other, st, Config{}); err == nil {
		t.Error("mismatched grid accepted")
	}
}

// TestClientRetriesExhausted proves the client surfaces transport failures
// after its retry budget instead of hanging.
func TestClientRetriesExhausted(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { // accept and immediately hang up, forever
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	defer ln.Close()

	cl, err := NewClient(ClientConfig{
		Addr: ln.Addr().String(), Retries: 2, Backoff: time.Millisecond,
		RequestTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	_, _, err = cl.Point(geom.Point{1, 2})
	if err == nil {
		t.Fatal("request against hang-up server succeeded")
	}
	if !strings.Contains(err.Error(), "3 attempts") {
		t.Errorf("retry accounting missing from error: %v", err)
	}
}

// TestRetryDelayJitter proves backoff sleeps stay within the exponential
// window, never go non-positive, and actually vary between samples.
func TestRetryDelayJitter(t *testing.T) {
	const base = 25 * time.Millisecond
	for attempt := 1; attempt <= 4; attempt++ {
		window := base << (attempt - 1)
		seen := make(map[time.Duration]bool)
		for i := 0; i < 200; i++ {
			d := retryDelay(base, attempt)
			if d <= 0 || d > window {
				t.Fatalf("attempt %d: delay %v outside (0, %v]", attempt, d, window)
			}
			seen[d] = true
		}
		if len(seen) < 2 {
			t.Errorf("attempt %d: 200 samples produced no jitter", attempt)
		}
	}
	if d := retryDelay(base, 200); d <= 0 || d > base {
		t.Errorf("overflowed window not clamped: %v", d)
	}
}

// TestHTTPEndpoints exercises the optional /metrics, /healthz and
// /debug/pprof listener.
func TestHTTPEndpoints(t *testing.T) {
	s, f := newTestServer(t, 200, 2, Config{HTTPAddr: "127.0.0.1:0", Pprof: true})
	cl := newTestClient(t, s, ClientConfig{})
	if _, _, err := cl.RangeCount(f.Domain()); err != nil {
		t.Fatal(err)
	}

	get := func(path string) string {
		conn, err := net.Dial("tcp", s.HTTPAddr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		fmt.Fprintf(conn, "GET %s HTTP/1.0\r\n\r\n", path)
		var b strings.Builder
		buf := make([]byte, 4096)
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		for {
			n, err := conn.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return b.String()
	}

	metrics := get("/metrics")
	if !strings.Contains(metrics, `gridserver_queries_total{verb="range"} 1`) {
		t.Errorf("metrics missing range counter:\n%s", metrics)
	}
	if !strings.Contains(metrics, "gridserver_disk_bucket_fetches_total") {
		t.Errorf("metrics missing per-disk fetches:\n%s", metrics)
	}
	if !strings.Contains(metrics, "gridserver_cache_hits_total") ||
		!strings.Contains(metrics, "gridserver_cache_resident_bytes") {
		t.Errorf("metrics missing cache counters:\n%s", metrics)
	}
	health := get("/healthz")
	if !strings.Contains(health, `"status":"ok"`) {
		t.Errorf("healthz not ok:\n%s", health)
	}
	pprofOut := get("/debug/pprof/cmdline")
	if !strings.Contains(pprofOut, "200 OK") {
		t.Errorf("pprof endpoint not served:\n%.200s", pprofOut)
	}
}
