package server

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"pgridfile/internal/fault"
	"pgridfile/internal/geom"
	"pgridfile/internal/workload"
)

// TestTaggedEnvelopeRoundTrip covers the wire-level pipelining envelope:
// wrap/unwrap is a fixed point for both directions, and the decoder rejects
// everything that would let request ids drift.
func TestTaggedEnvelopeRoundTrip(t *testing.T) {
	req, err := EncodeRequest(Request{Verb: VerbPoint, Key: geom.Point{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []uint32{0, 1, 0xDEADBEEF, ^uint32(0)} {
		w, err := WrapTagged(id, req)
		if err != nil {
			t.Fatal(err)
		}
		if w.Verb != VerbTagged {
			t.Fatalf("request envelope verb = %#x, want %#x", w.Verb, VerbTagged)
		}
		gotID, inner, err := UnwrapTagged(w)
		if err != nil {
			t.Fatal(err)
		}
		if gotID != id || inner.Verb != req.Verb || !bytes.Equal(inner.Payload, req.Payload) {
			t.Fatalf("unwrap(wrap(%d)) = id %d verb %#x", id, gotID, inner.Verb)
		}
	}

	// Responses wrap into the reply-direction envelope.
	resp, err := EncodeResult(VerbCount, Result{Count: 3})
	if err != nil {
		t.Fatal(err)
	}
	w, err := WrapTagged(9, resp)
	if err != nil {
		t.Fatal(err)
	}
	if w.Verb != VerbTaggedReply {
		t.Fatalf("response envelope verb = %#x, want %#x", w.Verb, VerbTaggedReply)
	}
	if id, inner, err := UnwrapTagged(w); err != nil || id != 9 || inner.Verb != VerbCount {
		t.Fatalf("reply unwrap = %d %#x %v", id, inner.Verb, err)
	}

	// Nesting must be rejected in both directions.
	if _, err := WrapTagged(1, w); err == nil {
		t.Error("wrapping an envelope in an envelope accepted")
	}
	// Envelope too short to carry an id.
	if _, _, err := UnwrapTagged(Frame{Verb: VerbTagged, Payload: []byte{1, 2, 3}}); err == nil {
		t.Error("short envelope accepted")
	}
	// An envelope whose inner verb is itself an envelope.
	nested := make([]byte, taggedHdrLen)
	nested[4] = byte(VerbTagged)
	if _, _, err := UnwrapTagged(Frame{Verb: VerbTagged, Payload: nested}); err == nil {
		t.Error("nested inner envelope accepted")
	}
	// A request envelope around a response verb (wrong direction).
	backwards := make([]byte, taggedHdrLen)
	backwards[4] = byte(VerbCount)
	if _, _, err := UnwrapTagged(Frame{Verb: VerbTagged, Payload: backwards}); err == nil {
		t.Error("request envelope around a response verb accepted")
	}
	// Not an envelope at all.
	if _, _, err := UnwrapTagged(resp); err == nil {
		t.Error("unwrapping a bare frame accepted")
	}
}

// TestPipelinedEndToEnd is the pipelining acceptance test: clients keep many
// tagged requests in flight per connection, responses may complete out of
// order on the server, and every answer must still match its own query.
func TestPipelinedEndToEnd(t *testing.T) {
	s, f := newTestServer(t, 900, 4, Config{Faults: fault.NewRegistry(1)})
	cl := newTestClient(t, s, ClientConfig{Pipeline: 16, PoolSize: 2})

	// Stagger server-side completion so responses genuinely reorder: a
	// random store.read delay makes heavier queries overtake lighter ones.
	if _, err := cl.Fault(context.Background(), "store.read:delay=2ms:p=0.3"); err != nil {
		t.Fatal(err)
	}

	dom := f.Domain()
	queries := workload.SquareRange(dom, 0.05, 64, 5)
	var wg sync.WaitGroup
	errCh := make(chan error, len(queries))
	for i, q := range queries {
		wg.Add(1)
		go func(i int, q geom.Rect) {
			defer wg.Done()
			n, _, err := cl.RangeCount(q)
			if err != nil {
				errCh <- fmt.Errorf("query %d: %w", i, err)
				return
			}
			// The id-matching proof: under reordering, a misrouted reply
			// would answer a different rectangle's count.
			if want := f.RangeCount(q); n != want {
				errCh <- fmt.Errorf("query %d returned %d records, want %d (reply misrouted?)", i, n, want)
			}
		}(i, q)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	snap, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if snap.QueriesTotal < int64(len(queries)) {
		t.Errorf("server served %d queries, want >= %d", snap.QueriesTotal, len(queries))
	}
	// The writev path must have batched at least some adjacent responses:
	// strictly fewer write batches than frames written.
	if snap.WriteFrames < int64(len(queries)) {
		t.Errorf("write_frames = %d, want >= %d", snap.WriteFrames, len(queries))
	}
	if snap.WriteBatches == 0 || snap.WriteBatches > snap.WriteFrames {
		t.Errorf("write_batches = %d of %d frames", snap.WriteBatches, snap.WriteFrames)
	}
}

// TestPipelinedUnderFaults injects transient disk errors under a pipelined
// client: failures must surface as per-request ServerErrors on the request
// that hit them, while the connection keeps serving the rest.
func TestPipelinedUnderFaults(t *testing.T) {
	s, f := newTestServer(t, 600, 4, Config{Faults: fault.NewRegistry(7), FetchRetries: -1})
	cl := newTestClient(t, s, ClientConfig{Pipeline: 8, PoolSize: 1})
	if _, err := cl.Fault(context.Background(), "store.read:err:p=0.4"); err != nil {
		t.Fatal(err)
	}

	dom := f.Domain()
	queries := workload.SquareRange(dom, 0.05, 48, 11)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var failed, succeeded int
	for i, q := range queries {
		wg.Add(1)
		go func(i int, q geom.Rect) {
			defer wg.Done()
			n, _, err := cl.RangeCount(q)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				var se *ServerError
				if !strings.Contains(err.Error(), "injected") {
					t.Errorf("query %d: unexpected error kind: %v (%T)", i, err, se)
				}
				failed++
				return
			}
			succeeded++
			if want := f.RangeCount(q); n != want {
				t.Errorf("query %d returned %d, want %d", i, n, want)
			}
		}(i, q)
	}
	wg.Wait()
	if failed == 0 {
		t.Error("p=0.4 injected errors never fired")
	}
	if succeeded == 0 {
		t.Error("no query survived: errors should be per-request, not per-connection")
	}

	// The connection must still be usable after the chaos is cleared.
	if _, err := cl.Fault(context.Background(), "clear"); err != nil {
		t.Fatal(err)
	}
	for i, q := range queries[:8] {
		n, _, err := cl.RangeCount(q)
		if err != nil {
			t.Fatalf("post-chaos query %d: %v", i, err)
		}
		if want := f.RangeCount(q); n != want {
			t.Fatalf("post-chaos query %d returned %d, want %d", i, n, want)
		}
	}
}

// TestUntaggedCompat speaks the pre-pipelining protocol over a raw socket:
// bare frames, strictly one at a time, responses in FIFO order and untagged.
// This is the backward-compatibility guarantee for old clients.
func TestUntaggedCompat(t *testing.T) {
	s, f := newTestServer(t, 600, 4, Config{})
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	dom := f.Domain()
	for i, q := range workload.SquareRange(dom, 0.05, 8, 3) {
		fr, err := EncodeRequest(Request{Verb: VerbRange, Query: q, CountOnly: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteFrame(conn, fr); err != nil {
			t.Fatal(err)
		}
		resp, err := ReadFrame(conn)
		if err != nil {
			t.Fatal(err)
		}
		if isEnvelope(resp.Verb) {
			t.Fatalf("query %d: untagged request got enveloped response %#x", i, resp.Verb)
		}
		res, err := DecodeResult(resp)
		if err != nil {
			t.Fatal(err)
		}
		if want := f.RangeCount(q); res.Count != want {
			t.Fatalf("query %d: count %d, want %d", i, res.Count, want)
		}
	}
}

// TestUntaggedPipelinedWire sends several bare frames back to back without
// reading: the server must answer them in order (the reader executes
// untagged requests inline, preserving FIFO for legacy clients).
func TestUntaggedPipelinedWire(t *testing.T) {
	s, f := newTestServer(t, 600, 4, Config{})
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	queries := workload.SquareRange(f.Domain(), 0.05, 16, 9)
	var batch []byte
	for _, q := range queries {
		fr, err := EncodeRequest(Request{Verb: VerbRange, Query: q, CountOnly: true})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, fr); err != nil {
			t.Fatal(err)
		}
		batch = append(batch, buf.Bytes()...)
	}
	if _, err := conn.Write(batch); err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		resp, err := ReadFrame(conn)
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		res, err := DecodeResult(resp)
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if want := f.RangeCount(q); res.Count != want {
			t.Fatalf("response %d out of order: count %d, want %d", i, res.Count, want)
		}
	}
}

// TestTaggedWireErrors drives the tagged path over a raw socket and checks
// the server echoes ids verbatim — including on error replies — and fails
// the stream on malformed envelopes.
func TestTaggedWireErrors(t *testing.T) {
	s, f := newTestServer(t, 400, 2, Config{})

	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// A tagged garbage request must come back as a tagged error with the
	// same id, leaving the stream usable.
	send := func(id uint32, inner Frame) {
		t.Helper()
		w, err := WrapTagged(id, inner)
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteFrame(conn, w); err != nil {
			t.Fatal(err)
		}
	}
	send(77, Frame{Verb: VerbPoint, Payload: []byte{1, 2, 3}}) // truncated key
	resp, err := ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	id, inner, err := UnwrapTagged(resp)
	if err != nil {
		t.Fatalf("error reply not enveloped: %v", err)
	}
	if id != 77 || inner.Verb != VerbError {
		t.Fatalf("error reply id %d verb %#x, want 77/%#x", id, inner.Verb, VerbError)
	}

	// The stream survives a per-request failure: a valid tagged query after
	// the bad one still answers with its own id.
	q := f.Domain()
	fr, err := EncodeRequest(Request{Verb: VerbRange, Query: q, CountOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	send(78, fr)
	resp, err = ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	id, inner, err = UnwrapTagged(resp)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DecodeResult(inner)
	if err != nil {
		t.Fatal(err)
	}
	if id != 78 || res.Count != f.RangeCount(q) {
		t.Fatalf("id %d count %d, want 78/%d", id, res.Count, f.RangeCount(q))
	}

	// A structurally bad envelope (too short to hold an id) ends the stream.
	short := Frame{Verb: VerbTagged, Payload: []byte{1, 2}}
	if err := WriteFrame(conn, short); err != nil {
		t.Fatal(err)
	}
	resp, err = ReadFrame(conn)
	if err == nil {
		if resp.Verb != VerbError {
			t.Fatalf("malformed envelope answered with %#x, want error", resp.Verb)
		}
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := ReadFrame(conn); err == nil {
			t.Error("stream survived a malformed envelope")
		}
	}
}

// TestPipelinedStats exercises the admin verbs through the tagged path: the
// JSON-reply verbs must round-trip the envelope like the data verbs do.
func TestPipelinedStats(t *testing.T) {
	s, _ := newTestServer(t, 300, 2, Config{Faults: fault.NewRegistry(1)})
	cl := newTestClient(t, s, ClientConfig{Pipeline: 4})
	snap, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Disks != 2 {
		t.Errorf("stats over pipelined conn: disks = %d, want 2", snap.Disks)
	}
	if _, err := cl.Fault(context.Background(), "status"); err != nil {
		t.Errorf("fault status over pipelined conn: %v", err)
	}
}

// TestPipelineIDsOnWire sniffs the client's actual frames to prove distinct
// in-flight requests carry distinct ids (the precondition for everything
// else in this file).
func TestPipelineIDsOnWire(t *testing.T) {
	var wbuf []byte
	for i := 0; i < 4; i++ {
		fr, err := EncodeRequest(Request{Verb: VerbStats})
		if err != nil {
			t.Fatal(err)
		}
		wbuf, err = AppendRequestFrame(wbuf, Request{Verb: VerbStats}, uint32(i+1), true)
		if err != nil {
			t.Fatal(err)
		}
		_ = fr
	}
	// Parse the concatenated frames back and collect ids.
	r := bytes.NewReader(wbuf)
	seen := map[uint32]bool{}
	for {
		fr, err := ReadFrame(r)
		if err != nil {
			break
		}
		id, inner, err := UnwrapTagged(fr)
		if err != nil {
			t.Fatal(err)
		}
		if inner.Verb != VerbStats {
			t.Fatalf("inner verb %#x", inner.Verb)
		}
		if seen[id] {
			t.Fatalf("duplicate id %d on the wire", id)
		}
		seen[id] = true
	}
	if len(seen) != 4 {
		t.Fatalf("parsed %d tagged frames, want 4", len(seen))
	}
	// And the envelope header layout is what the doc promises:
	// u32 len | 0x40 | u32 id | inner verb | payload.
	if wbuf[4] != byte(VerbTagged) {
		t.Errorf("envelope verb byte = %#x", wbuf[4])
	}
	if id := binary.LittleEndian.Uint32(wbuf[5:9]); id != 1 {
		t.Errorf("first frame id = %d, want 1", id)
	}
}
