package server

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pgridfile/internal/workload"
)

// syncBuffer is a goroutine-safe log sink for the slow-query log.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// stepClock is a deterministic shared time source: every read advances it by
// a fixed step, so any start/end pair measures at least one step, concurrent
// readers see a strictly monotone clock, and measured durations depend only
// on how many times the code path read the clock — not on scheduler noise.
type stepClock struct {
	ns   atomic.Int64
	step int64
}

func (c *stepClock) now() time.Time {
	return time.Unix(0, c.ns.Add(c.step))
}

// TestTracingEndToEnd serves a traced workload and checks the full S23
// surface: every data query is traced, the stage histograms cover the hot
// path, the slow-query log emits one well-formed line per query, and the
// stage sum is commensurate with the measured latencies. The server and the
// store share an injected step clock, so every duration in the test is a
// deterministic count of clock reads rather than wall time.
func TestTracingEndToEnd(t *testing.T) {
	var log syncBuffer
	clk := &stepClock{step: 300} // ns per read: keeps single-step stages sub-µs
	s, f := newTestServer(t, 900, 4, Config{
		TraceSample:  1,
		TraceSlowLog: true,
		TraceSlow:    0, // log every traced query
		TraceLog:     &log,
		clock:        clk.now,
	})
	s.st.SetClock(clk.now)
	cl := newTestClient(t, s, ClientConfig{})

	dom := f.Domain()
	const queries = 40
	for i, q := range workload.SquareRange(dom, 0.1, queries, 3) {
		n, _, err := cl.RangeCount(q)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if want := f.RangeCount(q); n != want {
			t.Fatalf("query %d returned %d records, want %d", i, n, want)
		}
	}
	var key [2]float64
	f.Scan(func(k []float64, _ []byte) bool { key = [2]float64{k[0], k[1]}; return false })
	if _, _, err := cl.Point(key[:]); err != nil {
		t.Fatal(err)
	}

	snap, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Traced != queries+1 {
		t.Errorf("traced = %d, want %d", snap.Traced, queries+1)
	}
	if snap.Stages == nil {
		t.Fatal("snapshot carries no stage summaries despite tracing")
	}
	for _, name := range stageNames {
		q, ok := snap.Stages[name]
		if !ok {
			t.Errorf("stage %q missing from STATS", name)
			continue
		}
		if q.Count != snap.Traced {
			t.Errorf("stage %q observed %d queries, want %d", name, q.Count, snap.Traced)
		}
	}
	// The hot path really ran: translation, cache bookkeeping and encode
	// take nonzero time on every query; pread touched the disk at least once.
	for _, name := range []string{"translate", "cache", "encode", "pread"} {
		if snap.Stages[name].Max == 0 {
			t.Errorf("stage %q never recorded any time", name)
		}
	}
	// Stage sums must explain the measured latency. The step clock drives
	// both sides, so the untraced slack between stages is a handful of clock
	// reads and the remaining error is log2-bin quantile rounding (√2 on
	// each side): sum of stage p50s within 2x of the end-to-end p50. Disk
	// stages overlap across spindles, so the sum may also exceed elapsed.
	sum := 0.0
	for _, name := range stageNames {
		sum += snap.Stages[name].P50 / 1e3 // stage histograms are ns
	}
	if p50 := snap.LatencyMicros.P50; sum < p50/2 {
		t.Errorf("stage p50 sum %.1fµs explains less than half of end-to-end p50 %.1fµs", sum, p50)
	}
	// The derived µs view must be the ns view scaled, not a second histogram
	// that could drift. Compare with a 1-ulp tolerance: ×1e-3 and ÷1e3
	// round differently.
	sameScaled := func(us, ns float64) bool {
		return math.Abs(us-ns/1e3) <= 1e-12*math.Abs(us)
	}
	for _, name := range stageNames {
		ns, us := snap.Stages[name], snap.StagesMicros[name]
		if us.Count != ns.Count || !sameScaled(us.P50, ns.P50) || !sameScaled(us.Max, ns.Max) {
			t.Errorf("stage %q micros view %+v is not nanos %+v / 1e3", name, us, ns)
		}
	}
	// Nanosecond resolution is the point of the change: with a µs histogram
	// every sub-µs stage collapsed into bin 0 and reported a flat 0.5. The
	// cheap always-run stages (translate, encode) must now resolve to
	// something a real clock could produce — at least tens of ns.
	for _, name := range []string{"translate", "encode"} {
		if p50 := snap.Stages[name].P50; p50 < 1 {
			t.Errorf("stage %q p50 = %gns: ns histograms should resolve sub-µs stages", name, p50)
		}
	}

	// One slow-log line per traced query, structured and parseable.
	lines := strings.Split(strings.TrimSpace(log.String()), "\n")
	if int64(len(lines)) != snap.Traced {
		t.Fatalf("slow log has %d lines, want %d:\n%s", len(lines), snap.Traced, log.String())
	}
	for _, ln := range lines {
		if !strings.HasPrefix(ln, "gridserver trace verb=") {
			t.Fatalf("malformed slow-log line: %q", ln)
		}
		for _, field := range []string{"elapsed=", "buckets=", "pages=", "degraded=", "leads="} {
			if !strings.Contains(ln, " "+field) {
				t.Errorf("slow-log line missing %s: %q", field, ln)
			}
		}
		for _, name := range stageNames {
			if !strings.Contains(ln, " "+name+"=") {
				t.Errorf("slow-log line missing stage %s: %q", name, ln)
			}
		}
	}
}

// TestTraceSampling checks the 1-in-N sampler: with TraceSample=4 roughly a
// quarter of queries are traced — exactly every 4th, since the counter is
// deterministic under a single client.
func TestTraceSampling(t *testing.T) {
	s, f := newTestServer(t, 300, 2, Config{TraceSample: 4})
	cl := newTestClient(t, s, ClientConfig{})
	var key [2]float64
	f.Scan(func(k []float64, _ []byte) bool { key = [2]float64{k[0], k[1]}; return false })
	const queries = 40
	for i := 0; i < queries; i++ {
		if _, _, err := cl.Point(key[:]); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(queries / 4); snap.Traced != want {
		t.Errorf("traced = %d of %d, want %d", snap.Traced, queries, want)
	}
}

// TestTraceSlowThreshold: with a high threshold, queries are traced (stage
// histograms fill) but nothing is logged.
func TestTraceSlowThreshold(t *testing.T) {
	var log syncBuffer
	s, f := newTestServer(t, 300, 2, Config{
		TraceSample:  1,
		TraceSlowLog: true,
		TraceSlow:    time.Hour,
		TraceLog:     &log,
	})
	cl := newTestClient(t, s, ClientConfig{})
	if _, _, err := cl.RangeCount(f.Domain()); err != nil {
		t.Fatal(err)
	}
	snap, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Traced == 0 {
		t.Error("nothing traced despite TraceSample=1")
	}
	if got := log.String(); got != "" {
		t.Errorf("sub-threshold query logged: %q", got)
	}
}

// TestTracingOffByDefault: the zero config neither traces nor logs.
func TestTracingOffByDefault(t *testing.T) {
	var log syncBuffer
	s, f := newTestServer(t, 300, 2, Config{TraceLog: &log})
	cl := newTestClient(t, s, ClientConfig{})
	if _, _, err := cl.RangeCount(f.Domain()); err != nil {
		t.Fatal(err)
	}
	snap, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Traced != 0 || snap.Stages != nil {
		t.Errorf("untraced server reported traced=%d stages=%v", snap.Traced, snap.Stages)
	}
	if got := log.String(); got != "" {
		t.Errorf("untraced server logged: %q", got)
	}
}
