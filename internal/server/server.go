package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	rpprof "runtime/pprof"
	rtrace "runtime/trace"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pgridfile/internal/cache"
	"pgridfile/internal/fault"
	"pgridfile/internal/geom"
	"pgridfile/internal/gridfile"
	"pgridfile/internal/store"
)

// Config tunes a Server. The zero value gets sensible defaults from
// (*Config).withDefaults.
type Config struct {
	// Addr is the TCP listen address; default "127.0.0.1:0" (ephemeral).
	Addr string
	// HTTPAddr, when non-empty, additionally serves /metrics and /healthz
	// over HTTP on that address.
	HTTPAddr string
	// MaxInflight bounds concurrently executing queries (admission
	// control): excess requests wait, exerting backpressure on their
	// connections, and are rejected when their deadline expires while
	// queued. Default 64.
	MaxInflight int
	// QueryTimeout is the per-query deadline covering admission wait and
	// execution. Default 5s.
	QueryTimeout time.Duration
	// IdleTimeout closes connections with no traffic. Default 2m.
	IdleTimeout time.Duration
	// DrainTimeout bounds how long Close waits for in-flight queries
	// before force-closing connections. Default 5s.
	DrainTimeout time.Duration
	// CacheBytes bounds the sharded LRU cache of decoded buckets fronting
	// the page store. 0 selects the default (64 MiB); negative disables
	// caching entirely.
	CacheBytes int64
	// DisableCoalesce turns off coalesced per-disk reads (store.ReadBuckets)
	// and falls back to one ReadBucket call per bucket — the PR 1 behaviour,
	// kept togglable so the bench can measure the coalescing win.
	DisableCoalesce bool
	// DisableNoDelay leaves Nagle's algorithm enabled on accepted
	// connections. By default the server sets TCP_NODELAY explicitly: the
	// protocol's frames are small and latency-sensitive, and the batched
	// writev path already coalesces adjacent responses into one syscall, so
	// Nagle only adds delayed-ACK stalls on top (see DESIGN S26).
	DisableNoDelay bool
	// PipelineDepth bounds, per connection, both the response queue between
	// the read and write sides and the number of tagged (pipelined) requests
	// executing concurrently. Beyond it the reader stops draining the
	// socket, backpressuring the client. Default 64.
	PipelineDepth int
	// Pprof, together with HTTPAddr, additionally exposes the standard
	// net/http/pprof profiling handlers under /debug/pprof/ on the same
	// mux, so the serving path can be profiled in place.
	Pprof bool
	// Writable opens the layout for online mutation (OpenDir only): the
	// store is opened via store.OpenWritable — replaying any write-ahead
	// journals left by a crash — and the INSERT/DELETE verbs are accepted.
	// Requires a checksummed layout. Read-only servers reject the write
	// verbs with a protocol error.
	Writable bool

	// Faults is the failpoint registry threaded into the store's read path
	// and the FAULT admin verb. nil gets a fresh (disarmed) registry, so
	// the admin verb always works; injection costs one atomic load until a
	// rule is armed.
	Faults *fault.Registry
	// FetchTimeout bounds one disk-batch read attempt, so a stalled disk
	// is abandoned (and possibly retried) instead of holding the query to
	// its full deadline. 0 disables the per-attempt bound.
	FetchTimeout time.Duration
	// FetchRetries is how many times a failed disk batch is retried when
	// the failure is transient (injected faults, per-attempt timeouts).
	// Default 2; -1 disables retries.
	FetchRetries int
	// FetchBackoff is the base of the exponential full-jitter backoff
	// between batch retries. Default 2ms.
	FetchBackoff time.Duration
	// Degraded turns disk-level transient failures (after retries) into
	// partial answers — the response carries the degraded flag and a
	// missed-disk count instead of an error. Off by default: the zero
	// value preserves fail-fast behaviour.
	Degraded bool
	// VerifyChecksums validates every page's CRC-32C during decode. A
	// detected mismatch is treated like a transient disk failure: the read
	// fails over to a surviving replica (r >= 2) or is absorbed as a
	// degraded answer, instead of silently serving corrupt records.
	// Requires a checksummed layout.
	VerifyChecksums bool
	// ScrubInterval, when positive, runs a background integrity scrub of
	// the whole layout every interval: each pass verifies every page copy
	// against its checksum and repairs corrupt copies from an intact
	// replica (see store.Scrub). Requires a checksummed layout. ScrubNow
	// runs one pass synchronously regardless of this setting.
	ScrubInterval time.Duration
	// ScrubPause is slept between buckets within one scrub pass, keeping a
	// background scrub low-priority next to live queries. 0 scrubs flat out.
	ScrubPause time.Duration

	// TraceSample enables per-query stage tracing (DESIGN S23) for every
	// n-th data query: 1 traces everything, 0 (the default) disables
	// tracing, and the disabled path allocates nothing. Traced queries feed
	// the per-stage histograms in STATS//metrics, carry pprof labels, and
	// qualify for the slow-query log.
	TraceSample int
	// TraceSlowLog enables the slow-query log: every traced query whose
	// elapsed time is at least TraceSlow prints one structured line to
	// TraceLog. It is a separate switch so a zero TraceSlow ("log every
	// traced query") is expressible while the zero Config stays silent.
	TraceSlowLog bool
	// TraceSlow is the slow-query log threshold.
	TraceSlow time.Duration
	// TraceLog receives slow-query lines; default os.Stderr.
	TraceLog io.Writer

	// slowFetch artificially delays every bucket fetch; test hook for
	// exercising deadlines, admission control and shutdown under load.
	slowFetch time.Duration
	// clock is the time source behind latency and stage-trace measurement;
	// test hook for deterministic timing assertions. Defaults to time.Now.
	clock func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 64
	}
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = 5 * time.Second
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 2 * time.Minute
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 64 << 20
	}
	if c.CacheBytes < 0 {
		c.CacheBytes = 0 // disabled
	}
	if c.PipelineDepth <= 0 {
		c.PipelineDepth = 64
	}
	if c.Faults == nil {
		c.Faults = fault.NewRegistry(1)
	}
	if c.FetchRetries == 0 {
		c.FetchRetries = 2
	}
	if c.FetchRetries < 0 {
		c.FetchRetries = 0 // disabled
	}
	if c.FetchBackoff <= 0 {
		c.FetchBackoff = 2 * time.Millisecond
	}
	if c.TraceLog == nil {
		c.TraceLog = os.Stderr
	}
	if c.clock == nil {
		c.clock = time.Now
	}
	return c
}

// fetchReq asks a disk goroutine for a batch of buckets, all resident on
// that disk. Batching is what lets the disk loop coalesce adjacent pages
// into single reads.
type fetchReq struct {
	ids  []int32
	ctx  context.Context  // the owning query; cancelled fetches are skipped
	resp chan<- fetchResp // buffered by the submitter; never blocks
	tr   *Trace           // the owning query's stage trace; nil when untraced
	enq  time.Time        // submit time, for the fetch_wait stage (zero when untraced)
}

type fetchResp struct {
	ids   []int32 // the requested batch (echoed for error accounting)
	disk  int     // which disk served (or failed) the batch
	got   map[int32][]geom.Point
	pages int
	err   error
}

// Server is a running query service: an acceptor, one handler goroutine per
// connection, and one I/O goroutine per disk file. The grid file acts as
// the coordinator's scales+directory; record data is fetched from the page
// store with real file I/O.
type Server struct {
	cfg    Config
	grid   *gridfile.File
	st     *store.Store
	met    *Metrics
	faults *fault.Registry

	// bcache caches decoded buckets in front of the page store (nil when
	// disabled). Directory translation itself needs no lock: the grid
	// file's query paths are safe for concurrent readers.
	bcache *cache.Cache

	ln      net.Listener
	httpLn  net.Listener
	httpSrv *http.Server

	sem     chan struct{}
	fetchCh []chan fetchReq
	fetchWg sync.WaitGroup

	// replicated is st.Replicas() > 1: bucket reads choose the least-loaded
	// owner disk and transient per-disk failures fail over to surviving
	// owners before degrading. diskBytes/writeAmp describe the layout's
	// storage overhead (computed once at startup, reported in STATS).
	replicated bool
	diskBytes  int64
	writeAmp   float64

	// writable mirrors st.Writable(): the INSERT/DELETE verbs are accepted
	// and every directory translation runs under the store's grid read-lock,
	// since the grid mutates underneath concurrent queries.
	writable bool

	traceSeq atomic.Uint64 // data-query counter driving trace sampling
	traceMu  sync.Mutex    // serializes slow-query log lines

	mu        sync.Mutex // guards conns, closed
	conns     map[net.Conn]struct{}
	closed    bool
	ownsStore bool

	acceptWg sync.WaitGroup
	connWg   sync.WaitGroup
	scrubWg  sync.WaitGroup
	done     chan struct{}
}

// New starts a server over an already-open grid file (scales + directory)
// and page store. The grid file must be the one the layout was written
// from: every stored bucket is cross-checked against the directory before
// serving starts. The caller keeps ownership of grid and st.
func New(grid *gridfile.File, st *store.Store, cfg Config) (*Server, error) {
	m := st.Manifest()
	if grid.Dims() != m.Dims {
		return nil, fmt.Errorf("server: grid is %d-D, store is %d-D", grid.Dims(), m.Dims)
	}
	views := grid.Buckets()
	if len(views) != len(m.Buckets) {
		return nil, fmt.Errorf("server: grid has %d buckets, store has %d (layout from a different grid file?)",
			len(views), len(m.Buckets))
	}
	for _, v := range views {
		pl, ok := st.Placement(v.ID)
		if !ok {
			return nil, fmt.Errorf("server: bucket %d missing from store", v.ID)
		}
		if pl.Recs != v.Records {
			return nil, fmt.Errorf("server: bucket %d holds %d records in store, %d in grid",
				v.ID, pl.Recs, v.Records)
		}
	}

	cfg = cfg.withDefaults()
	if (cfg.VerifyChecksums || cfg.ScrubInterval > 0) && !st.Checksummed() {
		return nil, fmt.Errorf("server: layout has no page checksums to verify (re-lay it out with a current gridtool)")
	}
	s := &Server{
		cfg:     cfg,
		grid:    grid,
		st:      st,
		met:     newMetrics(m.Disks),
		faults:  cfg.Faults,
		sem:     make(chan struct{}, cfg.MaxInflight),
		fetchCh: make([]chan fetchReq, m.Disks),
		conns:   make(map[net.Conn]struct{}),
		done:    make(chan struct{}),
	}
	st.SetFaults(s.faults)
	if cfg.VerifyChecksums {
		st.SetVerify(true)
	}
	s.writable = st.Writable()
	if s.writable && st.Grid() != grid {
		return nil, errors.New("server: a writable store must be served from its own grid (store.Grid())")
	}
	if cfg.CacheBytes > 0 {
		s.bcache = cache.New(cfg.CacheBytes, 0)
	}
	s.replicated = st.Replicas() > 1
	if sizes, err := st.DiskSizes(); err == nil {
		var totalPages, uniquePages int64
		for _, n := range sizes {
			totalPages += n
		}
		for _, pl := range m.Buckets {
			uniquePages += int64(pl.Pages)
		}
		s.diskBytes = totalPages * int64(m.PageBytes)
		if uniquePages > 0 {
			s.writeAmp = float64(totalPages) / float64(uniquePages)
		}
	}

	// One I/O goroutine per disk file: fetches on the same disk serialize
	// (one head per spindle, as in the paper's model) while distinct disks
	// proceed in parallel — this is where declustering quality becomes
	// real wall-clock parallelism.
	for d := range s.fetchCh {
		ch := make(chan fetchReq, 4*cfg.MaxInflight)
		s.fetchCh[d] = ch
		s.fetchWg.Add(1)
		go s.diskLoop(d, ch)
	}

	if cfg.ScrubInterval > 0 {
		s.scrubWg.Add(1)
		go s.scrubLoop()
	}

	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		s.stopFetchers()
		close(s.done)
		s.scrubWg.Wait()
		return nil, err
	}
	s.ln = ln
	s.acceptWg.Add(1)
	go s.acceptLoop()

	if cfg.HTTPAddr != "" {
		if err := s.startHTTP(cfg.HTTPAddr); err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}

// OpenDir opens a layout directory written by store.Write (which embeds the
// grid file as grid.grd) and serves it; Close releases the store. With
// cfg.Writable the store is opened for online mutation — crash-left journals
// are replayed before serving starts — and the server serves directly from
// the store's own (mutable) grid.
func OpenDir(dir string, cfg Config) (*Server, error) {
	var st *store.Store
	var err error
	if cfg.Writable {
		st, err = store.OpenWritable(dir)
	} else {
		st, err = store.Open(dir)
	}
	if err != nil {
		return nil, err
	}
	grid := st.Grid()
	if grid == nil {
		grid, err = store.OpenGrid(dir)
		if err != nil {
			st.Close()
			return nil, fmt.Errorf("server: %w (layouts written before grid embedding must be re-laid out)", err)
		}
	}
	s, err := New(grid, st, cfg)
	if err != nil {
		st.Close()
		return nil, err
	}
	s.ownsStore = true
	return s, nil
}

// Addr returns the TCP address the server listens on.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// HTTPAddr returns the metrics endpoint address, or nil if disabled.
func (s *Server) HTTPAddr() net.Addr {
	if s.httpLn == nil {
		return nil
	}
	return s.httpLn.Addr()
}

// Snapshot returns the server's current statistics.
func (s *Server) Snapshot() Snapshot {
	snap := s.met.snapshot(len(s.sem))
	snap.Dims = s.grid.Dims()
	snap.Disks = s.st.Manifest().Disks
	snap.Domain = s.st.Manifest().Domain
	snap.Replicas = s.st.Replicas()
	snap.DiskBytes = s.diskBytes
	snap.WriteAmp = s.writeAmp
	snap.FaultInjected = s.faults.Total()
	if s.bcache != nil {
		st := s.bcache.Stats()
		snap.Cache = &st
	}
	if s.writable {
		wc := s.st.WriteCounters()
		snap.Writes = &wc
	}
	return snap
}

// ScrubNow runs one synchronous integrity scrub over the layout (see
// store.Scrub) and folds its counts into the scrub_pages / scrub_corrupt /
// scrub_repaired counters. The background loop started by ScrubInterval
// calls it on every tick; tests and harnesses call it directly for a
// deterministic pass.
func (s *Server) ScrubNow(ctx context.Context) (store.ScrubStats, error) {
	st, err := s.st.Scrub(ctx, s.cfg.ScrubPause)
	s.met.scrubPages.Add(st.Pages)
	s.met.scrubCorrupt.Add(st.Corrupt)
	s.met.scrubRepaired.Add(st.Repaired)
	return st, err
}

// scrubLoop is the low-priority background scrubber: one full pass per
// ScrubInterval tick, cancelled promptly on shutdown.
func (s *Server) scrubLoop() {
	defer s.scrubWg.Done()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-s.done
		cancel()
	}()
	t := time.NewTicker(s.cfg.ScrubInterval)
	defer t.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-t.C:
			s.ScrubNow(ctx)
		}
	}
}

// FaultStatus is the JSON payload of a VerbFaultReply: the registry's seed,
// lifetime injection count, and every armed rule with its counters.
type FaultStatus struct {
	Seed     int64              `json:"seed"`
	Injected int64              `json:"injected_total"`
	Sites    []fault.SiteStatus `json:"sites,omitempty"`
}

// handleFault executes one FAULT admin command: "status" reports the armed
// rules, "clear" disarms them all, and anything else is parsed as a fault
// spec and armed on top of the current rules. Every command answers with
// the post-command status.
func (s *Server) handleFault(cmd string) ([]byte, error) {
	switch cmd {
	case "status":
	case "clear":
		s.faults.Clear()
	default:
		if err := s.faults.SetSpec(cmd); err != nil {
			return nil, err
		}
	}
	return json.Marshal(FaultStatus{
		Seed:     s.faults.Seed(),
		Injected: s.faults.Total(),
		Sites:    s.faults.Status(),
	})
}

func (s *Server) startHTTP(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		s.Snapshot().writePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"status":         "ok",
			"uptime_seconds": time.Since(s.met.start).Seconds(),
		})
	})
	if s.cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.httpLn = ln
	s.httpSrv = &http.Server{Handler: mux}
	go s.httpSrv.Serve(ln)
	return nil
}

func (s *Server) acceptLoop() {
	defer s.acceptWg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.connWg.Add(1)
		go s.handleConn(c)
	}
}

func (s *Server) dropConn(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	c.Close()
}

// respBufPool pools fully encoded response frames on their way from a
// dispatching goroutine to the connection writer. Buffers above
// maxPooledRespBuf are dropped on return so one huge point-set reply cannot
// pin memory for the life of the pool.
var respBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 512)
	return &b
}}

const maxPooledRespBuf = 64 << 10

func getRespBuf() *[]byte { return respBufPool.Get().(*[]byte) }

func putRespBuf(bp *[]byte) {
	if cap(*bp) > maxPooledRespBuf {
		return
	}
	respBufPool.Put(bp)
}

// connReadBufBytes sizes the per-connection buffered reader. Requests are
// tens of bytes, so one read syscall typically drains a whole pipeline
// window instead of paying two syscalls (header + payload) per frame.
const connReadBufBytes = 16 << 10

// maxWriteBatch bounds how many queued responses one writev submits.
const maxWriteBatch = 64

// handleConn serves one client connection with decoupled read and write
// sides (DESIGN S26). The reader decodes frames and dispatches them; fully
// encoded responses flow through a bounded queue to a writer goroutine that
// coalesces adjacent responses into a single writev. Untagged requests are
// executed inline in the reader, which preserves the strict
// one-request/one-response ordering pre-pipelining clients rely on; tagged
// (pipelined) requests execute concurrently — up to PipelineDepth per
// connection — and may complete out of order, which is exactly what the
// echoed request id is for.
//
// A frame-level error (desynchronized or hostile stream) is answered and
// closes the connection; a request-level error is answered and the
// connection kept.
func (s *Server) handleConn(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok && !s.cfg.DisableNoDelay {
		tc.SetNoDelay(true)
	}
	depth := s.cfg.PipelineDepth
	respCh := make(chan *[]byte, depth)
	writerDone := make(chan struct{})
	var writeFailed atomic.Bool
	go s.connWriter(c, respCh, &writeFailed, writerDone)

	// Tagged requests execute on a per-connection worker pool, grown lazily
	// up to depth goroutines. The work channel is unbuffered, so when every
	// worker is busy the reader blocks here — that bounds both concurrent
	// execution and (since each worker holds at most one encoded response)
	// the number of responses ever in flight, and enqueueing can never
	// deadlock against the queue bound.
	work := make(chan taggedWork)
	workers := 0
	var inflight sync.WaitGroup

	defer s.connWg.Done()
	defer s.dropConn(c)
	defer func() {
		// Teardown order matters: release the workers (they hold references
		// to respCh), wait for them to drain, close the queue, and only
		// after the writer has flushed and exited close the connection.
		close(work)
		inflight.Wait()
		close(respCh)
		<-writerDone
	}()

	// sendError enqueues an error reply for stream-level failures that have
	// no decodable request behind them.
	sendError := func(msg string) {
		bp := getRespBuf()
		*bp = appendErrorFrame((*bp)[:0], msg, 0, false)
		respCh <- bp
	}

	br := bufio.NewReaderSize(c, connReadBufBytes)
	// Frames are read into pooled buffers. An untagged frame is served inline
	// and its buffer reused for the next read; a tagged frame's buffer moves
	// to the worker, which recycles it once the request is decoded and served.
	rbuf := getRespBuf()
	defer func() { putRespBuf(rbuf) }()
	for {
		c.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		f, err := readFrameBuf(br, rbuf)
		if err != nil {
			if errors.Is(err, ErrFrameTooBig) || errors.Is(err, ErrEmptyFrame) {
				s.met.errors.Add(1)
				sendError(err.Error())
			}
			return
		}
		if writeFailed.Load() {
			return
		}
		if f.Verb == VerbTagged {
			id, inner, uerr := UnwrapTagged(f)
			if uerr != nil {
				// A malformed envelope means ids can no longer be trusted;
				// treat it like a desynchronized stream.
				s.met.errors.Add(1)
				sendError(uerr.Error())
				return
			}
			tw := taggedWork{id: id, f: inner, buf: rbuf}
			select {
			case work <- tw:
			default:
				if workers < depth {
					workers++
					inflight.Add(1)
					go s.taggedWorker(work, respCh, &inflight)
				}
				select {
				case work <- tw:
				case <-s.done:
					return
				}
			}
			rbuf = getRespBuf() // the worker owns the old buffer now
		} else {
			bp := getRespBuf()
			*bp = s.serveFrame((*bp)[:0], f, 0, false)
			respCh <- bp
		}
		select {
		case <-s.done:
			return // draining: finish the in-flight replies, then hang up
		default:
		}
	}
}

// taggedWork is one pipelined request in flight from a connection's reader to
// its worker pool: the decoded envelope plus the pooled buffer backing the
// frame's payload, recycled by the worker after serving.
type taggedWork struct {
	id  uint32
	f   Frame
	buf *[]byte
}

// taggedWorker serves tagged requests for one connection until the work
// channel closes. Workers never block each other: each serves one request at
// a time and parks on the (bounded) response queue only while the writer
// drains.
func (s *Server) taggedWorker(work <-chan taggedWork, respCh chan<- *[]byte, inflight *sync.WaitGroup) {
	defer inflight.Done()
	for tw := range work {
		bp := getRespBuf()
		*bp = s.serveFrame((*bp)[:0], tw.f, tw.id, true)
		putRespBuf(tw.buf)
		respCh <- bp
	}
}

// connWriter drains one connection's response queue. Each pass takes
// everything immediately available (up to maxWriteBatch) and submits it as a
// single writev via net.Buffers, so under pipelined load adjacent responses
// coalesce into one syscall instead of one each. After a write error the
// writer keeps draining and recycling buffers — dispatchers must never block
// on a dead connection — and closes the conn to unblock the reader.
func (s *Server) connWriter(c net.Conn, respCh <-chan *[]byte, failed *atomic.Bool, done chan<- struct{}) {
	defer close(done)
	batch := make([]*[]byte, 0, maxWriteBatch)
	iov := make(net.Buffers, 0, maxWriteBatch)
	for {
		bp, ok := <-respCh
		if !ok {
			return
		}
		batch = append(batch[:0], bp)
		open := true
	drain:
		for len(batch) < maxWriteBatch {
			select {
			case bp, ok := <-respCh:
				if !ok {
					open = false
					break drain
				}
				batch = append(batch, bp)
			default:
				break drain
			}
		}
		if !failed.Load() {
			// WriteTo consumes its receiver, so rebuild the iovec from the
			// batch each pass; the buffers themselves are not copied.
			iov = iov[:0]
			for _, b := range batch {
				iov = append(iov, *b)
			}
			c.SetWriteDeadline(time.Now().Add(s.cfg.QueryTimeout))
			if _, err := iov.WriteTo(c); err != nil {
				failed.Store(true)
				c.Close()
			} else {
				s.met.writeBatches.Add(1)
				s.met.writeFrames.Add(int64(len(batch)))
			}
		}
		for _, b := range batch {
			putRespBuf(b)
		}
		if !open {
			return
		}
	}
}

// serveFrame decodes, admits, executes and encodes one request, appending
// the complete wire-ready response frame onto buf — tagged with the echoed
// request id when the request arrived in a pipelining envelope.
func (s *Server) serveFrame(buf []byte, f Frame, id uint32, tagged bool) []byte {
	req, err := DecodeRequest(f)
	if err != nil {
		s.met.errors.Add(1)
		return appendErrorFrame(buf, err.Error(), id, tagged)
	}

	// appendReply frames a pre-marshalled admin reply body.
	appendReply := func(verb Verb, body []byte) []byte {
		out, start := beginFrame(buf, verb, id, tagged)
		out = append(out, body...)
		out, err := endFrame(out, start)
		if err != nil {
			s.met.errors.Add(1)
			return appendErrorFrame(out, err.Error(), id, tagged)
		}
		return out
	}

	// The STATS and FAULT verbs bypass admission control so operators can
	// observe — and heal — a saturated or fault-wedged server.
	if req.Verb == VerbStats {
		s.met.queries[verbIndex(VerbStats)].Add(1)
		body, err := json.Marshal(s.Snapshot())
		if err != nil {
			s.met.errors.Add(1)
			return appendErrorFrame(buf, err.Error(), id, tagged)
		}
		return appendReply(VerbStatsReply, body)
	}
	if req.Verb == VerbFault {
		s.met.queries[verbIndex(VerbFault)].Add(1)
		body, err := s.handleFault(req.FaultCmd)
		if err != nil {
			s.met.errors.Add(1)
			return appendErrorFrame(buf, err.Error(), id, tagged)
		}
		return appendReply(VerbFaultReply, body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.QueryTimeout)
	defer cancel()

	tr := s.acquireTrace()
	admitStart := s.traceNow(tr)

	// Admission control: at most MaxInflight queries execute; the rest
	// wait here, which backpressures their connections instead of
	// spawning unbounded work. A query turned away here was never
	// admitted — that is a rejection, distinct from the deadline_exceeded
	// counter below, which covers queries that ran and expired mid-flight.
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-ctx.Done():
		releaseTrace(tr)
		s.met.rejected.Add(1)
		return appendErrorFrame(buf, "server busy: admission queue full past deadline", id, tagged)
	case <-s.done:
		releaseTrace(tr)
		return appendErrorFrame(buf, "server shutting down", id, tagged)
	}
	s.traceSince(tr, stageAdmission, admitStart)

	start := s.cfg.clock()
	res, err := s.executeTraced(ctx, req, tr)
	if err != nil {
		s.finishTrace(tr, req.Verb, s.cfg.clock().Sub(start), res.Info, err)
		if ctx.Err() != nil {
			s.met.deadlineExceeded.Add(1)
			return appendErrorFrame(buf, "deadline exceeded: "+err.Error(), id, tagged)
		}
		s.met.errors.Add(1)
		return appendErrorFrame(buf, err.Error(), id, tagged)
	}
	res.Info.Elapsed = s.cfg.clock().Sub(start)
	s.met.queries[verbIndex(req.Verb)].Add(1)
	if res.Info.Degraded {
		s.met.degraded.Add(1)
	}
	s.met.latency.observe(float64(res.Info.Elapsed.Microseconds()))
	s.met.fetches.observe(float64(res.Info.Buckets))

	verb := VerbPoints
	switch {
	case req.Verb == VerbRange && req.CountOnly:
		verb = VerbCount
	case req.Verb == VerbInsert || req.Verb == VerbDelete:
		verb = VerbWriteOK
	}
	out, fstart := beginFrame(buf, verb, id, tagged)
	encStart := s.traceNow(tr)
	out, err = AppendResult(out, verb, res)
	s.traceSince(tr, stageEncode, encStart)
	if err != nil {
		s.finishTrace(tr, req.Verb, res.Info.Elapsed, res.Info, err)
		s.met.errors.Add(1)
		return appendErrorFrame(buf[:fstart], err.Error(), id, tagged)
	}
	out, err = endFrame(out, fstart)
	if err != nil {
		s.finishTrace(tr, req.Verb, res.Info.Elapsed, res.Info, err)
		s.met.errors.Add(1)
		return appendErrorFrame(out, err.Error(), id, tagged)
	}
	s.finishTrace(tr, req.Verb, res.Info.Elapsed, res.Info, nil)
	return out
}

// executeTraced runs execute, and — only when the query carries a trace —
// under pprof labels (verb, degraded-mode) so CPU profiles of a live server
// split by query shape. Untraced queries take the plain path and pay for
// neither the labels nor the context allocation behind them.
func (s *Server) executeTraced(ctx context.Context, req Request, tr *Trace) (res Result, err error) {
	if tr == nil {
		return s.execute(ctx, req, nil)
	}
	deg := "off"
	if s.cfg.Degraded {
		deg = "on"
	}
	rpprof.Do(ctx, rpprof.Labels("verb", verbName(req.Verb), "degraded", deg),
		func(ctx context.Context) {
			res, err = s.execute(ctx, req, tr)
		})
	return res, err
}

func (s *Server) execute(ctx context.Context, req Request, tr *Trace) (Result, error) {
	dims := s.grid.Dims()
	switch req.Verb {
	case VerbPoint:
		if len(req.Key) != dims {
			return Result{}, fmt.Errorf("key is %d-D, grid is %d-D", len(req.Key), dims)
		}
		return s.pointQuery(ctx, tr, req.Key)
	case VerbRange:
		if len(req.Query) != dims {
			return Result{}, fmt.Errorf("query is %d-D, grid is %d-D", len(req.Query), dims)
		}
		return s.rangeQuery(ctx, tr, req.Query, req.CountOnly)
	case VerbPartial:
		if len(req.Vals) != dims {
			return Result{}, fmt.Errorf("query is %d-D, grid is %d-D", len(req.Vals), dims)
		}
		return s.partialQuery(ctx, tr, req.Vals)
	case VerbKNN:
		if len(req.Key) != dims {
			return Result{}, fmt.Errorf("key is %d-D, grid is %d-D", len(req.Key), dims)
		}
		return s.knnQuery(ctx, tr, req.Key, req.K)
	case VerbInsert, VerbDelete:
		if len(req.Key) != dims {
			return Result{}, fmt.Errorf("key is %d-D, grid is %d-D", len(req.Key), dims)
		}
		return s.writeOp(ctx, req.Verb, req.Key)
	}
	return Result{}, fmt.Errorf("unhandled verb 0x%02x", uint8(req.Verb))
}

// writeOp executes one INSERT or DELETE against the writable store and
// invalidates every bucket the mutation touched in the bucket cache — only
// after the store has journaled the op and swapped the rewritten placements,
// so a read admitted after the ack can never see pre-write data through a
// stale cache entry (a concurrent leader that loaded the old pages is fenced
// by the cache's invalidation stamp). The store serializes mutations
// internally; concurrent INSERTs from many connections are safe.
func (s *Server) writeOp(ctx context.Context, verb Verb, key geom.Point) (Result, error) {
	if !s.writable {
		return Result{}, errors.New("server is read-only (restart with writes enabled)")
	}
	var res Result
	var dirty []int32
	if verb == VerbInsert {
		ir, err := s.st.Insert(ctx, key)
		if err != nil {
			return Result{}, err
		}
		res.Applied = true
		res.Splits = ir.Splits
		dirty = ir.Dirty()
	} else {
		dr, err := s.st.Delete(ctx, key)
		if err != nil {
			return Result{}, err
		}
		res.Applied = dr.Removed
		dirty = dr.Dirty()
		if dr.Merged {
			dirty = append(dirty, dr.Dead)
		}
	}
	if s.bcache != nil && len(dirty) > 0 {
		s.bcache.Invalidate(dirty...)
	}
	res.Info.Buckets = len(dirty)
	return res, nil
}

// diskLoop is one disk's I/O goroutine: one head per spindle, as in the
// paper's model. Each request is a whole batch of buckets on this disk,
// read with coalesced I/O unless disabled. The loop — not the submitting
// query — publishes the batch's outcome to the bucket cache, so a degraded
// query that stops waiting on this disk still leaves the cache's in-flight
// table clean for followers.
func (s *Server) diskLoop(disk int, ch <-chan fetchReq) {
	defer s.fetchWg.Done()
	for req := range ch {
		var tm *store.Timing
		if req.tr != nil {
			// Queue wait: submit to dequeue, i.e. time spent behind other
			// batches on this spindle.
			s.traceSince(req.tr, stageFetchWait, req.enq)
			tm = new(store.Timing)
		}
		// The runtime/trace region brackets the whole batch (retries and
		// backoff included) so `go tool trace` shows each disk goroutine's
		// duty cycle. StartRegion is a no-op unless tracing is active.
		region := rtrace.StartRegion(req.ctx, "gridserver.fetchBatch")
		got, pages, err := s.fetchBatch(req.ctx, disk, req.ids, req.tr, tm)
		region.End()
		if tm != nil {
			req.tr.add(stagePread, tm.Pread)
			req.tr.add(stageDecode, tm.Decode)
		}
		// Success is published to the cache here; a failed batch's leads stay
		// pending because the gather loop may still fail the batch over to a
		// surviving owner disk — only when every route is exhausted does the
		// gather loop complete them with the error.
		if err == nil {
			s.met.diskFetches[disk].Add(int64(len(req.ids)))
			s.met.pagesRead.Add(int64(pages))
			s.publishLeads(req.ids, got, nil)
		}
		req.resp <- fetchResp{ids: req.ids, disk: disk, got: got, pages: pages, err: err}
	}
}

// fetchBatch runs one disk batch with the per-attempt deadline and the
// bounded retry/backoff policy. Only transient failures are retried:
// injected faults (including torn reads, which wrap fault.ErrInjected) and
// per-attempt timeouts. Checksum mismatches are deliberately NOT retried
// here — rereading the same corrupt copy returns the same bytes — but they
// are transient to the gather loop, which fails them over to a surviving
// replica. Structural corruption or unknown buckets fail immediately, and
// an expired query stops retrying at once.
func (s *Server) fetchBatch(ctx context.Context, disk int, ids []int32, tr *Trace, tm *store.Timing) (map[int32][]geom.Point, int, error) {
	for attempt := 1; ; attempt++ {
		actx, cancel := ctx, context.CancelFunc(nil)
		if s.cfg.FetchTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, s.cfg.FetchTimeout)
		}
		got, pages, err := s.readBatch(actx, disk, ids, tm)
		if cancel != nil {
			cancel()
		}
		if err == nil {
			return got, pages, nil
		}
		transient := fault.IsInjected(err) ||
			(s.cfg.FetchTimeout > 0 && errors.Is(err, context.DeadlineExceeded))
		if !transient || attempt > s.cfg.FetchRetries || ctx.Err() != nil {
			return nil, 0, err
		}
		s.met.diskRetries.Add(1)
		backoffStart := s.traceNow(tr)
		serr := fault.Sleep(ctx, retryDelay(s.cfg.FetchBackoff, attempt))
		s.traceSince(tr, stageBackoff, backoffStart)
		if serr != nil {
			return nil, 0, err
		}
	}
}

// readBatch performs one disk's share of a query. A query whose deadline
// already expired has abandoned the fetch; skipping the I/O (checked again
// between simulated-latency sleeps) keeps its backlog from starving live
// queries.
func (s *Server) readBatch(ctx context.Context, disk int, ids []int32, tm *store.Timing) (map[int32][]geom.Point, int, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	if s.cfg.slowFetch > 0 {
		for range ids {
			if err := ctx.Err(); err != nil {
				return nil, 0, err
			}
			time.Sleep(s.cfg.slowFetch)
		}
	}
	if !s.cfg.DisableCoalesce {
		return s.st.ReadBucketsFromTimed(ctx, disk, ids, tm)
	}
	out := make(map[int32][]geom.Point, len(ids))
	pages := 0
	for _, id := range ids {
		pts, p, err := s.st.ReadBucketFromTimed(ctx, disk, id, tm)
		if err != nil {
			return nil, 0, err
		}
		out[id] = pts
		pages += p
	}
	return out, pages, nil
}

// publishLeads completes every bucket of a finished batch in the cache —
// with its data on success, with the error on failure — so followers
// blocked in Pending.Wait always unblock.
func (s *Server) publishLeads(ids []int32, got map[int32][]geom.Point, err error) {
	if s.bcache == nil {
		return
	}
	for _, id := range ids {
		if err != nil {
			s.bcache.Complete(id, nil, 0, err)
			continue
		}
		pl, _ := s.st.Placement(id)
		s.bcache.Complete(id, got[id], pl.Pages, nil)
	}
}

// failLeads publishes err for every bucket this query volunteered to load,
// so waiting followers unblock and the cache's in-flight table stays clean.
// Used only for batches never handed to a disk goroutine; submitted batches
// are published by diskLoop.
func (s *Server) failLeads(ids []int32, err error) {
	if s.bcache == nil {
		return
	}
	for _, id := range ids {
		s.bcache.Complete(id, nil, 0, err)
	}
}

// fetchBuckets resolves a query's bucket set: cache hits are served
// immediately, buckets another in-flight query is already reading are
// joined (singleflight), and the rest are batched per disk and read by the
// disk I/O goroutines with coalesced requests. Every bucket this query
// leads is published to the cache exactly once — with data or with the
// error — before fetchBuckets returns, so followers never wait on an
// abandoned load.
func (s *Server) fetchBuckets(ctx context.Context, tr *Trace, ids []int32) (map[int32][]geom.Point, QueryInfo, error) {
	var info QueryInfo
	out := make(map[int32][]geom.Point, len(ids))
	type join struct {
		id int32
		p  *cache.Pending
	}
	var joins []join
	var leads map[int][]int32 // disk -> buckets this query must read
	nleads := 0
	cacheStart := s.traceNow(tr)
	for _, id := range ids {
		if s.bcache != nil {
			switch r := s.bcache.Acquire(id); {
			case r.Hit:
				out[id] = r.Pts
				info.Buckets++
				continue
			case r.Pending != nil:
				joins = append(joins, join{id, r.Pending})
				continue
			}
		}
		pl, ok := s.st.Placement(id)
		if !ok {
			err := fmt.Errorf("bucket %d not in store", id)
			s.failLeads([]int32{id}, err)
			for _, batch := range leads {
				s.failLeads(batch, err)
			}
			s.traceSince(tr, stageCache, cacheStart)
			return nil, info, err
		}
		disk := pl.Disk
		if s.replicated {
			// Load-aware read selection: route the lead to the least-loaded
			// live owner. Ties prefer the primary, so an idle server reads
			// like an unreplicated one.
			if d, live := s.st.PickOwner(id, nil); live {
				disk = d
			}
		}
		if leads == nil {
			leads = make(map[int][]int32)
		}
		leads[disk] = append(leads[disk], id)
		nleads++
	}
	s.traceSince(tr, stageCache, cacheStart)
	tr.noteCache(len(out), len(joins), nleads)

	// One batch per disk. The response channel is buffered for every lead
	// bucket: outstanding batches always hold disjoint lead sets (a failed
	// batch is regrouped only after its response is drained), so at most
	// nleads responses can ever be in flight and disk goroutines never block
	// on an abandoned query. The gather loop waits for every submitted batch
	// (the disk loops answer expired contexts immediately). Leads of
	// successful batches are completed by diskLoop; failed or never-submitted
	// batches are completed here, after failover is exhausted.
	resp := make(chan fetchResp, nleads)
	var err error
	submitted := 0
	for disk, batch := range leads {
		if err != nil {
			s.failLeads(batch, err)
			continue
		}
		select {
		case s.fetchCh[disk] <- fetchReq{ids: batch, ctx: ctx, resp: resp, tr: tr, enq: s.traceNow(tr)}:
			s.st.AddLoad(disk, int64(len(batch)))
			submitted++
		case <-ctx.Done():
			err = ctx.Err()
			s.failLeads(batch, err)
		}
	}
	// missedDisks records disks whose batches failed transiently while
	// degraded mode absorbs the failure; the answer then covers only the
	// surviving disks (a strict subset of the full result, never wrong
	// records, because buckets are whole-disk resident). On a replicated
	// layout failover comes first: bucketFailed tracks, PER BUCKET, the
	// disks it has already failed on, and each failed bucket is rerouted to
	// its least-loaded remaining owner. The exclusion set is per bucket, not
	// per query: two unrelated batches failing on different disks must not
	// condemn a third bucket that owns copies on both but never tried either
	// — with transient (probabilistic) faults that would lose buckets a live
	// owner could still serve. Each reroute excludes one more distinct owner,
	// so a bucket fails over at most r-1 times before it is lost.
	var missedDisks map[int]bool
	degrade := func(disk int) {
		if missedDisks == nil {
			missedDisks = make(map[int]bool)
		}
		missedDisks[disk] = true
	}
	var bucketFailed map[int32][]int
	var nPrimary, nSecondary int64
	for outstanding := submitted; outstanding > 0; {
		r := <-resp
		outstanding--
		s.st.AddLoad(r.disk, -int64(len(r.ids)))
		if r.err == nil {
			for _, id := range r.ids {
				out[id] = r.got[id]
				info.Buckets++
			}
			info.Pages += r.pages
			if s.replicated {
				for _, id := range r.ids {
					if own := s.st.Owners(id); len(own) > 0 && own[0] != r.disk {
						nSecondary++
					} else {
						nPrimary++
					}
				}
			}
			continue
		}
		if s.replicated && err == nil && s.transientErr(ctx, r.err) {
			if bucketFailed == nil {
				bucketFailed = make(map[int32][]int)
			}
			for _, id := range r.ids {
				bucketFailed[id] = append(bucketFailed[id], r.disk)
			}
			if resubmitted := s.failOver(ctx, tr, resp, r, bucketFailed, degrade, &err); resubmitted > 0 {
				outstanding += resubmitted
			}
			continue
		}
		// No failover route: complete the leads with the error so followers
		// unblock, then absorb the failure (degraded) or surface it.
		s.failLeads(r.ids, r.err)
		if s.degradable(ctx, r.err) {
			degrade(r.disk)
			continue
		}
		if err == nil {
			err = r.err
		}
	}
	if nPrimary > 0 {
		s.met.replicaReadsPrimary.Add(nPrimary)
	}
	if nSecondary > 0 {
		s.met.replicaReadsSecondary.Add(nSecondary)
	}
	if err != nil {
		return nil, info, err
	}

	// Collect joined loads last: their leaders read in parallel with ours.
	// A leader's transient failure degrades this query too — the bucket's
	// disk is what actually failed. Waiting on a leader counts as cache
	// time: the bucket is being materialized by the cache's singleflight,
	// not by this query's own I/O.
	joinStart := s.traceNow(tr)
	defer s.traceSince(tr, stageCache, joinStart)
	for _, j := range joins {
		pts, _, werr := j.p.Wait(ctx)
		if werr != nil {
			if s.degradable(ctx, werr) {
				if pl, ok := s.st.Placement(j.id); ok {
					degrade(pl.Disk)
					continue
				}
			}
			return nil, info, werr
		}
		out[j.id] = pts
		info.Buckets++
	}
	if len(missedDisks) > 0 {
		info.Degraded = true
		info.MissedDisks = len(missedDisks)
	}
	return out, info, nil
}

// failOver reroutes one transiently failed batch to surviving owner disks:
// each bucket is resubmitted to its least-loaded owner it has not yet failed
// on (per bucketFailed) as its OWN single-bucket batch with a fresh retry
// budget. The split is deliberate — failover is the last stop before losing
// the bucket, and in the original coalesced batch one unlucky injected pread
// fails every bucket riding along; independent retries make the per-bucket
// survival odds (1-p)^attempts instead of (1-p)^(attempts·runs). Buckets
// whose every owner already failed — and reroutes the failover failpoint
// kills — are completed with the original error and absorbed as degraded (or
// surfaced via *errp). It returns the number of batches resubmitted, which
// the gather loop must keep waiting for.
func (s *Server) failOver(ctx context.Context, tr *Trace, resp chan fetchResp,
	r fetchResp, bucketFailed map[int32][]int, degrade func(int), errp *error) int {
	var lost []int32
	resubmitted := 0
	for _, id := range r.ids {
		tried := bucketFailed[id]
		disk, ok := s.st.PickOwner(id, func(d int) bool {
			for _, fd := range tried {
				if fd == d {
					return true
				}
			}
			return false
		})
		if !ok {
			lost = append(lost, id)
			continue
		}
		// The failover redirect is itself a failpoint site: chaos runs can
		// stall it or kill it, forcing the pre-replication degraded fallback.
		redirected := true
		if inj, hit := s.faults.Eval(fault.SiteServerFailover); hit {
			if inj.Delay > 0 && fault.Sleep(ctx, inj.Delay) != nil {
				redirected = false
			}
			if inj.Err != nil {
				redirected = false
			}
		}
		if !redirected {
			lost = append(lost, id)
			continue
		}
		select {
		case s.fetchCh[disk] <- fetchReq{ids: []int32{id}, ctx: ctx, resp: resp, tr: tr, enq: s.traceNow(tr)}:
			s.st.AddLoad(disk, 1)
			s.met.replicaFailover.Add(1)
			resubmitted++
		case <-ctx.Done():
			lost = append(lost, id)
		}
	}
	if len(lost) > 0 {
		s.failLeads(lost, r.err)
		if s.degradable(ctx, r.err) {
			degrade(r.disk)
		} else if *errp == nil {
			*errp = r.err
		}
	}
	return resubmitted
}

// transientErr reports whether a fetch failure is recoverable by reading
// elsewhere — injected, a per-attempt fetch timeout, or a detected page
// checksum mismatch, with the query itself still live — and thus a
// candidate for replica failover or degraded absorption. A checksum
// failure is corruption of ONE copy, not of the bucket: a surviving
// replica (or the scrubber's repair) still holds the records, which is
// exactly what failover routes to. Structural failures (unknown buckets, a
// manifest that disagrees with the page files) stay fatal.
func (s *Server) transientErr(ctx context.Context, err error) bool {
	if ctx.Err() != nil {
		return false
	}
	return fault.IsInjected(err) || store.IsChecksum(err) ||
		(s.cfg.FetchTimeout > 0 && errors.Is(err, context.DeadlineExceeded))
}

// degradable reports whether a fetch error may be absorbed into a partial
// answer: degraded mode is on, the query itself is still live, and the
// failure is transient.
func (s *Server) degradable(ctx context.Context, err error) bool {
	return s.cfg.Degraded && s.transientErr(ctx, err)
}

// Translation locking: on a writable server the grid's scales and directory
// mutate underneath concurrent queries, so every directory translation runs
// under the store's grid read-lock. The store only takes the corresponding
// write-lock for the in-memory apply step of a mutation (journal fsyncs
// happen before it), so readers are never blocked on disk I/O. On read-only
// stores RLockGrid is a no-op and translation stays lock-free.

func (s *Server) pointQuery(ctx context.Context, tr *Trace, key geom.Point) (Result, error) {
	tstart := s.traceNow(tr)
	s.st.RLockGrid()
	id, ok := s.grid.BucketAt(key)
	s.st.RUnlockGrid()
	s.traceSince(tr, stageTranslate, tstart)
	if !ok {
		return Result{}, fmt.Errorf("key %v outside the domain", key)
	}
	got, info, err := s.fetchBuckets(ctx, tr, []int32{id})
	if err != nil {
		return Result{}, err
	}
	var res Result
	res.Info = info
	for _, p := range got[id] {
		if pointsEqual(p, key) {
			res.Points = append(res.Points, p)
		}
	}
	res.Count = len(res.Points)
	return res, nil
}

func (s *Server) rangeQuery(ctx context.Context, tr *Trace, q geom.Rect, countOnly bool) (Result, error) {
	tstart := s.traceNow(tr)
	s.st.RLockGrid()
	ids := s.grid.BucketsInRange(q)
	s.st.RUnlockGrid()
	s.traceSince(tr, stageTranslate, tstart)
	got, info, err := s.fetchBuckets(ctx, tr, ids)
	if err != nil {
		return Result{}, err
	}
	var res Result
	res.Info = info
	for _, id := range ids {
		for _, p := range got[id] {
			if q.ContainsPoint(p) {
				res.Count++
				if !countOnly {
					res.Points = append(res.Points, p)
				}
			}
		}
	}
	return res, nil
}

func (s *Server) partialQuery(ctx context.Context, tr *Trace, vals []float64) (Result, error) {
	dom := s.grid.Domain()
	q := make(geom.Rect, len(vals))
	for d, v := range vals {
		if math.IsNaN(v) {
			q[d] = dom[d]
		} else {
			q[d] = geom.Interval{Lo: v, Hi: v}
		}
	}
	res, err := s.rangeQuery(ctx, tr, q, false)
	if err != nil {
		return Result{}, err
	}
	// Range containment already requires equality on the specified
	// (degenerate) intervals; nothing further to filter.
	return res, nil
}

// knnQuery finds the k nearest stored points by growing a range box around
// the key — the grid file's classic expanding-search strategy, executed
// against the page store so every probe is real declustered I/O. Buckets
// are fetched at most once per query.
func (s *Server) knnQuery(ctx context.Context, tr *Trace, key geom.Point, k int) (Result, error) {
	dom := s.grid.Domain()
	if err := domContains(dom, key); err != nil {
		return Result{}, err
	}
	// Initial radius: one average cell extent, so the first probe touches
	// roughly the cell neighbourhood of the key.
	r := 0.0
	s.st.RLockGrid()
	cells := s.grid.CellSizes()
	s.st.RUnlockGrid()
	for d, n := range cells {
		if ext := dom[d].Length() / float64(n); ext > r {
			r = ext
		}
	}
	if r <= 0 {
		r = 1
	}

	type cand struct {
		p    geom.Point
		dist float64
	}
	fetched := make(map[int32][]geom.Point)
	var info QueryInfo
	for {
		q := make(geom.Rect, len(key))
		covers := true
		for d := range key {
			q[d] = geom.Interval{
				Lo: math.Max(key[d]-r, dom[d].Lo),
				Hi: math.Min(key[d]+r, dom[d].Hi),
			}
			if q[d].Lo > dom[d].Lo || q[d].Hi < dom[d].Hi {
				covers = false
			}
		}
		tstart := s.traceNow(tr)
		s.st.RLockGrid()
		ids := s.grid.BucketsInRange(q)
		s.st.RUnlockGrid()
		s.traceSince(tr, stageTranslate, tstart)
		var fresh []int32
		for _, id := range ids {
			if _, ok := fetched[id]; !ok {
				fresh = append(fresh, id)
			}
		}
		got, fi, err := s.fetchBuckets(ctx, tr, fresh)
		if err != nil {
			return Result{}, err
		}
		info.Buckets += fi.Buckets
		info.Pages += fi.Pages
		if fi.Degraded {
			// Part of the probe is gone; the distance bound no longer
			// proves anything, so stop expanding and return the best
			// candidates the surviving disks gave us, flagged degraded.
			info.Degraded = true
			if fi.MissedDisks > info.MissedDisks {
				info.MissedDisks = fi.MissedDisks
			}
			covers = true
		}
		for id, pts := range got {
			fetched[id] = pts
		}

		var cands []cand
		for _, pts := range fetched {
			for _, p := range pts {
				cands = append(cands, cand{p: p, dist: euclid(p, key)})
			}
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].dist < cands[j].dist })
		// Done when the k-th distance is inside the probed radius (no
		// unfetched point can be closer) or the box covers the domain.
		if covers || (len(cands) >= k && cands[k-1].dist <= r) {
			n := min(k, len(cands))
			res := Result{Points: make([]geom.Point, 0, n), Info: info}
			for _, c := range cands[:n] {
				res.Points = append(res.Points, c.p)
			}
			res.Count = n
			return res, nil
		}
		r *= 2
	}
}

func pointsEqual(a, b geom.Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func euclid(a, b geom.Point) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func domContains(dom geom.Rect, p geom.Point) error {
	for d := range p {
		if !dom[d].Contains(p[d]) {
			return fmt.Errorf("key %v outside the domain", p)
		}
	}
	return nil
}

func (s *Server) stopFetchers() {
	for _, ch := range s.fetchCh {
		close(ch)
	}
	s.fetchWg.Wait()
}

// Close shuts the server down gracefully: stop accepting, let in-flight
// queries finish (up to DrainTimeout, then force-close), stop the disk
// goroutines and the HTTP endpoint. Close is idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.done)
	// Unblock handlers parked in ReadFrame; handlers mid-query keep their
	// write path and finish their current reply.
	for c := range s.conns {
		c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	s.ln.Close()
	s.acceptWg.Wait()

	if !waitTimeout(&s.connWg, s.cfg.DrainTimeout) {
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		s.connWg.Wait()
	}
	s.stopFetchers()
	s.scrubWg.Wait()

	if s.httpSrv != nil {
		s.httpSrv.Close()
	}
	if s.ownsStore {
		s.st.Close()
	}
	return nil
}

// waitTimeout waits for wg up to d; it reports whether the wait completed.
func waitTimeout(wg *sync.WaitGroup, d time.Duration) bool {
	ch := make(chan struct{})
	go func() {
		wg.Wait()
		close(ch)
	}()
	select {
	case <-ch:
		return true
	case <-time.After(d):
		return false
	}
}
