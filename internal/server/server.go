package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"pgridfile/internal/geom"
	"pgridfile/internal/gridfile"
	"pgridfile/internal/store"
)

// Config tunes a Server. The zero value gets sensible defaults from
// (*Config).withDefaults.
type Config struct {
	// Addr is the TCP listen address; default "127.0.0.1:0" (ephemeral).
	Addr string
	// HTTPAddr, when non-empty, additionally serves /metrics and /healthz
	// over HTTP on that address.
	HTTPAddr string
	// MaxInflight bounds concurrently executing queries (admission
	// control): excess requests wait, exerting backpressure on their
	// connections, and are rejected when their deadline expires while
	// queued. Default 64.
	MaxInflight int
	// QueryTimeout is the per-query deadline covering admission wait and
	// execution. Default 5s.
	QueryTimeout time.Duration
	// IdleTimeout closes connections with no traffic. Default 2m.
	IdleTimeout time.Duration
	// DrainTimeout bounds how long Close waits for in-flight queries
	// before force-closing connections. Default 5s.
	DrainTimeout time.Duration

	// slowFetch artificially delays every bucket fetch; test hook for
	// exercising deadlines, admission control and shutdown under load.
	slowFetch time.Duration
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 64
	}
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = 5 * time.Second
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 2 * time.Minute
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
	return c
}

// fetchReq asks a disk goroutine for one bucket.
type fetchReq struct {
	id   int32
	ctx  context.Context  // the owning query; cancelled fetches are skipped
	resp chan<- fetchResp // buffered by the submitter; never blocks
}

type fetchResp struct {
	id    int32
	pts   []geom.Point
	pages int
	err   error
}

// Server is a running query service: an acceptor, one handler goroutine per
// connection, and one I/O goroutine per disk file. The grid file acts as
// the coordinator's scales+directory; record data is fetched from the page
// store with real file I/O.
type Server struct {
	cfg  Config
	grid *gridfile.File
	st   *store.Store
	met  *Metrics

	ln      net.Listener
	httpLn  net.Listener
	httpSrv *http.Server

	sem     chan struct{}
	fetchCh []chan fetchReq
	fetchWg sync.WaitGroup

	// trMu serializes directory translation: the grid file's range search
	// reuses visit-stamp scratch space, so concurrent BucketsInRange calls
	// must not interleave. Bucket fetching and filtering run outside it.
	trMu sync.Mutex

	mu        sync.Mutex // guards conns, closed
	conns     map[net.Conn]struct{}
	closed    bool
	ownsStore bool

	acceptWg sync.WaitGroup
	connWg   sync.WaitGroup
	done     chan struct{}
}

// New starts a server over an already-open grid file (scales + directory)
// and page store. The grid file must be the one the layout was written
// from: every stored bucket is cross-checked against the directory before
// serving starts. The caller keeps ownership of grid and st.
func New(grid *gridfile.File, st *store.Store, cfg Config) (*Server, error) {
	m := st.Manifest()
	if grid.Dims() != m.Dims {
		return nil, fmt.Errorf("server: grid is %d-D, store is %d-D", grid.Dims(), m.Dims)
	}
	views := grid.Buckets()
	if len(views) != len(m.Buckets) {
		return nil, fmt.Errorf("server: grid has %d buckets, store has %d (layout from a different grid file?)",
			len(views), len(m.Buckets))
	}
	for _, v := range views {
		pl, ok := st.Placement(v.ID)
		if !ok {
			return nil, fmt.Errorf("server: bucket %d missing from store", v.ID)
		}
		if pl.Recs != v.Records {
			return nil, fmt.Errorf("server: bucket %d holds %d records in store, %d in grid",
				v.ID, pl.Recs, v.Records)
		}
	}

	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		grid:    grid,
		st:      st,
		met:     newMetrics(m.Disks),
		sem:     make(chan struct{}, cfg.MaxInflight),
		fetchCh: make([]chan fetchReq, m.Disks),
		conns:   make(map[net.Conn]struct{}),
		done:    make(chan struct{}),
	}

	// One I/O goroutine per disk file: fetches on the same disk serialize
	// (one head per spindle, as in the paper's model) while distinct disks
	// proceed in parallel — this is where declustering quality becomes
	// real wall-clock parallelism.
	for d := range s.fetchCh {
		ch := make(chan fetchReq, 4*cfg.MaxInflight)
		s.fetchCh[d] = ch
		s.fetchWg.Add(1)
		go s.diskLoop(d, ch)
	}

	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		s.stopFetchers()
		return nil, err
	}
	s.ln = ln
	s.acceptWg.Add(1)
	go s.acceptLoop()

	if cfg.HTTPAddr != "" {
		if err := s.startHTTP(cfg.HTTPAddr); err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}

// OpenDir opens a layout directory written by store.Write (which embeds the
// grid file as grid.grd) and serves it; Close releases the store.
func OpenDir(dir string, cfg Config) (*Server, error) {
	st, err := store.Open(dir)
	if err != nil {
		return nil, err
	}
	grid, err := store.OpenGrid(dir)
	if err != nil {
		st.Close()
		return nil, fmt.Errorf("server: %w (layouts written before grid embedding must be re-laid out)", err)
	}
	s, err := New(grid, st, cfg)
	if err != nil {
		st.Close()
		return nil, err
	}
	s.ownsStore = true
	return s, nil
}

// Addr returns the TCP address the server listens on.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// HTTPAddr returns the metrics endpoint address, or nil if disabled.
func (s *Server) HTTPAddr() net.Addr {
	if s.httpLn == nil {
		return nil
	}
	return s.httpLn.Addr()
}

// Snapshot returns the server's current statistics.
func (s *Server) Snapshot() Snapshot {
	snap := s.met.snapshot(len(s.sem))
	snap.Dims = s.grid.Dims()
	snap.Disks = s.st.Manifest().Disks
	snap.Domain = s.st.Manifest().Domain
	return snap
}

func (s *Server) startHTTP(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		s.Snapshot().writePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"status":         "ok",
			"uptime_seconds": time.Since(s.met.start).Seconds(),
		})
	})
	s.httpLn = ln
	s.httpSrv = &http.Server{Handler: mux}
	go s.httpSrv.Serve(ln)
	return nil
}

func (s *Server) acceptLoop() {
	defer s.acceptWg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.connWg.Add(1)
		go s.handleConn(c)
	}
}

func (s *Server) dropConn(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	c.Close()
}

// handleConn serves one client connection: frames in, frames out. A
// frame-level error (desynchronized or hostile stream) closes the
// connection; a request-level error is answered and the connection kept.
func (s *Server) handleConn(c net.Conn) {
	defer s.connWg.Done()
	defer s.dropConn(c)
	for {
		c.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		f, err := ReadFrame(c)
		if err != nil {
			if errors.Is(err, ErrFrameTooBig) || errors.Is(err, ErrEmptyFrame) {
				s.met.errors.Add(1)
				c.SetWriteDeadline(time.Now().Add(s.cfg.QueryTimeout))
				WriteFrame(c, errorFrame(err.Error()))
			}
			return
		}
		resp := s.dispatch(f)
		c.SetWriteDeadline(time.Now().Add(s.cfg.QueryTimeout))
		if err := WriteFrame(c, resp); err != nil {
			return
		}
		select {
		case <-s.done:
			return // draining: finish the in-flight reply, then hang up
		default:
		}
	}
}

// dispatch decodes, admits, executes and encodes one request.
func (s *Server) dispatch(f Frame) Frame {
	req, err := DecodeRequest(f)
	if err != nil {
		s.met.errors.Add(1)
		return errorFrame(err.Error())
	}

	// The STATS verb bypasses admission control so operators can observe a
	// saturated server.
	if req.Verb == VerbStats {
		s.met.queries[verbIndex(VerbStats)].Add(1)
		body, err := json.Marshal(s.Snapshot())
		if err != nil {
			s.met.errors.Add(1)
			return errorFrame(err.Error())
		}
		return Frame{Verb: VerbStatsReply, Payload: body}
	}

	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.QueryTimeout)
	defer cancel()

	// Admission control: at most MaxInflight queries execute; the rest
	// wait here, which backpressures their connections instead of
	// spawning unbounded work.
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-ctx.Done():
		s.met.rejected.Add(1)
		return errorFrame("server busy: admission queue full past deadline")
	case <-s.done:
		return errorFrame("server shutting down")
	}

	start := time.Now()
	res, err := s.execute(ctx, req)
	if err != nil {
		if ctx.Err() != nil {
			s.met.rejected.Add(1)
			return errorFrame("deadline exceeded: " + err.Error())
		}
		s.met.errors.Add(1)
		return errorFrame(err.Error())
	}
	res.Info.Elapsed = time.Since(start)
	s.met.queries[verbIndex(req.Verb)].Add(1)
	s.met.latency.observe(float64(res.Info.Elapsed.Microseconds()))
	s.met.fetches.observe(float64(res.Info.Buckets))

	verb := VerbPoints
	if req.Verb == VerbRange && req.CountOnly {
		verb = VerbCount
	}
	out, err := EncodeResult(verb, res)
	if err != nil {
		s.met.errors.Add(1)
		return errorFrame(err.Error())
	}
	return out
}

func (s *Server) execute(ctx context.Context, req Request) (Result, error) {
	dims := s.grid.Dims()
	switch req.Verb {
	case VerbPoint:
		if len(req.Key) != dims {
			return Result{}, fmt.Errorf("key is %d-D, grid is %d-D", len(req.Key), dims)
		}
		return s.pointQuery(ctx, req.Key)
	case VerbRange:
		if len(req.Query) != dims {
			return Result{}, fmt.Errorf("query is %d-D, grid is %d-D", len(req.Query), dims)
		}
		return s.rangeQuery(ctx, req.Query, req.CountOnly)
	case VerbPartial:
		if len(req.Vals) != dims {
			return Result{}, fmt.Errorf("query is %d-D, grid is %d-D", len(req.Vals), dims)
		}
		return s.partialQuery(ctx, req.Vals)
	case VerbKNN:
		if len(req.Key) != dims {
			return Result{}, fmt.Errorf("key is %d-D, grid is %d-D", len(req.Key), dims)
		}
		return s.knnQuery(ctx, req.Key, req.K)
	}
	return Result{}, fmt.Errorf("unhandled verb 0x%02x", uint8(req.Verb))
}

// bucketsInRange translates a query rect to bucket ids under the
// translation lock (the coordinator step).
func (s *Server) bucketsInRange(q geom.Rect) []int32 {
	s.trMu.Lock()
	defer s.trMu.Unlock()
	return s.grid.BucketsInRange(q)
}

// diskLoop is one disk's I/O goroutine.
func (s *Server) diskLoop(disk int, ch <-chan fetchReq) {
	defer s.fetchWg.Done()
	for req := range ch {
		// A query whose deadline already expired has abandoned this fetch;
		// skip the I/O so its backlog doesn't starve live queries.
		if err := req.ctx.Err(); err != nil {
			req.resp <- fetchResp{id: req.id, err: err}
			continue
		}
		if s.cfg.slowFetch > 0 {
			time.Sleep(s.cfg.slowFetch)
		}
		pts, pages, err := s.st.ReadBucket(req.id)
		if err == nil {
			s.met.diskFetches[disk].Add(1)
			s.met.pagesRead.Add(int64(pages))
		}
		req.resp <- fetchResp{id: req.id, pts: pts, pages: pages, err: err}
	}
}

// fetchBuckets routes each bucket to its disk's I/O goroutine and gathers
// the results. The response channel is buffered for every request, so disk
// goroutines never block on an abandoned (deadline-expired) query.
func (s *Server) fetchBuckets(ctx context.Context, ids []int32) (map[int32][]geom.Point, QueryInfo, error) {
	var info QueryInfo
	resp := make(chan fetchResp, len(ids))
	submitted := 0
	for _, id := range ids {
		pl, ok := s.st.Placement(id)
		if !ok {
			return nil, info, fmt.Errorf("bucket %d not in store", id)
		}
		select {
		case s.fetchCh[pl.Disk] <- fetchReq{id: id, ctx: ctx, resp: resp}:
			submitted++
		case <-ctx.Done():
			return nil, info, ctx.Err()
		}
	}
	out := make(map[int32][]geom.Point, submitted)
	for i := 0; i < submitted; i++ {
		select {
		case r := <-resp:
			if r.err != nil {
				return nil, info, r.err
			}
			out[r.id] = r.pts
			info.Buckets++
			info.Pages += r.pages
		case <-ctx.Done():
			return nil, info, ctx.Err()
		}
	}
	return out, info, nil
}

func (s *Server) pointQuery(ctx context.Context, key geom.Point) (Result, error) {
	id, ok := s.grid.BucketAt(key)
	if !ok {
		return Result{}, fmt.Errorf("key %v outside the domain", key)
	}
	got, info, err := s.fetchBuckets(ctx, []int32{id})
	if err != nil {
		return Result{}, err
	}
	var res Result
	res.Info = info
	for _, p := range got[id] {
		if pointsEqual(p, key) {
			res.Points = append(res.Points, p)
		}
	}
	res.Count = len(res.Points)
	return res, nil
}

func (s *Server) rangeQuery(ctx context.Context, q geom.Rect, countOnly bool) (Result, error) {
	ids := s.bucketsInRange(q)
	got, info, err := s.fetchBuckets(ctx, ids)
	if err != nil {
		return Result{}, err
	}
	var res Result
	res.Info = info
	for _, id := range ids {
		for _, p := range got[id] {
			if q.ContainsPoint(p) {
				res.Count++
				if !countOnly {
					res.Points = append(res.Points, p)
				}
			}
		}
	}
	return res, nil
}

func (s *Server) partialQuery(ctx context.Context, vals []float64) (Result, error) {
	dom := s.grid.Domain()
	q := make(geom.Rect, len(vals))
	for d, v := range vals {
		if math.IsNaN(v) {
			q[d] = dom[d]
		} else {
			q[d] = geom.Interval{Lo: v, Hi: v}
		}
	}
	res, err := s.rangeQuery(ctx, q, false)
	if err != nil {
		return Result{}, err
	}
	// Range containment already requires equality on the specified
	// (degenerate) intervals; nothing further to filter.
	return res, nil
}

// knnQuery finds the k nearest stored points by growing a range box around
// the key — the grid file's classic expanding-search strategy, executed
// against the page store so every probe is real declustered I/O. Buckets
// are fetched at most once per query.
func (s *Server) knnQuery(ctx context.Context, key geom.Point, k int) (Result, error) {
	dom := s.grid.Domain()
	if err := domContains(dom, key); err != nil {
		return Result{}, err
	}
	// Initial radius: one average cell extent, so the first probe touches
	// roughly the cell neighbourhood of the key.
	r := 0.0
	for d, n := range s.grid.CellSizes() {
		if ext := dom[d].Length() / float64(n); ext > r {
			r = ext
		}
	}
	if r <= 0 {
		r = 1
	}

	type cand struct {
		p    geom.Point
		dist float64
	}
	fetched := make(map[int32][]geom.Point)
	var info QueryInfo
	for {
		q := make(geom.Rect, len(key))
		covers := true
		for d := range key {
			q[d] = geom.Interval{
				Lo: math.Max(key[d]-r, dom[d].Lo),
				Hi: math.Min(key[d]+r, dom[d].Hi),
			}
			if q[d].Lo > dom[d].Lo || q[d].Hi < dom[d].Hi {
				covers = false
			}
		}
		ids := s.bucketsInRange(q)
		var fresh []int32
		for _, id := range ids {
			if _, ok := fetched[id]; !ok {
				fresh = append(fresh, id)
			}
		}
		got, fi, err := s.fetchBuckets(ctx, fresh)
		if err != nil {
			return Result{}, err
		}
		info.Buckets += fi.Buckets
		info.Pages += fi.Pages
		for id, pts := range got {
			fetched[id] = pts
		}

		var cands []cand
		for _, pts := range fetched {
			for _, p := range pts {
				cands = append(cands, cand{p: p, dist: euclid(p, key)})
			}
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].dist < cands[j].dist })
		// Done when the k-th distance is inside the probed radius (no
		// unfetched point can be closer) or the box covers the domain.
		if covers || (len(cands) >= k && cands[k-1].dist <= r) {
			n := min(k, len(cands))
			res := Result{Points: make([]geom.Point, 0, n), Info: info}
			for _, c := range cands[:n] {
				res.Points = append(res.Points, c.p)
			}
			res.Count = n
			return res, nil
		}
		r *= 2
	}
}

func pointsEqual(a, b geom.Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func euclid(a, b geom.Point) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func domContains(dom geom.Rect, p geom.Point) error {
	for d := range p {
		if !dom[d].Contains(p[d]) {
			return fmt.Errorf("key %v outside the domain", p)
		}
	}
	return nil
}

func (s *Server) stopFetchers() {
	for _, ch := range s.fetchCh {
		close(ch)
	}
	s.fetchWg.Wait()
}

// Close shuts the server down gracefully: stop accepting, let in-flight
// queries finish (up to DrainTimeout, then force-close), stop the disk
// goroutines and the HTTP endpoint. Close is idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.done)
	// Unblock handlers parked in ReadFrame; handlers mid-query keep their
	// write path and finish their current reply.
	for c := range s.conns {
		c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	s.ln.Close()
	s.acceptWg.Wait()

	if !waitTimeout(&s.connWg, s.cfg.DrainTimeout) {
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		s.connWg.Wait()
	}
	s.stopFetchers()

	if s.httpSrv != nil {
		s.httpSrv.Close()
	}
	if s.ownsStore {
		s.st.Close()
	}
	return nil
}

// waitTimeout waits for wg up to d; it reports whether the wait completed.
func waitTimeout(wg *sync.WaitGroup, d time.Duration) bool {
	ch := make(chan struct{})
	go func() {
		wg.Wait()
		close(ch)
	}()
	select {
	case <-ch:
		return true
	case <-time.After(d):
		return false
	}
}
