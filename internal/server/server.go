package server

import (
	"bufio"
	"cmp"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	rpprof "runtime/pprof"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"pgridfile/internal/cache"
	"pgridfile/internal/fault"
	"pgridfile/internal/geom"
	"pgridfile/internal/gridfile"
	"pgridfile/internal/store"
)

// Config tunes a Server. The zero value gets sensible defaults from
// (*Config).withDefaults.
type Config struct {
	// Addr is the TCP listen address; default "127.0.0.1:0" (ephemeral).
	Addr string
	// HTTPAddr, when non-empty, additionally serves /metrics and /healthz
	// over HTTP on that address.
	HTTPAddr string
	// MaxInflight bounds concurrently executing queries (admission
	// control): excess requests wait, exerting backpressure on their
	// connections, and are rejected when their deadline expires while
	// queued. Default 64.
	MaxInflight int
	// QueryTimeout is the per-query deadline covering admission wait and
	// execution. Default 5s.
	QueryTimeout time.Duration
	// IdleTimeout closes connections with no traffic. Default 2m.
	IdleTimeout time.Duration
	// DrainTimeout bounds how long Close waits for in-flight queries
	// before force-closing connections. Default 5s.
	DrainTimeout time.Duration
	// CacheBytes bounds the sharded LRU cache of decoded buckets fronting
	// the page store. 0 selects the default (64 MiB); negative disables
	// caching entirely.
	CacheBytes int64
	// DisableCoalesce turns off coalesced per-disk reads (store.ReadBuckets)
	// and falls back to one ReadBucket call per bucket — the PR 1 behaviour,
	// kept togglable so the bench can measure the coalescing win.
	DisableCoalesce bool
	// DisableNoDelay leaves Nagle's algorithm enabled on accepted
	// connections. By default the server sets TCP_NODELAY explicitly: the
	// protocol's frames are small and latency-sensitive, and the batched
	// writev path already coalesces adjacent responses into one syscall, so
	// Nagle only adds delayed-ACK stalls on top (see DESIGN S26).
	DisableNoDelay bool
	// PipelineDepth bounds, per connection, both the response queue between
	// the read and write sides and the number of tagged (pipelined) requests
	// executing concurrently. Beyond it the reader stops draining the
	// socket, backpressuring the client. Default 64.
	PipelineDepth int
	// Pprof, together with HTTPAddr, additionally exposes the standard
	// net/http/pprof profiling handlers under /debug/pprof/ on the same
	// mux, so the serving path can be profiled in place.
	Pprof bool
	// Writable opens the layout for online mutation (OpenDir only): the
	// store is opened via store.OpenWritable — replaying any write-ahead
	// journals left by a crash — and the INSERT/DELETE verbs are accepted.
	// Requires a checksummed layout. Read-only servers reject the write
	// verbs with a protocol error.
	Writable bool

	// Faults is the failpoint registry threaded into the store's read path
	// and the FAULT admin verb. nil gets a fresh (disarmed) registry, so
	// the admin verb always works; injection costs one atomic load until a
	// rule is armed.
	Faults *fault.Registry
	// FetchTimeout bounds one disk-batch read attempt, so a stalled disk
	// is abandoned (and possibly retried) instead of holding the query to
	// its full deadline. 0 disables the per-attempt bound.
	FetchTimeout time.Duration
	// FetchRetries is how many times a failed disk batch is retried when
	// the failure is transient (injected faults, per-attempt timeouts).
	// Default 2; -1 disables retries.
	FetchRetries int
	// FetchBackoff is the base of the exponential full-jitter backoff
	// between batch retries. Default 2ms.
	FetchBackoff time.Duration
	// Degraded turns disk-level transient failures (after retries) into
	// partial answers — the response carries the degraded flag and a
	// missed-disk count instead of an error. Off by default: the zero
	// value preserves fail-fast behaviour.
	Degraded bool
	// VerifyChecksums validates every page's CRC-32C during decode. A
	// detected mismatch is treated like a transient disk failure: the read
	// fails over to a surviving replica (r >= 2) or is absorbed as a
	// degraded answer, instead of silently serving corrupt records.
	// Requires a checksummed layout.
	VerifyChecksums bool
	// ScrubInterval, when positive, runs a background integrity scrub of
	// the whole layout every interval: each pass verifies every page copy
	// against its checksum and repairs corrupt copies from an intact
	// replica (see store.Scrub). Requires a checksummed layout. ScrubNow
	// runs one pass synchronously regardless of this setting.
	ScrubInterval time.Duration
	// ScrubPause is slept between buckets within one scrub pass, keeping a
	// background scrub low-priority next to live queries. 0 scrubs flat out.
	ScrubPause time.Duration

	// TraceSample enables per-query stage tracing (DESIGN S23) for every
	// n-th data query: 1 traces everything, 0 (the default) disables
	// tracing, and the disabled path allocates nothing. Traced queries feed
	// the per-stage histograms in STATS//metrics, carry pprof labels, and
	// qualify for the slow-query log.
	TraceSample int
	// TraceSlowLog enables the slow-query log: every traced query whose
	// elapsed time is at least TraceSlow prints one structured line to
	// TraceLog. It is a separate switch so a zero TraceSlow ("log every
	// traced query") is expressible while the zero Config stays silent.
	TraceSlowLog bool
	// TraceSlow is the slow-query log threshold.
	TraceSlow time.Duration
	// TraceLog receives slow-query lines; default os.Stderr.
	TraceLog io.Writer

	// slowFetch artificially delays every bucket fetch; test hook for
	// exercising deadlines, admission control and shutdown under load.
	slowFetch time.Duration
	// clock is the time source behind latency and stage-trace measurement;
	// test hook for deterministic timing assertions. Defaults to time.Now.
	clock func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 64
	}
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = 5 * time.Second
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 2 * time.Minute
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 64 << 20
	}
	if c.CacheBytes < 0 {
		c.CacheBytes = 0 // disabled
	}
	if c.PipelineDepth <= 0 {
		c.PipelineDepth = 64
	}
	if c.Faults == nil {
		c.Faults = fault.NewRegistry(1)
	}
	if c.FetchRetries == 0 {
		c.FetchRetries = 2
	}
	if c.FetchRetries < 0 {
		c.FetchRetries = 0 // disabled
	}
	if c.FetchBackoff <= 0 {
		c.FetchBackoff = 2 * time.Millisecond
	}
	if c.TraceLog == nil {
		c.TraceLog = os.Stderr
	}
	if c.clock == nil {
		c.clock = time.Now
	}
	return c
}

// Server is a running query service: an acceptor, one handler goroutine per
// connection, and one I/O goroutine per disk file. The grid file acts as
// the coordinator's scales+directory; record data is fetched from the page
// store with real file I/O.
type Server struct {
	cfg    Config
	grid   *gridfile.File
	st     *store.Store
	met    *Metrics
	faults *fault.Registry

	// bcache caches decoded buckets in front of the page store (nil when
	// disabled). Directory translation itself needs no lock: the grid
	// file's query paths are safe for concurrent readers.
	bcache *cache.Cache

	ln      net.Listener
	httpLn  net.Listener
	httpSrv *http.Server

	sem chan struct{}
	// tagSlots is the global budget for extra tagged-request workers: every
	// connection gets one worker for free, and beyond that the fleet of
	// pipelined workers across ALL connections is capped at MaxInflight.
	// Without it, conns×PipelineDepth goroutines pile up behind the
	// admission semaphore and scheduler churn erases the pipelining win.
	tagSlots chan struct{}
	sched    []*diskQueue
	fetchWg  sync.WaitGroup

	// replicated is st.Replicas() > 1: bucket reads choose the least-loaded
	// owner disk and transient per-disk failures fail over to surviving
	// owners before degrading. diskBytes/writeAmp describe the layout's
	// storage overhead (computed once at startup, reported in STATS).
	replicated bool
	diskBytes  int64
	writeAmp   float64

	// writable mirrors st.Writable(): the INSERT/DELETE verbs are accepted
	// and every directory translation runs under the store's grid read-lock,
	// since the grid mutates underneath concurrent queries.
	writable bool

	traceSeq atomic.Uint64 // data-query counter driving trace sampling
	traceMu  sync.Mutex    // serializes slow-query log lines

	mu        sync.Mutex // guards conns, closed
	conns     map[net.Conn]struct{}
	closed    bool
	ownsStore bool

	acceptWg sync.WaitGroup
	connWg   sync.WaitGroup
	scrubWg  sync.WaitGroup
	done     chan struct{}
}

// New starts a server over an already-open grid file (scales + directory)
// and page store. The grid file must be the one the layout was written
// from: every stored bucket is cross-checked against the directory before
// serving starts. The caller keeps ownership of grid and st.
func New(grid *gridfile.File, st *store.Store, cfg Config) (*Server, error) {
	m := st.Manifest()
	if grid.Dims() != m.Dims {
		return nil, fmt.Errorf("server: grid is %d-D, store is %d-D", grid.Dims(), m.Dims)
	}
	views := grid.Buckets()
	if len(views) != len(m.Buckets) {
		return nil, fmt.Errorf("server: grid has %d buckets, store has %d (layout from a different grid file?)",
			len(views), len(m.Buckets))
	}
	for _, v := range views {
		pl, ok := st.Placement(v.ID)
		if !ok {
			return nil, fmt.Errorf("server: bucket %d missing from store", v.ID)
		}
		if pl.Recs != v.Records {
			return nil, fmt.Errorf("server: bucket %d holds %d records in store, %d in grid",
				v.ID, pl.Recs, v.Records)
		}
	}

	cfg = cfg.withDefaults()
	if (cfg.VerifyChecksums || cfg.ScrubInterval > 0) && !st.Checksummed() {
		return nil, fmt.Errorf("server: layout has no page checksums to verify (re-lay it out with a current gridtool)")
	}
	s := &Server{
		cfg:      cfg,
		grid:     grid,
		st:       st,
		met:      newMetrics(m.Disks),
		faults:   cfg.Faults,
		sem:      make(chan struct{}, cfg.MaxInflight),
		tagSlots: make(chan struct{}, cfg.MaxInflight),
		sched:    make([]*diskQueue, m.Disks),
		conns:    make(map[net.Conn]struct{}),
		done:     make(chan struct{}),
	}
	st.SetFaults(s.faults)
	if cfg.VerifyChecksums {
		st.SetVerify(true)
	}
	s.writable = st.Writable()
	if s.writable && st.Grid() != grid {
		return nil, errors.New("server: a writable store must be served from its own grid (store.Grid())")
	}
	if cfg.CacheBytes > 0 {
		s.bcache = cache.New(cfg.CacheBytes, 0)
	}
	s.replicated = st.Replicas() > 1
	if sizes, err := st.DiskSizes(); err == nil {
		var totalPages, uniquePages int64
		for _, n := range sizes {
			totalPages += n
		}
		for _, pl := range m.Buckets {
			uniquePages += int64(pl.Pages)
		}
		s.diskBytes = totalPages * int64(m.PageBytes)
		if uniquePages > 0 {
			s.writeAmp = float64(totalPages) / float64(uniquePages)
		}
	}

	// One I/O worker per disk file: fetches on the same disk serialize (one
	// head per spindle, as in the paper's model) while distinct disks
	// proceed in parallel — this is where declustering quality becomes
	// real wall-clock parallelism. Each worker drains its submission ring
	// in windows, merging concurrent queries' batches into single coalesced
	// reads (see sched.go).
	for d := range s.sched {
		q := newDiskQueue()
		s.sched[d] = q
		s.fetchWg.Add(1)
		go s.diskWorker(d, q)
	}

	if cfg.ScrubInterval > 0 {
		s.scrubWg.Add(1)
		go s.scrubLoop()
	}

	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		s.stopFetchers()
		close(s.done)
		s.scrubWg.Wait()
		return nil, err
	}
	s.ln = ln
	s.acceptWg.Add(1)
	go s.acceptLoop()

	if cfg.HTTPAddr != "" {
		if err := s.startHTTP(cfg.HTTPAddr); err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}

// OpenDir opens a layout directory written by store.Write (which embeds the
// grid file as grid.grd) and serves it; Close releases the store. With
// cfg.Writable the store is opened for online mutation — crash-left journals
// are replayed before serving starts — and the server serves directly from
// the store's own (mutable) grid.
func OpenDir(dir string, cfg Config) (*Server, error) {
	var st *store.Store
	var err error
	if cfg.Writable {
		st, err = store.OpenWritable(dir)
	} else {
		st, err = store.Open(dir)
	}
	if err != nil {
		return nil, err
	}
	grid := st.Grid()
	if grid == nil {
		grid, err = store.OpenGrid(dir)
		if err != nil {
			st.Close()
			return nil, fmt.Errorf("server: %w (layouts written before grid embedding must be re-laid out)", err)
		}
	}
	s, err := New(grid, st, cfg)
	if err != nil {
		st.Close()
		return nil, err
	}
	s.ownsStore = true
	return s, nil
}

// Addr returns the TCP address the server listens on.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// HTTPAddr returns the metrics endpoint address, or nil if disabled.
func (s *Server) HTTPAddr() net.Addr {
	if s.httpLn == nil {
		return nil
	}
	return s.httpLn.Addr()
}

// Snapshot returns the server's current statistics.
func (s *Server) Snapshot() Snapshot {
	snap := s.met.snapshot(len(s.sem))
	snap.Dims = s.grid.Dims()
	snap.Disks = s.st.Manifest().Disks
	snap.Domain = s.st.Manifest().Domain
	snap.Replicas = s.st.Replicas()
	snap.DiskBytes = s.diskBytes
	snap.WriteAmp = s.writeAmp
	snap.FaultInjected = s.faults.Total()
	if s.bcache != nil {
		st := s.bcache.Stats()
		snap.Cache = &st
	}
	if s.writable {
		wc := s.st.WriteCounters()
		snap.Writes = &wc
	}
	return snap
}

// ScrubNow runs one synchronous integrity scrub over the layout (see
// store.Scrub) and folds its counts into the scrub_pages / scrub_corrupt /
// scrub_repaired counters. The background loop started by ScrubInterval
// calls it on every tick; tests and harnesses call it directly for a
// deterministic pass.
func (s *Server) ScrubNow(ctx context.Context) (store.ScrubStats, error) {
	st, err := s.st.Scrub(ctx, s.cfg.ScrubPause)
	s.met.scrubPages.Add(st.Pages)
	s.met.scrubCorrupt.Add(st.Corrupt)
	s.met.scrubRepaired.Add(st.Repaired)
	return st, err
}

// scrubLoop is the low-priority background scrubber: one full pass per
// ScrubInterval tick, cancelled promptly on shutdown.
func (s *Server) scrubLoop() {
	defer s.scrubWg.Done()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-s.done
		cancel()
	}()
	t := time.NewTicker(s.cfg.ScrubInterval)
	defer t.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-t.C:
			s.ScrubNow(ctx)
		}
	}
}

// FaultStatus is the JSON payload of a VerbFaultReply: the registry's seed,
// lifetime injection count, and every armed rule with its counters.
type FaultStatus struct {
	Seed     int64              `json:"seed"`
	Injected int64              `json:"injected_total"`
	Sites    []fault.SiteStatus `json:"sites,omitempty"`
}

// handleFault executes one FAULT admin command: "status" reports the armed
// rules, "clear" disarms them all, and anything else is parsed as a fault
// spec and armed on top of the current rules. Every command answers with
// the post-command status.
func (s *Server) handleFault(cmd string) ([]byte, error) {
	switch cmd {
	case "status":
	case "clear":
		s.faults.Clear()
	default:
		if err := s.faults.SetSpec(cmd); err != nil {
			return nil, err
		}
	}
	return json.Marshal(FaultStatus{
		Seed:     s.faults.Seed(),
		Injected: s.faults.Total(),
		Sites:    s.faults.Status(),
	})
}

func (s *Server) startHTTP(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		s.Snapshot().writePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"status":         "ok",
			"uptime_seconds": time.Since(s.met.start).Seconds(),
		})
	})
	if s.cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.httpLn = ln
	s.httpSrv = &http.Server{Handler: mux}
	go s.httpSrv.Serve(ln)
	return nil
}

func (s *Server) acceptLoop() {
	defer s.acceptWg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.connWg.Add(1)
		go s.handleConn(c)
	}
}

func (s *Server) dropConn(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	c.Close()
}

// respBufPool pools fully encoded response frames on their way from a
// dispatching goroutine to the connection writer. Buffers above
// maxPooledRespBuf are dropped on return so one huge point-set reply cannot
// pin memory for the life of the pool.
var respBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 512)
	return &b
}}

const maxPooledRespBuf = 64 << 10

func getRespBuf() *[]byte { return respBufPool.Get().(*[]byte) }

func putRespBuf(bp *[]byte) {
	if cap(*bp) > maxPooledRespBuf {
		return
	}
	respBufPool.Put(bp)
}

// connReadBufBytes sizes the per-connection buffered reader. Requests are
// tens of bytes, so one read syscall typically drains a whole pipeline
// window instead of paying two syscalls (header + payload) per frame.
const connReadBufBytes = 16 << 10

// maxWriteBatch bounds how many queued responses one writev submits.
const maxWriteBatch = 64

// handleConn serves one client connection with decoupled read and write
// sides (DESIGN S26). The reader decodes frames and dispatches them; fully
// encoded responses flow through a bounded queue to a writer goroutine that
// coalesces adjacent responses into a single writev. Untagged requests are
// executed inline in the reader, which preserves the strict
// one-request/one-response ordering pre-pipelining clients rely on; tagged
// (pipelined) requests execute concurrently — up to PipelineDepth per
// connection — and may complete out of order, which is exactly what the
// echoed request id is for.
//
// A frame-level error (desynchronized or hostile stream) is answered and
// closes the connection; a request-level error is answered and the
// connection kept.
func (s *Server) handleConn(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok && !s.cfg.DisableNoDelay {
		tc.SetNoDelay(true)
	}
	depth := s.cfg.PipelineDepth
	respCh := make(chan connResp, depth)
	writerDone := make(chan struct{})
	var writeFailed atomic.Bool
	go s.connWriter(c, respCh, &writeFailed, writerDone)

	// Tagged requests execute on a per-connection worker pool, grown lazily
	// up to depth goroutines. The work channel is unbuffered, so when every
	// worker is busy the reader blocks here — that bounds both concurrent
	// execution and (since each worker holds at most one encoded response)
	// the number of responses ever in flight, and enqueueing can never
	// deadlock against the queue bound.
	work := make(chan *taggedBatch)
	spread := make(chan *taggedBatch)
	workers := 0
	var inflight sync.WaitGroup

	defer s.connWg.Done()
	defer s.dropConn(c)
	defer func() {
		// Teardown order matters: release the workers (they hold references
		// to respCh), wait for them to drain, close the queue, and only
		// after the writer has flushed and exited close the connection.
		close(work)
		inflight.Wait()
		close(respCh)
		<-writerDone
	}()

	// sendError enqueues an error reply for stream-level failures that have
	// no decodable request behind them.
	sendError := func(msg string) {
		bp := getRespBuf()
		*bp = appendErrorFrame((*bp)[:0], msg, 0, false)
		respCh <- connResp{bp: bp, frames: 1}
	}

	br := bufio.NewReaderSize(c, connReadBufBytes)
	// Frames are read into pooled buffers. An untagged frame is served inline
	// and its buffer reused for the next read; a tagged frame's buffer moves
	// to the worker, which recycles it once the request is decoded and served.
	rbuf := getRespBuf()
	defer func() { putRespBuf(rbuf) }()
	for {
		c.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		f, err := readFrameBuf(br, rbuf)
		if err != nil {
			if errors.Is(err, ErrFrameTooBig) || errors.Is(err, ErrEmptyFrame) {
				s.met.errors.Add(1)
				sendError(err.Error())
			}
			return
		}
		if writeFailed.Load() {
			return
		}
		if f.Verb == VerbTagged {
			id, inner, uerr := UnwrapTagged(f)
			if uerr != nil {
				// A malformed envelope means ids can no longer be trusted;
				// treat it like a desynchronized stream.
				s.met.errors.Add(1)
				sendError(uerr.Error())
				return
			}
			// Batch the dispatch: every complete tagged frame already
			// sitting in the read buffer rides the same handoff, so a burst
			// of pipelined requests costs one worker wakeup — and, since the
			// worker encodes the whole batch into one buffer, one response
			// enqueue — instead of one per request.
			batch := batchPool.Get().(*taggedBatch)
			batch.works[0] = taggedWork{id: id, f: inner, buf: rbuf}
			batch.n = 1
			rbuf = getRespBuf() // the worker owns the old buffer now
			streamErr := ""
			for batch.n < len(batch.works) && nextTaggedBuffered(br) {
				f, err := readFrameBuf(br, rbuf)
				if err != nil {
					streamErr = err.Error()
					break
				}
				id, inner, uerr := UnwrapTagged(f)
				if uerr != nil {
					streamErr = uerr.Error()
					break
				}
				batch.works[batch.n] = taggedWork{id: id, f: inner, buf: rbuf}
				batch.n++
				rbuf = getRespBuf()
			}
			// Hand the batch off to a worker; grow the pool only within
			// budget: the first worker is free (every connection can always
			// make progress); extra workers draw from the server-wide
			// tagSlots budget, so the total pipelined-worker count stays
			// bounded by conns+MaxInflight no matter how many connections
			// pipeline deeply. The pool ramps toward the batch size so a
			// multi-request batch has idle siblings to spread across when
			// its requests turn out to be expensive; growth is one-time
			// (workers persist until the connection closes), so steady
			// state pays nothing here.
			need := batch.n
			if need > depth {
				need = depth
			}
			for workers < need && (workers == 0 || s.tryTagSlot()) {
				workers++
				inflight.Add(1)
				go s.taggedWorker(work, spread, respCh, &inflight, workers > 1)
			}
			select {
			case work <- batch:
			case <-s.done:
				return
			}
			if streamErr != "" {
				s.met.errors.Add(1)
				sendError(streamErr)
				return
			}
		} else {
			bp := getRespBuf()
			*bp = s.serveFrame((*bp)[:0], f, 0, false)
			respCh <- connResp{bp: bp, frames: 1}
		}
		select {
		case <-s.done:
			return // draining: finish the in-flight replies, then hang up
		default:
		}
	}
}

// taggedWork is one pipelined request in flight from a connection's reader to
// its worker pool: the decoded envelope plus the pooled buffer backing the
// frame's payload, recycled by the worker after serving.
type taggedWork struct {
	id  uint32
	f   Frame
	buf *[]byte
}

// taggedBatch groups the tagged requests one reader pass drained from its
// connection's buffer: one handoff to a worker, one encoded response buffer
// back. Its capacity caps how many requests serve serially on one worker, so
// a batch never serializes more work than one bufio refill delivers.
type taggedBatch struct {
	n     int
	works [16]taggedWork
}

var batchPool = sync.Pool{New: func() any { return new(taggedBatch) }}

// nextTaggedBuffered reports whether a complete, well-formed-length tagged
// frame is already sitting in br's buffer, so reading it cannot block. An
// untagged or malformed next frame stops the batch and is left for the
// reader's main loop to handle.
func nextTaggedBuffered(br *bufio.Reader) bool {
	if br.Buffered() < 5 {
		return false // Peek past Buffered would block on the socket
	}
	hdr, err := br.Peek(5)
	if err != nil {
		return false
	}
	n := binary.LittleEndian.Uint32(hdr)
	if n == 0 || n > MaxFrameBytes || Verb(hdr[4]) != VerbTagged {
		return false
	}
	return br.Buffered() >= 4+int(n)
}

// tryTagSlot claims one global pipelined-worker slot without blocking.
func (s *Server) tryTagSlot() bool {
	select {
	case s.tagSlots <- struct{}{}:
		return true
	default:
		return false
	}
}

// taggedWorker serves tagged request batches for one connection until the
// work channel closes. Workers never block each other: each serves one batch
// at a time, encoding every response in the batch into a single buffer, and
// parks on the (bounded) response queue only while the writer drains. A
// slotted worker returns its tagSlots token on exit.
//
// A worker holding a multi-request batch offers half of what remains to an
// idle sibling before each serve (steal-half work spreading, via a
// non-blocking send on the spread channel); see the loop body for how that
// adapts between overlapping expensive requests and batch-encoding cheap
// ones. The spread channel is separate from work — and never closed — so a worker
// mid-offer can never race the reader closing the work channel at teardown;
// it is unbuffered, so a batch moves across it only by direct handoff to a
// parked sibling and nothing is ever stranded in it.
func (s *Server) taggedWorker(work <-chan *taggedBatch, spread chan *taggedBatch, respCh chan<- connResp, inflight *sync.WaitGroup, slotted bool) {
	defer inflight.Done()
	if slotted {
		defer func() { <-s.tagSlots }()
	}
	for {
		var batch *taggedBatch
		select {
		case b, ok := <-work:
			if !ok {
				return
			}
			batch = b
		case batch = <-spread:
		}
		bp := getRespBuf()
		out := (*bp)[:0]
		served := 0
		for i := 0; i < batch.n; i++ {
			// Before each serve, offer half of what remains to an idle
			// sibling (steal-half). In the cache-cold phase — where each
			// request waits on disk — siblings are parked and the batch
			// halves recursively down to singles, keeping fetches
			// overlapped instead of serialized behind one worker. When
			// requests are cheap every sibling is busy, the offer fails
			// for the cost of one channel poll, and the whole batch is
			// encoded into a single buffer — exactly when serial is
			// fastest.
			if rem := batch.n - i; rem > 1 {
				half := rem / 2
				rest := batchPool.Get().(*taggedBatch)
				rest.n = copy(rest.works[:], batch.works[batch.n-half:batch.n])
				select {
				case spread <- rest:
					for j := batch.n - half; j < batch.n; j++ {
						batch.works[j] = taggedWork{}
					}
					batch.n -= half
				default:
					rest.n = 0
					batchPool.Put(rest)
				}
			}
			tw := &batch.works[i]
			out = s.serveFrame(out, tw.f, tw.id, true)
			putRespBuf(tw.buf)
			batch.works[i] = taggedWork{}
			served++
		}
		*bp = out
		batch.n = 0
		batchPool.Put(batch)
		respCh <- connResp{bp: bp, frames: served}
	}
}

// connResp is one encoded response buffer headed for a connection's writer,
// with the number of wire frames it holds: a tagged worker packs a whole
// request batch's replies into one buffer.
type connResp struct {
	bp     *[]byte
	frames int
}

// connWriter drains one connection's response queue. Each pass takes
// everything immediately available (up to maxWriteBatch buffers) and submits
// it as a single writev via net.Buffers, so under pipelined load adjacent
// responses coalesce into one syscall instead of one each. After a write
// error the writer keeps draining and recycling buffers — dispatchers must
// never block on a dead connection — and closes the conn to unblock the
// reader.
func (s *Server) connWriter(c net.Conn, respCh <-chan connResp, failed *atomic.Bool, done chan<- struct{}) {
	defer close(done)
	batch := make([]connResp, 0, maxWriteBatch)
	iov := make(net.Buffers, 0, maxWriteBatch)
	for {
		r, ok := <-respCh
		if !ok {
			return
		}
		batch = append(batch[:0], r)
		open := true
	drain:
		for len(batch) < maxWriteBatch {
			select {
			case r, ok := <-respCh:
				if !ok {
					open = false
					break drain
				}
				batch = append(batch, r)
			default:
				break drain
			}
		}
		if !failed.Load() {
			// WriteTo consumes its receiver, so rebuild the iovec from the
			// batch each pass; the buffers themselves are not copied.
			iov = iov[:0]
			frames := 0
			for _, r := range batch {
				iov = append(iov, *r.bp)
				frames += r.frames
			}
			c.SetWriteDeadline(time.Now().Add(s.cfg.QueryTimeout))
			if _, err := iov.WriteTo(c); err != nil {
				failed.Store(true)
				c.Close()
			} else {
				s.met.writeBatches.Add(1)
				s.met.writeFrames.Add(int64(frames))
			}
		}
		for _, r := range batch {
			putRespBuf(r.bp)
		}
		if !open {
			return
		}
	}
}

// qstate is the pooled per-query scratch: the decoded request plus the
// bucket-id and arena-record slices query execution scans over. Pooling it
// keeps the steady-state serving path allocation-free.
type qstate struct {
	req  Request
	ids  []int32
	recs []geom.Flat
}

var qstatePool = sync.Pool{New: func() any { return new(qstate) }}

// serveAdmin answers the STATS and FAULT verbs, which bypass admission
// control so operators can observe — and heal — a saturated or fault-wedged
// server.
func (s *Server) serveAdmin(buf []byte, req *Request, id uint32, tagged bool) []byte {
	var verb Verb
	var body []byte
	var err error
	if req.Verb == VerbStats {
		s.met.queries[verbIndex(VerbStats)].Add(1)
		verb = VerbStatsReply
		body, err = json.Marshal(s.Snapshot())
	} else {
		s.met.queries[verbIndex(VerbFault)].Add(1)
		verb = VerbFaultReply
		body, err = s.handleFault(req.FaultCmd)
	}
	if err != nil {
		s.met.errors.Add(1)
		return appendErrorFrame(buf, err.Error(), id, tagged)
	}
	out, start := beginFrame(buf, verb, id, tagged)
	out = append(out, body...)
	out, err = endFrame(out, start)
	if err != nil {
		s.met.errors.Add(1)
		return appendErrorFrame(out[:start], err.Error(), id, tagged)
	}
	return out
}

// serveFrame decodes, admits, executes and encodes one request, appending
// the complete wire-ready response frame onto buf — tagged with the echoed
// request id when the request arrived in a pipelining envelope. The reply
// verb is fixed by the request shape, so the response frame is opened before
// execution and matching records stream straight into it as the scan visits
// them — no intermediate point set, no second copy.
func (s *Server) serveFrame(buf []byte, f Frame, id uint32, tagged bool) []byte {
	qs := qstatePool.Get().(*qstate)
	defer qstatePool.Put(qs)
	if err := decodeRequestInto(f, &qs.req); err != nil {
		s.met.errors.Add(1)
		return appendErrorFrame(buf, err.Error(), id, tagged)
	}
	req := &qs.req
	if req.Verb == VerbStats || req.Verb == VerbFault {
		return s.serveAdmin(buf, req, id, tagged)
	}

	qc := acquireQueryCtx(s.cfg.QueryTimeout)
	defer qc.release()

	tr := s.acquireTrace()
	admitStart := s.traceNow(tr)

	// Admission control: at most MaxInflight queries execute; the rest
	// wait here, which backpressures their connections instead of
	// spawning unbounded work. A query turned away here was never
	// admitted — that is a rejection, distinct from the deadline_exceeded
	// counter below, which covers queries that ran and expired mid-flight.
	// The uncontended path claims its slot without ever arming qc's
	// deadline timer.
	select {
	case s.sem <- struct{}{}:
	default:
		select {
		case s.sem <- struct{}{}:
		case <-qc.Done():
			releaseTrace(tr)
			s.met.rejected.Add(1)
			return appendErrorFrame(buf, "server busy: admission queue full past deadline", id, tagged)
		case <-s.done:
			releaseTrace(tr)
			return appendErrorFrame(buf, "server shutting down", id, tagged)
		}
	}
	defer func() { <-s.sem }()
	s.traceSince(tr, stageAdmission, admitStart)

	verb := VerbPoints
	switch {
	case req.Verb == VerbRange && req.CountOnly:
		verb = VerbCount
	case req.Verb == VerbInsert || req.Verb == VerbDelete:
		verb = VerbWriteOK
	}
	out, fstart := beginFrame(buf, verb, id, tagged)
	var enc resultEncoder
	if verb == VerbPoints {
		enc = newResultEncoder(out, s.grid.Dims())
	}

	start := s.cfg.clock()
	res, err := s.executeTraced(qc, qs, tr, &enc)
	if verb == VerbPoints {
		out = enc.buf
	}
	if err != nil {
		s.finishTrace(tr, req.Verb, s.cfg.clock().Sub(start), res.Info, err)
		if qc.Err() != nil {
			s.met.deadlineExceeded.Add(1)
			return appendErrorFrame(out[:fstart], "deadline exceeded: "+err.Error(), id, tagged)
		}
		s.met.errors.Add(1)
		return appendErrorFrame(out[:fstart], err.Error(), id, tagged)
	}
	res.Info.Elapsed = s.cfg.clock().Sub(start)
	s.met.queries[verbIndex(req.Verb)].Add(1)
	if res.Info.Degraded {
		s.met.degraded.Add(1)
	}
	s.met.latency.observe(float64(res.Info.Elapsed.Microseconds()))
	s.met.fetches.observe(float64(res.Info.Buckets))

	// Row payloads were encoded during the scan; all that is left is the
	// count back-patch and the info trailer.
	encStart := s.traceNow(tr)
	if verb == VerbPoints {
		out, err = enc.finish(res.Info)
	} else {
		out, err = AppendResult(out, verb, res)
	}
	s.traceSince(tr, stageEncode, encStart)
	if err != nil {
		s.finishTrace(tr, req.Verb, res.Info.Elapsed, res.Info, err)
		s.met.errors.Add(1)
		return appendErrorFrame(out[:fstart], err.Error(), id, tagged)
	}
	out, err = endFrame(out, fstart)
	if err != nil {
		s.finishTrace(tr, req.Verb, res.Info.Elapsed, res.Info, err)
		s.met.errors.Add(1)
		return appendErrorFrame(out[:fstart], err.Error(), id, tagged)
	}
	s.finishTrace(tr, req.Verb, res.Info.Elapsed, res.Info, nil)
	return out
}

// executeTraced runs execute, and — only when the query carries a trace —
// under pprof labels (verb, degraded-mode) so CPU profiles of a live server
// split by query shape. Untraced queries take the plain path and pay for
// neither the labels nor the context allocation behind them.
func (s *Server) executeTraced(ctx context.Context, qs *qstate, tr *Trace, enc *resultEncoder) (res Result, err error) {
	if tr == nil {
		return s.execute(ctx, qs, nil, enc)
	}
	deg := "off"
	if s.cfg.Degraded {
		deg = "on"
	}
	rpprof.Do(ctx, rpprof.Labels("verb", verbName(qs.req.Verb), "degraded", deg),
		func(ctx context.Context) {
			res, err = s.execute(ctx, qs, tr, enc)
		})
	return res, err
}

func (s *Server) execute(ctx context.Context, qs *qstate, tr *Trace, enc *resultEncoder) (Result, error) {
	req := &qs.req
	dims := s.grid.Dims()
	switch req.Verb {
	case VerbPoint:
		if len(req.Key) != dims {
			return Result{}, fmt.Errorf("key is %d-D, grid is %d-D", len(req.Key), dims)
		}
		return s.pointQuery(ctx, qs, tr, enc, req.Key)
	case VerbRange:
		if len(req.Query) != dims {
			return Result{}, fmt.Errorf("query is %d-D, grid is %d-D", len(req.Query), dims)
		}
		return s.rangeQuery(ctx, qs, tr, enc, req.Query, req.CountOnly)
	case VerbPartial:
		if len(req.Vals) != dims {
			return Result{}, fmt.Errorf("query is %d-D, grid is %d-D", len(req.Vals), dims)
		}
		return s.partialQuery(ctx, qs, tr, enc, req.Vals)
	case VerbKNN:
		if len(req.Key) != dims {
			return Result{}, fmt.Errorf("key is %d-D, grid is %d-D", len(req.Key), dims)
		}
		return s.knnQuery(ctx, qs, tr, enc, req.Key, req.K)
	case VerbInsert, VerbDelete:
		if len(req.Key) != dims {
			return Result{}, fmt.Errorf("key is %d-D, grid is %d-D", len(req.Key), dims)
		}
		return s.writeOp(ctx, req.Verb, req.Key)
	}
	return Result{}, fmt.Errorf("unhandled verb 0x%02x", uint8(req.Verb))
}

// writeOp executes one INSERT or DELETE against the writable store and
// invalidates every bucket the mutation touched in the bucket cache — only
// after the store has journaled the op and swapped the rewritten placements,
// so a read admitted after the ack can never see pre-write data through a
// stale cache entry (a concurrent leader that loaded the old pages is fenced
// by the cache's invalidation stamp). The store serializes mutations
// internally; concurrent INSERTs from many connections are safe.
func (s *Server) writeOp(ctx context.Context, verb Verb, key geom.Point) (Result, error) {
	if !s.writable {
		return Result{}, errors.New("server is read-only (restart with writes enabled)")
	}
	var res Result
	var dirty []int32
	if verb == VerbInsert {
		ir, err := s.st.Insert(ctx, key)
		if err != nil {
			return Result{}, err
		}
		res.Applied = true
		res.Splits = ir.Splits
		dirty = ir.Dirty()
	} else {
		dr, err := s.st.Delete(ctx, key)
		if err != nil {
			return Result{}, err
		}
		res.Applied = dr.Removed
		dirty = dr.Dirty()
		if dr.Merged {
			dirty = append(dirty, dr.Dead)
		}
	}
	if s.bcache != nil && len(dirty) > 0 {
		s.bcache.Invalidate(dirty...)
	}
	res.Info.Buckets = len(dirty)
	return res, nil
}

// publishLeads completes every bucket of a successfully read batch in the
// cache, so followers blocked in Pending.Wait unblock with the data.
func (s *Server) publishLeads(ids []int32, recs []geom.Flat) {
	if s.bcache == nil {
		return
	}
	for i, id := range ids {
		pl, _ := s.st.Placement(id)
		s.bcache.Complete(id, recs[i], pl.Pages, nil)
	}
}

// failLeads publishes err for every bucket this query volunteered to load,
// so waiting followers unblock and the cache's in-flight table stays clean.
// Used for batches never handed to a disk worker and for batches whose
// failover routes are exhausted; successful batches are published by the
// disk workers.
func (s *Server) failLeads(ids []int32, err error) {
	if s.bcache == nil {
		return
	}
	for _, id := range ids {
		s.bcache.Complete(id, geom.Flat{}, 0, err)
	}
}

// fetchBuckets resolves a query's bucket set into recs (parallel to ids,
// len(recs) == len(ids), pre-zeroed by the caller): cache hits are filled
// immediately, buckets another in-flight query is already reading are
// joined (singleflight), and the rest are batched per disk and submitted to
// the disk workers' request rings. Every bucket this query leads is
// published to the cache exactly once — with data or with the error —
// before fetchBuckets returns, so followers never wait on an abandoned
// load. A degraded return leaves missed buckets as zero Flats, which scan
// as empty.
//
// The common case — every bucket resident — never leaves this function and
// allocates nothing.
func (s *Server) fetchBuckets(ctx context.Context, tr *Trace, ids []int32, recs []geom.Flat) (QueryInfo, error) {
	var info QueryInfo
	cacheStart := s.traceNow(tr)
	if s.bcache != nil {
		for i, id := range ids {
			r := s.bcache.Acquire(id)
			if !r.Hit {
				return s.fetchBucketsSlow(ctx, tr, ids, recs, i, r, true, info, cacheStart)
			}
			recs[i] = r.Rec
			info.Buckets++
		}
		s.traceSince(tr, stageCache, cacheStart)
		tr.noteCache(len(ids), 0, 0)
		return info, nil
	}
	return s.fetchBucketsSlow(ctx, tr, ids, recs, 0, cache.AcquireResult{}, false, info, cacheStart)
}

// leadBatch is one disk's worth of buckets a query must read itself, with
// each bucket's index into the query's recs slice riding along so responses
// scatter straight into place.
type leadBatch struct {
	ids  []int32
	idxs []int
}

// fetchBucketsSlow is the miss path of fetchBuckets, entered at position i
// with — when haveFirst — the AcquireResult already obtained for ids[i]
// (re-acquiring would self-join a load this query leads and deadlock).
func (s *Server) fetchBucketsSlow(ctx context.Context, tr *Trace, ids []int32, recs []geom.Flat,
	i int, first cache.AcquireResult, haveFirst bool, info QueryInfo, cacheStart time.Time) (QueryInfo, error) {
	type join struct {
		idx int
		id  int32
		p   *cache.Pending
	}
	var joins []join
	var leads map[int]*leadBatch // disk -> buckets this query must read
	nleads := 0
	hits := info.Buckets
	for ; i < len(ids); i++ {
		id := ids[i]
		var r cache.AcquireResult
		switch {
		case haveFirst:
			r, haveFirst = first, false
		case s.bcache != nil:
			r = s.bcache.Acquire(id)
		default:
			// No cache: every bucket is this query's own read.
			r = cache.AcquireResult{Leader: true}
		}
		switch {
		case r.Hit:
			recs[i] = r.Rec
			info.Buckets++
			hits++
			continue
		case r.Pending != nil:
			joins = append(joins, join{i, id, r.Pending})
			continue
		}
		pl, ok := s.st.Placement(id)
		if !ok {
			err := fmt.Errorf("bucket %d not in store", id)
			s.failLeads(ids[i:i+1], err)
			for _, b := range leads {
				s.failLeads(b.ids, err)
			}
			s.traceSince(tr, stageCache, cacheStart)
			return info, err
		}
		disk := pl.Disk
		if s.replicated {
			// Load-aware read selection: route the lead to the least-loaded
			// live owner. Ties prefer the primary, so an idle server reads
			// like an unreplicated one.
			if d, live := s.st.PickOwner(id, nil); live {
				disk = d
			}
		}
		if leads == nil {
			leads = make(map[int]*leadBatch)
		}
		b := leads[disk]
		if b == nil {
			b = &leadBatch{}
			leads[disk] = b
		}
		b.ids = append(b.ids, id)
		b.idxs = append(b.idxs, i)
		nleads++
	}
	s.traceSince(tr, stageCache, cacheStart)
	tr.noteCache(hits, len(joins), nleads)

	// One batch per disk. The response channel is buffered for every lead
	// bucket: outstanding batches always hold disjoint lead sets (a failed
	// batch is regrouped only after its response is drained), so at most
	// nleads responses can ever be in flight and disk workers never block
	// on an abandoned query. The gather loop waits for every submitted batch
	// (the workers answer expired contexts immediately). Leads of successful
	// batches are completed by the disk workers; failed or never-submitted
	// batches are completed here, after failover is exhausted.
	resp := make(chan fetchResp, nleads)
	var err error
	submitted := 0
	for disk, b := range leads {
		if err != nil {
			s.failLeads(b.ids, err)
			continue
		}
		if !s.sched[disk].submit(fetchReq{ids: b.ids, idxs: b.idxs, ctx: ctx, resp: resp, tr: tr, enq: s.traceNow(tr)}) {
			err = errors.New("server shutting down")
			s.failLeads(b.ids, err)
			continue
		}
		s.st.AddLoad(disk, int64(len(b.ids)))
		submitted++
	}
	// missedDisks records disks whose batches failed transiently while
	// degraded mode absorbs the failure; the answer then covers only the
	// surviving disks (a strict subset of the full result, never wrong
	// records, because buckets are whole-disk resident). On a replicated
	// layout failover comes first: bucketFailed tracks, PER BUCKET, the
	// disks it has already failed on, and each failed bucket is rerouted to
	// its least-loaded remaining owner. The exclusion set is per bucket, not
	// per query: two unrelated batches failing on different disks must not
	// condemn a third bucket that owns copies on both but never tried either
	// — with transient (probabilistic) faults that would lose buckets a live
	// owner could still serve. Each reroute excludes one more distinct owner,
	// so a bucket fails over at most r-1 times before it is lost.
	var missedDisks map[int]bool
	degrade := func(disk int) {
		if missedDisks == nil {
			missedDisks = make(map[int]bool)
		}
		missedDisks[disk] = true
	}
	var bucketFailed map[int32][]int
	var nPrimary, nSecondary int64
	for outstanding := submitted; outstanding > 0; {
		r := <-resp
		outstanding--
		s.st.AddLoad(r.disk, -int64(len(r.ids)))
		if r.err == nil {
			for k := range r.ids {
				recs[r.idxs[k]] = r.recs[k]
				info.Buckets++
			}
			info.Pages += r.pages
			if s.replicated {
				for _, id := range r.ids {
					if own := s.st.Owners(id); len(own) > 0 && own[0] != r.disk {
						nSecondary++
					} else {
						nPrimary++
					}
				}
			}
			continue
		}
		if s.replicated && err == nil && s.transientErr(ctx, r.err) {
			if bucketFailed == nil {
				bucketFailed = make(map[int32][]int)
			}
			for _, id := range r.ids {
				bucketFailed[id] = append(bucketFailed[id], r.disk)
			}
			if resubmitted := s.failOver(ctx, tr, resp, r, bucketFailed, degrade, &err); resubmitted > 0 {
				outstanding += resubmitted
			}
			continue
		}
		// No failover route: complete the leads with the error so followers
		// unblock, then absorb the failure (degraded) or surface it.
		s.failLeads(r.ids, r.err)
		if s.degradable(ctx, r.err) {
			degrade(r.disk)
			continue
		}
		if err == nil {
			err = r.err
		}
	}
	if nPrimary > 0 {
		s.met.replicaReadsPrimary.Add(nPrimary)
	}
	if nSecondary > 0 {
		s.met.replicaReadsSecondary.Add(nSecondary)
	}
	if err != nil {
		return info, err
	}

	// Collect joined loads last: their leaders read in parallel with ours.
	// A leader's transient failure degrades this query too — the bucket's
	// disk is what actually failed. Waiting on a leader counts as cache
	// time: the bucket is being materialized by the cache's singleflight,
	// not by this query's own I/O.
	joinStart := s.traceNow(tr)
	defer s.traceSince(tr, stageCache, joinStart)
	for _, j := range joins {
		rec, _, werr := j.p.Wait(ctx)
		if werr != nil {
			if s.degradable(ctx, werr) {
				if pl, ok := s.st.Placement(j.id); ok {
					degrade(pl.Disk)
					continue
				}
			}
			return info, werr
		}
		recs[j.idx] = rec
		info.Buckets++
	}
	if len(missedDisks) > 0 {
		info.Degraded = true
		info.MissedDisks = len(missedDisks)
	}
	return info, nil
}

// failOver reroutes one transiently failed batch to surviving owner disks:
// each bucket is resubmitted to its least-loaded owner it has not yet failed
// on (per bucketFailed) as its OWN single-bucket batch with a fresh retry
// budget. The split is deliberate — failover is the last stop before losing
// the bucket, and in the original coalesced batch one unlucky injected pread
// fails every bucket riding along; independent retries make the per-bucket
// survival odds (1-p)^attempts instead of (1-p)^(attempts·runs). Buckets
// whose every owner already failed — and reroutes the failover failpoint
// kills — are completed with the original error and absorbed as degraded (or
// surfaced via *errp). It returns the number of batches resubmitted, which
// the gather loop must keep waiting for.
func (s *Server) failOver(ctx context.Context, tr *Trace, resp chan fetchResp,
	r fetchResp, bucketFailed map[int32][]int, degrade func(int), errp *error) int {
	var lost []int32
	resubmitted := 0
	for k, id := range r.ids {
		tried := bucketFailed[id]
		disk, ok := s.st.PickOwner(id, func(d int) bool {
			for _, fd := range tried {
				if fd == d {
					return true
				}
			}
			return false
		})
		if !ok {
			lost = append(lost, id)
			continue
		}
		// The failover redirect is itself a failpoint site: chaos runs can
		// stall it or kill it, forcing the pre-replication degraded fallback.
		redirected := true
		if inj, hit := s.faults.Eval(fault.SiteServerFailover); hit {
			if inj.Delay > 0 && fault.Sleep(ctx, inj.Delay) != nil {
				redirected = false
			}
			if inj.Err != nil {
				redirected = false
			}
		}
		if !redirected {
			lost = append(lost, id)
			continue
		}
		if !s.sched[disk].submit(fetchReq{ids: r.ids[k : k+1], idxs: r.idxs[k : k+1], ctx: ctx, resp: resp, tr: tr, enq: s.traceNow(tr)}) {
			lost = append(lost, id)
			continue
		}
		s.st.AddLoad(disk, 1)
		s.met.replicaFailover.Add(1)
		resubmitted++
	}
	if len(lost) > 0 {
		s.failLeads(lost, r.err)
		if s.degradable(ctx, r.err) {
			degrade(r.disk)
		} else if *errp == nil {
			*errp = r.err
		}
	}
	return resubmitted
}

// transientErr reports whether a fetch failure is recoverable by reading
// elsewhere — injected, a per-attempt fetch timeout, or a detected page
// checksum mismatch, with the query itself still live — and thus a
// candidate for replica failover or degraded absorption. A checksum
// failure is corruption of ONE copy, not of the bucket: a surviving
// replica (or the scrubber's repair) still holds the records, which is
// exactly what failover routes to. Structural failures (unknown buckets, a
// manifest that disagrees with the page files) stay fatal.
func (s *Server) transientErr(ctx context.Context, err error) bool {
	if ctx.Err() != nil {
		return false
	}
	return fault.IsInjected(err) || store.IsChecksum(err) ||
		(s.cfg.FetchTimeout > 0 && errors.Is(err, context.DeadlineExceeded))
}

// degradable reports whether a fetch error may be absorbed into a partial
// answer: degraded mode is on, the query itself is still live, and the
// failure is transient.
func (s *Server) degradable(ctx context.Context, err error) bool {
	return s.cfg.Degraded && s.transientErr(ctx, err)
}

// Translation locking: on a writable server the grid's scales and directory
// mutate underneath concurrent queries, so every directory translation runs
// under the store's grid read-lock. The store only takes the corresponding
// write-lock for the in-memory apply step of a mutation (journal fsyncs
// happen before it), so readers are never blocked on disk I/O. On read-only
// stores RLockGrid is a no-op and translation stays lock-free.

// growFlats returns a zeroed length-n slice, reusing s's backing array when
// it is big enough. Zeroing matters: a degraded fetch leaves missing
// buckets untouched, and a stale arena left over from the previous query
// through the same pooled scratch would otherwise be scanned as live data.
func growFlats(s []geom.Flat, n int) []geom.Flat {
	if cap(s) < n {
		return make([]geom.Flat, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = geom.Flat{}
	}
	return s
}

func (s *Server) pointQuery(ctx context.Context, qs *qstate, tr *Trace, enc *resultEncoder, key geom.Point) (Result, error) {
	tstart := s.traceNow(tr)
	s.st.RLockGrid()
	id, ok := s.grid.BucketAt(key)
	s.st.RUnlockGrid()
	s.traceSince(tr, stageTranslate, tstart)
	if !ok {
		return Result{}, fmt.Errorf("key %v outside the domain", key)
	}
	qs.ids = append(qs.ids[:0], id)
	qs.recs = growFlats(qs.recs, 1)
	info, err := s.fetchBuckets(ctx, tr, qs.ids, qs.recs)
	if err != nil {
		return Result{}, err
	}
	var res Result
	res.Info = info
	rec := qs.recs[0]
	for i := 0; i < rec.Len(); i++ {
		row := rec.Row(i)
		if pointsEqual(row, key) {
			enc.appendRow(row)
		}
	}
	res.Count = enc.count()
	return res, nil
}

func (s *Server) rangeQuery(ctx context.Context, qs *qstate, tr *Trace, enc *resultEncoder, q geom.Rect, countOnly bool) (Result, error) {
	tstart := s.traceNow(tr)
	s.st.RLockGrid()
	qs.ids = s.grid.BucketsInRangeAppend(q, qs.ids[:0])
	s.st.RUnlockGrid()
	s.traceSince(tr, stageTranslate, tstart)
	qs.recs = growFlats(qs.recs, len(qs.ids))
	info, err := s.fetchBuckets(ctx, tr, qs.ids, qs.recs)
	if err != nil {
		return Result{}, err
	}
	// The filter predicate runs directly over the arena rows; matches are
	// either counted or appended straight into the response frame.
	var res Result
	res.Info = info
	for _, rec := range qs.recs {
		for i := 0; i < rec.Len(); i++ {
			row := rec.Row(i)
			if q.ContainsPoint(row) {
				if countOnly {
					res.Count++
				} else {
					enc.appendRow(row)
				}
			}
		}
	}
	if !countOnly {
		res.Count = enc.count()
	}
	return res, nil
}

func (s *Server) partialQuery(ctx context.Context, qs *qstate, tr *Trace, enc *resultEncoder, vals []float64) (Result, error) {
	dom := s.grid.Domain()
	q := make(geom.Rect, len(vals))
	for d, v := range vals {
		if math.IsNaN(v) {
			q[d] = dom[d]
		} else {
			q[d] = geom.Interval{Lo: v, Hi: v}
		}
	}
	// Range containment already requires equality on the specified
	// (degenerate) intervals; nothing further to filter.
	return s.rangeQuery(ctx, qs, tr, enc, q, false)
}

// knnQuery finds the k nearest stored points by growing a range box around
// the key — the grid file's classic expanding-search strategy, executed
// against the page store so every probe is real declustered I/O. Buckets
// are fetched at most once per query.
func (s *Server) knnQuery(ctx context.Context, qs *qstate, tr *Trace, enc *resultEncoder, key geom.Point, k int) (Result, error) {
	dom := s.grid.Domain()
	if err := domContains(dom, key); err != nil {
		return Result{}, err
	}
	// Initial radius: one average cell extent, so the first probe touches
	// roughly the cell neighbourhood of the key.
	r := 0.0
	s.st.RLockGrid()
	cells := s.grid.CellSizes()
	s.st.RUnlockGrid()
	for d, n := range cells {
		if ext := dom[d].Length() / float64(n); ext > r {
			r = ext
		}
	}
	if r <= 0 {
		r = 1
	}

	type cand struct {
		row  []float64
		dist float64
	}
	fetched := make(map[int32]geom.Flat)
	var info QueryInfo
	for {
		q := make(geom.Rect, len(key))
		covers := true
		for d := range key {
			q[d] = geom.Interval{
				Lo: math.Max(key[d]-r, dom[d].Lo),
				Hi: math.Min(key[d]+r, dom[d].Hi),
			}
			if q[d].Lo > dom[d].Lo || q[d].Hi < dom[d].Hi {
				covers = false
			}
		}
		tstart := s.traceNow(tr)
		s.st.RLockGrid()
		ids := s.grid.BucketsInRange(q)
		s.st.RUnlockGrid()
		s.traceSince(tr, stageTranslate, tstart)
		var fresh []int32
		for _, id := range ids {
			if _, ok := fetched[id]; !ok {
				fresh = append(fresh, id)
			}
		}
		recs := make([]geom.Flat, len(fresh))
		fi, err := s.fetchBuckets(ctx, tr, fresh, recs)
		if err != nil {
			return Result{}, err
		}
		info.Buckets += fi.Buckets
		info.Pages += fi.Pages
		if fi.Degraded {
			// Part of the probe is gone; the distance bound no longer
			// proves anything, so stop expanding and return the best
			// candidates the surviving disks gave us, flagged degraded.
			info.Degraded = true
			if fi.MissedDisks > info.MissedDisks {
				info.MissedDisks = fi.MissedDisks
			}
			covers = true
		}
		for i, id := range fresh {
			fetched[id] = recs[i]
		}

		var cands []cand
		for _, rec := range fetched {
			for i := 0; i < rec.Len(); i++ {
				row := rec.Row(i)
				cands = append(cands, cand{row: row, dist: euclid(row, key)})
			}
		}
		slices.SortFunc(cands, func(a, b cand) int { return cmp.Compare(a.dist, b.dist) })
		// Done when the k-th distance is inside the probed radius (no
		// unfetched point can be closer) or the box covers the domain.
		if covers || (len(cands) >= k && cands[k-1].dist <= r) {
			n := min(k, len(cands))
			for _, c := range cands[:n] {
				enc.appendRow(c.row)
			}
			return Result{Count: n, Info: info}, nil
		}
		r *= 2
	}
}

func pointsEqual(a, b geom.Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func euclid(a, b geom.Point) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func domContains(dom geom.Rect, p geom.Point) error {
	for d := range p {
		if !dom[d].Contains(p[d]) {
			return fmt.Errorf("key %v outside the domain", p)
		}
	}
	return nil
}

func (s *Server) stopFetchers() {
	for _, q := range s.sched {
		q.close()
	}
	s.fetchWg.Wait()
}

// Close shuts the server down gracefully: stop accepting, let in-flight
// queries finish (up to DrainTimeout, then force-close), stop the disk
// goroutines and the HTTP endpoint. Close is idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.done)
	// Unblock handlers parked in ReadFrame; handlers mid-query keep their
	// write path and finish their current reply.
	for c := range s.conns {
		c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	s.ln.Close()
	s.acceptWg.Wait()

	if !waitTimeout(&s.connWg, s.cfg.DrainTimeout) {
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		s.connWg.Wait()
	}
	s.stopFetchers()
	s.scrubWg.Wait()

	if s.httpSrv != nil {
		s.httpSrv.Close()
	}
	if s.ownsStore {
		s.st.Close()
	}
	return nil
}

// waitTimeout waits for wg up to d; it reports whether the wait completed.
func waitTimeout(wg *sync.WaitGroup, d time.Duration) bool {
	ch := make(chan struct{})
	go func() {
		wg.Wait()
		close(ch)
	}()
	select {
	case <-ch:
		return true
	case <-time.After(d):
		return false
	}
}
