package server

// Batched per-disk I/O submission. Queries no longer hand a disk goroutine
// one request at a time over a channel; they append to the disk's request
// ring and poke its worker. The worker drains the whole ring in one window,
// answers already-expired requests cheaply, merges the rest into a single
// coalesced store read when that is safe, and scatters completions back to
// each query's response channel — out of order with respect to submission.
//
// The window is deliberately shaped like an io_uring submission batch: a
// future backend can take the same window, turn every placement run into an
// SQE, and harvest CQEs, without the upper layers changing at all.

import (
	"context"
	"errors"
	rtrace "runtime/trace"
	"sync"
	"time"

	"pgridfile/internal/fault"
	"pgridfile/internal/geom"
	"pgridfile/internal/store"
)

// fetchReq asks a disk worker for a batch of buckets, all resident on that
// disk. idxs carries each bucket's index in the submitting query's recs
// slice so the response can be scattered into place without a map.
type fetchReq struct {
	ids  []int32
	idxs []int
	ctx  context.Context  // the owning query; expired fetches are skipped
	resp chan<- fetchResp // buffered by the submitter; never blocks
	tr   *Trace           // the owning query's stage trace; nil when untraced
	enq  time.Time        // submit time, for the fetch_wait stage (zero when untraced)
}

type fetchResp struct {
	ids   []int32     // the requested batch (echoed for error accounting)
	idxs  []int       // echoed recs indices, parallel to ids
	recs  []geom.Flat // decoded arenas, parallel to ids; nil on error
	disk  int         // which disk served (or failed) the batch
	pages int
	err   error
}

// diskQueue is one disk's submission ring: submitters append under a mutex
// and poke the worker through a 1-slot wake channel, so a submission is two
// cheap operations regardless of how deep the backlog is, and the worker
// picks up every request queued while it was busy in one swap.
type diskQueue struct {
	mu     sync.Mutex
	reqs   []fetchReq
	wake   chan struct{}
	closed bool
}

func newDiskQueue() *diskQueue {
	return &diskQueue{wake: make(chan struct{}, 1)}
}

// submit enqueues r and wakes the worker. It reports false — without
// enqueueing — once the queue is closed.
func (q *diskQueue) submit(r fetchReq) bool {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return false
	}
	q.reqs = append(q.reqs, r)
	q.mu.Unlock()
	select {
	case q.wake <- struct{}{}:
	default:
	}
	return true
}

// close marks the queue closed and wakes the worker so it can exit once the
// backlog drains. Callers guarantee no submissions race with close.
func (q *diskQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	select {
	case q.wake <- struct{}{}:
	default:
	}
}

// windowScratch is one worker's reusable buffers for merged windows.
type windowScratch struct {
	reqs []fetchReq
	ids  []int32
	recs []geom.Flat
}

// diskWorker is one disk's I/O worker: one head per spindle, as in the
// paper's model. It swaps the submission ring against an empty one and
// serves the whole window before looking again, so every request admitted
// while a read was in flight becomes one batch.
func (s *Server) diskWorker(disk int, q *diskQueue) {
	defer s.fetchWg.Done()
	sc := &windowScratch{}
	var window []fetchReq
	for {
		q.mu.Lock()
		window, q.reqs = q.reqs, window[:0]
		closed := q.closed
		q.mu.Unlock()
		if len(window) == 0 {
			if closed {
				return
			}
			<-q.wake
			continue
		}
		s.serveWindow(disk, window, sc)
		// Drop the served requests' references (contexts, response
		// channels) before the next swap parks this array back in the ring.
		for i := range window {
			window[i] = fetchReq{}
		}
	}
}

// serveWindow serves one drained window. Requests that are traced (exact
// per-query stage attribution), expired, or unmergeable by configuration go
// through the individual path; when two or more plain live requests remain
// they are merged into a single coalesced read. Merging requires the bucket
// cache: its singleflight guarantees concurrent lead batches are disjoint,
// which the store's flat read API relies on.
func (s *Server) serveWindow(disk int, window []fetchReq, sc *windowScratch) {
	mergeOK := len(window) > 1 && !s.cfg.DisableCoalesce && s.cfg.slowFetch == 0 && s.bcache != nil
	if !mergeOK {
		for _, req := range window {
			s.serveOne(disk, req)
		}
		return
	}
	sc.reqs = sc.reqs[:0]
	for _, req := range window {
		if req.tr == nil && req.ctx.Err() == nil {
			sc.reqs = append(sc.reqs, req)
		} else {
			s.serveOne(disk, req)
		}
	}
	switch {
	case len(sc.reqs) == 0:
	case len(sc.reqs) == 1:
		s.serveOne(disk, sc.reqs[0])
	case !s.serveMerged(disk, sc):
		// The merged attempt failed (possibly on one request's deadline);
		// each request retries individually under its own context with a
		// fresh retry budget, so merging can only improve a window, never
		// change its outcome.
		for _, req := range sc.reqs {
			s.serveOne(disk, req)
		}
	}
}

// serveMerged reads every window request's buckets in one coalesced store
// call and scatters records, pages and cache completions back per request.
// It reports false without answering anyone when the read fails.
func (s *Server) serveMerged(disk int, sc *windowScratch) bool {
	sc.ids = sc.ids[:0]
	for _, req := range sc.reqs {
		sc.ids = append(sc.ids, req.ids...)
	}
	ctx := sc.reqs[0].ctx
	cancel := context.CancelFunc(nil)
	if s.cfg.FetchTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, s.cfg.FetchTimeout)
	}
	if cap(sc.recs) < len(sc.ids) {
		sc.recs = make([]geom.Flat, len(sc.ids))
	}
	sc.recs = sc.recs[:len(sc.ids)]
	pages, err := s.st.ReadFlatsFromTimed(ctx, disk, sc.ids, sc.recs, nil)
	if cancel != nil {
		cancel()
	}
	if err != nil {
		return false
	}
	s.met.diskFetches[disk].Add(int64(len(sc.ids)))
	s.met.pagesRead.Add(int64(pages))
	s.met.mergedFetches.Add(int64(len(sc.reqs)))
	off := 0
	for _, req := range sc.reqs {
		recs := make([]geom.Flat, len(req.ids))
		copy(recs, sc.recs[off:off+len(req.ids)])
		off += len(req.ids)
		// Buckets never share pages, so each request's share of the merged
		// read is exactly its placements' page count.
		rp := 0
		for _, id := range req.ids {
			if pl, ok := s.st.Placement(id); ok {
				rp += pl.Pages
			}
		}
		s.publishLeads(req.ids, recs)
		req.resp <- fetchResp{ids: req.ids, idxs: req.idxs, recs: recs, disk: disk, pages: rp}
	}
	return true
}

// serveOne serves a single request: the pre-merge per-batch path, still used
// for traced, expired, solitary and merge-ineligible requests, and as the
// fallback when a merged read fails. Success is published to the cache
// here; a failed batch's leads stay pending because the gather loop may
// still fail the batch over to a surviving owner disk — only when every
// route is exhausted does the gather loop complete them with the error.
func (s *Server) serveOne(disk int, req fetchReq) {
	var tm *store.Timing
	if req.tr != nil {
		// Queue wait: submit to dequeue, i.e. time spent behind other
		// batches on this spindle.
		s.traceSince(req.tr, stageFetchWait, req.enq)
		tm = new(store.Timing)
	}
	// The runtime/trace region brackets the whole batch (retries and
	// backoff included) so `go tool trace` shows each disk worker's duty
	// cycle. StartRegion is a no-op unless tracing is active.
	region := rtrace.StartRegion(req.ctx, "gridserver.fetchBatch")
	recs, pages, err := s.fetchBatch(req.ctx, disk, req.ids, req.tr, tm)
	region.End()
	if tm != nil {
		req.tr.add(stagePread, tm.Pread)
		req.tr.add(stageDecode, tm.Decode)
	}
	if err == nil {
		s.met.diskFetches[disk].Add(int64(len(req.ids)))
		s.met.pagesRead.Add(int64(pages))
		s.publishLeads(req.ids, recs)
	}
	req.resp <- fetchResp{ids: req.ids, idxs: req.idxs, recs: recs, disk: disk, pages: pages, err: err}
}

// fetchBatch runs one disk batch with the per-attempt deadline and the
// bounded retry/backoff policy. Only transient failures are retried:
// injected faults (including torn reads, which wrap fault.ErrInjected) and
// per-attempt timeouts. Checksum mismatches are deliberately NOT retried
// here — rereading the same corrupt copy returns the same bytes — but they
// are transient to the gather loop, which fails them over to a surviving
// replica. Structural corruption or unknown buckets fail immediately, and
// an expired query stops retrying at once.
func (s *Server) fetchBatch(ctx context.Context, disk int, ids []int32, tr *Trace, tm *store.Timing) ([]geom.Flat, int, error) {
	for attempt := 1; ; attempt++ {
		actx, cancel := ctx, context.CancelFunc(nil)
		if s.cfg.FetchTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, s.cfg.FetchTimeout)
		}
		recs, pages, err := s.readBatch(actx, disk, ids, tm)
		if cancel != nil {
			cancel()
		}
		if err == nil {
			return recs, pages, nil
		}
		transient := fault.IsInjected(err) ||
			(s.cfg.FetchTimeout > 0 && errors.Is(err, context.DeadlineExceeded))
		if !transient || attempt > s.cfg.FetchRetries || ctx.Err() != nil {
			return nil, 0, err
		}
		s.met.diskRetries.Add(1)
		backoffStart := s.traceNow(tr)
		serr := fault.Sleep(ctx, retryDelay(s.cfg.FetchBackoff, attempt))
		s.traceSince(tr, stageBackoff, backoffStart)
		if serr != nil {
			return nil, 0, err
		}
	}
}

// readBatch performs one disk's share of a query. A query whose deadline
// already expired has abandoned the fetch; skipping the I/O (checked again
// between simulated-latency sleeps) keeps its backlog from starving live
// queries.
func (s *Server) readBatch(ctx context.Context, disk int, ids []int32, tm *store.Timing) ([]geom.Flat, int, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	if s.cfg.slowFetch > 0 {
		for range ids {
			if err := ctx.Err(); err != nil {
				return nil, 0, err
			}
			time.Sleep(s.cfg.slowFetch)
		}
	}
	recs := make([]geom.Flat, len(ids))
	if !s.cfg.DisableCoalesce {
		pages, err := s.st.ReadFlatsFromTimed(ctx, disk, ids, recs, tm)
		if err != nil {
			return nil, 0, err
		}
		return recs, pages, nil
	}
	pages := 0
	for i, id := range ids {
		rec, p, err := s.st.ReadFlatFromTimed(ctx, disk, id, tm)
		if err != nil {
			return nil, 0, err
		}
		recs[i] = rec
		pages += p
	}
	return recs, pages, nil
}
