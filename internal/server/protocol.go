// Package server puts the declustered page store behind a real network
// front end: a TCP query service over the paper's per-disk page files
// (internal/store), with the grid file's scales and directory acting as the
// coordinator exactly as in the Section 3.5 SPMD design. Point, range,
// partial-match and k-NN queries arrive over a length-prefixed binary
// protocol; bucket fetches are executed by one I/O goroutine per disk file,
// so a well-declustered allocation translates into genuinely parallel disk
// I/O and the paper's response-time metric becomes observable on actual
// hardware rather than a simulated clock.
//
// The package has three layers:
//
//   - protocol.go: the wire format — frames, request and response payloads;
//   - server.go + metrics.go: the serving side — admission control,
//     per-disk fetch goroutines, deadlines, graceful shutdown, counters and
//     latency histograms exported via the STATS verb and optional HTTP;
//   - client.go: a pooled client with request timeouts and retry/backoff.
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"pgridfile/internal/geom"
)

// MaxFrameBytes bounds a single frame (verb byte + payload). Oversized
// frames are rejected before any allocation, so a malformed or hostile
// length prefix cannot make the server allocate unbounded memory.
const MaxFrameBytes = 1 << 20

// maxDims bounds the request dimensionality; the paper's experiments stop
// at 4-D, and nothing in the repo builds grids beyond a few dimensions.
const maxDims = 64

// maxK bounds k-NN requests.
const maxK = 4096

// Verb identifies a frame's meaning. Requests use the low range, responses
// the high range, so a stream desynchronization is detected immediately.
type Verb uint8

const (
	VerbPoint   Verb = 1 // exact-match point lookup
	VerbRange   Verb = 2 // closed-box range query
	VerbPartial Verb = 3 // partial-match query (NaN = unspecified)
	VerbKNN     Verb = 4 // k nearest neighbours
	VerbStats   Verb = 5 // server statistics snapshot
	VerbFault   Verb = 6 // admin: inspect/arm/clear failpoints
	VerbInsert  Verb = 7 // mutation: insert one record (writable servers only)
	VerbDelete  Verb = 8 // mutation: delete one record (writable servers only)

	VerbPoints     Verb = 0x81 // response: point set + I/O accounting
	VerbCount      Verb = 0x82 // response: record count + I/O accounting
	VerbStatsReply Verb = 0x83 // response: JSON statistics snapshot
	VerbFaultReply Verb = 0x84 // response: JSON failpoint status
	VerbWriteOK    Verb = 0x85 // response: mutation acknowledged + accounting
	VerbError      Verb = 0xFF // response: error message

	// Pipelining envelopes (DESIGN S26). A tagged frame wraps an ordinary
	// request or response as u32 request id | u8 inner verb | inner payload,
	// letting a client keep many requests in flight per connection and match
	// out-of-order completions by id. The server echoes the id verbatim —
	// including on error replies, so failures stay matchable. Envelopes never
	// nest, and a client that does not pipeline never sends one, which is what
	// keeps the protocol backward compatible in both directions.
	VerbTagged      Verb = 0x40 // envelope: pipelined request
	VerbTaggedReply Verb = 0xC0 // envelope: pipelined response
)

// taggedHdrLen is the envelope overhead inside a tagged frame's payload:
// u32 request id + u8 inner verb.
const taggedHdrLen = 5

var (
	// ErrFrameTooBig reports a length prefix beyond MaxFrameBytes.
	ErrFrameTooBig = errors.New("server: frame exceeds size limit")
	// ErrEmptyFrame reports a zero-length frame (no verb byte).
	ErrEmptyFrame = errors.New("server: empty frame")
)

// Frame is one protocol unit: a verb plus an opaque payload, carried on the
// wire as u32 length (verb+payload) | u8 verb | payload, little endian.
type Frame struct {
	Verb    Verb
	Payload []byte
}

// WriteFrame writes one frame to w.
func WriteFrame(w io.Writer, f Frame) error {
	if len(f.Payload)+1 > MaxFrameBytes {
		return ErrFrameTooBig
	}
	hdr := make([]byte, 5, 5+len(f.Payload))
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(f.Payload)+1))
	hdr[4] = byte(f.Verb)
	_, err := w.Write(append(hdr, f.Payload...))
	return err
}

// ReadFrame reads one frame from r, rejecting oversized or empty frames
// before allocating the payload. A truncated stream yields an error rather
// than a short frame.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 {
		return Frame{}, ErrEmptyFrame
	}
	if n > MaxFrameBytes {
		return Frame{}, ErrFrameTooBig
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return Frame{}, fmt.Errorf("server: truncated frame: %w", err)
	}
	return Frame{Verb: Verb(buf[0]), Payload: buf[1:]}, nil
}

// readFrameBuf is ReadFrame with a caller-owned scratch buffer: a long-lived
// connection reads every frame into the same buffer, so the steady-state read
// path allocates nothing. The returned frame's payload aliases *scratch and
// is only valid until the next call with the same buffer.
func readFrameBuf(r io.Reader, scratch *[]byte) (Frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 {
		return Frame{}, ErrEmptyFrame
	}
	if n > MaxFrameBytes {
		return Frame{}, ErrFrameTooBig
	}
	b := *scratch
	if cap(b) < int(n) {
		b = make([]byte, n)
		*scratch = b
	}
	b = b[:n]
	if _, err := io.ReadFull(r, b); err != nil {
		return Frame{}, fmt.Errorf("server: truncated frame: %w", err)
	}
	return Frame{Verb: Verb(b[0]), Payload: b[1:]}, nil
}

// isEnvelope reports whether v is one of the pipelining envelope verbs.
func isEnvelope(v Verb) bool { return v == VerbTagged || v == VerbTaggedReply }

// envelopeFor picks the envelope verb matching an inner verb's direction:
// responses have the high bit set (VerbError included), requests do not.
func envelopeFor(inner Verb) Verb {
	if inner&0x80 != 0 {
		return VerbTaggedReply
	}
	return VerbTagged
}

// WrapTagged wraps a request or response frame in a pipelining envelope
// carrying the given request id. Envelopes never nest.
func WrapTagged(id uint32, f Frame) (Frame, error) {
	if isEnvelope(f.Verb) {
		return Frame{}, errors.New("server: nested tagged envelope")
	}
	if len(f.Payload)+1+taggedHdrLen+1 > MaxFrameBytes {
		return Frame{}, ErrFrameTooBig
	}
	p := make([]byte, 0, taggedHdrLen+len(f.Payload))
	p = binary.LittleEndian.AppendUint32(p, id)
	p = append(p, byte(f.Verb))
	p = append(p, f.Payload...)
	return Frame{Verb: envelopeFor(f.Verb), Payload: p}, nil
}

// UnwrapTagged opens a pipelining envelope, returning the request id and the
// inner frame. The inner payload aliases the envelope's. The envelope verb
// must match the inner verb's direction, and envelopes never nest, so a
// round trip through WrapTagged/UnwrapTagged is a fixed point.
func UnwrapTagged(f Frame) (uint32, Frame, error) {
	if !isEnvelope(f.Verb) {
		return 0, Frame{}, fmt.Errorf("server: not a tagged envelope: 0x%02x", uint8(f.Verb))
	}
	if len(f.Payload) < taggedHdrLen {
		return 0, Frame{}, errors.New("server: short tagged envelope")
	}
	id := binary.LittleEndian.Uint32(f.Payload[:4])
	inner := Frame{Verb: Verb(f.Payload[4]), Payload: f.Payload[taggedHdrLen:]}
	if isEnvelope(inner.Verb) {
		return 0, Frame{}, errors.New("server: nested tagged envelope")
	}
	if envelopeFor(inner.Verb) != f.Verb {
		return 0, Frame{}, fmt.Errorf("server: envelope 0x%02x wraps wrong-direction verb 0x%02x",
			uint8(f.Verb), uint8(inner.Verb))
	}
	return id, inner, nil
}

// beginFrame appends a frame header onto buf — the u32 length placeholder,
// the envelope header when tagged, and the inner verb — and returns the
// extended buffer plus the frame's start offset. The caller appends the
// payload and seals the frame with endFrame, so a complete wire frame is
// assembled in place with no intermediate copies.
func beginFrame(buf []byte, inner Verb, id uint32, tagged bool) ([]byte, int) {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0) // length, patched by endFrame
	if tagged {
		buf = append(buf, byte(envelopeFor(inner)))
		buf = binary.LittleEndian.AppendUint32(buf, id)
	}
	buf = append(buf, byte(inner))
	return buf, start
}

// endFrame patches the length prefix of a frame opened by beginFrame and
// validates the frame size. On error the buffer is returned truncated back
// to the frame's start, so the caller can reuse it.
func endFrame(buf []byte, start int) ([]byte, error) {
	n := len(buf) - start - 4
	if n <= 0 {
		return buf[:start], ErrEmptyFrame
	}
	if n > MaxFrameBytes {
		return buf[:start], ErrFrameTooBig
	}
	binary.LittleEndian.PutUint32(buf[start:start+4], uint32(n))
	return buf, nil
}

// appendErrorFrame appends a complete error-response frame onto buf,
// preserving the request id of a pipelined request so the failure stays
// matchable. The message is truncated rather than rejected: an error reply
// must always be expressible.
func appendErrorFrame(buf []byte, msg string, id uint32, tagged bool) []byte {
	if max := MaxFrameBytes - 1 - taggedHdrLen; len(msg) > max {
		msg = msg[:max]
	}
	buf, start := beginFrame(buf, VerbError, id, tagged)
	buf = append(buf, msg...)
	buf, _ = endFrame(buf, start)
	return buf
}

// Request is the decoded form of a query frame.
type Request struct {
	Verb      Verb
	Key       geom.Point // VerbPoint, VerbKNN
	Query     geom.Rect  // VerbRange
	Vals      []float64  // VerbPartial; NaN marks an unspecified attribute
	K         int        // VerbKNN
	CountOnly bool       // VerbRange: return only the record count
	FaultCmd  string     // VerbFault: "status" | "clear" | a fault spec
}

// QueryInfo is the server-side execution profile shipped with every answer:
// the paper's I/O accounting (distinct buckets fetched, pages read) plus the
// service time observed at the server. Degraded marks a partial answer —
// MissedDisks of the layout's disks could not be read before the fetch
// deadline/retry budget ran out, so the result covers only the surviving
// disks (always a subset of the full answer, never wrong data). The two
// fields travel together: a response is degraded iff MissedDisks > 0, and
// both codec directions enforce that invariant.
type QueryInfo struct {
	Buckets     int
	Pages       int
	Elapsed     time.Duration
	Degraded    bool
	MissedDisks int
}

// Result is the decoded form of an answer frame.
type Result struct {
	Points []geom.Point
	Count  int
	Info   QueryInfo

	// Write-acknowledgement fields (VerbWriteOK). Applied is false when a
	// DELETE found no matching record (the op was a durable no-op); Splits
	// counts bucket splits the mutation triggered.
	Applied bool
	Splits  int

	// arena backs Points when the result was decoded with DecodeResultInto:
	// one flat coordinate array the points slice into, reused across decodes
	// so a long-lived client Result stops allocating per point.
	arena []float64
}

// buf is a cursor for encoding payloads.
type wbuf struct{ b []byte }

func (w *wbuf) u8(v uint8)   { w.b = append(w.b, v) }
func (w *wbuf) u16(v uint16) { w.b = binary.LittleEndian.AppendUint16(w.b, v) }
func (w *wbuf) u32(v uint32) { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *wbuf) u64(v uint64) { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *wbuf) f64(v float64) {
	w.b = binary.LittleEndian.AppendUint64(w.b, math.Float64bits(v))
}

// rbuf is a cursor for decoding payloads; the first error sticks.
type rbuf struct {
	b   []byte
	err error
}

func (r *rbuf) fail(msg string) {
	if r.err == nil {
		r.err = errors.New("server: " + msg)
	}
}

func (r *rbuf) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.b) < n {
		r.fail("short payload")
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

func (r *rbuf) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *rbuf) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *rbuf) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *rbuf) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *rbuf) f64() float64 { return math.Float64frombits(r.u64()) }

// done verifies the payload was consumed exactly.
func (r *rbuf) done() error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return fmt.Errorf("server: %d trailing payload bytes", len(r.b))
	}
	return nil
}

func checkDims(d int) error {
	if d < 1 || d > maxDims {
		return fmt.Errorf("server: implausible dimensionality %d", d)
	}
	return nil
}

func checkFinite(vs ...float64) error {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("server: non-finite coordinate %v", v)
		}
	}
	return nil
}

// EncodeRequest serializes a request into a frame.
func EncodeRequest(req Request) (Frame, error) {
	p, err := appendRequestPayload(nil, req)
	if err != nil {
		return Frame{}, err
	}
	return Frame{Verb: req.Verb, Payload: p}, nil
}

// AppendRequestFrame appends a complete, optionally tagged wire frame for req
// onto buf — the allocation-free form of EncodeRequest+WriteFrame for callers
// that reuse a write buffer across requests (the client's connection paths).
// On error the buffer is returned truncated back to its original length.
func AppendRequestFrame(buf []byte, req Request, id uint32, tagged bool) ([]byte, error) {
	buf, start := beginFrame(buf, req.Verb, id, tagged)
	buf, err := appendRequestPayload(buf, req)
	if err != nil {
		return buf[:start], err
	}
	return endFrame(buf, start)
}

// appendRequestPayload encodes a request's payload onto buf.
func appendRequestPayload(buf []byte, req Request) ([]byte, error) {
	w := wbuf{b: buf}
	switch req.Verb {
	case VerbPoint, VerbInsert, VerbDelete:
		if err := checkDims(len(req.Key)); err != nil {
			return buf, err
		}
		w.u16(uint16(len(req.Key)))
		for _, v := range req.Key {
			w.f64(v)
		}
	case VerbRange:
		if err := checkDims(len(req.Query)); err != nil {
			return buf, err
		}
		flags := uint8(0)
		if req.CountOnly {
			flags = 1
		}
		w.u8(flags)
		w.u16(uint16(len(req.Query)))
		for _, iv := range req.Query {
			w.f64(iv.Lo)
			w.f64(iv.Hi)
		}
	case VerbPartial:
		if err := checkDims(len(req.Vals)); err != nil {
			return buf, err
		}
		w.u16(uint16(len(req.Vals)))
		for _, v := range req.Vals {
			if math.IsNaN(v) {
				w.u8(0)
				w.f64(0) // canonical placeholder for "unspecified"
			} else {
				w.u8(1)
				w.f64(v)
			}
		}
	case VerbKNN:
		if err := checkDims(len(req.Key)); err != nil {
			return buf, err
		}
		if req.K < 1 || req.K > maxK {
			return buf, fmt.Errorf("server: k=%d out of range", req.K)
		}
		w.u16(uint16(len(req.Key)))
		w.u32(uint32(req.K))
		for _, v := range req.Key {
			w.f64(v)
		}
	case VerbStats:
		// empty payload
	case VerbFault:
		if req.FaultCmd == "" {
			return buf, errors.New("server: empty FAULT command")
		}
		w.b = append(w.b, req.FaultCmd...)
	default:
		return buf, fmt.Errorf("server: not a request verb: 0x%02x", uint8(req.Verb))
	}
	return w.b, nil
}

// DecodeRequest parses and validates a request frame. Every field is
// bounds-checked so a malformed frame yields an error, never a panic or an
// oversized allocation.
func DecodeRequest(f Frame) (Request, error) {
	var req Request
	if err := decodeRequestInto(f, &req); err != nil {
		return Request{}, err
	}
	return req, nil
}

// decodeRequestInto is DecodeRequest writing into a caller-owned Request,
// reusing its key/query/vals capacities — the steady-state form for the
// server, which decodes every frame into a pooled per-query scratch. On
// error *req is left in an unspecified state.
func decodeRequestInto(f Frame, req *Request) error {
	*req = Request{
		Verb:  f.Verb,
		Key:   req.Key[:0],
		Query: req.Query[:0],
		Vals:  req.Vals[:0],
	}
	r := rbuf{b: f.Payload}
	switch f.Verb {
	case VerbPoint, VerbInsert, VerbDelete:
		dims := int(r.u16())
		if r.err == nil {
			if err := checkDims(dims); err != nil {
				return err
			}
		}
		if n := min(dims, maxDims); cap(req.Key) < n {
			req.Key = make(geom.Point, 0, n)
		}
		for d := 0; d < dims && r.err == nil; d++ {
			req.Key = append(req.Key, r.f64())
		}
		if err := r.done(); err != nil {
			return err
		}
		if err := checkFinite(req.Key...); err != nil {
			return err
		}
	case VerbRange:
		flags := r.u8()
		dims := int(r.u16())
		if r.err == nil {
			if err := checkDims(dims); err != nil {
				return err
			}
			if flags > 1 {
				return fmt.Errorf("server: unknown range flags 0x%02x", flags)
			}
		}
		req.CountOnly = flags&1 != 0
		if n := min(dims, maxDims); cap(req.Query) < n {
			req.Query = make(geom.Rect, 0, n)
		}
		for d := 0; d < dims && r.err == nil; d++ {
			iv := geom.Interval{Lo: r.f64(), Hi: r.f64()}
			req.Query = append(req.Query, iv)
		}
		if err := r.done(); err != nil {
			return err
		}
		for _, iv := range req.Query {
			if err := checkFinite(iv.Lo, iv.Hi); err != nil {
				return err
			}
			if iv.Hi < iv.Lo {
				return fmt.Errorf("server: inverted interval [%v,%v]", iv.Lo, iv.Hi)
			}
		}
	case VerbPartial:
		dims := int(r.u16())
		if r.err == nil {
			if err := checkDims(dims); err != nil {
				return err
			}
		}
		if n := min(dims, maxDims); cap(req.Vals) < n {
			req.Vals = make([]float64, 0, n)
		}
		for d := 0; d < dims && r.err == nil; d++ {
			spec := r.u8()
			v := r.f64()
			if r.err != nil {
				break
			}
			switch spec {
			case 0:
				v = math.NaN()
			case 1:
				if err := checkFinite(v); err != nil {
					return err
				}
			default:
				return fmt.Errorf("server: bad partial-match flag 0x%02x", spec)
			}
			req.Vals = append(req.Vals, v)
		}
		if err := r.done(); err != nil {
			return err
		}
	case VerbKNN:
		dims := int(r.u16())
		k := int(r.u32())
		if r.err == nil {
			if err := checkDims(dims); err != nil {
				return err
			}
			if k < 1 || k > maxK {
				return fmt.Errorf("server: k=%d out of range", k)
			}
		}
		req.K = k
		if n := min(dims, maxDims); cap(req.Key) < n {
			req.Key = make(geom.Point, 0, n)
		}
		for d := 0; d < dims && r.err == nil; d++ {
			req.Key = append(req.Key, r.f64())
		}
		if err := r.done(); err != nil {
			return err
		}
		if err := checkFinite(req.Key...); err != nil {
			return err
		}
	case VerbStats:
		if err := r.done(); err != nil {
			return err
		}
	case VerbFault:
		if len(f.Payload) == 0 {
			return errors.New("server: empty FAULT command")
		}
		req.FaultCmd = string(f.Payload)
	default:
		return fmt.Errorf("server: unknown request verb 0x%02x", uint8(f.Verb))
	}
	return nil
}

// EncodeResult serializes an answer. verb selects VerbPoints or VerbCount.
func EncodeResult(verb Verb, res Result) (Frame, error) {
	payload, err := AppendResult(nil, verb, res)
	if err != nil {
		return Frame{}, err
	}
	return Frame{Verb: verb, Payload: payload}, nil
}

// AppendResult encodes an answer's payload onto buf and returns the extended
// buffer — the allocation-free form of EncodeResult for callers that reuse a
// response buffer across frames (the server's per-connection response path).
func AppendResult(buf []byte, verb Verb, res Result) ([]byte, error) {
	start := len(buf)
	switch verb {
	case VerbPoints:
		dims := 0
		if len(res.Points) > 0 {
			dims = len(res.Points[0])
		}
		if dims > maxDims {
			return nil, fmt.Errorf("server: %d-D result", dims)
		}
		e := newResultEncoder(buf, dims)
		for _, p := range res.Points {
			if len(p) != dims {
				return nil, errors.New("server: ragged result point set")
			}
			e.appendRow(p)
		}
		return e.finish(res.Info)
	case VerbCount:
		w := wbuf{b: buf}
		w.u32(uint32(res.Count))
		return appendResultInfo(w.b, res.Info, start)
	case VerbWriteOK:
		if res.Splits < 0 || res.Splits > math.MaxUint16 {
			return nil, fmt.Errorf("server: split count %d out of range", res.Splits)
		}
		applied := uint8(0)
		if res.Applied {
			applied = 1
		}
		w := wbuf{b: buf}
		w.u8(applied)
		w.u16(uint16(res.Splits))
		return appendResultInfo(w.b, res.Info, start)
	default:
		return nil, fmt.Errorf("server: not a result verb: 0x%02x", uint8(verb))
	}
}

// appendResultInfo appends the shared I/O-accounting trailer of every answer
// payload and runs the size/consistency validations. start is where the
// payload began in buf, so the frame-size bound covers the whole payload.
func appendResultInfo(buf []byte, info QueryInfo, start int) ([]byte, error) {
	w := wbuf{b: buf}
	w.u32(uint32(info.Buckets))
	w.u32(uint32(info.Pages))
	w.u64(uint64(info.Elapsed.Nanoseconds()))
	// Degraded-mode trailer: flags u8 (bit 0 = degraded) + missed-disk u16.
	// The pair is validated on both codec directions so a flag without a
	// missed count (or vice versa) can never cross the wire.
	if info.Degraded != (info.MissedDisks > 0) {
		return nil, fmt.Errorf("server: inconsistent degraded info (degraded=%v missed=%d)",
			info.Degraded, info.MissedDisks)
	}
	if info.MissedDisks < 0 || info.MissedDisks > math.MaxUint16 {
		return nil, fmt.Errorf("server: missed-disk count %d out of range", info.MissedDisks)
	}
	flags := uint8(0)
	if info.Degraded {
		flags = 1
	}
	w.u8(flags)
	w.u16(uint16(info.MissedDisks))
	if len(w.b)-start+1 > MaxFrameBytes {
		return nil, ErrFrameTooBig
	}
	return w.b, nil
}

// resultEncoder streams a VerbPoints payload straight into a response buffer:
// the header goes down up front with a zero count, query execution appends
// each matching record's coordinates as it scans the bucket arenas, and
// finish patches the count and appends the accounting trailer. This is what
// lets the server encode results with no intermediate []Point slice — the
// row views handed to appendRow are read and copied immediately, never
// retained.
type resultEncoder struct {
	buf   []byte
	start int // offset of the u16 dims field (payload start)
	dims  int
	n     int
}

// newResultEncoder opens a VerbPoints payload for dims-dimensional records.
// dims may exceed the record count's implied need (an empty result with
// dims > 0 is valid on the wire; the decoder accepts it).
func newResultEncoder(buf []byte, dims int) resultEncoder {
	e := resultEncoder{start: len(buf), dims: dims}
	w := wbuf{b: buf}
	w.u16(uint16(dims))
	w.u32(0) // record count, patched by finish
	e.buf = w.b
	return e
}

// appendRow appends one record's coordinates. row must have exactly dims
// elements; rows are validated in aggregate by finish via the count.
func (e *resultEncoder) appendRow(row []float64) {
	for _, v := range row {
		e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
	}
	e.n++
}

// count returns the number of rows appended so far.
func (e *resultEncoder) count() int { return e.n }

// finish patches the record count and appends the accounting trailer,
// returning the completed payload.
func (e *resultEncoder) finish(info QueryInfo) ([]byte, error) {
	binary.LittleEndian.PutUint32(e.buf[e.start+2:e.start+6], uint32(e.n))
	return appendResultInfo(e.buf, info, e.start)
}

// DecodeResult parses a VerbPoints or VerbCount answer frame.
func DecodeResult(f Frame) (Result, error) {
	var res Result
	if err := DecodeResultInto(f, &res); err != nil {
		return Result{}, err
	}
	return res, nil
}

// DecodeResultInto parses an answer frame into *res, reusing res's point
// slice and coordinate arena when their capacities allow — the steady-state
// form of DecodeResult for callers that keep a Result alive across requests
// (the client's query paths). The decoded points alias res's internal arena
// and stay valid until the next DecodeResultInto on the same res. On error
// *res is left in an unspecified state.
func DecodeResultInto(f Frame, res *Result) error {
	res.Points = res.Points[:0]
	res.Count = 0
	res.Applied = false
	res.Splits = 0
	res.Info = QueryInfo{}
	r := rbuf{b: f.Payload}
	switch f.Verb {
	case VerbPoints:
		dims := int(r.u16())
		n := int(r.u32())
		if r.err == nil {
			if dims > maxDims {
				return fmt.Errorf("server: implausible dimensionality %d", dims)
			}
			if dims == 0 && n > 0 {
				return errors.New("server: zero-dimensional points")
			}
			// The points must actually fit in the received payload.
			if need := n * dims * 8; need > len(r.b) {
				return errors.New("server: short point payload")
			}
		}
		// The size pre-check above guarantees the reads below cannot come up
		// short once the header parsed, so the fill loop needs no per-value
		// error checks.
		if r.err == nil && n > 0 {
			need := n * dims
			if cap(res.arena) < need {
				res.arena = make([]float64, need)
			}
			arena := res.arena[:need]
			for i := range arena {
				arena[i] = r.f64()
			}
			if cap(res.Points) < n {
				res.Points = make([]geom.Point, 0, n)
			}
			for i := 0; i < n; i++ {
				res.Points = append(res.Points, geom.Point(arena[i*dims:(i+1)*dims:(i+1)*dims]))
			}
		}
		res.Count = len(res.Points)
	case VerbCount:
		res.Count = int(r.u32())
	case VerbWriteOK:
		applied := r.u8()
		res.Splits = int(r.u16())
		if r.err == nil && applied > 1 {
			return fmt.Errorf("server: bad applied flag 0x%02x", applied)
		}
		res.Applied = applied == 1
	default:
		return fmt.Errorf("server: not a result verb: 0x%02x", uint8(f.Verb))
	}
	res.Info.Buckets = int(r.u32())
	res.Info.Pages = int(r.u32())
	res.Info.Elapsed = time.Duration(r.u64())
	flags := r.u8()
	missed := int(r.u16())
	if err := r.done(); err != nil {
		return err
	}
	if flags > 1 {
		return fmt.Errorf("server: unknown result flags 0x%02x", flags)
	}
	res.Info.Degraded = flags&1 != 0
	res.Info.MissedDisks = missed
	if res.Info.Degraded != (missed > 0) {
		return fmt.Errorf("server: inconsistent degraded info (flags=0x%02x missed=%d)",
			flags, missed)
	}
	return nil
}

// ServerError is an error reported by the server over the protocol (as
// opposed to a transport failure). It is not retried by the client.
type ServerError struct{ Msg string }

func (e *ServerError) Error() string { return "server: " + e.Msg }
