package server

import (
	"math"
	"testing"
)

// TestHistObserveBinning drives observe across the bin edges and checks each
// value lands where the [2^(i-1), 2^i) bin definition says it must.
func TestHistObserveBinning(t *testing.T) {
	cases := []struct {
		v   float64
		bin int
	}{
		{0, 0},
		{0.25, 0},
		{0.5, 0},
		{0.999, 0},
		{1, 1},
		{1.5, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{7, 3},
		{8, 4},
		{math.Exp2(32) - 1, 32},
		{math.Exp2(32), 33},
		{math.Exp2(32) + 1, 33},
		{math.Exp2(62), 63},
		{math.Exp2(63), 63},     // conversion edge: must clamp, not wrap
		{math.Exp2(64) * 4, 63}, // far past the top bin
		{math.MaxFloat64, 63},   // clamped, never undefined behaviour
		{-5, 0},                 // negatives are floored to 0
		{math.NaN(), 0},         // NaN is floored to 0
	}
	for _, tc := range cases {
		var h hist
		h.observe(tc.v)
		for i, c := range h.counts {
			want := int64(0)
			if i == tc.bin {
				want = 1
			}
			if c != want {
				t.Errorf("observe(%g): bin %d count = %d, want %d", tc.v, i, c, want)
			}
		}
		if h.total != 1 {
			t.Errorf("observe(%g): total = %d, want 1", tc.v, h.total)
		}
	}
}

// TestHistQuantileGeometricMidpoint is the regression test for the lo*1.5
// midpoint bug: the estimate for bin [lo, 2*lo) must be the geometric
// midpoint lo*√2, and bin 0 (values in [0,1)) must report 0.5, not collapse
// to 0.
func TestHistQuantileGeometricMidpoint(t *testing.T) {
	cases := []struct {
		name string
		obs  []float64
		p    float64
		want float64
	}{
		{"sub-unit values report 0.5", []float64{0, 0.3, 0.9}, 50, 0.5},
		{"bin 1 midpoint", []float64{1, 1.2, 1.9}, 50, math.Sqrt2},
		{"bin 2 midpoint", []float64{2, 3}, 50, 2 * math.Sqrt2},
		{"bin 3 midpoint", []float64{4, 5, 6, 7}, 50, 4 * math.Sqrt2},
		{"p99 in top occupied bin", []float64{1, 1, 1, 1000}, 99, 512 * math.Sqrt2},
		{"huge values clamp to bin 63", []float64{math.Exp2(63)}, 50, math.Exp2(62) * math.Sqrt2},
	}
	for _, tc := range cases {
		var h hist
		for _, v := range tc.obs {
			h.observe(v)
		}
		if got := h.quantile(tc.p); math.Abs(got-tc.want) > 1e-9*tc.want+1e-12 {
			t.Errorf("%s: quantile(%g) = %g, want %g", tc.name, tc.p, got, tc.want)
		}
	}

	// The estimate must bracket the true value within √2 either way — the
	// property the old arithmetic midpoint silently broke for the low edge.
	var h hist
	for v := 1.0; v < 1e6; v *= 1.7 {
		h.observe(v)
		q := h.quantile(100)
		lo, hi := v/math.Sqrt2, v*math.Sqrt2
		if q < lo-1e-9 || q > hi+1e-9 {
			t.Errorf("quantile(100) after observing %g = %g, want within [%g, %g]", v, q, lo, hi)
		}
		h = hist{}
	}
}

func TestHistQuantileEmpty(t *testing.T) {
	var h hist
	if got := h.quantile(50); got != 0 {
		t.Errorf("empty hist quantile = %g, want 0", got)
	}
	if s := h.snapshot(); s.Count != 0 || s.P50 != 0 || s.Max != 0 {
		t.Errorf("empty snapshot = %+v", s)
	}
}

// TestSnapshotStageSummaries proves the per-stage histograms only appear in
// a snapshot once something was traced, and then cover every stage name.
func TestSnapshotStageSummaries(t *testing.T) {
	m := newMetrics(2)
	if s := m.snapshot(0); s.Stages != nil || s.Traced != 0 {
		t.Errorf("untraced snapshot exposes stages: %+v", s)
	}
	m.traced.Add(1)
	m.stageLat[stageTranslate].observe(12)
	m.stageLat[stagePread].observe(300)
	s := m.snapshot(0)
	if s.Traced != 1 {
		t.Errorf("traced = %d, want 1", s.Traced)
	}
	if len(s.Stages) != numStages {
		t.Fatalf("snapshot has %d stages, want %d: %v", len(s.Stages), numStages, s.Stages)
	}
	for _, name := range stageNames {
		if _, ok := s.Stages[name]; !ok {
			t.Errorf("stage %q missing from snapshot", name)
		}
	}
	if got := s.Stages["translate"].Count; got != 1 {
		t.Errorf("translate count = %d, want 1", got)
	}
	if got := s.Stages["pread"].P50; math.Abs(got-256*math.Sqrt2) > 1e-9 {
		t.Errorf("pread p50 = %g, want %g", got, 256*math.Sqrt2)
	}
	// The µs view is derived from the ns histogram by scaling.
	if got := s.StagesMicros["pread"].P50; math.Abs(got-256*math.Sqrt2/1e3) > 1e-12 {
		t.Errorf("pread micros p50 = %g, want %g", got, 256*math.Sqrt2/1e3)
	}
}
