package server

// queryCtx is a pooled, deadline-only context for the per-query timeout.
// context.WithTimeout costs several allocations and always arms a runtime
// timer; the serving hot path needs neither — a cache-resident query checks
// Err (a clock read) a handful of times and never parks on Done. The timer
// and done channel exist only on demand, so the common query pays one pool
// round-trip for its whole deadline machinery.
//
// queryCtx carries no values and no parent cancellation: the query deadline
// is the only cancellation source, exactly like the context.Background()-
// rooted WithTimeout it replaces. Server shutdown is handled separately
// (the admission select watches s.done).

import (
	"context"
	"sync"
	"time"
)

type queryCtx struct {
	deadline time.Time

	mu    sync.Mutex
	err   error
	done  chan struct{}
	timer *time.Timer
}

var qctxPool = sync.Pool{New: func() any { return new(queryCtx) }}

// acquireQueryCtx returns a context that expires timeout from now. Release
// it with release; no references may outlive that call.
func acquireQueryCtx(timeout time.Duration) *queryCtx {
	q := qctxPool.Get().(*queryCtx)
	q.deadline = time.Now().Add(timeout)
	return q
}

// release returns q to the pool. A queryCtx whose Done channel was ever
// materialized is dropped instead: its deadline timer may be mid-fire, and
// a parked watcher could still hold the channel.
func (q *queryCtx) release() {
	q.mu.Lock()
	pool := q.done == nil
	if q.timer != nil {
		q.timer.Stop()
		q.timer = nil
	}
	q.err = nil
	q.done = nil
	q.mu.Unlock()
	if pool {
		qctxPool.Put(q)
	}
}

func (q *queryCtx) Deadline() (time.Time, bool) { return q.deadline, true }

func (q *queryCtx) Value(any) any { return nil }

// Err reports context.DeadlineExceeded once the deadline passes. The
// deadline is checked lazily against the wall clock, so no timer needs to
// run for Err to be accurate.
func (q *queryCtx) Err() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.err == nil && !time.Now().Before(q.deadline) {
		q.err = context.DeadlineExceeded
	}
	return q.err
}

// Done materializes the done channel on first use and arms a timer to close
// it at the deadline. Callers that never park on Done (the hot path) never
// pay for either.
func (q *queryCtx) Done() <-chan struct{} {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.done == nil {
		q.done = make(chan struct{})
		d := time.Until(q.deadline)
		if d <= 0 {
			if q.err == nil {
				q.err = context.DeadlineExceeded
			}
			close(q.done)
		} else {
			done := q.done
			q.timer = time.AfterFunc(d, func() {
				q.mu.Lock()
				if q.err == nil {
					q.err = context.DeadlineExceeded
				}
				q.mu.Unlock()
				close(done)
			})
		}
	}
	return q.done
}
