package server

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"pgridfile/internal/geom"
)

func roundTripRequest(t *testing.T, req Request) Request {
	t.Helper()
	f, err := EncodeRequest(req)
	if err != nil {
		t.Fatalf("encode %+v: %v", req, err)
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeRequest(got)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return dec
}

func TestRequestRoundTrips(t *testing.T) {
	reqs := []Request{
		{Verb: VerbPoint, Key: geom.Point{1, 2}},
		{Verb: VerbRange, Query: geom.Rect{{Lo: 0, Hi: 10}, {Lo: -5, Hi: 5}}},
		{Verb: VerbRange, Query: geom.Rect{{Lo: 1, Hi: 1}}, CountOnly: true},
		{Verb: VerbPartial, Vals: []float64{3.5, math.NaN(), 7}},
		{Verb: VerbKNN, Key: geom.Point{0.25, 0.75, 0.5}, K: 9},
		{Verb: VerbStats},
		{Verb: VerbFault, FaultCmd: "status"},
		{Verb: VerbFault, FaultCmd: "store.read:err:p=0.05;parallel.send:err:n=40"},
	}
	for _, req := range reqs {
		got := roundTripRequest(t, req)
		if got.Verb != req.Verb || got.CountOnly != req.CountOnly || got.K != req.K ||
			got.FaultCmd != req.FaultCmd {
			t.Errorf("round trip changed metadata: %+v -> %+v", req, got)
		}
		if len(got.Key) != len(req.Key) || len(got.Query) != len(req.Query) ||
			len(got.Vals) != len(req.Vals) {
			t.Errorf("round trip changed shape: %+v -> %+v", req, got)
		}
		for i := range req.Key {
			if got.Key[i] != req.Key[i] {
				t.Errorf("key[%d]: %v != %v", i, got.Key[i], req.Key[i])
			}
		}
		for i := range req.Query {
			if got.Query[i] != req.Query[i] {
				t.Errorf("query[%d]: %v != %v", i, got.Query[i], req.Query[i])
			}
		}
		for i := range req.Vals {
			same := got.Vals[i] == req.Vals[i] ||
				(math.IsNaN(got.Vals[i]) && math.IsNaN(req.Vals[i]))
			if !same {
				t.Errorf("vals[%d]: %v != %v", i, got.Vals[i], req.Vals[i])
			}
		}
	}
}

func TestResultRoundTrips(t *testing.T) {
	info := QueryInfo{Buckets: 3, Pages: 7, Elapsed: 1500 * time.Microsecond}
	res := Result{
		Points: []geom.Point{{1, 2}, {3, 4}, {5, 6}},
		Count:  3,
		Info:   info,
	}
	f, err := EncodeResult(VerbPoints, res)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResult(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Points) != 3 || got.Info != info {
		t.Errorf("points round trip: %+v", got)
	}
	for i := range res.Points {
		for d := range res.Points[i] {
			if got.Points[i][d] != res.Points[i][d] {
				t.Errorf("point %d dim %d: %v != %v", i, d, got.Points[i][d], res.Points[i][d])
			}
		}
	}

	cf, err := EncodeResult(VerbCount, Result{Count: 42, Info: info})
	if err != nil {
		t.Fatal(err)
	}
	cgot, err := DecodeResult(cf)
	if err != nil {
		t.Fatal(err)
	}
	if cgot.Count != 42 || cgot.Info != info {
		t.Errorf("count round trip: %+v", cgot)
	}

	// The degraded trailer must survive both result verbs.
	dinfo := QueryInfo{Buckets: 1, Pages: 2, Elapsed: time.Millisecond,
		Degraded: true, MissedDisks: 2}
	for _, verb := range []Verb{VerbPoints, VerbCount} {
		res := Result{Count: 1, Info: dinfo}
		if verb == VerbPoints {
			res.Points = []geom.Point{{1, 2}}
		}
		df, err := EncodeResult(verb, res)
		if err != nil {
			t.Fatal(err)
		}
		dgot, err := DecodeResult(df)
		if err != nil {
			t.Fatal(err)
		}
		if dgot.Info != dinfo {
			t.Errorf("verb 0x%02x degraded round trip: %+v, want %+v", uint8(verb), dgot.Info, dinfo)
		}
	}
}

// TestSnapshotStatsRoundTrip proves the stage-trace summaries survive the
// STATS wire path: a Snapshot with per-stage histograms marshals to the
// JSON the STATS verb serves and unmarshals back (the client side) with
// every stage and counter intact.
func TestSnapshotStatsRoundTrip(t *testing.T) {
	m := newMetrics(2)
	m.rejected.Add(3)
	m.deadlineExceeded.Add(2)
	m.traced.Add(5)
	for i := range m.stageLat {
		for j := 0; j <= i; j++ {
			m.stageLat[i].observe(float64(int64(1) << i))
		}
	}
	snap := m.snapshot(1)

	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var got Snapshot
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got.Rejected != 3 || got.DeadlineExceeded != 2 || got.Traced != 5 {
		t.Errorf("counters changed in flight: rejected=%d deadline_exceeded=%d traced=%d",
			got.Rejected, got.DeadlineExceeded, got.Traced)
	}
	if len(got.Stages) != numStages {
		t.Fatalf("%d stages survived, want %d: %v", len(got.Stages), numStages, got.Stages)
	}
	for i, name := range stageNames {
		g, ok := got.Stages[name]
		if !ok {
			t.Errorf("stage %q lost in flight", name)
			continue
		}
		if want := snap.Stages[name]; g != want {
			t.Errorf("stage %q changed in flight: %+v -> %+v", name, want, g)
		}
		if g.Count != int64(i)+1 {
			t.Errorf("stage %q count = %d, want %d", name, g.Count, i+1)
		}
	}

	// The wire field names are part of the protocol: the ISSUE-specified
	// keys must appear verbatim in the STATS JSON.
	for _, key := range []string{`"rejected"`, `"deadline_exceeded"`, `"queries_traced"`, `"stage_nanos"`, `"stage_micros"`} {
		if !bytes.Contains(raw, []byte(key)) {
			t.Errorf("STATS JSON lacks %s:\n%s", key, raw)
		}
	}

	// Untraced snapshots stay lean: no stage block at all on the wire.
	lean, err := json.Marshal(newMetrics(2).snapshot(0))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(lean, []byte("stage_micros")) || bytes.Contains(lean, []byte("stage_nanos")) ||
		bytes.Contains(lean, []byte("queries_traced")) {
		t.Errorf("untraced STATS JSON carries trace fields:\n%s", lean)
	}
}

// TestDegradedTrailerValidation proves the degraded ⟺ missed>0 invariant is
// enforced on both codec directions: an inconsistent pair can neither be
// encoded nor smuggled past the decoder in raw bytes.
func TestDegradedTrailerValidation(t *testing.T) {
	bad := []QueryInfo{
		{Degraded: true, MissedDisks: 0},
		{Degraded: false, MissedDisks: 3},
		{Degraded: true, MissedDisks: -1},
		{Degraded: true, MissedDisks: math.MaxUint16 + 1},
	}
	for _, info := range bad {
		if _, err := EncodeResult(VerbCount, Result{Info: info}); err == nil {
			t.Errorf("encoded inconsistent degraded info %+v", info)
		}
	}

	// Corrupt the trailer of a well-formed frame byte by byte.
	f, err := EncodeResult(VerbCount, Result{Count: 7})
	if err != nil {
		t.Fatal(err)
	}
	flagOff := len(f.Payload) - 3
	cases := []struct {
		name  string
		flags byte
		m0    byte // low byte of the missed count
	}{
		{"degraded flag without missed count", 1, 0},
		{"missed count without degraded flag", 0, 2},
		{"unknown flag bit", 2, 0},
	}
	for _, tc := range cases {
		p := append([]byte(nil), f.Payload...)
		p[flagOff] = tc.flags
		p[flagOff+1] = tc.m0
		if _, err := DecodeResult(Frame{Verb: VerbCount, Payload: p}); err == nil {
			t.Errorf("%s: decoded", tc.name)
		}
	}
	// A frame without the trailer at all (the pre-degraded wire format) is
	// a short payload, not a silent default.
	if _, err := DecodeResult(Frame{Verb: VerbCount, Payload: f.Payload[:flagOff]}); err == nil {
		t.Error("trailerless result frame decoded")
	}
}

// TestMalformedFrames proves the frame reader rejects hostile input without
// crashing or allocating unboundedly.
func TestMalformedFrames(t *testing.T) {
	t.Run("oversized length prefix", func(t *testing.T) {
		var raw [4]byte
		binary.LittleEndian.PutUint32(raw[:], MaxFrameBytes+1)
		_, err := ReadFrame(bytes.NewReader(raw[:]))
		if err != ErrFrameTooBig {
			t.Errorf("got %v, want ErrFrameTooBig", err)
		}
	})
	t.Run("zero length", func(t *testing.T) {
		var raw [4]byte
		_, err := ReadFrame(bytes.NewReader(raw[:]))
		if err != ErrEmptyFrame {
			t.Errorf("got %v, want ErrEmptyFrame", err)
		}
	})
	t.Run("truncated payload", func(t *testing.T) {
		raw := make([]byte, 5)
		binary.LittleEndian.PutUint32(raw, 100) // promises 100 bytes, delivers 1
		raw[4] = byte(VerbPoint)
		_, err := ReadFrame(bytes.NewReader(raw))
		if err == nil || !strings.Contains(err.Error(), "truncated") {
			t.Errorf("got %v, want truncated-frame error", err)
		}
	})
	t.Run("truncated header", func(t *testing.T) {
		if _, err := ReadFrame(bytes.NewReader([]byte{1, 0})); err == nil {
			t.Error("short header accepted")
		}
	})
}

// TestMalformedRequests proves the request decoder validates every field.
func TestMalformedRequests(t *testing.T) {
	cases := []struct {
		name string
		f    Frame
	}{
		{"unknown verb", Frame{Verb: 0x7E}},
		{"point with zero dims", Frame{Verb: VerbPoint, Payload: []byte{0, 0}}},
		{"point dims beyond limit", Frame{Verb: VerbPoint, Payload: []byte{0xFF, 0xFF}}},
		{"point short payload", Frame{Verb: VerbPoint, Payload: []byte{2, 0, 1, 2, 3}}},
		{"range inverted interval", mustEncode(t, Request{
			Verb: VerbRange, Query: geom.Rect{{Lo: 5, Hi: 1}}})},
		{"range bad flags", Frame{Verb: VerbRange, Payload: []byte{9, 1, 0,
			0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}}},
		{"partial bad flag", Frame{Verb: VerbPartial, Payload: []byte{1, 0, 7,
			0, 0, 0, 0, 0, 0, 0, 0}}},
		{"knn zero k", Frame{Verb: VerbKNN, Payload: []byte{1, 0, 0, 0, 0, 0,
			0, 0, 0, 0, 0, 0, 0, 0}}},
		{"stats with payload", Frame{Verb: VerbStats, Payload: []byte{1}}},
		{"fault with empty command", Frame{Verb: VerbFault}},
		{"trailing bytes", Frame{Verb: VerbPoint, Payload: append(
			mustEncode(t, Request{Verb: VerbPoint, Key: geom.Point{1}}).Payload, 0xAA)}},
	}
	for _, tc := range cases {
		if _, err := DecodeRequest(tc.f); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func mustEncode(t *testing.T, req Request) Frame {
	t.Helper()
	// Build the frame by hand for cases EncodeRequest itself would reject.
	if req.Verb == VerbRange && len(req.Query) == 1 && req.Query[0].Hi < req.Query[0].Lo {
		var w wbuf
		w.u8(0)
		w.u16(1)
		w.f64(req.Query[0].Lo)
		w.f64(req.Query[0].Hi)
		return Frame{Verb: VerbRange, Payload: w.b}
	}
	f, err := EncodeRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestEncodeRejectsOversized(t *testing.T) {
	big := make([]byte, MaxFrameBytes)
	if err := WriteFrame(&bytes.Buffer{}, Frame{Verb: VerbStats, Payload: big}); err != ErrFrameTooBig {
		t.Errorf("got %v, want ErrFrameTooBig", err)
	}
	// A result too large for one frame must be refused at encode time.
	pts := make([]geom.Point, (MaxFrameBytes/16)+10)
	for i := range pts {
		pts[i] = geom.Point{1, 2}
	}
	if _, err := EncodeResult(VerbPoints, Result{Points: pts}); err == nil {
		t.Error("oversized result encoded")
	}
}
