package server

import (
	"bytes"
	"math"
	"testing"

	"pgridfile/internal/geom"
)

// FuzzCodec feeds arbitrary bytes through the frame reader and request
// decoder, and round-trips whatever decodes cleanly: decode → encode →
// decode must be a fixed point. This is the protocol's safety net against
// malformed, truncated and hostile frames.
func FuzzCodec(f *testing.F) {
	seed := []Request{
		{Verb: VerbPoint, Key: geom.Point{1.5, -2.5}},
		{Verb: VerbRange, Query: geom.Rect{{Lo: 0, Hi: 1}, {Lo: 2, Hi: 3}}},
		{Verb: VerbRange, Query: geom.Rect{{Lo: -1, Hi: 1}}, CountOnly: true},
		{Verb: VerbPartial, Vals: []float64{math.NaN(), 4}},
		{Verb: VerbKNN, Key: geom.Point{0.5}, K: 3},
		{Verb: VerbStats},
	}
	for _, req := range seed {
		fr, err := EncodeRequest(req)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, fr); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1})

	f.Fuzz(func(t *testing.T, raw []byte) {
		fr, err := ReadFrame(bytes.NewReader(raw))
		if err != nil {
			return // malformed frames must error, never panic
		}
		req, err := DecodeRequest(fr)
		if err != nil {
			return // malformed payloads must error, never panic
		}
		// Whatever decoded must re-encode and decode to the same request.
		fr2, err := EncodeRequest(req)
		if err != nil {
			t.Fatalf("decoded request does not re-encode: %+v: %v", req, err)
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, fr2); err != nil {
			t.Fatal(err)
		}
		fr3, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		req2, err := DecodeRequest(fr3)
		if err != nil {
			t.Fatalf("re-encoded request does not decode: %v", err)
		}
		if !requestsEqual(req, req2) {
			t.Fatalf("round trip not a fixed point:\n%+v\n%+v", req, req2)
		}
	})
}

func requestsEqual(a, b Request) bool {
	if a.Verb != b.Verb || a.K != b.K || a.CountOnly != b.CountOnly {
		return false
	}
	if len(a.Key) != len(b.Key) || len(a.Query) != len(b.Query) || len(a.Vals) != len(b.Vals) {
		return false
	}
	for i := range a.Key {
		if a.Key[i] != b.Key[i] {
			return false
		}
	}
	for i := range a.Query {
		if a.Query[i] != b.Query[i] {
			return false
		}
	}
	for i := range a.Vals {
		if a.Vals[i] != b.Vals[i] &&
			!(math.IsNaN(a.Vals[i]) && math.IsNaN(b.Vals[i])) {
			return false
		}
	}
	return true
}
