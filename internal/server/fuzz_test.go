package server

import (
	"bytes"
	"math"
	"testing"

	"pgridfile/internal/geom"
)

// FuzzCodec feeds arbitrary bytes through the frame reader and request
// decoder, and round-trips whatever decodes cleanly: decode → encode →
// decode must be a fixed point. This is the protocol's safety net against
// malformed, truncated and hostile frames.
func FuzzCodec(f *testing.F) {
	seed := []Request{
		{Verb: VerbPoint, Key: geom.Point{1.5, -2.5}},
		{Verb: VerbRange, Query: geom.Rect{{Lo: 0, Hi: 1}, {Lo: 2, Hi: 3}}},
		{Verb: VerbRange, Query: geom.Rect{{Lo: -1, Hi: 1}}, CountOnly: true},
		{Verb: VerbPartial, Vals: []float64{math.NaN(), 4}},
		{Verb: VerbKNN, Key: geom.Point{0.5}, K: 3},
		{Verb: VerbStats},
		{Verb: VerbFault, FaultCmd: "status"},
		{Verb: VerbFault, FaultCmd: "store.read:err:p=0.05;store.read:delay=10ms"},
		{Verb: VerbInsert, Key: geom.Point{0.25, 0.75}},
		{Verb: VerbDelete, Key: geom.Point{-3.5, 42}},
	}
	for _, req := range seed {
		fr, err := EncodeRequest(req)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, fr); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1})

	f.Fuzz(func(t *testing.T, raw []byte) {
		fr, err := ReadFrame(bytes.NewReader(raw))
		if err != nil {
			return // malformed frames must error, never panic
		}
		req, err := DecodeRequest(fr)
		if err != nil {
			return // malformed payloads must error, never panic
		}
		// Whatever decoded must re-encode and decode to the same request.
		fr2, err := EncodeRequest(req)
		if err != nil {
			t.Fatalf("decoded request does not re-encode: %+v: %v", req, err)
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, fr2); err != nil {
			t.Fatal(err)
		}
		fr3, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		req2, err := DecodeRequest(fr3)
		if err != nil {
			t.Fatalf("re-encoded request does not decode: %v", err)
		}
		if !requestsEqual(req, req2) {
			t.Fatalf("round trip not a fixed point:\n%+v\n%+v", req, req2)
		}
		// The pipelining envelope must also be a fixed point around any
		// decodable request, for any id.
		id := uint32(len(raw)) * 2654435761
		w, err := WrapTagged(id, fr2)
		if err != nil {
			t.Fatalf("valid request does not wrap: %v", err)
		}
		gotID, inner, err := UnwrapTagged(w)
		if err != nil {
			t.Fatalf("wrapped request does not unwrap: %v", err)
		}
		if gotID != id || inner.Verb != fr2.Verb || !bytes.Equal(inner.Payload, fr2.Payload) {
			t.Fatalf("tagged round trip drifted: id %d→%d verb %#x→%#x", id, gotID, fr2.Verb, inner.Verb)
		}
	})
}

// FuzzBatchFraming models the server's writev path: however a byte stream
// splits into frames, re-emitting those frames as one concatenated batch
// (exactly what net.Buffers delivers to the socket) must parse back to the
// identical sequence — tagged envelopes included. A framing bug here would
// desynchronize every pipelined client mid-batch.
func FuzzBatchFraming(f *testing.F) {
	var seedBatch []byte
	for i, req := range []Request{
		{Verb: VerbStats},
		{Verb: VerbPoint, Key: geom.Point{1.5, -2.5}},
		{Verb: VerbRange, Query: geom.Rect{{Lo: 0, Hi: 1}}, CountOnly: true},
	} {
		var err error
		seedBatch, err = AppendRequestFrame(seedBatch, req, uint32(i), i%2 == 0)
		if err != nil {
			f.Fatal(err)
		}
	}
	f.Add(seedBatch)
	f.Add([]byte{1, 0, 0, 0, 5, 1, 0, 0, 0, 5})
	// Response-side batch: the pipelined worker encodes every reply of a
	// batch into one buffer with AppendResult — tagged envelopes around
	// streamed VerbPoints rows, the dims>0/zero-row shape only the streaming
	// encoder emits, plus count and write acks — and the writer concatenates
	// those buffers onto the wire. Framing must hold for response bytes
	// exactly as for requests.
	respFrames := []Frame{
		mustResultFrame(f, VerbPoints, Result{
			Points: []geom.Point{{1, 2, 3}, {4, 5, 6}}, Count: 2,
			Info: QueryInfo{Buckets: 1, Pages: 1}}),
		emptyPointsFrame(f, 3),
		mustResultFrame(f, VerbCount, Result{Count: 42, Info: QueryInfo{Buckets: 2, Pages: 2}}),
		mustResultFrame(f, VerbWriteOK, Result{Applied: true, Splits: 1}),
	}
	var respBatch bytes.Buffer
	for i, fr := range respFrames {
		if i%2 == 0 {
			w, err := WrapTagged(uint32(1000+i), fr)
			if err != nil {
				f.Fatal(err)
			}
			fr = w
		}
		if err := WriteFrame(&respBatch, fr); err != nil {
			f.Fatal(err)
		}
	}
	f.Add(respBatch.Bytes())

	f.Fuzz(func(t *testing.T, raw []byte) {
		// First pass: split the input into as many well-formed frames as it
		// yields (stopping at the first malformed one, as the reader would).
		r := bytes.NewReader(raw)
		var frames []Frame
		for {
			fr, err := ReadFrame(r)
			if err != nil {
				break
			}
			frames = append(frames, Frame{Verb: fr.Verb, Payload: append([]byte(nil), fr.Payload...)})
			if len(frames) >= 64 {
				break // maxWriteBatch-sized batches are the real workload
			}
		}
		if len(frames) == 0 {
			return
		}
		// Re-emit as one batch the way connWriter does: each frame encoded
		// into its own buffer, buffers concatenated verbatim.
		var batch bytes.Buffer
		for _, fr := range frames {
			if err := WriteFrame(&batch, fr); err != nil {
				return // unencodable (e.g. oversized) frames never reach the writer
			}
		}
		// The concatenation must parse back to the same frame sequence.
		br := bytes.NewReader(batch.Bytes())
		for i, want := range frames {
			got, err := ReadFrame(br)
			if err != nil {
				t.Fatalf("frame %d of %d lost in the batch: %v", i, len(frames), err)
			}
			if got.Verb != want.Verb || !bytes.Equal(got.Payload, want.Payload) {
				t.Fatalf("frame %d drifted: verb %#x→%#x payload %d→%d bytes",
					i, want.Verb, got.Verb, len(want.Payload), len(got.Payload))
			}
		}
		if _, err := ReadFrame(br); err == nil {
			t.Fatal("batch parsed to more frames than were written")
		}
	})
}

func mustResultFrame(f *testing.F, verb Verb, res Result) Frame {
	f.Helper()
	fr, err := EncodeResult(verb, res)
	if err != nil {
		f.Fatal(err)
	}
	return fr
}

// emptyPointsFrame builds the streamed zero-row, dims-wide points frame the
// serving path emits for an empty result.
func emptyPointsFrame(f *testing.F, dims int) Frame {
	f.Helper()
	e := newResultEncoder(nil, dims)
	payload, err := e.finish(QueryInfo{Buckets: 1, Pages: 1})
	if err != nil {
		f.Fatal(err)
	}
	return Frame{Verb: VerbPoints, Payload: payload}
}

func requestsEqual(a, b Request) bool {
	if a.Verb != b.Verb || a.K != b.K || a.CountOnly != b.CountOnly ||
		a.FaultCmd != b.FaultCmd {
		return false
	}
	if len(a.Key) != len(b.Key) || len(a.Query) != len(b.Query) || len(a.Vals) != len(b.Vals) {
		return false
	}
	for i := range a.Key {
		if a.Key[i] != b.Key[i] {
			return false
		}
	}
	for i := range a.Query {
		if a.Query[i] != b.Query[i] {
			return false
		}
	}
	for i := range a.Vals {
		if a.Vals[i] != b.Vals[i] &&
			!(math.IsNaN(a.Vals[i]) && math.IsNaN(b.Vals[i])) {
			return false
		}
	}
	return true
}

// FuzzDegradedCodec hammers the result decoder — in particular the degraded
// trailer (flags + missed-disk count) appended for fault-tolerant serving —
// with arbitrary payloads: whatever decodes must satisfy the degraded ⟺
// missed>0 invariant and re-encode to a fixed point; inconsistent trailers
// must error, never panic or leak through.
func FuzzDegradedCodec(f *testing.F) {
	seeds := []struct {
		verb Verb
		res  Result
	}{
		{VerbCount, Result{Count: 42, Info: QueryInfo{Buckets: 3, Pages: 7, Elapsed: 1500}}},
		{VerbCount, Result{Count: 10, Info: QueryInfo{Buckets: 2, Pages: 2, Degraded: true, MissedDisks: 1}}},
		{VerbPoints, Result{Points: []geom.Point{{1, 2}, {3, 4}}, Count: 2,
			Info: QueryInfo{Buckets: 1, Pages: 1, Degraded: true, MissedDisks: 3}}},
		{VerbPoints, Result{}},
		{VerbWriteOK, Result{Applied: true, Splits: 2, Info: QueryInfo{Buckets: 3, Elapsed: 900}}},
		{VerbWriteOK, Result{Applied: false}},
	}
	for _, s := range seeds {
		fr, err := EncodeResult(s.verb, s.res)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(uint8(s.verb), fr.Payload)
	}
	// Hand-corrupted trailers: degraded flag without a missed count, and an
	// unknown flag bit. Both must be rejected by the decoder.
	base, err := EncodeResult(VerbCount, Result{Count: 1})
	if err != nil {
		f.Fatal(err)
	}
	for _, flag := range []byte{1, 2} {
		bad := append([]byte(nil), base.Payload...)
		bad[len(bad)-3] = flag
		f.Add(uint8(VerbCount), bad)
	}
	// The streamed empty-points payload (dims > 0, zero rows) that only the
	// serving path's incremental encoder produces — EncodeResult cannot,
	// because it derives dims from the rows it is given.
	f.Add(uint8(VerbPoints), emptyPointsFrame(f, 3).Payload)

	f.Fuzz(func(t *testing.T, verb uint8, payload []byte) {
		res, err := DecodeResult(Frame{Verb: Verb(verb), Payload: payload})
		if err != nil {
			return // malformed results must error, never panic
		}
		if res.Info.Degraded != (res.Info.MissedDisks > 0) {
			t.Fatalf("decoder let an inconsistent degraded trailer through: %+v", res.Info)
		}
		fr2, err := EncodeResult(Verb(verb), res)
		if err != nil {
			t.Fatalf("decoded result does not re-encode: %+v: %v", res, err)
		}
		res2, err := DecodeResult(fr2)
		if err != nil {
			t.Fatalf("re-encoded result does not decode: %v", err)
		}
		if !resultsEqual(res, res2) {
			t.Fatalf("round trip not a fixed point:\n%+v\n%+v", res, res2)
		}
	})
}

func resultsEqual(a, b Result) bool {
	if a.Count != b.Count || a.Info != b.Info || len(a.Points) != len(b.Points) ||
		a.Applied != b.Applied || a.Splits != b.Splits {
		return false
	}
	for i := range a.Points {
		if len(a.Points[i]) != len(b.Points[i]) {
			return false
		}
		for d := range a.Points[i] {
			av, bv := a.Points[i][d], b.Points[i][d]
			if av != bv && !(math.IsNaN(av) && math.IsNaN(bv)) {
				return false
			}
		}
	}
	return true
}
