package parallel

import (
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"pgridfile/internal/fault"
	"sync"
	"time"

	"pgridfile/internal/geom"
)

// Transport selects how the coordinator exchanges messages with workers.
type Transport int

const (
	// TransportChannel passes request/reply structs over Go channels: the
	// fast in-process path and the default.
	TransportChannel Transport = iota
	// TransportWire serializes every message with encoding/gob over a
	// net.Pipe byte stream per worker — the same coordinator/worker
	// protocol as TransportChannel, but crossing a real wire format, as
	// messages did on the SP-2. Useful for validating that the protocol
	// carries everything it needs and for measuring serialization cost.
	TransportWire
	// TransportTCP runs the same gob protocol over real loopback TCP
	// sockets, one connection per worker, so the exchange additionally
	// crosses the kernel's network stack — the closest the in-process
	// engine gets to the SP-2's physical message passing, and the same
	// listener plumbing the network query service (internal/server) uses.
	TransportTCP
)

// overWire reports whether the transport serializes messages with gob.
func (t Transport) overWire() bool { return t == TransportWire || t == TransportTCP }

// wireRequest is the on-wire form of a block request.
type wireRequest struct {
	Blocks   []int64
	Query    geom.Rect
	WantKeys bool
}

// wireReply is the on-wire form of a worker's answer. The simulated disk
// time travels as nanoseconds to keep gob encoding flat.
type wireReply struct {
	Worker     int
	Blocks     int
	Records    int
	Hits       int
	DiskTimeNs int64
	Keys       []float64
}

// wireLink is the coordinator's endpoint for one worker.
type wireLink struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// startWireWorkers launches one goroutine per worker serving the gob
// protocol over a net.Pipe, and returns the coordinator-side links.
func (e *Engine) startWireWorkers() {
	e.links = make([]*wireLink, len(e.workers))
	for i, w := range e.workers {
		coordSide, workerSide := net.Pipe()
		e.links[i] = &wireLink{
			conn: coordSide,
			enc:  gob.NewEncoder(coordSide),
			dec:  gob.NewDecoder(coordSide),
		}
		e.wg.Add(1)
		go w.serveWire(workerSide, &e.wg)
	}
}

// startTCPWorkers launches the wire workers over loopback TCP: an ephemeral
// listener accepts one connection per worker. Dial and accept alternate, so
// each accepted connection pairs deterministically with the worker just
// dialed for.
func (e *Engine) startTCPWorkers() error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("parallel: tcp transport: %w", err)
	}
	defer ln.Close()
	e.links = make([]*wireLink, len(e.workers))
	for i, w := range e.workers {
		coordSide, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			e.closeLinks()
			return fmt.Errorf("parallel: dialing worker %d: %w", i, err)
		}
		workerSide, err := ln.Accept()
		if err != nil {
			coordSide.Close()
			e.closeLinks()
			return fmt.Errorf("parallel: accepting worker %d: %w", i, err)
		}
		e.links[i] = &wireLink{
			conn: coordSide,
			enc:  gob.NewEncoder(coordSide),
			dec:  gob.NewDecoder(coordSide),
		}
		e.wg.Add(1)
		go w.serveWire(workerSide, &e.wg)
	}
	return nil
}

// closeLinks tears down the links established so far (startup failure).
func (e *Engine) closeLinks() {
	for _, l := range e.links {
		if l != nil {
			l.conn.Close()
		}
	}
	e.wg.Wait()
}

// serveWire is the worker loop for TransportWire: decode a request, process
// it exactly as the channel path does, encode the reply.
func (w *worker) serveWire(conn net.Conn, wg *sync.WaitGroup) {
	defer wg.Done()
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	perDisk := make([][]int64, len(w.disks))
	for {
		var req wireRequest
		if err := dec.Decode(&req); err != nil {
			// io.EOF / ErrClosedPipe: the coordinator shut down.
			return
		}
		rep := w.process(request{blocks: req.Blocks, query: req.Query, wantKeys: req.WantKeys}, perDisk)
		if err := enc.Encode(wireReply{
			Worker:     rep.worker,
			Blocks:     rep.blocks,
			Records:    rep.records,
			Hits:       rep.hits,
			DiskTimeNs: rep.diskTime.Nanoseconds(),
			Keys:       rep.keys,
		}); err != nil {
			return
		}
	}
}

// queryWire runs one query over the wire transport: encode a request to
// every active worker, then decode their replies. Failpoint semantics match
// the channel path: a dropped request is never encoded (the worker stays
// idle), and a dropped reply is still decoded off the gob stream — the
// streams must stay in lockstep or the next query would read stale frames —
// then discarded. The injected error is returned only after every pending
// reply has been drained.
func (e *Engine) queryWire(q geom.Rect, perWorker [][]int64, wantKeys bool, coordExtra time.Duration) (QueryResult, []float64, error) {
	type pending struct {
		link *wireLink
	}
	var active []pending
	var injErr error
	for wid, blocks := range perWorker {
		if len(blocks) == 0 {
			continue
		}
		if err := e.evalFault(fault.SiteParallelSend); err != nil {
			injErr = err
			continue
		}
		link := e.links[wid]
		if err := link.enc.Encode(wireRequest{Blocks: blocks, Query: q, WantKeys: wantKeys}); err != nil {
			return QueryResult{}, nil, fmt.Errorf("parallel: sending to worker %d: %w", wid, err)
		}
		active = append(active, pending{link: link})
	}

	var res QueryResult
	var keys []float64
	var maxDisk time.Duration
	cm := e.cfg.Cost
	for _, p := range active {
		var rep wireReply
		if err := p.link.dec.Decode(&rep); err != nil {
			if err == io.EOF {
				err = fmt.Errorf("worker closed connection")
			}
			return QueryResult{}, nil, fmt.Errorf("parallel: receiving reply: %w", err)
		}
		if err := e.evalFault(fault.SiteParallelRecv); err != nil {
			if injErr == nil {
				injErr = err
			}
			continue
		}
		res.Blocks += rep.Blocks
		res.Records += rep.Records
		res.CacheHits += rep.Hits
		keys = append(keys, rep.Keys...)
		if rep.Blocks > res.ResponseBlocks {
			res.ResponseBlocks = rep.Blocks
		}
		if d := time.Duration(rep.DiskTimeNs); d > maxDisk {
			maxDisk = d
		}
		res.Comm += 2 * cm.MsgLatency
		res.Comm += time.Duration(rep.Blocks*cm.RequestBytesPerBlock) * cm.TransferPerByte
		res.Comm += time.Duration(rep.Records*cm.RecordBytes) * cm.TransferPerByte
	}
	if injErr != nil {
		return QueryResult{}, nil, injErr
	}
	res.Elapsed = cm.CoordPerQuery + coordExtra + maxDisk + res.Comm
	return res, keys, nil
}
