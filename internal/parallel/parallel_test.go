package parallel

import (
	"testing"
	"time"

	"pgridfile/internal/core"
	"pgridfile/internal/diskmodel"
	"pgridfile/internal/gridfile"
	"pgridfile/internal/synth"
	"pgridfile/internal/workload"
)

// buildEngine loads a small 4-D dataset, declusters it with minimax and
// starts an engine with the given worker count.
func buildEngine(t *testing.T, workers int) (*Engine, *gridfile.File) {
	t.Helper()
	ds := synth.DSMC4D(8, 1200, 3)
	f, err := ds.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := core.FromGridFile(f)
	alloc, err := (&core.Minimax{Seed: 1}).Decluster(g, workers)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Workers: workers, Disk: diskmodel.DefaultParams(), Cost: DefaultCostModel()}
	e, err := New(f, alloc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e, f
}

func TestEngineValidation(t *testing.T) {
	ds := synth.DSMC4D(2, 200, 3)
	f, err := ds.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := core.FromGridFile(f)
	alloc, _ := (&core.Minimax{Seed: 1}).Decluster(g, 4)
	if _, err := New(f, alloc, Config{Workers: 0}); err == nil {
		t.Error("0 workers accepted")
	}
	if _, err := New(f, alloc, Config{Workers: 8, Disk: diskmodel.DefaultParams()}); err == nil {
		t.Error("mismatched allocation accepted")
	}
}

func TestAllRecordsDistributed(t *testing.T) {
	e, f := buildEngine(t, 4)
	totalBuckets := 0
	for _, n := range e.BucketsPerWorker() {
		totalBuckets += n
	}
	if totalBuckets != f.NumBuckets() {
		t.Errorf("workers own %d buckets, file has %d", totalBuckets, f.NumBuckets())
	}
}

func TestQueryReturnsCorrectRecordCount(t *testing.T) {
	e, f := buildEngine(t, 4)
	queries := workload.RandomRange4D(f.Domain(), 0.2, 20, 9)
	for i, q := range queries {
		res, err := e.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		want := f.RangeCount(q)
		if res.Records != want {
			t.Fatalf("query %d: engine found %d records, grid file %d", i, res.Records, want)
		}
	}
}

func TestQueryBlockAccounting(t *testing.T) {
	e, f := buildEngine(t, 4)
	q := f.Domain() // full scan touches every bucket exactly once
	res, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocks != f.NumBuckets() {
		t.Errorf("full scan fetched %d blocks, want %d", res.Blocks, f.NumBuckets())
	}
	if res.Records != f.Len() {
		t.Errorf("full scan found %d records, want %d", res.Records, f.Len())
	}
	if res.ResponseBlocks > res.Blocks {
		t.Error("response blocks exceed total")
	}
	// Minimax balance: the slowest worker should fetch roughly 1/4 of the
	// buckets on a full scan.
	ceil := (f.NumBuckets() + 3) / 4
	if res.ResponseBlocks > ceil {
		t.Errorf("full-scan response %d exceeds balanced bound %d", res.ResponseBlocks, ceil)
	}
}

func TestElapsedDropsWithWorkers(t *testing.T) {
	ds := synth.DSMC4D(8, 1200, 3)
	f, err := ds.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := core.FromGridFile(f)
	queries := workload.RandomRange4D(f.Domain(), 0.1, 40, 11)

	elapsed := map[int]time.Duration{}
	respBlocks := map[int]int{}
	for _, workers := range []int{4, 16} {
		alloc, err := (&core.Minimax{Seed: 1}).Decluster(g, workers)
		if err != nil {
			t.Fatal(err)
		}
		e, err := New(f, alloc, Config{Workers: workers, Disk: diskmodel.DefaultParams(), Cost: DefaultCostModel()})
		if err != nil {
			t.Fatal(err)
		}
		tot, err := e.Run(queries)
		e.Close()
		if err != nil {
			t.Fatal(err)
		}
		elapsed[workers] = tot.Elapsed
		respBlocks[workers] = tot.ResponseBlocks
	}
	if elapsed[16] >= elapsed[4] {
		t.Errorf("elapsed did not drop: 4 workers %v, 16 workers %v", elapsed[4], elapsed[16])
	}
	if respBlocks[16] >= respBlocks[4] {
		t.Errorf("response blocks did not drop: %d vs %d", respBlocks[4], respBlocks[16])
	}
}

func TestCachingHelpsRepeatedQueries(t *testing.T) {
	e, f := buildEngine(t, 4)
	q := workload.RandomRange4D(f.Domain(), 0.15, 1, 13)[0]
	first, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	second, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if second.CacheHits <= first.CacheHits {
		t.Errorf("second run hits %d, first %d", second.CacheHits, first.CacheHits)
	}
	if second.Elapsed >= first.Elapsed {
		t.Errorf("cached run not faster: %v vs %v", second.Elapsed, first.Elapsed)
	}
	// Cold caches restore the original cost.
	e.DropCaches()
	third, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if third.CacheHits != first.CacheHits {
		t.Errorf("after DropCaches hits = %d, want %d", third.CacheHits, first.CacheHits)
	}
}

func TestRunAggregates(t *testing.T) {
	e, f := buildEngine(t, 8)
	queries := workload.RandomRange4D(f.Domain(), 0.1, 15, 17)
	tot, err := e.Run(queries)
	if err != nil {
		t.Fatal(err)
	}
	if tot.Queries != 15 {
		t.Errorf("Queries = %d", tot.Queries)
	}
	if tot.Blocks < tot.ResponseBlocks {
		t.Error("total blocks below response blocks")
	}
	if tot.Elapsed <= tot.Comm {
		t.Error("elapsed not above communication component")
	}
	// Disk stats agree with block accounting.
	reads := 0
	for _, st := range e.DiskStats() {
		reads += st.Reads
	}
	if reads != tot.Blocks {
		t.Errorf("disk reads %d, engine counted %d", reads, tot.Blocks)
	}
}

func TestDeterministicTimings(t *testing.T) {
	run := func() Totals {
		ds := synth.DSMC4D(5, 600, 3)
		f, err := ds.Build()
		if err != nil {
			t.Fatal(err)
		}
		g := core.FromGridFile(f)
		alloc, err := (&core.Minimax{Seed: 1}).Decluster(g, 4)
		if err != nil {
			t.Fatal(err)
		}
		e, err := New(f, alloc, Config{Workers: 4, Disk: diskmodel.DefaultParams(), Cost: DefaultCostModel()})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		tot, err := e.Run(workload.RandomRange4D(f.Domain(), 0.1, 25, 19))
		if err != nil {
			t.Fatal(err)
		}
		return tot
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("engine timings not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestClosedEngineRejectsQueries(t *testing.T) {
	e, f := buildEngine(t, 4)
	e.Close()
	if _, err := e.Query(f.Domain()); err == nil {
		t.Error("closed engine accepted a query")
	}
	e.Close() // double close must be safe
}

func TestMultiDiskNodesReduceDiskTime(t *testing.T) {
	ds := synth.DSMC4D(8, 1200, 3)
	f, err := ds.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := core.FromGridFile(f)
	alloc, err := (&core.Minimax{Seed: 1}).Decluster(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	queries := workload.RandomRange4D(f.Domain(), 0.2, 30, 23)

	run := func(disksPerWorker int) Totals {
		disk := diskmodel.DefaultParams()
		disk.CacheBlocks = 0 // isolate the striping effect
		e, err := New(f, alloc, Config{
			Workers: 4, DisksPerWorker: disksPerWorker,
			Disk: disk, Cost: DefaultCostModel(),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		tot, err := e.Run(queries)
		if err != nil {
			t.Fatal(err)
		}
		return tot
	}

	one := run(1)
	seven := run(7) // the SP-2's actual configuration
	if seven.Elapsed >= one.Elapsed {
		t.Errorf("7 disks/node elapsed %v not below 1 disk/node %v", seven.Elapsed, one.Elapsed)
	}
	// Striping changes timing, not which blocks are fetched.
	if seven.Blocks != one.Blocks || seven.ResponseBlocks != one.ResponseBlocks {
		t.Errorf("block accounting changed: %+v vs %+v", seven, one)
	}
	if seven.Records != one.Records {
		t.Errorf("record counts changed: %d vs %d", seven.Records, one.Records)
	}
}

func TestDisksPerWorkerDefaultsToOne(t *testing.T) {
	ds := synth.DSMC4D(2, 200, 3)
	f, err := ds.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := core.FromGridFile(f)
	alloc, _ := (&core.Minimax{Seed: 1}).Decluster(g, 2)
	e, err := New(f, alloc, Config{Workers: 2, Disk: diskmodel.DefaultParams(), Cost: DefaultCostModel()})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := e.Query(f.Domain()); err != nil {
		t.Fatal(err)
	}
}
