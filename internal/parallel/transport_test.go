package parallel

import (
	"fmt"
	"testing"

	"pgridfile/internal/core"
	"pgridfile/internal/diskmodel"
	"pgridfile/internal/geom"
	"pgridfile/internal/synth"
	"pgridfile/internal/workload"
)

// TestWireTransportMatchesChannel runs the same workload over every
// transport and requires identical results: the wire protocols (gob over
// net.Pipe, gob over loopback TCP) must carry exactly the information the
// channel path does.
func TestWireTransportMatchesChannel(t *testing.T) {
	ds := synth.DSMC4D(6, 900, 3)
	f, err := ds.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := core.FromGridFile(f)
	alloc, err := (&core.Minimax{Seed: 1}).Decluster(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	queries := workload.RandomRange4D(f.Domain(), 0.15, 25, 31)

	run := func(tr Transport) Totals {
		e, err := New(f, alloc, Config{
			Workers: 4, Disk: diskmodel.DefaultParams(),
			Cost: DefaultCostModel(), Transport: tr,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		tot, err := e.Run(queries)
		if err != nil {
			t.Fatal(err)
		}
		return tot
	}

	ch := run(TransportChannel)
	wire := run(TransportWire)
	tcp := run(TransportTCP)
	if ch != wire {
		t.Errorf("transports disagree:\nchannel: %+v\nwire:    %+v", ch, wire)
	}
	if ch != tcp {
		t.Errorf("transports disagree:\nchannel: %+v\ntcp:     %+v", ch, tcp)
	}
}

// TestTCPTransportClose proves a TCP-transport engine shuts its workers and
// sockets down cleanly and can be closed twice.
func TestTCPTransportClose(t *testing.T) {
	ds := synth.DSMC4D(2, 200, 3)
	f, err := ds.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := core.FromGridFile(f)
	alloc, err := (&core.Minimax{Seed: 1}).Decluster(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(f, alloc, Config{
		Workers: 2, Disk: diskmodel.DefaultParams(),
		Cost: DefaultCostModel(), Transport: TransportTCP,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(workload.RandomRange4D(f.Domain(), 0.2, 5, 17)); err != nil {
		t.Fatal(err)
	}
	e.Close()
	e.Close() // idempotent
}

func TestWireTransportCloseAndReject(t *testing.T) {
	ds := synth.DSMC4D(2, 200, 3)
	f, err := ds.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := core.FromGridFile(f)
	alloc, _ := (&core.Minimax{Seed: 1}).Decluster(g, 2)
	e, err := New(f, alloc, Config{
		Workers: 2, Disk: diskmodel.DefaultParams(),
		Cost: DefaultCostModel(), Transport: TransportWire,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query(f.Domain()); err != nil {
		t.Fatal(err)
	}
	e.Close()
	if _, err := e.Query(f.Domain()); err == nil {
		t.Error("closed wire engine accepted a query")
	}
	e.Close() // idempotent
}

func TestUnknownTransportRejected(t *testing.T) {
	ds := synth.DSMC4D(2, 200, 3)
	f, err := ds.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := core.FromGridFile(f)
	alloc, _ := (&core.Minimax{Seed: 1}).Decluster(g, 2)
	if _, err := New(f, alloc, Config{
		Workers: 2, Disk: diskmodel.DefaultParams(), Transport: Transport(99),
	}); err == nil {
		t.Error("unknown transport accepted")
	}
}

func TestRunConcurrentMatchesSequentialAccounting(t *testing.T) {
	ds := synth.DSMC4D(6, 900, 3)
	f, err := ds.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := core.FromGridFile(f)
	alloc, err := (&core.Minimax{Seed: 1}).Decluster(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	queries := workload.RandomRange4D(f.Domain(), 0.15, 40, 41)

	disk := diskmodel.DefaultParams()
	disk.CacheBlocks = 0 // caching depends on arrival order; disable for exactness
	mk := func() *Engine {
		e, err := New(f, alloc, Config{
			Workers: 4, Disk: disk, Cost: DefaultCostModel(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}

	seq := mk()
	seqTot, err := seq.Run(queries)
	seq.Close()
	if err != nil {
		t.Fatal(err)
	}

	conc := mk()
	concTot, err := conc.RunConcurrent(queries, 8)
	conc.Close()
	if err != nil {
		t.Fatal(err)
	}

	if concTot.Queries != seqTot.Queries ||
		concTot.Blocks != seqTot.Blocks ||
		concTot.ResponseBlocks != seqTot.ResponseBlocks ||
		concTot.Records != seqTot.Records {
		t.Errorf("accounting differs:\nseq:  %+v\nconc: %+v", seqTot, concTot)
	}
}

func TestRunConcurrentRejectsWireTransport(t *testing.T) {
	ds := synth.DSMC4D(2, 200, 3)
	f, err := ds.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := core.FromGridFile(f)
	alloc, _ := (&core.Minimax{Seed: 1}).Decluster(g, 2)
	e, err := New(f, alloc, Config{
		Workers: 2, Disk: diskmodel.DefaultParams(),
		Cost: DefaultCostModel(), Transport: TransportWire,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := e.RunConcurrent(workload.RandomRange4D(f.Domain(), 0.1, 5, 3), 2); err == nil {
		t.Error("wire transport accepted by RunConcurrent")
	}
}

func TestConcurrentWireQueriesSerialized(t *testing.T) {
	// Direct concurrent Query calls on the wire transport must still be
	// correct (the engine serializes them internally).
	ds := synth.DSMC4D(4, 500, 3)
	f, err := ds.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := core.FromGridFile(f)
	alloc, _ := (&core.Minimax{Seed: 1}).Decluster(g, 4)
	e, err := New(f, alloc, Config{
		Workers: 4, Disk: diskmodel.DefaultParams(),
		Cost: DefaultCostModel(), Transport: TransportWire,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	queries := workload.RandomRange4D(f.Domain(), 0.2, 16, 5)
	want := make([]int, len(queries))
	for i, q := range queries {
		want[i] = f.RangeCount(q)
	}
	errCh := make(chan error, len(queries))
	for i, q := range queries {
		go func(i int, qq geom.Rect) {
			res, err := e.Query(qq)
			if err != nil {
				errCh <- err
				return
			}
			if res.Records != want[i] {
				errCh <- fmt.Errorf("query %d: %d records, want %d", i, res.Records, want[i])
				return
			}
			errCh <- nil
		}(i, q)
	}
	for range queries {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
}

func TestQueryRecordsMatchesGridFile(t *testing.T) {
	ds := synth.DSMC4D(5, 800, 3)
	f, err := ds.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := core.FromGridFile(f)
	alloc, _ := (&core.Minimax{Seed: 1}).Decluster(g, 4)
	for _, tr := range []Transport{TransportChannel, TransportWire} {
		e, err := New(f, alloc, Config{
			Workers: 4, Disk: diskmodel.DefaultParams(),
			Cost: DefaultCostModel(), Transport: tr,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range workload.RandomRange4D(f.Domain(), 0.2, 10, 51) {
			got, res, err := e.QueryRecords(q)
			if err != nil {
				t.Fatal(err)
			}
			want := f.RangeSearch(q)
			if len(got) != len(want) || res.Records != len(want) {
				t.Fatalf("transport %v: %d records shipped, grid file has %d", tr, len(got), len(want))
			}
			// Compare as multisets of first coordinates (cheap fingerprint)
			// plus exact containment checks.
			var sumGot, sumWant float64
			for _, p := range got {
				if !q.ContainsPoint(p) {
					t.Fatalf("shipped record %v outside query %v", p, q)
				}
				sumGot += p[0] + p[1]*3 + p[2]*7 + p[3]*13
			}
			for _, r := range want {
				sumWant += r.Key[0] + r.Key[1]*3 + r.Key[2]*7 + r.Key[3]*13
			}
			if diff := sumGot - sumWant; diff > 1e-6 || diff < -1e-6 {
				t.Fatalf("transport %v: shipped record set differs (checksum %v vs %v)", tr, sumGot, sumWant)
			}
		}
		e.Close()
	}
}

func TestPagedDirectoryCoordinator(t *testing.T) {
	ds := synth.DSMC4D(6, 900, 3)
	f, err := ds.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := core.FromGridFile(f)
	alloc, _ := (&core.Minimax{Seed: 1}).Decluster(g, 4)
	queries := workload.RandomRange4D(f.Domain(), 0.15, 20, 61)

	run := func(pageCells int) Totals {
		e, err := New(f, alloc, Config{
			Workers: 4, Disk: diskmodel.DefaultParams(),
			Cost: DefaultCostModel(), DirectoryPageCells: pageCells,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		tot, err := e.Run(queries)
		if err != nil {
			t.Fatal(err)
		}
		return tot
	}

	flat := run(0)
	paged := run(256)
	// Identical block/record accounting: the paged directory changes only
	// the coordinator's simulated cost.
	if flat.Blocks != paged.Blocks || flat.Records != paged.Records ||
		flat.ResponseBlocks != paged.ResponseBlocks {
		t.Errorf("accounting differs:\nflat:  %+v\npaged: %+v", flat, paged)
	}
	if paged.Elapsed <= flat.Elapsed {
		t.Errorf("paged-directory elapsed %v not above flat %v (page reads cost time)",
			paged.Elapsed, flat.Elapsed)
	}
}

func TestPagedDirectoryRejectsBadPageSize(t *testing.T) {
	ds := synth.DSMC4D(2, 200, 3)
	f, err := ds.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := core.FromGridFile(f)
	alloc, _ := (&core.Minimax{Seed: 1}).Decluster(g, 2)
	if _, err := New(f, alloc, Config{
		Workers: 2, Disk: diskmodel.DefaultParams(),
		Cost: DefaultCostModel(), DirectoryPageCells: -5,
	}); err != nil {
		t.Fatalf("negative page cells should mean flat directory, got %v", err)
	}
}
