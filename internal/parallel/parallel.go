// Package parallel implements the shared-nothing parallel grid file of
// Section 3.5. The engine follows the paper's SPMD organization: a
// coordinator owns the grid file's scales and directory; data buckets are
// declustered over the workers' local disks; each query is translated by
// the coordinator into per-worker block requests, shipped to the workers,
// which fetch the blocks from their (simulated) disks, filter the qualified
// records, and send them back.
//
// Workers are real goroutines exchanging messages over channels — the
// engine genuinely runs in parallel — but all reported times come from the
// deterministic cost model (per-block disk service times from
// internal/diskmodel plus a message-passing cost model), so Tables 4 and 5
// are reproducible on any host. As in the paper, one of the nodes doubles
// as coordinator and worker.
package parallel

import (
	"fmt"
	"sync"
	"time"

	"pgridfile/internal/core"
	"pgridfile/internal/diskmodel"
	"pgridfile/internal/fault"
	"pgridfile/internal/geom"
	"pgridfile/internal/gridfile"
)

// CostModel prices the non-disk components of query processing.
type CostModel struct {
	// CoordPerQuery is the coordinator's cost to translate a query against
	// the scales and directory and schedule the block requests. When the
	// engine is configured with a paged directory (Config.DirectoryPageCells),
	// the translation additionally charges DirPageRead per directory page
	// the query touches, replaying the paper's design of keeping scales and
	// directory on the coordinator's local disk.
	CoordPerQuery time.Duration
	// DirPageRead is the cost of one directory-page fetch on the
	// coordinator's disk (used only with a paged directory).
	DirPageRead time.Duration
	// MsgLatency is the fixed cost of one message (request or reply).
	MsgLatency time.Duration
	// BytePerSecondInverse is the per-byte transfer cost on the interconnect.
	TransferPerByte time.Duration
	// RecordBytes sizes reply payloads (qualified records).
	RecordBytes int
	// RequestBytesPerBlock sizes request payloads (block ids).
	RequestBytesPerBlock int
}

// DefaultCostModel models the SP-2's interconnect class: ~0.3 ms message
// latency, ~10 MB/s effective point-to-point bandwidth.
func DefaultCostModel() CostModel {
	return CostModel{
		CoordPerQuery:        3 * time.Millisecond,
		DirPageRead:          200 * time.Microsecond, // cached directory page
		MsgLatency:           150 * time.Microsecond,
		TransferPerByte:      time.Second / (10 << 20),
		RecordBytes:          38,
		RequestBytesPerBlock: 4,
	}
}

// Config assembles an engine.
type Config struct {
	// Workers is the number of processing nodes.
	Workers int
	// DisksPerWorker is the number of local disks per node (default 1).
	// The paper's SP-2 had seven disks per processor; a node's buckets are
	// striped over its local disks, which serve a query's blocks in
	// parallel, so the node's disk time is the maximum over its disks.
	DisksPerWorker int
	// Disk parameterizes every local disk.
	Disk diskmodel.Params
	// Cost prices coordination and communication.
	Cost CostModel
	// Transport selects channel (default) or gob-over-pipe messaging.
	Transport Transport
	// DirectoryPageCells, when positive, routes the coordinator's query
	// translation through a two-level paged directory with pages of that
	// many cells, charging Cost.DirPageRead per page touched. Zero keeps
	// the flat in-memory directory with the constant CoordPerQuery cost.
	DirectoryPageCells int
	// Faults, when non-nil, is consulted for every coordinator↔worker
	// message at the fault.SiteParallelSend / SiteParallelRecv sites: an
	// injected delay stalls the message, an injected error drops it and
	// fails the query. Underlying exchanges that did happen are always
	// completed, so the engine stays usable after an injected drop.
	Faults *fault.Registry
}

// QueryResult reports one query's execution.
type QueryResult struct {
	// Blocks is the total number of blocks fetched across workers.
	Blocks int
	// ResponseBlocks is the paper's response time in blocks:
	// max over workers of blocks fetched.
	ResponseBlocks int
	// Records is the number of qualified records returned.
	Records int
	// Elapsed is the simulated wall time: coordination + slowest worker's
	// disk service + communication.
	Elapsed time.Duration
	// Comm is the simulated communication component.
	Comm time.Duration
	// CacheHits counts block fetches served from worker caches.
	CacheHits int
}

// Totals aggregates a workload run (the rows of Tables 4 and 5).
type Totals struct {
	Queries        int
	Blocks         int
	ResponseBlocks int // Σ_q max_w blocks_w(q): "response time by definition"
	Records        int
	Elapsed        time.Duration
	Comm           time.Duration
	CacheHits      int
}

// Add accumulates one query's result.
func (t *Totals) Add(r QueryResult) {
	t.Queries++
	t.Blocks += r.Blocks
	t.ResponseBlocks += r.ResponseBlocks
	t.Records += r.Records
	t.Elapsed += r.Elapsed
	t.Comm += r.Comm
	t.CacheHits += r.CacheHits
}

// Engine is a running parallel grid file: a coordinator plus worker
// goroutines. Create with New, run queries with Query or Run, release the
// worker goroutines with Close.
type Engine struct {
	cfg       Config
	file      *gridfile.File
	indexByID []int
	assign    []int // dense bucket index -> worker

	workers  []*worker
	reqs     []chan request
	links    []*wireLink                 // wire transports (gob over pipe or TCP) only
	pagedDir *gridfile.TwoLevelDirectory // nil = flat directory
	wg       sync.WaitGroup
	closed   bool

	// mu serializes the coordinator's directory translation (the grid
	// file's range search reuses scratch space) and, for TransportWire,
	// the per-link encoders. Worker-side processing still overlaps across
	// workers when queries arrive concurrently via RunConcurrent.
	mu sync.Mutex
}

// request asks one worker to fetch blocks and filter records for a query.
type request struct {
	blocks   []int64
	query    geom.Rect
	wantKeys bool // ship the qualified keys back, not just their count
	reply    chan<- reply
}

type reply struct {
	worker   int
	blocks   int
	records  int
	hits     int
	diskTime time.Duration
	keys     []float64 // flat, only when requested
}

// worker owns one or more local disks and the record contents of its
// assigned buckets, striped over the disks by block id.
type worker struct {
	id      int
	disks   []*diskmodel.Disk
	buckets map[int64]bucketData
}

type bucketData struct {
	keys []float64 // flat
	dims int
	// page is the bucket's position in the worker's local physical layout
	// (dense, ascending bucket id — the order store.Write lays pages out).
	// Disk reads address local pages, so batches touching neighbouring
	// local pages can be served sequentially by elevator scheduling.
	page int64
}

// New builds an engine over a loaded grid file and a declustering
// allocation whose disk count equals cfg.Workers. Bucket contents are
// distributed to the workers according to the allocation.
func New(f *gridfile.File, alloc core.Allocation, cfg Config) (*Engine, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("parallel: %d workers", cfg.Workers)
	}
	if cfg.DisksPerWorker < 1 {
		cfg.DisksPerWorker = 1
	}
	if alloc.Disks != cfg.Workers {
		return nil, fmt.Errorf("parallel: allocation has %d disks, engine has %d workers",
			alloc.Disks, cfg.Workers)
	}
	views := f.Buckets()
	if err := alloc.Validate(len(views)); err != nil {
		return nil, err
	}

	e := &Engine{
		cfg:       cfg,
		file:      f,
		indexByID: f.IndexByID(),
		assign:    alloc.Assign,
		workers:   make([]*worker, cfg.Workers),
		reqs:      make([]chan request, cfg.Workers),
	}
	if cfg.DirectoryPageCells > 0 {
		dir, err := gridfile.NewTwoLevelDirectory(f, cfg.DirectoryPageCells)
		if err != nil {
			return nil, err
		}
		e.pagedDir = dir
	}
	for w := range e.workers {
		disks := make([]*diskmodel.Disk, cfg.DisksPerWorker)
		for i := range disks {
			disks[i] = diskmodel.New(cfg.Disk)
		}
		e.workers[w] = &worker{
			id:      w,
			disks:   disks,
			buckets: make(map[int64]bucketData),
		}
	}
	dims := f.Dims()
	for _, v := range views {
		w := e.workers[alloc.Assign[v.Index]]
		keys := make([]float64, 0, v.Records*dims)
		f.ForEachRecordInBucket(v.ID, func(key []float64, _ []byte) {
			keys = append(keys, key...)
		})
		w.buckets[int64(v.ID)] = bucketData{
			keys: keys,
			dims: dims,
			page: int64(len(w.buckets)), // views arrive in ascending id order
		}
	}

	// Launch the SPMD workers on the configured transport.
	switch cfg.Transport {
	case TransportChannel:
		for w := range e.workers {
			e.reqs[w] = make(chan request)
			e.wg.Add(1)
			go e.workers[w].run(e.reqs[w], &e.wg)
		}
	case TransportWire:
		e.startWireWorkers()
	case TransportTCP:
		if err := e.startTCPWorkers(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("parallel: unknown transport %d", cfg.Transport)
	}
	return e, nil
}

// run is the channel-transport worker loop.
func (w *worker) run(reqs <-chan request, wg *sync.WaitGroup) {
	defer wg.Done()
	perDisk := make([][]int64, len(w.disks))
	for req := range reqs {
		req.reply <- w.process(req, perDisk)
	}
}

// process serves one block request: fetch the blocks from the local disks
// (striped by block id, served in parallel within the node) and filter the
// qualified records. perDisk is the caller's scratch space, reused across
// requests.
func (w *worker) process(req request, perDisk [][]int64) reply {
	for i := range perDisk {
		perDisk[i] = perDisk[i][:0]
	}
	for _, b := range req.blocks {
		// Address the local page, not the global bucket id; blocks not
		// owned here (wasted fetches) keep their global address.
		page := b
		if bd, ok := w.buckets[b]; ok {
			page = bd.page
		}
		i := int(page % int64(len(w.disks)))
		perDisk[i] = append(perDisk[i], page)
	}
	var diskTime time.Duration
	hits := 0
	for i, blocks := range perDisk {
		t, h := w.disks[i].ReadAll(blocks)
		hits += h
		if t > diskTime {
			diskTime = t // local disks operate in parallel
		}
	}
	records := 0
	var keys []float64
	for _, b := range req.blocks {
		bd, ok := w.buckets[b]
		if !ok {
			continue // block not owned here: counted as a wasted fetch
		}
		n := len(bd.keys) / bd.dims
		for i := 0; i < n; i++ {
			key := bd.keys[i*bd.dims : (i+1)*bd.dims]
			if keyInRect(key, req.query) {
				records++
				if req.wantKeys {
					keys = append(keys, key...)
				}
			}
		}
	}
	return reply{
		worker:   w.id,
		blocks:   len(req.blocks),
		records:  records,
		hits:     hits,
		diskTime: diskTime,
		keys:     keys,
	}
}

func keyInRect(key []float64, q geom.Rect) bool {
	for d := range q {
		if key[d] < q[d].Lo || key[d] > q[d].Hi {
			return false
		}
	}
	return true
}

// Query executes one range query through the full SPMD path and returns its
// simulated execution profile.
func (e *Engine) Query(q geom.Rect) (QueryResult, error) {
	res, _, err := e.query(q, false)
	return res, err
}

// QueryRecords additionally ships the qualified records back to the
// coordinator, as the paper's system does ("send the set of qualified
// records back to the coordinator processor"), and assembles them.
func (e *Engine) QueryRecords(q geom.Rect) ([]geom.Point, QueryResult, error) {
	res, keys, err := e.query(q, true)
	if err != nil {
		return nil, QueryResult{}, err
	}
	dims := e.file.Dims()
	out := make([]geom.Point, 0, len(keys)/dims)
	for i := 0; i+dims <= len(keys); i += dims {
		out = append(out, geom.Point(keys[i:i+dims:i+dims]))
	}
	return out, res, nil
}

func (e *Engine) query(q geom.Rect, wantKeys bool) (QueryResult, []float64, error) {
	if e.closed {
		return QueryResult{}, nil, fmt.Errorf("parallel: engine closed")
	}
	// Coordinator: translate the query into per-worker block lists using
	// the scales and directory. The translation shares scratch state in
	// the grid file, so it is serialized; for the wire transport the
	// per-link gob streams must not interleave either, so the whole
	// exchange stays under the lock there.
	e.mu.Lock()
	var ids []int32
	coordExtra := time.Duration(0)
	if e.pagedDir != nil {
		e.pagedDir.ResetCounters()
		ids = e.pagedDir.BucketsInRange(e.file, q)
		coordExtra = time.Duration(e.pagedDir.PageAccesses) * e.cfg.Cost.DirPageRead
	} else {
		ids = e.file.BucketsInRange(q)
	}
	perWorker := make([][]int64, e.cfg.Workers)
	for _, id := range ids {
		dense := e.indexByID[id]
		if dense < 0 {
			e.mu.Unlock()
			return QueryResult{}, nil, fmt.Errorf("parallel: bucket %d not allocated", id)
		}
		w := e.assign[dense]
		perWorker[w] = append(perWorker[w], int64(id))
	}

	if e.cfg.Transport.overWire() {
		defer e.mu.Unlock()
		return e.queryWire(q, perWorker, wantKeys, coordExtra)
	}
	e.mu.Unlock()

	// Ship requests to the active workers and gather replies. A dropped
	// request skips that worker entirely; a dropped reply is still taken
	// off the channel. Either way the query fails with the injected error
	// only after every in-flight exchange has been collected, so the
	// engine survives the fault.
	replyCh := make(chan reply, e.cfg.Workers)
	active := 0
	var injErr error
	for w, blocks := range perWorker {
		if len(blocks) == 0 {
			continue
		}
		if err := e.evalFault(fault.SiteParallelSend); err != nil {
			injErr = err
			continue
		}
		active++
		e.reqs[w] <- request{blocks: blocks, query: q, wantKeys: wantKeys, reply: replyCh}
	}

	var res QueryResult
	var keys []float64
	var maxDisk time.Duration
	cm := e.cfg.Cost
	for i := 0; i < active; i++ {
		rep := <-replyCh
		if err := e.evalFault(fault.SiteParallelRecv); err != nil {
			if injErr == nil {
				injErr = err
			}
			continue
		}
		res.Blocks += rep.blocks
		res.Records += rep.records
		res.CacheHits += rep.hits
		keys = append(keys, rep.keys...)
		if rep.blocks > res.ResponseBlocks {
			res.ResponseBlocks = rep.blocks
		}
		if rep.diskTime > maxDisk {
			maxDisk = rep.diskTime
		}
		// Request message + reply message for this worker.
		res.Comm += 2 * cm.MsgLatency
		res.Comm += time.Duration(rep.blocks*cm.RequestBytesPerBlock) * cm.TransferPerByte
		res.Comm += time.Duration(rep.records*cm.RecordBytes) * cm.TransferPerByte
	}
	if injErr != nil {
		return QueryResult{}, nil, injErr
	}
	res.Elapsed = cm.CoordPerQuery + coordExtra + maxDisk + res.Comm
	return res, keys, nil
}

// evalFault consults the engine's failpoint registry at a message site: an
// injected delay stalls the caller (modelling interconnect latency), an
// injected error means the message was dropped.
func (e *Engine) evalFault(site string) error {
	inj, hit := e.cfg.Faults.Eval(site)
	if !hit {
		return nil
	}
	if inj.Delay > 0 {
		time.Sleep(inj.Delay)
	}
	return inj.Err
}

// Run executes a whole workload sequentially (queries are not pipelined,
// matching the paper's experiments) and returns the aggregate totals.
func (e *Engine) Run(queries []geom.Rect) (Totals, error) {
	var t Totals
	for _, q := range queries {
		r, err := e.Query(q)
		if err != nil {
			return Totals{}, err
		}
		t.Add(r)
	}
	return t, nil
}

// RunConcurrent executes the workload with the given number of client
// goroutines issuing queries concurrently — the multi-user regime beyond
// the paper's single-stream experiments. Block and record accounting in the
// returned totals is exact; the summed Elapsed no longer models a serial
// wall clock (in-flight queries overlap at the workers), so callers should
// interpret it as aggregate service demand. Requires TransportChannel.
func (e *Engine) RunConcurrent(queries []geom.Rect, clients int) (Totals, error) {
	if e.cfg.Transport != TransportChannel {
		return Totals{}, fmt.Errorf("parallel: RunConcurrent requires the channel transport")
	}
	if clients < 1 {
		clients = 1
	}
	work := make(chan geom.Rect)
	results := make(chan QueryResult, clients)
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for q := range work {
				r, err := e.Query(q)
				if err != nil {
					errs <- err
					return
				}
				results <- r
			}
		}()
	}

	var t Totals
	done := make(chan struct{})
	go func() {
		for r := range results {
			t.Add(r)
		}
		close(done)
	}()

	var firstErr error
feed:
	for _, q := range queries {
		select {
		case work <- q:
		case firstErr = <-errs:
			break feed
		}
	}
	close(work)
	wg.Wait()
	close(results)
	<-done
	if firstErr != nil {
		return Totals{}, firstErr
	}
	select {
	case err := <-errs:
		return Totals{}, err
	default:
	}
	return t, nil
}

// DropCaches empties every worker's block caches (cold-start experiments).
func (e *Engine) DropCaches() {
	for _, w := range e.workers {
		for _, d := range w.disks {
			d.DropCache()
		}
	}
}

// DiskStats returns each worker's accumulated disk statistics, summed over
// the worker's local disks.
func (e *Engine) DiskStats() []diskmodel.Stats {
	out := make([]diskmodel.Stats, len(e.workers))
	for i, w := range e.workers {
		var agg diskmodel.Stats
		for _, d := range w.disks {
			st := d.Stats()
			agg.Reads += st.Reads
			agg.Hits += st.Hits
			agg.SeqReads += st.SeqReads
			agg.BusyTime += st.BusyTime
		}
		out[i] = agg
	}
	return out
}

// BucketsPerWorker returns how many buckets each worker owns.
func (e *Engine) BucketsPerWorker() []int {
	out := make([]int, len(e.workers))
	for i, w := range e.workers {
		out[i] = len(w.buckets)
	}
	return out
}

// Close shuts down the worker goroutines. The engine cannot be used after.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	switch {
	case e.cfg.Transport.overWire():
		for _, l := range e.links {
			l.conn.Close()
		}
	default:
		for _, ch := range e.reqs {
			close(ch)
		}
	}
	e.wg.Wait()
}
