package parallel

import (
	"testing"
	"time"

	"pgridfile/internal/core"
	"pgridfile/internal/diskmodel"
	"pgridfile/internal/fault"
	"pgridfile/internal/gridfile"
	"pgridfile/internal/synth"
)

// buildFaultEngine starts an engine wired to a fresh fault registry.
func buildFaultEngine(t *testing.T, workers int, tr Transport) (*Engine, *gridfile.File, *fault.Registry) {
	t.Helper()
	f, err := synth.DSMC4D(8, 1000, 3).Build()
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := (&core.Minimax{Seed: 1}).Decluster(core.FromGridFile(f), workers)
	if err != nil {
		t.Fatal(err)
	}
	reg := fault.NewRegistry(2)
	e, err := New(f, alloc, Config{
		Workers: workers, Disk: diskmodel.DefaultParams(),
		Cost: DefaultCostModel(), Transport: tr, Faults: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e, f, reg
}

// TestDroppedMessagesFailQueryEngineSurvives proves, for both message sites
// and both transports, that a dropped message fails the query with an
// injected error — and that the engine is immediately usable again once the
// fault clears, with answers matching the grid file exactly. On the gob wire
// this is the lockstep regression: a dropped reply must still be drained off
// the stream, or the next query would read the previous query's frames.
func TestDroppedMessagesFailQueryEngineSurvives(t *testing.T) {
	for _, tc := range []struct {
		name string
		tr   Transport
		site string
	}{
		{"channel send", TransportChannel, fault.SiteParallelSend},
		{"channel recv", TransportChannel, fault.SiteParallelRecv},
		{"wire send", TransportWire, fault.SiteParallelSend},
		{"wire recv", TransportWire, fault.SiteParallelRecv},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e, f, reg := buildFaultEngine(t, 4, tc.tr)
			q := f.Domain()
			want := f.Len()

			// Healthy first: establishes the full-scan baseline.
			res, err := e.Query(q)
			if err != nil || res.Records != want {
				t.Fatalf("healthy query: records=%d err=%v, want %d/nil", res.Records, want, err)
			}

			reg.Set(fault.Rule{Site: tc.site, Kind: fault.KindError})
			if _, err := e.Query(q); !fault.IsInjected(err) {
				t.Fatalf("query with dropped messages: err=%v, want injected", err)
			}

			// The drop must not wedge or desynchronize the engine: with the
			// fault cleared, the very next queries are exactly right.
			reg.Clear()
			for i := 0; i < 3; i++ {
				res, err := e.Query(q)
				if err != nil {
					t.Fatalf("query %d after clear: %v", i, err)
				}
				if res.Records != want || res.Blocks != f.NumBuckets() {
					t.Fatalf("query %d after clear: records=%d blocks=%d, want %d/%d",
						i, res.Records, res.Blocks, want, f.NumBuckets())
				}
			}
		})
	}
}

// TestNthDropFailsOnlyMatchingQueries proves trigger precision: with a drop
// armed on every 2nd send evaluation of a single-worker engine, queries
// alternate cleanly between success and injected failure.
func TestNthDropFailsOnlyMatchingQueries(t *testing.T) {
	e, f, reg := buildFaultEngine(t, 1, TransportChannel)
	reg.Set(fault.Rule{Site: fault.SiteParallelSend, Kind: fault.KindError, Nth: 2})
	q := f.Domain() // one worker: exactly one send evaluation per query
	for i := 0; i < 6; i++ {
		_, err := e.Query(q)
		if i%2 == 1 {
			if !fault.IsInjected(err) {
				t.Fatalf("query %d: err=%v, want injected (every 2nd send drops)", i, err)
			}
		} else if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
}

// TestInjectedMessageDelayStallsQuery proves a delay rule stalls the
// exchange in real wall-clock time without failing it.
func TestInjectedMessageDelayStallsQuery(t *testing.T) {
	e, f, reg := buildFaultEngine(t, 2, TransportChannel)
	q := f.Domain()
	if _, err := e.Query(q); err != nil {
		t.Fatal(err)
	}
	if err := reg.SetSpec("parallel.send:delay=30ms"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := e.Query(q)
	if err != nil {
		t.Fatalf("delayed query failed: %v", err)
	}
	if res.Records != f.Len() {
		t.Fatalf("delayed query returned %d records, want %d", res.Records, f.Len())
	}
	// Two workers → two send evaluations → at least 60ms of injected stall.
	if el := time.Since(start); el < 50*time.Millisecond {
		t.Errorf("query with two 30ms stalls took %v", el)
	}
}
