package parallel_test

import (
	"fmt"

	"pgridfile/internal/core"
	"pgridfile/internal/diskmodel"
	"pgridfile/internal/parallel"
	"pgridfile/internal/synth"
)

// ExampleEngine stands up the SPMD engine on a small 4-D dataset and runs a
// full-volume query: the coordinator translates it against the grid
// directory, workers fetch their blocks in parallel and ship back the
// qualified record count. All timing comes from the deterministic cost
// model, so the output is stable.
func ExampleEngine() {
	ds := synth.DSMC4D(4, 1000, 7)
	file, err := ds.Build()
	if err != nil {
		panic(err)
	}
	grid := core.FromGridFile(file)
	alloc, err := (&core.Minimax{Seed: 1}).Decluster(grid, 4)
	if err != nil {
		panic(err)
	}
	eng, err := parallel.New(file, alloc, parallel.Config{
		Workers: 4,
		Disk:    diskmodel.DefaultParams(),
		Cost:    parallel.DefaultCostModel(),
	})
	if err != nil {
		panic(err)
	}
	defer eng.Close()

	res, err := eng.Query(file.Domain())
	if err != nil {
		panic(err)
	}
	fmt.Printf("records: %d of %d\n", res.Records, file.Len())
	fmt.Printf("blocks fetched: %d (response %d from the busiest worker)\n",
		res.Blocks, res.ResponseBlocks)
	fmt.Printf("balanced: %v\n", res.ResponseBlocks <= (file.NumBuckets()+3)/4)
	// Output:
	// records: 4000 of 4000
	// blocks fetched: 24 (response 6 from the busiest worker)
	// balanced: true
}
