package campaign

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"

	"pgridfile/internal/stats"
)

// Cell is one matrix point's aggregated counters, summed over trials. Every
// JSON field is deterministic for a fixed (code, Options): counts of events,
// never timings. P99Micros is the one wall-clock figure and is excluded from
// the JSON so reports stay byte-comparable across machines.
type Cell struct {
	Fault    string `json:"fault"`
	Scheme   string `json:"scheme"`
	Workload string `json:"workload"`
	Replicas int    `json:"replicas"`

	// Queries is the number of data queries the server answered.
	Queries int64 `json:"queries"`
	// Errors counts queries that surfaced an error (degraded mode should
	// hold this at zero under every axis).
	Errors int64 `json:"errors"`
	// ClientErrors counts ops whose client call returned an error — the
	// client-side view of Errors, split out so a transport-layer failure is
	// distinguishable from a server-side one.
	ClientErrors int64 `json:"client_errors"`
	// Degraded counts queries answered partially (disk lost, no replica).
	Degraded int64 `json:"degraded"`
	// Failover counts disk batches rerouted to a surviving replica.
	Failover int64 `json:"failover"`
	// Retries counts disk-batch retry attempts.
	Retries int64 `json:"retries"`
	// FaultsFired counts registry injections that actually fired.
	FaultsFired int64 `json:"faults_fired"`
	// ScrubPages/ScrubCorrupt/ScrubRepaired report the end-of-trial scrub
	// pass: page copies verified, checksum mismatches found, mismatches
	// repaired from a replica.
	ScrubPages    int64 `json:"scrub_pages"`
	ScrubCorrupt  int64 `json:"scrub_corrupt"`
	ScrubRepaired int64 `json:"scrub_repaired"`

	// P99Micros is wall-clock query latency: rendered in the table for the
	// operator, never persisted or gated.
	P99Micros float64 `json:"-"`
}

func (c Cell) key() string {
	return fmt.Sprintf("%s|%s|%s|r%d", c.Fault, c.Scheme, c.Workload, c.Replicas)
}

// gated returns the counters the baseline comparison checks, with stable
// names for violation messages.
func (c Cell) gated() []counter {
	return []counter{
		{"queries", c.Queries},
		{"errors", c.Errors},
		{"client_errors", c.ClientErrors},
		{"degraded", c.Degraded},
		{"failover", c.Failover},
		{"retries", c.Retries},
		{"faults_fired", c.FaultsFired},
		{"scrub_pages", c.ScrubPages},
		{"scrub_corrupt", c.ScrubCorrupt},
		{"scrub_repaired", c.ScrubRepaired},
	}
}

type counter struct {
	name string
	val  int64
}

// Report is a full campaign result. The header fields pin the configuration
// the cells were measured under; Compare refuses to gate across differing
// configurations.
type Report struct {
	Seed    int64  `json:"seed"`
	Records int    `json:"records"`
	Disks   int    `json:"disks"`
	Queries int    `json:"queries"`
	Trials  int    `json:"trials"`
	Cells   []Cell `json:"cells"`
}

// Marshal renders the report as stable, newline-terminated indented JSON —
// the committed-baseline format.
func (r *Report) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Save writes the report to path in baseline format.
func (r *Report) Save(path string) error {
	b, err := r.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// Load reads a report written by Save (or committed as a baseline).
func Load(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("campaign: %s: %v", path, err)
	}
	return &r, nil
}

// Table renders the report for operators: one row per cell, counters plus
// the (ungated) wall-clock p99.
func (r *Report) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("scenario campaign — %d cells, %d trials × %d queries (p99 is wall-clock, not gated)",
			len(r.Cells), r.Trials, r.Queries),
		"fault", "scheme", "workload", "r",
		"queries", "errors", "degraded", "failover", "retries",
		"corrupt", "repaired", "p99(µs)")
	for _, c := range r.Cells {
		t.AddRow(c.Fault, c.Scheme, c.Workload, c.Replicas,
			c.Queries, c.Errors, c.Degraded, c.Failover, c.Retries,
			c.ScrubCorrupt, c.ScrubRepaired, c.P99Micros)
	}
	return t
}

// Compare gates got against a baseline: identical configuration, identical
// matrix shape, and every gated counter within tol of the baseline value
// (relative, with an absolute floor of tol itself so zero baselines admit
// tiny drift only when tol > 0; tol 0 demands exact equality). It returns
// human-readable violations, empty when the gate passes.
func Compare(got, want *Report, tol float64) []string {
	var v []string
	if got.Seed != want.Seed || got.Records != want.Records || got.Disks != want.Disks ||
		got.Queries != want.Queries || got.Trials != want.Trials {
		return append(v, fmt.Sprintf(
			"config mismatch: got seed=%d records=%d disks=%d queries=%d trials=%d, baseline seed=%d records=%d disks=%d queries=%d trials=%d",
			got.Seed, got.Records, got.Disks, got.Queries, got.Trials,
			want.Seed, want.Records, want.Disks, want.Queries, want.Trials))
	}
	index := make(map[string]Cell, len(got.Cells))
	for _, c := range got.Cells {
		index[c.key()] = c
	}
	for _, w := range want.Cells {
		g, ok := index[w.key()]
		if !ok {
			v = append(v, "cell missing from run: "+w.key())
			continue
		}
		delete(index, w.key())
		wc := w.gated()
		for i, gc := range g.gated() {
			if !within(gc.val, wc[i].val, tol) {
				v = append(v, fmt.Sprintf("%s: %s = %d, baseline %d (tolerance %g)",
					w.key(), gc.name, gc.val, wc[i].val, tol))
			}
		}
	}
	extra := make([]string, 0, len(index))
	for k := range index {
		extra = append(extra, k)
	}
	sort.Strings(extra)
	for _, k := range extra {
		v = append(v, "cell not in baseline: "+k)
	}
	return v
}

func within(got, want int64, tol float64) bool {
	d := float64(got - want)
	return math.Abs(d) <= tol*math.Max(1, math.Abs(float64(want)))
}
