package campaign

import (
	"strings"
	"testing"
)

// smallOpts is a reduced matrix that still spans every axis kind: a healthy
// baseline, a dead disk, physical corruption; two allocator families; both
// replication factors.
func smallOpts() Options {
	return Options{
		Records:   300,
		Disks:     4,
		Queries:   20,
		Trials:    1,
		Seed:      1,
		Schemes:   []string{"minimax", "DM/D"},
		Replicas:  []int{1, 2},
		Faults:    []string{"none", "kill-disk0", "corrupt"},
		Workloads: []string{"uniform"},
	}
}

func cellsByKey(r *Report) map[string]Cell {
	m := make(map[string]Cell, len(r.Cells))
	for _, c := range r.Cells {
		m[c.key()] = c
	}
	return m
}

// TestCampaignDeterministicAndSound runs the reduced matrix twice and pins
// the two load-bearing properties: the marshaled reports are byte-identical
// (the determinism contract the baseline gate rests on), and the cells tell
// the fault story they are supposed to — failover under replication,
// degraded answers without it, scrubber repair only when a replica exists,
// and zero surfaced errors anywhere.
func TestCampaignDeterministicAndSound(t *testing.T) {
	a, err := Run(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	aj, err := a.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(aj) != string(bj) {
		t.Fatalf("same options, different reports:\n--- run A ---\n%s\n--- run B ---\n%s", aj, bj)
	}
	if want := 3 * 2 * 1 * 2; len(a.Cells) != want {
		t.Fatalf("matrix has %d cells, want %d", len(a.Cells), want)
	}

	cells := cellsByKey(a)
	for key, c := range cells {
		if c.Errors != 0 || c.ClientErrors != 0 {
			t.Errorf("%s: errors=%d client_errors=%d, degraded mode should absorb every fault", key, c.Errors, c.ClientErrors)
		}
		if c.Queries != int64(a.Queries*a.Trials) {
			t.Errorf("%s: served %d queries, want %d", key, c.Queries, a.Queries*a.Trials)
		}
		if c.ScrubPages == 0 {
			t.Errorf("%s: scrub verified no pages", key)
		}
		switch {
		case strings.HasPrefix(key, "none|"):
			if c.Degraded != 0 || c.Failover != 0 || c.ScrubCorrupt != 0 {
				t.Errorf("%s: healthy cell shows degraded=%d failover=%d corrupt=%d", key, c.Degraded, c.Failover, c.ScrubCorrupt)
			}
		case strings.HasPrefix(key, "kill-disk0|") && c.Replicas == 2:
			if c.Failover == 0 {
				t.Errorf("%s: dead disk with a replica never failed over", key)
			}
			if c.Degraded != 0 {
				t.Errorf("%s: replicated cell degraded %d queries", key, c.Degraded)
			}
		case strings.HasPrefix(key, "kill-disk0|") && c.Replicas == 1:
			if c.Degraded == 0 {
				t.Errorf("%s: dead disk without a replica never degraded", key)
			}
		case strings.HasPrefix(key, "corrupt|"):
			if c.ScrubCorrupt == 0 {
				t.Errorf("%s: scrubber missed the injected corruption", key)
			}
			if c.Replicas == 2 && c.ScrubRepaired != c.ScrubCorrupt {
				t.Errorf("%s: repaired %d of %d corrupt pages", key, c.ScrubRepaired, c.ScrubCorrupt)
			}
			if c.Replicas == 1 && c.ScrubRepaired != 0 {
				t.Errorf("%s: repaired %d pages with no replica to heal from", key, c.ScrubRepaired)
			}
		}
	}
	// Corruption must also be *served* through: replicated cells reroute
	// around bad pages (failover), unreplicated ones degrade.
	for _, c := range a.Cells {
		if c.Fault != "corrupt" {
			continue
		}
		if c.Replicas == 2 && c.Failover == 0 {
			t.Errorf("%s: corrupt primary never triggered checksum failover", c.key())
		}
		if c.Replicas == 1 && c.Degraded == 0 {
			t.Errorf("%s: corrupt page never degraded an answer", c.key())
		}
	}
}

// TestCompareGating pins the baseline gate: a report matches itself, a
// drifted counter is a violation unless tolerance covers it, and shape or
// config mismatches are refused loudly.
func TestCompareGating(t *testing.T) {
	base := &Report{Seed: 1, Records: 300, Disks: 4, Queries: 20, Trials: 1,
		Cells: []Cell{
			{Fault: "none", Scheme: "minimax", Workload: "uniform", Replicas: 1, Queries: 20, ScrubPages: 16},
			{Fault: "corrupt", Scheme: "minimax", Workload: "uniform", Replicas: 2, Queries: 20, Failover: 7, ScrubPages: 32, ScrubCorrupt: 3, ScrubRepaired: 3},
		}}
	if v := Compare(base, base, 0); len(v) != 0 {
		t.Fatalf("report does not match itself: %v", v)
	}

	drift := *base
	drift.Cells = append([]Cell(nil), base.Cells...)
	drift.Cells[1].Failover = 8
	if v := Compare(&drift, base, 0); len(v) != 1 || !strings.Contains(v[0], "failover") {
		t.Errorf("off-by-one failover at tolerance 0: %v", v)
	}
	if v := Compare(&drift, base, 0.2); len(v) != 0 {
		t.Errorf("20%% tolerance should absorb 7→8: %v", v)
	}

	missing := *base
	missing.Cells = base.Cells[:1]
	if v := Compare(&missing, base, 0); len(v) != 1 || !strings.Contains(v[0], "missing") {
		t.Errorf("dropped cell: %v", v)
	}
	if v := Compare(base, &missing, 0); len(v) != 1 || !strings.Contains(v[0], "not in baseline") {
		t.Errorf("extra cell: %v", v)
	}

	cfg := *base
	cfg.Seed = 2
	if v := Compare(&cfg, base, 0); len(v) != 1 || !strings.Contains(v[0], "config mismatch") {
		t.Errorf("config mismatch: %v", v)
	}
}

// TestAxisParsing pins the axis-name grammar, including raw fault specs
// passing through to internal/fault.
func TestAxisParsing(t *testing.T) {
	for _, name := range []string{"none", "corrupt", "kill-disk3", "torn-disk0", "store.read:err:p=0.5"} {
		if _, err := parseFaultAxis(name); err != nil {
			t.Errorf("fault axis %q rejected: %v", name, err)
		}
	}
	for _, name := range []string{"kill-diskX", "bogus", "store.read:maybe"} {
		if _, err := parseFaultAxis(name); err == nil {
			t.Errorf("fault axis %q accepted", name)
		}
	}
	for _, name := range []string{"uniform", "hotspot", "points", "scans"} {
		if _, err := parseWorkloadAxis(name); err != nil {
			t.Errorf("workload axis %q rejected: %v", name, err)
		}
	}
	if _, err := parseWorkloadAxis("zipf"); err == nil {
		t.Error("workload axis \"zipf\" accepted")
	}
	if _, err := Run(Options{Records: 10, Replicas: []int{9}, Disks: 4}); err == nil {
		t.Error("replicas > disks accepted")
	}
}
