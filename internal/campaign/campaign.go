// Package campaign runs the scenario campaign of DESIGN S27: a seeded,
// deterministic experiment matrix sweeping fault scenarios × declustering
// schemes × workload mixes × replication factors against an in-process
// gridserver, and aggregating per-cell serving counters into a report that
// can be diffed against a committed baseline.
//
// Determinism is the design constraint everything else bends around: a
// cell's gated counters must depend only on (code, options), never on
// wall-clock timing, so the same seed reproduces a byte-identical report on
// any machine. The campaign therefore runs one sequential client (each
// query starts with every disk idle, so load-aware replica selection always
// resolves the same way), disables the bucket cache (every query pays the
// full read path), uses only always-fire or seeded fault rules, and keeps
// wall-clock latency (p99) out of the persisted report — it appears in the
// rendered table but is never gated.
//
// Fault axes come in three flavors: none, registry-injected faults (a dead
// disk, torn reads — see internal/fault), and physical page corruption,
// which flips bits in the on-disk page files themselves so the per-page
// checksums (store format 2) and the scrubber's repair-from-replica path
// are exercised end to end. Corrupted layouts are restored from pristine
// bytes between trials, so cells never contaminate each other.
package campaign

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"pgridfile/internal/core"
	"pgridfile/internal/fault"
	"pgridfile/internal/gridfile"
	"pgridfile/internal/loadgen"
	"pgridfile/internal/replica"
	"pgridfile/internal/server"
	"pgridfile/internal/store"
	"pgridfile/internal/synth"
)

// Options configures a campaign. The zero value runs the default matrix:
// 3 faults × 3 schemes × 2 workloads × r ∈ {1,2} = 36 cells, 2 trials each.
type Options struct {
	// Records sizes the synthetic dataset (synth.Uniform2D). Default 900.
	Records int
	// Disks is the layout's disk count. Default 4.
	Disks int
	// PageBytes is the layout page size. Default 4096.
	PageBytes int
	// Queries per trial. Default 40.
	Queries int
	// Trials per cell; counters sum over trials. Default 2.
	Trials int
	// Seed drives the dataset, the allocators, the workload synthesis and
	// the fault registry. Default 1.
	Seed int64
	// Schemes are allocator names in core.ParseAllocator grammar.
	// Default minimax, DM/D, HCAM/F — one per allocator family.
	Schemes []string
	// Replicas are the replication factors to sweep. Default 1, 2.
	Replicas []int
	// Faults are fault-axis names: "none", "corrupt", "kill-diskN",
	// "torn-diskN", or a raw internal/fault spec.
	// Default none, kill-disk0, corrupt.
	Faults []string
	// Workloads are workload-axis names: "uniform", "hotspot", "points",
	// "scans". Default uniform, hotspot.
	Workloads []string
}

func (o Options) withDefaults() Options {
	if o.Records <= 0 {
		o.Records = 900
	}
	if o.Disks <= 0 {
		o.Disks = 4
	}
	if o.PageBytes <= 0 {
		o.PageBytes = 4096
	}
	if o.Queries <= 0 {
		o.Queries = 40
	}
	if o.Trials <= 0 {
		o.Trials = 2
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if len(o.Schemes) == 0 {
		o.Schemes = []string{"minimax", "DM/D", "HCAM/F"}
	}
	if len(o.Replicas) == 0 {
		o.Replicas = []int{1, 2}
	}
	if len(o.Faults) == 0 {
		o.Faults = []string{"none", "kill-disk0", "corrupt"}
	}
	if len(o.Workloads) == 0 {
		o.Workloads = []string{"uniform", "hotspot"}
	}
	return o
}

// faultAxis is one resolved fault scenario: registry rules armed for every
// trial, and/or physical page corruption applied before the server opens.
type faultAxis struct {
	name    string
	rules   []fault.Rule
	corrupt bool
}

func parseFaultAxis(name string) (faultAxis, error) {
	ax := faultAxis{name: name}
	switch {
	case name == "none":
	case name == "corrupt":
		ax.corrupt = true
	case strings.HasPrefix(name, "kill-disk"), strings.HasPrefix(name, "torn-disk"):
		d, err := strconv.Atoi(name[len("kill-disk"):])
		if err != nil || d < 0 {
			return ax, fmt.Errorf("campaign: fault %q: bad disk number", name)
		}
		kind := fault.KindError
		if strings.HasPrefix(name, "torn-") {
			kind = fault.KindTorn
		}
		ax.rules = []fault.Rule{{Site: fault.StoreReadDiskSite(d), Kind: kind}}
	default:
		rules, err := fault.Parse(name)
		if err != nil {
			return ax, fmt.Errorf("campaign: fault %q is neither a named axis nor a fault spec: %v", name, err)
		}
		ax.rules = rules
	}
	return ax, nil
}

// workloadAxis is one resolved query mix over the shared dataset.
type workloadAxis struct {
	name string
	opts loadgen.SynthOptions
}

func parseWorkloadAxis(name string) (workloadAxis, error) {
	switch name {
	case "uniform":
		return workloadAxis{name: name}, nil
	case "hotspot":
		return workloadAxis{name: name, opts: loadgen.SynthOptions{
			Skew: loadgen.Skew{Hot: 0.8, HotFrac: 0.1},
		}}, nil
	case "points":
		return workloadAxis{name: name, opts: loadgen.SynthOptions{
			Mix: loadgen.Mix{Point: 1},
		}}, nil
	case "scans":
		return workloadAxis{name: name, opts: loadgen.SynthOptions{
			Mix:        loadgen.Mix{Range: 1, RangeCount: 1},
			RangeRatio: 0.05,
		}}, nil
	}
	return workloadAxis{}, fmt.Errorf("campaign: unknown workload %q (uniform, hotspot, points, scans)", name)
}

// layout is one on-disk layout shared by every cell of a (scheme, replicas)
// pair, plus the pristine file bytes corruption cells restore from.
type layout struct {
	scheme   string
	replicas int
	dir      string
	manifest *store.Manifest
	pristine map[string][]byte
}

func buildLayout(root string, idx int, f *gridfile.File, g core.Grid, scheme string, r int, opts Options) (*layout, error) {
	alloc, err := core.ParseAllocator(scheme, opts.Seed, 0)
	if err != nil {
		return nil, fmt.Errorf("campaign: scheme %q: %v", scheme, err)
	}
	a, err := alloc.Decluster(g, opts.Disks)
	if err != nil {
		return nil, fmt.Errorf("campaign: decluster %s: %v", scheme, err)
	}
	dir := filepath.Join(root, fmt.Sprintf("layout%02d-r%d", idx, r))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var m *store.Manifest
	if r == 1 {
		m, err = store.Write(dir, f, a, opts.PageBytes)
	} else {
		var rm *replica.Map
		rm, err = (&replica.Placer{Replicas: r}).Place(g, a)
		if err == nil {
			m, err = store.WriteReplicated(dir, f, rm, opts.PageBytes)
		}
	}
	if err != nil {
		return nil, fmt.Errorf("campaign: layout %s r=%d: %v", scheme, r, err)
	}
	l := &layout{scheme: scheme, replicas: r, dir: dir, manifest: m,
		pristine: make(map[string][]byte, opts.Disks)}
	for d := 0; d < opts.Disks; d++ {
		name := store.DiskFileName(d)
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		l.pristine[name] = data
	}
	return l, nil
}

// restore rewrites every disk file from its pristine snapshot.
func (l *layout) restore() error {
	for name, data := range l.pristine {
		if err := os.WriteFile(filepath.Join(l.dir, name), data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// corrupt bit-flips the first page of the primary copy of three evenly
// spaced buckets — enough damage to hit several disks and schemes
// differently, fully determined by the layout.
func (l *layout) corrupt() error {
	n := len(l.manifest.Buckets)
	if n == 0 {
		return fmt.Errorf("campaign: layout %s has no buckets to corrupt", l.scheme)
	}
	seen := map[int]bool{}
	for _, i := range []int{0, n / 2, n - 1} {
		if seen[i] {
			continue
		}
		seen[i] = true
		pl := l.manifest.Buckets[i]
		fh, err := os.OpenFile(filepath.Join(l.dir, store.DiskFileName(pl.Disk)), os.O_RDWR, 0)
		if err != nil {
			return err
		}
		off := pl.Page*int64(l.manifest.PageBytes) + int64(l.manifest.PageBytes)/2
		var b [1]byte
		if _, err := fh.ReadAt(b[:], off); err != nil {
			fh.Close()
			return err
		}
		b[0] ^= 0x20
		if _, err := fh.WriteAt(b[:], off); err != nil {
			fh.Close()
			return err
		}
		if err := fh.Close(); err != nil {
			return err
		}
	}
	return nil
}

// Run executes the full matrix and returns the aggregated report. Cells are
// emitted in fixed axis order (fault, scheme, workload, replicas), so the
// report marshals identically across runs with the same options.
func Run(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	faults := make([]faultAxis, len(opts.Faults))
	for i, name := range opts.Faults {
		ax, err := parseFaultAxis(name)
		if err != nil {
			return nil, err
		}
		faults[i] = ax
	}
	workloads := make([]workloadAxis, len(opts.Workloads))
	for i, name := range opts.Workloads {
		ax, err := parseWorkloadAxis(name)
		if err != nil {
			return nil, err
		}
		workloads[i] = ax
	}
	for _, r := range opts.Replicas {
		if r < 1 || r > opts.Disks {
			return nil, fmt.Errorf("campaign: replicas %d out of range [1, %d disks]", r, opts.Disks)
		}
	}

	f, err := synth.Uniform2D(opts.Records, opts.Seed).Build()
	if err != nil {
		return nil, err
	}
	g := core.FromGridFile(f)
	root, err := os.MkdirTemp("", "campaign-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)

	type layoutKey struct {
		scheme string
		r      int
	}
	layouts := make(map[layoutKey]*layout)
	for si, scheme := range opts.Schemes {
		for _, r := range opts.Replicas {
			l, err := buildLayout(root, si, f, g, scheme, r, opts)
			if err != nil {
				return nil, err
			}
			layouts[layoutKey{scheme, r}] = l
		}
	}

	rep := &Report{
		Seed:    opts.Seed,
		Records: opts.Records,
		Disks:   opts.Disks,
		Queries: opts.Queries,
		Trials:  opts.Trials,
	}
	for _, fa := range faults {
		for _, scheme := range opts.Schemes {
			for _, wl := range workloads {
				for _, r := range opts.Replicas {
					cell, err := runCell(opts, f, layouts[layoutKey{scheme, r}], fa, wl)
					if err != nil {
						return nil, fmt.Errorf("campaign: cell %s/%s/%s/r%d: %v",
							fa.name, scheme, wl.name, r, err)
					}
					rep.Cells = append(rep.Cells, cell)
				}
			}
		}
	}
	return rep, nil
}

// runCell runs one cell's trials and sums their counters. Every trial gets
// a fresh server (fresh metrics) over the shared layout directory.
func runCell(opts Options, f *gridfile.File, l *layout, fa faultAxis, wl workloadAxis) (Cell, error) {
	cell := Cell{Fault: fa.name, Scheme: l.scheme, Workload: wl.name, Replicas: l.replicas}
	rec := loadgen.NewRecorder()
	for t := 0; t < opts.Trials; t++ {
		if err := runTrial(opts, f, l, fa, wl, t, &cell, rec); err != nil {
			return cell, err
		}
	}
	cell.P99Micros = float64(rec.Quantile(0.99).Microseconds())
	return cell, nil
}

func runTrial(opts Options, f *gridfile.File, l *layout, fa faultAxis, wl workloadAxis, trial int, cell *Cell, rec *loadgen.Recorder) error {
	if fa.corrupt {
		if err := l.corrupt(); err != nil {
			return err
		}
		// The scrubber repairs r>=2 layouts during the trial; restoring
		// pristine bytes afterwards re-baselines r=1 layouts too.
		defer func() { _ = l.restore() }()
	}
	reg := fault.NewRegistry(opts.Seed + int64(trial))
	reg.Set(fa.rules...)
	s, err := server.OpenDir(l.dir, server.Config{
		Degraded:        true,
		CacheBytes:      -1, // every query pays the full read path
		VerifyChecksums: true,
		FetchRetries:    1,
		FetchBackoff:    time.Millisecond,
		Faults:          reg,
	})
	if err != nil {
		return err
	}
	defer s.Close()
	cl, err := server.NewClient(server.ClientConfig{
		Addr:    s.Addr().String(),
		Retries: -1, // transport retries would re-run queries and skew counters
	})
	if err != nil {
		return err
	}
	defer cl.Close()

	ops := loadgen.Synthesize(f.Domain(), wl.opts, opts.Queries, opts.Seed*1000+int64(trial))
	for _, op := range ops {
		start := time.Now()
		err := runOp(cl, op)
		rec.Record(time.Since(start))
		if err != nil {
			// Degraded mode should absorb every injected fault; a surfaced
			// error is a finding, not a crash — count it and keep going.
			cell.ClientErrors++
		}
	}
	scrub, err := s.ScrubNow(context.Background())
	if err != nil {
		return fmt.Errorf("scrub: %v", err)
	}
	snap := s.Snapshot()
	cell.Queries += snap.QueriesTotal
	cell.Errors += snap.Errors
	cell.Degraded += snap.Degraded
	cell.Failover += snap.ReplicaFailover
	cell.Retries += snap.DiskRetries
	cell.FaultsFired += snap.FaultInjected
	cell.ScrubPages += scrub.Pages
	cell.ScrubCorrupt += scrub.Corrupt
	cell.ScrubRepaired += scrub.Repaired
	return nil
}

func runOp(cl *server.Client, op loadgen.Op) error {
	var err error
	switch op.Kind {
	case loadgen.OpPoint:
		_, _, err = cl.Point(op.Key)
	case loadgen.OpRange:
		_, _, err = cl.Range(op.Rect)
	case loadgen.OpRangeCount:
		_, _, err = cl.RangeCount(op.Rect)
	case loadgen.OpPartialMatch:
		_, _, err = cl.PartialMatch(op.Key)
	case loadgen.OpKNN:
		_, _, err = cl.KNN(op.Key, op.K)
	default:
		err = fmt.Errorf("campaign: unmapped op kind %v", op.Kind)
	}
	return err
}
