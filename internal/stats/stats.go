// Package stats provides the small numeric and presentation helpers shared
// by the experiment drivers: summary statistics, text histograms (for the
// Figure 5 dataset-distribution views) and fixed-width tables rendered in
// the style of the paper's tables.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation, or 0 for fewer than two
// samples.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using the
// nearest-rank method on a sorted copy; p is clamped into [0,100] and an
// empty slice yields 0. The input is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// MinMax returns the extrema, or (0,0) for an empty slice.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Histogram counts samples into equal-width bins over [lo, hi]; samples
// outside the range are clamped into the edge bins.
type Histogram struct {
	Lo, Hi float64
	Counts []int
}

// NewHistogram bins the samples. bins must be >= 1 and hi > lo.
func NewHistogram(xs []float64, lo, hi float64, bins int) *Histogram {
	if bins < 1 {
		panic(fmt.Sprintf("stats: %d bins", bins))
	}
	if hi <= lo {
		panic(fmt.Sprintf("stats: empty range [%v,%v]", lo, hi))
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
	for _, x := range xs {
		i := int(float64(bins) * (x - lo) / (hi - lo))
		if i < 0 {
			i = 0
		}
		if i >= bins {
			i = bins - 1
		}
		h.Counts[i]++
	}
	return h
}

// Render draws the histogram as rows of '#' bars, width characters wide at
// the tallest bin.
func (h *Histogram) Render(width int) string {
	max := 0
	for _, c := range h.Counts {
		if c > max {
			max = c
		}
	}
	var b strings.Builder
	step := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		bar := 0
		if max > 0 {
			bar = c * width / max
		}
		fmt.Fprintf(&b, "%10.1f |%-*s| %d\n", h.Lo+float64(i)*step, width, strings.Repeat("#", bar), c)
	}
	return b.String()
}

// Table renders fixed-width text tables in the style of the paper.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v, and float64 cells with
// two decimals.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// CSV renders the table as RFC-4180 CSV with the title as a comment line,
// for machine consumption (plotting the figures, diffing runs).
func (t *Table) CSV() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "# %s\n", t.Title)
	}
	writeCSVRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeCSVRow(t.Headers)
	for _, row := range t.rows {
		writeCSVRow(row)
	}
	return b.String()
}

// Render draws the table with columns padded to their widest cell.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
