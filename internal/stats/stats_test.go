package stats

import (
	"math"
	"strings"
	"testing"
)

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{5}); got != 0 {
		t.Errorf("StdDev single = %v", got)
	}
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("StdDev = %v, want 2", got)
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 2})
	if min != -1 || max != 7 {
		t.Errorf("MinMax = %v,%v", min, max)
	}
	min, max = MinMax(nil)
	if min != 0 || max != 0 {
		t.Errorf("MinMax(nil) = %v,%v", min, max)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0, 1, 2, 3, 9.9, -5, 100}, 0, 10, 5)
	// -5 clamps into bin 0, 100 into bin 4.
	want := []int{3, 2, 0, 0, 2}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Errorf("bin %d = %d, want %d (all: %v)", i, c, want[i], h.Counts)
		}
	}
	out := h.Render(20)
	if !strings.Contains(out, "#") {
		t.Error("render has no bars")
	}
	if lines := strings.Count(out, "\n"); lines != 5 {
		t.Errorf("render has %d lines, want 5", lines)
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(nil, 0, 1, 0) },
		func() { NewHistogram(nil, 1, 1, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			f()
		}()
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("Table X", "method", "disks", "rt")
	tb.AddRow("DM/D", 4, 1.2345)
	tb.AddRow("MiniMax", 32, 0.5)
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
	out := tb.Render()
	if !strings.Contains(out, "Table X") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "1.23") {
		t.Error("float not formatted to two decimals")
	}
	if !strings.Contains(out, "MiniMax") {
		t.Error("row missing")
	}
	// Header columns aligned: "method" column width fits "MiniMax".
	lines := strings.Split(out, "\n")
	if len(lines) < 5 {
		t.Fatalf("too few lines: %q", out)
	}
	header := lines[1]
	if !strings.HasPrefix(header, "method ") {
		t.Errorf("header = %q", header)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("My, \"quoted\" title", "a", "b")
	tb.AddRow("plain", 1)
	tb.AddRow("needs,quoting", 2.5)
	tb.AddRow(`has "quotes"`, 3)
	out := tb.CSV()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("%d lines: %q", len(lines), out)
	}
	if lines[0] != `# My, "quoted" title` {
		t.Errorf("title line = %q", lines[0])
	}
	if lines[1] != "a,b" {
		t.Errorf("header = %q", lines[1])
	}
	if lines[3] != `"needs,quoting",2.50` {
		t.Errorf("quoted row = %q", lines[3])
	}
	if lines[4] != `"has ""quotes""",3` {
		t.Errorf("escaped row = %q", lines[4])
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{9, 1, 7, 3, 5} // unsorted on purpose; must not be mutated
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := Percentile(xs, 50); got != 5 {
		t.Errorf("p50 = %v", got)
	}
	if got := Percentile(xs, 100); got != 9 {
		t.Errorf("p100 = %v", got)
	}
	if got := Percentile(xs, 150); got != 9 {
		t.Errorf("clamped p150 = %v", got)
	}
	if xs[0] != 9 {
		t.Error("Percentile mutated its input")
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty p50 = %v", got)
	}
}
