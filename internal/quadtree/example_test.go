package quadtree_test

import (
	"fmt"

	"pgridfile/internal/geom"
	"pgridfile/internal/quadtree"
)

// ExampleTree builds a small quadtree and shows the adaptive decomposition:
// a cluster forces deep splits near it while empty space stays coarse.
func ExampleTree() {
	tr, err := quadtree.New(quadtree.Config{
		Dims:         2,
		Domain:       geom.NewRect([]float64{0, 0}, []float64{100, 100}),
		LeafCapacity: 4,
	})
	if err != nil {
		panic(err)
	}
	// A tight cluster plus a few scattered points.
	cluster := []geom.Point{{10, 10}, {11, 10}, {10, 11}, {11, 11}, {12, 12}, {10, 12}}
	scattered := []geom.Point{{80, 80}, {90, 20}, {20, 90}}
	for _, p := range append(cluster, scattered...) {
		if err := tr.Insert(p); err != nil {
			panic(err)
		}
	}
	fmt.Printf("points: %d, non-empty leaves: %d, depth: %d\n",
		tr.Len(), tr.NonEmptyLeaves(), tr.Depth())
	q := geom.NewRect([]float64{0, 0}, []float64{15, 15})
	fmt.Printf("range [0,15]^2: %d points\n", tr.RangeCount(q))
	// Output:
	// points: 9, non-empty leaves: 7, depth: 6
	// range [0,15]^2: 6 points
}
