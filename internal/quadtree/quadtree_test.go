package quadtree

import (
	"math/rand"
	"testing"

	"pgridfile/internal/core"
	"pgridfile/internal/geom"
	"pgridfile/internal/sim"
	"pgridfile/internal/synth"
	"pgridfile/internal/workload"
)

func newTree(t *testing.T, dims, capacity int) *Tree {
	t.Helper()
	lo := make([]float64, dims)
	hi := make([]float64, dims)
	for i := range hi {
		hi[i] = 2000
	}
	tr, err := New(Config{Dims: dims, Domain: geom.NewRect(lo, hi), LeafCapacity: capacity})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func insertRandom(t *testing.T, tr *Tree, n int, seed int64) []geom.Point {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, 0, n)
	for i := 0; i < n; i++ {
		p := make(geom.Point, tr.Dims())
		for d := range p {
			p[d] = rng.Float64() * 2000
		}
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
		pts = append(pts, p)
	}
	return pts
}

func TestNewValidation(t *testing.T) {
	dom := geom.NewRect([]float64{0, 0}, []float64{1, 1})
	cases := []Config{
		{Dims: 0, Domain: dom, LeafCapacity: 4},
		{Dims: 7, Domain: dom, LeafCapacity: 4},
		{Dims: 2, Domain: geom.NewRect([]float64{0}, []float64{1}), LeafCapacity: 4},
		{Dims: 2, Domain: dom, LeafCapacity: 1},
		{Dims: 2, Domain: geom.NewRect([]float64{0, 5}, []float64{1, 5}), LeafCapacity: 4},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestInsertValidation(t *testing.T) {
	tr := newTree(t, 2, 4)
	if err := tr.Insert(geom.Point{1}); err == nil {
		t.Error("wrong dims accepted")
	}
	if err := tr.Insert(geom.Point{-5, 10}); err == nil {
		t.Error("out of domain accepted")
	}
	if tr.Len() != 0 {
		t.Error("failed inserts counted")
	}
}

func TestCapacityRespected(t *testing.T) {
	for _, dims := range []int{1, 2, 3} {
		tr := newTree(t, dims, 8)
		insertRandom(t, tr, 2000, int64(dims))
		if tr.Len() != 2000 {
			t.Fatalf("Len = %d", tr.Len())
		}
		total := 0
		for _, v := range tr.Leaves() {
			if v.Records > 8 {
				t.Fatalf("dims=%d: leaf %d holds %d points", dims, v.ID, v.Records)
			}
			total += v.Records
		}
		if total != 2000 {
			t.Fatalf("dims=%d: leaves hold %d points", dims, total)
		}
	}
}

func TestRangeMatchesBruteForce(t *testing.T) {
	tr := newTree(t, 2, 6)
	pts := insertRandom(t, tr, 2500, 7)
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 60; trial++ {
		q := make(geom.Rect, 2)
		for d := range q {
			a := rng.Float64() * 2000
			b := a + rng.Float64()*700
			q[d] = geom.Interval{Lo: a, Hi: b}
		}
		want := 0
		for _, p := range pts {
			if q.ContainsPoint(p) {
				want++
			}
		}
		if got := tr.RangeCount(q); got != want {
			t.Fatalf("trial %d: RangeCount = %d, want %d", trial, got, want)
		}
	}
}

func TestBucketsInRangeConsistent(t *testing.T) {
	tr := newTree(t, 2, 6)
	insertRandom(t, tr, 1000, 9)
	full := tr.Domain()
	ids := tr.BucketsInRange(full)
	if len(ids) != tr.NonEmptyLeaves() {
		t.Fatalf("full scan hit %d leaves, tree has %d non-empty", len(ids), tr.NonEmptyLeaves())
	}
	// Ids translate through IndexByID onto the dense Leaves order.
	table := tr.IndexByID()
	views := tr.Leaves()
	for _, id := range ids {
		dense := table[id]
		if dense < 0 || dense >= len(views) {
			t.Fatalf("id %d maps to %d", id, dense)
		}
		if views[dense].ID != id {
			t.Fatalf("view %d has ID %d, want %d", dense, views[dense].ID, id)
		}
	}
	if tr.BucketsInRange(geom.Rect{{Lo: 0, Hi: 1}}) != nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestDuplicatePointsDepthGuard(t *testing.T) {
	tr := newTree(t, 2, 2)
	p := geom.Point{123.456, 789.123}
	for i := 0; i < 100; i++ {
		if err := tr.Insert(p.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 100 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Depth() > maxDepth {
		t.Fatalf("depth %d exceeds guard", tr.Depth())
	}
	q := geom.Rect{{Lo: 123, Hi: 124}, {Lo: 789, Hi: 790}}
	if got := tr.RangeCount(q); got != 100 {
		t.Fatalf("RangeCount = %d", got)
	}
}

func TestDeclusterQuadtreeLeaves(t *testing.T) {
	// The declustering ranking carries over to quadtree leaves.
	ds := synth.Hotspot2D(6000, 11)
	tr, err := New(Config{Dims: 2, Domain: ds.Domain, LeafCapacity: ds.BucketCapacity()})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range ds.Records {
		if err := tr.Insert(r.Key); err != nil {
			t.Fatal(err)
		}
	}
	g := core.Grid{Sizes: []int{1, 1}, Domain: tr.Domain(), Buckets: tr.Leaves()}
	const disks = 16
	mm, err := (&core.Minimax{Seed: 1}).Decluster(g, disks)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := (&core.CentroidCurve{}).Decluster(g, disks)
	if err != nil {
		t.Fatal(err)
	}
	nn := sim.NearestCompanions(g, nil)
	if mmP, ccP := sim.CountSameDisk(nn, mm), sim.CountSameDisk(nn, cc); mmP > ccP {
		t.Errorf("minimax closest pairs %d above centroid-curve %d", mmP, ccP)
	}
	queries := workload.SquareRange(tr.Domain(), 0.05, 300, 13)
	rMM, err := sim.ReplaySource(tr, mm, tr.IndexByID(), queries)
	if err != nil {
		t.Fatal(err)
	}
	rCC, err := sim.ReplaySource(tr, cc, tr.IndexByID(), queries)
	if err != nil {
		t.Fatal(err)
	}
	if rMM.MeanResponseTime > rCC.MeanResponseTime*1.1 {
		t.Errorf("minimax response %.3f clearly above centroid-curve %.3f",
			rMM.MeanResponseTime, rCC.MeanResponseTime)
	}
}

func TestLeafRegionsDisjointAndCovering(t *testing.T) {
	tr := newTree(t, 2, 5)
	insertRandom(t, tr, 800, 17)
	views := tr.Leaves()
	// Volumes of ALL leaves (including empty) must sum to the domain.
	var vol float64
	for _, l := range tr.leaves() {
		vol += l.region.Volume()
	}
	domVol := tr.Domain().Volume()
	if diff := vol - domVol; diff > 1e-6*domVol || diff < -1e-6*domVol {
		t.Errorf("leaf volumes sum to %.1f, domain %.1f", vol, domVol)
	}
	// Non-empty leaf regions must not properly overlap (they may touch).
	for i := 0; i < len(views); i++ {
		for j := i + 1; j < len(views); j++ {
			a, b := views[i].Region, views[j].Region
			overlap := 1.0
			for d := range a {
				overlap *= a[d].Overlap(b[d])
			}
			if overlap > 1e-9 {
				t.Fatalf("leaves %d and %d properly overlap", views[i].ID, views[j].ID)
			}
		}
	}
}
