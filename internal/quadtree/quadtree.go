// Package quadtree implements a point-region quadtree generalized to d
// dimensions (2^d-way recursive decomposition — an octree in 3-D), the
// second tree-based structure class the paper's introduction cites (Finkel
// and Bentley's quad-trees). Leaf cells are the unit of declustering; like
// grid-file buckets they partition the space into disjoint boxes, but the
// decomposition is recursive and locally adaptive rather than driven by
// global linear scales.
//
// The tree supports incremental insertion, range queries, and exposes its
// leaves as BucketViews so the proximity-based declustering algorithms and
// the centroid-curve allocator apply unchanged.
package quadtree

import (
	"fmt"
	"sort"

	"pgridfile/internal/geom"
	"pgridfile/internal/gridfile"
)

// maxDepth bounds the recursion; cells at this depth are allowed to
// overflow (duplicate-heavy data), mirroring the grid file's minimum cell
// width guard.
const maxDepth = 32

// Tree is a d-dimensional PR quadtree.
type Tree struct {
	dims     int
	domain   geom.Rect
	capacity int
	root     *node
	count    int

	leavesDirty bool
	leafCache   []*node
}

type node struct {
	region   geom.Rect
	depth    int
	children []*node   // nil for leaves; else 2^dims entries
	keys     []float64 // leaf only
}

// Config describes a new tree.
type Config struct {
	// Dims is the key dimensionality (1..6; the fan-out is 2^Dims).
	Dims int
	// Domain is the covered space; keys outside it are rejected.
	Domain geom.Rect
	// LeafCapacity is the split threshold (>= 2).
	LeafCapacity int
}

// New creates an empty tree.
func New(cfg Config) (*Tree, error) {
	if cfg.Dims < 1 || cfg.Dims > 6 {
		return nil, fmt.Errorf("quadtree: Dims %d outside 1..6", cfg.Dims)
	}
	if len(cfg.Domain) != cfg.Dims {
		return nil, fmt.Errorf("quadtree: domain has %d dims, want %d", len(cfg.Domain), cfg.Dims)
	}
	for d, iv := range cfg.Domain {
		if iv.Length() <= 0 {
			return nil, fmt.Errorf("quadtree: domain dim %d empty", d)
		}
	}
	if cfg.LeafCapacity < 2 {
		return nil, fmt.Errorf("quadtree: LeafCapacity %d < 2", cfg.LeafCapacity)
	}
	return &Tree{
		dims:        cfg.Dims,
		domain:      cfg.Domain.Clone(),
		capacity:    cfg.LeafCapacity,
		root:        &node{region: cfg.Domain.Clone()},
		leavesDirty: true,
	}, nil
}

// Dims returns the dimensionality.
func (t *Tree) Dims() int { return t.dims }

// Domain returns the covered space.
func (t *Tree) Domain() geom.Rect { return t.domain.Clone() }

// Len returns the number of points stored.
func (t *Tree) Len() int { return t.count }

// Insert adds one point.
func (t *Tree) Insert(p geom.Point) error {
	if len(p) != t.dims {
		return fmt.Errorf("quadtree: point has %d dims, want %d", len(p), t.dims)
	}
	if !t.domain.ContainsPoint(p) {
		return fmt.Errorf("quadtree: point %v outside domain %v", p, t.domain)
	}
	n := t.root
	for n.children != nil {
		n = n.children[t.childIndex(n, p)]
	}
	n.keys = append(n.keys, p...)
	t.count++
	t.leavesDirty = true
	if len(n.keys)/t.dims > t.capacity && n.depth < maxDepth {
		t.split(n)
	}
	return nil
}

// InsertAll adds a batch, stopping at the first error.
func (t *Tree) InsertAll(pts []geom.Point) error {
	for _, p := range pts {
		if err := t.Insert(p); err != nil {
			return err
		}
	}
	return nil
}

// childIndex returns which of the 2^dims children of n contains p: bit d of
// the index is set when p lies in the upper half along dimension d.
func (t *Tree) childIndex(n *node, p geom.Point) int {
	idx := 0
	for d := 0; d < t.dims; d++ {
		mid := (n.region[d].Lo + n.region[d].Hi) / 2
		if p[d] >= mid {
			idx |= 1 << d
		}
	}
	return idx
}

// split turns a leaf into an internal node with 2^dims children and
// redistributes its points. Children that still overflow split recursively.
func (t *Tree) split(n *node) {
	nChildren := 1 << t.dims
	n.children = make([]*node, nChildren)
	for c := 0; c < nChildren; c++ {
		region := make(geom.Rect, t.dims)
		for d := 0; d < t.dims; d++ {
			mid := (n.region[d].Lo + n.region[d].Hi) / 2
			if c&(1<<d) != 0 {
				region[d] = geom.Interval{Lo: mid, Hi: n.region[d].Hi}
			} else {
				region[d] = geom.Interval{Lo: n.region[d].Lo, Hi: mid}
			}
		}
		n.children[c] = &node{region: region, depth: n.depth + 1}
	}
	keys := n.keys
	n.keys = nil
	for i := 0; i+t.dims <= len(keys); i += t.dims {
		p := geom.Point(keys[i : i+t.dims])
		child := n.children[t.childIndex(n, p)]
		child.keys = append(child.keys, p...)
	}
	for _, c := range n.children {
		if len(c.keys)/t.dims > t.capacity && c.depth < maxDepth {
			t.split(c)
		}
	}
}

// leaves returns the leaf nodes in a stable depth-first order, rebuilding
// the cache after mutations. Leaf ids are positions in this order.
func (t *Tree) leaves() []*node {
	if !t.leavesDirty {
		return t.leafCache
	}
	t.leafCache = t.leafCache[:0]
	var walk func(n *node)
	walk = func(n *node) {
		if n.children == nil {
			t.leafCache = append(t.leafCache, n)
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	t.leavesDirty = false
	return t.leafCache
}

// NumLeaves returns the number of leaf cells (including empty ones created
// by splits; empty cells cost no I/O but still occupy directory entries).
func (t *Tree) NumLeaves() int { return len(t.leaves()) }

// NonEmptyLeaves returns how many leaves hold at least one point.
func (t *Tree) NonEmptyLeaves() int {
	n := 0
	for _, l := range t.leaves() {
		if len(l.keys) > 0 {
			n++
		}
	}
	return n
}

// BucketsInRange returns the ids of the non-empty leaves intersecting q, in
// ascending order (empty leaves need no fetch). It satisfies sim.Source.
func (t *Tree) BucketsInRange(q geom.Rect) []int32 {
	if len(q) != t.dims {
		return nil
	}
	ls := t.leaves()
	idOf := make(map[*node]int32, len(ls))
	for i, l := range ls {
		idOf[l] = int32(i)
	}
	var ids []int32
	var walk func(n *node)
	walk = func(n *node) {
		if !n.region.Intersects(q) {
			return
		}
		if n.children == nil {
			if len(n.keys) > 0 {
				ids = append(ids, idOf[n])
			}
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// RangeCount returns the number of points inside the closed box q.
func (t *Tree) RangeCount(q geom.Rect) int {
	if len(q) != t.dims {
		return 0
	}
	count := 0
	var walk func(n *node)
	walk = func(n *node) {
		if !n.region.Intersects(q) {
			return
		}
		if n.children == nil {
			for i := 0; i+t.dims <= len(n.keys); i += t.dims {
				inside := true
				for d := 0; d < t.dims; d++ {
					v := n.keys[i+d]
					if v < q[d].Lo || v > q[d].Hi {
						inside = false
						break
					}
				}
				if inside {
					count++
				}
			}
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return count
}

// Leaves returns the declustering view of the non-empty leaf cells. Ids
// match BucketsInRange; Index runs dense over the returned slice, with
// IndexByID translating ids.
func (t *Tree) Leaves() []gridfile.BucketView {
	var views []gridfile.BucketView
	for id, l := range t.leaves() {
		if len(l.keys) == 0 {
			continue
		}
		views = append(views, gridfile.BucketView{
			Index:   len(views),
			ID:      int32(id),
			CellLo:  make([]int32, t.dims),
			CellHi:  make([]int32, t.dims),
			Region:  l.region.Clone(),
			Records: len(l.keys) / t.dims,
		})
	}
	return views
}

// IndexByID maps leaf ids (positions in the full leaf order) to dense
// indices in Leaves(); empty leaves map to -1.
func (t *Tree) IndexByID() []int {
	ls := t.leaves()
	out := make([]int, len(ls))
	next := 0
	for i, l := range ls {
		if len(l.keys) == 0 {
			out[i] = -1
			continue
		}
		out[i] = next
		next++
	}
	return out
}

// Depth returns the maximum leaf depth (root = 0).
func (t *Tree) Depth() int {
	max := 0
	var walk func(n *node)
	walk = func(n *node) {
		if n.children == nil {
			if n.depth > max {
				max = n.depth
			}
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return max
}
