package diskmodel

import (
	"testing"
	"time"
)

func testParams(cacheBlocks int) Params {
	return Params{
		SeekRotate:      10 * time.Millisecond,
		TransferPerByte: time.Microsecond, // 1 byte/µs for easy arithmetic
		BlockBytes:      100,
		CacheBlocks:     cacheBlocks,
		CacheHit:        time.Millisecond,
	}
}

func TestMissCost(t *testing.T) {
	p := testParams(0)
	want := 10*time.Millisecond + 100*time.Microsecond
	if got := p.MissCost(); got != want {
		t.Errorf("MissCost = %v, want %v", got, want)
	}
}

func TestReadWithoutCache(t *testing.T) {
	d := New(testParams(0))
	for i := 0; i < 3; i++ {
		cost, hit := d.Read(7)
		if hit {
			t.Fatal("cache hit with caching disabled")
		}
		if cost != d.Params().MissCost() {
			t.Fatalf("cost = %v", cost)
		}
	}
	st := d.Stats()
	if st.Reads != 3 || st.Hits != 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.BusyTime != 3*d.Params().MissCost() {
		t.Errorf("BusyTime = %v", st.BusyTime)
	}
}

func TestCacheHitsAndEviction(t *testing.T) {
	d := New(testParams(2))
	d.Read(1) // miss
	d.Read(2) // miss
	if _, hit := d.Read(1); !hit {
		t.Fatal("expected hit on re-read")
	}
	d.Read(3) // miss; evicts 2 (1 was just touched)
	if _, hit := d.Read(2); hit {
		t.Fatal("expected 2 to be evicted")
	}
	if _, hit := d.Read(1); hit {
		t.Fatal("expected 1 to be evicted after 2's reload")
	}
	st := d.Stats()
	if st.Reads != 6 || st.Hits != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLRUOrderingExact(t *testing.T) {
	d := New(testParams(3))
	// Fill 1,2,3; touch 1; insert 4 -> evicts 2.
	d.Read(1)
	d.Read(2)
	d.Read(3)
	d.Read(1)
	d.Read(4)
	if _, hit := d.Read(3); !hit {
		t.Error("3 should be cached")
	}
	if _, hit := d.Read(1); !hit {
		t.Error("1 should be cached")
	}
	if _, hit := d.Read(2); hit {
		t.Error("2 should have been evicted")
	}
}

func TestReadAll(t *testing.T) {
	d := New(testParams(10))
	total, hits := d.ReadAll([]int64{1, 2, 1, 3, 2})
	if hits != 2 {
		t.Errorf("hits = %d, want 2", hits)
	}
	want := 3*d.Params().MissCost() + 2*time.Millisecond
	if total != want {
		t.Errorf("total = %v, want %v", total, want)
	}
}

func TestDropCacheAndResetStats(t *testing.T) {
	d := New(testParams(4))
	d.Read(1)
	d.Read(1)
	d.DropCache()
	if _, hit := d.Read(1); hit {
		t.Error("hit after DropCache")
	}
	d.ResetStats()
	if st := d.Stats(); st.Reads != 0 || st.BusyTime != 0 {
		t.Errorf("stats after reset = %+v", st)
	}
}

func TestHitRate(t *testing.T) {
	if (Stats{}).HitRate() != 0 {
		t.Error("empty hit rate nonzero")
	}
	s := Stats{Reads: 4, Hits: 1}
	if s.HitRate() != 0.25 {
		t.Errorf("HitRate = %v", s.HitRate())
	}
}

func TestNewPanicsOnBadBlockSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(Params{BlockBytes: 0})
}

func TestDefaultParamsSane(t *testing.T) {
	p := DefaultParams()
	if p.MissCost() <= p.CacheHit {
		t.Error("miss not costlier than hit")
	}
	if p.CacheBlocks <= 0 {
		t.Error("default cache disabled")
	}
}

func TestSequentialReads(t *testing.T) {
	p := testParams(0)
	p.SequentialReads = true
	d := New(p)
	transferOnly := 100 * time.Microsecond // 100 bytes at 1 byte/µs
	full := p.MissCost()

	if cost, _ := d.Read(10); cost != full {
		t.Errorf("first read cost %v, want full %v", cost, full)
	}
	if cost, _ := d.Read(11); cost != transferOnly {
		t.Errorf("sequential read cost %v, want transfer-only %v", cost, transferOnly)
	}
	if cost, _ := d.Read(13); cost != full {
		t.Errorf("skipping read cost %v, want full %v", cost, full)
	}
	if cost, _ := d.Read(12); cost != full {
		t.Errorf("backward read cost %v, want full %v", cost, full)
	}
	if got := d.SeqHits(); got != 1 {
		t.Errorf("SeqHits = %d, want 1", got)
	}
}

func TestSequentialReadsDisabledByDefault(t *testing.T) {
	d := New(testParams(0))
	d.Read(10)
	if cost, _ := d.Read(11); cost != d.Params().MissCost() {
		t.Errorf("sequential optimization active without opt-in: %v", cost)
	}
	if d.SeqHits() != 0 {
		t.Error("SeqHits counted without opt-in")
	}
}

func TestCacheHitDoesNotMoveHead(t *testing.T) {
	p := testParams(4)
	p.SequentialReads = true
	d := New(p)
	d.Read(10) // miss, head -> 11
	d.Read(10) // cache hit, head must stay 11
	if cost, hit := d.Read(11); hit || cost != 100*time.Microsecond {
		t.Errorf("read after cache hit: cost %v hit %v, want sequential transfer-only", cost, hit)
	}
}
