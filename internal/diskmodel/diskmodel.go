// Package diskmodel simulates the per-node storage of the shared-nothing
// experiments (Section 3.5): a disk with a fixed random-access cost and
// transfer rate, fronted by an LRU block cache. Simulated time is
// deterministic, so the SP-2 tables are reproducible on any host; the
// default parameters are calibrated to mid-1990s SCSI disks (the SP-2's
// hardware class), but the experiments' conclusions depend only on ratios.
package diskmodel

import (
	"container/list"
	"fmt"
	"time"
)

// Params describes one disk.
type Params struct {
	// SeekRotate is the average positioning cost of a random block access.
	SeekRotate time.Duration
	// TransferPerByte is the sequential transfer cost per byte.
	TransferPerByte time.Duration
	// BlockBytes is the block (bucket/page) size.
	BlockBytes int
	// CacheBlocks is the LRU capacity in blocks; 0 disables caching.
	CacheBlocks int
	// CacheHit is the cost of serving a block from the cache.
	CacheHit time.Duration
	// SequentialReads, when true, models elevator scheduling: a read of
	// the block immediately following the previous uncached read skips
	// the positioning cost and pays transfer only. Worker batches arrive
	// in ascending block order, so layouts that place consecutively
	// accessed buckets at consecutive ids benefit.
	SequentialReads bool
}

// DefaultParams models a mid-1990s SCSI disk with an 8 KB page and a modest
// buffer cache: ~10 ms positioning, 4 MB/s transfer, 0.2 ms cached access.
func DefaultParams() Params {
	return Params{
		SeekRotate:      10 * time.Millisecond,
		TransferPerByte: time.Second / (4 << 20),
		BlockBytes:      8192,
		CacheBlocks:     512,
		CacheHit:        200 * time.Microsecond,
	}
}

// MissCost returns the simulated cost of one uncached block read.
func (p Params) MissCost() time.Duration {
	return p.SeekRotate + time.Duration(p.BlockBytes)*p.TransferPerByte
}

// Stats accumulates disk activity.
type Stats struct {
	Reads    int           // total block reads
	Hits     int           // reads served from cache
	SeqReads int           // uncached reads served without positioning
	BusyTime time.Duration // total simulated service time
}

// HitRate returns the fraction of reads served from cache.
func (s Stats) HitRate() float64 {
	if s.Reads == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Reads)
}

// Disk is a simulated disk with an LRU cache. Not safe for concurrent use;
// in the parallel engine each worker owns one disk.
type Disk struct {
	params Params
	stats  Stats
	lru    *list.List // front = most recent; values are int64 block ids
	index  map[int64]*list.Element
	head   int64 // block after the last uncached read (elevator position)
}

// New creates a disk. It panics on non-positive block size, which is always
// a configuration error.
func New(p Params) *Disk {
	if p.BlockBytes <= 0 {
		panic(fmt.Sprintf("diskmodel: BlockBytes = %d", p.BlockBytes))
	}
	d := &Disk{params: p, head: -1}
	if p.CacheBlocks > 0 {
		d.lru = list.New()
		d.index = make(map[int64]*list.Element, p.CacheBlocks)
	}
	return d
}

// SeqHits returns how many reads were served sequentially (transfer-only).
func (d *Disk) SeqHits() int { return d.stats.SeqReads }

// Params returns the disk's configuration.
func (d *Disk) Params() Params { return d.params }

// Stats returns the accumulated statistics.
func (d *Disk) Stats() Stats { return d.stats }

// ResetStats clears the statistics but keeps the cache contents.
func (d *Disk) ResetStats() { d.stats = Stats{} }

// DropCache empties the cache (cold start between experiments).
func (d *Disk) DropCache() {
	if d.lru == nil {
		return
	}
	d.lru.Init()
	for k := range d.index {
		delete(d.index, k)
	}
}

// Read simulates fetching one block and returns its simulated service time
// and whether it was a cache hit.
func (d *Disk) Read(block int64) (time.Duration, bool) {
	d.stats.Reads++
	if d.lru != nil {
		if el, ok := d.index[block]; ok {
			d.lru.MoveToFront(el)
			d.stats.Hits++
			d.stats.BusyTime += d.params.CacheHit
			return d.params.CacheHit, true
		}
	}
	cost := d.params.MissCost()
	if d.params.SequentialReads && block == d.head {
		cost = time.Duration(d.params.BlockBytes) * d.params.TransferPerByte
		d.stats.SeqReads++
	}
	d.head = block + 1
	d.stats.BusyTime += cost
	if d.lru != nil {
		d.index[block] = d.lru.PushFront(block)
		if d.lru.Len() > d.params.CacheBlocks {
			oldest := d.lru.Back()
			d.lru.Remove(oldest)
			delete(d.index, oldest.Value.(int64))
		}
	}
	return cost, false
}

// ReadAll simulates fetching a batch of blocks sequentially, returning the
// total service time and the number of cache hits.
func (d *Disk) ReadAll(blocks []int64) (time.Duration, int) {
	var total time.Duration
	hits := 0
	for _, b := range blocks {
		t, hit := d.Read(b)
		total += t
		if hit {
			hits++
		}
	}
	return total, hits
}
