package diskmodel_test

import (
	"fmt"

	"pgridfile/internal/diskmodel"
)

// ExampleDisk shows the simulated disk's cost structure: a cold read pays
// positioning + transfer, a cached re-read pays the buffer-cache cost, and
// with elevator scheduling the block after the last one read pays transfer
// only.
func ExampleDisk() {
	p := diskmodel.DefaultParams()
	p.SequentialReads = true
	d := diskmodel.New(p)

	cold, hit1 := d.Read(100)
	cached, hit2 := d.Read(100)
	sequential, hit3 := d.Read(101)

	fmt.Printf("cold:       %8v (cache hit: %v)\n", cold, hit1)
	fmt.Printf("cached:     %8v (cache hit: %v)\n", cached, hit2)
	fmt.Printf("sequential: %8v (cache hit: %v)\n", sequential, hit3)
	// Output:
	// cold:       11.949696ms (cache hit: false)
	// cached:        200µs (cache hit: true)
	// sequential: 1.949696ms (cache hit: false)
}
