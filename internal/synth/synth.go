// Package synth generates the datasets of the paper's evaluation. The three
// 2-D synthetic datasets (uniform.2d, hot.2d, correl.2d) follow the paper's
// construction exactly. The two "real" datasets (DSMC.3d, stock.3d) and the
// 4-D SP-2 dataset are synthetic substitutes that preserve the spatial
// density structure the paper describes; see DESIGN.md §4 for the
// substitution rationale.
//
// All generators are deterministic given the seed. Bucket capacities are
// chosen so that record size × capacity equals the paper's page size and the
// resulting grid files have bucket counts in the same regime as the paper's
// (e.g. ~250 buckets for the 2-D datasets, ~450 for DSMC.3d, ~1200 for
// stock.3d).
package synth

import (
	"fmt"
	"math"
	"math/rand"

	"pgridfile/internal/geom"
	"pgridfile/internal/gridfile"
)

// Dataset is a generated point set plus the grid-file parameters used to
// load it.
type Dataset struct {
	Name string
	// Domain is the data domain the grid file is configured with.
	Domain geom.Rect
	// Records holds the generated points.
	Records []gridfile.Record
	// PageBytes and RecordBytes determine the bucket capacity
	// (PageBytes / RecordBytes), mirroring the paper's 4 KB (2-D/3-D) and
	// 8 KB (4-D) pages.
	PageBytes   int
	RecordBytes int
}

// BucketCapacity returns the per-bucket record limit implied by the page and
// record sizes.
func (d *Dataset) BucketCapacity() int {
	return d.PageBytes / d.RecordBytes
}

// Build loads the dataset into a fresh grid file.
func (d *Dataset) Build() (*gridfile.File, error) {
	f, err := gridfile.New(gridfile.Config{
		Dims:           d.Domain.Dim(),
		Domain:         d.Domain,
		BucketCapacity: d.BucketCapacity(),
	})
	if err != nil {
		return nil, fmt.Errorf("synth: building %s: %w", d.Name, err)
	}
	if err := f.InsertAll(d.Records); err != nil {
		return nil, fmt.Errorf("synth: loading %s: %w", d.Name, err)
	}
	return f, nil
}

func domain2D() geom.Rect {
	return geom.NewRect([]float64{0, 0}, []float64{2000, 2000})
}

// clampPoint clips a point into the domain (generators occasionally sample
// normal tails outside it).
func clampPoint(p geom.Point, dom geom.Rect) geom.Point {
	for d := range p {
		if p[d] < dom[d].Lo {
			p[d] = dom[d].Lo
		}
		if p[d] > dom[d].Hi {
			p[d] = dom[d].Hi
		}
	}
	return p
}

// Uniform2D generates the paper's uniform.2d: n points uniformly distributed
// over [0,2000]². The paper uses n = 10000.
func Uniform2D(n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	dom := domain2D()
	recs := make([]gridfile.Record, n)
	for i := range recs {
		recs[i] = gridfile.Record{Key: geom.Point{
			rng.Float64() * 2000,
			rng.Float64() * 2000,
		}}
	}
	return &Dataset{
		Name: "uniform.2d", Domain: dom, Records: recs,
		PageBytes: 4096, RecordBytes: 72,
	}
}

// Hotspot2D generates the paper's hot.2d: n/2 uniformly distributed points
// overlaid with n/2 normally distributed points centred on the middle of the
// domain, producing a central hot spot.
func Hotspot2D(n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	dom := domain2D()
	recs := make([]gridfile.Record, 0, n)
	for i := 0; i < n/2; i++ {
		recs = append(recs, gridfile.Record{Key: geom.Point{
			rng.Float64() * 2000,
			rng.Float64() * 2000,
		}})
	}
	const sigma = 250
	for len(recs) < n {
		p := geom.Point{
			1000 + rng.NormFloat64()*sigma,
			1000 + rng.NormFloat64()*sigma,
		}
		recs = append(recs, gridfile.Record{Key: clampPoint(p, dom)})
	}
	return &Dataset{
		Name: "hot.2d", Domain: dom, Records: recs,
		PageBytes: 4096, RecordBytes: 72,
	}
}

// Correl2D generates the paper's correl.2d: n points normally distributed
// around the diagonal y = x, modelling functionally dependent attributes
// such as temperature and pressure.
func Correl2D(n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	dom := domain2D()
	const sigma = 120
	recs := make([]gridfile.Record, 0, n)
	for len(recs) < n {
		t := rng.Float64() * 2000
		off := rng.NormFloat64() * sigma
		// Offset perpendicular to the diagonal.
		p := geom.Point{t - off/math.Sqrt2, t + off/math.Sqrt2}
		recs = append(recs, gridfile.Record{Key: clampPoint(p, dom)})
	}
	return &Dataset{
		Name: "correl.2d", Domain: dom, Records: recs,
		PageBytes: 4096, RecordBytes: 72,
	}
}

// DSMC3D generates the substitute for the paper's DSMC.3d snapshot: n
// particle positions in a 3-D volume combining (a) a uniform background gas,
// (b) a density gradient along x (upstream flow compression), and (c) two
// Gaussian blobs modelling the high-density interaction region around the
// simulated object. The paper's dataset has 52857 particles; its
// distinguishing property versus hot.2d is a higher fraction of
// near-uniformly distributed records.
func DSMC3D(n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	dom := geom.NewRect([]float64{0, 0, 0}, []float64{2000, 2000, 2000})
	recs := make([]gridfile.Record, 0, n)

	nUniform := n * 55 / 100
	nGradient := n * 25 / 100
	for i := 0; i < nUniform; i++ {
		recs = append(recs, gridfile.Record{Key: geom.Point{
			rng.Float64() * 2000, rng.Float64() * 2000, rng.Float64() * 2000,
		}})
	}
	// Density gradient: x drawn with linearly increasing density toward the
	// high-pressure side (inverse-CDF of f(x) ∝ x).
	for i := 0; i < nGradient; i++ {
		x := 2000 * math.Sqrt(rng.Float64())
		recs = append(recs, gridfile.Record{Key: geom.Point{
			x, rng.Float64() * 2000, rng.Float64() * 2000,
		}})
	}
	// Interaction-region blobs.
	blobs := []struct {
		cx, cy, cz, sigma float64
	}{
		{1500, 1000, 1000, 180},
		{1200, 800, 1200, 260},
	}
	for len(recs) < n {
		b := blobs[rng.Intn(len(blobs))]
		p := geom.Point{
			b.cx + rng.NormFloat64()*b.sigma,
			b.cy + rng.NormFloat64()*b.sigma,
			b.cz + rng.NormFloat64()*b.sigma,
		}
		recs = append(recs, gridfile.Record{Key: clampPoint(p, dom)})
	}
	return &Dataset{
		Name: "DSMC.3d", Domain: dom, Records: recs,
		PageBytes: 4096, RecordBytes: 24,
	}
}

// DSMC3DSize is the paper's DSMC.3d record count.
const DSMC3DSize = 52857

// Stock3DStocks is the paper's number of distinct stocks.
const Stock3DStocks = 383

// Stock3DDays is the approximate number of trading days between 08/30/93 and
// 09/15/95 (the paper's quote span; 383 stocks × ~331 days ≈ 127k records).
const Stock3DDays = 332

// Stock3D generates the substitute for the paper's stock.3d dataset:
// (stock id, closing price, day) triples for nStocks stocks over nDays
// trading days. Each stock follows its own geometric random walk around a
// stock-specific base price, so the id×price slice consists of one hot spot
// per stock (the paper's key structural observation) while the date×id and
// date×price slices are close to uniform.
func Stock3D(nStocks, nDays int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	dom := geom.NewRect(
		[]float64{0, 0, 0},
		[]float64{float64(nStocks), 500, float64(nDays)},
	)
	recs := make([]gridfile.Record, 0, nStocks*nDays)
	for s := 0; s < nStocks; s++ {
		// Log-uniform base price in [2, 400): most stocks cheap, a few dear.
		base := 2 * math.Exp(rng.Float64()*math.Log(200))
		price := base
		vol := 0.005 + rng.Float64()*0.03 // daily volatility
		for d := 0; d < nDays; d++ {
			price *= math.Exp(rng.NormFloat64() * vol)
			// Keep the walk inside the price domain.
			if price < 0.5 {
				price = 0.5
			}
			if price > 499 {
				price = 499
			}
			recs = append(recs, gridfile.Record{Key: geom.Point{
				float64(s) + rng.Float64()*0.5, // jitter within the id slot
				price,
				float64(d) + rng.Float64()*0.5,
			}})
		}
	}
	return &Dataset{
		Name: "stock.3d", Domain: dom, Records: recs,
		PageBytes: 4096, RecordBytes: 28,
	}
}

// DSMC4D generates the substitute for the SP-2 experiments' 3-million-record
// dataset: nSnapshots DSMC snapshots of a 3-D volume with particlesPerSnap
// particles each, keyed by (t, x, y, z). The blob centres drift across
// snapshots, modelling the time-dependent simulation. The paper's dataset
// has 59 snapshots of ~51k particles in 8 KB buckets.
func DSMC4D(nSnapshots, particlesPerSnap int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	dom := geom.NewRect(
		[]float64{0, 0, 0, 0},
		[]float64{float64(nSnapshots), 2000, 2000, 2000},
	)
	recs := make([]gridfile.Record, 0, nSnapshots*particlesPerSnap)
	for t := 0; t < nSnapshots; t++ {
		// Blob drifts along x over time.
		frac := float64(t) / float64(max(nSnapshots-1, 1))
		cx := 400 + 1200*frac
		for i := 0; i < particlesPerSnap; i++ {
			var p geom.Point
			if rng.Float64() < 0.6 {
				p = geom.Point{
					float64(t) + rng.Float64()*0.9,
					rng.Float64() * 2000, rng.Float64() * 2000, rng.Float64() * 2000,
				}
			} else {
				p = clampPoint(geom.Point{
					float64(t) + rng.Float64()*0.9,
					cx + rng.NormFloat64()*220,
					1000 + rng.NormFloat64()*300,
					1000 + rng.NormFloat64()*300,
				}, dom)
			}
			recs = append(recs, gridfile.Record{Key: p})
		}
	}
	return &Dataset{
		Name: "DSMC.4d", Domain: dom, Records: recs,
		PageBytes: 8192, RecordBytes: 38,
	}
}

// MHD4D generates a substitute for the magneto-hydrodynamic simulation
// snapshots named in the paper's conclusion (MHD simulation of planetary
// magnetospheres, Tanaka 1993): grid samples concentrated along a
// paraboloid bow-shock shell around an obstacle at the domain centre, over
// a uniform solar-wind background, drifting slightly across snapshots.
// What declustering sees is again only the spatial density structure: a
// thin, curved, high-density sheet — a qualitatively different skew from
// DSMC's blobs, useful for checking that the algorithm ranking is not an
// artifact of blob-shaped hot spots.
func MHD4D(nSnapshots, samplesPerSnap int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	dom := geom.NewRect(
		[]float64{0, 0, 0, 0},
		[]float64{float64(nSnapshots), 2000, 2000, 2000},
	)
	recs := make([]gridfile.Record, 0, nSnapshots*samplesPerSnap)
	for t := 0; t < nSnapshots; t++ {
		// The stand-off distance of the shock breathes over time.
		standoff := 500 + 100*math.Sin(2*math.Pi*float64(t)/float64(max(nSnapshots, 1)))
		for i := 0; i < samplesPerSnap; i++ {
			var p geom.Point
			if rng.Float64() < 0.45 {
				// Solar-wind background.
				p = geom.Point{
					float64(t) + rng.Float64()*0.9,
					rng.Float64() * 2000, rng.Float64() * 2000, rng.Float64() * 2000,
				}
			} else {
				// Paraboloid shell x = standoff + (y²+z²)/(4·standoff),
				// relative to the obstacle at (1000, 1000, 1000), with
				// gaussian thickness.
				y := rng.NormFloat64() * 400
				z := rng.NormFloat64() * 400
				x := standoff + (y*y+z*z)/(4*standoff) + rng.NormFloat64()*40
				p = clampPoint(geom.Point{
					float64(t) + rng.Float64()*0.9,
					1000 - x, // shock upstream of the obstacle
					1000 + y,
					1000 + z,
				}, dom)
			}
			recs = append(recs, gridfile.Record{Key: p})
		}
	}
	return &Dataset{
		Name: "MHD.4d", Domain: dom, Records: recs,
		PageBytes: 8192, RecordBytes: 38,
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
