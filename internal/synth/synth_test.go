package synth

import (
	"math"
	"testing"
)

func TestGeneratorsDeterministic(t *testing.T) {
	a := Hotspot2D(1000, 42)
	b := Hotspot2D(1000, 42)
	if len(a.Records) != len(b.Records) {
		t.Fatal("lengths differ")
	}
	for i := range a.Records {
		for d := range a.Records[i].Key {
			if a.Records[i].Key[d] != b.Records[i].Key[d] {
				t.Fatalf("record %d differs between identical seeds", i)
			}
		}
	}
	c := Hotspot2D(1000, 43)
	same := true
	for i := range a.Records {
		if a.Records[i].Key[0] != c.Records[i].Key[0] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestAllGeneratorsInDomain(t *testing.T) {
	sets := []*Dataset{
		Uniform2D(2000, 1),
		Hotspot2D(2000, 2),
		Correl2D(2000, 3),
		DSMC3D(3000, 4),
		Stock3D(50, 40, 5),
		DSMC4D(5, 500, 6),
	}
	for _, ds := range sets {
		if len(ds.Records) == 0 {
			t.Errorf("%s: no records", ds.Name)
		}
		for i, r := range ds.Records {
			if len(r.Key) != ds.Domain.Dim() {
				t.Fatalf("%s: record %d has %d dims, want %d", ds.Name, i, len(r.Key), ds.Domain.Dim())
			}
			if !ds.Domain.ContainsPoint(r.Key) {
				t.Fatalf("%s: record %d key %v outside domain %v", ds.Name, i, r.Key, ds.Domain)
			}
		}
		if ds.BucketCapacity() < 2 {
			t.Errorf("%s: bucket capacity %d too small", ds.Name, ds.BucketCapacity())
		}
	}
}

func TestRequestedSizes(t *testing.T) {
	if n := len(Uniform2D(12345, 1).Records); n != 12345 {
		t.Errorf("Uniform2D made %d records", n)
	}
	if n := len(Hotspot2D(999, 1).Records); n != 999 {
		t.Errorf("Hotspot2D made %d records", n)
	}
	if n := len(Correl2D(777, 1).Records); n != 777 {
		t.Errorf("Correl2D made %d records", n)
	}
	if n := len(DSMC3D(5000, 1).Records); n != 5000 {
		t.Errorf("DSMC3D made %d records", n)
	}
	if n := len(Stock3D(10, 20, 1).Records); n != 200 {
		t.Errorf("Stock3D made %d records", n)
	}
	if n := len(DSMC4D(7, 100, 1).Records); n != 700 {
		t.Errorf("DSMC4D made %d records", n)
	}
}

func TestHotspotIsDenserInCenter(t *testing.T) {
	ds := Hotspot2D(10000, 9)
	center, corner := 0, 0
	for _, r := range ds.Records {
		if math.Abs(r.Key[0]-1000) < 250 && math.Abs(r.Key[1]-1000) < 250 {
			center++
		}
		if r.Key[0] < 500 && r.Key[1] < 500 {
			corner++
		}
	}
	// Both regions have the same area; the centre must be far denser.
	if center < 2*corner {
		t.Errorf("centre density %d not clearly above corner density %d", center, corner)
	}
}

func TestCorrelHugsDiagonal(t *testing.T) {
	ds := Correl2D(5000, 10)
	far := 0
	for _, r := range ds.Records {
		if math.Abs(r.Key[0]-r.Key[1]) > 800 {
			far++
		}
	}
	if far > len(ds.Records)/100 {
		t.Errorf("%d of %d points far from the diagonal", far, len(ds.Records))
	}
}

func TestStockStructure(t *testing.T) {
	ds := Stock3D(20, 50, 11)
	// Per-stock price spread must be much smaller than the global spread:
	// this is the "one hot spot per stock" structure.
	minP := make([]float64, 20)
	maxP := make([]float64, 20)
	for i := range minP {
		minP[i] = math.Inf(1)
		maxP[i] = math.Inf(-1)
	}
	globalMin, globalMax := math.Inf(1), math.Inf(-1)
	for _, r := range ds.Records {
		id := int(r.Key[0])
		p := r.Key[1]
		minP[id] = math.Min(minP[id], p)
		maxP[id] = math.Max(maxP[id], p)
		globalMin = math.Min(globalMin, p)
		globalMax = math.Max(globalMax, p)
	}
	var avgSpread float64
	for i := range minP {
		avgSpread += maxP[i] - minP[i]
	}
	avgSpread /= 20
	if avgSpread > (globalMax-globalMin)/4 {
		t.Errorf("average per-stock spread %.1f too wide vs global %.1f",
			avgSpread, globalMax-globalMin)
	}
}

func TestDSMC4DSnapshotsOrdered(t *testing.T) {
	ds := DSMC4D(6, 300, 12)
	counts := make([]int, 6)
	for _, r := range ds.Records {
		counts[int(r.Key[0])]++
	}
	for t2, c := range counts {
		if c != 300 {
			t.Errorf("snapshot %d has %d particles, want 300", t2, c)
		}
	}
}

func TestBuildLoadsGridFile(t *testing.T) {
	ds := Hotspot2D(3000, 13)
	f, err := ds.Build()
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 3000 {
		t.Fatalf("grid file has %d records", f.Len())
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.MergedBuckets == 0 {
		t.Error("hot.2d grid file has no merged buckets; conflict resolution would be vacuous")
	}
}

func TestPaperScaleBucketCounts(t *testing.T) {
	// The paper's grid files: uniform.2d 252 buckets, hot.2d 241,
	// correl.2d 242 (10k records each); DSMC.3d 444 buckets (52857
	// records). Our reproduction should land in the same regime —
	// within a factor of two — for the experiment shapes to carry over.
	if testing.Short() {
		t.Skip("full-size dataset build")
	}
	check := func(name string, ds *Dataset, wantLo, wantHi int) {
		f, err := ds.Build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := f.NumBuckets()
		if got < wantLo || got > wantHi {
			t.Errorf("%s: %d buckets, want within [%d,%d]", name, got, wantLo, wantHi)
		}
	}
	check("uniform.2d", Uniform2D(10000, 1), 126, 504)
	check("hot.2d", Hotspot2D(10000, 2), 120, 500)
	check("correl.2d", Correl2D(10000, 3), 121, 500)
	check("DSMC.3d", DSMC3D(DSMC3DSize, 4), 222, 888)
}

func TestMHD4DStructure(t *testing.T) {
	ds := MHD4D(8, 4000, 21)
	if len(ds.Records) != 32000 {
		t.Fatalf("generated %d records", len(ds.Records))
	}
	for i, r := range ds.Records {
		if !ds.Domain.ContainsPoint(r.Key) {
			t.Fatalf("record %d outside domain", i)
		}
	}
	// The bow-shock shell concentrates mass upstream of the obstacle
	// (x < 1000): that half-space must be denser than the downstream one.
	up, down := 0, 0
	for _, r := range ds.Records {
		if r.Key[1] < 1000 {
			up++
		} else {
			down++
		}
	}
	if up < down*13/10 {
		t.Errorf("upstream %d not clearly denser than downstream %d", up, down)
	}
	if _, err := ds.Build(); err != nil {
		t.Fatal(err)
	}
}
