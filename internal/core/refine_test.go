package core

import (
	"testing"

	"pgridfile/internal/geom"
	"pgridfile/internal/workload"
)

// trainObjective evaluates Σ_q max_d N_d(q) directly.
func trainObjective(g Grid, alloc Allocation, queries []geom.Rect) int64 {
	var total int64
	counts := make([]int32, alloc.Disks)
	for _, q := range queries {
		for i := range counts {
			counts[i] = 0
		}
		for i := range g.Buckets {
			if g.Buckets[i].Region.Intersects(q) {
				counts[alloc.Assign[i]]++
			}
		}
		total += int64(maxInt32(counts))
	}
	return total
}

func TestRefineImprovesTrainingObjective(t *testing.T) {
	g := testGrid(t)
	queries := workload.SquareRange(g.Domain, 0.05, 200, 11)
	const disks = 16

	base := &Minimax{Seed: 1}
	baseAlloc, err := base.Decluster(g, disks)
	if err != nil {
		t.Fatal(err)
	}
	refined, err := (&Refine{Base: base, Queries: queries, Seed: 1}).Decluster(g, disks)
	if err != nil {
		t.Fatal(err)
	}
	if err := refined.Validate(len(g.Buckets)); err != nil {
		t.Fatal(err)
	}

	before := trainObjective(g, baseAlloc, queries)
	after := trainObjective(g, refined, queries)
	if after > before {
		t.Errorf("refinement worsened the training objective: %d -> %d", before, after)
	}
	if after == before {
		t.Logf("note: no improvement found (base already locally optimal)")
	}

	// The balance bound survives refinement.
	ceil := (len(g.Buckets) + disks - 1) / disks
	for d, l := range refined.DiskLoads() {
		if l > ceil {
			t.Errorf("disk %d holds %d buckets, bound %d", d, l, ceil)
		}
	}
}

func TestRefineRequiresWorkload(t *testing.T) {
	g := testGrid(t)
	if _, err := (&Refine{Seed: 1}).Decluster(g, 8); err == nil {
		t.Error("Refine without a workload accepted")
	}
}

func TestRefineDegenerateCases(t *testing.T) {
	g := cartesianGrid(t, []int{2, 2})
	queries := workload.SquareRange(g.Domain, 0.5, 10, 3)
	// More disks than buckets: base result passes through.
	alloc, err := (&Refine{Queries: queries, Seed: 1}).Decluster(g, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := alloc.Validate(4); err != nil {
		t.Fatal(err)
	}
	// Single disk: nothing to move.
	alloc, err = (&Refine{Queries: queries, Seed: 1}).Decluster(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range alloc.Assign {
		if d != 0 {
			t.Fatal("single-disk allocation uses another disk")
		}
	}
}

func TestRefineName(t *testing.T) {
	r := &Refine{}
	if r.Name() != "Refine(MiniMax)" {
		t.Errorf("Name = %s", r.Name())
	}
	r2 := &Refine{Base: &SSP{}}
	if r2.Name() != "Refine(SSP)" {
		t.Errorf("Name = %s", r2.Name())
	}
}

func TestRefineDeterministic(t *testing.T) {
	g := testGrid(t)
	queries := workload.SquareRange(g.Domain, 0.05, 100, 13)
	a, err := (&Refine{Queries: queries, Seed: 5}).Decluster(g, 12)
	if err != nil {
		t.Fatal(err)
	}
	b, err := (&Refine{Queries: queries, Seed: 5}).Decluster(g, 12)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("refinement not deterministic")
		}
	}
}
