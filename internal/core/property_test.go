package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pgridfile/internal/geom"
	"pgridfile/internal/gridfile"
)

// randomGrid builds a random small grid file view for property tests.
func randomGrid(rng *rand.Rand) Grid {
	dims := 1 + rng.Intn(3)
	lo := make([]float64, dims)
	hi := make([]float64, dims)
	for d := range hi {
		hi[d] = 100 + rng.Float64()*1900
	}
	f, err := gridfile.New(gridfile.Config{
		Dims:           dims,
		Domain:         geom.NewRect(lo, hi),
		BucketCapacity: 3 + rng.Intn(6),
	})
	if err != nil {
		panic(err)
	}
	n := 50 + rng.Intn(400)
	for i := 0; i < n; i++ {
		p := make(geom.Point, dims)
		for d := 0; d < dims; d++ {
			if rng.Intn(3) == 0 { // clustered component
				p[d] = hi[d]/2 + rng.NormFloat64()*hi[d]/10
				if p[d] < 0 {
					p[d] = 0
				}
				if p[d] > hi[d] {
					p[d] = hi[d]
				}
			} else {
				p[d] = rng.Float64() * hi[d]
			}
		}
		if err := f.Insert(gridfile.Record{Key: p}); err != nil {
			panic(err)
		}
	}
	return FromGridFile(f)
}

// TestPropertyAllAllocatorsValid: every algorithm produces a complete,
// in-range allocation on arbitrary grids and disk counts.
func TestPropertyAllAllocatorsValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGrid(rng)
		m := 2 + rng.Intn(20)
		algs := []Allocator{
			mustIndexBased("DM", "D", seed),
			mustIndexBased("GDM", "A", seed),
			mustIndexBased("FX", "R", seed),
			mustIndexBased("HCAM", "F", seed),
			&Minimax{Seed: seed},
			&SSP{Seed: seed},
			&MST{Seed: seed},
		}
		for _, alg := range algs {
			alloc, err := alg.Decluster(g, m)
			if err != nil {
				t.Logf("%s: %v", alg.Name(), err)
				return false
			}
			if err := alloc.Validate(len(g.Buckets)); err != nil {
				t.Logf("%s: %v", alg.Name(), err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropertyMinimaxBalanceBound: ⌈N/M⌉ holds on arbitrary grids.
func TestPropertyMinimaxBalanceBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGrid(rng)
		m := 2 + rng.Intn(24)
		alloc, err := (&Minimax{Seed: seed}).Decluster(g, m)
		if err != nil {
			return false
		}
		n := len(g.Buckets)
		ceil := (n + m - 1) / m
		for _, l := range alloc.DiskLoads() {
			if l > ceil {
				t.Logf("n=%d m=%d load %d > ceil %d", n, m, l, ceil)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertySSPBalanceWithinOne: round-robin along the path.
func TestPropertySSPBalanceWithinOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGrid(rng)
		m := 2 + rng.Intn(24)
		alloc, err := (&SSP{Seed: seed}).Decluster(g, m)
		if err != nil {
			return false
		}
		loads := alloc.DiskLoads()
		max, min := loads[0], loads[0]
		for _, l := range loads {
			if l > max {
				max = l
			}
			if l < min {
				min = l
			}
		}
		return max-min <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyCandidateCountsCoverCells: each bucket's candidate multiset
// accounts for exactly its cell span, for every scheme.
func TestPropertyCandidateCountsCoverCells(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGrid(rng)
		m := 2 + rng.Intn(12)
		for _, s := range []Scheme{DM{}, GDM{}, FX{}, HCAM(), ZCAM(), GrayCAM()} {
			cellDisks := s.CellDisks(g.Sizes, m)
			for _, d := range cellDisks {
				if d < 0 || d >= m {
					t.Logf("%s: cell disk %d out of range", s.Name(), d)
					return false
				}
			}
			cands := bucketCandidates(g, cellDisks, m)
			for i, c := range cands {
				total := 0
				for _, n := range c.Count {
					total += n
				}
				if total != g.Buckets[i].CellSpan() {
					t.Logf("%s: bucket %d candidates cover %d cells, span %d",
						s.Name(), i, total, g.Buckets[i].CellSpan())
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestPropertySchemesRoundRobinFair: on a complete grid every scheme's disk
// loads are within the structural bound (cells/M ± the scheme's collision
// pattern); curve allocation is perfectly fair by construction.
func TestPropertySchemesRoundRobinFair(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sizes := []int{2 + rng.Intn(20), 2 + rng.Intn(20)}
		m := 2 + rng.Intn(16)
		for _, curve := range []*CurveAllocation{HCAM(), ZCAM(), GrayCAM()} {
			disks := curve.CellDisks(sizes, m)
			counts := make([]int, m)
			for _, d := range disks {
				counts[d]++
			}
			max, min := counts[0], counts[0]
			for _, c := range counts {
				if c > max {
					max = c
				}
				if c < min {
					min = c
				}
			}
			if max-min > 1 {
				t.Logf("%s sizes=%v m=%d loads %v", curve.Name(), sizes, m, counts)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
