package core

import (
	"fmt"
	"math/rand"

	"pgridfile/internal/geom"
)

// Refine is a workload-aware declustering refinement: it starts from a base
// allocation (minimax by default) and hill-climbs on the exact
// response-time objective evaluated over a sample query workload —
// Σ_q max_d N_d(q) — moving one bucket at a time while preserving the
// ⌈N/M⌉ balance bound. This explores the paper's closing observation that
// minimax's distributions are "probably quite close to the optimal
// distribution": Refine quantifies how much a direct workload-driven search
// can still recover.
//
// The refined allocation is tuned to the *sample* workload; evaluating it
// on an independently drawn workload (as ablation-refine does) measures
// generalization rather than memorization.
type Refine struct {
	// Base produces the initial allocation; nil means Minimax.
	Base Allocator
	// Queries is the training workload. Required.
	Queries []geom.Rect
	// MaxPasses bounds the hill-climbing sweeps (default 16).
	MaxPasses int
	// Seed drives tie-breaking and the bucket visit order.
	Seed int64
}

// Name implements Allocator.
func (r *Refine) Name() string {
	base := r.Base
	if base == nil {
		base = &Minimax{}
	}
	return "Refine(" + base.Name() + ")"
}

// Decluster implements Allocator.
func (r *Refine) Decluster(g Grid, disks int) (Allocation, error) {
	if err := checkArgs(g, disks); err != nil {
		return Allocation{}, err
	}
	if len(r.Queries) == 0 {
		return Allocation{}, fmt.Errorf("core: Refine needs a training workload")
	}
	base := r.Base
	if base == nil {
		base = &Minimax{Seed: r.Seed}
	}
	alloc, err := base.Decluster(g, disks)
	if err != nil {
		return Allocation{}, err
	}
	n := len(g.Buckets)
	if disks >= n {
		return alloc, nil // every bucket on its own disk: nothing to improve
	}

	// Incidence lists: which buckets each training query touches.
	incidence := make([][]int32, 0, len(r.Queries))
	touchedBy := make([][]int32, n) // bucket -> query ids
	for qi, q := range r.Queries {
		var hit []int32
		for i := range g.Buckets {
			if g.Buckets[i].Region.Intersects(q) {
				hit = append(hit, int32(i))
				touchedBy[i] = append(touchedBy[i], int32(qi))
			}
		}
		incidence = append(incidence, hit)
	}

	// Per-query per-disk counts and current maxima.
	counts := make([][]int32, len(r.Queries))
	maxOf := make([]int32, len(r.Queries))
	for qi, hit := range incidence {
		c := make([]int32, disks)
		for _, b := range hit {
			c[alloc.Assign[b]]++
		}
		counts[qi] = c
		maxOf[qi] = maxInt32(c)
	}
	loads := make([]int, disks)
	for _, d := range alloc.Assign {
		loads[d]++
	}
	ceil := (n + disks - 1) / disks

	// moveDelta computes the objective change of moving bucket b to disk
	// to, without applying it.
	moveDelta := func(b int, to int) int64 {
		from := alloc.Assign[b]
		var delta int64
		for _, qi := range touchedBy[b] {
			c := counts[qi]
			oldMax := maxOf[qi]
			c[from]--
			c[to]++
			newMax := maxInt32(c)
			c[from]++
			c[to]--
			delta += int64(newMax - oldMax)
		}
		return delta
	}
	apply := func(b int, to int) {
		from := alloc.Assign[b]
		for _, qi := range touchedBy[b] {
			c := counts[qi]
			c[from]--
			c[to]++
			maxOf[qi] = maxInt32(c)
		}
		loads[from]--
		loads[to]++
		alloc.Assign[b] = to
	}

	passes := r.MaxPasses
	if passes <= 0 {
		passes = 16
	}
	rng := rand.New(rand.NewSource(r.Seed))
	order := rng.Perm(n)
	for pass := 0; pass < passes; pass++ {
		improved := false
		for _, b := range order {
			from := alloc.Assign[b]
			bestTo, bestDelta := -1, int64(0)
			for to := 0; to < disks; to++ {
				if to == from || loads[to] >= ceil {
					continue
				}
				if d := moveDelta(b, to); d < bestDelta {
					bestTo, bestDelta = to, d
				}
			}
			if bestTo >= 0 {
				apply(b, bestTo)
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return alloc, nil
}

func maxInt32(s []int32) int32 {
	var m int32
	for _, v := range s {
		if v > m {
			m = v
		}
	}
	return m
}
