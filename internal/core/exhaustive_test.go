package core

import (
	"testing"

	"pgridfile/internal/workload"
)

func TestExhaustiveValidation(t *testing.T) {
	small := cartesianGrid(t, []int{3, 3})
	queries := workload.SquareRange(small.Domain, 0.3, 20, 1)
	if _, err := (&Exhaustive{}).Decluster(small, 3); err == nil {
		t.Error("missing workload accepted")
	}
	big := cartesianGrid(t, []int{5, 5})
	if _, err := (&Exhaustive{Queries: queries}).Decluster(big, 3); err == nil {
		t.Error("oversized instance accepted")
	}
}

func TestExhaustiveMatchesBruteForce(t *testing.T) {
	// On a tiny instance, compare branch-and-bound against literal
	// enumeration of all assignments.
	g := cartesianGrid(t, []int{2, 3}) // 6 buckets
	queries := workload.SquareRange(g.Domain, 0.25, 30, 3)
	const disks = 3

	ex, err := (&Exhaustive{Queries: queries}).Decluster(g, disks)
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Validate(6); err != nil {
		t.Fatal(err)
	}

	obj := func(assign []int) int64 {
		a := Allocation{Disks: disks, Assign: assign}
		var total int64
		counts := make([]int, disks)
		for _, q := range queries {
			for i := range counts {
				counts[i] = 0
			}
			for i := range g.Buckets {
				if g.Buckets[i].Region.Intersects(q) {
					counts[a.Assign[i]]++
				}
			}
			max := 0
			for _, c := range counts {
				if c > max {
					max = c
				}
			}
			total += int64(max)
		}
		return total
	}

	bestBrute := int64(1) << 62
	assign := make([]int, 6)
	var walk func(i int)
	walk = func(i int) {
		if i == 6 {
			if v := obj(assign); v < bestBrute {
				bestBrute = v
			}
			return
		}
		for d := 0; d < disks; d++ {
			assign[i] = d
			walk(i + 1)
		}
	}
	walk(0)

	if got := obj(ex.Assign); got != bestBrute {
		t.Errorf("Exhaustive objective %d, brute-force optimum %d", got, bestBrute)
	}
}

func TestMinimaxNearExhaustiveOptimum(t *testing.T) {
	// The paper's claim, verified exactly on small instances: minimax's
	// objective is close to (here within 25% of) the true optimum.
	for _, sizes := range [][]int{{3, 4}, {2, 6}, {4, 3}} {
		g := cartesianGrid(t, sizes)
		queries := workload.SquareRange(g.Domain, 0.2, 60, 5)
		const disks = 3
		ex, err := (&Exhaustive{Queries: queries}).Decluster(g, disks)
		if err != nil {
			t.Fatal(err)
		}
		mm, err := (&Minimax{Seed: 1}).Decluster(g, disks)
		if err != nil {
			t.Fatal(err)
		}
		obj := func(a Allocation) int64 {
			var total int64
			counts := make([]int, disks)
			for _, q := range queries {
				for i := range counts {
					counts[i] = 0
				}
				for i := range g.Buckets {
					if g.Buckets[i].Region.Intersects(q) {
						counts[a.Assign[i]]++
					}
				}
				max := 0
				for _, c := range counts {
					if c > max {
						max = c
					}
				}
				total += int64(max)
			}
			return total
		}
		exObj, mmObj := obj(ex), obj(mm)
		if mmObj < exObj {
			t.Fatalf("sizes %v: minimax %d beat the 'optimum' %d — exhaustive is broken", sizes, mmObj, exObj)
		}
		if float64(mmObj) > float64(exObj)*1.25 {
			t.Errorf("sizes %v: minimax %d more than 25%% above optimum %d", sizes, mmObj, exObj)
		}
	}
}

func TestExhaustiveEmptyWorkloadOverlap(t *testing.T) {
	// Queries that miss every bucket: any assignment is optimal and the
	// allocator must still return a valid one.
	g := cartesianGrid(t, []int{2, 2})
	q := workload.SquareRange(g.Domain, 0.1, 5, 7)
	for i := range q {
		for d := range q[i] {
			q[i][d].Lo += 1000 // push outside the domain
			q[i][d].Hi += 1000
		}
	}
	alloc, err := (&Exhaustive{Queries: q}).Decluster(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := alloc.Validate(4); err != nil {
		t.Fatal(err)
	}
}
