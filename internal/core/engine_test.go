package core

import (
	"math/rand"
	"testing"

	"pgridfile/internal/geom"
	"pgridfile/internal/gridfile"
)

// TestPermPrefix pins the seeding satellite's contract: permPrefix must
// reproduce rand.Perm(n)[:m] exactly AND leave the RNG in the same state, so
// a given Seed keeps producing the identical seed sequence it always has.
func TestPermPrefix(t *testing.T) {
	for _, tc := range []struct{ n, m int }{
		{1, 1}, {2, 1}, {2, 2}, {10, 3}, {57, 8}, {100, 100}, {1000, 16}, {1000, 64},
	} {
		for seed := int64(0); seed < 5; seed++ {
			ref := rand.New(rand.NewSource(seed))
			want := ref.Perm(tc.n)[:tc.m]
			got := permPrefix(rand.New(rand.NewSource(seed)), tc.n, tc.m)
			if len(got) != len(want) {
				t.Fatalf("n=%d m=%d seed=%d: len %d, want %d", tc.n, tc.m, seed, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d m=%d seed=%d: prefix[%d] = %d, want %d",
						tc.n, tc.m, seed, i, got[i], want[i])
				}
			}
			// Same number of draws consumed: the next value must agree.
			rng := rand.New(rand.NewSource(seed))
			permPrefix(rng, tc.n, tc.m)
			if g, w := rng.Int63(), ref.Int63(); g != w {
				t.Fatalf("n=%d m=%d seed=%d: RNG state diverged after prefix", tc.n, tc.m, seed)
			}
		}
	}
}

func TestKindOf(t *testing.T) {
	if kindOf(nil) != kindProximity {
		t.Error("kindOf(nil) != kindProximity")
	}
	if kindOf(ProximityWeight) != kindProximity {
		t.Error("kindOf(ProximityWeight) != kindProximity")
	}
	if kindOf(EuclideanWeight) != kindEuclid {
		t.Error("kindOf(EuclideanWeight) != kindEuclid")
	}
	custom := func(a, b gridfile.BucketView, d geom.Rect) float64 { return 0 }
	if kindOf(custom) != kindGeneric {
		t.Error("kindOf(custom closure) != kindGeneric")
	}
	if NewPairEngine(Grid{Domain: geom.Rect{{Lo: 0, Hi: 1}}}, custom, 1) != nil {
		t.Error("NewPairEngine must refuse custom weights")
	}
}

// TestEngineWeighMatchesClosure checks the flattened kernels reproduce the
// closure weights bit-for-bit on an irregular grid — the property the
// engine's byte-identical-assignment guarantee rests on.
func TestEngineWeighMatchesClosure(t *testing.T) {
	g := testGrid(t)
	for _, tc := range []struct {
		name string
		w    Weight
	}{
		{"proximity", ProximityWeight},
		{"euclid", EuclideanWeight},
	} {
		e := NewPairEngine(g, tc.w, 2)
		if e == nil {
			t.Fatalf("%s: engine refused a built-in weight", tc.name)
		}
		n := len(g.Buckets)
		for i := 0; i < n; i += 7 {
			for j := 0; j < n; j += 11 {
				got := e.Weigh(i, j)
				want := tc.w(g.Buckets[i], g.Buckets[j], g.Domain)
				if got != want {
					t.Fatalf("%s: Weigh(%d,%d) = %v, want %v (must be bit-identical)",
						tc.name, i, j, got, want)
				}
			}
		}
		e.Close()
	}
}

// asClosure hides a built-in weight behind a closure so kindOf reports
// kindGeneric, forcing the pre-engine serial reference path.
func asClosure(w Weight) Weight {
	return func(a, b gridfile.BucketView, d geom.Rect) float64 { return w(a, b, d) }
}

func proximityAllocators(seed int64, w Weight, name string, workers int) []Allocator {
	return []Allocator{
		&Minimax{Weight: w, WeightName: name, Seed: seed, Workers: workers},
		&SSP{Weight: w, Seed: seed, Workers: workers},
		&MST{Weight: w, Seed: seed, Workers: workers},
	}
}

// TestDeclusterDeterministicAcrossWorkers is the determinism property test:
// every proximity-based allocator, under both built-in weights, must produce
// an identical assignment for workers ∈ {1, 2, 4, 8}. Run under -race by
// make check, this also exercises the sweeps' disjoint-write discipline.
func TestDeclusterDeterministicAcrossWorkers(t *testing.T) {
	grids := map[string]Grid{
		"hotspot":   testGrid(t),
		"cartesian": cartesianGrid(t, []int{17, 13}),
	}
	weights := map[string]Weight{"proximity": nil, "euclid": EuclideanWeight}
	for gname, g := range grids {
		for wname, w := range weights {
			for _, disks := range []int{4, 16} {
				ref := proximityAllocators(3, w, wname, 1)
				for ai, alg := range ref {
					want, err := alg.Decluster(g, disks)
					if err != nil {
						t.Fatal(err)
					}
					for _, workers := range []int{2, 4, 8} {
						alg2 := proximityAllocators(3, w, wname, workers)[ai]
						got, err := alg2.Decluster(g, disks)
						if err != nil {
							t.Fatal(err)
						}
						for x := range want.Assign {
							if got.Assign[x] != want.Assign[x] {
								t.Fatalf("%s/%s/%s disks=%d: workers=%d diverges from workers=1 at bucket %d (%d vs %d)",
									alg2.Name(), gname, wname, disks, workers, x,
									got.Assign[x], want.Assign[x])
							}
						}
					}
				}
			}
		}
	}
}

// TestEngineMatchesSerialReference asserts the engine path reproduces the
// serial reference (the Weight-closure slow path) byte-for-byte, for every
// proximity-based allocator and both built-in weights.
func TestEngineMatchesSerialReference(t *testing.T) {
	grids := map[string]Grid{
		"hotspot":   testGrid(t),
		"cartesian": cartesianGrid(t, []int{16, 16}),
	}
	builtins := map[string]Weight{"proximity": ProximityWeight, "euclid": EuclideanWeight}
	for gname, g := range grids {
		for wname, w := range builtins {
			engine := proximityAllocators(7, w, wname, 0)
			serial := proximityAllocators(7, asClosure(w), wname, 0)
			for ai := range engine {
				want, err := serial[ai].Decluster(g, 8)
				if err != nil {
					t.Fatal(err)
				}
				got, err := engine[ai].Decluster(g, 8)
				if err != nil {
					t.Fatal(err)
				}
				for x := range want.Assign {
					if got.Assign[x] != want.Assign[x] {
						t.Fatalf("%s/%s/%s: engine diverges from serial reference at bucket %d (%d vs %d)",
							engine[ai].Name(), gname, wname, x, got.Assign[x], want.Assign[x])
					}
				}
			}
		}
	}
}

// TestEngineNearestCompanions checks the engine's row-parallel companion
// sweep against the serial scan for several worker counts.
func TestEngineNearestCompanions(t *testing.T) {
	g := testGrid(t)
	n := len(g.Buckets)
	want := make([]int, n)
	for i := 0; i < n; i++ {
		best, bestVal := -1, -1.0
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			if v := ProximityWeight(g.Buckets[i], g.Buckets[j], g.Domain); v > bestVal {
				best, bestVal = j, v
			}
		}
		want[i] = best
	}
	for _, workers := range []int{1, 2, 8} {
		e := NewPairEngine(g, nil, workers)
		got := e.NearestCompanions()
		e.Close()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: companion[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}
