package core

import "fmt"

// GDM is the generalized disk modulo scheme from Du and Sobolewski's
// original paper: cell [i1,...,id] maps to (a1·i1 + ... + ad·id) mod M.
// Plain DM is the special case a = (1,...,1); with skewed coefficients the
// diagonal sum-collision pattern that saturates DM for square range queries
// is broken, which ablation-gdm demonstrates. Coefficients should be
// chosen coprime to the disk count (see DefaultGDMCoeffs).
type GDM struct {
	// Coeffs are the per-dimension multipliers; nil selects
	// DefaultGDMCoeffs for the grid's dimensionality at declustering time.
	Coeffs []int
}

// Name implements Scheme.
func (g GDM) Name() string { return "GDM" }

// CellDisks implements Scheme.
func (g GDM) CellDisks(sizes []int, disks int) []int {
	coeffs := g.Coeffs
	if coeffs == nil {
		coeffs = DefaultGDMCoeffs(len(sizes), disks)
	}
	if len(coeffs) != len(sizes) {
		panic(fmt.Sprintf("core: GDM has %d coefficients for a %d-dim grid", len(coeffs), len(sizes)))
	}
	out := make([]int, totalCells(sizes))
	cell := make([]int, len(sizes))
	for idx := range out {
		sum := 0
		for d, c := range cell {
			sum += coeffs[d] * c
		}
		out[idx] = ((sum % disks) + disks) % disks
		nextCell(cell, sizes)
	}
	return out
}

// DefaultGDMCoeffs picks multipliers that spread sums across residues:
// a1 = 1 and each subsequent coefficient is the odd number nearest M/φ
// (the golden-ratio fraction gives maximally irregular residue sequences),
// bumped until coprime with M. For M <= 2 it degenerates to plain DM, which
// is already optimal there.
func DefaultGDMCoeffs(dims, disks int) []int {
	coeffs := make([]int, dims)
	coeffs[0] = 1
	if dims == 1 {
		return coeffs
	}
	base := int(float64(disks)/1.6180339887498949 + 0.5)
	if base < 1 {
		base = 1
	}
	c := base
	for d := 1; d < dims; d++ {
		for gcd(c%disks, disks) != 1 && disks > 1 {
			c++
		}
		coeffs[d] = c % disks
		if coeffs[d] == 0 {
			coeffs[d] = 1
		}
		c += base
	}
	return coeffs
}

func gcd(a, b int) int {
	if a < 0 {
		a = -a
	}
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}
