package core

import (
	"sort"

	"pgridfile/internal/sfc"
)

// CentroidCurve is the curve-allocation method for structures without a
// grid, such as R-tree leaf pages (Kamel and Faloutsos's Hilbert-based
// assignment for parallel R-trees): each bucket's region centroid is mapped
// to a space-filling-curve key over a normalized 2^bits grid, buckets are
// sorted by key, and disks are assigned round-robin. On a grid file it
// closely tracks HCAM; unlike HCAM it never needs conflict resolution
// because it ranks whole buckets, not cells.
type CentroidCurve struct {
	// NewCurve constructs the curve; nil means Hilbert.
	NewCurve func(dims, bits int) sfc.Curve
	// CurveName qualifies Name(); default "hilbert".
	CurveName string
	// Bits is the per-dimension resolution (default 10, capped so that
	// dims·bits <= 64).
	Bits int
}

// Name implements Allocator.
func (c *CentroidCurve) Name() string {
	name := c.CurveName
	if name == "" {
		name = "hilbert"
	}
	return "CentroidCurve(" + name + ")"
}

// Decluster implements Allocator.
func (c *CentroidCurve) Decluster(g Grid, disks int) (Allocation, error) {
	if err := checkArgs(g, disks); err != nil {
		return Allocation{}, err
	}
	dims := g.Domain.Dim()
	bits := c.Bits
	if bits <= 0 {
		bits = 10
	}
	for dims*bits > 64 {
		bits--
	}
	newCurve := c.NewCurve
	if newCurve == nil {
		newCurve = func(d, b int) sfc.Curve { return sfc.NewHilbert(d, b) }
	}
	curve := newCurve(dims, bits)
	side := float64(uint64(1) << bits)

	type ranked struct {
		key uint64
		idx int
	}
	keys := make([]ranked, len(g.Buckets))
	coords := make([]uint32, dims)
	for i, b := range g.Buckets {
		center := b.Region.Center()
		for d := 0; d < dims; d++ {
			ext := g.Domain[d].Length()
			frac := 0.0
			if ext > 0 {
				frac = (center[d] - g.Domain[d].Lo) / ext
			}
			v := int64(frac * side)
			if v < 0 {
				v = 0
			}
			if v >= int64(side) {
				v = int64(side) - 1
			}
			coords[d] = uint32(v)
		}
		keys[i] = ranked{key: curve.Key(coords), idx: i}
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].key != keys[b].key {
			return keys[a].key < keys[b].key
		}
		return keys[a].idx < keys[b].idx
	})

	assign := make([]int, len(g.Buckets))
	for rank, r := range keys {
		assign[r.idx] = rank % disks
	}
	return Allocation{Disks: disks, Assign: assign}, nil
}
