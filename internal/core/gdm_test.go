package core

import "testing"

func TestGDMDefaultsToDMWithUnitCoeffs(t *testing.T) {
	sizes := []int{6, 6}
	dm := DM{}.CellDisks(sizes, 5)
	gdm := GDM{Coeffs: []int{1, 1}}.CellDisks(sizes, 5)
	for i := range dm {
		if dm[i] != gdm[i] {
			t.Fatalf("cell %d: DM %d != GDM(1,1) %d", i, dm[i], gdm[i])
		}
	}
}

func TestGDMKnownValues(t *testing.T) {
	g := GDM{Coeffs: []int{1, 3}}
	disks := g.CellDisks([]int{4, 4}, 7)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if got, want := disks[i*4+j], (i+3*j)%7; got != want {
				t.Errorf("cell (%d,%d) -> %d, want %d", i, j, got, want)
			}
		}
	}
}

func TestDefaultGDMCoeffs(t *testing.T) {
	for _, disks := range []int{2, 3, 4, 7, 8, 16, 31, 32} {
		for _, dims := range []int{1, 2, 3, 4} {
			coeffs := DefaultGDMCoeffs(dims, disks)
			if len(coeffs) != dims {
				t.Fatalf("dims=%d disks=%d: %d coefficients", dims, disks, len(coeffs))
			}
			if coeffs[0] != 1 {
				t.Errorf("dims=%d disks=%d: first coefficient %d", dims, disks, coeffs[0])
			}
			for d, c := range coeffs {
				if c < 1 {
					t.Errorf("dims=%d disks=%d: coefficient %d = %d", dims, disks, d, c)
				}
			}
			// Later coefficients must be coprime with M (when M > 2) so a
			// row sweep along that dimension cycles through all disks.
			if disks > 2 {
				for d := 1; d < dims; d++ {
					if gcd(coeffs[d], disks) != 1 {
						t.Errorf("dims=%d disks=%d: coefficient %d = %d shares a factor with M",
							dims, disks, d, coeffs[d])
					}
				}
			}
		}
	}
}

func TestGDMBreaksDiagonalCollisions(t *testing.T) {
	// DM's weakness: the anti-diagonal i+j = const collapses onto one disk.
	// GDM's skewed coefficients spread it. Measure the worst per-disk count
	// within an 8x8 window for M=16 (DM saturates: window diagonal of 8
	// cells on one disk).
	const side, m = 8, 16
	sizes := []int{32, 32}
	worst := func(disks []int) int {
		counts := make([]int, m)
		for i := 0; i < side; i++ {
			for j := 0; j < side; j++ {
				counts[disks[i*32+j]]++
			}
		}
		max := 0
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		return max
	}
	dmWorst := worst(DM{}.CellDisks(sizes, m))
	gdmWorst := worst(GDM{}.CellDisks(sizes, m))
	if gdmWorst >= dmWorst {
		t.Errorf("GDM worst per-disk count %d not below DM %d", gdmWorst, dmWorst)
	}
}

func TestGDMViaRegistry(t *testing.T) {
	g := cartesianGrid(t, []int{8, 8})
	alg, err := NewIndexBased("GDM", "D", 1)
	if err != nil {
		t.Fatal(err)
	}
	if alg.Name() != "GDM/D" {
		t.Errorf("Name = %s", alg.Name())
	}
	alloc, err := alg.Decluster(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := alloc.Validate(64); err != nil {
		t.Fatal(err)
	}
}

func TestGDMPanicsOnBadCoeffs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	GDM{Coeffs: []int{1}}.CellDisks([]int{4, 4}, 3)
}

func TestGCD(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{12, 8, 4}, {7, 3, 1}, {0, 5, 5}, {5, 0, 5}, {0, 0, 1}, {-6, 4, 2},
	}
	for _, c := range cases {
		if got := gcd(c.a, c.b); got != c.want {
			t.Errorf("gcd(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}
