package core

import (
	"fmt"
	"math/rand"
)

// Candidates is the multiset of disks that an index-based scheme assigns to
// the cells of one (possibly merged) bucket. For a single-cell bucket it has
// exactly one entry with count 1; for a merged bucket, conflict resolution
// must choose among the entries.
type Candidates struct {
	// Disks lists the distinct candidate disks in ascending order.
	Disks []int
	// Count[i] is the number of the bucket's cells that map to Disks[i].
	Count []int
}

// Resolver is a conflict-resolution heuristic: given the grid and the
// candidate multiset of every bucket, it chooses one disk per bucket.
// Buckets with a single candidate must be assigned that candidate.
type Resolver interface {
	// Name identifies the heuristic ("R" random, "F" most frequent,
	// "D" data balance, "A" area balance).
	Name() string
	// Resolve returns the chosen disk for every bucket.
	Resolve(g Grid, cands []Candidates, disks int) []int
}

// IndexBased is an index-based declustering algorithm extended to grid
// files: a Cartesian scheme plus a conflict-resolution heuristic. Its name
// follows the paper's convention, e.g. "DM/D" for disk modulo with data
// balance.
type IndexBased struct {
	Scheme   Scheme
	Resolver Resolver
}

// Name implements Allocator.
func (ib *IndexBased) Name() string {
	return ib.Scheme.Name() + "/" + ib.Resolver.Name()
}

// Decluster implements Allocator. Cost is O(#cells) for DM/FX and
// O(#cells log #cells) for curve allocation, plus the linear resolver pass —
// the complexities quoted in Section 2.1.
func (ib *IndexBased) Decluster(g Grid, disks int) (Allocation, error) {
	if err := checkArgs(g, disks); err != nil {
		return Allocation{}, err
	}
	cellDisks := ib.Scheme.CellDisks(g.Sizes, disks)
	cands := bucketCandidates(g, cellDisks, disks)
	assign := ib.Resolver.Resolve(g, cands, disks)
	alloc := Allocation{Disks: disks, Assign: assign}
	if err := alloc.Validate(len(g.Buckets)); err != nil {
		return Allocation{}, fmt.Errorf("core: resolver %s produced invalid assignment: %w", ib.Resolver.Name(), err)
	}
	// Conflict-freedom: single-candidate buckets must keep their mandated
	// disk (Algorithm 1, step 2).
	for i, c := range cands {
		if len(c.Disks) == 1 && assign[i] != c.Disks[0] {
			return Allocation{}, fmt.Errorf("core: resolver %s moved unconflicted bucket %d", ib.Resolver.Name(), i)
		}
	}
	return alloc, nil
}

// ConflictStats summarizes how much conflict resolution an index-based
// scheme needs on a grid: the share of buckets whose cells map to more than
// one disk, and the candidate-set sizes. The uniform.2d dataset has almost
// no conflicts (so the heuristic choice is immaterial, as the paper notes),
// while skewed datasets conflict heavily.
type ConflictStats struct {
	Buckets        int
	Conflicted     int
	MaxCandidates  int
	MeanCandidates float64
}

// Conflicts computes the conflict statistics of a scheme on a grid.
func Conflicts(g Grid, s Scheme, disks int) ConflictStats {
	cellDisks := s.CellDisks(g.Sizes, disks)
	cands := bucketCandidates(g, cellDisks, disks)
	st := ConflictStats{Buckets: len(cands)}
	total := 0
	for _, c := range cands {
		n := len(c.Disks)
		total += n
		if n > 1 {
			st.Conflicted++
		}
		if n > st.MaxCandidates {
			st.MaxCandidates = n
		}
	}
	if len(cands) > 0 {
		st.MeanCandidates = float64(total) / float64(len(cands))
	}
	return st
}

// bucketCandidates computes the candidate multiset of every bucket by
// scanning its cell region. Total cost across buckets is O(#cells) because
// bucket regions partition the grid.
func bucketCandidates(g Grid, cellDisks []int, disks int) []Candidates {
	counts := make([]int, disks)
	cands := make([]Candidates, len(g.Buckets))
	for i, b := range g.Buckets {
		for d := range counts {
			counts[d] = 0
		}
		forEachCell(b.CellLo, b.CellHi, g.Sizes, func(idx int) {
			counts[cellDisks[idx]]++
		})
		var c Candidates
		for d, n := range counts {
			if n > 0 {
				c.Disks = append(c.Disks, d)
				c.Count = append(c.Count, n)
			}
		}
		cands[i] = c
	}
	return cands
}

// forEachCell invokes fn with the flat row-major index of every cell in the
// inclusive box [lo,hi] of a grid with the given sizes.
func forEachCell(lo, hi []int32, sizes []int, fn func(idx int)) {
	dims := len(sizes)
	cell := make([]int32, dims)
	copy(cell, lo)
	for {
		idx := 0
		for d := 0; d < dims; d++ {
			idx = idx*sizes[d] + int(cell[d])
		}
		fn(idx)
		d := dims - 1
		for d >= 0 {
			cell[d]++
			if cell[d] <= hi[d] {
				break
			}
			cell[d] = lo[d]
			d--
		}
		if d < 0 {
			return
		}
	}
}

// Random is the random-selection heuristic: a conflicted bucket is assigned
// by choosing uniformly among its distinct candidate disks.
type Random struct {
	Seed int64
}

// Name implements Resolver.
func (Random) Name() string { return "R" }

// Resolve implements Resolver.
func (r Random) Resolve(g Grid, cands []Candidates, disks int) []int {
	rng := rand.New(rand.NewSource(r.Seed))
	assign := make([]int, len(cands))
	for i, c := range cands {
		if len(c.Disks) == 1 {
			assign[i] = c.Disks[0]
			continue
		}
		assign[i] = c.Disks[rng.Intn(len(c.Disks))]
	}
	return assign
}

// MostFrequent chooses the candidate disk that the largest number of the
// bucket's cells map to, falling back to random selection among ties.
type MostFrequent struct {
	Seed int64
}

// Name implements Resolver.
func (MostFrequent) Name() string { return "F" }

// Resolve implements Resolver.
func (m MostFrequent) Resolve(g Grid, cands []Candidates, disks int) []int {
	rng := rand.New(rand.NewSource(m.Seed))
	assign := make([]int, len(cands))
	var tied []int
	for i, c := range cands {
		if len(c.Disks) == 1 {
			assign[i] = c.Disks[0]
			continue
		}
		best := 0
		for _, n := range c.Count {
			if n > best {
				best = n
			}
		}
		tied = tied[:0]
		for j, n := range c.Count {
			if n == best {
				tied = append(tied, c.Disks[j])
			}
		}
		assign[i] = tied[rng.Intn(len(tied))]
	}
	return assign
}

// DataBalance is Algorithm 1: unconflicted buckets are assigned first, then
// each conflicted bucket goes to its candidate disk currently holding the
// fewest buckets, which both minimizes response time and maximizes disk
// space utilization (the paper's recommended heuristic).
type DataBalance struct {
	Seed int64
}

// Name implements Resolver.
func (DataBalance) Name() string { return "D" }

// Resolve implements Resolver.
func (d DataBalance) Resolve(g Grid, cands []Candidates, disks int) []int {
	return balanceResolve(cands, disks, d.Seed, func(i int) float64 { return 1 })
}

// AreaBalance is the area-balance heuristic: like data balance, but it
// equalizes the total domain volume of the bucket regions per disk instead
// of the bucket count.
type AreaBalance struct {
	Seed int64
}

// Name implements Resolver.
func (AreaBalance) Name() string { return "A" }

// Resolve implements Resolver.
func (a AreaBalance) Resolve(g Grid, cands []Candidates, disks int) []int {
	return balanceResolve(cands, disks, a.Seed, func(i int) float64 {
		return g.Buckets[i].Region.Volume()
	})
}

// balanceResolve implements the two-phase structure of Algorithm 1 with a
// pluggable per-bucket weight: phase one assigns unconflicted buckets and
// accumulates their weight; phase two assigns each conflicted bucket to its
// lightest candidate disk (random tie-break, seeded).
func balanceResolve(cands []Candidates, disks int, seed int64, weight func(i int) float64) []int {
	rng := rand.New(rand.NewSource(seed))
	load := make([]float64, disks)
	assign := make([]int, len(cands))

	// Step 2: unconflicted buckets.
	for i, c := range cands {
		if len(c.Disks) == 1 {
			assign[i] = c.Disks[0]
			load[c.Disks[0]] += weight(i)
		} else {
			assign[i] = -1
		}
	}
	// Step 3: conflicted buckets, in bucket order.
	var tied []int
	for i, c := range cands {
		if assign[i] >= 0 {
			continue
		}
		best := load[c.Disks[0]]
		for _, d := range c.Disks[1:] {
			if load[d] < best {
				best = load[d]
			}
		}
		tied = tied[:0]
		for _, d := range c.Disks {
			if load[d] == best {
				tied = append(tied, d)
			}
		}
		choice := tied[rng.Intn(len(tied))]
		assign[i] = choice
		load[choice] += weight(i)
	}
	return assign
}
