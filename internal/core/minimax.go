package core

import (
	"math"
	"math/rand"

	"pgridfile/internal/geom"
	"pgridfile/internal/gridfile"
)

// Weight estimates the probability that two buckets are accessed by the same
// range query; larger means more likely. It is the edge-weight function of
// the proximity-based algorithms.
type Weight func(a, b gridfile.BucketView, domain geom.Rect) float64

// ProximityWeight is the Kamel–Faloutsos proximity index, the paper's chosen
// edge weight for the minimax algorithm.
func ProximityWeight(a, b gridfile.BucketView, domain geom.Rect) float64 {
	return geom.Proximity(a.Region, b.Region, domain)
}

// EuclideanWeight converts center distance into a similarity in (0,1] by
// normalizing against the domain diagonal. The paper rejects center distance
// because it cannot distinguish partially overlapping bucket regions; it is
// kept as the edge-weight ablation (A3 in DESIGN.md).
func EuclideanWeight(a, b gridfile.BucketView, domain geom.Rect) float64 {
	diag := 0.0
	for _, iv := range domain {
		diag += iv.Length() * iv.Length()
	}
	diag = math.Sqrt(diag)
	if diag == 0 {
		return 1
	}
	return 1 - geom.EuclideanDistance(a.Region, b.Region)/diag
}

// Minimax is Algorithm 2: the minimax spanning tree declustering algorithm.
// M spanning trees are seeded with random distinct buckets and grown in
// round-robin order; the tree whose turn it is receives the unassigned
// bucket whose maximum edge weight to the tree's current members is
// smallest. Properties (Section 3.1): O(N²) edge-weight evaluations,
// perfectly balanced partitions (at most ⌈N/M⌉ buckets per disk), and a very
// low likelihood that a bucket shares a disk with its closest companion.
//
// When Weight is nil, ProximityWeight or EuclideanWeight, Decluster runs on
// the parallel pairwise-weight engine (see engine.go); the assignment is
// byte-identical to the serial algorithm for any Workers value. Custom
// weights take the serial reference path.
type Minimax struct {
	// Weight is the edge weight; nil means ProximityWeight.
	Weight Weight
	// WeightName qualifies Name() for non-default weights.
	WeightName string
	// Seed drives the random seeding phase.
	Seed int64
	// Workers bounds the engine's sweep parallelism: 0 (or negative) means
	// GOMAXPROCS, 1 forces single-threaded sweeps. The assignment does not
	// depend on it.
	Workers int
}

// Name implements Allocator.
func (m *Minimax) Name() string {
	if m.WeightName != "" {
		return "MiniMax(" + m.WeightName + ")"
	}
	return "MiniMax"
}

func (m *Minimax) weight() Weight {
	if m.Weight == nil {
		return ProximityWeight
	}
	return m.Weight
}

// Decluster implements Allocator.
func (m *Minimax) Decluster(g Grid, disks int) (Allocation, error) {
	if err := checkArgs(g, disks); err != nil {
		return Allocation{}, err
	}
	n := len(g.Buckets)
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}

	if disks >= n {
		// Degenerate case: every bucket gets its own disk.
		for i := range assign {
			assign[i] = i
		}
		return Allocation{Disks: disks, Assign: assign}, nil
	}

	// Phase 1: random seeding with M mutually distinct vertices.
	rng := rand.New(rand.NewSource(m.Seed))
	seeds := permPrefix(rng, n, disks)
	for k, v := range seeds {
		assign[v] = k
	}

	if e := NewPairEngine(g, m.Weight, m.Workers); e != nil {
		defer e.Close()
		m.declusterEngine(e, seeds, assign, disks)
		return Allocation{Disks: disks, Assign: assign}, nil
	}
	m.declusterSlow(g, seeds, assign, disks)
	return Allocation{Disks: disks, Assign: assign}, nil
}

// declusterEngine is Phase 2 on the pairwise-weight engine. The selection
// arg-min for the next tree in the round-robin order is maintained
// incrementally: it is computed during the update sweep of the current tree
// (which must touch every unassigned vertex anyway), so each step costs one
// sharded O(N) sweep instead of two serial ones.
func (m *Minimax) declusterEngine(e *PairEngine, seeds []int, assign []int, disks int) {
	n := e.n
	act := newActiveSet(assign)
	// maxTo[k*n+x] is MAX_x(k), laid out row-major per tree so each step's
	// sweep walks two contiguous rows.
	maxTo := make([]float64, disks*n)
	bestX, _ := e.initRows(seeds, act.list, maxTo, 0)
	k := 0
	for {
		assign[bestX] = k
		act.remove(bestX)
		if len(act.list) == 0 {
			return
		}
		next := k + 1
		if next == disks {
			next = 0
		}
		// Update tree k's row against its new member while selecting the
		// arg-min of tree next's row. For disks == 1 the two rows coincide;
		// stepMinimax updates each entry before reading it, matching the
		// serial update-then-select order.
		bestX, _ = e.stepMinimax(bestX, act.list,
			maxTo[k*n:(k+1)*n], maxTo[next*n:(next+1)*n])
		k = next
	}
}

// declusterSlow is the serial reference Phase 2, kept for custom Weight
// functions (which may be neither pure nor safe to call concurrently).
func (m *Minimax) declusterSlow(g Grid, seeds []int, assign []int, disks int) {
	n := len(g.Buckets)
	w := m.weight()

	// maxTo[x*disks+k] is MAX_x(k): the largest edge weight between
	// unassigned vertex x and the members of tree k.
	maxTo := make([]float64, n*disks)
	for x := 0; x < n; x++ {
		if assign[x] >= 0 {
			continue
		}
		for k, v := range seeds {
			maxTo[x*disks+k] = w(g.Buckets[x], g.Buckets[v], g.Domain)
		}
	}

	// Phase 2: round-robin expansion.
	remaining := n - disks
	k := 0
	for remaining > 0 {
		// Select the unassigned vertex with the smallest MAX to tree k.
		best, bestVal := -1, math.Inf(1)
		for x := 0; x < n; x++ {
			if assign[x] >= 0 {
				continue
			}
			if v := maxTo[x*disks+k]; v < bestVal {
				best, bestVal = x, v
			}
		}
		assign[best] = k
		remaining--

		// Update MAX_x(k) for the remaining vertices.
		for x := 0; x < n; x++ {
			if assign[x] >= 0 {
				continue
			}
			if c := w(g.Buckets[best], g.Buckets[x], g.Domain); c > maxTo[x*disks+k] {
				maxTo[x*disks+k] = c
			}
		}
		k++
		if k == disks {
			k = 0
		}
	}
}
