package core

import (
	"math"
	"math/rand"
)

// SSP is the short spanning path algorithm of Fang, Lee and Chang,
// reconstructed as described in DESIGN.md: a spanning path is grown greedily
// by repeatedly stepping to the unvisited bucket most similar to the path's
// current endpoint (the nearest-neighbour heuristic for short spanning
// paths), and disks are assigned round-robin along the path so that
// neighbouring — hence similar — buckets land on different disks. Cost is
// O(N²) edge-weight evaluations. Partitions are balanced to within one
// bucket, but unlike minimax the path heuristic bounds only each bucket's
// similarity to its path predecessor, not to the whole partition.
type SSP struct {
	// Weight is the edge weight; nil means ProximityWeight.
	Weight Weight
	// Seed selects the path's starting bucket.
	Seed int64
}

// Name implements Allocator.
func (s *SSP) Name() string { return "SSP" }

func (s *SSP) weight() Weight {
	if s.Weight == nil {
		return ProximityWeight
	}
	return s.Weight
}

// Decluster implements Allocator.
func (s *SSP) Decluster(g Grid, disks int) (Allocation, error) {
	if err := checkArgs(g, disks); err != nil {
		return Allocation{}, err
	}
	n := len(g.Buckets)
	w := s.weight()
	rng := rand.New(rand.NewSource(s.Seed))

	visited := make([]bool, n)
	order := make([]int, 0, n)
	cur := rng.Intn(n)
	visited[cur] = true
	order = append(order, cur)
	for len(order) < n {
		best, bestVal := -1, math.Inf(-1)
		for x := 0; x < n; x++ {
			if visited[x] {
				continue
			}
			if v := w(g.Buckets[cur], g.Buckets[x], g.Domain); v > bestVal {
				best, bestVal = x, v
			}
		}
		visited[best] = true
		order = append(order, best)
		cur = best
	}

	assign := make([]int, n)
	for pos, v := range order {
		assign[v] = pos % disks
	}
	return Allocation{Disks: disks, Assign: assign}, nil
}

// MST is the minimal-spanning-tree-based declustering of Fang et al.,
// reconstructed as the direct greedy analogue of minimax: M trees are seeded
// randomly and, at every step, the globally cheapest tree/vertex pair — the
// unassigned bucket with the smallest *minimum* edge weight to some tree
// (Prim's criterion) — is joined to that tree. Because growth is greedy
// rather than round-robin, a tree sitting in a sparse region can absorb many
// buckets: MST does not guarantee balanced partitions, the drawback the
// paper cites. Cost is O(N²·M).
type MST struct {
	// Weight is the edge weight; nil means ProximityWeight.
	Weight Weight
	// Seed drives the random seeding phase.
	Seed int64
}

// Name implements Allocator.
func (m *MST) Name() string { return "MST" }

func (m *MST) weight() Weight {
	if m.Weight == nil {
		return ProximityWeight
	}
	return m.Weight
}

// Decluster implements Allocator.
func (m *MST) Decluster(g Grid, disks int) (Allocation, error) {
	if err := checkArgs(g, disks); err != nil {
		return Allocation{}, err
	}
	n := len(g.Buckets)
	w := m.weight()
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	if disks >= n {
		for i := range assign {
			assign[i] = i
		}
		return Allocation{Disks: disks, Assign: assign}, nil
	}

	rng := rand.New(rand.NewSource(m.Seed))
	seeds := rng.Perm(n)[:disks]
	for k, v := range seeds {
		assign[v] = k
	}

	// minTo[x*disks+k] is the smallest edge weight between unassigned x and
	// tree k (Prim's frontier value per tree).
	minTo := make([]float64, n*disks)
	for x := 0; x < n; x++ {
		if assign[x] >= 0 {
			continue
		}
		for k, v := range seeds {
			minTo[x*disks+k] = w(g.Buckets[x], g.Buckets[v], g.Domain)
		}
	}

	for remaining := n - disks; remaining > 0; remaining-- {
		bestX, bestK, bestVal := -1, -1, math.Inf(1)
		for x := 0; x < n; x++ {
			if assign[x] >= 0 {
				continue
			}
			for k := 0; k < disks; k++ {
				if v := minTo[x*disks+k]; v < bestVal {
					bestX, bestK, bestVal = x, k, v
				}
			}
		}
		assign[bestX] = bestK
		for x := 0; x < n; x++ {
			if assign[x] >= 0 {
				continue
			}
			if c := w(g.Buckets[bestX], g.Buckets[x], g.Domain); c < minTo[x*disks+bestK] {
				minTo[x*disks+bestK] = c
			}
		}
	}
	return Allocation{Disks: disks, Assign: assign}, nil
}
