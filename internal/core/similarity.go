package core

import (
	"math"
	"math/rand"
)

// SSP is the short spanning path algorithm of Fang, Lee and Chang,
// reconstructed as described in DESIGN.md: a spanning path is grown greedily
// by repeatedly stepping to the unvisited bucket most similar to the path's
// current endpoint (the nearest-neighbour heuristic for short spanning
// paths), and disks are assigned round-robin along the path so that
// neighbouring — hence similar — buckets land on different disks. Cost is
// O(N²) edge-weight evaluations. Partitions are balanced to within one
// bucket, but unlike minimax the path heuristic bounds only each bucket's
// similarity to its path predecessor, not to the whole partition.
//
// Built-in weights run on the pairwise-weight engine with deterministic
// output for any Workers value; custom weights take the serial path.
type SSP struct {
	// Weight is the edge weight; nil means ProximityWeight.
	Weight Weight
	// Seed selects the path's starting bucket.
	Seed int64
	// Workers bounds the engine's sweep parallelism: 0 (or negative) means
	// GOMAXPROCS, 1 forces single-threaded sweeps.
	Workers int
}

// Name implements Allocator.
func (s *SSP) Name() string { return "SSP" }

func (s *SSP) weight() Weight {
	if s.Weight == nil {
		return ProximityWeight
	}
	return s.Weight
}

// Decluster implements Allocator.
func (s *SSP) Decluster(g Grid, disks int) (Allocation, error) {
	if err := checkArgs(g, disks); err != nil {
		return Allocation{}, err
	}
	n := len(g.Buckets)
	rng := rand.New(rand.NewSource(s.Seed))
	start := rng.Intn(n)

	order := make([]int, 0, n)
	order = append(order, start)

	if e := NewPairEngine(g, s.Weight, s.Workers); e != nil {
		defer e.Close()
		act := newActiveSetAll(n)
		act.remove(int32(start))
		cur := int32(start)
		for len(act.list) > 0 {
			best, _ := e.argmaxTo(cur, act.list)
			act.remove(best)
			order = append(order, int(best))
			cur = best
		}
	} else {
		w := s.weight()
		visited := make([]bool, n)
		visited[start] = true
		cur := start
		for len(order) < n {
			best, bestVal := -1, math.Inf(-1)
			for x := 0; x < n; x++ {
				if visited[x] {
					continue
				}
				if v := w(g.Buckets[cur], g.Buckets[x], g.Domain); v > bestVal {
					best, bestVal = x, v
				}
			}
			visited[best] = true
			order = append(order, best)
			cur = best
		}
	}

	assign := make([]int, n)
	for pos, v := range order {
		assign[v] = pos % disks
	}
	return Allocation{Disks: disks, Assign: assign}, nil
}

// MST is the minimal-spanning-tree-based declustering of Fang et al.,
// reconstructed as the direct greedy analogue of minimax: M trees are seeded
// randomly and, at every step, the globally cheapest tree/vertex pair — the
// unassigned bucket with the smallest *minimum* edge weight to some tree
// (Prim's criterion) — is joined to that tree. Because growth is greedy
// rather than round-robin, a tree sitting in a sparse region can absorb many
// buckets: MST does not guarantee balanced partitions, the drawback the
// paper cites. Cost is O(N²·M).
//
// Built-in weights run on the pairwise-weight engine with deterministic
// output for any Workers value; custom weights take the serial path.
type MST struct {
	// Weight is the edge weight; nil means ProximityWeight.
	Weight Weight
	// Seed drives the random seeding phase.
	Seed int64
	// Workers bounds the engine's sweep parallelism: 0 (or negative) means
	// GOMAXPROCS, 1 forces single-threaded sweeps.
	Workers int
}

// Name implements Allocator.
func (m *MST) Name() string { return "MST" }

func (m *MST) weight() Weight {
	if m.Weight == nil {
		return ProximityWeight
	}
	return m.Weight
}

// Decluster implements Allocator.
func (m *MST) Decluster(g Grid, disks int) (Allocation, error) {
	if err := checkArgs(g, disks); err != nil {
		return Allocation{}, err
	}
	n := len(g.Buckets)
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	if disks >= n {
		for i := range assign {
			assign[i] = i
		}
		return Allocation{Disks: disks, Assign: assign}, nil
	}

	rng := rand.New(rand.NewSource(m.Seed))
	seeds := permPrefix(rng, n, disks)
	for k, v := range seeds {
		assign[v] = k
	}

	if e := NewPairEngine(g, m.Weight, m.Workers); e != nil {
		defer e.Close()
		m.declusterEngine(e, seeds, assign, disks)
		return Allocation{Disks: disks, Assign: assign}, nil
	}
	m.declusterSlow(g, seeds, assign, disks)
	return Allocation{Disks: disks, Assign: assign}, nil
}

// declusterEngine runs the greedy expansion on the pairwise-weight engine
// with per-tree cached arg-mins: each step picks the globally cheapest
// cached (value, x, k) triple, min-merges only the winning tree's row
// against its new member (recomputing that cached arg-min in the same
// sweep), and rescans — without any weight evaluations — the rows of trees
// whose cached arg-min was the vertex just removed. The serial reference
// rescans every tree's full row each step.
func (m *MST) declusterEngine(e *PairEngine, seeds []int, assign []int, disks int) {
	n := e.n
	act := newActiveSet(assign)
	// minTo[k*n+x] is Prim's frontier value of vertex x for tree k.
	minTo := make([]float64, disks*n)
	bestXk := make([]int32, disks)
	bestVk := make([]float64, disks)
	bestXk[0], bestVk[0] = e.initRows(seeds, act.list, minTo, 0)
	for k := 1; k < disks; k++ {
		bestXk[k], bestVk[k] = e.argminRow(minTo[k*n:(k+1)*n], act.list)
	}
	for {
		// Global pick over the cached per-tree arg-mins, lexicographic on
		// (value, vertex, tree) — the order the serial x-outer/k-inner scan
		// with strict < discovers minima in.
		bestK := 0
		for k := 1; k < disks; k++ {
			if bestVk[k] < bestVk[bestK] ||
				(bestVk[k] == bestVk[bestK] && bestXk[k] < bestXk[bestK]) {
				bestK = k
			}
		}
		bestX := bestXk[bestK]
		assign[bestX] = bestK
		act.remove(bestX)
		if len(act.list) == 0 {
			return
		}
		bestXk[bestK], bestVk[bestK] = e.stepMST(bestX, act.list,
			minTo[bestK*n:(bestK+1)*n])
		// Other trees' rows are unchanged and the active set only shrank, so
		// their cached arg-mins stay valid unless they pointed at bestX.
		for k := 0; k < disks; k++ {
			if k != bestK && bestXk[k] == bestX {
				bestXk[k], bestVk[k] = e.argminRow(minTo[k*n:(k+1)*n], act.list)
			}
		}
	}
}

// declusterSlow is the serial reference expansion, kept for custom Weight
// functions (which may be neither pure nor safe to call concurrently).
func (m *MST) declusterSlow(g Grid, seeds []int, assign []int, disks int) {
	n := len(g.Buckets)
	w := m.weight()

	// minTo[x*disks+k] is the smallest edge weight between unassigned x and
	// tree k (Prim's frontier value per tree).
	minTo := make([]float64, n*disks)
	for x := 0; x < n; x++ {
		if assign[x] >= 0 {
			continue
		}
		for k, v := range seeds {
			minTo[x*disks+k] = w(g.Buckets[x], g.Buckets[v], g.Domain)
		}
	}

	for remaining := n - disks; remaining > 0; remaining-- {
		bestX, bestK, bestVal := -1, -1, math.Inf(1)
		for x := 0; x < n; x++ {
			if assign[x] >= 0 {
				continue
			}
			for k := 0; k < disks; k++ {
				if v := minTo[x*disks+k]; v < bestVal {
					bestX, bestK, bestVal = x, k, v
				}
			}
		}
		assign[bestX] = bestK
		for x := 0; x < n; x++ {
			if assign[x] >= 0 {
				continue
			}
			if c := w(g.Buckets[bestX], g.Buckets[x], g.Domain); c < minTo[x*disks+bestK] {
				minTo[x*disks+bestK] = c
			}
		}
	}
}
