package core

import (
	"fmt"

	"pgridfile/internal/geom"
)

// MaxExhaustiveBuckets bounds the Exhaustive allocator's search: beyond
// this, the assignment space is too large to enumerate.
const MaxExhaustiveBuckets = 16

// Exhaustive finds a workload-optimal allocation by branch-and-bound over
// all disk assignments, for tiny instances (N ≤ MaxExhaustiveBuckets). The
// objective is the exact total response time Σ_q max_d N_d(q) over the
// given workload. It exists to measure how close the heuristics come to
// the true optimum — the paper can only say minimax is "probably quite
// close to the optimal distribution"; on small instances this closes the
// question exactly.
//
// Symmetry reduction: disk labels are interchangeable, so bucket i may only
// use disks 0..min(i, M-1)+... specifically a new disk label is opened only
// in order, which divides the search space by up to M!.
type Exhaustive struct {
	// Queries is the workload defining the objective. Required.
	Queries []geom.Rect
}

// Name implements Allocator.
func (e *Exhaustive) Name() string { return "Exhaustive" }

// Decluster implements Allocator.
func (e *Exhaustive) Decluster(g Grid, disks int) (Allocation, error) {
	if err := checkArgs(g, disks); err != nil {
		return Allocation{}, err
	}
	n := len(g.Buckets)
	if n > MaxExhaustiveBuckets {
		return Allocation{}, fmt.Errorf("core: Exhaustive handles at most %d buckets, got %d",
			MaxExhaustiveBuckets, n)
	}
	if len(e.Queries) == 0 {
		return Allocation{}, fmt.Errorf("core: Exhaustive needs a workload")
	}

	// Incidence: which buckets each query touches.
	var incidence [][]int
	for _, q := range e.Queries {
		var hit []int
		for i := range g.Buckets {
			if g.Buckets[i].Region.Intersects(q) {
				hit = append(hit, i)
			}
		}
		if len(hit) > 0 {
			incidence = append(incidence, hit)
		}
	}
	if len(incidence) == 0 {
		// No query touches anything: any assignment is optimal.
		assign := make([]int, n)
		for i := range assign {
			assign[i] = i % disks
		}
		return Allocation{Disks: disks, Assign: assign}, nil
	}

	// touchedBy[i] lists the incidence rows containing bucket i, so the
	// running per-query disk counts update incrementally.
	touchedBy := make([][]int, n)
	for qi, hit := range incidence {
		for _, b := range hit {
			touchedBy[b] = append(touchedBy[b], qi)
		}
	}

	// Running per-query disk counts, per-query maxima and their total: the
	// partial objective. The objective never decreases as buckets are
	// assigned (maxima only grow), so `total >= best` prunes the subtree.
	counts := make([][]int16, len(incidence))
	curMax := make([]int16, len(incidence))
	for qi := range counts {
		counts[qi] = make([]int16, disks)
	}
	var total int64

	place := func(b, d int) {
		for _, qi := range touchedBy[b] {
			c := counts[qi]
			c[d]++
			if c[d] > curMax[qi] {
				total += int64(c[d] - curMax[qi])
				curMax[qi] = c[d]
			}
		}
	}
	unplace := func(b, d int) {
		for _, qi := range touchedBy[b] {
			c := counts[qi]
			c[d]--
			if c[d]+1 == curMax[qi] {
				// The decremented disk may have been the unique maximum.
				var m int16
				for _, v := range c {
					if v > m {
						m = v
					}
				}
				total -= int64(curMax[qi] - m)
				curMax[qi] = m
			}
		}
	}

	best := int64(1) << 62
	bestAssign := make([]int, n)
	assign := make([]int, n)

	var rec func(i, maxDiskUsed int)
	rec = func(i, maxDiskUsed int) {
		if total >= best {
			return
		}
		if i == n {
			best = total
			copy(bestAssign, assign)
			return
		}
		// Symmetry: the next bucket may reuse any opened disk or open the
		// next fresh label.
		limit := maxDiskUsed + 1
		if limit >= disks {
			limit = disks - 1
		}
		for d := 0; d <= limit; d++ {
			assign[i] = d
			place(i, d)
			next := maxDiskUsed
			if d > next {
				next = d
			}
			rec(i+1, next)
			unplace(i, d)
		}
	}
	rec(0, -1)
	return Allocation{Disks: disks, Assign: bestAssign}, nil
}
