package core

import (
	"fmt"
	"math"
)

// This file implements residual allocation: declustering a grid a second (or
// r-th) time against the copies that already exist. It is the scoring core of
// the replica placer (internal/replica): given the owner disks every bucket
// already has, assign each bucket ONE more disk so that
//
//   - the new disk is distinct from all existing owners of that bucket
//     (a replica on the same spindle buys no availability),
//   - buckets that are spatially close to copies already on a disk avoid
//     that disk (minimax criterion over the pairwise weight), so the
//     secondary layout declusters well on its own, and
//   - the per-disk load of the new level stays balanced (at most ⌈N/M⌉
//     buckets per disk, relaxed only if the distinct-disk constraint forces
//     it).
//
// The algorithm is the minimax round-robin expansion of minimax.go with two
// changes: the per-disk rows are seeded from the EXISTING copies instead of
// from fresh random seeds (so level r sees levels 0..r−1), and each disk's
// selection skips buckets it already owns. Selection ties break to the
// lowest bucket index and the row maintenance runs on the pairwise-weight
// engine, so the output is byte-identical for any Workers value.

// ResidualAssign computes the next replica level: one additional disk per
// bucket, distinct from that bucket's existing owners. owners[x] lists the
// disks that already hold a copy of bucket x (at least one, all in
// [0, disks)); the returned slice has one new disk per bucket. w selects the
// edge weight (nil means ProximityWeight); workers bounds the engine's sweep
// parallelism exactly as in Minimax and does not affect the result.
func ResidualAssign(g Grid, disks int, owners [][]int, w Weight, workers int) ([]int, error) {
	if err := checkArgs(g, disks); err != nil {
		return nil, err
	}
	n := len(g.Buckets)
	if len(owners) != n {
		return nil, fmt.Errorf("core: residual owners cover %d buckets, want %d", len(owners), n)
	}
	for x, own := range owners {
		if len(own) == 0 {
			return nil, fmt.Errorf("core: bucket %d has no existing owner", x)
		}
		if len(own) >= disks {
			return nil, fmt.Errorf("core: bucket %d already owned by %d of %d disks", x, len(own), disks)
		}
		for _, k := range own {
			if k < 0 || k >= disks {
				return nil, fmt.Errorf("core: bucket %d owned by disk %d of %d", x, k, disks)
			}
		}
	}

	rows := make([]float64, disks*n)
	var merge func(newMember int32, active []int32, row []float64)
	if e := NewPairEngine(g, w, workers); e != nil {
		defer e.Close()
		e.initResidualRows(owners, rows)
		merge = func(newMember int32, active []int32, row []float64) {
			e.maxInto(newMember, active, row)
		}
	} else {
		// Custom weight: serial reference path, like declusterSlow.
		wf := w
		if wf == nil {
			wf = ProximityWeight
		}
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				v := wf(g.Buckets[y], g.Buckets[x], g.Domain)
				for _, k := range owners[y] {
					if v > rows[k*n+x] {
						rows[k*n+x] = v
					}
				}
			}
		}
		merge = func(newMember int32, active []int32, row []float64) {
			for _, x := range active {
				if v := wf(g.Buckets[newMember], g.Buckets[x], g.Domain); v > row[x] {
					row[x] = v
				}
			}
		}
	}

	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	act := newActiveSet(assign)
	quota := (n + disks - 1) / disks
	loads := make([]int, disks)

	// Round-robin expansion under the distinct-disk constraint. A disk at
	// quota, or with no eligible bucket left, passes its turn; when a full
	// cycle makes no progress the quota is relaxed for the leftover pass.
	remaining := n
	stalled := 0
	for k := 0; remaining > 0 && stalled < disks; k = (k + 1) % disks {
		if loads[k] >= quota {
			stalled++
			continue
		}
		row := rows[k*n : (k+1)*n]
		best, bestVal := int32(-1), math.Inf(1)
		for _, x := range act.list {
			if ownedBy(owners[x], k) {
				continue
			}
			if v := row[x]; v < bestVal || (v == bestVal && x < best) {
				best, bestVal = x, v
			}
		}
		if best < 0 {
			stalled++
			continue
		}
		stalled = 0
		assign[best] = k
		loads[k]++
		act.remove(best)
		remaining--
		if remaining > 0 {
			merge(best, act.list, row)
		}
	}

	// Leftover pass: the distinct-disk constraint starved the round-robin.
	// Assign the stragglers in index order to their least-loaded eligible
	// disk (ties to the lowest disk index) with the quota relaxed.
	if remaining > 0 {
		for x := 0; x < n; x++ {
			if assign[x] >= 0 {
				continue
			}
			best := -1
			for k := 0; k < disks; k++ {
				if ownedBy(owners[x], k) {
					continue
				}
				if best < 0 || loads[k] < loads[best] {
					best = k
				}
			}
			assign[x] = best
			loads[best]++
		}
	}
	return assign, nil
}

func ownedBy(owners []int, disk int) bool {
	for _, k := range owners {
		if k == disk {
			return true
		}
	}
	return false
}
