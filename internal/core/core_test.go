package core

import (
	"testing"

	"pgridfile/internal/geom"
	"pgridfile/internal/gridfile"
	"pgridfile/internal/synth"
	"pgridfile/internal/workload"
)

// testGrid builds the declustering view of a small hot.2d grid file.
func testGrid(t *testing.T) Grid {
	t.Helper()
	f, err := synth.Hotspot2D(3000, 5).Build()
	if err != nil {
		t.Fatal(err)
	}
	return FromGridFile(f)
}

// cartesianGrid builds a complete sx×sy Cartesian view.
func cartesianGrid(t *testing.T, sizes []int) Grid {
	t.Helper()
	lo := make([]float64, len(sizes))
	hi := make([]float64, len(sizes))
	for i, s := range sizes {
		hi[i] = float64(s)
	}
	c, err := gridfile.NewCartesian(sizes, geom.NewRect(lo, hi))
	if err != nil {
		t.Fatal(err)
	}
	return FromCartesian(c)
}

func TestDMCellDisks(t *testing.T) {
	disks := DM{}.CellDisks([]int{3, 4}, 5)
	// Row-major: cell (i,j) at index i*4+j must map to (i+j)%5.
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if got, want := disks[i*4+j], (i+j)%5; got != want {
				t.Errorf("DM cell (%d,%d) -> %d, want %d", i, j, got, want)
			}
		}
	}
}

func TestFXCellDisks(t *testing.T) {
	disks := FX{}.CellDisks([]int{4, 4}, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if got, want := disks[i*4+j], (i^j)%4; got != want {
				t.Errorf("FX cell (%d,%d) -> %d, want %d", i, j, got, want)
			}
		}
	}
}

func TestFXOptimalOnPowerOfTwoRows(t *testing.T) {
	// With M = grid side = power of two, FX assigns every row and every
	// column a permutation of all disks (its partial-match optimality).
	const m = 8
	disks := FX{}.CellDisks([]int{m, m}, m)
	for i := 0; i < m; i++ {
		rowSeen := make([]bool, m)
		colSeen := make([]bool, m)
		for j := 0; j < m; j++ {
			rowSeen[disks[i*m+j]] = true
			colSeen[disks[j*m+i]] = true
		}
		for d := 0; d < m; d++ {
			if !rowSeen[d] || !colSeen[d] {
				t.Fatalf("FX row/col %d misses disk %d", i, d)
			}
		}
	}
}

func TestHCAMRoundRobinAlongCurve(t *testing.T) {
	// On a power-of-two grid the Hilbert rank equals the key order, and
	// round-robin means the multiset of disks is perfectly even.
	disks := HCAM().CellDisks([]int{8, 8}, 4)
	counts := make([]int, 4)
	for _, d := range disks {
		counts[d]++
	}
	for d, c := range counts {
		if c != 16 {
			t.Errorf("HCAM disk %d has %d cells, want 16", d, c)
		}
	}
}

func TestHCAMNonPowerOfTwoGrid(t *testing.T) {
	// Grid sides 5x3: ranks must still hand out disks round-robin evenly.
	disks := HCAM().CellDisks([]int{5, 3}, 4)
	if len(disks) != 15 {
		t.Fatalf("got %d cells", len(disks))
	}
	counts := make([]int, 4)
	for _, d := range disks {
		counts[d]++
	}
	// 15 cells over 4 disks: loads 4,4,4,3 in some order.
	max, min := 0, 99
	for _, c := range counts {
		if c > max {
			max = c
		}
		if c < min {
			min = c
		}
	}
	if max-min > 1 {
		t.Errorf("HCAM round-robin loads uneven: %v", counts)
	}
}

func TestBucketCandidatesOnCartesian(t *testing.T) {
	g := cartesianGrid(t, []int{4, 4})
	cellDisks := DM{}.CellDisks(g.Sizes, 3)
	cands := bucketCandidates(g, cellDisks, 3)
	if len(cands) != 16 {
		t.Fatalf("got %d candidate sets", len(cands))
	}
	for i, c := range cands {
		if len(c.Disks) != 1 || c.Count[0] != 1 {
			t.Errorf("cartesian bucket %d has candidates %v", i, c)
		}
	}
}

func TestIndexBasedOnGridFileAllResolvers(t *testing.T) {
	g := testGrid(t)
	for _, scheme := range []string{"DM", "FX", "HCAM"} {
		for _, res := range []string{"R", "F", "D", "A"} {
			ib, err := NewIndexBased(scheme, res, 42)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range []int{4, 7, 16, 32} {
				alloc, err := ib.Decluster(g, m)
				if err != nil {
					t.Fatalf("%s m=%d: %v", ib.Name(), m, err)
				}
				if err := alloc.Validate(len(g.Buckets)); err != nil {
					t.Fatalf("%s m=%d: %v", ib.Name(), m, err)
				}
			}
		}
	}
}

func TestIndexBasedDeterministic(t *testing.T) {
	g := testGrid(t)
	ib1, _ := NewIndexBased("FX", "D", 7)
	ib2, _ := NewIndexBased("FX", "D", 7)
	a1, err := ib1.Decluster(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := ib2.Decluster(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a1.Assign {
		if a1.Assign[i] != a2.Assign[i] {
			t.Fatalf("same seed diverged at bucket %d", i)
		}
	}
}

func TestSingleCandidateBucketsKeepMandatedDisk(t *testing.T) {
	// On a Cartesian grid every bucket is unconflicted, so every resolver
	// must reproduce the raw scheme exactly.
	g := cartesianGrid(t, []int{6, 6})
	want := DM{}.CellDisks(g.Sizes, 4)
	for _, res := range []string{"R", "F", "D", "A"} {
		ib, _ := NewIndexBased("DM", res, 3)
		alloc, err := ib.Decluster(g, 4)
		if err != nil {
			t.Fatal(err)
		}
		for i, d := range alloc.Assign {
			if d != want[i] {
				t.Fatalf("resolver %s moved unconflicted bucket %d: %d != %d", res, i, d, want[i])
			}
		}
	}
}

func TestDataBalanceImprovesLoadSpread(t *testing.T) {
	g := testGrid(t)
	spread := func(resolver string) int {
		ib, _ := NewIndexBased("FX", resolver, 11)
		alloc, err := ib.Decluster(g, 16)
		if err != nil {
			t.Fatal(err)
		}
		loads := alloc.DiskLoads()
		max, min := loads[0], loads[0]
		for _, l := range loads {
			if l > max {
				max = l
			}
			if l < min {
				min = l
			}
		}
		return max - min
	}
	if d, r := spread("D"), spread("R"); d > r {
		t.Errorf("data balance spread %d worse than random %d", d, r)
	}
}

func TestMinimaxPerfectBalance(t *testing.T) {
	g := testGrid(t)
	n := len(g.Buckets)
	for _, m := range []int{3, 4, 7, 16, 31, 32} {
		alloc, err := (&Minimax{Seed: 1}).Decluster(g, m)
		if err != nil {
			t.Fatal(err)
		}
		if err := alloc.Validate(n); err != nil {
			t.Fatal(err)
		}
		ceil := (n + m - 1) / m
		for d, l := range alloc.DiskLoads() {
			if l > ceil {
				t.Fatalf("m=%d: disk %d holds %d buckets, bound %d", m, d, l, ceil)
			}
		}
	}
}

func TestMinimaxMoreDisksThanBuckets(t *testing.T) {
	g := cartesianGrid(t, []int{2, 2})
	alloc, err := (&Minimax{Seed: 1}).Decluster(g, 9)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for _, d := range alloc.Assign {
		if seen[d] {
			t.Fatal("two buckets share a disk despite disks > buckets")
		}
		seen[d] = true
	}
}

func TestMinimaxSeparatesAdjacentCells(t *testing.T) {
	// On a 1-D line of cells with proximity weights, minimax must not
	// co-locate immediate neighbours when there are enough disks.
	g := cartesianGrid(t, []int{12})
	alloc, err := (&Minimax{Seed: 3}).Decluster(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := 0; i+1 < 12; i++ {
		if alloc.Assign[i] == alloc.Assign[i+1] {
			same++
		}
	}
	if same > 1 {
		t.Errorf("%d adjacent 1-D cell pairs share a disk", same)
	}
}

func TestSSPBalancedWithinOne(t *testing.T) {
	g := testGrid(t)
	alloc, err := (&SSP{Seed: 2}).Decluster(g, 10)
	if err != nil {
		t.Fatal(err)
	}
	loads := alloc.DiskLoads()
	max, min := loads[0], loads[0]
	for _, l := range loads {
		if l > max {
			max = l
		}
		if l < min {
			min = l
		}
	}
	if max-min > 1 {
		t.Errorf("SSP round-robin loads differ by %d: %v", max-min, loads)
	}
}

func TestMSTCanBeUnbalanced(t *testing.T) {
	// MST's greedy growth has no balance guarantee; on a skewed dataset
	// with several disks some imbalance should appear (this documents the
	// drawback the paper cites — it is MST's behaviour, not a bug).
	g := testGrid(t)
	alloc, err := (&MST{Seed: 2}).Decluster(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := alloc.Validate(len(g.Buckets)); err != nil {
		t.Fatal(err)
	}
	loads := alloc.DiskLoads()
	max, min := loads[0], loads[0]
	for _, l := range loads {
		if l > max {
			max = l
		}
		if l < min {
			min = l
		}
	}
	ceil := (len(g.Buckets) + 7) / 8
	if max <= ceil {
		t.Logf("note: MST happened to balance (max=%d, ceil=%d); no assertion failure", max, ceil)
	}
}

func TestAllocatorsRejectBadArgs(t *testing.T) {
	g := testGrid(t)
	empty := Grid{Sizes: []int{2, 2}, Domain: g.Domain}
	allocs := []Allocator{
		mustIndexBased("DM", "D", 1),
		&Minimax{Seed: 1},
		&SSP{Seed: 1},
		&MST{Seed: 1},
	}
	for _, a := range allocs {
		if _, err := a.Decluster(g, 0); err == nil {
			t.Errorf("%s accepted 0 disks", a.Name())
		}
		if _, err := a.Decluster(empty, 4); err == nil {
			t.Errorf("%s accepted empty grid", a.Name())
		}
	}
}

func TestRegistryRejectsUnknown(t *testing.T) {
	if _, err := NewIndexBased("nope", "D", 1); err == nil {
		t.Error("unknown scheme accepted")
	}
	if _, err := NewIndexBased("DM", "?", 1); err == nil {
		t.Error("unknown resolver accepted")
	}
}

func TestLineups(t *testing.T) {
	if got := len(Figure4Lineup(1)); got != 3 {
		t.Errorf("Figure4Lineup has %d algorithms", got)
	}
	lineup := Figure6Lineup(1)
	if got := len(lineup); got != 5 {
		t.Errorf("Figure6Lineup has %d algorithms", got)
	}
	wantNames := []string{"DM/D", "FX/D", "HCAM/D", "SSP", "MiniMax"}
	for i, a := range lineup {
		if a.Name() != wantNames[i] {
			t.Errorf("lineup[%d] = %s, want %s", i, a.Name(), wantNames[i])
		}
	}
	rl, err := ResolverLineup("FX", 1)
	if err != nil || len(rl) != 4 {
		t.Errorf("ResolverLineup: %v, %d entries", err, len(rl))
	}
}

func TestWeights(t *testing.T) {
	g := testGrid(t)
	a, b := g.Buckets[0], g.Buckets[len(g.Buckets)/2]
	p := ProximityWeight(a, b, g.Domain)
	if p < 0 || p > 1 {
		t.Errorf("ProximityWeight out of range: %v", p)
	}
	e := EuclideanWeight(a, b, g.Domain)
	if e < 0 || e > 1 {
		t.Errorf("EuclideanWeight out of range: %v", e)
	}
	if ew := EuclideanWeight(a, a, g.Domain); ew != 1 {
		t.Errorf("EuclideanWeight self = %v, want 1", ew)
	}
}

func TestMinimaxWithEuclideanWeight(t *testing.T) {
	g := testGrid(t)
	mm := &Minimax{Weight: EuclideanWeight, WeightName: "euclid", Seed: 1}
	if mm.Name() != "MiniMax(euclid)" {
		t.Errorf("Name = %s", mm.Name())
	}
	alloc, err := mm.Decluster(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := alloc.Validate(len(g.Buckets)); err != nil {
		t.Fatal(err)
	}
}

func TestConflictStats(t *testing.T) {
	// Cartesian grid: no merged buckets, hence no conflicts.
	cg := cartesianGrid(t, []int{6, 6})
	st := Conflicts(cg, DM{}, 4)
	if st.Conflicted != 0 || st.MaxCandidates != 1 {
		t.Errorf("cartesian conflicts = %+v", st)
	}
	if st.MeanCandidates != 1 {
		t.Errorf("cartesian mean candidates = %v", st.MeanCandidates)
	}
	// Skewed grid file: many merged buckets conflict.
	g := testGrid(t)
	st = Conflicts(g, DM{}, 16)
	if st.Buckets != len(g.Buckets) {
		t.Errorf("Buckets = %d, want %d", st.Buckets, len(g.Buckets))
	}
	if st.Conflicted == 0 {
		t.Error("no conflicts on a skewed grid file")
	}
	if st.MaxCandidates < 2 {
		t.Errorf("MaxCandidates = %d", st.MaxCandidates)
	}
	if st.MeanCandidates <= 1 {
		t.Errorf("MeanCandidates = %v", st.MeanCandidates)
	}
}

func BenchmarkMinimaxLargeN(b *testing.B) {
	f, err := synth.Stock3D(100, 120, 1).Build()
	if err != nil {
		b.Fatal(err)
	}
	g := FromGridFile(f)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := (&Minimax{Seed: 1}).Decluster(g, 16); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(g.Buckets)), "buckets")
}

func BenchmarkRefine(b *testing.B) {
	f, err := synth.Hotspot2D(5000, 1).Build()
	if err != nil {
		b.Fatal(err)
	}
	g := FromGridFile(f)
	queries := workload.SquareRange(g.Domain, 0.05, 200, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (&Refine{Queries: queries, Seed: 1}).Decluster(g, 16); err != nil {
			b.Fatal(err)
		}
	}
}
