// Package core implements the paper's primary contribution: declustering
// algorithms for parallel grid files. It provides
//
//   - the three index-based schemes extended from Cartesian product files —
//     disk modulo (DM), fieldwise xor (FX) and Hilbert curve allocation
//     (HCAM) — together with the four conflict-resolution heuristics that
//     the extension to grid files requires (random, most frequent, data
//     balance, area balance; Section 2 / Algorithm 1);
//   - the similarity-based algorithms of Fang et al. (SSP, MST) used as
//     comparison points (Section 3);
//   - the minimax spanning tree algorithm (Algorithm 2), which grows M
//     spanning trees in round-robin order using a minimum-of-maximum edge
//     weight criterion over the Kamel–Faloutsos proximity index and
//     guarantees perfectly balanced partitions.
//
// All algorithms consume a Grid (the declustering view of a grid file or a
// Cartesian product file) and produce an Allocation mapping each bucket to a
// disk. They are deterministic given their seeds.
package core

import (
	"fmt"

	"pgridfile/internal/geom"
	"pgridfile/internal/gridfile"
)

// Grid is the declustering view of a multidimensional file: grid resolution,
// data domain and one view per data bucket. Bucket order defines the dense
// indices used by Allocation.
type Grid struct {
	// Sizes is the number of grid cells per dimension.
	Sizes []int
	// Domain is the data domain, used for proximity computations.
	Domain geom.Rect
	// Buckets lists all live buckets; Buckets[i].Index == i.
	Buckets []gridfile.BucketView
}

// Dims returns the grid dimensionality.
func (g *Grid) Dims() int { return len(g.Sizes) }

// FromGridFile captures the declustering view of a grid file.
func FromGridFile(f *gridfile.File) Grid {
	return Grid{
		Sizes:   f.CellSizes(),
		Domain:  f.Domain(),
		Buckets: f.Buckets(),
	}
}

// FromCartesian captures the declustering view of a Cartesian product file.
func FromCartesian(c *gridfile.CartesianFile) Grid {
	return Grid{
		Sizes:   c.CellSizes(),
		Domain:  c.Domain(),
		Buckets: c.Buckets(),
	}
}

// Allocation assigns every bucket (by dense index) to a disk in [0, Disks).
type Allocation struct {
	Disks  int
	Assign []int
}

// Validate checks the allocation is complete and within range.
func (a Allocation) Validate(nBuckets int) error {
	if a.Disks < 1 {
		return fmt.Errorf("core: allocation has %d disks", a.Disks)
	}
	if len(a.Assign) != nBuckets {
		return fmt.Errorf("core: allocation covers %d buckets, want %d", len(a.Assign), nBuckets)
	}
	for i, d := range a.Assign {
		if d < 0 || d >= a.Disks {
			return fmt.Errorf("core: bucket %d assigned to disk %d of %d", i, d, a.Disks)
		}
	}
	return nil
}

// DiskLoads returns the number of buckets per disk.
func (a Allocation) DiskLoads() []int {
	loads := make([]int, a.Disks)
	for _, d := range a.Assign {
		loads[d]++
	}
	return loads
}

// Allocator is a declustering algorithm.
type Allocator interface {
	// Name identifies the algorithm in experiment output (e.g. "DM/D").
	Name() string
	// Decluster assigns every bucket of g to one of disks disks.
	Decluster(g Grid, disks int) (Allocation, error)
}

// checkArgs validates common Decluster preconditions.
func checkArgs(g Grid, disks int) error {
	if disks < 1 {
		return fmt.Errorf("core: disks must be >= 1, got %d", disks)
	}
	if len(g.Buckets) == 0 {
		return fmt.Errorf("core: grid has no buckets")
	}
	if len(g.Sizes) == 0 {
		return fmt.Errorf("core: grid has no dimensions")
	}
	return nil
}
