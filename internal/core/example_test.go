package core_test

import (
	"fmt"

	"pgridfile/internal/core"
	"pgridfile/internal/synth"
)

// ExampleMinimax declusters a small skewed grid file over 8 disks with the
// paper's minimax spanning tree algorithm and shows the balance guarantee.
func ExampleMinimax() {
	file, err := synth.Hotspot2D(2000, 7).Build()
	if err != nil {
		panic(err)
	}
	grid := core.FromGridFile(file)

	alloc, err := (&core.Minimax{Seed: 1}).Decluster(grid, 8)
	if err != nil {
		panic(err)
	}

	n := len(grid.Buckets)
	ceil := (n + 7) / 8
	maxLoad := 0
	for _, l := range alloc.DiskLoads() {
		if l > maxLoad {
			maxLoad = l
		}
	}
	fmt.Printf("buckets: %d, disks: %d\n", n, alloc.Disks)
	fmt.Printf("balanced: %v (max load %d <= ceil %d)\n", maxLoad <= ceil, maxLoad, ceil)
	// Output:
	// buckets: 57, disks: 8
	// balanced: true (max load 8 <= ceil 8)
}

// ExampleNewIndexBased builds the paper's DM/D combination — disk modulo
// with the data-balance conflict-resolution heuristic.
func ExampleNewIndexBased() {
	alg, err := core.NewIndexBased("DM", "D", 1)
	if err != nil {
		panic(err)
	}
	fmt.Println(alg.Name())
	// Output:
	// DM/D
}

// ExampleDM_CellDisks shows the raw disk-modulo cell mapping on a 4x4
// Cartesian grid with 3 disks: cell [i,j] goes to (i+j) mod 3.
func ExampleDM_CellDisks() {
	disks := core.DM{}.CellDisks([]int{4, 4}, 3)
	for row := 0; row < 4; row++ {
		fmt.Println(disks[row*4 : row*4+4])
	}
	// Output:
	// [0 1 2 0]
	// [1 2 0 1]
	// [2 0 1 2]
	// [0 1 2 0]
}
