package core

import (
	"testing"

	"pgridfile/internal/geom"
	"pgridfile/internal/gridfile"
	"pgridfile/internal/synth"
)

func residualFixture(t *testing.T, disks int) (Grid, [][]int, int) {
	t.Helper()
	f, err := synth.Hotspot2D(2000, 5).Build()
	if err != nil {
		t.Fatal(err)
	}
	g := FromGridFile(f)
	base, err := (&Minimax{Seed: 1}).Decluster(g, disks)
	if err != nil {
		t.Fatal(err)
	}
	n := len(base.Assign)
	owners := make([][]int, n)
	for x := range owners {
		owners[x] = []int{base.Assign[x]}
	}
	return g, owners, n
}

// TestResidualAssignDistinctAndBalanced proves the residual level is a valid
// placement for a second copy: every bucket lands on a disk it does not
// already own, and the level's per-disk loads respect the ⌈n/disks⌉ quota
// (up to the leftover pass's relaxation).
func TestResidualAssignDistinctAndBalanced(t *testing.T) {
	const disks = 4
	g, owners, n := residualFixture(t, disks)
	assign, err := ResidualAssign(g, disks, owners, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(assign) != n {
		t.Fatalf("got %d assignments, want %d", len(assign), n)
	}
	quota := (n + disks - 1) / disks
	loads := make([]int, disks)
	for x, d := range assign {
		if d < 0 || d >= disks {
			t.Fatalf("bucket %d assigned to disk %d, want [0,%d)", x, d, disks)
		}
		if d == owners[x][0] {
			t.Fatalf("bucket %d: secondary copy on its own primary disk %d", x, d)
		}
		loads[d]++
	}
	for d, l := range loads {
		if l > quota+disks {
			t.Fatalf("disk %d holds %d secondaries, quota %d", d, l, quota)
		}
	}
}

// TestResidualAssignDeterministicAcrossWorkers pins the scalability contract
// inherited from the pairwise-weight engine: the residual level is
// byte-identical at any worker count.
func TestResidualAssignDeterministicAcrossWorkers(t *testing.T) {
	const disks = 4
	g, owners, _ := residualFixture(t, disks)
	var ref []int
	for _, w := range []int{1, 2, 4, 8} {
		assign, err := ResidualAssign(g, disks, owners, nil, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if ref == nil {
			ref = assign
			continue
		}
		for x := range ref {
			if assign[x] != ref[x] {
				t.Fatalf("workers=%d: bucket %d on disk %d, workers=1 chose %d",
					w, x, assign[x], ref[x])
			}
		}
	}
}

// TestResidualAssignSerialFallback exercises the custom-weight path (no
// engine) and its distinct-disk guarantee, including a third level where
// each bucket already owns two of the four disks.
func TestResidualAssignSerialFallback(t *testing.T) {
	const disks = 4
	g, owners, n := residualFixture(t, disks)
	custom := func(a, b gridfile.BucketView, dom geom.Rect) float64 {
		return ProximityWeight(a, b, dom)
	}
	second, err := ResidualAssign(g, disks, owners, custom, 0)
	if err != nil {
		t.Fatal(err)
	}
	for x := range owners {
		owners[x] = append(owners[x], second[x])
	}
	third, err := ResidualAssign(g, disks, owners, custom, 0)
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x < n; x++ {
		if third[x] == owners[x][0] || third[x] == owners[x][1] {
			t.Fatalf("bucket %d: third copy on already-owned disk %d (owners %v)",
				x, third[x], owners[x])
		}
	}
}

// TestResidualAssignRejectsBadOwners pins the argument contract: owner lists
// must be present, in range, and leave at least one free disk per bucket.
func TestResidualAssignRejectsBadOwners(t *testing.T) {
	const disks = 2
	g, owners, _ := residualFixture(t, disks)

	saved := owners[0]
	owners[0] = nil
	if _, err := ResidualAssign(g, disks, owners, nil, 0); err == nil {
		t.Error("empty owner list accepted")
	}
	owners[0] = []int{0, 1}
	if _, err := ResidualAssign(g, disks, owners, nil, 0); err == nil {
		t.Error("fully-owned bucket accepted — no disk left for another copy")
	}
	owners[0] = []int{disks}
	if _, err := ResidualAssign(g, disks, owners, nil, 0); err == nil {
		t.Error("out-of-range owner accepted")
	}
	owners[0] = saved
	if _, err := ResidualAssign(g, disks, owners[:1], nil, 0); err == nil {
		t.Error("short owners slice accepted")
	}
}
