package core

import (
	"fmt"
	"strings"
)

// ParseAllocator resolves an allocator name the way every CLI spells it:
// the weight-based engines by lowercase name ("minimax", "minimax-euclid",
// "ssp", "mst") or an index-based scheme/resolver pair ("DM/D", "HCAM/F").
// seed drives each allocator's randomized choices; workers bounds the
// pairwise-weight engine's sweep parallelism for the weight-based engines
// (0 means GOMAXPROCS; index-based schemes have no engine and ignore it).
func ParseAllocator(name string, seed int64, workers int) (Allocator, error) {
	switch strings.ToLower(name) {
	case "minimax":
		return &Minimax{Seed: seed, Workers: workers}, nil
	case "minimax-euclid":
		return &Minimax{Weight: EuclideanWeight, WeightName: "euclid", Seed: seed, Workers: workers}, nil
	case "ssp":
		return &SSP{Seed: seed, Workers: workers}, nil
	case "mst":
		return &MST{Seed: seed, Workers: workers}, nil
	}
	scheme, resolver, ok := strings.Cut(name, "/")
	if !ok {
		return nil, fmt.Errorf("unknown algorithm %q", name)
	}
	return NewIndexBased(scheme, resolver, seed)
}
