package core

import (
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"sync"
)

// This file implements the parallel pairwise-weight engine shared by every
// proximity-based algorithm in the package (Minimax, SSP, MST) and by the
// simulator's nearest-companion computation. All of them have the same
// Θ(N²) shape — evaluate an edge weight between one "pivot" bucket and every
// other live bucket, then reduce (max-merge, min-merge, arg-min, arg-max) —
// so they share one engine instead of each calling a Weight closure over
// geom.Proximity per edge.
//
// The engine gains its speed from three sources:
//
//  1. Flattened geometry. Bucket regions are copied once per Decluster into
//     a contiguous []float64 (lo/hi interleaved per axis) and the per-axis
//     inverse domain lengths are precomputed, so the proximity kernel is a
//     devirtualized, zero-alloc inner loop: no BucketView struct copies, no
//     Rect slice-header chasing, no closure call, no per-edge division by a
//     recomputed domain length.
//
//  2. Sharded sweeps. Each O(N) sweep over the unassigned vertices is split
//     into contiguous shards executed by a persistent worker pool
//     (Workers goroutines; Workers <= 0 means GOMAXPROCS).
//
//  3. Deterministic reductions. Every reduction uses a total order —
//     (value, vertex index) for arg-min/arg-max, plus tree index for MST's
//     global pick — and shard results are merged in shard order, so the
//     result is byte-identical for ANY worker count. Shards write disjoint
//     vertex entries, so sweeps are race-free by construction.
//
// Custom Weight functions keep the existing serial slow path: the engine
// only recognizes the package's built-in weights (a nil Weight,
// ProximityWeight and EuclideanWeight), because only those are known to be
// pure and safe to evaluate concurrently.

// weightKind identifies the built-in edge weights the engine can inline.
type weightKind int

const (
	kindGeneric weightKind = iota
	kindProximity
	kindEuclid
)

// kindOf recognizes the package's built-in weight functions by identity.
// Closures and user functions map to kindGeneric and take the slow path.
func kindOf(w Weight) weightKind {
	if w == nil {
		return kindProximity
	}
	switch reflect.ValueOf(w).Pointer() {
	case reflect.ValueOf(ProximityWeight).Pointer():
		return kindProximity
	case reflect.ValueOf(EuclideanWeight).Pointer():
		return kindEuclid
	}
	return kindGeneric
}

// PairEngine is the shared pairwise-weight engine: a flattened copy of a
// grid's bucket geometry plus a sharded sweep executor. Construct one per
// Decluster (or per NearestCompanions run) and Close it when done. A
// PairEngine must be driven from a single goroutine; the parallelism lives
// inside each sweep, not across calls.
type PairEngine struct {
	n       int
	dims    int
	kind    weightKind
	boxes   []float64 // n × 2·dims: lo,hi interleaved per axis
	centers []float64 // n × dims, euclid kernel only
	lens    []float64 // per-axis domain length, 0 for degenerate axes
	diag    float64   // euclid: domain diagonal, 0 for a degenerate domain

	workers  int
	pool     *workerPool
	scratch  [][]float64 // one weight buffer per shard
	resX     []int32     // per-shard reduction results
	resV     []float64
	rangeIdx []int32 // identity vertex list for weighRange, built lazily
}

// NewPairEngine builds an engine for g and w with the given worker count
// (<= 0 means GOMAXPROCS). It returns nil when w is not one of the built-in
// weights; callers must then use their serial slow path.
func NewPairEngine(g Grid, w Weight, workers int) *PairEngine {
	kind := kindOf(w)
	if kind == kindGeneric {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := len(g.Buckets)
	dims := len(g.Domain)
	e := &PairEngine{
		n:       n,
		dims:    dims,
		kind:    kind,
		workers: workers,
		lens:    make([]float64, dims),
		scratch: make([][]float64, workers),
		resX:    make([]int32, workers),
		resV:    make([]float64, workers),
	}
	for d, iv := range g.Domain {
		if l := iv.Length(); l > 0 {
			e.lens[d] = l
		}
	}
	switch kind {
	case kindProximity:
		e.boxes = make([]float64, n*2*dims)
		for i, b := range g.Buckets {
			base := i * 2 * dims
			for d, iv := range b.Region {
				e.boxes[base+2*d] = iv.Lo
				e.boxes[base+2*d+1] = iv.Hi
			}
		}
	case kindEuclid:
		e.centers = make([]float64, n*dims)
		for i, b := range g.Buckets {
			base := i * dims
			for d, iv := range b.Region {
				e.centers[base+d] = (iv.Lo + iv.Hi) / 2
			}
		}
		diag := 0.0
		for _, iv := range g.Domain {
			diag += iv.Length() * iv.Length()
		}
		e.diag = math.Sqrt(diag)
	}
	for i := range e.scratch {
		e.scratch[i] = make([]float64, sweepTile)
	}
	return e
}

// Close releases the engine's worker pool, if one was started.
func (e *PairEngine) Close() {
	if e.pool != nil {
		e.pool.close()
		e.pool = nil
	}
}

// Weigh evaluates the engine's edge weight for one bucket pair. It exists
// for tests and spot checks; the sweeps below are the hot path.
func (e *PairEngine) Weigh(i, j int) float64 {
	var out [1]float64
	e.weighBatch(int32(i), []int32{int32(j)}, out[:])
	return out[0]
}

// weighBatch computes the weight between the fixed bucket and each bucket in
// xs, writing results into out (indexed like xs). Dispatch happens once per
// batch, not per edge.
func (e *PairEngine) weighBatch(fixed int32, xs []int32, out []float64) {
	switch {
	case e.kind == kindEuclid:
		e.euclidBatch(fixed, xs, out)
	case e.dims == 2:
		e.proxBatch2(fixed, xs, out)
	default:
		e.proxBatch(fixed, xs, out)
	}
}

// proxBatch is the Kamel–Faloutsos proximity kernel over the flattened
// layout. It performs the exact floating-point operations of geom.Proximity
// (including the per-axis division by the domain length), so its results —
// and therefore every assignment built from them — are bit-identical to the
// closure path it replaces.
func (e *PairEngine) proxBatch(fixed int32, xs []int32, out []float64) {
	d2 := 2 * e.dims
	boxes := e.boxes
	lens := e.lens
	fb := boxes[int(fixed)*d2 : int(fixed)*d2+d2 : int(fixed)*d2+d2]
	for i, x := range xs {
		bb := boxes[int(x)*d2 : int(x)*d2+d2 : int(x)*d2+d2]
		prox := 1.0
		for d := 0; d < len(lens); d++ {
			length := lens[d]
			if length == 0 {
				// Degenerate domain axis: carries no spatial information.
				continue
			}
			alo, ahi := fb[2*d], fb[2*d+1]
			blo, bhi := bb[2*d], bb[2*d+1]
			if alo <= bhi && blo <= ahi {
				olo, ohi := alo, ahi
				if blo > olo {
					olo = blo
				}
				if bhi < ohi {
					ohi = bhi
				}
				delta := 0.0
				if ohi > olo {
					delta = (ohi - olo) / length
				}
				prox *= (1 + 2*delta) / 3
			} else {
				var gap float64
				if blo > ahi {
					gap = blo - ahi
				} else {
					gap = alo - bhi
				}
				dd := 1 - gap/length
				prox *= dd * dd / 3
			}
		}
		out[i] = prox
	}
}

// proxBatch2 is proxBatch specialized for two dimensions — the fixed box and
// both domain lengths live in registers across the whole batch, and the
// per-axis loop is unrolled. The floating-point operation sequence is
// unchanged, so results stay bit-identical to geom.Proximity.
func (e *PairEngine) proxBatch2(fixed int32, xs []int32, out []float64) {
	boxes := e.boxes
	len0, len1 := e.lens[0], e.lens[1]
	fi := int(fixed) * 4
	fb := boxes[fi : fi+4 : fi+4]
	alo0, ahi0, alo1, ahi1 := fb[0], fb[1], fb[2], fb[3]
	for i, x := range xs {
		bi := int(x) * 4
		bb := boxes[bi : bi+4 : bi+4]
		blo0, bhi0, blo1, bhi1 := bb[0], bb[1], bb[2], bb[3]
		prox := 1.0
		if len0 != 0 {
			if alo0 <= bhi0 && blo0 <= ahi0 {
				olo, ohi := alo0, ahi0
				if blo0 > olo {
					olo = blo0
				}
				if bhi0 < ohi {
					ohi = bhi0
				}
				delta := 0.0
				if ohi > olo {
					delta = (ohi - olo) / len0
				}
				prox = (1 + 2*delta) / 3
			} else {
				var gap float64
				if blo0 > ahi0 {
					gap = blo0 - ahi0
				} else {
					gap = alo0 - bhi0
				}
				dd := 1 - gap/len0
				prox = dd * dd / 3
			}
		}
		if len1 != 0 {
			if alo1 <= bhi1 && blo1 <= ahi1 {
				olo, ohi := alo1, ahi1
				if blo1 > olo {
					olo = blo1
				}
				if bhi1 < ohi {
					ohi = bhi1
				}
				delta := 0.0
				if ohi > olo {
					delta = (ohi - olo) / len1
				}
				prox *= (1 + 2*delta) / 3
			} else {
				var gap float64
				if blo1 > ahi1 {
					gap = blo1 - ahi1
				} else {
					gap = alo1 - bhi1
				}
				dd := 1 - gap/len1
				prox *= dd * dd / 3
			}
		}
		out[i] = prox
	}
}

// euclidBatch is the center-distance similarity kernel (EuclideanWeight)
// over precomputed bucket centers, operation-for-operation identical to the
// closure path.
func (e *PairEngine) euclidBatch(fixed int32, xs []int32, out []float64) {
	if e.diag == 0 {
		for i := range xs {
			out[i] = 1
		}
		return
	}
	dims := e.dims
	centers := e.centers
	fc := centers[int(fixed)*dims : int(fixed)*dims+dims : int(fixed)*dims+dims]
	for i, x := range xs {
		bc := centers[int(x)*dims : int(x)*dims+dims : int(x)*dims+dims]
		sum := 0.0
		for d := 0; d < dims; d++ {
			df := fc[d] - bc[d]
			sum += df * df
		}
		out[i] = 1 - math.Sqrt(sum)/e.diag
	}
}

// minShard is the smallest per-shard sweep length worth dispatching to the
// pool; below it the channel round-trip costs more than the work.
const minShard = 256

// sweepTile bounds how many weights a sweep computes before folding them
// into its reduction, so the scratch buffer stays L1-resident instead of
// being streamed through the cache once per step.
const sweepTile = 512

// runShards executes fn over contiguous shards of [0, m) and returns the
// number of shards used. Shard boundaries never influence results: every
// reduction merged across shards uses a total order on (value, index).
func (e *PairEngine) runShards(m int, fn func(shard, lo, hi int)) int {
	w := e.workers
	if max := m / minShard; w > max {
		w = max
	}
	if w <= 1 {
		fn(0, 0, m)
		return 1
	}
	if e.pool == nil {
		e.pool = newWorkerPool(e.workers - 1)
	}
	var wg sync.WaitGroup
	wg.Add(w - 1)
	for s := 1; s < w; s++ {
		e.pool.work <- poolTask{fn: fn, shard: s, lo: s * m / w, hi: (s + 1) * m / w, wg: &wg}
	}
	fn(0, 0, m/w)
	wg.Wait()
	return w
}

// workerPool runs sweep shards on persistent goroutines so the per-step
// dispatch cost is two channel operations rather than a goroutine spawn.
type workerPool struct {
	work chan poolTask
}

type poolTask struct {
	fn     func(shard, lo, hi int)
	shard  int
	lo, hi int
	wg     *sync.WaitGroup
}

func newWorkerPool(n int) *workerPool {
	p := &workerPool{work: make(chan poolTask)}
	for i := 0; i < n; i++ {
		go func() {
			for t := range p.work {
				t.fn(t.shard, t.lo, t.hi)
				t.wg.Done()
			}
		}()
	}
	return p
}

func (p *workerPool) close() { close(p.work) }

// initRows fills rows[k·n : (k+1)·n] with the weight of every active vertex
// against seeds[k], and returns the arg-min of row selRow over the active
// set (ties to the lowest vertex index) — the first selection of the
// round-robin expansion, computed during the same pass.
func (e *PairEngine) initRows(seeds []int, active []int32, rows []float64, selRow int) (int32, float64) {
	shards := e.runShards(len(active), func(shard, lo, hi int) {
		scratch := e.scratch[shard]
		for t := lo; t < hi; t += sweepTile {
			te := t + sweepTile
			if te > hi {
				te = hi
			}
			xs := active[t:te]
			out := scratch[:len(xs)]
			for k, seed := range seeds {
				row := rows[k*e.n : (k+1)*e.n]
				e.weighBatch(int32(seed), xs, out)
				for i, x := range xs {
					row[x] = out[i]
				}
			}
		}
		row := rows[selRow*e.n : (selRow+1)*e.n]
		e.resX[shard], e.resV[shard] = argminOver(row, active[lo:hi])
	})
	return e.mergeMin(shards)
}

// stepMinimax performs one round-robin expansion step's sweep: max-merge
// the weight of every active vertex against the newly assigned member into
// upd (MAX_x(k) maintenance), while simultaneously computing the arg-min of
// sel — the row of the NEXT tree in the round-robin order — over the same
// active set. Selection therefore never rescans the vertices on its own;
// it rides along the update sweep that must touch them anyway.
func (e *PairEngine) stepMinimax(newMember int32, active []int32, upd, sel []float64) (int32, float64) {
	shards := e.runShards(len(active), func(shard, lo, hi int) {
		scratch := e.scratch[shard]
		bx, bv := int32(-1), math.Inf(1)
		for t := lo; t < hi; t += sweepTile {
			te := t + sweepTile
			if te > hi {
				te = hi
			}
			xs := active[t:te]
			out := scratch[:len(xs)]
			e.weighBatch(newMember, xs, out)
			for i, x := range xs {
				if out[i] > upd[x] {
					upd[x] = out[i]
				}
				if v := sel[x]; v < bv || (v == bv && x < bx) {
					bx, bv = x, v
				}
			}
		}
		e.resX[shard], e.resV[shard] = bx, bv
	})
	return e.mergeMin(shards)
}

// stepMST min-merges the weight of every active vertex against the newly
// assigned member into row (Prim's frontier maintenance for one tree) and
// returns the row's new arg-min over the active set.
func (e *PairEngine) stepMST(newMember int32, active []int32, row []float64) (int32, float64) {
	shards := e.runShards(len(active), func(shard, lo, hi int) {
		scratch := e.scratch[shard]
		bx, bv := int32(-1), math.Inf(1)
		for t := lo; t < hi; t += sweepTile {
			te := t + sweepTile
			if te > hi {
				te = hi
			}
			xs := active[t:te]
			out := scratch[:len(xs)]
			e.weighBatch(newMember, xs, out)
			for i, x := range xs {
				if out[i] < row[x] {
					row[x] = out[i]
				}
				if v := row[x]; v < bv || (v == bv && x < bx) {
					bx, bv = x, v
				}
			}
		}
		e.resX[shard], e.resV[shard] = bx, bv
	})
	return e.mergeMin(shards)
}

// maxInto max-merges the weight of every active vertex against the fixed
// bucket into row, with no selection riding along — the residual-allocation
// row-maintenance sweep. Shards write disjoint vertex entries, so the sweep
// is race-free and the resulting row is identical for any worker count.
func (e *PairEngine) maxInto(fixed int32, active []int32, row []float64) {
	e.runShards(len(active), func(shard, lo, hi int) {
		scratch := e.scratch[shard]
		for t := lo; t < hi; t += sweepTile {
			te := t + sweepTile
			if te > hi {
				te = hi
			}
			xs := active[t:te]
			out := scratch[:len(xs)]
			e.weighBatch(fixed, xs, out)
			for i, x := range xs {
				if out[i] > row[x] {
					row[x] = out[i]
				}
			}
		}
	})
}

// initResidualRows fills rows[k·n : (k+1)·n] with the maximum weight between
// each vertex x and any bucket already owned by disk k, per the owners lists
// (owners[y] = disks that already hold a copy of bucket y). The sweep shards
// over the destination vertices x, so each shard writes disjoint row entries
// and the max over each owner set is order-independent — identical for any
// worker count.
func (e *PairEngine) initResidualRows(owners [][]int, rows []float64) {
	n := e.n
	if e.rangeIdx == nil {
		e.rangeIdx = make([]int32, n)
		for i := range e.rangeIdx {
			e.rangeIdx[i] = int32(i)
		}
	}
	e.runShards(n, func(shard, lo, hi int) {
		scratch := e.scratch[shard]
		for t := lo; t < hi; t += sweepTile {
			te := t + sweepTile
			if te > hi {
				te = hi
			}
			out := scratch[: te-t : te-t]
			for y := 0; y < n; y++ {
				if len(owners[y]) == 0 {
					continue
				}
				e.weighRange(int32(y), t, te, out)
				for _, k := range owners[y] {
					row := rows[k*n : (k+1)*n : (k+1)*n]
					for i := t; i < te; i++ {
						if v := out[i-t]; v > row[i] {
							row[i] = v
						}
					}
				}
			}
		}
	})
}

// weighRange computes the weight between the fixed bucket and every vertex in
// [lo, hi), writing results into out (indexed from lo). The caller must have
// populated rangeIdx (initResidualRows does) before dispatching shards.
func (e *PairEngine) weighRange(fixed int32, lo, hi int, out []float64) {
	e.weighBatch(fixed, e.rangeIdx[lo:hi], out)
}

// argminRow returns the arg-min of row over the active set without touching
// the weights (used when a removal invalidates a cached arg-min).
func (e *PairEngine) argminRow(row []float64, active []int32) (int32, float64) {
	shards := e.runShards(len(active), func(shard, lo, hi int) {
		e.resX[shard], e.resV[shard] = argminOver(row, active[lo:hi])
	})
	return e.mergeMin(shards)
}

// argmaxTo returns the active vertex with the largest weight to the fixed
// bucket (ties to the lowest vertex index) — SSP's path-growth step.
func (e *PairEngine) argmaxTo(fixed int32, active []int32) (int32, float64) {
	shards := e.runShards(len(active), func(shard, lo, hi int) {
		scratch := e.scratch[shard]
		bx, bv := int32(-1), math.Inf(-1)
		for t := lo; t < hi; t += sweepTile {
			te := t + sweepTile
			if te > hi {
				te = hi
			}
			xs := active[t:te]
			out := scratch[:len(xs)]
			e.weighBatch(fixed, xs, out)
			for i, x := range xs {
				if v := out[i]; v > bv || (v == bv && x < bx) {
					bx, bv = x, v
				}
			}
		}
		e.resX[shard], e.resV[shard] = bx, bv
	})
	// Merge in shard order under the same total order as the shard scan.
	bx, bv := e.resX[0], e.resV[0]
	for s := 1; s < shards; s++ {
		if x, v := e.resX[s], e.resV[s]; x >= 0 && (v > bv || (v == bv && x < bx)) {
			bx, bv = x, v
		}
	}
	return bx, bv
}

// NearestCompanions returns, for every bucket, the index of its closest
// companion under the engine's weight (ties to the lower index), or -1 for
// a single-bucket grid. Rows are independent, so the sweep shards over rows
// and the result is identical for any worker count.
func (e *PairEngine) NearestCompanions() []int {
	n := e.n
	nn := make([]int, n)
	if n == 1 {
		nn[0] = -1
		return nn
	}
	all := make([]int32, n)
	for i := range all {
		all[i] = int32(i)
	}
	e.runShards(n, func(shard, lo, hi int) {
		scratch := e.scratch[shard]
		for i := lo; i < hi; i++ {
			best, bestVal := -1, math.Inf(-1)
			for t := 0; t < n; t += sweepTile {
				te := t + sweepTile
				if te > n {
					te = n
				}
				xs := all[t:te]
				out := scratch[:len(xs)]
				e.weighBatch(int32(i), xs, out)
				for j, x := range xs {
					if int(x) == i {
						continue
					}
					if v := out[j]; v > bestVal {
						best, bestVal = int(x), v
					}
				}
			}
			nn[i] = best
		}
	})
	return nn
}

// argminOver scans row at the given vertex indices; ties go to the lowest
// vertex index, matching the serial reference loops.
func argminOver(row []float64, xs []int32) (int32, float64) {
	bx, bv := int32(-1), math.Inf(1)
	for _, x := range xs {
		if v := row[x]; v < bv || (v == bv && x < bx) {
			bx, bv = x, v
		}
	}
	return bx, bv
}

// mergeMin folds the per-shard arg-min results in shard order.
func (e *PairEngine) mergeMin(shards int) (int32, float64) {
	bx, bv := e.resX[0], e.resV[0]
	for s := 1; s < shards; s++ {
		if x, v := e.resX[s], e.resV[s]; x >= 0 && (v < bv || (v == bv && x < bx)) {
			bx, bv = x, v
		}
	}
	return bx, bv
}

// activeSet is the shrinking unassigned-vertex list shared by the engine
// paths: O(1) removal by swapping with the last element. Reductions use a
// total order on (value, index), so the resulting element order is free to
// change without affecting any outcome.
type activeSet struct {
	list []int32
	pos  []int32 // vertex -> index in list
}

func newActiveSetAll(n int) *activeSet {
	a := &activeSet{list: make([]int32, n), pos: make([]int32, n)}
	for i := range a.list {
		a.list[i] = int32(i)
		a.pos[i] = int32(i)
	}
	return a
}

func newActiveSet(assign []int) *activeSet {
	a := &activeSet{pos: make([]int32, len(assign))}
	a.list = make([]int32, 0, len(assign))
	for x, d := range assign {
		if d < 0 {
			a.pos[x] = int32(len(a.list))
			a.list = append(a.list, int32(x))
		}
	}
	return a
}

func (a *activeSet) remove(x int32) {
	i := a.pos[x]
	last := a.list[len(a.list)-1]
	a.list[i] = last
	a.pos[last] = i
	a.list = a.list[:len(a.list)-1]
}

// permPrefix returns the first m elements of rand.Perm(n) while allocating
// only m ints: it replays the same Fisher–Yates shuffle and RNG draws but
// tracks only the positions that end up in the prefix, so the chosen seed
// sequence for a given Seed is identical to the full-permutation code it
// replaces. Requires m <= n.
func permPrefix(rng *rand.Rand, n, m int) []int {
	p := make([]int, m)
	for i := 0; i < n; i++ {
		j := rng.Intn(i + 1)
		switch {
		case i < m:
			p[i] = p[j]
			p[j] = i
		case j < m:
			p[j] = i
		}
	}
	return p
}
