package core

import (
	"fmt"
	"sort"

	"pgridfile/internal/sfc"
)

// Scheme is an index-based cell-to-disk mapping for a complete grid: the
// building block of the Cartesian-product-file declustering methods that
// Section 2 extends to grid files.
type Scheme interface {
	// Name identifies the scheme ("DM", "FX", "HCAM", ...).
	Name() string
	// CellDisks returns the disk of every cell of a grid with the given
	// per-dimension sizes, in row-major order.
	CellDisks(sizes []int, disks int) []int
}

// DM is the disk modulo scheme of Du and Sobolewski: cell [i1,...,id] maps
// to (i1+...+id) mod M.
type DM struct{}

// Name implements Scheme.
func (DM) Name() string { return "DM" }

// CellDisks implements Scheme.
func (DM) CellDisks(sizes []int, disks int) []int {
	out := make([]int, totalCells(sizes))
	cell := make([]int, len(sizes))
	for idx := range out {
		sum := 0
		for _, c := range cell {
			sum += c
		}
		out[idx] = sum % disks
		nextCell(cell, sizes)
	}
	return out
}

// FX is the fieldwise xor scheme of Kim and Pramanik: cell [i1,...,id] maps
// to (i1 ⊕ ... ⊕ id) mod M.
type FX struct{}

// Name implements Scheme.
func (FX) Name() string { return "FX" }

// CellDisks implements Scheme.
func (FX) CellDisks(sizes []int, disks int) []int {
	out := make([]int, totalCells(sizes))
	cell := make([]int, len(sizes))
	for idx := range out {
		x := 0
		for _, c := range cell {
			x ^= c
		}
		out[idx] = x % disks
		nextCell(cell, sizes)
	}
	return out
}

// CurveAllocation is the space-filling-curve allocation method: cells are
// sorted by their position along a curve and assigned to disks round-robin.
// With the Hilbert curve this is HCAM (Faloutsos and Bhagwat); the Z-order
// and Gray-code variants are the weaker linearizations the paper cites, kept
// as ablation baselines.
type CurveAllocation struct {
	// NewCurve constructs the curve for a given dimensionality and bit
	// budget; defaults to the Hilbert curve.
	NewCurve func(dims, bits int) sfc.Curve
	// CurveName labels the scheme; defaults to HCAM.
	CurveName string
}

// HCAM returns the Hilbert curve allocation scheme.
func HCAM() *CurveAllocation {
	return &CurveAllocation{
		NewCurve:  func(d, b int) sfc.Curve { return sfc.NewHilbert(d, b) },
		CurveName: "HCAM",
	}
}

// ZCAM returns the Z-order variant of curve allocation.
func ZCAM() *CurveAllocation {
	return &CurveAllocation{
		NewCurve:  func(d, b int) sfc.Curve { return sfc.NewZOrder(d, b) },
		CurveName: "ZCAM",
	}
}

// GrayCAM returns the Gray-code variant of curve allocation.
func GrayCAM() *CurveAllocation {
	return &CurveAllocation{
		NewCurve:  func(d, b int) sfc.Curve { return sfc.NewGray(d, b) },
		CurveName: "GrayCAM",
	}
}

// Name implements Scheme.
func (c *CurveAllocation) Name() string {
	if c.CurveName == "" {
		return "HCAM"
	}
	return c.CurveName
}

// CellDisks implements Scheme. Grid sides are rarely powers of two, so the
// curve is evaluated with enough bits to cover the largest side and cells
// are ranked by curve key; the rank (not the raw key) is taken mod M, which
// reproduces round-robin assignment along the curve.
func (c *CurveAllocation) CellDisks(sizes []int, disks int) []int {
	maxSide := 0
	for _, s := range sizes {
		if s > maxSide {
			maxSide = s
		}
	}
	bits := sfc.BitsFor(uint32(maxSide - 1))
	dims := len(sizes)
	if dims*bits > 64 {
		panic(fmt.Sprintf("core: grid %v exceeds the 64-bit curve key budget", sizes))
	}
	newCurve := c.NewCurve
	if newCurve == nil {
		newCurve = func(d, b int) sfc.Curve { return sfc.NewHilbert(d, b) }
	}
	curve := newCurve(dims, bits)

	n := totalCells(sizes)
	keys := make([]uint64, n)
	coords := make([]uint32, dims)
	cell := make([]int, dims)
	for idx := 0; idx < n; idx++ {
		for d, v := range cell {
			coords[d] = uint32(v)
		}
		keys[idx] = curve.Key(coords)
		nextCell(cell, sizes)
	}

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return keys[order[a]] < keys[order[b]] })

	out := make([]int, n)
	for rank, idx := range order {
		out[idx] = rank % disks
	}
	return out
}

// totalCells returns the product of the per-dimension sizes.
func totalCells(sizes []int) int {
	n := 1
	for _, s := range sizes {
		n *= s
	}
	return n
}

// nextCell advances a row-major cell coordinate vector by one.
func nextCell(cell, sizes []int) {
	for d := len(cell) - 1; d >= 0; d-- {
		cell[d]++
		if cell[d] < sizes[d] {
			return
		}
		cell[d] = 0
	}
}
