package core

import "fmt"

// NewIndexBased builds an index-based allocator from scheme and resolver
// codes, e.g. ("DM", "D") for disk modulo with data balance. Valid schemes:
// DM, GDM, FX, HCAM, ZCAM, GrayCAM. Valid resolvers: R (random), F (most
// frequent), D (data balance), A (area balance).
func NewIndexBased(scheme, resolver string, seed int64) (*IndexBased, error) {
	var s Scheme
	switch scheme {
	case "DM":
		s = DM{}
	case "GDM":
		s = GDM{}
	case "FX":
		s = FX{}
	case "HCAM":
		s = HCAM()
	case "ZCAM":
		s = ZCAM()
	case "GrayCAM":
		s = GrayCAM()
	default:
		return nil, fmt.Errorf("core: unknown scheme %q", scheme)
	}
	var r Resolver
	switch resolver {
	case "R":
		r = Random{Seed: seed}
	case "F":
		r = MostFrequent{Seed: seed}
	case "D":
		r = DataBalance{Seed: seed}
	case "A":
		r = AreaBalance{Seed: seed}
	default:
		return nil, fmt.Errorf("core: unknown resolver %q", resolver)
	}
	return &IndexBased{Scheme: s, Resolver: r}, nil
}

// mustIndexBased panics on construction errors; for the fixed lineups below.
func mustIndexBased(scheme, resolver string, seed int64) *IndexBased {
	ib, err := NewIndexBased(scheme, resolver, seed)
	if err != nil {
		panic(err)
	}
	return ib
}

// Figure4Lineup returns the algorithms of Figure 4: the three index-based
// schemes, each with the data-balance heuristic.
func Figure4Lineup(seed int64) []Allocator {
	return []Allocator{
		mustIndexBased("DM", "D", seed),
		mustIndexBased("FX", "D", seed),
		mustIndexBased("HCAM", "D", seed),
	}
}

// Figure6Lineup returns the algorithms of Figure 6: DM/D, FX/D, HCAM/D, SSP
// and minimax.
func Figure6Lineup(seed int64) []Allocator {
	return []Allocator{
		mustIndexBased("DM", "D", seed),
		mustIndexBased("FX", "D", seed),
		mustIndexBased("HCAM", "D", seed),
		&SSP{Seed: seed},
		&Minimax{Seed: seed},
	}
}

// ResolverLineup returns one allocator per conflict-resolution heuristic for
// the given scheme (Figure 3).
func ResolverLineup(scheme string, seed int64) ([]Allocator, error) {
	out := make([]Allocator, 0, 4)
	for _, r := range []string{"R", "F", "D", "A"} {
		ib, err := NewIndexBased(scheme, r, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, ib)
	}
	return out, nil
}
