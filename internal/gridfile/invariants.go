package gridfile

import "fmt"

// checkInvariants validates the full structure. See CheckInvariants.
func (f *File) checkInvariants() error {
	dims := f.cfg.Dims

	// Scales must be sorted strictly ascending and inside the domain.
	for d := 0; d < dims; d++ {
		s := f.scales[d]
		if int(f.sizes[d]) != len(s)+1 {
			return fmt.Errorf("dim %d: sizes=%d but %d split points", d, f.sizes[d], len(s))
		}
		for i, v := range s {
			if v <= f.cfg.Domain[d].Lo || v >= f.cfg.Domain[d].Hi {
				return fmt.Errorf("dim %d: split %d = %v outside domain interior", d, i, v)
			}
			if i > 0 && s[i-1] >= v {
				return fmt.Errorf("dim %d: splits not strictly ascending at %d", d, i)
			}
		}
	}

	if want := totalCells(f.sizes); len(f.dir) != want {
		return fmt.Errorf("directory has %d cells, want %d", len(f.dir), want)
	}

	// Bucket regions must be well-formed boxes inside the grid before any
	// region iteration below (a corrupt region would index out of bounds).
	for id, b := range f.bkts {
		if b == nil {
			continue
		}
		if len(b.lo) != dims || len(b.hi) != dims {
			return fmt.Errorf("bucket %d: region has wrong dimensionality", id)
		}
		for d := 0; d < dims; d++ {
			if b.lo[d] < 0 || b.hi[d] >= f.sizes[d] || b.lo[d] > b.hi[d] {
				return fmt.Errorf("bucket %d: region [%v..%v] outside grid %v",
					id, b.lo, b.hi, f.sizes)
			}
		}
		if len(b.keys)%dims != 0 {
			return fmt.Errorf("bucket %d: key array length %d not a multiple of dims", id, len(b.keys))
		}
	}

	// Every directory entry points to a live bucket whose region contains
	// the cell.
	cell := make([]int32, dims)
	for idx, id := range f.dir {
		if id < 0 || int(id) >= len(f.bkts) || f.bkts[id] == nil {
			return fmt.Errorf("cell %d: dangling bucket id %d", idx, id)
		}
		b := f.bkts[id]
		unflatten(idx, f.sizes, cell)
		for d := 0; d < dims; d++ {
			if cell[d] < b.lo[d] || cell[d] > b.hi[d] {
				return fmt.Errorf("cell %d (%v): outside region of bucket %d [%v..%v]",
					idx, cell, id, b.lo, b.hi)
			}
		}
	}

	// Every bucket region cell must map back to the bucket (box exclusivity)
	// and every record's key must lie in the bucket's domain region.
	live, nrec := 0, 0
	for id, b := range f.bkts {
		if b == nil {
			continue
		}
		live++
		ok := true
		f.forEachCellIn(b.lo, b.hi, func(idx int) {
			if f.dir[idx] != int32(id) {
				ok = false
			}
		})
		if !ok {
			return fmt.Errorf("bucket %d: region cell not owned by bucket", id)
		}
		region := f.bucketRegion(b)
		n := b.count(dims)
		nrec += n
		for i := 0; i < n; i++ {
			key := b.keys[i*dims : (i+1)*dims]
			// Region intervals are closed but cells are lower-inclusive;
			// a key exactly on the upper boundary belongs to the next cell,
			// except at the domain edge. ContainsPoint (closed) is the
			// right check because region.Hi is either a split point (then
			// key < Hi strictly, which closed containment accepts) or the
			// domain edge (key may equal it).
			inside := true
			for d := 0; d < dims; d++ {
				if key[d] < region[d].Lo || key[d] > region[d].Hi {
					inside = false
				}
			}
			if !inside {
				return fmt.Errorf("bucket %d: record %d key %v outside region %v", id, i, key, region)
			}
		}
		if b.data != nil && len(b.data) != n {
			return fmt.Errorf("bucket %d: payload column length %d, want %d", id, len(b.data), n)
		}
	}
	if live != f.live {
		return fmt.Errorf("live count %d, want %d", f.live, live)
	}
	if nrec != f.nrec {
		return fmt.Errorf("record count %d, want %d", f.nrec, nrec)
	}
	return nil
}
