package gridfile

import (
	"math/rand"
	"sort"
	"testing"
)

func buildTwoLevel(t *testing.T, dims, pageCells int) (*File, *TwoLevelDirectory) {
	t.Helper()
	f := newTestFile(t, dims, 6)
	insertUniform(t, f, 2000, int64(1100+dims))
	d, err := NewTwoLevelDirectory(f, pageCells)
	if err != nil {
		t.Fatal(err)
	}
	return f, d
}

func TestTwoLevelValidation(t *testing.T) {
	f := newTestFile(t, 2, 4)
	if _, err := NewTwoLevelDirectory(f, 0); err == nil {
		t.Error("pageCells=0 accepted")
	}
}

func TestTwoLevelBucketAtMatchesFlat(t *testing.T) {
	for _, dims := range []int{1, 2, 3} {
		f, d := buildTwoLevel(t, dims, 16)
		sizes := f.CellSizes()
		cell := make([]int32, dims)
		// Every cell resolves to the same bucket as the flat directory.
		var walk func(k int)
		var checked int
		walk = func(k int) {
			if k == dims {
				want := f.dir[f.cellIndex(cell)]
				got, err := d.BucketAt(cell)
				if err != nil {
					t.Fatalf("dims=%d cell %v: %v", dims, cell, err)
				}
				if got != want {
					t.Fatalf("dims=%d cell %v: paged %d, flat %d", dims, cell, got, want)
				}
				checked++
				return
			}
			for c := 0; c < sizes[k]; c++ {
				cell[k] = int32(c)
				walk(k + 1)
			}
		}
		walk(0)
		if checked != f.NumCells() {
			t.Fatalf("checked %d of %d cells", checked, f.NumCells())
		}
	}
}

func TestTwoLevelBucketAtRejectsOutOfGrid(t *testing.T) {
	_, d := buildTwoLevel(t, 2, 16)
	if _, err := d.BucketAt([]int32{-1, 0}); err == nil {
		t.Error("negative cell accepted")
	}
	if _, err := d.BucketAt([]int32{0, 9999}); err == nil {
		t.Error("overflowing cell accepted")
	}
}

func TestTwoLevelRangeMatchesFlat(t *testing.T) {
	f, d := buildTwoLevel(t, 2, 12)
	rng := rand.New(rand.NewSource(1201))
	for trial := 0; trial < 80; trial++ {
		q := randomQuery(rng, f.Domain())
		want := f.BucketsInRange(q)
		got := d.BucketsInRange(f, q)
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if len(got) != len(want) {
			t.Fatalf("trial %d: paged %d buckets, flat %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: bucket sets differ at %d: %d vs %d", trial, i, got[i], want[i])
			}
		}
	}
}

func TestTwoLevelPageAccounting(t *testing.T) {
	f, d := buildTwoLevel(t, 2, 9) // 3x3 tiles
	if d.NumPages() < 2 {
		t.Skip("grid too small to page")
	}
	d.ResetCounters()
	cell := []int32{0, 0}
	if _, err := d.BucketAt(cell); err != nil {
		t.Fatal(err)
	}
	if d.PageAccesses != 1 {
		t.Errorf("point lookup cost %d page accesses, want 1", d.PageAccesses)
	}

	// A full-domain query touches every page exactly once.
	d.ResetCounters()
	d.BucketsInRange(f, f.Domain())
	if d.PageAccesses != d.NumPages() {
		t.Errorf("full scan touched %d pages, directory has %d", d.PageAccesses, d.NumPages())
	}

	// A small query touches far fewer pages than the directory holds.
	d.ResetCounters()
	small := f.Domain()
	for k := range small {
		small[k].Hi = small[k].Lo + small[k].Length()*0.05
	}
	d.BucketsInRange(f, small)
	if d.PageAccesses >= d.NumPages() {
		t.Errorf("small query touched %d of %d pages", d.PageAccesses, d.NumPages())
	}
}

func TestTwoLevelSinglePageDegenerate(t *testing.T) {
	f, d := buildTwoLevel(t, 2, 1<<20) // one huge page
	if d.NumPages() != 1 {
		t.Fatalf("expected a single page, got %d", d.NumPages())
	}
	want := f.BucketsInRange(f.Domain())
	got := d.BucketsInRange(f, f.Domain())
	if len(got) != len(want) {
		t.Fatalf("paged %d buckets, flat %d", len(got), len(want))
	}
}

func TestTwoLevelOutsideDomainQuery(t *testing.T) {
	f, d := buildTwoLevel(t, 2, 16)
	q := f.Domain()
	for k := range q {
		q[k].Lo = q[k].Hi + 100
		q[k].Hi = q[k].Lo + 50
	}
	if got := d.BucketsInRange(f, q); got != nil {
		t.Errorf("out-of-domain query returned %v", got)
	}
}
